package nullgraph_test

import (
	"fmt"

	"nullgraph"
)

// Generating a null model from a degree distribution (the paper's
// Algorithm IV.1). Workers: 1 makes the run bit-reproducible.
func ExampleGenerate() {
	dist, err := nullgraph.DistributionFromCounts(map[int64]int64{
		1: 600, // 600 vertices of degree 1
		3: 200, // 200 vertices of degree 3
		9: 10,  // 10 hubs
	})
	if err != nil {
		panic(err)
	}
	res, err := nullgraph.Generate(dist, nullgraph.Options{
		Seed:           42,
		Workers:        1,
		SwapIterations: 8,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("vertices:", res.Graph.NumVertices)
	fmt.Println("simple:", res.Graph.CheckSimplicity().IsSimple())
	// Output:
	// vertices: 810
	// simple: true
}

// Shuffling an existing graph preserves every vertex's degree exactly.
func ExampleShuffle() {
	// A 6-cycle.
	var edges []nullgraph.Edge
	for i := int32(0); i < 6; i++ {
		edges = append(edges, nullgraph.Edge{U: i, V: (i + 1) % 6})
	}
	g := nullgraph.NewGraph(edges, 6)
	nullgraph.Shuffle(g, nullgraph.Options{Seed: 7, Workers: 1, SwapIterations: 5})
	deg := g.Degrees(1)
	fmt.Println("edges:", g.NumEdges())
	fmt.Println("still 2-regular:", deg[0] == 2 && deg[5] == 2)
	// Output:
	// edges: 6
	// still 2-regular: true
}

// Havel-Hakimi realizes a graphical sequence exactly; Validate rejects
// impossible inputs before any work happens.
func ExampleHavelHakimi() {
	dist, _ := nullgraph.DistributionFromCounts(map[int64]int64{2: 3}) // a triangle
	if err := nullgraph.Validate(dist); err != nil {
		panic(err)
	}
	g, err := nullgraph.HavelHakimi(dist)
	if err != nil {
		panic(err)
	}
	fmt.Println("edges:", g.NumEdges())

	bad, _ := nullgraph.DistributionFromCounts(map[int64]int64{3: 2, 1: 2})
	fmt.Println("bad sequence rejected:", nullgraph.Validate(bad) != nil)
	// Output:
	// edges: 3
	// bad sequence rejected: true
}

// Directed null models preserve both in- and out-degrees.
func ExampleGenerateDirected() {
	// 3-cycle joint sequence: every vertex out=1, in=1.
	dist := nullgraph.JointFromDegrees([]int64{1, 1, 1}, []int64{1, 1, 1})
	res, err := nullgraph.GenerateDirected(dist, nullgraph.Options{Seed: 1, Workers: 1, SwapIterations: 4})
	if err != nil {
		panic(err)
	}
	fmt.Println("arcs:", res.Graph.NumArcs())
	fmt.Println("simple:", res.Graph.CheckSimplicity().IsSimple())
	// Output:
	// arcs: 3
	// simple: true
}
