// Package nullgraph generates large-scale simple uniformly-random null
// graph models in parallel, reproducing "Parallel Generation of Simple
// Null Graph Models" (Garbus, Brissette, Slota — IPPS 2020).
//
// The library solves two related problems:
//
//  1. Given an existing edge list, produce a uniformly random simple
//     graph with the same degree sequence — Shuffle, a parallel
//     Markov-chain Monte-Carlo double-edge swap process.
//  2. Given only a degree distribution, produce a uniformly random
//     simple graph matching it in expectation — Generate, which solves
//     for pairwise degree-class attachment probabilities, realizes them
//     with O(m) parallel edge-skipping, and mixes the result with
//     double-edge swaps.
//
// Baseline generators (the O(m) Chung-Lu multigraph model, the erased
// model, the Bernoulli edge-skipping model and Havel-Hakimi
// construction), LFR-like hierarchical community benchmarks, and the
// quality metrics used to compare them are exported alongside.
//
// All randomness is seed-driven: with Workers = 1 every entry point is
// bit-reproducible; with more workers, generation (edge-skipping,
// Chung-Lu draws, permutations) remains exactly reproducible, while the
// swap phase can differ across runs only when two workers concurrently
// propose the same new edge — a benign race the paper's OpenMP
// implementation shares, affecting which uniform sample you get but not
// its distribution or any invariant.
//
// Quick start:
//
//	dist, _ := nullgraph.PowerLawDistribution(100_000, 1, 1000, 2.1, 42)
//	res, _ := nullgraph.Generate(dist, nullgraph.Options{Seed: 42, SwapIterations: 10})
//	fmt.Println(res.Graph.NumEdges())
package nullgraph

import (
	"context"
	"fmt"
	"io"
	"time"

	"nullgraph/internal/chunglu"
	"nullgraph/internal/connected"
	"nullgraph/internal/converge"
	"nullgraph/internal/core"
	"nullgraph/internal/degseq"
	"nullgraph/internal/edgeskip"
	"nullgraph/internal/graph"
	"nullgraph/internal/havelhakimi"
	"nullgraph/internal/lfr"
	"nullgraph/internal/metrics"
	"nullgraph/internal/obs"
	"nullgraph/internal/par"
	"nullgraph/internal/simplify"
	"nullgraph/internal/swap"
)

// Edge is an undirected edge between two int32 vertex IDs.
type Edge = graph.Edge

// Graph is an edge-centric graph: a mutable edge list plus its vertex
// count. It is the representation every generator produces and the swap
// engine mutates.
type Graph = graph.EdgeList

// Simplicity reports a graph's self-loop and multi-edge content.
type Simplicity = graph.Simplicity

// Stats summarizes a graph like the paper's Table I.
type Stats = graph.Stats

// DegreeDistribution is the {D, N} input of generation-from-
// distribution: unique degrees ascending with positive counts.
type DegreeDistribution = degseq.Distribution

// QualityError is the triple of relative errors (edges, max degree,
// Gini) comparing a generated graph against its target distribution.
type QualityError = metrics.QualityError

// SwapStats reports one double-edge swap iteration.
type SwapStats = swap.IterStats

// Space selects the sampling-space cell the pipeline targets — one of
// the six {simple, loopy, multigraph} × {stub-labeled, vertex-labeled}
// null-model spaces of Fosdick et al. (arXiv:1608.00607). The zero
// value, SpaceSimple, is the paper's regime and keeps every entry point
// bit-identical to previous releases. See internal/graph for the cell
// semantics and internal/swap for the per-cell chains.
type Space = graph.Space

// The six sampling-space cells.
const (
	// SpaceSimple is the simple stub-labeled space — no self-loops, no
	// multi-edges — the paper's regime and the default. The simple
	// vertex-labeled cell is distributionally identical (every simple
	// graph carries the same ∏ d_v! stub labelings), so both spellings
	// run the same chain.
	SpaceSimple = graph.SimpleStub
	// SpaceSimpleVertex is the simple vertex-labeled cell; an alias
	// regime of SpaceSimple (see above).
	SpaceSimpleVertex = graph.SimpleVertex
	// SpaceLoopyStub allows self-loops (stub-labeled).
	SpaceLoopyStub = graph.LoopyStub
	// SpaceLoopyVertex allows self-loops (vertex-labeled; serial
	// Metropolis-Hastings chain).
	SpaceLoopyVertex = graph.LoopyVertex
	// SpaceMultigraphStub allows self-loops and multi-edges
	// (stub-labeled; the configuration model — every proposal accepts).
	SpaceMultigraphStub = graph.MultigraphStub
	// SpaceMultigraphVertex allows self-loops and multi-edges
	// (vertex-labeled; serial Metropolis-Hastings chain).
	SpaceMultigraphVertex = graph.MultigraphVertex
)

// ParseSpace resolves a space's command-line spelling ("simple",
// "loopy-stub", "multigraph-vertex", ...). The empty string is
// SpaceSimple.
func ParseSpace(s string) (Space, error) { return graph.ParseSpace(s) }

// SpaceNames lists the canonical spellings ParseSpace accepts, in cell
// order.
func SpaceNames() []string { return graph.SpaceNames() }

// ConnectivityStats reports the connected chain's check outcomes when
// Options.Connected is set (internal/connected): how many proposals
// each tier of the Viger–Latapy check hierarchy resolved — witness
// fast path, bounded bidirectional BFS, full BFS — and how many were
// rejected for disconnecting the graph.
type ConnectivityStats = connected.Stats

// SimplifyStats reports the targeted simplification pass Shuffle runs
// on non-simple input in a simple space (internal/simplify, after
// Sjöstrand arXiv:1904.06999): defect counts before and after, and the
// swap budget spent. Swaps <= InitialDefects always holds.
type SimplifyStats = simplify.Result

// RunReport is the serializable chain-health report collected when
// Options.CollectReport is set: per-iteration swap acceptance and
// rejection splits, hash-probe histograms, edge-skip sample-space
// accounting, phase wall times, and (schema v2) the stopping decision.
// See internal/obs for the schema.
type RunReport = obs.RunReport

// StopPolicy configures the adaptive mixing stopper: instead of a fixed
// iteration count, the swap chain monitors a cheap scalar statistic
// (degree assortativity by default) at geometrically spaced checkpoints
// and stops once a Geweke-style stationarity test passes with
// hysteresis, bounded below by Floor and above by Budget. The zero
// value picks sensible defaults for every field. See internal/converge
// for the diagnostic's design.
type StopPolicy = converge.Policy

// StopStatistic selects which scalar trace a StopPolicy monitors.
type StopStatistic = converge.Statistic

// Stop statistics a StopPolicy can monitor.
const (
	// StopOnAssortativity monitors degree assortativity (the default):
	// a global, swap-sensitive second-order statistic.
	StopOnAssortativity = converge.Assortativity
	// StopOnTriangles monitors the triangle count — more expensive per
	// checkpoint, sensitive to local clustering decay.
	StopOnTriangles = converge.Triangles
	// StopOnSuccessRate monitors only the swap success rate, the
	// cheapest signal (no graph scan at checkpoints).
	StopOnSuccessRate = converge.SuccessRate
)

// StopReport records how a run's swap phase ended — the policy kind,
// reason, iteration count, and (for adaptive runs) the checkpoint
// trail the decision was based on.
type StopReport = obs.StopReport

// StopCheckpoint is one entry of an adaptive run's checkpoint trail.
type StopCheckpoint = obs.StopCheckpoint

// LFRConfig configures the LFR-like hierarchical benchmark generator.
type LFRConfig = lfr.Config

// LFRResult is a generated benchmark graph with its planted communities.
type LFRResult = lfr.Result

// Layer is one level of a generalized hierarchical generation stack.
type Layer = lfr.Layer

// Options configures Generate and Shuffle.
type Options struct {
	// Space selects the sampling-space cell. The zero value is
	// SpaceSimple (the paper's regime, bit-identical to previous
	// releases). Non-simple cells change Shuffle's swap chain to the
	// cell's exact MCMC and make it validate its input against the
	// cell; Generate's output is simple by construction, so non-simple
	// cells only relabel its mixing chain's target.
	Space Space
	// Connected restricts sampling to *connected* simple graphs
	// (Viger–Latapy, arXiv:cs/0502085); it requires a simple-cell Space.
	// Generate starts from a deterministic connected realization of the
	// distribution (exact degrees; the probabilistic model is skipped
	// and Result.Probabilities stays nil); Shuffle repairs its input in
	// place with degree-preserving component-joining swaps (after
	// simplification, if any ran). Both fail when the degree sequence
	// admits no connected realization (isolated vertices, fewer than n-1
	// edges, or non-graphical). Mixing then runs the serial
	// connectivity-preserving chain — Workers still parallelizes the
	// generation phases, but the swap phase is single-threaded and
	// bit-reproducible at any width — and Result.Connectivity reports
	// its check-outcome counters.
	Connected bool
	// Workers is the number of parallel workers; <= 0 means GOMAXPROCS.
	Workers int
	// Seed fixes all randomness for a given worker count.
	Seed uint64
	// SwapIterations is the number of double-edge swap iterations used
	// to mix the graph. The paper observes ~10 iterations reach
	// steady-state attachment probabilities for simple inputs; a few
	// dozen simplify heavily multi-edged inputs.
	SwapIterations int
	// MixUntilSwapped, when set, swaps until every edge has been part
	// of at least one successful swap (the paper's empirical mixing
	// signal) instead of a fixed iteration count, bounded by 128.
	MixUntilSwapped bool
	// StopPolicy, when non-nil, replaces the fixed swap budget with the
	// adaptive convergence monitor: the chain runs until the monitored
	// statistic's checkpoint trace tests stationary, never fewer than
	// StopPolicy.Floor iterations and never more than StopPolicy.Budget.
	// Takes precedence over SwapIterations and MixUntilSwapped. The
	// outcome is reported in Result.Stop. A nil StopPolicy keeps the
	// fixed-iteration path bit-identical to previous releases.
	StopPolicy *StopPolicy
	// RefineProbabilities, when > 0, runs that many iterative
	// proportional fitting passes over the attachment-probability
	// matrix before edge generation, tightening expected-degree
	// residuals on extreme distributions at O(passes·|D|²) extra cost.
	RefineProbabilities int
	// CollectReport, when true, instruments the run and attaches a
	// RunReport to the result. Off (the default) the instrumentation
	// costs nothing: the swap hot path is the same zero-allocation code.
	//
	//nullgraph:nofingerprint instrumentation never changes what is sampled (bit-identity locked by obs parity tests), so instrumented and plain requests may share a pooled chain
	CollectReport bool
}

func (o Options) core() core.Options {
	return core.Options{
		Space:           o.Space,
		Connected:       o.Connected,
		Workers:         o.Workers,
		Seed:            o.Seed,
		SwapIterations:  o.SwapIterations,
		MixUntilSwapped: o.MixUntilSwapped,
		StopPolicy:      o.StopPolicy,
		TrackSwapStats:  true,
		RefinePasses:    o.RefineProbabilities,
	}
}

// recorder returns the obs recorder to thread through the pipeline, or
// nil when reporting is off.
func (o Options) recorder() *obs.Recorder {
	if obs.Enabled && o.CollectReport {
		return obs.NewRecorder()
	}
	return nil
}

// PhaseTimes records the wall time each pipeline phase spent on a run:
// probability generation (Section IV-A), edge-skipping (Section IV-B),
// and double-edge swapping (Section III-A) — the quantities Figure 6
// plots and cmd/nullgraphd aggregates into its /metrics endpoint.
// Phases a run did not execute (e.g. Shuffle never generates) are zero.
type PhaseTimes struct {
	Probabilities  time.Duration
	EdgeGeneration time.Duration
	Swapping       time.Duration
}

// Total returns the end-to-end pipeline time.
func (p PhaseTimes) Total() time.Duration {
	return p.Probabilities + p.EdgeGeneration + p.Swapping
}

// Result is the output of Generate or Shuffle.
type Result struct {
	// Graph is the generated (or shuffled-in-place) simple graph.
	Graph *Graph
	// SwapIterations reports each mixing iteration's statistics.
	SwapIterations []SwapStats
	// Phases records per-phase wall time — always populated, unlike the
	// RunReport, which costs instrumentation and must be opted into.
	Phases PhaseTimes
	// Mixed reports whether every edge swapped at least once (only
	// meaningful with Options.MixUntilSwapped).
	Mixed bool
	// Simplify reports the targeted simplification pass, present only
	// when Shuffle ran one (simple space, non-simple input).
	Simplify *SimplifyStats
	// Connectivity reports the connected chain's check outcomes,
	// present only when Options.Connected was set.
	Connectivity *ConnectivityStats
	// Report holds the chain-health report when Options.CollectReport
	// was set, nil otherwise.
	Report *RunReport
	// Stop records how the swap phase ended: policy "fixed" with the
	// scan count on the default path, or the adaptive monitor's outcome
	// (reason "converged" or "budget" plus its checkpoint trail) when
	// Options.StopPolicy is set.
	Stop *StopReport
}

func wrapResult(out *core.Result, rec *obs.Recorder) *Result {
	res := &Result{
		Graph:          out.Graph,
		SwapIterations: out.Swaps.PerIteration,
		Phases: PhaseTimes{
			Probabilities:  out.Phases.Probabilities,
			EdgeGeneration: out.Phases.EdgeGeneration,
			Swapping:       out.Phases.Swapping,
		},
		Simplify:     out.Simplify,
		Connectivity: out.Connectivity,
		Mixed:        out.Mixed,
		Stop:         out.Stop,
	}
	if rec != nil {
		res.Report = rec.Report()
	}
	return res
}

// Generate draws a uniformly random simple graph matching dist in
// expectation (the paper's Algorithm IV.1: probabilities →
// edge-skipping → double-edge swaps). Equivalent to GenerateContext
// with a background context.
func Generate(dist *DegreeDistribution, opt Options) (*Result, error) {
	return GenerateContext(context.Background(), dist, opt)
}

// GenerateContext is Generate honoring ctx: cancellation is
// cooperative with bounded latency (loop bodies poll every few
// thousand iterations, never on the randomness path, so an uncanceled
// run is bit-identical with or without a cancelable ctx), the partial
// sample is abandoned, and ctx.Err() is returned. A ctx already
// canceled on entry returns before any work.
func GenerateContext(ctx context.Context, dist *DegreeDistribution, opt Options) (*Result, error) {
	if err := ctxEntryErr(ctx); err != nil {
		return nil, err
	}
	stop, release := par.WatchContext(ctx)
	defer release()
	copt := opt.core()
	rec := opt.recorder()
	copt.Recorder = rec
	copt.Stop = stop
	out, err := core.FromDistribution(dist, copt)
	if err != nil {
		return nil, ctxError(ctx, err)
	}
	return wrapResult(out, rec), nil
}

// Shuffle mixes an existing graph in place with parallel double-edge
// swaps, preserving every vertex's degree; given enough iterations the
// result is a uniform sample of the graphs in Options.Space with that
// degree sequence. In the simple cells (the default) non-simple inputs
// are first made simple by a targeted bounded pass (Result.Simplify);
// in the loopy and multigraph cells the input must already satisfy the
// cell. The graph must be non-nil with in-range endpoints; empty and
// single-edge inputs are valid no-ops. Equivalent to ShuffleContext
// with a background context.
func Shuffle(g *Graph, opt Options) (*Result, error) {
	return ShuffleContext(context.Background(), g, opt)
}

// ShuffleContext is Shuffle honoring ctx. On cancellation it returns
// ctx.Err() with g left valid — degree sequence and edge count
// preserved (and simplicity, for simple inputs) — but under-mixed:
// swaps committed before the stop are kept. A ctx already canceled on
// entry leaves g untouched.
func ShuffleContext(ctx context.Context, g *Graph, opt Options) (*Result, error) {
	if err := ctxEntryErr(ctx); err != nil {
		return nil, err
	}
	stop, release := par.WatchContext(ctx)
	defer release()
	copt := opt.core()
	rec := opt.recorder()
	copt.Recorder = rec
	copt.Stop = stop
	out, err := core.FromEdgeList(g, copt)
	if err != nil {
		return nil, ctxError(ctx, err)
	}
	return wrapResult(out, rec), nil
}

// NewGraph wraps an edge slice with an explicit vertex count, validating
// endpoint ranges.
func NewGraph(edges []Edge, numVertices int) *Graph {
	return graph.NewEdgeList(edges, numVertices)
}

// DistributionFromDegrees builds the degree distribution of a degree
// sequence (one entry per vertex).
func DistributionFromDegrees(degrees []int64) *DegreeDistribution {
	return degseq.FromDegrees(degrees)
}

// DistributionFromCounts builds a distribution from degree → count.
func DistributionFromCounts(counts map[int64]int64) (*DegreeDistribution, error) {
	return degseq.FromCounts(counts)
}

// DistributionOf extracts the degree distribution of an existing graph.
func DistributionOf(g *Graph, workers int) *DegreeDistribution {
	return degseq.FromDegrees(g.Degrees(workers))
}

// PowerLawDistribution samples a graphical degree distribution with
// P(d) ∝ d^-gamma on [minDegree, maxDegree] over n vertices.
func PowerLawDistribution(n, minDegree, maxDegree int64, gamma float64, seed uint64) (*DegreeDistribution, error) {
	return degseq.SamplePowerLaw(degseq.PowerLawConfig{
		NumVertices: n, MinDegree: minDegree, MaxDegree: maxDegree,
		Gamma: gamma, Seed: seed,
	})
}

// HavelHakimi deterministically realizes a graphical distribution as a
// simple graph (an error reports non-graphical input). Combined with
// Shuffle it is the paper's uniform reference sampler.
func HavelHakimi(dist *DegreeDistribution) (*Graph, error) {
	return havelhakimi.Generate(dist)
}

// ConnectedRealization deterministically realizes a graphical
// distribution as a *connected* simple graph: a Havel–Hakimi greedy
// realization followed by degree-preserving component-joining swaps.
// It errors when no connected realization exists (non-graphical,
// isolated vertices with n > 1, or fewer than n-1 edges). Combined
// with Shuffle under Options.Connected it is the uniform
// connected-graph sampler.
func ConnectedRealization(dist *DegreeDistribution) (*Graph, error) {
	return connected.Realize(dist)
}

// ChungLuMultigraph draws the O(m) Chung-Lu model: fast, embarrassingly
// parallel, degree-exact in expectation, but containing self-loops and
// multi-edges. Shuffle simplifies it.
func ChungLuMultigraph(dist *DegreeDistribution, opt Options) *Graph {
	return chunglu.GenerateOM(dist, chunglu.Options{Workers: opt.Workers, Seed: opt.Seed})
}

// ChungLuErased draws the O(m) model and discards loops and duplicate
// edges. Simple, but biased low on skewed distributions.
func ChungLuErased(dist *DegreeDistribution, opt Options) (*Graph, Simplicity) {
	return chunglu.GenerateErased(dist, chunglu.Options{Workers: opt.Workers, Seed: opt.Seed})
}

// ChungLuBernoulli draws the Bernoulli Chung-Lu model with O(m)
// edge-skipping: simple by construction, biased on skewed
// distributions.
func ChungLuBernoulli(dist *DegreeDistribution, opt Options) (*Graph, error) {
	return chunglu.GenerateBernoulli(dist, chunglu.Options{Workers: opt.Workers, Seed: opt.Seed})
}

// ErdosRenyi draws G(n, p) with edge-skipping in O(p·n²) expected work —
// the single-space base case of the paper's Section IV-B machinery.
func ErdosRenyi(n int64, p float64, opt Options) (*Graph, error) {
	return edgeskip.GenerateER(n, p, edgeskip.Options{Workers: opt.Workers, Seed: opt.Seed})
}

// LFR generates an LFR-like community benchmark graph via the paper's
// Section VI layering of pipeline-generated subgraphs. Equivalent to
// LFRContext with a background context.
func LFR(cfg LFRConfig) (*LFRResult, error) {
	return lfr.Generate(cfg)
}

// LFRContext is LFR honoring ctx: cancellation is cooperative (checked
// between per-group pipeline phases and inside their loops) and
// returns ctx.Err() with no result. A ctx already canceled on entry
// returns before any work.
func LFRContext(ctx context.Context, cfg LFRConfig) (*LFRResult, error) {
	if err := ctxEntryErr(ctx); err != nil {
		return nil, err
	}
	stop, release := par.WatchContext(ctx)
	defer release()
	res, err := lfr.GenerateStop(cfg, stop)
	if err != nil {
		return nil, ctxError(ctx, err)
	}
	return res, nil
}

// GenerateLayered builds a graph from explicit per-vertex degrees and an
// arbitrary hierarchy of layers whose Lambda shares sum to 1.
func GenerateLayered(degrees []int64, layers []Layer, opt Options) (*LFRResult, error) {
	return lfr.GenerateLayered(degrees, layers, opt.core())
}

// GenerateOverlapping builds a graph with overlapping communities
// (AGM-style, Section VI's generalization): each vertex's degree splits
// between the global layer (fraction mu) and an equal share per
// community membership.
func GenerateOverlapping(degrees []int64, memberships [][]int32, mu float64, opt Options) (*LFRResult, error) {
	return lfr.GenerateOverlapping(degrees, memberships, mu, opt.core())
}

// Quality compares a generated graph against its target distribution
// with the paper's Figure 3 error triple.
func Quality(g *Graph, dist *DegreeDistribution, workers int) QualityError {
	return metrics.Quality(g, dist, workers)
}

// Gini returns the Gini coefficient of a degree sequence.
func Gini(degrees []int64) float64 { return metrics.Gini(degrees) }

// Assortativity returns the degree assortativity of a graph.
func Assortativity(g *Graph, workers int) float64 { return metrics.Assortativity(g, workers) }

// ComputeStats returns Table I-style summary statistics.
func ComputeStats(g *Graph, workers int) Stats { return graph.ComputeStats(g, workers) }

// ConnectedComponents labels each vertex with a dense component ID and
// returns the component count.
func ConnectedComponents(g *Graph, workers int) (labels []int32, count int) {
	return graph.ConnectedComponents(g, workers)
}

// GlobalClusteringCoefficient returns the transitivity ratio
// 3·triangles/wedges — the clustered-vs-random signal null models are
// used to test.
func GlobalClusteringCoefficient(g *Graph, workers int) float64 {
	return graph.GlobalClusteringCoefficient(g, workers)
}

// CountTriangles returns the triangle count of a simple graph.
func CountTriangles(g *Graph, workers int) int64 {
	return graph.BuildCSR(g, workers).CountTriangles(workers)
}

// ReadGraph parses a text edge list ("u v" per line, '#' comments).
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadEdgeListText(r) }

// WriteGraph writes a text edge list.
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteEdgeListText(w, g) }

// ReadGraphInSpace is ReadGraph plus membership validation: the parsed
// edge list must satisfy the given sampling space (no loops and no
// multi-edges for the simple cells, no multi-edges for the loopy
// cells), erroring with the first violation otherwise. It is the
// explicit opt-in gate for feeding non-simple input to the loopy and
// multigraph chains.
func ReadGraphInSpace(r io.Reader, space Space) (*Graph, error) {
	return graph.ReadEdgeListTextInSpace(r, space)
}

// ReadGraphBinaryInSpace is ReadGraphBinary plus the same membership
// validation as ReadGraphInSpace.
func ReadGraphBinaryInSpace(r io.Reader, space Space) (*Graph, error) {
	return graph.ReadEdgeListBinaryInSpace(r, space)
}

// ReadGraphBinary reads the library's binary edge-list format (the
// format WriteGraphBinary emits, and the payload cmd/nullgraphd
// streams). The header is validated rather than trusted, so truncated
// or corrupt inputs fail with a descriptive error instead of a bad
// graph or an allocation bomb.
func ReadGraphBinary(r io.Reader) (*Graph, error) { return graph.ReadEdgeListBinary(r) }

// WriteGraphBinary writes the compact binary edge-list encoding: a
// fixed 24-byte header (magic, vertex count, edge count) followed by
// one packed 64-bit word per edge — ~8 bytes/edge versus ~14 for text,
// parse-free to reload, and self-describing enough that readers detect
// truncation.
func WriteGraphBinary(w io.Writer, g *Graph) error { return graph.WriteEdgeListBinary(w, g) }

// ReadDistribution parses "degree count" lines.
func ReadDistribution(r io.Reader) (*DegreeDistribution, error) { return degseq.Read(r) }

// WriteDistribution writes "degree count" lines.
func WriteDistribution(w io.Writer, d *DegreeDistribution) error { return degseq.Write(w, d) }

// Validate checks that a distribution is well-formed and realizable as
// a simple graph, returning a descriptive error otherwise.
func Validate(dist *DegreeDistribution) error {
	if err := dist.Validate(); err != nil {
		return err
	}
	if !dist.IsGraphical() {
		return fmt.Errorf("nullgraph: degree distribution is not graphical (fails Erdős–Gallai)")
	}
	return nil
}
