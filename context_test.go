package nullgraph

import (
	"context"
	"errors"
	"testing"
	"time"
)

func ringGraph(n int) *Graph {
	edges := make([]Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = Edge{U: int32(i), V: int32((i + 1) % n)}
	}
	return NewGraph(edges, n)
}

func testDistribution(t *testing.T) *DegreeDistribution {
	t.Helper()
	dist, err := PowerLawDistribution(3000, 1, 50, 2.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	return dist
}

// TestGenerateContextPreCanceled: an already-canceled context must
// return its error before any pipeline work.
func TestGenerateContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := GenerateContext(ctx, testDistribution(t), Options{Seed: 1, SwapIterations: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got err %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("canceled Generate returned a result")
	}
}

// TestShuffleContextPreCanceledUntouched: a pre-canceled context must
// leave the caller's graph bitwise untouched.
func TestShuffleContextPreCanceledUntouched(t *testing.T) {
	g := ringGraph(500)
	before := append([]Edge(nil), g.Edges...)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ShuffleContext(ctx, g, Options{Seed: 1, SwapIterations: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got err %v, want context.Canceled", err)
	}
	for i := range before {
		if g.Edges[i] != before[i] {
			t.Fatalf("pre-canceled Shuffle mutated the input at edge %d", i)
		}
	}
}

// TestShuffleContextMidRunCancel: cancellation during a long mix must
// return promptly with the graph valid (degrees and edge count
// preserved) but under-mixed.
func TestShuffleContextMidRunCancel(t *testing.T) {
	g := ringGraph(20000)
	degrees := g.Degrees(1)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := ShuffleContext(ctx, g, Options{Seed: 3, SwapIterations: 1_000_000})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got err %v, want context.Canceled", err)
	}
	// A million iterations would run for hours; the generous bound keeps
	// the promptness check meaningful without flaking under load.
	if elapsed > 30*time.Second {
		t.Fatalf("cancel took %v; latency is not bounded", elapsed)
	}
	if len(g.Edges) != 20000 {
		t.Fatalf("edge count changed: %d", len(g.Edges))
	}
	after := g.Degrees(1)
	for i := range degrees {
		if degrees[i] != after[i] {
			t.Fatalf("canceled Shuffle broke the degree sequence at vertex %d", i)
		}
	}
	if rep := g.CheckSimplicity(); !rep.IsSimple() {
		t.Fatalf("canceled Shuffle left a non-simple graph: %+v", rep)
	}
}

// TestContextTimeout: deadline expiry surfaces as DeadlineExceeded.
func TestContextTimeout(t *testing.T) {
	g := ringGraph(20000)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := ShuffleContext(ctx, g, Options{Seed: 3, SwapIterations: 1_000_000})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got err %v, want context.DeadlineExceeded", err)
	}
}

// TestBackgroundContextBitIdentical: threading a cancelable-but-never-
// canceled context must not change the output — polling never consumes
// randomness.
func TestBackgroundContextBitIdentical(t *testing.T) {
	dist := testDistribution(t)
	opt := Options{Workers: 1, Seed: 5, SwapIterations: 4}
	plain, err := Generate(dist, opt)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	viaCtx, err := GenerateContext(ctx, dist, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Graph.Edges) != len(viaCtx.Graph.Edges) {
		t.Fatalf("edge counts differ: %d vs %d", len(plain.Graph.Edges), len(viaCtx.Graph.Edges))
	}
	for i := range plain.Graph.Edges {
		if plain.Graph.Edges[i] != viaCtx.Graph.Edges[i] {
			t.Fatalf("cancelable ctx changed the output at edge %d", i)
		}
	}
}

// TestEngineMatchesOneShot locks the public session contract: Engine
// sample 0 is bit-identical (Workers=1) to the one-shot Generate, and
// sample s to a one-shot seeded with SampleSeed(base, s).
func TestEngineMatchesOneShot(t *testing.T) {
	dist := testDistribution(t)
	opt := Options{Workers: 1, Seed: 9, SwapIterations: 4}
	eng := NewEngine(opt)
	defer eng.Close()
	for s := uint64(0); s < 3; s++ {
		if got := eng.Sample(); got != s {
			t.Fatalf("sample counter = %d, want %d", got, s)
		}
		res, err := eng.Generate(dist)
		if err != nil {
			t.Fatal(err)
		}
		engEdges := append([]Edge(nil), res.Graph.Edges...) // result aliases engine buffers

		oneOpt := opt
		oneOpt.Seed = SampleSeed(opt.Seed, s)
		one, err := Generate(dist, oneOpt)
		if err != nil {
			t.Fatal(err)
		}
		if len(engEdges) != len(one.Graph.Edges) {
			t.Fatalf("sample %d: engine drew %d edges, one-shot drew %d", s, len(engEdges), len(one.Graph.Edges))
		}
		for i := range engEdges {
			if engEdges[i] != one.Graph.Edges[i] {
				t.Fatalf("sample %d: engine diverges from one-shot at edge %d", s, i)
			}
		}
	}
}

// TestEngineSampleCounterHoldsOnCancel: a canceled call must not
// consume its sample index — the retry draws the same sample.
func TestEngineSampleCounterHoldsOnCancel(t *testing.T) {
	dist := testDistribution(t)
	eng := NewEngine(Options{Workers: 1, Seed: 2, SwapIterations: 4})
	defer eng.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.GenerateContext(ctx, dist); !errors.Is(err, context.Canceled) {
		t.Fatalf("got err %v, want context.Canceled", err)
	}
	if eng.Sample() != 0 {
		t.Fatalf("canceled call advanced the sample counter to %d", eng.Sample())
	}
	if _, err := eng.Generate(dist); err != nil {
		t.Fatal(err)
	}
	if eng.Sample() != 1 {
		t.Fatalf("successful call left the sample counter at %d", eng.Sample())
	}
	eng.SetSample(10)
	if eng.Sample() != 10 {
		t.Fatalf("SetSample did not reposition the counter")
	}
}

// TestEngineShuffleInPlace: the public Engine's Shuffle mixes the
// caller's graph in place with degrees preserved, sample after sample.
func TestEngineShuffleInPlace(t *testing.T) {
	eng := NewEngine(Options{Workers: 1, Seed: 4, SwapIterations: 4})
	defer eng.Close()
	for s := 0; s < 3; s++ {
		g := ringGraph(1000)
		degrees := g.Degrees(1)
		if _, err := eng.Shuffle(g); err != nil {
			t.Fatal(err)
		}
		after := g.Degrees(1)
		for i := range degrees {
			if degrees[i] != after[i] {
				t.Fatalf("sample %d: degree sequence changed at vertex %d", s, i)
			}
		}
	}
}

// TestDirectedOptionParity: the directed entry points must reject the
// Options they cannot honor instead of silently dropping them.
func TestDirectedOptionParity(t *testing.T) {
	dist := JointFromDegrees([]int64{1, 1, 1}, []int64{1, 1, 1})
	if _, err := GenerateDirected(dist, Options{Seed: 1, RefineProbabilities: 2}); err == nil {
		t.Error("GenerateDirected accepted RefineProbabilities")
	}
	if _, err := GenerateDirected(dist, Options{Seed: 1, CollectReport: true}); err == nil {
		t.Error("GenerateDirected accepted CollectReport")
	}
	g := NewDigraph([]Arc{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 0}}, 3)
	if _, err := ShuffleDirected(g, Options{Seed: 1, CollectReport: true}); err == nil {
		t.Error("ShuffleDirected accepted CollectReport")
	}
	if _, err := ShuffleDirected(nil, Options{Seed: 1, SwapIterations: 2}); err == nil {
		t.Error("ShuffleDirected accepted a nil digraph")
	}
}

// TestShuffleDirectedContextPreCanceled mirrors the undirected
// contract on the directed path.
func TestShuffleDirectedContextPreCanceled(t *testing.T) {
	g := NewDigraph([]Arc{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 0}}, 3)
	before := append([]Arc(nil), g.Arcs...)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ShuffleDirectedContext(ctx, g, Options{Seed: 1, SwapIterations: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got err %v, want context.Canceled", err)
	}
	for i := range before {
		if g.Arcs[i] != before[i] {
			t.Fatalf("pre-canceled directed shuffle mutated arc %d", i)
		}
	}
}
