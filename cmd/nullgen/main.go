// Command nullgen generates a uniformly random simple graph from a
// degree distribution (the paper's Algorithm IV.1) and writes it as a
// text edge list.
//
// The distribution comes from one of three sources:
//
//	-dist FILE      "degree count" lines
//	-powerlaw N     synthetic power law (see -gamma, -dmin, -dmax)
//	-dataset NAME   a Table I analog (Meso, as20, WikiTalk, ...)
//
// Usage examples:
//
//	nullgen -powerlaw 100000 -gamma 2.1 -dmax 1000 -swaps 10 -o graph.txt
//	nullgen -dataset as20 -swaps 10 -o as20-null.txt
//	nullgen -dist degrees.txt -mix -o graph.txt
//	nullgen -powerlaw 100000 -adaptive -o graph.txt  # adaptive stopping
//	nullgen -powerlaw 100000 -report report.json   # chain-health report
//
// Invalid flag combinations exit with status 2; runtime failures exit
// with status 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nullgraph"
	"nullgraph/internal/atomicfile"
	"nullgraph/internal/datasets"
	"nullgraph/internal/obs"
)

// config carries the parsed flags, decoupled from the flag package so
// the validation rules are unit-testable.
type config struct {
	Space      string
	Connected  bool
	DistFile   string
	Joint      string
	Dataset    string
	PowerLaw   int64
	Gamma      float64
	DMin       int64
	DMax       int64
	MaxVerts   int64
	Swaps      int
	Mix        bool
	Adaptive   bool
	StopStat   string
	StopFloor  int
	StopBudget int
	Workers    int
	Seed       uint64
	Out        string
	Binary     bool
	Report     string
	Pprof      string
	CPUProfile string
	Quiet      bool
	Timeout    time.Duration
}

// validateConfig rejects flag combinations that cannot produce a run:
// zero or multiple distribution sources, non-positive power-law
// parameters, an inverted degree range, or a negative swap count.
func validateConfig(c config) error {
	sources := 0
	for _, set := range []bool{c.DistFile != "", c.Joint != "", c.Dataset != "", c.PowerLaw != 0} {
		if set {
			sources++
		}
	}
	if sources == 0 {
		return errors.New("one of -dist, -joint, -dataset or -powerlaw is required")
	}
	if sources > 1 {
		return errors.New("-dist, -joint, -dataset and -powerlaw are mutually exclusive; pass exactly one")
	}
	if c.Swaps < 0 {
		return fmt.Errorf("-swaps must be >= 0 (got %d)", c.Swaps)
	}
	space, err := nullgraph.ParseSpace(c.Space)
	if err != nil {
		return err
	}
	if c.Joint != "" && space != nullgraph.SpaceSimple {
		return errors.New("-space is not supported with -joint (the space matrix is undirected)")
	}
	if c.Connected {
		if c.Joint != "" {
			return errors.New("-connected is not supported with -joint (connected sampling is undirected)")
		}
		if space != nullgraph.SpaceSimple && space != nullgraph.SpaceSimpleVertex {
			return fmt.Errorf("-connected requires a simple space (got -space %s)", c.Space)
		}
	}
	if c.PowerLaw != 0 {
		if c.PowerLaw < 0 {
			return fmt.Errorf("-powerlaw vertex count must be positive (got %d)", c.PowerLaw)
		}
		if c.Gamma <= 1 {
			return fmt.Errorf("-gamma must be > 1 (got %v); the power-law normalization diverges at 1", c.Gamma)
		}
		if c.DMin < 1 {
			return fmt.Errorf("-dmin must be >= 1 (got %d)", c.DMin)
		}
		if c.DMin > c.DMax {
			return fmt.Errorf("-dmin %d exceeds -dmax %d", c.DMin, c.DMax)
		}
	}
	if c.Joint != "" && c.Report != "" {
		return errors.New("-report is not supported with -joint (directed pipeline)")
	}
	if c.Adaptive && c.Mix {
		return errors.New("-adaptive and -mix are mutually exclusive; pass at most one")
	}
	if !c.Adaptive && (c.StopFloor != 0 || c.StopBudget != 0) {
		return errors.New("-stop-floor and -stop-budget require -adaptive")
	}
	if c.StopFloor < 0 || c.StopBudget < 0 {
		return fmt.Errorf("-stop-floor and -stop-budget must be >= 0 (got %d, %d)", c.StopFloor, c.StopBudget)
	}
	if c.StopBudget > 0 && c.StopFloor > c.StopBudget {
		return fmt.Errorf("-stop-floor %d exceeds -stop-budget %d", c.StopFloor, c.StopBudget)
	}
	if _, err := parseStopStat(c.StopStat); err != nil {
		return err
	}
	if c.Timeout < 0 {
		return fmt.Errorf("-timeout must be >= 0 (got %v)", c.Timeout)
	}
	if c.Binary && c.Joint != "" {
		return errors.New("-binary is not supported with -joint (no binary arc-list format)")
	}
	return nil
}

// runContext builds the run's context: SIGINT/SIGTERM always cancel it
// (graceful stop — cooperative checkpoints abandon the sample and exit
// cleanly instead of killing the process mid-write), and -timeout, when
// positive, bounds the wall time.
func runContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, cancelSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, cancelSig
	}
	ctx, cancelTime := context.WithTimeout(ctx, timeout)
	return ctx, func() { cancelTime(); cancelSig() }
}

func main() {
	var c config
	flag.StringVar(&c.Space, "space", "simple", "sampling space for the mixing chain: simple, loopy-stub, loopy-vertex, multigraph-stub or multigraph-vertex")
	flag.BoolVar(&c.Connected, "connected", false, "sample connected simple graphs only (Viger–Latapy connectivity-preserving chain; requires a simple -space)")
	flag.StringVar(&c.DistFile, "dist", "", "read the degree distribution from this file (\"degree count\" lines)")
	flag.StringVar(&c.Joint, "joint", "", "generate a DIGRAPH from this joint distribution file (\"out in count\" lines)")
	flag.Int64Var(&c.PowerLaw, "powerlaw", 0, "sample a power-law distribution over this many vertices")
	flag.Float64Var(&c.Gamma, "gamma", 2.1, "power-law exponent (with -powerlaw)")
	flag.Int64Var(&c.DMin, "dmin", 1, "minimum degree (with -powerlaw)")
	flag.Int64Var(&c.DMax, "dmax", 1000, "maximum degree (with -powerlaw)")
	flag.StringVar(&c.Dataset, "dataset", "", "use a Table I analog distribution (Meso, as20, WikiTalk, DBPedia, LiveJournal, Friendster, Twitter, uk-2005)")
	flag.Int64Var(&c.MaxVerts, "max-vertices", 0, "cap for dataset analog sizes (0 = package default)")
	flag.IntVar(&c.Swaps, "swaps", 10, "double-edge swap iterations for mixing")
	flag.BoolVar(&c.Mix, "mix", false, "swap until every edge has swapped at least once (overrides -swaps)")
	flag.BoolVar(&c.Adaptive, "adaptive", false, "stop swapping adaptively when the monitored statistic tests stationary (overrides -swaps)")
	flag.StringVar(&c.StopStat, "stop-stat", "assortativity", "adaptive statistic: assortativity, triangles or success-rate (with -adaptive; -joint always monitors success-rate)")
	flag.IntVar(&c.StopFloor, "stop-floor", 0, "minimum swap iterations before an adaptive stop (0 = default)")
	flag.IntVar(&c.StopBudget, "stop-budget", 0, "maximum swap iterations for an adaptive run (0 = default)")
	flag.IntVar(&c.Workers, "workers", 0, "parallel workers (0 = GOMAXPROCS)")
	flag.Uint64Var(&c.Seed, "seed", 1, "random seed")
	flag.StringVar(&c.Out, "o", "-", "output edge list path (- = stdout); files are written atomically (temp + rename)")
	flag.BoolVar(&c.Binary, "binary", false, "write the compact binary edge-list format instead of text")
	flag.StringVar(&c.Report, "report", "", "write a chain-health RunReport (JSON) to this path (- = stdout)")
	flag.StringVar(&c.Pprof, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.BoolVar(&c.Quiet, "q", false, "suppress the summary line on stderr")
	flag.DurationVar(&c.Timeout, "timeout", 0, "abandon the run after this long (e.g. 30s; 0 = no limit); SIGINT/SIGTERM also stop it gracefully")
	flag.Parse()

	if err := validateConfig(c); err != nil {
		fmt.Fprintln(os.Stderr, "nullgen:", err)
		os.Exit(2)
	}
	ctx, cancel := runContext(c.Timeout)
	defer cancel()
	if err := run(ctx, c); err != nil {
		fmt.Fprintln(os.Stderr, "nullgen:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, c config) error {
	if c.Pprof != "" {
		addr, err := obs.ServePprof(c.Pprof)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "nullgen: pprof listening on http://%s/debug/pprof/\n", addr)
	}
	if c.CPUProfile != "" {
		stop, err := obs.StartCPUProfile(c.CPUProfile)
		if err != nil {
			return err
		}
		defer stop()
	}

	if c.Joint != "" {
		return generateDirected(ctx, c)
	}

	dist, err := loadDistribution(c)
	if err != nil {
		return err
	}
	if err := nullgraph.Validate(dist); err != nil {
		return err
	}
	res, err := nullgraph.GenerateContext(ctx, dist, nullgraph.Options{
		Space:           c.space(),
		Connected:       c.Connected,
		Workers:         c.Workers,
		Seed:            c.Seed,
		SwapIterations:  c.Swaps,
		MixUntilSwapped: c.Mix,
		StopPolicy:      c.stopPolicy(),
		CollectReport:   c.Report != "",
	})
	if err != nil {
		return err
	}

	if err := saveGraph(c, res.Graph); err != nil {
		return err
	}
	if c.Report != "" && res.Report != nil {
		if err := obs.WriteReportFile(c.Report, res.Report); err != nil {
			return err
		}
	}
	if !c.Quiet {
		stats := nullgraph.ComputeStats(res.Graph, c.Workers)
		q := nullgraph.Quality(res.Graph, dist, c.Workers)
		fmt.Fprintf(os.Stderr, "nullgen: n=%d m=%d d_max=%d |D|=%d | edge err %+.2f%% d_max err %+.2f%% | %d swap iterations%s\n",
			stats.NumVertices, stats.NumEdges, stats.MaxDegree, stats.UniqueDegrees,
			q.Edges*100, q.MaxDegree*100, len(res.SwapIterations), stopDesc(res.Stop))
	}
	return nil
}

// saveGraph writes the generated graph in the configured format.
// Stdout streams directly; file outputs go through atomicfile, so an
// interrupted or killed save can never leave a truncated file behind —
// in particular no partial binary edge list for ReadGraphBinary to
// reject later.
func saveGraph(c config, g *nullgraph.Graph) error {
	write := func(w io.Writer) error {
		if c.Binary {
			return nullgraph.WriteGraphBinary(w, g)
		}
		return nullgraph.WriteGraph(w, g)
	}
	if c.Out == "-" {
		return write(os.Stdout)
	}
	return atomicfile.Write(c.Out, write)
}

// space resolves the -space flag; validateConfig has already vetted it.
func (c config) space() nullgraph.Space {
	sp, err := nullgraph.ParseSpace(c.Space)
	if err != nil {
		panic("nullgen: space resolved before validateConfig: " + err.Error())
	}
	return sp
}

// stopPolicy maps the adaptive flags onto a StopPolicy; validateConfig
// has already vetted every field, so parseStopStat cannot fail here.
func (c config) stopPolicy() *nullgraph.StopPolicy {
	if !c.Adaptive {
		return nil
	}
	stat, err := parseStopStat(c.StopStat)
	if err != nil {
		panic("nullgen: stop policy built before validateConfig: " + err.Error())
	}
	return &nullgraph.StopPolicy{Statistic: stat, Floor: c.StopFloor, Budget: c.StopBudget}
}

// parseStopStat resolves the -stop-stat flag; "" means the default.
func parseStopStat(s string) (nullgraph.StopStatistic, error) {
	switch s {
	case "", "assortativity":
		return nullgraph.StopOnAssortativity, nil
	case "triangles":
		return nullgraph.StopOnTriangles, nil
	case "success-rate":
		return nullgraph.StopOnSuccessRate, nil
	}
	return 0, fmt.Errorf("-stop-stat must be assortativity, triangles or success-rate (got %q)", s)
}

// stopDesc renders the stop outcome for the summary line; fixed-budget
// runs say nothing (the iteration count already tells the story).
func stopDesc(st *nullgraph.StopReport) string {
	if st == nil || st.Policy != "adaptive" {
		return ""
	}
	return fmt.Sprintf(" | adaptive stop: %s (%s)", st.Reason, st.Statistic)
}

func loadDistribution(c config) (*nullgraph.DegreeDistribution, error) {
	switch {
	case c.DistFile != "":
		f, err := os.Open(c.DistFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return nullgraph.ReadDistribution(f)
	case c.Dataset != "":
		spec, err := datasets.ByName(c.Dataset)
		if err != nil {
			return nil, err
		}
		return datasets.Load(spec, datasets.LoadOptions{MaxVertices: c.MaxVerts, Seed: c.Seed})
	default: // validateConfig guarantees PowerLaw > 0 here
		return nullgraph.PowerLawDistribution(c.PowerLaw, c.DMin, c.DMax, c.Gamma, c.Seed)
	}
}

func generateDirected(ctx context.Context, c config) error {
	f, err := os.Open(c.Joint)
	if err != nil {
		return err
	}
	dist, err := nullgraph.ReadJointDistribution(f)
	f.Close()
	if err != nil {
		return err
	}
	res, err := nullgraph.GenerateDirectedContext(ctx, dist, nullgraph.Options{
		Workers:         c.Workers,
		Seed:            c.Seed,
		SwapIterations:  c.Swaps,
		MixUntilSwapped: c.Mix,
		StopPolicy:      c.stopPolicy(),
	})
	if err != nil {
		return err
	}
	writeArcs := func(w io.Writer) error { return nullgraph.WriteDigraph(w, res.Graph) }
	if c.Out == "-" {
		if err := writeArcs(os.Stdout); err != nil {
			return err
		}
	} else if err := atomicfile.Write(c.Out, writeArcs); err != nil {
		return err
	}
	if !c.Quiet {
		fmt.Fprintf(os.Stderr, "nullgen: digraph n=%d arcs=%d (target %d) | %d swap iterations%s\n",
			res.Graph.NumVertices, res.Graph.NumArcs(), dist.NumArcs(), len(res.SwapIterations), stopDesc(res.Stop))
	}
	return nil
}
