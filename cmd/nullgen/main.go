// Command nullgen generates a uniformly random simple graph from a
// degree distribution (the paper's Algorithm IV.1) and writes it as a
// text edge list.
//
// The distribution comes from one of three sources:
//
//	-dist FILE      "degree count" lines
//	-powerlaw N     synthetic power law (see -gamma, -dmin, -dmax)
//	-dataset NAME   a Table I analog (Meso, as20, WikiTalk, ...)
//
// Usage examples:
//
//	nullgen -powerlaw 100000 -gamma 2.1 -dmax 1000 -swaps 10 -o graph.txt
//	nullgen -dataset as20 -swaps 10 -o as20-null.txt
//	nullgen -dist degrees.txt -mix -o graph.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"nullgraph"
	"nullgraph/internal/datasets"
)

func main() {
	var (
		distFile = flag.String("dist", "", "read the degree distribution from this file (\"degree count\" lines)")
		jointF   = flag.String("joint", "", "generate a DIGRAPH from this joint distribution file (\"out in count\" lines)")
		powerlaw = flag.Int64("powerlaw", 0, "sample a power-law distribution over this many vertices")
		gamma    = flag.Float64("gamma", 2.1, "power-law exponent (with -powerlaw)")
		dmin     = flag.Int64("dmin", 1, "minimum degree (with -powerlaw)")
		dmax     = flag.Int64("dmax", 1000, "maximum degree (with -powerlaw)")
		dataset  = flag.String("dataset", "", "use a Table I analog distribution (Meso, as20, WikiTalk, DBPedia, LiveJournal, Friendster, Twitter, uk-2005)")
		maxVerts = flag.Int64("max-vertices", 0, "cap for dataset analog sizes (0 = package default)")
		swaps    = flag.Int("swaps", 10, "double-edge swap iterations for mixing")
		mix      = flag.Bool("mix", false, "swap until every edge has swapped at least once (overrides -swaps)")
		workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		seed     = flag.Uint64("seed", 1, "random seed")
		out      = flag.String("o", "-", "output edge list path (- = stdout)")
		quiet    = flag.Bool("q", false, "suppress the summary line on stderr")
	)
	flag.Parse()

	if *jointF != "" {
		generateDirected(*jointF, *swaps, *mix, *workers, *seed, *out, *quiet)
		return
	}

	dist, err := loadDistribution(*distFile, *powerlaw, *gamma, *dmin, *dmax, *dataset, *maxVerts, *seed)
	if err != nil {
		fatal(err)
	}
	if err := nullgraph.Validate(dist); err != nil {
		fatal(err)
	}
	res, err := nullgraph.Generate(dist, nullgraph.Options{
		Workers:         *workers,
		Seed:            *seed,
		SwapIterations:  *swaps,
		MixUntilSwapped: *mix,
	})
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := nullgraph.WriteGraph(w, res.Graph); err != nil {
		fatal(err)
	}
	if !*quiet {
		stats := nullgraph.ComputeStats(res.Graph, *workers)
		q := nullgraph.Quality(res.Graph, dist, *workers)
		fmt.Fprintf(os.Stderr, "nullgen: n=%d m=%d d_max=%d |D|=%d | edge err %+.2f%% d_max err %+.2f%% | %d swap iterations\n",
			stats.NumVertices, stats.NumEdges, stats.MaxDegree, stats.UniqueDegrees,
			q.Edges*100, q.MaxDegree*100, len(res.SwapIterations))
	}
}

func loadDistribution(distFile string, powerlaw int64, gamma float64, dmin, dmax int64, dataset string, maxVerts int64, seed uint64) (*nullgraph.DegreeDistribution, error) {
	switch {
	case distFile != "":
		f, err := os.Open(distFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return nullgraph.ReadDistribution(f)
	case dataset != "":
		spec, err := datasets.ByName(dataset)
		if err != nil {
			return nil, err
		}
		return datasets.Load(spec, datasets.LoadOptions{MaxVertices: maxVerts, Seed: seed})
	case powerlaw > 0:
		return nullgraph.PowerLawDistribution(powerlaw, dmin, dmax, gamma, seed)
	default:
		return nil, fmt.Errorf("one of -dist, -dataset or -powerlaw is required")
	}
}

func generateDirected(jointFile string, swaps int, mix bool, workers int, seed uint64, out string, quiet bool) {
	f, err := os.Open(jointFile)
	if err != nil {
		fatal(err)
	}
	dist, err := nullgraph.ReadJointDistribution(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	res, err := nullgraph.GenerateDirected(dist, nullgraph.Options{
		Workers:         workers,
		Seed:            seed,
		SwapIterations:  swaps,
		MixUntilSwapped: mix,
	})
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if out != "-" {
		of, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer of.Close()
		w = of
	}
	if err := nullgraph.WriteDigraph(w, res.Graph); err != nil {
		fatal(err)
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "nullgen: digraph n=%d arcs=%d (target %d) | %d swap iterations\n",
			res.Graph.NumVertices, res.Graph.NumArcs(), dist.NumArcs(), len(res.SwapIterations))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nullgen:", err)
	os.Exit(1)
}
