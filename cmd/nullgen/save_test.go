package main

import (
	"os"
	"path/filepath"
	"testing"

	"nullgraph"
)

// TestSaveGraphBinaryRoundTrip locks the -binary save path: the file on
// disk must reload bit-identically through ReadGraphBinary, and the
// atomic write must leave no staging files next to it.
func TestSaveGraphBinaryRoundTrip(t *testing.T) {
	g := nullgraph.NewGraph([]nullgraph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}}, 3)
	dir := t.TempDir()
	path := filepath.Join(dir, "graph.bin")
	if err := saveGraph(config{Out: path, Binary: true}, g); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := nullgraph.ReadGraphBinary(f)
	if err != nil {
		t.Fatalf("reload of -binary output: %v", err)
	}
	if back.NumVertices != g.NumVertices || len(back.Edges) != len(g.Edges) {
		t.Fatalf("shape changed: (%d,%d) vs (%d,%d)", back.NumVertices, len(back.Edges), g.NumVertices, len(g.Edges))
	}
	for i := range g.Edges {
		if back.Edges[i] != g.Edges[i] {
			t.Fatalf("edge %d changed", i)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("staging leftovers: %v", ents)
	}

	// Text mode reloads through the text reader.
	tpath := filepath.Join(dir, "graph.txt")
	if err := saveGraph(config{Out: tpath, Binary: false}, g); err != nil {
		t.Fatal(err)
	}
	tf, err := os.Open(tpath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	if _, err := nullgraph.ReadGraph(tf); err != nil {
		t.Fatalf("reload of text output: %v", err)
	}
}
