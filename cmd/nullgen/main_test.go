package main

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nullgraph/internal/obs"
)

// valid returns a baseline config that passes validation; cases mutate
// one field each.
func valid() config {
	return config{PowerLaw: 1000, Gamma: 2.1, DMin: 1, DMax: 100, Swaps: 10, Out: "-"}
}

func TestValidateConfig(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*config)
		wantErr string // substring of the expected message; "" = valid
	}{
		{"baseline", func(c *config) {}, ""},
		{"dist source", func(c *config) { c.PowerLaw = 0; c.DistFile = "d.txt" }, ""},
		{"dataset source", func(c *config) { c.PowerLaw = 0; c.Dataset = "as20" }, ""},
		{"joint source", func(c *config) { c.PowerLaw = 0; c.Joint = "j.txt" }, ""},
		{"no source", func(c *config) { c.PowerLaw = 0 }, "required"},
		{"two sources", func(c *config) { c.Dataset = "as20" }, "mutually exclusive"},
		{"three sources", func(c *config) { c.Dataset = "as20"; c.DistFile = "d.txt" }, "mutually exclusive"},
		{"joint plus powerlaw", func(c *config) { c.Joint = "j.txt" }, "mutually exclusive"},
		{"negative swaps", func(c *config) { c.Swaps = -1 }, "-swaps"},
		{"zero swaps ok", func(c *config) { c.Swaps = 0 }, ""},
		{"negative powerlaw", func(c *config) { c.PowerLaw = -5 }, "positive"},
		{"gamma one", func(c *config) { c.Gamma = 1 }, "-gamma"},
		{"gamma below one", func(c *config) { c.Gamma = 0.5 }, "-gamma"},
		{"dmin zero", func(c *config) { c.DMin = 0 }, "-dmin"},
		{"dmin above dmax", func(c *config) { c.DMin = 50; c.DMax = 10 }, "exceeds"},
		{"gamma ignored without powerlaw", func(c *config) { c.PowerLaw = 0; c.DistFile = "d.txt"; c.Gamma = 0 }, ""},
		{"report with joint", func(c *config) { c.PowerLaw = 0; c.Joint = "j.txt"; c.Report = "r.json" }, "-report"},
		{"report with powerlaw ok", func(c *config) { c.Report = "r.json" }, ""},
		{"negative timeout", func(c *config) { c.Timeout = -time.Second }, "-timeout"},
		{"positive timeout ok", func(c *config) { c.Timeout = 30 * time.Second }, ""},
		{"adaptive ok", func(c *config) { c.Adaptive = true }, ""},
		{"adaptive with knobs ok", func(c *config) { c.Adaptive = true; c.StopFloor = 8; c.StopBudget = 64 }, ""},
		{"adaptive with stat ok", func(c *config) { c.Adaptive = true; c.StopStat = "success-rate" }, ""},
		{"adaptive plus mix", func(c *config) { c.Adaptive = true; c.Mix = true }, "mutually exclusive"},
		{"stop floor without adaptive", func(c *config) { c.StopFloor = 8 }, "require -adaptive"},
		{"stop budget without adaptive", func(c *config) { c.StopBudget = 64 }, "require -adaptive"},
		{"negative stop floor", func(c *config) { c.Adaptive = true; c.StopFloor = -1 }, ">= 0"},
		{"floor above budget", func(c *config) { c.Adaptive = true; c.StopFloor = 65; c.StopBudget = 64 }, "exceeds"},
		{"bad stop stat", func(c *config) { c.Adaptive = true; c.StopStat = "modularity" }, "-stop-stat"},
		{"adaptive joint ok", func(c *config) { c.PowerLaw = 0; c.Joint = "j.txt"; c.Adaptive = true }, ""},
	}
	for _, tc := range cases {
		c := valid()
		tc.mutate(&c)
		err := validateConfig(c)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: want error containing %q, got nil", tc.name, tc.wantErr)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestRunEmitsReport drives the CLI entry end to end: a small power-law
// run with -report must write both the edge list and a populated,
// schema-tagged RunReport.
func TestRunEmitsReport(t *testing.T) {
	dir := t.TempDir()
	c := valid()
	c.PowerLaw = 500
	c.Swaps = 4
	c.Quiet = true
	c.Out = filepath.Join(dir, "graph.txt")
	c.Report = filepath.Join(dir, "report.json")
	if err := validateConfig(c); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(c.Out); err != nil || fi.Size() == 0 {
		t.Fatalf("edge list output missing or empty: %v", err)
	}
	data, err := os.ReadFile(c.Report)
	if err != nil {
		t.Fatal(err)
	}
	var rep obs.RunReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema != obs.SchemaVersion {
		t.Errorf("report schema = %q, want %q", rep.Schema, obs.SchemaVersion)
	}
	if rep.SwapTotals.Iterations != 4 || rep.SwapTotals.Attempts == 0 {
		t.Errorf("report swap totals not populated: %+v", rep.SwapTotals)
	}
	if rep.EdgeSkip == nil || rep.EdgeSkip.TotalEdges == 0 {
		t.Error("report missing edge-skip section")
	}
	if rep.Phases == nil {
		t.Error("report missing phases section")
	}
}

// TestRunCanceledContext: a context canceled before the run starts must
// surface the context error (the -timeout / SIGINT path) and write no
// output file.
func TestRunCanceledContext(t *testing.T) {
	dir := t.TempDir()
	c := valid()
	c.PowerLaw = 500
	c.Quiet = true
	c.Out = filepath.Join(dir, "graph.txt")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, c)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got err %v, want context.Canceled", err)
	}
	if _, err := os.Stat(c.Out); !os.IsNotExist(err) {
		t.Error("canceled run still created the output file")
	}
}
