// Command experiments regenerates the paper's tables and figures on the
// synthetic Table I analogs and prints the rows/series each one plots.
//
// Usage:
//
//	experiments -exp all
//	experiments -exp fig4 -trials 5 -iters 24
//	experiments -exp table1 -max-vertices 500000
//
// Experiments: table1, fig1, fig2, fig3, fig4, fig5, fig6, swapscale,
// all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"nullgraph/internal/experiments"
	"nullgraph/internal/obs"
)

func main() { os.Exit(realMain()) }

// realMain holds main's body so deferred cleanup (the CPU-profile
// flush) runs before the process exits.
func realMain() int {
	var (
		exp        = flag.String("exp", "all", "experiment: table1|fig1|fig2|fig3|fig4|fig5|fig6|swapscale|uniformity|ablation|mixingtime|connected|all")
		workers    = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		seed       = flag.Uint64("seed", 1, "random seed")
		maxVerts   = flag.Int64("max-vertices", 0, "dataset analog size cap (0 = package default of 150k)")
		trials     = flag.Int("trials", 0, "trials per stochastic measurement (0 = default 3)")
		iters      = flag.Int("iters", 0, "swap-iteration axis length for fig4 (0 = default 16)")
		skewed     = flag.Bool("skewed-only", false, "restrict dataset sweeps to the four skewed instances")
		datasets   = flag.String("datasets", "", "comma-separated Table I names to restrict sweeps to")
		reportPath = flag.String("report", "", "also write a chain-health RunReport (JSON) of one instrumented pipeline run to this path")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		timeout    = flag.Duration("timeout", 0, "abort with an error if the run exceeds this (e.g. 10m; 0 = no limit)")
	)
	flag.Parse()

	// Experiment sweeps drive many pipeline runs back to back; -timeout
	// is a hard watchdog over the whole sweep.
	if *timeout > 0 {
		time.AfterFunc(*timeout, func() {
			fmt.Fprintln(os.Stderr, "experiments: -timeout exceeded, aborting")
			os.Exit(1)
		})
	}

	if *pprofAddr != "" {
		addr, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "experiments: pprof listening on http://%s/debug/pprof/\n", addr)
	}
	if *cpuprofile != "" {
		stop, err := obs.StartCPUProfile(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
		defer stop()
	}

	cfg := experiments.Config{
		Workers:        *workers,
		Seed:           *seed,
		MaxVertices:    *maxVerts,
		Trials:         *trials,
		SwapIterations: *iters,
		SkewedOnly:     *skewed,
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}

	w := os.Stdout
	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "swapscale", "uniformity", "ablation", "mixingtime", "connected"}
	}
	for _, name := range names {
		if err := run(name, cfg, w); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			return 1
		}
	}
	if *reportPath != "" {
		rep, err := experiments.CollectRunReport(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
		if err := obs.WriteReportFile(*reportPath, rep); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
	}
	return 0
}

func run(name string, cfg experiments.Config, w io.Writer) error {
	type renderer interface{ Render(io.Writer) }
	var (
		res renderer
		err error
	)
	switch name {
	case "table1":
		res, err = experiments.RunTable1(cfg)
	case "fig1":
		res, err = experiments.RunFig1(cfg)
	case "fig2":
		res, err = experiments.RunFig2(cfg)
	case "fig3":
		res, err = experiments.RunFig3(cfg)
	case "fig4":
		res, err = experiments.RunFig4(cfg)
	case "fig5":
		res, err = experiments.RunFig5(cfg)
	case "fig6":
		res, err = experiments.RunFig6(cfg)
	case "swapscale":
		res, err = experiments.RunSwapScale(cfg)
	case "uniformity":
		res, err = experiments.RunUniformity(cfg)
	case "ablation":
		res, err = experiments.RunAblation(cfg)
	case "mixingtime":
		res, err = experiments.RunMixingTime(cfg)
	case "connected":
		res, err = experiments.RunConnected(cfg)
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}
