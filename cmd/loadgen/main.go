// Command loadgen load-tests a running nullgraphd and emits
// BENCH_serve.json, the serving entry of the repo's benchmark family
// (cmd/benchcheck gates it with -serve). It drives a concurrent mix of
// generation requests across several fingerprints, verifies every
// payload parses back into a graph of the expected shape, and reports
// throughput, latency percentiles, and failure-mode counts:
//
//	nullgraphd -addr :8080 &
//	loadgen -url http://localhost:8080 -requests 200 -concurrency 16
//
// The output is deliberately absolute, not baseline-relative: a
// healthy server under this load must produce zero non-2xx responses,
// zero deadline misses, and zero verification failures, whatever the
// hardware — so the CI smoke gate needs no committed baseline file.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nullgraph"
	"nullgraph/internal/atomicfile"
)

type config struct {
	URL         string
	Requests    int
	Concurrency int
	Keys        int
	Vertices    int64
	MaxDegree   int64
	Gamma       float64
	Swaps       int
	DeadlineMs  int
	Seed        uint64
	Out         string
}

// report is the BENCH_serve.json document. cmd/benchcheck's -serve
// gate reads the results block; keep field names stable.
type report struct {
	Benchmark string `json:"benchmark"`
	Config    struct {
		Requests    int     `json:"requests"`
		Concurrency int     `json:"concurrency"`
		Keys        int     `json:"keys"`
		Vertices    int64   `json:"vertices"`
		MaxDegree   int64   `json:"max_degree"`
		Gamma       float64 `json:"gamma"`
		Swaps       int     `json:"swaps"`
		DeadlineMs  int     `json:"deadline_ms"`
	} `json:"config"`
	Results results `json:"results"`
}

type results struct {
	Requests       int     `json:"requests"`
	Succeeded      int     `json:"succeeded"`
	Non2xx         int     `json:"non_2xx"`
	DeadlineMisses int     `json:"deadline_misses"`
	QueueRejects   int     `json:"queue_rejections"`
	VerifyFailures int     `json:"verify_failures"`
	TotalSeconds   float64 `json:"total_seconds"`
	ThroughputRPS  float64 `json:"throughput_rps"`
	P50Ms          float64 `json:"p50_ms"`
	P90Ms          float64 `json:"p90_ms"`
	P99Ms          float64 `json:"p99_ms"`
	MaxMs          float64 `json:"max_ms"`
}

func main() {
	var c config
	flag.StringVar(&c.URL, "url", "http://localhost:8080", "nullgraphd base URL")
	flag.IntVar(&c.Requests, "requests", 200, "total requests to send")
	flag.IntVar(&c.Concurrency, "concurrency", 16, "concurrent in-flight requests")
	flag.IntVar(&c.Keys, "keys", 4, "distinct seeds (one engine-pool fingerprint each)")
	flag.Int64Var(&c.Vertices, "n", 20_000, "vertices of the test distribution")
	flag.Int64Var(&c.MaxDegree, "maxdeg", 100, "maximum degree of the test distribution")
	flag.Float64Var(&c.Gamma, "gamma", 2.1, "power-law exponent of the test distribution")
	flag.IntVar(&c.Swaps, "swaps", 10, "swap iterations per request")
	flag.IntVar(&c.DeadlineMs, "deadline-ms", 30_000, "per-request deadline sent to the server")
	flag.Uint64Var(&c.Seed, "seed", 1, "base seed; request i uses seed+i%keys")
	flag.StringVar(&c.Out, "o", "BENCH_serve.json", `output path ("-" = stdout)`)
	flag.Parse()
	if c.Requests <= 0 || c.Concurrency <= 0 || c.Keys <= 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -requests, -concurrency and -keys must be positive")
		os.Exit(2)
	}

	dist, err := nullgraph.PowerLawDistribution(c.Vertices, 1, c.MaxDegree, c.Gamma, 12345)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	var db bytes.Buffer
	if err := nullgraph.WriteDistribution(&db, dist); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	body := db.String()
	wantVertices := 0
	for _, cl := range dist.Classes {
		wantVertices += int(cl.Count)
	}

	client := &http.Client{Timeout: time.Duration(c.DeadlineMs)*time.Millisecond + 30*time.Second}
	var (
		next      atomic.Int64
		mu        sync.Mutex
		latencies []float64
		res       results
	)
	record := func(ms float64, code int, verifyOK bool) {
		mu.Lock()
		defer mu.Unlock()
		latencies = append(latencies, ms)
		switch {
		case code == http.StatusOK && verifyOK:
			res.Succeeded++
		case code == http.StatusOK:
			res.VerifyFailures++
		case code == http.StatusTooManyRequests:
			res.QueueRejects++
			res.Non2xx++
		case code == http.StatusGatewayTimeout:
			res.DeadlineMisses++
			res.Non2xx++
		default:
			res.Non2xx++
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < c.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(c.Requests) {
					return
				}
				seed := c.Seed + uint64(i)%uint64(c.Keys)
				url := fmt.Sprintf("%s/v1/generate?seed=%d&swaps=%d&deadline_ms=%d",
					c.URL, seed, c.Swaps, c.DeadlineMs)
				t0 := time.Now()
				resp, err := client.Post(url, "text/plain", strings.NewReader(body))
				if err != nil {
					record(time.Since(t0).Seconds()*1e3, 0, false)
					continue
				}
				code := resp.StatusCode
				ok := false
				if code == http.StatusOK {
					g, gerr := nullgraph.ReadGraphBinary(resp.Body)
					ok = gerr == nil && g.NumVertices == wantVertices && len(g.Edges) > 0
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				record(time.Since(t0).Seconds()*1e3, code, ok)
			}
		}()
	}
	wg.Wait()

	res.Requests = c.Requests
	res.TotalSeconds = time.Since(start).Seconds()
	if res.TotalSeconds > 0 {
		res.ThroughputRPS = float64(c.Requests) / res.TotalSeconds
	}
	sort.Float64s(latencies)
	res.P50Ms = percentile(latencies, 0.50)
	res.P90Ms = percentile(latencies, 0.90)
	res.P99Ms = percentile(latencies, 0.99)
	if n := len(latencies); n > 0 {
		res.MaxMs = latencies[n-1]
	}

	var rep report
	rep.Benchmark = "serve"
	rep.Config.Requests = c.Requests
	rep.Config.Concurrency = c.Concurrency
	rep.Config.Keys = c.Keys
	rep.Config.Vertices = c.Vertices
	rep.Config.MaxDegree = c.MaxDegree
	rep.Config.Gamma = c.Gamma
	rep.Config.Swaps = c.Swaps
	rep.Config.DeadlineMs = c.DeadlineMs
	rep.Results = res

	if err := writeReport(c.Out, &rep); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr,
		"loadgen: %d requests, %d ok, %d non-2xx (%d deadline, %d queue), %d verify failures, %.1f req/s, p50 %.1fms p99 %.1fms\n",
		res.Requests, res.Succeeded, res.Non2xx, res.DeadlineMisses, res.QueueRejects,
		res.VerifyFailures, res.ThroughputRPS, res.P50Ms, res.P99Ms)
	if res.Succeeded != res.Requests {
		os.Exit(1)
	}
}

// percentile returns the nearest-rank percentile of sorted ms values.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func writeReport(path string, rep *report) error {
	if path == "-" {
		return encode(os.Stdout, rep)
	}
	return atomicfile.Write(path, func(w io.Writer) error { return encode(w, rep) })
}

func encode(w io.Writer, rep *report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
