// Command statcheck runs the statistical verification suite
// (internal/statcheck) at configurable budgets: exact-enumeration
// uniformity gates for the swap chains, Bernoulli-marginal gates for
// edge-skipping, and moment gates for probgen fidelity.
//
// Usage:
//
//	statcheck                                   # all checks, default budgets
//	statcheck -space swap-matchings-k6,probgen-degrees
//	statcheck -samples 100000 -seed 7 -alpha 0.0001
//	statcheck -json > statcheck-report.json     # nullgraph/statcheck-report/v1
//
// The process exits 0 when every selected check passes, 1 when any
// check rejects its null, and 2 on usage or execution errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"nullgraph/internal/statcheck"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run holds main's body so tests can drive the CLI end to end.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("statcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		space    = fs.String("space", "all", "comma-separated check names, or \"all\" (see -list)")
		list     = fs.Bool("list", false, "list available checks and exit")
		samples  = fs.Int("samples", 0, "per-attempt sample budget for every check (0 = per-check defaults)")
		seed     = fs.Uint64("seed", 1, "base seed (attempts and samples derive from it)")
		alpha    = fs.Float64("alpha", 0, "per-attempt significance level (0 = default 1e-3)")
		attempts = fs.Int("attempts", 0, "retry budget: fail only when every attempt rejects (0 = default 3)")
		workers  = fs.Int("workers", 1, "sampler parallel width (0 = GOMAXPROCS; 1 is deterministic)")
		jsonOut  = fs.Bool("json", false, "emit the machine-readable report (schema "+statcheck.ReportSchema+") on stdout")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, c := range statcheck.Checks() {
			fmt.Fprintf(stdout, "%-26s %6d samples  %s\n", c.Name, c.DefaultSamples, c.Description)
		}
		return 0
	}
	var names []string
	if *space != "" && *space != "all" {
		for _, n := range strings.Split(*space, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	cfg := statcheck.Config{
		Samples:     *samples,
		Alpha:       *alpha,
		MaxAttempts: *attempts,
		Seed:        *seed,
		Workers:     *workers,
	}
	rep, err := statcheck.RunChecks(names, cfg)
	if err != nil {
		fmt.Fprintln(stderr, "statcheck:", err)
		return 2
	}
	if *jsonOut {
		if err := rep.WriteJSON(stdout); err != nil {
			fmt.Fprintln(stderr, "statcheck:", err)
			return 2
		}
	} else {
		renderText(stdout, rep)
	}
	if !rep.Pass {
		return 1
	}
	return 0
}

func renderText(w io.Writer, rep *statcheck.Report) {
	fmt.Fprintf(w, "statcheck: seed=%d alpha=%g attempts=%d workers=%d\n",
		rep.Seed, rep.Alpha, rep.MaxAttempts, rep.Workers)
	for _, c := range rep.Checks {
		last := c.Attempts[len(c.Attempts)-1]
		verdict := "pass"
		if !c.Pass {
			verdict = "REJECT"
		}
		size := ""
		switch {
		case c.States > 0:
			size = fmt.Sprintf("%d states", c.States)
		case c.Cells > 0:
			size = fmt.Sprintf("%d cells", c.Cells)
		}
		fmt.Fprintf(w, "  %-26s %-10s %7d samples  %-10s stat=%10.3f dof=%-3d p=%.6f attempts=%d  %s\n",
			c.Name, c.Kind, c.Samples, size, last.Stat, last.Dof, last.P, len(c.Attempts), verdict)
		if !c.Pass {
			verdictDetail(w, c)
		}
	}
	if rep.Pass {
		fmt.Fprintln(w, "PASS: no check rejected its null hypothesis")
	} else {
		fmt.Fprintln(w, "FAIL: at least one check rejected; see attempts above")
	}
}

func verdictDetail(w io.Writer, c statcheck.CheckResult) {
	for i, a := range c.Attempts {
		fmt.Fprintf(w, "    attempt %d: seed=%d stat=%.3f p=%g\n", i, a.Seed, a.Stat, a.P)
	}
}
