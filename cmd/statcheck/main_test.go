package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nullgraph/internal/statcheck"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/report.golden.json")

// goldenArgs pin everything that feeds the report: one cheap
// deterministic check, fixed seed, single worker, small budget.
var goldenArgs = []string{
	"-space", "swap-matchings-k6",
	"-samples", "600",
	"-seed", "42",
	"-workers", "1",
	"-json",
}

// TestJSONGolden locks the exact bytes of the v1 report for a pinned
// configuration: any schema drift (field rename, ordering change,
// formatting change) or sampler-determinism regression shows up as a
// golden diff. Regenerate deliberately with -update-golden.
func TestJSONGolden(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(goldenArgs, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	golden := filepath.Join("testdata", "report.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("report drifted from golden.\ngot:\n%s\nwant:\n%s", out.Bytes(), want)
	}
}

// TestJSONSchemaFields validates the report structurally: schema tag,
// required fields, and attempt layout.
func TestJSONSchemaFields(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(goldenArgs, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	var rep map[string]any
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep["schema"] != statcheck.ReportSchema {
		t.Errorf("schema = %v, want %v", rep["schema"], statcheck.ReportSchema)
	}
	for _, field := range []string{"seed", "alpha", "max_attempts", "workers", "checks", "pass"} {
		if _, ok := rep[field]; !ok {
			t.Errorf("report missing field %q", field)
		}
	}
	checks, ok := rep["checks"].([]any)
	if !ok || len(checks) != 1 {
		t.Fatalf("checks = %v", rep["checks"])
	}
	check := checks[0].(map[string]any)
	for _, field := range []string{"name", "kind", "samples", "alpha", "attempts", "pass"} {
		if _, ok := check[field]; !ok {
			t.Errorf("check missing field %q", field)
		}
	}
	attempt := check["attempts"].([]any)[0].(map[string]any)
	for _, field := range []string{"seed", "stat", "dof", "p"} {
		if _, ok := attempt[field]; !ok {
			t.Errorf("attempt missing field %q", field)
		}
	}
}

func TestListFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-list"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, c := range statcheck.Checks() {
		if !strings.Contains(out.String(), c.Name) {
			t.Errorf("-list missing %s", c.Name)
		}
	}
}

func TestUnknownSpace(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-space", "bogus"}, &out, &errBuf); code != 2 {
		t.Errorf("unknown space: exit %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "unknown check") {
		t.Errorf("stderr: %s", errBuf.String())
	}
}

// TestRejectionExitCode drives a selection that must fail: the honest
// sampler judged at alpha just under 1 rejects on every attempt (any
// finite statistic has p < 1 - eps), exercising the exit-1 path without
// a long run.
func TestRejectionExitCode(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{
		"-space", "swap-matchings-k6",
		"-samples", "300",
		"-attempts", "1",
		"-alpha", "0.999999",
		"-workers", "1",
	}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Errorf("text output missing FAIL: %s", out.String())
	}
}

func TestTextOutput(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-space", "swap-matchings-k6", "-samples", "600", "-seed", "42", "-workers", "1"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	for _, want := range []string{"swap-matchings-k6", "uniformity", "15 states", "PASS"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("text output missing %q:\n%s", want, out.String())
		}
	}
}
