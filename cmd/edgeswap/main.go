// Command edgeswap uniformly mixes an existing edge list with parallel
// double-edge swaps (the paper's Algorithm III.1), preserving every
// vertex's degree while randomizing the topology. In the default simple
// space, non-simple inputs (self-loops, multi-edges) are first made
// simple by a bounded targeted pass; -space selects one of the other
// sampling-space cells (loopy/multigraph × stub/vertex-labeled)
// instead, whose inputs must already satisfy the cell. With -directed
// the input is treated as an arc list and mixed with double-arc swaps
// plus triangle reversals, preserving in- AND out-degrees.
//
// Usage:
//
//	edgeswap -in graph.txt -swaps 10 -o shuffled.txt
//	edgeswap -in graph.txt -mix -o shuffled.txt     # swap until mixed
//	edgeswap -in graph.txt -adaptive -o shuffled.txt  # adaptive stopping
//	edgeswap -in multi.txt -space multigraph-stub -o shuffled.txt
//	edgeswap -in digraph.txt -directed -o shuffled.txt
//	edgeswap -in graph.txt -report report.json      # chain-health report
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"nullgraph"
	"nullgraph/internal/atomicfile"
	"nullgraph/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "edgeswap:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in         = flag.String("in", "", "input edge list (\"u v\" lines; - = stdin)")
		swaps      = flag.Int("swaps", 10, "double-edge swap iterations")
		mix        = flag.Bool("mix", false, "swap until every edge swapped at least once (overrides -swaps)")
		adaptive   = flag.Bool("adaptive", false, "stop swapping adaptively when the monitored statistic tests stationary (overrides -swaps)")
		stopStat   = flag.String("stop-stat", "assortativity", "adaptive statistic: assortativity, triangles or success-rate (with -adaptive; -directed always monitors success-rate)")
		stopFloor  = flag.Int("stop-floor", 0, "minimum swap iterations before an adaptive stop (0 = default)")
		stopBudget = flag.Int("stop-budget", 0, "maximum swap iterations for an adaptive run (0 = default)")
		spaceName  = flag.String("space", "simple", "sampling space: simple, loopy-stub, loopy-vertex, multigraph-stub or multigraph-vertex")
		connected  = flag.Bool("connected", false, "keep the graph connected while mixing (Viger–Latapy connectivity-preserving chain; requires a simple -space)")
		directed   = flag.Bool("directed", false, "treat the input as a directed arc list")
		workers    = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		seed       = flag.Uint64("seed", 1, "random seed")
		out        = flag.String("o", "-", "output path (- = stdout); files are written atomically (temp + rename)")
		binary     = flag.Bool("binary", false, "write the compact binary edge-list format instead of text")
		quiet      = flag.Bool("q", false, "suppress the summary line on stderr")
		report     = flag.String("report", "", "write a chain-health RunReport (JSON) to this path (- = stdout)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		timeout    = flag.Duration("timeout", 0, "abandon the run after this long (e.g. 30s; 0 = no limit); SIGINT/SIGTERM also stop it gracefully")
	)
	flag.Parse()
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	if *report != "" && *directed {
		return fmt.Errorf("-report is not supported with -directed")
	}
	if *binary && *directed {
		return fmt.Errorf("-binary is not supported with -directed (no binary arc-list format)")
	}
	space, err := nullgraph.ParseSpace(*spaceName)
	if err != nil {
		return err
	}
	if *directed && space != nullgraph.SpaceSimple {
		return fmt.Errorf("-space is not supported with -directed (the space matrix is undirected)")
	}
	if *connected {
		if *directed {
			return fmt.Errorf("-connected is not supported with -directed (connected sampling is undirected)")
		}
		if space != nullgraph.SpaceSimple && space != nullgraph.SpaceSimpleVertex {
			return fmt.Errorf("-connected requires a simple space (got -space %s)", *spaceName)
		}
	}
	if *adaptive && *mix {
		return fmt.Errorf("-adaptive and -mix are mutually exclusive; pass at most one")
	}
	if !*adaptive && (*stopFloor != 0 || *stopBudget != 0) {
		return fmt.Errorf("-stop-floor and -stop-budget require -adaptive")
	}
	if *stopFloor < 0 || *stopBudget < 0 {
		return fmt.Errorf("-stop-floor and -stop-budget must be >= 0 (got %d, %d)", *stopFloor, *stopBudget)
	}
	if *stopBudget > 0 && *stopFloor > *stopBudget {
		return fmt.Errorf("-stop-floor %d exceeds -stop-budget %d", *stopFloor, *stopBudget)
	}
	var policy *nullgraph.StopPolicy
	if *adaptive {
		var stat nullgraph.StopStatistic
		switch *stopStat {
		case "", "assortativity":
			stat = nullgraph.StopOnAssortativity
		case "triangles":
			stat = nullgraph.StopOnTriangles
		case "success-rate":
			stat = nullgraph.StopOnSuccessRate
		default:
			return fmt.Errorf("-stop-stat must be assortativity, triangles or success-rate (got %q)", *stopStat)
		}
		policy = &nullgraph.StopPolicy{Statistic: stat, Floor: *stopFloor, Budget: *stopBudget}
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *timeout > 0 {
		var cancelTime context.CancelFunc
		ctx, cancelTime = context.WithTimeout(ctx, *timeout)
		defer cancelTime()
	}

	if *pprofAddr != "" {
		addr, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "edgeswap: pprof listening on http://%s/debug/pprof/\n", addr)
	}
	if *cpuprofile != "" {
		stop, err := obs.StartCPUProfile(*cpuprofile)
		if err != nil {
			return err
		}
		defer stop()
	}

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	// The output file is written only after the mix succeeds, and file
	// saves are atomic (temp + fsync + rename via atomicfile), so an
	// interrupted run — graceful -timeout/SIGINT or a hard kill
	// mid-write — can never leave a truncated output behind.
	writeOut := func(write func(w io.Writer) error) error {
		if *out == "-" {
			return write(os.Stdout)
		}
		return atomicfile.Write(*out, write)
	}
	opt := nullgraph.Options{
		Space:           space,
		Connected:       *connected,
		Workers:         *workers,
		Seed:            *seed,
		SwapIterations:  *swaps,
		MixUntilSwapped: *mix,
		StopPolicy:      policy,
		CollectReport:   *report != "",
	}
	stopDesc := func(st *nullgraph.StopReport) string {
		if st == nil || st.Policy != "adaptive" {
			return ""
		}
		return fmt.Sprintf(" | adaptive stop: %s (%s)", st.Reason, st.Statistic)
	}

	if *directed {
		g, err := nullgraph.ReadDigraph(r)
		if err != nil {
			return err
		}
		before := g.CheckSimplicity()
		res, err := nullgraph.ShuffleDirectedContext(ctx, g, opt)
		if err != nil {
			return err
		}
		if err := writeOut(func(w io.Writer) error { return nullgraph.WriteDigraph(w, g) }); err != nil {
			return err
		}
		if !*quiet {
			after := g.CheckSimplicity()
			var total, success int64
			for _, s := range res.SwapIterations {
				total += s.Attempts
				success += s.Successes
			}
			fmt.Fprintf(os.Stderr,
				"edgeswap: arcs=%d | input loops=%d dup=%d -> output loops=%d dup=%d | %d/%d proposals committed over %d iterations%s\n",
				g.NumArcs(), before.SelfLoops, before.DuplicateArcs, after.SelfLoops, after.DuplicateArcs,
				success, total, len(res.SwapIterations), stopDesc(res.Stop))
		}
		return nil
	}

	// The default simple space reads any input (defects are simplified
	// before the chain runs); non-simple cells validate membership at
	// read time so a bad input fails before any work.
	read := func(rd io.Reader) (*nullgraph.Graph, error) { return nullgraph.ReadGraph(rd) }
	if space != nullgraph.SpaceSimple {
		read = func(rd io.Reader) (*nullgraph.Graph, error) { return nullgraph.ReadGraphInSpace(rd, space) }
	}
	g, err := read(r)
	if err != nil {
		return err
	}
	before := g.CheckSimplicity()
	res, err := nullgraph.ShuffleContext(ctx, g, opt)
	if err != nil {
		return err
	}
	if err := writeOut(func(w io.Writer) error {
		if *binary {
			return nullgraph.WriteGraphBinary(w, g)
		}
		return nullgraph.WriteGraph(w, g)
	}); err != nil {
		return err
	}
	if *report != "" && res.Report != nil {
		if err := obs.WriteReportFile(*report, res.Report); err != nil {
			return err
		}
	}
	if !*quiet {
		after := g.CheckSimplicity()
		var total, success int64
		for _, s := range res.SwapIterations {
			total += s.Attempts
			success += s.Successes
		}
		simplified := ""
		if res.Simplify != nil {
			simplified = fmt.Sprintf(" | simplified %d defects in %d swaps", res.Simplify.InitialDefects, res.Simplify.Swaps)
		}
		fmt.Fprintf(os.Stderr,
			"edgeswap: space=%s m=%d | input loops=%d multi=%d -> output loops=%d multi=%d | %d/%d proposals committed over %d iterations%s%s\n",
			space, g.NumEdges(), before.SelfLoops, before.MultiEdges, after.SelfLoops, after.MultiEdges,
			success, total, len(res.SwapIterations), simplified, stopDesc(res.Stop))
	}
	return nil
}
