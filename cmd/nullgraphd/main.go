// Command nullgraphd serves null-model graph generation over HTTP: a
// long-running, multi-tenant front end over pooled nullgraph.Engine
// sessions (internal/serve). Requests POST a degree distribution and
// stream back a generated edge list; identical (distribution, options)
// requests share a pooled session and draw distinct samples of one
// deterministic batch.
//
//	nullgraphd -addr :8080 &
//	curl -s -X POST --data-binary @dist.txt \
//	    'localhost:8080/v1/generate?seed=42&swaps=10' -o graph.bin
//
// Endpoints:
//
//	POST /v1/generate  — body: "degree count" lines; query: seed, swaps,
//	                     stop (mixed|assortativity|triangles|success-rate),
//	                     refine, format (binary|text), deadline_ms;
//	                     response: binary (default) or text edge list.
//	GET  /metrics      — Prometheus text: request/latency counters plus
//	                     RunReport v2 per-phase wall time and stop
//	                     decisions (DESIGN.md §13).
//	GET  /healthz      — liveness.
//
// Responses carry X-Nullgraph-Seed / -Sample / -Stop-Reason /
// -Swap-Iterations / -Vertices / -Edges headers; any sample can be
// reproduced offline with nullgen and Options.Seed =
// SampleSeed(seed, sample).
//
// Overload is explicit, never silent: beyond -max-concurrent running
// requests and -max-queue waiters the server answers 429, and a
// request whose deadline expires — queued or mid-generation — gets 504
// with the partial sample discarded.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nullgraph/internal/serve"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		workers       = flag.Int("workers", 1, "parallel width of each pooled engine (1 = deterministic per sample)")
		maxConcurrent = flag.Int("max-concurrent", 0, "generation slots (0 = GOMAXPROCS)")
		maxQueue      = flag.Int("max-queue", 0, "queued requests beyond the slots before 429 (0 = 4x slots)")
		deadline      = flag.Duration("deadline", 30*time.Second, "default per-request deadline")
		maxDeadline   = flag.Duration("max-deadline", 5*time.Minute, "cap on client-requested deadlines")
		maxIdle       = flag.Int("max-idle", 4, "warm engines retained per fingerprint")
		seed          = flag.Uint64("seed", 0, "base seed for requests that send none")
	)
	flag.Parse()

	s := serve.New(serve.Config{
		Workers:         *workers,
		MaxConcurrent:   *maxConcurrent,
		MaxQueue:        *maxQueue,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		MaxIdlePerKey:   *maxIdle,
		Seed:            *seed,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "nullgraphd: listening on %s\n", *addr)

	select {
	case <-ctx.Done():
		// Graceful drain: stop accepting, let in-flight requests finish
		// within the default deadline, then release the engine pool.
		fmt.Fprintln(os.Stderr, "nullgraphd: shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), *deadline)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			fmt.Fprintln(os.Stderr, "nullgraphd: shutdown:", err)
		}
		if err := s.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "nullgraphd: close:", err)
		}
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "nullgraphd:", err)
			os.Exit(1)
		}
	}
}
