// Command graphstats summarizes an edge list with the statistics this
// library's experiments use: Table I-style counts, degree skew (Gini),
// assortativity, clustering, components, and optionally the degree
// distribution itself — handy for checking generator outputs or
// preparing "-dist" inputs for nullgen.
//
// Usage:
//
//	graphstats -in graph.txt
//	graphstats -in graph.txt -dist-out degrees.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nullgraph"
)

func main() {
	var (
		in      = flag.String("in", "", "input edge list (\"u v\" lines; - = stdin)")
		distOut = flag.String("dist-out", "", "also write the degree distribution here (\"degree count\" lines)")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		timeout = flag.Duration("timeout", 0, "abort with an error if the run exceeds this (e.g. 30s; 0 = no limit)")
	)
	flag.Parse()
	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}
	// The analytics here have no cooperative cancellation points, so
	// -timeout is a hard watchdog rather than a graceful stop.
	if *timeout > 0 {
		time.AfterFunc(*timeout, func() {
			fmt.Fprintln(os.Stderr, "graphstats: -timeout exceeded, aborting")
			os.Exit(1)
		})
	}
	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	g, err := nullgraph.ReadGraph(r)
	if err != nil {
		fatal(err)
	}

	stats := nullgraph.ComputeStats(g, *workers)
	simplicity := g.CheckSimplicity()
	deg := g.Degrees(*workers)
	_, components := nullgraph.ConnectedComponents(g, *workers)

	fmt.Printf("vertices            %d\n", stats.NumVertices)
	fmt.Printf("edges               %d\n", stats.NumEdges)
	fmt.Printf("avg degree          %.4f\n", stats.AvgDegree)
	fmt.Printf("max degree          %d\n", stats.MaxDegree)
	fmt.Printf("unique degrees |D|  %d\n", stats.UniqueDegrees)
	fmt.Printf("self loops          %d\n", simplicity.SelfLoops)
	fmt.Printf("multi edges         %d\n", simplicity.MultiEdges)
	fmt.Printf("gini coefficient    %.4f\n", nullgraph.Gini(deg))
	fmt.Printf("assortativity       %+.4f\n", nullgraph.Assortativity(g, *workers))
	fmt.Printf("components          %d\n", components)
	if simplicity.IsSimple() {
		fmt.Printf("transitivity        %.4f\n", nullgraph.GlobalClusteringCoefficient(g, *workers))
		fmt.Printf("triangles           %d\n", nullgraph.CountTriangles(g, *workers))
	} else {
		fmt.Printf("transitivity        (skipped: graph is not simple)\n")
	}

	if *distOut != "" {
		f, err := os.Create(*distOut)
		if err != nil {
			fatal(err)
		}
		dist := nullgraph.DistributionOf(g, *workers)
		if err := nullgraph.WriteDistribution(f, dist); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphstats:", err)
	os.Exit(1)
}
