// Command lfrgen generates LFR-like community benchmark graphs
// (Section VI of the paper): power-law degrees, power-law community
// sizes, and a mixing parameter mu controlling the fraction of
// cross-community edges. The graph goes to -o; the planted community
// assignment goes to -communities as "vertex community" lines.
//
// Usage:
//
//	lfrgen -n 100000 -mu 0.3 -o graph.txt -communities comm.txt
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"nullgraph"
	"nullgraph/internal/atomicfile"
)

func main() {
	var (
		n        = flag.Int64("n", 10000, "number of vertices")
		degGamma = flag.Float64("deg-gamma", 2.2, "degree power-law exponent")
		dmin     = flag.Int64("dmin", 3, "minimum degree")
		dmax     = flag.Int64("dmax", 100, "maximum degree")
		ComGamma = flag.Float64("comm-gamma", 1.8, "community size power-law exponent")
		cmin     = flag.Int64("cmin", 20, "minimum community size")
		cmax     = flag.Int64("cmax", 1000, "maximum community size")
		mu       = flag.Float64("mu", 0.3, "mixing parameter (fraction of external edges)")
		swaps    = flag.Int("swaps", 4, "swap iterations per layer subgraph")
		workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		seed     = flag.Uint64("seed", 1, "random seed")
		out      = flag.String("o", "-", "output edge list (- = stdout); files are written atomically (temp + rename)")
		binary   = flag.Bool("binary", false, "write the compact binary edge-list format instead of text")
		commOut  = flag.String("communities", "", "write the planted community of each vertex here")
		quiet    = flag.Bool("q", false, "suppress the summary line on stderr")
		timeout  = flag.Duration("timeout", 0, "abandon the run after this long (e.g. 30s; 0 = no limit); SIGINT/SIGTERM also stop it gracefully")
	)
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *timeout > 0 {
		var cancelTime context.CancelFunc
		ctx, cancelTime = context.WithTimeout(ctx, *timeout)
		defer cancelTime()
	}

	res, err := nullgraph.LFRContext(ctx, nullgraph.LFRConfig{
		NumVertices:    *n,
		DegreeGamma:    *degGamma,
		MinDegree:      *dmin,
		MaxDegree:      *dmax,
		CommunityGamma: *ComGamma,
		MinCommunity:   *cmin,
		MaxCommunity:   *cmax,
		Mu:             *mu,
		SwapIterations: *swaps,
		Workers:        *workers,
		Seed:           *seed,
	})
	if err != nil {
		fatal(err)
	}

	writeGraph := func(w io.Writer) error {
		if *binary {
			return nullgraph.WriteGraphBinary(w, res.Graph)
		}
		return nullgraph.WriteGraph(w, res.Graph)
	}
	if *out == "-" {
		if err := writeGraph(os.Stdout); err != nil {
			fatal(err)
		}
	} else if err := atomicfile.Write(*out, writeGraph); err != nil {
		fatal(err)
	}

	if *commOut != "" {
		err := atomicfile.Write(*commOut, func(w io.Writer) error {
			bw := bufio.NewWriter(w)
			for ci, members := range res.Communities {
				for _, v := range members {
					if _, err := fmt.Fprintf(bw, "%d %d\n", v, ci); err != nil {
						return err
					}
				}
			}
			return bw.Flush()
		})
		if err != nil {
			fatal(err)
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr,
			"lfrgen: n=%d m=%d communities=%d target mu=%.3f observed mu=%.3f dropped stubs=%d duplicate edges=%d\n",
			res.Graph.NumVertices, res.Graph.NumEdges(), len(res.Communities),
			*mu, res.ObservedMu, res.DroppedStubs, res.DuplicateEdges)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lfrgen:", err)
	os.Exit(1)
}
