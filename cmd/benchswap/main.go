// Command benchswap measures the swap engine's hot path — one full
// Step on a large ring graph — and emits the result as a small JSON
// document (BENCH_swap.json by default) for CI tracking. It reports the
// same quantities as the BenchmarkSwapStep micro-benchmark: ns per
// iteration, bytes and allocations per iteration, and committed swaps
// per second, at one worker and at the configured maximum.
//
// Usage:
//
//	benchswap                      # 1M-edge ring, writes BENCH_swap.json
//	benchswap -edges 262144 -o -   # smaller graph, JSON to stdout
//	benchswap -space loopy-vertex  # measure a non-default sampling space
//
// The committed baseline tracks the default simple space; non-simple
// measurements carry a "space" field so benchcheck never compares them
// against the simple-cell baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"nullgraph/internal/graph"
	"nullgraph/internal/obs"
	"nullgraph/internal/swap"
)

// Measurement is one benchmark configuration's result. Space is empty
// for the default simple cell so the committed BENCH_swap.json keeps
// its pre-matrix shape and benchcheck compares the simple-space Step
// against it unchanged.
type Measurement struct {
	Workers     int     `json:"workers"`
	Edges       int     `json:"edges"`
	Space       string  `json:"space,omitempty"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	SwapsPerSec float64 `json:"swaps_per_sec"`
}

// Report is the emitted document.
type Report struct {
	Benchmark  string        `json:"benchmark"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Results    []Measurement `json:"results"`
}

func ring(n int) *graph.EdgeList {
	edges := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = graph.Edge{U: int32(i), V: int32((i + 1) % n)}
	}
	return graph.NewEdgeList(edges, n)
}

// measure runs Step under testing.Benchmark for one worker count.
func measure(edges, workers int, space graph.Space) Measurement {
	var successes int64
	var n int
	res := testing.Benchmark(func(b *testing.B) {
		el := ring(edges)
		eng := swap.NewEngine(el, swap.Options{Workers: workers, Seed: 1, Space: space})
		defer eng.Close()
		eng.Step() // warm-up: buffers materialize on first use
		successes, n = 0, 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			successes += eng.Step().Successes
		}
		n = b.N
	})
	m := Measurement{
		Workers:     workers,
		Edges:       edges,
		Iterations:  n,
		NsPerOp:     res.NsPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
	if space != graph.SimpleStub {
		m.Space = space.String()
	}
	if res.T > 0 {
		m.SwapsPerSec = float64(successes) / res.T.Seconds()
	}
	return m
}

// collectRunReport runs a short instrumented chain on the benchmark
// graph and returns its chain-health report. This is a separate run
// from the timed measurements, so the numbers in BENCH_swap.json stay
// uninstrumented.
func collectRunReport(edges, iterations int) *obs.RunReport {
	rec := obs.NewRecorder()
	el := ring(edges)
	swap.Run(el, swap.Options{Iterations: iterations, Workers: 1, Seed: 1, TrackSwapped: true, Recorder: rec})
	return rec.Report()
}

func main() {
	var (
		edges      = flag.Int("edges", 1<<20, "ring size (edge count) to benchmark")
		out        = flag.String("o", "BENCH_swap.json", "output path (- = stdout)")
		reportPath = flag.String("report", "", "also write a chain-health RunReport (JSON, from a separate instrumented run) to this path")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the benchmark to this file")
		timeout    = flag.Duration("timeout", 0, "abort with an error if the benchmark exceeds this (e.g. 5m; 0 = no limit)")
		spaceName  = flag.String("space", "simple", "sampling space to benchmark; the committed baseline tracks the simple cell")
	)
	flag.Parse()
	if *edges < 2 {
		fmt.Fprintln(os.Stderr, "benchswap: -edges must be >= 2")
		os.Exit(2)
	}
	space, err := graph.ParseSpace(*spaceName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchswap:", err)
		os.Exit(2)
	}
	// testing.Benchmark has no cancellation hook; -timeout is a hard
	// watchdog over the whole measurement.
	if *timeout > 0 {
		time.AfterFunc(*timeout, func() {
			fmt.Fprintln(os.Stderr, "benchswap: -timeout exceeded, aborting")
			os.Exit(1)
		})
	}
	if *cpuprofile != "" {
		stop, err := obs.StartCPUProfile(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchswap:", err)
			os.Exit(1)
		}
		defer stop()
	}

	report := Report{Benchmark: "swap.Engine.Step", GoMaxProcs: runtime.GOMAXPROCS(0)}
	configs := []int{1}
	if runtime.GOMAXPROCS(0) > 1 {
		configs = append(configs, 0) // 0 = all procs
	}
	for _, workers := range configs {
		m := measure(*edges, workers, space)
		report.Results = append(report.Results, m)
		fmt.Fprintf(os.Stderr, "benchswap: workers=%d edges=%d space=%s ns/op=%d allocs/op=%d B/op=%d swaps/sec=%.0f\n",
			m.Workers, m.Edges, space, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp, m.SwapsPerSec)
	}

	if *reportPath != "" {
		if err := obs.WriteReportFile(*reportPath, collectRunReport(*edges, 8)); err != nil {
			fmt.Fprintln(os.Stderr, "benchswap:", err)
			os.Exit(1)
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchswap:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchswap:", err)
		os.Exit(1)
	}
}
