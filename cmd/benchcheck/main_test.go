package main

import (
	"strings"
	"testing"
)

func swapRep(ns, allocs int64) *swapReport {
	return &swapReport{Results: []swapMeasurement{
		{Workers: 1, Edges: 1 << 20, NsPerOp: ns, AllocsPerOp: allocs},
	}}
}

func genRep(cold, reuse int64, ratio float64) *genReport {
	return &genReport{Results: []genComparison{{
		Workers:         1,
		Cold:            genMeasurement{Mode: "cold", NsPerOp: cold},
		Reuse:           genMeasurement{Mode: "reuse", NsPerOp: reuse},
		ReuseBytesRatio: ratio,
	}}}
}

func TestCheckSwapGates(t *testing.T) {
	base := swapRep(100_000_000, 0)
	cases := []struct {
		name      string
		fresh     *swapReport
		wantFails int
		wantNotes int
		mention   string
	}{
		{"identical", swapRep(100_000_000, 0), 0, 0, ""},
		{"within band", swapRep(110_000_000, 0), 0, 0, ""},
		{"regression", swapRep(120_000_000, 0), 1, 0, "regressed"},
		{"improvement", swapRep(80_000_000, 0), 0, 1, "refresh the baseline"},
		{"allocation", swapRep(100_000_000, 3), 1, 0, "allocates"},
		{"alloc and regression", swapRep(130_000_000, 1), 2, 0, ""},
		{"empty fresh", &swapReport{}, 1, 0, "no results"},
	}
	for _, tc := range cases {
		var o outcome
		checkSwap(&o, base, tc.fresh, 0.15)
		if len(o.failures) != tc.wantFails || len(o.notes) != tc.wantNotes {
			t.Errorf("%s: failures=%v notes=%v, want %d/%d",
				tc.name, o.failures, o.notes, tc.wantFails, tc.wantNotes)
			continue
		}
		if tc.mention != "" {
			all := strings.Join(append(o.failures, o.notes...), "\n")
			if !strings.Contains(all, tc.mention) {
				t.Errorf("%s: output %q does not mention %q", tc.name, all, tc.mention)
			}
		}
	}
}

// TestCheckSwapMissingBaselineConfig: a fresh config the baseline lacks
// is a note (unchecked), not a failure — new configurations must be
// addable before their baseline lands.
func TestCheckSwapMissingBaselineConfig(t *testing.T) {
	base := swapRep(100_000_000, 0)
	fresh := &swapReport{Results: []swapMeasurement{
		{Workers: 8, Edges: 1 << 20, NsPerOp: 50_000_000, AllocsPerOp: 0},
	}}
	var o outcome
	checkSwap(&o, base, fresh, 0.15)
	if len(o.failures) != 0 || len(o.notes) != 1 {
		t.Errorf("failures=%v notes=%v, want 0 failures, 1 note", o.failures, o.notes)
	}
}

// TestCheckSwapSpaceMatching: the simple-space fresh entry (tagged or
// field-less) gates against the pre-matrix baseline unchanged; a
// non-simple space never matches it, and only the simple cell is
// alloc-gated.
func TestCheckSwapSpaceMatching(t *testing.T) {
	base := swapRep(100_000_000, 0) // pre-matrix document: no space field
	cases := []struct {
		name      string
		fresh     *swapReport
		wantFails int
		wantNotes int
		mention   string
	}{
		{"tagged simple regresses vs untagged baseline", &swapReport{Results: []swapMeasurement{
			{Workers: 1, Edges: 1 << 20, Space: "simple", NsPerOp: 130_000_000},
		}}, 1, 0, "regressed"},
		{"simple-stub alias matches too", &swapReport{Results: []swapMeasurement{
			{Workers: 1, Edges: 1 << 20, Space: "simple-stub", NsPerOp: 100_000_000},
		}}, 0, 0, ""},
		{"non-simple space skips the simple baseline", &swapReport{Results: []swapMeasurement{
			{Workers: 1, Edges: 1 << 20, Space: "multigraph-stub", NsPerOp: 300_000_000},
		}}, 0, 1, "no matching baseline"},
		{"vertex-labeled allocations are a note, not a gate", &swapReport{Results: []swapMeasurement{
			{Workers: 1, Edges: 1 << 20, Space: "loopy-vertex", NsPerOp: 300_000_000, AllocsPerOp: 7},
		}}, 0, 2, "only the simple cell is alloc-gated"},
		{"simple-space allocation still hard-fails", &swapReport{Results: []swapMeasurement{
			{Workers: 1, Edges: 1 << 20, Space: "simple", NsPerOp: 100_000_000, AllocsPerOp: 1},
		}}, 1, 0, "budget is 0"},
	}
	for _, tc := range cases {
		var o outcome
		checkSwap(&o, base, tc.fresh, 0.15)
		if len(o.failures) != tc.wantFails || len(o.notes) != tc.wantNotes {
			t.Errorf("%s: failures=%v notes=%v, want %d/%d",
				tc.name, o.failures, o.notes, tc.wantFails, tc.wantNotes)
			continue
		}
		if tc.mention != "" {
			all := strings.Join(append(o.failures, o.notes...), "\n")
			if !strings.Contains(all, tc.mention) {
				t.Errorf("%s: output %q does not mention %q", tc.name, all, tc.mention)
			}
		}
	}
}

func TestCheckGenGates(t *testing.T) {
	base := genRep(30_000_000, 25_000_000, 0.001)
	cases := []struct {
		name      string
		fresh     *genReport
		wantFails int
		wantNotes int
	}{
		{"identical", genRep(30_000_000, 25_000_000, 0.001), 0, 0},
		{"cold regression", genRep(40_000_000, 25_000_000, 0.001), 1, 0},
		{"reuse regression", genRep(30_000_000, 32_000_000, 0.001), 1, 0},
		{"ratio violation", genRep(30_000_000, 25_000_000, 0.25), 1, 0},
		{"both improve", genRep(20_000_000, 18_000_000, 0.001), 0, 2},
	}
	for _, tc := range cases {
		var o outcome
		checkGen(&o, base, tc.fresh, 0.15)
		if len(o.failures) != tc.wantFails || len(o.notes) != tc.wantNotes {
			t.Errorf("%s: failures=%v notes=%v, want %d/%d",
				tc.name, o.failures, o.notes, tc.wantFails, tc.wantNotes)
		}
	}
}

// TestCheckNsBoundary pins the band edges: exactly ±tolerance is inside
// the band (<= / >=, not < / >).
func TestCheckNsBoundary(t *testing.T) {
	var o outcome
	o.checkNs("edge", 100, 115, 0.15) // exactly +15%
	o.checkNs("edge", 100, 85, 0.15)  // exactly -15%
	if len(o.failures) != 0 || len(o.notes) != 0 {
		t.Errorf("exact-band results flagged: failures=%v notes=%v", o.failures, o.notes)
	}
	o.checkNs("bad", 0, 100, 0.15) // degenerate baseline
	if len(o.failures) != 1 {
		t.Errorf("non-positive baseline not failed: %v", o.failures)
	}
}
