// Command benchcheck gates fresh benchmark measurements against the
// committed baselines (BENCH_swap.json, BENCH_generate.json at the
// repo root), replacing ad-hoc CI assertions with one reviewed tool.
//
// Three gates, two of them unconditional:
//
//   - the swap hot path must not allocate: every fresh Step
//     measurement's allocs_per_op must be 0, baseline or not;
//   - the session contract holds: every fresh generate comparison's
//     reuse_bytes_ratio must stay <= 0.10 (DESIGN.md §9);
//   - ns/op must stay within -tolerance (default ±15%) of the baseline
//     measurement with the same configuration. A regression beyond the
//     band fails; an improvement beyond it is reported as a reminder to
//     refresh the baseline, and fails only under -strict (improvements
//     are good news, but a stale baseline stops catching regressions).
//
// Usage:
//
//	benchcheck -swap-baseline BENCH_swap.json -swap BENCH_swap.head.json \
//	           -gen-baseline BENCH_generate.json -gen BENCH_generate.head.json \
//	           -serve BENCH_serve.json
//
// Either pair may be omitted to gate only one benchmark. The -serve
// gate (cmd/loadgen's report) is absolute and needs no baseline: zero
// non-2xx responses, zero deadline misses, zero payload verification
// failures. Exit status: 0 all gates pass, 1 a gate failed, 2 usage
// error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// swapMeasurement mirrors cmd/benchswap's Measurement. Space is empty
// in the committed baseline and in fresh simple-space measurements —
// the pre-matrix document shape — so the simple-space Step gates
// against BENCH_swap.json unchanged.
type swapMeasurement struct {
	Workers     int     `json:"workers"`
	Edges       int     `json:"edges"`
	Space       string  `json:"space,omitempty"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	SwapsPerSec float64 `json:"swaps_per_sec"`
}

// simpleSpace reports whether a measurement's space tag names the
// default simple cell (the 0-alloc hot path the baseline tracks).
func simpleSpace(space string) bool {
	return space == "" || space == "simple" || space == "simple-stub"
}

type swapReport struct {
	Benchmark string            `json:"benchmark"`
	Results   []swapMeasurement `json:"results"`
}

// genMeasurement / genComparison mirror cmd/benchgen's document.
type genMeasurement struct {
	Mode        string `json:"mode"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

type genComparison struct {
	Workers         int            `json:"workers"`
	Cold            genMeasurement `json:"cold"`
	Reuse           genMeasurement `json:"reuse"`
	ReuseBytesRatio float64        `json:"reuse_bytes_ratio"`
}

type genReport struct {
	Benchmark string          `json:"benchmark"`
	Results   []genComparison `json:"results"`
}

// serveResults / serveReport mirror cmd/loadgen's document. The serve
// gate is absolute (no baseline): under the smoke load a healthy
// server has zero non-2xx responses, zero deadline misses, and zero
// payload verification failures on any hardware.
type serveResults struct {
	Requests       int `json:"requests"`
	Succeeded      int `json:"succeeded"`
	Non2xx         int `json:"non_2xx"`
	DeadlineMisses int `json:"deadline_misses"`
	VerifyFailures int `json:"verify_failures"`
}

type serveReport struct {
	Benchmark string       `json:"benchmark"`
	Results   serveResults `json:"results"`
}

// maxReuseBytesRatio is the session contract from DESIGN.md §9.
const maxReuseBytesRatio = 0.10

// outcome accumulates gate results so one run reports every violation
// instead of stopping at the first.
type outcome struct {
	failures []string
	notes    []string
}

func (o *outcome) failf(format string, args ...any) {
	o.failures = append(o.failures, fmt.Sprintf(format, args...))
}

func (o *outcome) notef(format string, args ...any) {
	o.notes = append(o.notes, fmt.Sprintf(format, args...))
}

// checkNs compares one fresh ns/op against its baseline under the
// tolerance band, filing a failure for regressions and a note for
// out-of-band improvements.
func (o *outcome) checkNs(label string, base, fresh int64, tol float64) {
	if base <= 0 {
		o.failf("%s: baseline ns/op %d is not positive", label, base)
		return
	}
	delta := float64(fresh-base) / float64(base)
	switch {
	case delta > tol:
		o.failf("%s: ns/op regressed %.1f%% (baseline %d, fresh %d, tolerance ±%.0f%%)",
			label, delta*100, base, fresh, tol*100)
	case delta < -tol:
		o.notef("%s: ns/op improved %.1f%% (baseline %d, fresh %d) — refresh the baseline (make bench-all) so the gate keeps teeth",
			label, -delta*100, base, fresh)
	}
}

// checkSwap gates a fresh swap report: the simple-space Step must not
// allocate (the hot-path budget of DESIGN.md), and ns/op must stay
// within the band of the baseline entry with the same
// (workers, edges, space) configuration. Non-simple spaces carry an
// explicit space tag and never match the simple-cell baseline; the
// vertex-labeled cells run a map-backed serial chain, so their
// allocations are reported as a note rather than gated.
func checkSwap(o *outcome, baseline, fresh *swapReport, tol float64) {
	for _, f := range fresh.Results {
		label := fmt.Sprintf("swap workers=%d edges=%d", f.Workers, f.Edges)
		if !simpleSpace(f.Space) {
			label += " space=" + f.Space
		}
		if f.AllocsPerOp != 0 {
			if simpleSpace(f.Space) {
				o.failf("%s: Step allocates (%d allocs/op, %d B/op); the hot-path budget is 0",
					label, f.AllocsPerOp, f.BytesPerOp)
			} else {
				o.notef("%s: Step allocates (%d allocs/op, %d B/op); only the simple cell is alloc-gated",
					label, f.AllocsPerOp, f.BytesPerOp)
			}
		}
		b, ok := findSwap(baseline, f.Workers, f.Edges, f.Space)
		if !ok {
			o.notef("%s: no matching baseline entry; ns/op %d unchecked", label, f.NsPerOp)
			continue
		}
		o.checkNs(label, b.NsPerOp, f.NsPerOp, tol)
	}
	if len(fresh.Results) == 0 {
		o.failf("swap: fresh report has no results")
	}
}

func findSwap(rep *swapReport, workers, edges int, space string) (swapMeasurement, bool) {
	for _, m := range rep.Results {
		if m.Workers == workers && m.Edges == edges && spaceEq(m.Space, space) {
			return m, true
		}
	}
	return swapMeasurement{}, false
}

// spaceEq compares space tags, treating every spelling of the simple
// cell (including the baseline's field-less pre-matrix documents) as
// equal.
func spaceEq(a, b string) bool {
	if simpleSpace(a) && simpleSpace(b) {
		return true
	}
	return a == b
}

// checkGen gates a fresh generate report: the reuse-bytes contract on
// every comparison, cold and reuse ns/op against the baseline entry
// with the same worker count.
func checkGen(o *outcome, baseline, fresh *genReport, tol float64) {
	for _, f := range fresh.Results {
		label := fmt.Sprintf("gen workers=%d", f.Workers)
		if f.ReuseBytesRatio > maxReuseBytesRatio {
			o.failf("%s: reuse_bytes_ratio %.3f exceeds the %.2f session contract",
				label, f.ReuseBytesRatio, maxReuseBytesRatio)
		}
		b, ok := findGen(baseline, f.Workers)
		if !ok {
			o.notef("%s: no matching baseline entry; ns/op unchecked", label)
			continue
		}
		o.checkNs(label+" cold", b.Cold.NsPerOp, f.Cold.NsPerOp, tol)
		o.checkNs(label+" reuse", b.Reuse.NsPerOp, f.Reuse.NsPerOp, tol)
	}
	if len(fresh.Results) == 0 {
		o.failf("gen: fresh report has no results")
	}
}

// checkServe gates a fresh loadgen report (DESIGN.md §13): every
// request succeeded, nothing timed out, every payload verified.
func checkServe(o *outcome, fresh *serveReport) {
	r := fresh.Results
	if r.Requests <= 0 {
		o.failf("serve: report has no requests")
		return
	}
	if r.Non2xx != 0 {
		o.failf("serve: %d of %d requests returned non-2xx", r.Non2xx, r.Requests)
	}
	if r.DeadlineMisses != 0 {
		o.failf("serve: %d deadline misses (504)", r.DeadlineMisses)
	}
	if r.VerifyFailures != 0 {
		o.failf("serve: %d responses failed payload verification", r.VerifyFailures)
	}
	if r.Succeeded != r.Requests {
		o.failf("serve: only %d of %d requests succeeded", r.Succeeded, r.Requests)
	}
}

func findGen(rep *genReport, workers int) (genComparison, bool) {
	for _, c := range rep.Results {
		if c.Workers == workers {
			return c, true
		}
	}
	return genComparison{}, false
}

func loadJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func main() {
	var (
		swapBaseline = flag.String("swap-baseline", "", "committed swap baseline (BENCH_swap.json)")
		swapFresh    = flag.String("swap", "", "fresh swap measurement to gate")
		genBaseline  = flag.String("gen-baseline", "", "committed generate baseline (BENCH_generate.json)")
		genFresh     = flag.String("gen", "", "fresh generate measurement to gate")
		serveFresh   = flag.String("serve", "", "fresh loadgen measurement to gate (BENCH_serve.json; absolute, no baseline)")
		tolerance    = flag.Float64("tolerance", 0.15, "allowed relative ns/op drift vs baseline")
		strict       = flag.Bool("strict", false, "also fail on out-of-band improvements (stale baseline)")
	)
	flag.Parse()
	if (*swapFresh == "") != (*swapBaseline == "") || (*genFresh == "") != (*genBaseline == "") {
		fmt.Fprintln(os.Stderr, "benchcheck: -swap/-swap-baseline and -gen/-gen-baseline must be passed in pairs")
		os.Exit(2)
	}
	if *swapFresh == "" && *genFresh == "" && *serveFresh == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: nothing to check; pass -swap/-swap-baseline, -gen/-gen-baseline and/or -serve")
		os.Exit(2)
	}
	if *tolerance <= 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: -tolerance must be positive")
		os.Exit(2)
	}

	var o outcome
	if *swapFresh != "" {
		var base, fresh swapReport
		if err := loadJSON(*swapBaseline, &base); err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(2)
		}
		if err := loadJSON(*swapFresh, &fresh); err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(2)
		}
		checkSwap(&o, &base, &fresh, *tolerance)
	}
	if *genFresh != "" {
		var base, fresh genReport
		if err := loadJSON(*genBaseline, &base); err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(2)
		}
		if err := loadJSON(*genFresh, &fresh); err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(2)
		}
		checkGen(&o, &base, &fresh, *tolerance)
	}
	if *serveFresh != "" {
		var fresh serveReport
		if err := loadJSON(*serveFresh, &fresh); err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(2)
		}
		checkServe(&o, &fresh)
	}

	for _, n := range o.notes {
		fmt.Fprintln(os.Stderr, "benchcheck: note:", n)
	}
	for _, f := range o.failures {
		fmt.Fprintln(os.Stderr, "benchcheck: FAIL:", f)
	}
	if len(o.failures) > 0 || (*strict && len(o.notes) > 0) {
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "benchcheck: all gates pass")
}
