// nullvet is the repo's custom static-analysis driver: a multichecker
// running the internal/analysis suite (rngshare, hotpathalloc,
// stoppoll, atomicalign, errpropagate) over the module's packages with
// full type information. `make lint` and CI run it on every change; it
// exits 1 when any invariant is violated, 2 on usage or load errors.
//
// Usage:
//
//	nullvet [-only a,b] [-list] [packages]
//
// Packages are directories or the "./..." wildcard (the default),
// resolved against the enclosing module.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nullgraph/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated subset of analyzers to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nullvet [-only a,b] [-list] [packages]\n\npackages are directories or ./... (default)\n\nanalyzers:\n")
		for _, a := range analysis.All {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All
	if *only != "" {
		var err error
		analyzers, err = analysis.ByName(*only)
		if err != nil {
			fatalf("%v", err)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatalf("%v", err)
	}
	root, modPath, err := analysis.ModuleRoot(cwd)
	if err != nil {
		fatalf("%v", err)
	}

	dirs, err := resolvePackages(flag.Args(), root)
	if err != nil {
		fatalf("%v", err)
	}

	ld := analysis.NewLoader()
	found := 0
	for _, dir := range dirs {
		importPath, err := analysis.ImportPathFor(root, modPath, dir)
		if err != nil {
			fatalf("%v", err)
		}
		pkg, err := ld.Load(dir, importPath)
		if err != nil {
			fatalf("loading %s: %v", importPath, err)
		}
		diags := analysis.RunPackage(pkg, analyzers)
		found += len(diags)
		if len(diags) > 0 {
			fmt.Print(analysis.FormatDiagnostics(cwd, diags))
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "nullvet: %d finding(s)\n", found)
		os.Exit(1)
	}
}

// resolvePackages expands the argument list into package directories:
// "./..." (or "...") walks the module; anything else must be an
// existing directory.
func resolvePackages(args []string, root string) ([]string, error) {
	if len(args) == 0 {
		return analysis.PackageDirs(root)
	}
	var dirs []string
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			walked, err := analysis.PackageDirs(root)
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, walked...)
		case strings.HasSuffix(arg, "/..."):
			base, err := filepath.Abs(strings.TrimSuffix(arg, "/..."))
			if err != nil {
				return nil, err
			}
			walked, err := analysis.PackageDirs(base)
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, walked...)
		default:
			info, err := os.Stat(arg)
			if err != nil {
				return nil, err
			}
			if !info.IsDir() {
				return nil, fmt.Errorf("%s: not a directory", arg)
			}
			abs, err := filepath.Abs(arg)
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, abs)
		}
	}
	return dirs, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "nullvet: "+format+"\n", args...)
	os.Exit(2)
}
