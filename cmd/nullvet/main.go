// nullvet is the repo's custom static-analysis driver: a multichecker
// running the internal/analysis suite (rngshare, hotpathalloc,
// stoppoll, atomicalign, errpropagate, fingerprintcomplete, schemaver,
// goroutinejoin, ctxflow) over the module's packages with full type
// information. `make lint` and CI run it on every change; it exits 1
// when any invariant is violated, 2 on usage or load errors.
//
// Usage:
//
//	nullvet [-only a,b] [-list] [-json] [-baseline file]
//	        [-update-baseline] [-update-schemas] [packages]
//
// Packages are directories or the "./..." wildcard (the default),
// resolved against the enclosing module. Whatever subset is requested,
// the driver loads the whole module first: analyzers with cross-package
// facts (fingerprintcomplete's //nullgraph:nofingerprint annotations)
// need the module-wide view even when diagnosing one package.
//
// -json emits the findings as a JSON array (file/line/col/analyzer/
// message) on stdout for CI annotation; -baseline filters findings
// through a committed known-debt file and fails on stale entries;
// -update-baseline rewrites that file from the current findings;
// -update-schemas regenerates internal/analysis/schemas.lock from the
// //nullgraph:schema structs (see `make lint-fix-schemas`).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"nullgraph/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole driver, factored so tests can invoke it in-process.
// Exit codes: 0 clean, 1 findings (or stale baseline entries), 2 usage
// or load errors.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nullvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated subset of analyzers to run (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	baselinePath := fs.String("baseline", "", "known-debt baseline file to filter findings through")
	updateBaseline := fs.Bool("update-baseline", false, "rewrite the baseline file from the current findings (requires -baseline)")
	updateSchemas := fs.Bool("update-schemas", false, "regenerate internal/analysis/schemas.lock from the //nullgraph:schema structs")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: nullvet [-only a,b] [-list] [-json] [-baseline file] [-update-baseline] [-update-schemas] [packages]\n\npackages are directories or ./... (default)\n\nanalyzers:\n")
		for _, a := range analysis.All {
			fmt.Fprintf(stderr, "  %-19s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All {
			fmt.Fprintf(stdout, "%-19s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := analysis.All
	if *only != "" {
		var err error
		analyzers, err = analysis.ByName(*only)
		if err != nil {
			fmt.Fprintf(stderr, "nullvet: %v\n", err)
			return 2
		}
	}
	if *updateBaseline && *baselinePath == "" {
		fmt.Fprintln(stderr, "nullvet: -update-baseline requires -baseline <file>")
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "nullvet: %v\n", err)
		return 2
	}
	root, modPath, err := analysis.ModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "nullvet: %v\n", err)
		return 2
	}

	dirs, err := resolvePackages(fs.Args(), root)
	if err != nil {
		fmt.Fprintf(stderr, "nullvet: %v\n", err)
		return 2
	}
	targets := map[string]bool{}
	for _, d := range dirs {
		targets[d] = true
	}

	// Load the entire module up front: fact gathering must see every
	// package before any diagnostics run, regardless of the target set.
	allDirs, err := analysis.PackageDirs(root)
	if err != nil {
		fmt.Fprintf(stderr, "nullvet: %v\n", err)
		return 2
	}
	ld := analysis.NewLoader()
	session := analysis.NewSession(root)
	var pkgs []*analysis.Package
	for _, dir := range allDirs {
		importPath, err := analysis.ImportPathFor(root, modPath, dir)
		if err != nil {
			fmt.Fprintf(stderr, "nullvet: %v\n", err)
			return 2
		}
		pkg, err := ld.Load(dir, importPath)
		if err != nil {
			fmt.Fprintf(stderr, "nullvet: loading %s: %v\n", importPath, err)
			return 2
		}
		pkgs = append(pkgs, pkg)
		analysis.GatherFacts(session, pkg, analyzers)
	}

	if *updateSchemas {
		return runUpdateSchemas(root, pkgs, stderr)
	}

	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		if !targets[pkg.Dir] {
			continue
		}
		diags = append(diags, analysis.RunPackage(session, pkg, analyzers)...)
	}

	var baseline *analysis.Baseline
	if *baselinePath != "" && !*updateBaseline {
		data, err := os.ReadFile(*baselinePath)
		if err != nil && !os.IsNotExist(err) {
			fmt.Fprintf(stderr, "nullvet: %v\n", err)
			return 2
		}
		if err == nil {
			baseline, err = analysis.ParseBaseline(string(data))
			if err != nil {
				fmt.Fprintf(stderr, "nullvet: %s: %v\n", *baselinePath, err)
				return 2
			}
		}
	}

	if *updateBaseline {
		if err := os.WriteFile(*baselinePath, []byte(analysis.FormatBaseline(root, diags)), 0o644); err != nil {
			fmt.Fprintf(stderr, "nullvet: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "nullvet: wrote %s (%d finding(s) baselined)\n", *baselinePath, len(diags))
		return 0
	}

	kept, suppressed := baseline.Filter(root, diags)
	stale := baseline.Unused(root, diags)

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(analysis.JSONDiagnostics(root, kept)); err != nil {
			fmt.Fprintf(stderr, "nullvet: %v\n", err)
			return 2
		}
	} else if len(kept) > 0 {
		fmt.Fprint(stdout, analysis.FormatDiagnostics(cwd, kept))
	}

	failed := false
	if len(kept) > 0 {
		fmt.Fprintf(stderr, "nullvet: %d finding(s)", len(kept))
		if len(suppressed) > 0 {
			fmt.Fprintf(stderr, " (%d more suppressed by baseline)", len(suppressed))
		}
		fmt.Fprintln(stderr)
		failed = true
	}
	if len(stale) > 0 {
		fmt.Fprintf(stderr, "nullvet: %d stale baseline entr%s (finding fixed but still listed) — shrink %s:\n", len(stale), plural(len(stale), "y", "ies"), *baselinePath)
		for _, line := range stale {
			fmt.Fprintf(stderr, "  %s\n", line)
		}
		failed = true
	}
	if failed {
		return 1
	}
	return 0
}

// runUpdateSchemas regenerates the schemas.lock manifest from every
// //nullgraph:schema struct in the module.
func runUpdateSchemas(root string, pkgs []*analysis.Package, stderr io.Writer) int {
	var manifests []*analysis.SchemaManifest
	for _, pkg := range pkgs {
		ms, err := analysis.CollectSchemas(pkg)
		if err != nil {
			fmt.Fprintf(stderr, "nullvet: %v\n", err)
			return 2
		}
		manifests = append(manifests, ms...)
	}
	path := filepath.Join(root, "internal", "analysis", "schemas.lock")
	if err := os.WriteFile(path, []byte(analysis.FormatSchemaLock(manifests)), 0o644); err != nil {
		fmt.Fprintf(stderr, "nullvet: %v\n", err)
		return 2
	}
	fmt.Fprintf(stderr, "nullvet: wrote %s (%d schema(s))\n", path, len(manifests))
	return 0
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// resolvePackages expands the argument list into package directories:
// "./..." (or "...") walks the module; anything else must be an
// existing directory.
func resolvePackages(args []string, root string) ([]string, error) {
	if len(args) == 0 {
		return analysis.PackageDirs(root)
	}
	var dirs []string
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			walked, err := analysis.PackageDirs(root)
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, walked...)
		case strings.HasSuffix(arg, "/..."):
			base, err := filepath.Abs(strings.TrimSuffix(arg, "/..."))
			if err != nil {
				return nil, err
			}
			walked, err := analysis.PackageDirs(base)
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, walked...)
		default:
			info, err := os.Stat(arg)
			if err != nil {
				return nil, err
			}
			if !info.IsDir() {
				return nil, fmt.Errorf("%s: not a directory", arg)
			}
			abs, err := filepath.Abs(arg)
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, abs)
		}
	}
	return dirs, nil
}
