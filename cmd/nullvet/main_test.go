package main

import (
	"bytes"
	"strings"
	"testing"

	"nullgraph/internal/analysis"
)

// TestUnknownAnalyzerExitsTwo locks the CLI contract: an unknown -only
// name is a usage error (exit 2, distinct from exit 1 = findings), and
// stderr names every available analyzer so the caller can fix the
// invocation without reading source.
func TestUnknownAnalyzerExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-only", "nosuch"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("run(-only nosuch) = %d, want 2", code)
	}
	msg := stderr.String()
	if !strings.Contains(msg, `unknown analyzer "nosuch"`) {
		t.Errorf("stderr %q does not name the unknown analyzer", msg)
	}
	for _, name := range analysis.Names() {
		if !strings.Contains(msg, name) {
			t.Errorf("stderr does not list available analyzer %q:\n%s", name, msg)
		}
	}
	if stdout.Len() != 0 {
		t.Errorf("usage errors must not write stdout, got %q", stdout.String())
	}
}

// TestListAnalyzers pins -list: exit 0 and one line per analyzer.
func TestListAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list) = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	out := stdout.String()
	for _, name := range analysis.Names() {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %q:\n%s", name, out)
		}
	}
	if got, want := strings.Count(out, "\n"), len(analysis.All); got != want {
		t.Errorf("-list printed %d lines, want %d", got, want)
	}
}

// TestUpdateBaselineRequiresPath: -update-baseline without -baseline is
// a usage error, not a silent no-op.
func TestUpdateBaselineRequiresPath(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-update-baseline"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(-update-baseline) = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-baseline") {
		t.Errorf("stderr %q does not point at the missing -baseline flag", stderr.String())
	}
}

// TestBadFlagExitsTwo: flag-parse failures are usage errors too.
func TestBadFlagExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(-no-such-flag) = %d, want 2", code)
	}
}
