// Command benchgen measures the full generation pipeline two ways —
// cold (a one-shot nullgraph.Generate per sample, rebuilding every
// buffer) and reused (one nullgraph.Engine serving repeated samples) —
// and emits the comparison as a small JSON document
// (BENCH_generate.json by default) for CI tracking. The interesting
// number is reuse_bytes_ratio: bytes allocated per reused sample over
// bytes per cold sample, the figure of merit of the session refactor
// (CI asserts it stays under 0.10).
//
// Usage:
//
//	benchgen                         # 50k-vertex power law, writes BENCH_generate.json
//	benchgen -vertices 10000 -o -    # smaller run, JSON to stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"nullgraph"
	"nullgraph/internal/obs"
)

// Measurement is one benchmark configuration's result.
type Measurement struct {
	Mode        string `json:"mode"` // "cold" or "reuse"
	Workers     int    `json:"workers"`
	Vertices    int64  `json:"vertices"`
	Edges       int    `json:"edges"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

// Comparison pairs the two modes at one worker count.
type Comparison struct {
	Workers int         `json:"workers"`
	Cold    Measurement `json:"cold"`
	Reuse   Measurement `json:"reuse"`
	// ReuseBytesRatio is Reuse.BytesPerOp / Cold.BytesPerOp — how much
	// of the cold allocation cost a warmed Engine still pays per sample.
	ReuseBytesRatio float64 `json:"reuse_bytes_ratio"`
}

// Report is the emitted document.
type Report struct {
	Benchmark      string       `json:"benchmark"`
	GoMaxProcs     int          `json:"gomaxprocs"`
	SwapIterations int          `json:"swap_iterations"`
	Results        []Comparison `json:"results"`
}

func options(workers, swaps int) nullgraph.Options {
	return nullgraph.Options{Workers: workers, Seed: 1, SwapIterations: swaps}
}

// measureCold times one-shot Generate calls: every sample pays the
// full setup (worker pool, probability matrix, edge-skip buffers, swap
// engine with its hash table and permutation scratch).
func measureCold(dist *nullgraph.DegreeDistribution, workers, swaps int) Measurement {
	var edges int
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := nullgraph.Generate(dist, options(workers, swaps))
			if err != nil {
				b.Fatal(err)
			}
			edges = out.Graph.NumEdges()
		}
	})
	return measurement("cold", workers, dist.NumVertices(), edges, res)
}

// measureReuse times samples drawn from one warmed Engine: the
// probability matrix is cached (the distribution never changes) and
// every phase reuses session-owned buffers, so steady-state samples
// allocate only incidental bytes.
func measureReuse(dist *nullgraph.DegreeDistribution, workers, swaps int) Measurement {
	var edges int
	res := testing.Benchmark(func(b *testing.B) {
		eng := nullgraph.NewEngine(options(workers, swaps))
		defer eng.Close()
		if _, err := eng.Generate(dist); err != nil { // warm-up: buffers materialize
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := eng.Generate(dist)
			if err != nil {
				b.Fatal(err)
			}
			edges = out.Graph.NumEdges()
		}
	})
	return measurement("reuse", workers, dist.NumVertices(), edges, res)
}

func measurement(mode string, workers int, vertices int64, edges int, res testing.BenchmarkResult) Measurement {
	return Measurement{
		Mode:        mode,
		Workers:     workers,
		Vertices:    vertices,
		Edges:       edges,
		Iterations:  res.N,
		NsPerOp:     res.NsPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
}

func main() {
	var (
		vertices   = flag.Int64("vertices", 50_000, "power-law distribution size (vertex count)")
		gamma      = flag.Float64("gamma", 2.1, "power-law exponent")
		dmax       = flag.Int64("dmax", 300, "maximum degree")
		swaps      = flag.Int("swaps", 5, "swap iterations per sample")
		out        = flag.String("o", "BENCH_generate.json", "output path (- = stdout)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the benchmark to this file")
		timeout    = flag.Duration("timeout", 0, "abort with an error if the benchmark exceeds this (e.g. 5m; 0 = no limit)")
	)
	flag.Parse()
	if *vertices < 2 {
		fmt.Fprintln(os.Stderr, "benchgen: -vertices must be >= 2")
		os.Exit(2)
	}
	// testing.Benchmark has no cancellation hook; -timeout is a hard
	// watchdog over the whole measurement.
	if *timeout > 0 {
		time.AfterFunc(*timeout, func() {
			fmt.Fprintln(os.Stderr, "benchgen: -timeout exceeded, aborting")
			os.Exit(1)
		})
	}
	if *cpuprofile != "" {
		stop, err := obs.StartCPUProfile(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		defer stop()
	}

	dist, err := nullgraph.PowerLawDistribution(*vertices, 1, *dmax, *gamma, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}

	report := Report{Benchmark: "nullgraph.Engine.Generate", GoMaxProcs: runtime.GOMAXPROCS(0), SwapIterations: *swaps}
	configs := []int{1}
	if runtime.GOMAXPROCS(0) > 1 {
		configs = append(configs, 0) // 0 = all procs
	}
	for _, workers := range configs {
		cmp := Comparison{
			Workers: workers,
			Cold:    measureCold(dist, workers, *swaps),
			Reuse:   measureReuse(dist, workers, *swaps),
		}
		if cmp.Cold.BytesPerOp > 0 {
			cmp.ReuseBytesRatio = float64(cmp.Reuse.BytesPerOp) / float64(cmp.Cold.BytesPerOp)
		}
		report.Results = append(report.Results, cmp)
		fmt.Fprintf(os.Stderr, "benchgen: workers=%d cold: ns/op=%d B/op=%d allocs/op=%d | reuse: ns/op=%d B/op=%d allocs/op=%d | ratio=%.4f\n",
			cmp.Workers, cmp.Cold.NsPerOp, cmp.Cold.BytesPerOp, cmp.Cold.AllocsPerOp,
			cmp.Reuse.NsPerOp, cmp.Reuse.BytesPerOp, cmp.Reuse.AllocsPerOp, cmp.ReuseBytesRatio)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}
