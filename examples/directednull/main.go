// Directed null models: is a network's reciprocity significant?
//
// Reciprocity (the fraction of arcs whose reverse also exists) is the
// classic digraph statistic that must be judged against a null model
// preserving every vertex's in- AND out-degree (Durak et al., the
// directed extrapolation the paper cites). This example builds a
// digraph with planted reciprocity, then scores it against
//
//  1. degree-preserving directed shuffles (double-arc swaps + triangle
//     reversals), and
//  2. fresh draws from its joint (out, in) degree distribution,
//
// reporting the z-score of the observed reciprocity.
//
// Run with: go run ./examples/directednull
package main

import (
	"fmt"
	"log"
	"math"

	"nullgraph"
	"nullgraph/internal/rng"
)

func main() {
	observed := plantedReciprocityDigraph(6000, 4, 0.4, 99)
	obsRecip := observed.Reciprocity()
	fmt.Printf("observed digraph: n=%d arcs=%d reciprocity=%.4f\n",
		observed.NumVertices, observed.NumArcs(), obsRecip)

	const ensemble = 15

	// Null 1: shuffle the observed arcs (exact joint degrees).
	var shuffled []float64
	for i := 0; i < ensemble; i++ {
		g := observed.Clone()
		if _, err := nullgraph.ShuffleDirected(g, nullgraph.Options{Seed: uint64(100 + i), SwapIterations: 15}); err != nil {
			log.Fatal(err)
		}
		shuffled = append(shuffled, g.Reciprocity())
	}
	report("shuffle null", obsRecip, shuffled)

	// Null 2: regenerate from the joint distribution.
	dist := nullgraph.JointOf(observed, 0)
	var generated []float64
	for i := 0; i < ensemble; i++ {
		res, err := nullgraph.GenerateDirected(dist, nullgraph.Options{Seed: uint64(200 + i), SwapIterations: 15})
		if err != nil {
			log.Fatal(err)
		}
		generated = append(generated, res.Graph.Reciprocity())
	}
	report("generated null", obsRecip, generated)
}

// plantedReciprocityDigraph wires a random digraph where a fraction of
// arcs is deliberately reciprocated.
func plantedReciprocityDigraph(n, avgOut int, recipFraction float64, seed uint64) *nullgraph.Digraph {
	src := rng.New(seed)
	seen := map[uint64]struct{}{}
	var arcs []nullgraph.Arc
	add := func(a nullgraph.Arc) bool {
		if a.IsLoop() {
			return false
		}
		if _, dup := seen[a.Key()]; dup {
			return false
		}
		seen[a.Key()] = struct{}{}
		arcs = append(arcs, a)
		return true
	}
	target := n * avgOut
	for len(arcs) < target {
		a := nullgraph.Arc{From: int32(src.Intn(n)), To: int32(src.Intn(n))}
		if !add(a) {
			continue
		}
		if src.Float64() < recipFraction {
			add(nullgraph.Arc{From: a.To, To: a.From})
		}
	}
	return nullgraph.NewDigraph(arcs, n)
}

func report(name string, observed float64, nulls []float64) {
	var mean, varsum float64
	for _, v := range nulls {
		mean += v
	}
	mean /= float64(len(nulls))
	for _, v := range nulls {
		varsum += (v - mean) * (v - mean)
	}
	std := math.Sqrt(varsum / float64(len(nulls)-1))
	z := math.Inf(1)
	if std > 0 {
		z = (observed - mean) / std
	}
	verdict := "(not significant)"
	if z > 3 {
		verdict = "(reciprocity is SIGNIFICANT vs degree-preserving null)"
	}
	fmt.Printf("%-16s mean=%.4f std=%.5f  =>  z=%.1f %s\n", name+":", mean, std, z, verdict)
}
