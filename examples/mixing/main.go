// Mixing diagnostics: watch the double-edge swap chain converge.
//
// The paper's empirical mixing signal is "every edge has been part of a
// successful swap at least once", typically reached within ~10
// iterations for simple inputs; multigraph inputs (the O(m) Chung-Lu
// model) need a couple dozen iterations to also shed their multi-edges.
// This example prints both trajectories side by side.
//
// Run with: go run ./examples/mixing
package main

import (
	"fmt"
	"log"

	"nullgraph"
)

func main() {
	dist, err := nullgraph.PowerLawDistribution(20_000, 1, 800, 2.0, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distribution: n=%d m=%d d_max=%d\n\n",
		dist.NumVertices(), dist.NumEdges(), dist.MaxDegree())

	// Chain A: a simple start (this library's generator, unswapped).
	simpleStart, err := nullgraph.Generate(dist, nullgraph.Options{Seed: 5, SwapIterations: 0})
	if err != nil {
		log.Fatal(err)
	}
	// Chain B: a multigraph start (O(m) Chung-Lu model).
	multiStart := nullgraph.ChungLuMultigraph(dist, nullgraph.Options{Seed: 5})

	fmt.Printf("%5s | %28s | %28s\n", "", "simple start (edge-skipping)", "multigraph start (O(m) model)")
	fmt.Printf("%5s | %13s %14s | %13s %14s %9s\n",
		"iter", "success rate", "edges swapped", "success rate", "edges swapped", "multi+loop")

	a := simpleStart.Graph
	b := multiStart
	for it := 1; it <= 24; it++ {
		ra, err := nullgraph.Shuffle(a, nullgraph.Options{Seed: uint64(100 + it), SwapIterations: 1})
		if err != nil {
			log.Fatal(err)
		}
		rb, err := nullgraph.Shuffle(b, nullgraph.Options{Seed: uint64(100 + it), SwapIterations: 1})
		if err != nil {
			log.Fatal(err)
		}
		sa, sb := ra.SwapIterations[0], rb.SwapIterations[0]
		rep := b.CheckSimplicity()
		fmt.Printf("%5d | %12.1f%% %13.1f%% | %12.1f%% %13.1f%% %9d\n",
			it,
			100*float64(sa.Successes)/float64(sa.Attempts), 100*sa.EverSwapped,
			100*float64(sb.Successes)/float64(sb.Attempts), 100*sb.EverSwapped,
			rep.SelfLoops+rep.MultiEdges)
	}

	fmt.Println("\nnote: 'edges swapped' restarts each call here (per-call tracking);")
	fmt.Println("use Options.MixUntilSwapped for the cumulative stopping rule:")
	res, err := nullgraph.Generate(dist, nullgraph.Options{Seed: 5, MixUntilSwapped: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MixUntilSwapped: fully mixed after %d iterations (mixed=%v)\n",
		len(res.SwapIterations), res.Mixed)
}
