// Quickstart: generate a uniformly random simple graph from a degree
// distribution, inspect its quality against the target, and shuffle an
// existing graph.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nullgraph"
)

func main() {
	// Problem 2 of the paper: all we have is a degree distribution.
	// Here: 50k vertices, power-law degrees with exponent 2.1 capped at
	// 1000 — the shape of a small social network.
	dist, err := nullgraph.PowerLawDistribution(50_000, 1, 1000, 2.1, 42)
	if err != nil {
		log.Fatal(err)
	}
	if err := nullgraph.Validate(dist); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target: n=%d m=%d d_max=%d |D|=%d\n",
		dist.NumVertices(), dist.NumEdges(), dist.MaxDegree(), dist.NumClasses())

	// Generate = probabilities -> edge-skipping -> double-edge swaps.
	res, err := nullgraph.Generate(dist, nullgraph.Options{
		Seed:           42,
		SwapIterations: 10, // ~10 iterations reach steady state (paper §VIII-A)
	})
	if err != nil {
		log.Fatal(err)
	}
	g := res.Graph
	stats := nullgraph.ComputeStats(g, 0)
	fmt.Printf("output: n=%d m=%d d_avg=%.2f d_max=%d\n",
		stats.NumVertices, stats.NumEdges, stats.AvgDegree, stats.MaxDegree)
	fmt.Printf("simple: %+v\n", g.CheckSimplicity())

	// How close did we land to the target distribution?
	q := nullgraph.Quality(g, dist, 0)
	fmt.Printf("error vs target: edges %+.2f%%, d_max %+.2f%%, Gini %+.2f%%\n",
		q.Edges*100, q.MaxDegree*100, q.Gini*100)

	// Problem 1 of the paper: uniformly re-randomize an existing graph
	// without touching its degree sequence.
	shuffled := res.Graph // reuse the generated graph as "existing"
	before := nullgraph.Assortativity(shuffled, 0)
	sres, err := nullgraph.Shuffle(shuffled, nullgraph.Options{Seed: 7, MixUntilSwapped: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shuffled in %d iterations (fully mixed: %v); assortativity %+.4f -> %+.4f\n",
		len(sres.SwapIterations), sres.Mixed, before, nullgraph.Assortativity(shuffled, 0))
}
