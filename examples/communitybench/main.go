// Community detection benchmarking with LFR-like graphs (Section VI of
// the paper): sweep the mixing parameter μ and show how a simple
// label-propagation community detector degrades as communities blur —
// the standard use of LFR benchmarks.
//
// Run with: go run ./examples/communitybench
package main

import (
	"fmt"
	"log"

	"nullgraph"
	"nullgraph/internal/graph"
	"nullgraph/internal/rng"
)

func main() {
	fmt.Printf("%6s %12s %10s %12s %14s\n", "mu", "observed mu", "edges", "communities", "detection NMI*")
	for _, mu := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6} {
		res, err := nullgraph.LFR(nullgraph.LFRConfig{
			NumVertices:    6000,
			DegreeGamma:    2.2,
			MinDegree:      5,
			MaxDegree:      80,
			CommunityGamma: 1.7,
			MinCommunity:   50,
			MaxCommunity:   500,
			Mu:             mu,
			SwapIterations: 3,
			Seed:           31,
		})
		if err != nil {
			log.Fatal(err)
		}
		agreement := labelPropagationAgreement(res)
		fmt.Printf("%6.2f %12.3f %10d %12d %14.3f\n",
			mu, res.ObservedMu, res.Graph.NumEdges(), len(res.Communities), agreement)
	}
	fmt.Println("\n*fraction of intra-community edges whose endpoints the detector")
	fmt.Println(" agrees about — degrades as mu rises, exactly what LFR measures.")
}

// labelPropagationAgreement runs a few rounds of synchronous label
// propagation and scores how well the detected labels respect the
// planted partition: for each planted-internal edge, do its endpoints
// share a detected label?
func labelPropagationAgreement(res *nullgraph.LFRResult) float64 {
	g := res.Graph
	csr := graph.BuildCSR(g, 0)
	n := g.NumVertices
	labels := make([]int32, n)
	for v := range labels {
		labels[v] = int32(v)
	}
	src := rng.New(9)
	order := make([]int, n)
	for round := 0; round < 8; round++ {
		src.Perm(order)
		for _, vi := range order {
			v := int32(vi)
			counts := map[int32]int{}
			best, bestCount := labels[v], 0
			for _, u := range csr.Neighbors(v) {
				counts[labels[u]]++
				if counts[labels[u]] > bestCount {
					best, bestCount = labels[u], counts[labels[u]]
				}
			}
			labels[v] = best
		}
	}
	planted := make([]int32, n)
	for ci, members := range res.Communities {
		for _, v := range members {
			planted[v] = int32(ci)
		}
	}
	var internal, agree int
	for _, e := range g.Edges {
		if planted[e.U] == planted[e.V] {
			internal++
			if labels[e.U] == labels[e.V] {
				agree++
			}
		}
	}
	if internal == 0 {
		return 0
	}
	return float64(agree) / float64(internal)
}
