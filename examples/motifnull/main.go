// Motif finding with null models — the paper's motivating application
// (Milo et al.): a subgraph is a *motif* when it appears significantly
// more often in a real network than in uniformly random graphs with the
// same degree distribution.
//
// This example plants a clustered "observed" network (an LFR benchmark
// graph, whose communities create excess triangles), then scores its
// triangle count against an ensemble of null models generated two ways:
//
//  1. degree-preserving shuffles of the observed graph (Problem 1),
//  2. fresh draws from its degree distribution (Problem 2),
//
// and reports the z-score. Communities => triangles; the null models
// destroy them; a large z-score flags the triangle as a motif.
//
// Run with: go run ./examples/motifnull
package main

import (
	"fmt"
	"log"
	"math"

	"nullgraph"
	"nullgraph/internal/graph"
)

func main() {
	// The "observed" network: clustered by construction.
	obs, err := nullgraph.LFR(nullgraph.LFRConfig{
		NumVertices:    8000,
		DegreeGamma:    2.3,
		MinDegree:      4,
		MaxDegree:      120,
		CommunityGamma: 1.8,
		MinCommunity:   40,
		MaxCommunity:   400,
		Mu:             0.15, // strong communities
		SwapIterations: 3,
		Seed:           11,
	})
	if err != nil {
		log.Fatal(err)
	}
	observed := obs.Graph
	obsTriangles := countTriangles(observed)
	fmt.Printf("observed graph: n=%d m=%d triangles=%d\n",
		observed.NumVertices, observed.NumEdges(), obsTriangles)

	const ensemble = 20

	// Null ensemble 1: shuffle the observed edges (exact same degree
	// sequence, uniformly random topology).
	var shuffleCounts []float64
	for i := 0; i < ensemble; i++ {
		g := observed.Clone()
		if _, err := nullgraph.Shuffle(g, nullgraph.Options{Seed: uint64(1000 + i), SwapIterations: 12}); err != nil {
			log.Fatal(err)
		}
		shuffleCounts = append(shuffleCounts, float64(countTriangles(g)))
	}
	reportZ("shuffle null (Problem 1)", float64(obsTriangles), shuffleCounts)

	// Null ensemble 2: regenerate from the degree distribution.
	dist := nullgraph.DistributionOf(observed, 0)
	var genCounts []float64
	for i := 0; i < ensemble; i++ {
		res, err := nullgraph.Generate(dist, nullgraph.Options{Seed: uint64(2000 + i), SwapIterations: 12})
		if err != nil {
			log.Fatal(err)
		}
		genCounts = append(genCounts, float64(countTriangles(res.Graph)))
	}
	reportZ("generated null (Problem 2)", float64(obsTriangles), genCounts)
}

func countTriangles(g *nullgraph.Graph) int64 {
	return graph.BuildCSR(g, 0).CountTriangles(0)
}

func reportZ(name string, observed float64, nulls []float64) {
	var mean, varsum float64
	for _, c := range nulls {
		mean += c
	}
	mean /= float64(len(nulls))
	for _, c := range nulls {
		varsum += (c - mean) * (c - mean)
	}
	std := math.Sqrt(varsum / float64(len(nulls)-1))
	z := math.Inf(1)
	if std > 0 {
		z = (observed - mean) / std
	}
	fmt.Printf("%-28s null mean=%.1f std=%.1f  =>  z-score %.1f %s\n",
		name+":", mean, std, z, verdict(z))
}

func verdict(z float64) string {
	if z > 3 {
		return "(triangle is a MOTIF: enriched vs null)"
	}
	return "(not significant)"
}
