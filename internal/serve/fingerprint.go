// Package serve implements nullgraphd's service layer: a pool of
// nullgraph.Engine sessions keyed by degree-distribution fingerprint,
// an admission gate with bounded queueing, per-request deadlines, and
// a Prometheus-text metrics surface fed by the library's RunReport v2
// observability. cmd/nullgraphd is a thin flag-parsing wrapper around
// this package; cmd/loadgen drives it. DESIGN.md §13 documents the
// architecture.
package serve

import (
	"math"

	"nullgraph"
)

// fnv64Offset and fnv64Prime are the FNV-1a 64-bit parameters.
const (
	fnv64Offset = uint64(14695981039346656037)
	fnv64Prime  = uint64(1099511628211)
)

// hash64 folds one 64-bit word into an FNV-1a state byte by byte.
func hash64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnv64Prime
		v >>= 8
	}
	return h
}

// fingerprintVersion is folded into every fingerprint first, so adding
// a field to the hashed option set (or changing field order) bumps it
// and retires every stale pool key at once instead of silently
// colliding with pre-change fingerprints. Version 2 added the sampling
// space; version 3 completed the StopPolicy coverage (Growth, Z,
// Hysteresis, SuccessRateTol, MinEverSwapped were previously unhashed,
// so two requests with different convergence tuning could share a
// pooled chain). Version 4 added the Connected flag (connected and
// unconstrained chains hold different state and must never pool
// together).
const fingerprintVersion = 4

// Fingerprint identifies an engine-compatible (distribution, options)
// pair. Two requests share a pooled session — and therefore draw
// distinct samples of one batch — exactly when their fingerprints are
// equal: the same degree classes in the same order and the same
// generation options (including the sampling space — engines hold
// space-specific chain state, so two spaces must never share one).
// Hashing the full class list keeps collisions across genuinely
// different distributions vanishingly rare (64-bit FNV-1a); a collision
// would only merge two pools, costing probability-matrix cache churn,
// never correctness, because every request carries its own distribution
// to GenerateContext.
//
// The fingerprintcomplete analyzer holds this function to its contract:
// every exported field of Options, converge.Policy, and the degree
// distribution must be folded in here or carry a
// //nullgraph:nofingerprint annotation at its declaration.
//
//nullgraph:fingerprint
func Fingerprint(dist *nullgraph.DegreeDistribution, opt nullgraph.Options) uint64 {
	h := fnv64Offset
	h = hash64(h, fingerprintVersion)
	h = hash64(h, uint64(opt.Space))
	var conn uint64
	if opt.Connected {
		conn = 1
	}
	h = hash64(h, conn)
	h = hash64(h, uint64(opt.Workers))
	h = hash64(h, opt.Seed)
	h = hash64(h, uint64(opt.SwapIterations))
	var mix uint64
	if opt.MixUntilSwapped {
		mix = 1
	}
	h = hash64(h, mix)
	h = hash64(h, uint64(opt.RefineProbabilities))
	if p := opt.StopPolicy; p != nil {
		h = hash64(h, 1)
		h = hash64(h, uint64(p.Statistic))
		h = hash64(h, uint64(p.Floor))
		h = hash64(h, uint64(p.Budget))
		h = hash64(h, math.Float64bits(p.Growth))
		h = hash64(h, math.Float64bits(p.Z))
		h = hash64(h, uint64(p.Hysteresis))
		h = hash64(h, math.Float64bits(p.SuccessRateTol))
		h = hash64(h, math.Float64bits(p.MinEverSwapped))
	} else {
		h = hash64(h, 0)
	}
	for _, c := range dist.Classes {
		h = hash64(h, uint64(c.Degree))
		h = hash64(h, uint64(c.Count))
	}
	return h
}
