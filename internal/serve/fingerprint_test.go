package serve

import (
	"reflect"
	"testing"

	"nullgraph"
)

// fingerprintExempt lists the Options fields deliberately left out of
// the pool fingerprint. It must stay in lockstep with the
// //nullgraph:nofingerprint annotations the fingerprintcomplete
// analyzer checks: CollectReport only instruments a run (bit-identity
// of instrumented vs plain output is locked by the obs parity tests),
// so sharing a pooled chain across the toggle is correct.
var fingerprintExempt = map[string]bool{
	"CollectReport": true,
}

// mutate nudges a struct field to a different value, covering every
// kind Options and StopPolicy currently use. A new field with an
// unhandled kind fails loudly — extending this table is part of adding
// the field, exactly like extending Fingerprint itself.
func mutate(t *testing.T, owner string, f reflect.StructField, v reflect.Value) {
	t.Helper()
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 1)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(v.Float() + 0.5)
	case reflect.Pointer:
		v.Set(reflect.Zero(v.Type()))
	default:
		t.Fatalf("%s.%s has kind %s: extend the mutation table (and Fingerprint) for it", owner, f.Name, v.Kind())
	}
}

// TestFingerprintCoversAllOptionFields is the white-box completeness
// lock behind the fingerprintcomplete analyzer: every exported field of
// Options — and of the StopPolicy it points to — must change the pool
// fingerprint when it alone changes, except the explicit exemptions.
// Adding a field to either struct makes this test visit it
// automatically; forgetting to hash it fails here and in `make lint`.
func TestFingerprintCoversAllOptionFields(t *testing.T) {
	dist := testDistribution(t, 0)
	base := func() nullgraph.Options {
		return nullgraph.Options{
			Space:               nullgraph.SpaceSimple,
			Workers:             1,
			Seed:                7,
			SwapIterations:      4,
			MixUntilSwapped:     false,
			RefineProbabilities: 0,
			StopPolicy: &nullgraph.StopPolicy{
				Statistic:      nullgraph.StopOnAssortativity,
				Floor:          8,
				Budget:         64,
				Growth:         1.4,
				Z:              1.5,
				Hysteresis:     2,
				SuccessRateTol: 0.05,
				MinEverSwapped: 0.25,
			},
		}
	}
	ref := Fingerprint(dist, base())

	optType := reflect.TypeOf(nullgraph.Options{})
	for i := 0; i < optType.NumField(); i++ {
		f := optType.Field(i)
		if !f.IsExported() {
			continue
		}
		opt := base()
		v := reflect.ValueOf(&opt).Elem().Field(i)
		mutate(t, "Options", f, v)
		got := Fingerprint(dist, opt)
		if fingerprintExempt[f.Name] {
			if got != ref {
				t.Errorf("Options.%s is exempt (//nullgraph:nofingerprint) but changing it changed the fingerprint: the exemption is stale", f.Name)
			}
			continue
		}
		if got == ref {
			t.Errorf("Options.%s is not folded into Fingerprint: two pools differing only in it would share a chain", f.Name)
		}
	}

	polType := reflect.TypeOf(nullgraph.StopPolicy{})
	for i := 0; i < polType.NumField(); i++ {
		f := polType.Field(i)
		if !f.IsExported() {
			continue
		}
		opt := base()
		v := reflect.ValueOf(opt.StopPolicy).Elem().Field(i)
		mutate(t, "StopPolicy", f, v)
		if Fingerprint(dist, opt) == ref {
			t.Errorf("StopPolicy.%s is not folded into Fingerprint: two pools differing only in it would share a chain", f.Name)
		}
	}

	// The degree distribution itself must matter too.
	other := testDistribution(t, 1)
	if Fingerprint(other, base()) == ref {
		t.Error("distribution classes are not folded into Fingerprint")
	}
}
