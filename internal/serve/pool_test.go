package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"nullgraph"
)

// hashGraph digests a graph's shape and edges (order-sensitive — edge
// order is part of the deterministic output).
func hashGraph(g *nullgraph.Graph) uint64 {
	h := fnv64Offset
	h = hash64(h, uint64(g.NumVertices))
	for _, e := range g.Edges {
		h = hash64(h, uint64(uint32(e.U))<<32|uint64(uint32(e.V)))
	}
	return h
}

// testDistribution builds a small graphical distribution that differs
// per index, so each fingerprint has genuinely different work.
func testDistribution(t testing.TB, i int) *nullgraph.DegreeDistribution {
	t.Helper()
	dist, err := nullgraph.DistributionFromCounts(map[int64]int64{
		1: int64(6 + 2*i),
		2: 4,
		3: int64(2 + 2*(i%2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := nullgraph.Validate(dist); err != nil {
		t.Fatal(err)
	}
	return dist
}

// TestPoolConcurrentDeterminism is the satellite race test: N
// goroutines hammer M fingerprints, checking engines in and out under
// load. Every response is hashed while the lease is held and then
// compared against the one-shot reference for its (seed, sample) — if
// any request ever observed another session's graph (shared buffer,
// duplicated sample, crossed engine) the hash comparison or the
// distinct-sample check fails. Run under -race this also proves the
// pool's locking.
func TestPoolConcurrentDeterminism(t *testing.T) {
	const (
		numKeys       = 4
		numGoroutines = 8
		rounds        = 6
	)
	dists := make([]*nullgraph.DegreeDistribution, numKeys)
	opts := make([]nullgraph.Options, numKeys)
	fps := make([]uint64, numKeys)
	for i := range dists {
		dists[i] = testDistribution(t, i)
		opts[i] = nullgraph.Options{Workers: 1, Seed: 1000 + uint64(i), SwapIterations: 4}
		fps[i] = Fingerprint(dists[i], opts[i])
	}
	for i := 0; i < numKeys; i++ {
		for j := i + 1; j < numKeys; j++ {
			if fps[i] == fps[j] {
				t.Fatalf("fingerprints %d and %d collide", i, j)
			}
		}
	}

	pool := NewPool(2)
	defer pool.Close()

	type sampleObs struct {
		key    int
		sample uint64
		hash   uint64
	}
	var (
		mu      sync.Mutex
		results []sampleObs
	)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < numGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for r := 0; r < rounds; r++ {
				k := (g + r) % numKeys
				lease, err := pool.Acquire(fps[k], opts[k])
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				res, err := lease.Engine.Generate(dists[k])
				if err != nil {
					lease.Release(false)
					t.Errorf("generate: %v", err)
					return
				}
				// Hash before release: the Result aliases engine buffers.
				h := hashGraph(res.Graph)
				sample := lease.Sample
				lease.Release(true)
				mu.Lock()
				results = append(results, sampleObs{key: k, sample: sample, hash: h})
				mu.Unlock()
			}
		}(g)
	}
	close(start)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Per key: every sample index issued at most once, and every
	// response bit-identical to its independent one-shot reference.
	seen := make(map[int]map[uint64]bool)
	for _, obs := range results {
		if seen[obs.key] == nil {
			seen[obs.key] = make(map[uint64]bool)
		}
		if seen[obs.key][obs.sample] {
			t.Fatalf("key %d issued sample %d twice", obs.key, obs.sample)
		}
		seen[obs.key][obs.sample] = true

		ref := opts[obs.key]
		ref.Seed = nullgraph.SampleSeed(opts[obs.key].Seed, obs.sample)
		want, err := nullgraph.Generate(dists[obs.key], ref)
		if err != nil {
			t.Fatal(err)
		}
		if got := hashGraph(want.Graph); got != obs.hash {
			t.Fatalf("key %d sample %d: pooled response differs from one-shot reference — a request observed another session's state", obs.key, obs.sample)
		}
	}
}

// TestPoolCanceledLeaseReusable locks the cancellation contract: a
// request whose context ends leaves the engine in a reusable state,
// the lease checks back in healthy, and the next lease on the key
// still produces the deterministic sample for its index.
func TestPoolCanceledLeaseReusable(t *testing.T) {
	dist := testDistribution(t, 0)
	opt := nullgraph.Options{Workers: 1, Seed: 7, SwapIterations: 4}
	fp := Fingerprint(dist, opt)
	pool := NewPool(2)
	defer pool.Close()

	// Pre-canceled context: deterministic no-work path.
	lease, err := pool.Acquire(fp, opt)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := lease.Engine.GenerateContext(ctx, dist); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled generate: err = %v, want context.Canceled", err)
	}
	lease.Release(true)

	// Mid-run cancellation on a larger job (opportunistic: on a machine
	// fast enough to finish inside the deadline the call just succeeds,
	// which exercises the same checkin path).
	big, err := nullgraph.PowerLawDistribution(200_000, 1, 400, 2.1, 99)
	if err != nil {
		t.Fatal(err)
	}
	bigOpt := nullgraph.Options{Workers: 1, Seed: 7, SwapIterations: 64}
	bigFP := Fingerprint(big, bigOpt)
	bl, err := pool.Acquire(bigFP, bigOpt)
	if err != nil {
		t.Fatal(err)
	}
	tctx, tcancel := context.WithTimeout(context.Background(), time.Millisecond)
	_, gerr := bl.Engine.GenerateContext(tctx, big)
	tcancel()
	if gerr != nil && !errors.Is(gerr, context.DeadlineExceeded) {
		t.Fatalf("mid-run cancel: err = %v, want context.DeadlineExceeded or nil", gerr)
	}
	bl.Release(true)

	// The canceled engine (now idle in the pool) must serve the next
	// lease correctly. Samples 0 (consumed by the canceled lease) and 1
	// remain deterministic per index.
	next, err := pool.Acquire(fp, opt)
	if err != nil {
		t.Fatal(err)
	}
	if next.Sample != 1 {
		t.Fatalf("sample after canceled lease = %d, want 1 (indices are never reissued)", next.Sample)
	}
	res, err := next.Engine.Generate(dist)
	if err != nil {
		t.Fatal(err)
	}
	got := hashGraph(res.Graph)
	next.Release(true)
	ref := opt
	ref.Seed = nullgraph.SampleSeed(opt.Seed, 1)
	want, err := nullgraph.Generate(dist, ref)
	if err != nil {
		t.Fatal(err)
	}
	if hashGraph(want.Graph) != got {
		t.Fatal("post-cancel sample 1 differs from its one-shot reference")
	}
}

// TestFingerprintSeparatesSpaces locks the space axis of the pool key:
// every pair of distinct sampling spaces fingerprints differently (an
// engine holds space-specific chain state, so two spaces must never
// share a session), and at the pool level a warm engine parked under
// one space is never handed to a request for another — while the same
// space does reuse it.
func TestFingerprintSeparatesSpaces(t *testing.T) {
	dist := testDistribution(t, 2)
	spaces := []nullgraph.Space{
		nullgraph.SpaceSimple, nullgraph.SpaceSimpleVertex,
		nullgraph.SpaceLoopyStub, nullgraph.SpaceLoopyVertex,
		nullgraph.SpaceMultigraphStub, nullgraph.SpaceMultigraphVertex,
	}
	base := nullgraph.Options{Workers: 1, Seed: 5, SwapIterations: 2}
	fps := make([]uint64, len(spaces))
	for i, sp := range spaces {
		opt := base
		opt.Space = sp
		fps[i] = Fingerprint(dist, opt)
	}
	for i := range fps {
		for j := i + 1; j < len(fps); j++ {
			if fps[i] == fps[j] {
				t.Fatalf("spaces %s and %s share a fingerprint; their engines would be pooled together", spaces[i], spaces[j])
			}
		}
	}

	pool := NewPool(4)
	defer pool.Close()
	simple := base
	simple.Space = nullgraph.SpaceSimple
	loopy := base
	loopy.Space = nullgraph.SpaceLoopyStub

	a, err := pool.Acquire(Fingerprint(dist, simple), simple)
	if err != nil {
		t.Fatal(err)
	}
	warm := a.Engine
	a.Release(true) // parked under the simple key

	b, err := pool.Acquire(Fingerprint(dist, loopy), loopy)
	if err != nil {
		t.Fatal(err)
	}
	if b.Engine == warm {
		t.Fatal("a loopy-space request received the simple-space engine")
	}
	b.Release(true)

	c, err := pool.Acquire(Fingerprint(dist, simple), simple)
	if err != nil {
		t.Fatal(err)
	}
	if c.Engine != warm {
		t.Fatal("a same-space request did not reuse the warm engine")
	}
	c.Release(true)
}

// TestPoolIdleCapAndClose pins the retention cap and shutdown: at most
// maxIdlePerKey engines are parked per key, Close fails further
// Acquires, and Release after Close closes the engine instead of
// leaking it into a dead pool.
func TestPoolIdleCapAndClose(t *testing.T) {
	dist := testDistribution(t, 1)
	opt := nullgraph.Options{Workers: 1, Seed: 3, SwapIterations: 2}
	fp := Fingerprint(dist, opt)
	pool := NewPool(1)

	a, err := pool.Acquire(fp, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.Acquire(fp, opt)
	if err != nil {
		t.Fatal(err)
	}
	a.Release(true)
	b.Release(true) // over the cap: closed, not parked
	if _, idle := pool.Stats(); idle != 1 {
		t.Fatalf("idle = %d, want 1 (cap)", idle)
	}

	c, err := pool.Acquire(fp, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Acquire(fp, opt); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("acquire after close: err = %v, want ErrPoolClosed", err)
	}
	c.Release(true) // pool closed: engine must be closed, not parked
	if _, idle := pool.Stats(); idle != 0 {
		t.Fatalf("idle after close = %d, want 0", idle)
	}
}
