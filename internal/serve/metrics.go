package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nullgraph"
)

// Metrics aggregates the service's counters and renders them in the
// Prometheus text exposition format. Everything on the request path is
// an atomic update; the mutex-protected code map is touched once per
// response. The per-phase time and stop-reason series surface
// RunReport v2's observability (Result.Phases, Result.Stop) at the
// service boundary, so a scrape shows where generation wall time goes
// and how swap phases are ending without any per-request report files.
type Metrics struct {
	// inFlight is the number of requests currently holding an
	// admission slot.
	inFlight atomic.Int64
	// queueRejections counts 429s from the bounded admission queue.
	queueRejections atomic.Int64
	// deadlineMisses counts 504s — requests whose generation deadline
	// expired server-side.
	deadlineMisses atomic.Int64
	// edgesGenerated totals edges across successful responses.
	edgesGenerated atomic.Int64
	// samplesServed counts successful generation calls.
	samplesServed atomic.Int64

	// Phase wall time totals in nanoseconds (RunReport v2 PhaseReport
	// quantities, summed across requests).
	probabilitiesNs  atomic.Int64
	edgeGenerationNs atomic.Int64
	swappingNs       atomic.Int64

	// Stop decisions by StopReport.Reason.
	stopConverged atomic.Int64
	stopBudget    atomic.Int64
	stopScans     atomic.Int64
	stopMixed     atomic.Int64
	stopOther     atomic.Int64

	mu    sync.Mutex
	codes map[int]int64
}

// NewMetrics returns an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{codes: make(map[int]int64)}
}

// ObserveResponse records one finished request's status code.
func (m *Metrics) ObserveResponse(code int) {
	m.mu.Lock()
	m.codes[code]++
	m.mu.Unlock()
	switch code {
	case 429:
		m.queueRejections.Add(1)
	case 504:
		m.deadlineMisses.Add(1)
	}
}

// ObserveResult folds one successful generation's RunReport v2 data —
// phase times and the stop decision — into the service totals.
func (m *Metrics) ObserveResult(res *nullgraph.Result) {
	m.samplesServed.Add(1)
	m.edgesGenerated.Add(int64(len(res.Graph.Edges)))
	m.probabilitiesNs.Add(int64(res.Phases.Probabilities))
	m.edgeGenerationNs.Add(int64(res.Phases.EdgeGeneration))
	m.swappingNs.Add(int64(res.Phases.Swapping))
	if res.Stop == nil {
		return
	}
	switch res.Stop.Reason {
	case "converged":
		m.stopConverged.Add(1)
	case "budget":
		m.stopBudget.Add(1)
	case "scans":
		m.stopScans.Add(1)
	case "mixed":
		m.stopMixed.Add(1)
	default:
		m.stopOther.Add(1)
	}
}

// RequestStarted marks a request entering the generation section;
// the returned func marks it leaving.
func (m *Metrics) RequestStarted() func() {
	m.inFlight.Add(1)
	return func() { m.inFlight.Add(-1) }
}

// DeadlineMisses returns the 504 count (used by tests and loadgen
// assertions).
func (m *Metrics) DeadlineMisses() int64 { return m.deadlineMisses.Load() }

// seconds renders a nanosecond total as Prometheus seconds.
func seconds(ns int64) float64 { return time.Duration(ns).Seconds() }

// WritePrometheus renders the metrics in the Prometheus text format.
// The schema is documented in DESIGN.md §13; series names are stable.
func (m *Metrics) WritePrometheus(w io.Writer, pool *Pool) error {
	m.mu.Lock()
	codes := make([]int, 0, len(m.codes))
	for c := range m.codes {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	counts := make([]int64, len(codes))
	for i, c := range codes {
		counts[i] = m.codes[c]
	}
	m.mu.Unlock()

	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("# HELP nullgraphd_requests_total Finished HTTP requests by status code.\n")
	p("# TYPE nullgraphd_requests_total counter\n")
	for i, c := range codes {
		p("nullgraphd_requests_total{code=\"%d\"} %d\n", c, counts[i])
	}
	p("# HELP nullgraphd_in_flight_requests Requests currently holding an admission slot.\n")
	p("# TYPE nullgraphd_in_flight_requests gauge\n")
	p("nullgraphd_in_flight_requests %d\n", m.inFlight.Load())
	p("# HELP nullgraphd_queue_rejections_total Requests rejected (429) by the bounded admission queue.\n")
	p("# TYPE nullgraphd_queue_rejections_total counter\n")
	p("nullgraphd_queue_rejections_total %d\n", m.queueRejections.Load())
	p("# HELP nullgraphd_deadline_misses_total Requests whose generation deadline expired (504).\n")
	p("# TYPE nullgraphd_deadline_misses_total counter\n")
	p("nullgraphd_deadline_misses_total %d\n", m.deadlineMisses.Load())
	p("# HELP nullgraphd_samples_served_total Successful generation calls.\n")
	p("# TYPE nullgraphd_samples_served_total counter\n")
	p("nullgraphd_samples_served_total %d\n", m.samplesServed.Load())
	p("# HELP nullgraphd_edges_generated_total Edges across successful responses.\n")
	p("# TYPE nullgraphd_edges_generated_total counter\n")
	p("nullgraphd_edges_generated_total %d\n", m.edgesGenerated.Load())
	p("# HELP nullgraphd_phase_seconds_total Pipeline wall time by phase (RunReport v2 phases, summed over requests).\n")
	p("# TYPE nullgraphd_phase_seconds_total counter\n")
	p("nullgraphd_phase_seconds_total{phase=\"probabilities\"} %g\n", seconds(m.probabilitiesNs.Load()))
	p("nullgraphd_phase_seconds_total{phase=\"edge_generation\"} %g\n", seconds(m.edgeGenerationNs.Load()))
	p("nullgraphd_phase_seconds_total{phase=\"swapping\"} %g\n", seconds(m.swappingNs.Load()))
	p("# HELP nullgraphd_stop_decisions_total Swap-phase stop decisions by RunReport v2 stop reason.\n")
	p("# TYPE nullgraphd_stop_decisions_total counter\n")
	p("nullgraphd_stop_decisions_total{reason=\"converged\"} %d\n", m.stopConverged.Load())
	p("nullgraphd_stop_decisions_total{reason=\"budget\"} %d\n", m.stopBudget.Load())
	p("nullgraphd_stop_decisions_total{reason=\"scans\"} %d\n", m.stopScans.Load())
	p("nullgraphd_stop_decisions_total{reason=\"mixed\"} %d\n", m.stopMixed.Load())
	p("nullgraphd_stop_decisions_total{reason=\"other\"} %d\n", m.stopOther.Load())
	if pool != nil {
		keys, idle := pool.Stats()
		p("# HELP nullgraphd_pool_keys Distinct (distribution, options) fingerprints seen.\n")
		p("# TYPE nullgraphd_pool_keys gauge\n")
		p("nullgraphd_pool_keys %d\n", keys)
		p("# HELP nullgraphd_pool_idle_engines Warm engine sessions parked in the pool.\n")
		p("# TYPE nullgraphd_pool_idle_engines gauge\n")
		p("nullgraphd_pool_idle_engines %d\n", idle)
	}
	return err
}
