package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"nullgraph"
)

// distBody renders a distribution as the "degree count" request body.
func distBody(t testing.TB, dist *nullgraph.DegreeDistribution) string {
	t.Helper()
	var buf bytes.Buffer
	if err := nullgraph.WriteDistribution(&buf, dist); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func postGenerate(t testing.TB, url, query, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/generate"+query, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestServerGenerateBinaryRoundTrip drives the full request path: a
// distribution goes in, a binary edge list streams out with an exact
// Content-Length, and the payload reloads into the deterministic
// sample-0 graph of the request's seed.
func TestServerGenerateBinaryRoundTrip(t *testing.T) {
	s := New(Config{MaxConcurrent: 2, Seed: 5})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	dist := testDistribution(t, 0)
	resp := postGenerate(t, srv.URL, "?seed=42", distBody(t, dist))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Nullgraph-Sample"); got != "0" {
		t.Fatalf("sample header = %q, want 0", got)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(len(body)) {
		t.Fatalf("Content-Length %s but body is %d bytes", cl, len(body))
	}
	g, err := nullgraph.ReadGraphBinary(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("response payload does not parse: %v", err)
	}
	want, err := nullgraph.Generate(dist, nullgraph.Options{Workers: 1, Seed: 42, SwapIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if hashGraph(g) != hashGraph(want.Graph) {
		t.Fatal("response differs from the deterministic sample-0 reference")
	}

	// Text format parses through the text reader.
	resp2 := postGenerate(t, srv.URL, "?seed=42&format=text", distBody(t, dist))
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("text status %d", resp2.StatusCode)
	}
	if _, err := nullgraph.ReadGraph(resp2.Body); err != nil {
		t.Fatalf("text payload does not parse: %v", err)
	}
}

// TestServerConcurrentSamplesDistinct fires concurrent identical
// requests and asserts the service's core multi-tenant promise: every
// response is a distinct sample index, and each one is bit-identical
// to that index's one-shot reference.
func TestServerConcurrentSamplesDistinct(t *testing.T) {
	s := New(Config{MaxConcurrent: 4, Seed: 11})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	dist := testDistribution(t, 2)
	body := distBody(t, dist)
	const K = 8
	type reply struct {
		sample uint64
		hash   uint64
	}
	replies := make([]reply, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postGenerate(t, srv.URL, "", body)
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
				return
			}
			sample, err := strconv.ParseUint(resp.Header.Get("X-Nullgraph-Sample"), 10, 64)
			if err != nil {
				t.Errorf("request %d: bad sample header: %v", i, err)
				return
			}
			g, err := nullgraph.ReadGraphBinary(resp.Body)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			replies[i] = reply{sample: sample, hash: hashGraph(g)}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	seen := make(map[uint64]bool)
	for i, r := range replies {
		if seen[r.sample] {
			t.Fatalf("sample %d served twice", r.sample)
		}
		seen[r.sample] = true
		want, err := nullgraph.Generate(dist, nullgraph.Options{
			Workers: 1, Seed: nullgraph.SampleSeed(11, r.sample), SwapIterations: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		if hashGraph(want.Graph) != r.hash {
			t.Fatalf("request %d (sample %d) differs from its reference", i, r.sample)
		}
	}
}

// TestServerQueueOverflow pins the backpressure contract: with every
// slot held and the queue full, the next arrival is rejected 429
// without blocking, and queued requests complete once a slot frees.
func TestServerQueueOverflow(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, MaxQueue: 1, Seed: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	body := distBody(t, testDistribution(t, 0))

	// Occupy the only slot directly — deterministic, no timing games.
	s.slots <- struct{}{}

	queued := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/v1/generate?deadline_ms=60000", "text/plain", strings.NewReader(body))
		if err != nil {
			t.Error(err)
			close(queued)
			return
		}
		queued <- resp
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.waiters.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never became a waiter")
		}
		time.Sleep(time.Millisecond)
	}

	resp := postGenerate(t, srv.URL, "", body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429", resp.StatusCode)
	}

	<-s.slots // free the slot; the queued request proceeds
	qr, ok := <-queued
	if !ok {
		t.Fatal("queued request failed")
	}
	defer qr.Body.Close()
	if qr.StatusCode != http.StatusOK {
		t.Fatalf("queued request status = %d, want 200", qr.StatusCode)
	}
	if _, err := nullgraph.ReadGraphBinary(qr.Body); err != nil {
		t.Fatal(err)
	}
}

// TestServerDeadlineMiss pins deadline semantics: a request whose
// budget cannot cover its generation gets 504, the miss is counted,
// and the engine the canceled run used serves the next request.
func TestServerDeadlineMiss(t *testing.T) {
	s := New(Config{MaxConcurrent: 2, Seed: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	heavy, err := nullgraph.PowerLawDistribution(300_000, 1, 500, 2.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	body := distBody(t, heavy)
	resp := postGenerate(t, srv.URL, "?deadline_ms=1&swaps=64", body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if got := s.Metrics().DeadlineMisses(); got != 1 {
		t.Fatalf("deadline misses = %d, want 1", got)
	}

	// Same key, sane deadline: the recycled engine must serve it.
	resp2 := postGenerate(t, srv.URL, "?swaps=2", body)
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-miss status = %d, want 200", resp2.StatusCode)
	}
	if _, err := nullgraph.ReadGraphBinary(resp2.Body); err != nil {
		t.Fatal(err)
	}
}

// TestServerRejectsBadRequests covers the 400 surface: malformed
// bodies, non-graphical distributions, bad parameters, wrong method.
func TestServerRejectsBadRequests(t *testing.T) {
	s := New(Config{MaxConcurrent: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	good := distBody(t, testDistribution(t, 0))

	cases := []struct {
		name, query, body string
		want              int
	}{
		{"garbage body", "", "not a distribution", http.StatusBadRequest},
		{"non-graphical", "", "100 2\n", http.StatusBadRequest},
		{"bad seed", "?seed=x", good, http.StatusBadRequest},
		{"bad swaps", "?swaps=-1", good, http.StatusBadRequest},
		{"bad stop", "?stop=nope", good, http.StatusBadRequest},
		{"bad format", "?format=xml", good, http.StatusBadRequest},
		{"bad deadline", "?deadline_ms=0", good, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := postGenerate(t, srv.URL, tc.query, tc.body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
	getResp, err := http.Get(srv.URL + "/v1/generate")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", getResp.StatusCode)
	}
}

// TestServerMetricsAndHealth scrapes /metrics after traffic and
// asserts the RunReport v2 surface is there: per-phase wall time and
// stop decisions, plus request counters and pool gauges.
func TestServerMetricsAndHealth(t *testing.T) {
	s := New(Config{MaxConcurrent: 2, Seed: 9})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	dist := testDistribution(t, 1)
	for i := 0; i < 3; i++ {
		resp := postGenerate(t, srv.URL, "", distBody(t, dist))
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	// One adaptive-stop request so a non-"scans" decision shows up.
	resp := postGenerate(t, srv.URL, "?stop=success-rate", distBody(t, dist))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("adaptive request: status %d", resp.StatusCode)
	}

	hr, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", hr.StatusCode)
	}

	mr, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	raw, err := io.ReadAll(mr.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`nullgraphd_requests_total{code="200"} 4`,
		`nullgraphd_samples_served_total 4`,
		`nullgraphd_phase_seconds_total{phase="probabilities"}`,
		`nullgraphd_phase_seconds_total{phase="edge_generation"}`,
		`nullgraphd_phase_seconds_total{phase="swapping"}`,
		`nullgraphd_stop_decisions_total{reason="scans"} 3`,
		`nullgraphd_deadline_misses_total 0`,
		`nullgraphd_queue_rejections_total 0`,
		`nullgraphd_pool_keys`,
		`nullgraphd_pool_idle_engines`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// The adaptive run stopped with some recognized reason; its count
	// must land somewhere other than zero-everywhere.
	adaptive := 0
	for _, reason := range []string{"converged", "budget", "mixed", "other"} {
		var n int
		if _, err := fmt.Sscanf(after(text, fmt.Sprintf(`nullgraphd_stop_decisions_total{reason=%q} `, reason)), "%d", &n); err == nil {
			adaptive += n
		}
	}
	if adaptive != 1 {
		t.Errorf("adaptive stop decisions = %d, want 1\nmetrics:\n%s", adaptive, text)
	}
}

// after returns the remainder of s after the first occurrence of sep
// ("" if absent) — a tiny scrape helper.
func after(s, sep string) string {
	if i := strings.Index(s, sep); i >= 0 {
		return s[i+len(sep):]
	}
	return ""
}
