package serve

import (
	"errors"
	"fmt"
	"sync"

	"nullgraph"
)

// ErrPoolClosed reports an Acquire on a closed pool.
var ErrPoolClosed = errors.New("serve: pool closed")

// Pool checks nullgraph.Engine sessions in and out, keyed by request
// fingerprint. Each key owns a batch: the pool allocates every lease a
// distinct sample index from the key's monotone counter and positions
// the engine with SetSample before handing it out, so concurrent
// requests on one fingerprint draw distinct, deterministic members of
// one seed's batch — never the same graph, regardless of which pooled
// engine serves which request.
//
// Idle engines are retained per key up to a cap so steady traffic on a
// fingerprint reuses warm sessions (cached probability matrix, swap
// scratch, worker pool) instead of rebuilding them per request.
type Pool struct {
	// maxIdlePerKey caps retained idle engines per fingerprint;
	// checkins beyond it close the engine instead.
	maxIdlePerKey int

	mu     sync.Mutex
	keys   map[uint64]*poolKey
	closed bool
}

// poolKey is one fingerprint's state: its warm engines and its batch
// sample counter.
type poolKey struct {
	idle []*nullgraph.Engine
	// nextSample is the next unissued sample index of this key's batch.
	// Monotone: indices are never reissued, even when a request is
	// canceled, so two responses can never carry the same sample.
	nextSample uint64
}

// NewPool returns a pool retaining at most maxIdlePerKey engines per
// fingerprint (<= 0 defaults to 4).
func NewPool(maxIdlePerKey int) *Pool {
	if maxIdlePerKey <= 0 {
		maxIdlePerKey = 4
	}
	return &Pool{maxIdlePerKey: maxIdlePerKey, keys: make(map[uint64]*poolKey)}
}

// Lease is one checked-out engine positioned at one sample index. The
// holder has exclusive use of Engine until Release; the engine-busy
// guard backs this up, so a pool bug would surface as ErrEngineBusy
// rather than a race.
type Lease struct {
	// Engine is the session, already positioned at Sample.
	Engine *nullgraph.Engine
	// Sample is the batch index this lease was issued.
	Sample uint64

	pool     *Pool
	key      uint64
	released bool
}

// Acquire checks out an engine for the fingerprint, creating one with
// opt if no idle session exists. The returned lease's engine is
// positioned at the lease's sample index.
func (p *Pool) Acquire(fp uint64, opt nullgraph.Options) (*Lease, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	ks := p.keys[fp]
	if ks == nil {
		ks = &poolKey{}
		p.keys[fp] = ks
	}
	sample := ks.nextSample
	ks.nextSample++
	var eng *nullgraph.Engine
	if n := len(ks.idle); n > 0 {
		eng = ks.idle[n-1]
		ks.idle[n-1] = nil
		ks.idle = ks.idle[:n-1]
	}
	p.mu.Unlock()
	if eng == nil {
		eng = nullgraph.NewEngine(opt)
	}
	eng.SetSample(sample)
	return &Lease{Engine: eng, Sample: sample, pool: p, key: fp}, nil
}

// Release returns the lease's engine to the pool. healthy = false (the
// request hit an unexpected engine error) closes the session instead
// of recycling it; canceled and deadline-exceeded requests are healthy
// — cancellation is cooperative and leaves the engine reusable.
// Idempotent: a second Release is a no-op.
func (l *Lease) Release(healthy bool) {
	if l.released {
		return
	}
	l.released = true
	if !healthy {
		l.Engine.Close()
		return
	}
	p := l.pool
	p.mu.Lock()
	ks := p.keys[l.key]
	if p.closed || ks == nil || len(ks.idle) >= p.maxIdlePerKey {
		p.mu.Unlock()
		l.Engine.Close()
		return
	}
	ks.idle = append(ks.idle, l.Engine)
	p.mu.Unlock()
}

// Stats reports the pool's current idle-session and key counts.
func (p *Pool) Stats() (keys, idle int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, ks := range p.keys {
		idle += len(ks.idle)
	}
	return len(p.keys), idle
}

// Close closes every idle engine and fails further Acquires. Leases
// still out close their engines on Release (the pool no longer
// accepts checkins).
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	var engines []*nullgraph.Engine
	for _, ks := range p.keys {
		engines = append(engines, ks.idle...)
		ks.idle = nil
	}
	p.mu.Unlock()
	for _, e := range engines {
		e.Close()
	}
	return nil
}

// String describes the pool for logs.
func (p *Pool) String() string {
	keys, idle := p.Stats()
	return fmt.Sprintf("serve.Pool{keys: %d, idle: %d}", keys, idle)
}
