package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"nullgraph"
	"nullgraph/internal/graph"
)

// Config sizes the service. Zero values pick production-sane defaults;
// see each field.
type Config struct {
	// Workers is the parallel width of each pooled engine. The default
	// (1) serves concurrency across requests, not within one: with one
	// engine per slot the machine is busy whenever there is traffic,
	// every response is bit-deterministic for its (seed, sample), and
	// no request can queue behind another's worker fan-out.
	Workers int
	// MaxConcurrent is the number of admission slots — requests
	// generating at once. <= 0 defaults to GOMAXPROCS.
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a slot; arrivals beyond it
	// are rejected with 429. <= 0 defaults to 4×MaxConcurrent.
	MaxQueue int
	// DefaultDeadline is the per-request generation deadline when the
	// client sends none. <= 0 defaults to 30s.
	DefaultDeadline time.Duration
	// MaxDeadline caps client-requested deadlines. <= 0 defaults to
	// 5 minutes.
	MaxDeadline time.Duration
	// MaxBodyBytes caps the request body (the degree distribution).
	// <= 0 defaults to 32 MiB.
	MaxBodyBytes int64
	// MaxIdlePerKey caps warm engines retained per fingerprint.
	// <= 0 defaults to 4.
	MaxIdlePerKey int
	// Seed is the base seed used when a request does not send one.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	return c
}

// Server is the nullgraphd service core: admission gate, engine pool,
// and HTTP handlers. Create with New, mount Handler, Close on
// shutdown.
type Server struct {
	cfg     Config
	pool    *Pool
	metrics *Metrics
	// slots is the admission gate: holding a token = generating.
	slots chan struct{}
	// waiters counts requests blocked on slots; admission beyond
	// cfg.MaxQueue is refused.
	waiters atomic.Int64
}

// New builds a server from cfg (zero value = defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:     cfg,
		pool:    NewPool(cfg.MaxIdlePerKey),
		metrics: NewMetrics(),
		slots:   make(chan struct{}, cfg.MaxConcurrent),
	}
}

// Metrics exposes the server's counters (for tests and embedders).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close releases every pooled engine.
func (s *Server) Close() error { return s.pool.Close() }

// Handler returns the service's HTTP mux:
//
//	POST /v1/generate  — body: "degree count" lines; response: edge list
//	GET  /metrics      — Prometheus text
//	GET  /healthz      — liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/generate", s.handleGenerate)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.WritePrometheus(w, s.pool); err != nil {
		// The status line is already on the wire; all we can do is count
		// the aborted scrape so truncated metrics pages are visible on the
		// next successful one.
		s.metrics.ObserveResponse(http.StatusInternalServerError)
	}
}

// errQueueFull rejects arrivals beyond the bounded admission queue.
var errQueueFull = errors.New("serve: admission queue full")

// admit blocks until a generation slot is free, the queue overflows,
// or ctx ends. The returned func frees the slot.
func (s *Server) admit(ctx context.Context) (func(), error) {
	select {
	case s.slots <- struct{}{}:
		return func() { <-s.slots }, nil
	default:
	}
	if s.waiters.Add(1) > int64(s.cfg.MaxQueue) {
		s.waiters.Add(-1)
		return nil, errQueueFull
	}
	defer s.waiters.Add(-1)
	select {
	case s.slots <- struct{}{}:
		return func() { <-s.slots }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// genRequest is one parsed /v1/generate request.
type genRequest struct {
	dist     *nullgraph.DegreeDistribution
	opt      nullgraph.Options
	deadline time.Duration
	binary   bool
}

// parseGenerate validates the request and builds engine options. All
// client errors are reported as (nil, message) for a 400.
func (s *Server) parseGenerate(r *http.Request) (*genRequest, string) {
	q := r.URL.Query()
	req := &genRequest{binary: true}
	opt := nullgraph.Options{Workers: s.cfg.Workers, Seed: s.cfg.Seed, SwapIterations: 10}
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return nil, fmt.Sprintf("bad seed %q", v)
		}
		opt.Seed = seed
	}
	if v := q.Get("swaps"); v != "" {
		swaps, err := strconv.Atoi(v)
		if err != nil || swaps < 0 || swaps > 1<<20 {
			return nil, fmt.Sprintf("bad swaps %q", v)
		}
		opt.SwapIterations = swaps
	}
	switch v := q.Get("stop"); v {
	case "":
	case "mixed":
		opt.MixUntilSwapped = true
	case "assortativity":
		opt.StopPolicy = &nullgraph.StopPolicy{Statistic: nullgraph.StopOnAssortativity}
	case "triangles":
		opt.StopPolicy = &nullgraph.StopPolicy{Statistic: nullgraph.StopOnTriangles}
	case "success-rate":
		opt.StopPolicy = &nullgraph.StopPolicy{Statistic: nullgraph.StopOnSuccessRate}
	default:
		return nil, fmt.Sprintf("bad stop %q (want mixed, assortativity, triangles or success-rate)", v)
	}
	if v := q.Get("refine"); v != "" {
		refine, err := strconv.Atoi(v)
		if err != nil || refine < 0 || refine > 1024 {
			return nil, fmt.Sprintf("bad refine %q", v)
		}
		opt.RefineProbabilities = refine
	}
	switch v := q.Get("format"); v {
	case "", "binary":
	case "text":
		req.binary = false
	default:
		return nil, fmt.Sprintf("bad format %q (want binary or text)", v)
	}
	req.deadline = s.cfg.DefaultDeadline
	if v := q.Get("deadline_ms"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms <= 0 {
			return nil, fmt.Sprintf("bad deadline_ms %q", v)
		}
		req.deadline = time.Duration(ms) * time.Millisecond
	}
	if req.deadline > s.cfg.MaxDeadline {
		req.deadline = s.cfg.MaxDeadline
	}
	dist, err := nullgraph.ReadDistribution(http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		return nil, fmt.Sprintf("bad distribution: %v", err)
	}
	if err := nullgraph.Validate(dist); err != nil {
		return nil, err.Error()
	}
	req.dist = dist
	req.opt = opt
	return req, ""
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	req, msg := s.parseGenerate(r)
	if req == nil {
		s.fail(w, http.StatusBadRequest, msg)
		return
	}
	// The deadline spans queueing and generation both: a request that
	// spent its budget waiting for a slot is as late as one that spent
	// it swapping.
	ctx, cancel := context.WithTimeout(r.Context(), req.deadline)
	defer cancel()

	release, err := s.admit(ctx)
	if err != nil {
		switch {
		case errors.Is(err, errQueueFull):
			s.fail(w, http.StatusTooManyRequests, "admission queue full")
		case errors.Is(err, context.DeadlineExceeded):
			s.fail(w, http.StatusGatewayTimeout, "deadline expired while queued")
		default:
			// Client went away while queued; nothing to send.
			s.metrics.ObserveResponse(499)
		}
		return
	}
	defer release()
	done := s.metrics.RequestStarted()
	defer done()

	lease, err := s.pool.Acquire(Fingerprint(req.dist, req.opt), req.opt)
	if err != nil {
		s.fail(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	res, err := lease.Engine.GenerateContext(ctx, req.dist)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			// Cooperative cancellation leaves the engine reusable.
			lease.Release(true)
			s.fail(w, http.StatusGatewayTimeout, "generation deadline expired")
		case errors.Is(err, context.Canceled):
			lease.Release(true)
			s.metrics.ObserveResponse(499)
		default:
			// Unknown engine state: retire the session.
			lease.Release(false)
			s.fail(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	// Result aliases engine-owned buffers: serialize the response and
	// fold the metrics in before the lease (and with it the buffers)
	// goes back to the pool.
	s.metrics.ObserveResult(res)
	h := w.Header()
	h.Set("X-Nullgraph-Seed", strconv.FormatUint(req.opt.Seed, 10))
	h.Set("X-Nullgraph-Sample", strconv.FormatUint(lease.Sample, 10))
	if res.Stop != nil {
		h.Set("X-Nullgraph-Stop-Reason", res.Stop.Reason)
		h.Set("X-Nullgraph-Swap-Iterations", strconv.Itoa(res.Stop.Iterations))
	}
	h.Set("X-Nullgraph-Vertices", strconv.Itoa(res.Graph.NumVertices))
	h.Set("X-Nullgraph-Edges", strconv.Itoa(len(res.Graph.Edges)))
	var werr error
	if req.binary {
		h.Set("Content-Type", "application/octet-stream")
		h.Set("Content-Length", strconv.FormatInt(graph.BinaryEdgeListSize(res.Graph), 10))
		w.WriteHeader(http.StatusOK)
		werr = nullgraph.WriteGraphBinary(w, res.Graph)
	} else {
		h.Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		werr = nullgraph.WriteGraph(w, res.Graph)
	}
	lease.Release(true)
	if werr != nil {
		// Headers are gone; the client sees the byte-count mismatch
		// (Content-Length) or a cut stream. Count it server-side too.
		s.metrics.ObserveResponse(499)
		return
	}
	s.metrics.ObserveResponse(http.StatusOK)
}

// fail writes a plain-text error and records the code.
func (s *Server) fail(w http.ResponseWriter, code int, msg string) {
	s.metrics.ObserveResponse(code)
	http.Error(w, msg, code)
}
