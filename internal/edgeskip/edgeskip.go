// Package edgeskip implements the paper's parallel edge-skipping
// generator (Algorithm IV.2): Bernoulli-model graph generation in O(m)
// expected work instead of O(n²) coin flips.
//
// All possible undirected edges are organized into one sample space per
// unordered degree-class pair (i, j):
//
//   - i == j: the C(n_i, 2) distinct vertex pairs inside the class,
//     indexed triangularly;
//   - i != j: the n_i·n_j pairs across the two classes, indexed
//     row-major.
//
// Within a space every pair is an edge independently with the same
// probability P(i,j), so instead of testing each index the generator
// samples geometric skip lengths l = ⌊log(r)/log(1−p)⌋ and jumps
// directly to the next success (Batagelj–Brandes / Miller–Hagberg).
//
// Vertex identifiers are class-ordered: class k owns the ID range
// [I(k), I(k)+n_k) where I is the prefix sum of class counts, exactly as
// the paper retrieves global IDs. Output is simple by construction:
// every distinct vertex pair is considered at most once, and no space
// contains a self-pair.
//
// Parallelism is two-level: across spaces, and within any space larger
// than a chunk threshold by restarting the skip process at interior
// offsets (valid because the underlying Bernoulli process is
// memoryless). Each chunk draws from its own deterministic RNG stream
// and writes to its own buffer; buffers are concatenated in chunk order,
// so output is identical for a fixed seed regardless of scheduling or
// worker count.
package edgeskip

import (
	"fmt"
	"math"
	"sync/atomic"

	"nullgraph/internal/degseq"
	"nullgraph/internal/graph"
	"nullgraph/internal/obs"
	"nullgraph/internal/par"
	"nullgraph/internal/probgen"
	"nullgraph/internal/rng"
)

// Options configures generation.
type Options struct {
	// Workers is the parallel width; <= 0 means GOMAXPROCS.
	Workers int
	// Seed fixes the generated graph for any worker count.
	Seed uint64
	// ChunkSpan is the maximum index span one chunk covers; spaces
	// larger than this are split for intra-space parallelism. <= 0 uses
	// a default of 1<<22.
	ChunkSpan int64
	// Recorder, when non-nil, receives per-space skip-draw accounting
	// (obs.SpaceReport per class pair) after generation. Counting is
	// per-chunk and aggregated once at the join, so it is deterministic
	// for a fixed seed regardless of scheduling.
	Recorder *obs.Recorder
	// Stop, when non-nil, is polled cooperatively inside the skip loops;
	// a tripped flag makes Generate return par.ErrStopped. Polling never
	// consumes randomness, so untripped runs are bit-identical with or
	// without a Stop.
	Stop *par.Stop
}

const defaultChunkSpan = 1 << 22

// chunk is one contiguous index interval of one class-pair space.
type chunk struct {
	ci, cj     int   // class indices, ci <= cj
	begin, end int64 // index interval within the space
	prob       float64
}

// Generator is a reusable edge-skip sampler. It owns the chunk list,
// per-chunk edge buffers, draw counters, and the concatenated output
// buffer, so repeated Generate calls over same-shape inputs reach a
// steady state with near-zero allocations. A Generator is not safe for
// concurrent use.
//
// The returned edge list aliases the Generator's output buffer: it is
// valid until the next Generate call.
type Generator struct {
	workers  int
	span     int64
	rec      *obs.Recorder
	pool     *par.Pool // optional; dispatches the chunk workers when set
	chunks   []chunk
	buffers  [][]graph.Edge
	draws    []int64
	offsets  []int64
	edges    []graph.Edge
	next     atomic.Int64
	chunkFn  func(w int, r par.Range)
	chunkArg struct {
		dist *degseq.Distribution
		seed uint64
		stop *par.Stop
	}
}

// NewGenerator returns a Generator with opt's width, chunk span, and
// recorder. Per-call state (seed, stop) comes from Generate arguments;
// opt.Seed and opt.Stop are ignored here. When opt.Pool is set below
// (via SetPool) the chunk workers run on it instead of fresh goroutines.
func NewGenerator(opt Options) *Generator {
	span := opt.ChunkSpan
	if span <= 0 {
		span = defaultChunkSpan
	}
	g := &Generator{workers: par.Workers(opt.Workers), span: span, rec: opt.Recorder}
	// One prebound body for the dynamic chunk loop: workers race on the
	// shared counter, so steady-state dispatch allocates nothing.
	g.chunkFn = func(_ int, _ par.Range) {
		//nullgraph:cancelable
		for {
			c := int(g.next.Add(1)) - 1
			if c >= len(g.chunks) {
				return
			}
			if g.chunkArg.stop.Stopped() {
				return
			}
			var src rng.Source
			src.Reseed(rng.Mix64(g.chunkArg.seed) ^ rng.Mix64(uint64(c)+0x1234567))
			g.buffers[c], g.draws[c] = runChunkInto(g.buffers[c][:0], g.chunkArg.dist, g.offsets, g.chunks[c], &src, g.chunkArg.stop)
		}
	}
	return g
}

// SetPool attaches a persistent worker pool; subsequent Generate calls
// dispatch chunk workers on it (the pool's width overrides the
// configured worker count). A nil pool reverts to per-call goroutines.
func (g *Generator) SetPool(pl *par.Pool) {
	g.pool = pl
	if pl != nil {
		g.workers = pl.Workers()
	}
}

// Generate draws a simple random graph whose class-pair edge
// probabilities are given by m (dimension |D|), over the vertex layout
// of dist, using the given seed. The output is bit-identical to the
// package-level Generate with the same (dist, m, seed, workers,
// span) regardless of buffer reuse, pool attachment, or scheduling.
// When stop trips mid-run it returns par.ErrStopped and no graph.
func (g *Generator) Generate(dist *degseq.Distribution, m *probgen.Matrix, seed uint64, stop *par.Stop) (*graph.EdgeList, error) {
	k := dist.NumClasses()
	if m.Dim() != k {
		return nil, fmt.Errorf("edgeskip: matrix dim %d != |D| %d", m.Dim(), k)
	}
	n := dist.NumVertices()
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("edgeskip: %d vertices exceed int32 IDs", n)
	}

	// Vertex offsets: exclusive prefix sums of class counts, into the
	// reusable buffer. Matches dist.VertexOffsets.
	g.offsets = g.offsets[:0]
	var running int64
	for _, c := range dist.Classes {
		g.offsets = append(g.offsets, running)
		running += c.Count
	}
	g.offsets = append(g.offsets, running)

	// Enumerate chunks. Spaces with zero probability contribute nothing
	// and are skipped outright.
	g.chunks = g.chunks[:0]
	for i := 0; i < k; i++ {
		ni := dist.Classes[i].Count
		for j := i; j < k; j++ {
			prob := m.At(i, j)
			if prob <= 0 {
				continue
			}
			var end int64
			if i == j {
				end = ni * (ni - 1) / 2
			} else {
				end = ni * dist.Classes[j].Count
			}
			for b := int64(0); b < end; b += g.span {
				e := b + g.span
				if e > end {
					e = end
				}
				g.chunks = append(g.chunks, chunk{ci: i, cj: j, begin: b, end: e, prob: prob})
			}
		}
	}

	// Dynamic scheduling over chunks (sizes are wildly uneven); each
	// chunk's stream is keyed by its index so the result is independent
	// of which worker runs it. Per-chunk buffers keep their capacity
	// across calls; only growth allocates.
	for len(g.buffers) < len(g.chunks) {
		g.buffers = append(g.buffers, nil)
	}
	for len(g.draws) < len(g.chunks) {
		g.draws = append(g.draws, 0)
	}
	g.next.Store(0)
	g.chunkArg.dist, g.chunkArg.seed, g.chunkArg.stop = dist, seed, stop
	par.Execute(g.pool, g.workers, g.workers, g.chunkFn)
	g.chunkArg.dist = nil

	if stop.Stopped() {
		return nil, par.ErrStopped
	}

	if obs.Enabled && g.rec != nil {
		recordSpaces(g.rec, g.chunks, g.buffers[:len(g.chunks)], g.draws[:len(g.chunks)])
	}

	g.edges = g.edges[:0]
	for _, b := range g.buffers[:len(g.chunks)] {
		g.edges = append(g.edges, b...)
	}
	return graph.NewEdgeList(g.edges, int(n)), nil
}

// Generate draws a simple random graph whose class-pair edge
// probabilities are given by m (dimension |D|), over the vertex layout
// of dist. It returns the edge list with NumVertices = Σ n_k. One-shot
// scratch; hot loops should hold a Generator.
func Generate(dist *degseq.Distribution, m *probgen.Matrix, opt Options) (*graph.EdgeList, error) {
	return NewGenerator(opt).Generate(dist, m, opt.Seed, opt.Stop)
}

// recordSpaces merges per-chunk draw/edge counts back into one record
// per class-pair space (chunks are enumerated in ascending (ci, cj)
// order, so the merged spaces come out sorted and deterministic).
func recordSpaces(rec *obs.Recorder, chunks []chunk, buffers [][]graph.Edge, draws []int64) {
	var spaces []obs.SpaceReport
	for c, ch := range chunks {
		if len(spaces) == 0 || spaces[len(spaces)-1].ClassI != ch.ci || spaces[len(spaces)-1].ClassJ != ch.cj {
			spaces = append(spaces, obs.SpaceReport{ClassI: ch.ci, ClassJ: ch.cj, Probability: ch.prob})
		}
		sp := &spaces[len(spaces)-1]
		sp.Pairs += ch.end - ch.begin
		sp.Draws += draws[c]
		sp.Edges += int64(len(buffers[c]))
	}
	rec.SetEdgeSkip(spaces)
}

// runChunkInto samples the Bernoulli process on [c.begin, c.end) of the
// (c.ci, c.cj) space, appending into out (usually buf[:0] of a reusable
// buffer). It also returns the number of geometric skip lengths drawn
// (the observability layer's per-space cost signal; the degenerate
// prob >= 1 path emits without drawing, so it reports 0). The stop flag
// is polled every few thousand draws; an abandoned chunk's buffer is
// discarded by the caller.
//
//nullgraph:hotpath
func runChunkInto(out []graph.Edge, dist *degseq.Distribution, offsets []int64, c chunk, src *rng.Source, stop *par.Stop) ([]graph.Edge, int64) {
	if cap(out) == 0 {
		expected := float64(c.end-c.begin) * c.prob
		out = make([]graph.Edge, 0, int(expected*1.15)+8)
	}
	baseI := offsets[c.ci]
	baseJ := offsets[c.cj]
	nj := dist.Classes[c.cj].Count
	// x is the next candidate index; the first draw positions it at
	// begin + skip.
	if c.prob >= 1 {
		// Degenerate but valid: every index is an edge.
		//nullgraph:cancelable
		for x := c.begin; x < c.end; x++ {
			if (x-c.begin)&8191 == 0 && stop.Stopped() {
				return out, 0
			}
			out = append(out, decode(c.ci == c.cj, x, baseI, baseJ, nj))
		}
		return out, 0
	}
	// The success probability is chunk-invariant, so the log(1-p) term of
	// the inversion formula is hoisted into a GeometricSkip; each draw
	// performs the exact floating-point operations Source.Geometric would
	// (pinned by TestGeometricSkipPairedIdentity), at roughly two thirds
	// of the cost.
	skip := rng.NewGeometricSkip(c.prob)
	var ndraws int64 = 1
	x := c.begin + skip.Next(src)
	//nullgraph:cancelable
	for x < c.end {
		if ndraws&2047 == 0 && stop.Stopped() {
			return out, ndraws
		}
		out = append(out, decode(c.ci == c.cj, x, baseI, baseJ, nj))
		x += 1 + skip.Next(src)
		ndraws++
	}
	return out, ndraws
}

// decode maps a space index to its global vertex pair.
//
//nullgraph:hotpath
func decode(diagonal bool, x, baseI, baseJ, nj int64) graph.Edge {
	if diagonal {
		u, v := triangular(x)
		return graph.Edge{U: int32(baseI + u), V: int32(baseI + v)}
	}
	u := x / nj
	v := x % nj
	return graph.Edge{U: int32(baseI + u), V: int32(baseJ + v)}
}

// triangular inverts x = u(u−1)/2 + v with 0 <= v < u: the strict
// lower-triangular enumeration of within-class pairs. The float64
// estimate is corrected by ±1 so the decode is exact for any x within
// int64's triangular range.
//
//nullgraph:hotpath
func triangular(x int64) (u, v int64) {
	u = int64((1 + math.Sqrt(1+8*float64(x))) / 2)
	for u*(u-1)/2 > x {
		u--
	}
	for (u+1)*u/2 <= x {
		u++
	}
	v = x - u*(u-1)/2
	return u, v
}

// ExpectedEdges returns the expected edge count of the Bernoulli process
// defined by (dist, m); identical to probgen.ExpectedEdges but local to
// this package's decode conventions for use in tests.
func ExpectedEdges(dist *degseq.Distribution, m *probgen.Matrix) float64 {
	return probgen.ExpectedEdges(dist, m)
}

// GenerateBernoulliReference flips one coin per candidate pair — the
// O(n²) model the skip process compresses. Only for validation on tiny
// inputs.
func GenerateBernoulliReference(dist *degseq.Distribution, m *probgen.Matrix, seed uint64) (*graph.EdgeList, error) {
	k := dist.NumClasses()
	if m.Dim() != k {
		return nil, fmt.Errorf("edgeskip: matrix dim %d != |D| %d", m.Dim(), k)
	}
	offsets := dist.VertexOffsets(1)
	n := dist.NumVertices()
	src := rng.New(seed)
	var edges []graph.Edge
	for i := 0; i < k; i++ {
		ni := dist.Classes[i].Count
		for j := i; j < k; j++ {
			prob := m.At(i, j)
			var end int64
			if i == j {
				end = ni * (ni - 1) / 2
			} else {
				end = ni * dist.Classes[j].Count
			}
			for x := int64(0); x < end; x++ {
				if src.Float64() < prob {
					edges = append(edges, decode(i == j, x, offsets[i], offsets[j], dist.Classes[j].Count))
				}
			}
		}
	}
	return graph.NewEdgeList(edges, int(n)), nil
}
