// Package edgeskip implements the paper's parallel edge-skipping
// generator (Algorithm IV.2): Bernoulli-model graph generation in O(m)
// expected work instead of O(n²) coin flips.
//
// All possible undirected edges are organized into one sample space per
// unordered degree-class pair (i, j):
//
//   - i == j: the C(n_i, 2) distinct vertex pairs inside the class,
//     indexed triangularly;
//   - i != j: the n_i·n_j pairs across the two classes, indexed
//     row-major.
//
// Within a space every pair is an edge independently with the same
// probability P(i,j), so instead of testing each index the generator
// samples geometric skip lengths l = ⌊log(r)/log(1−p)⌋ and jumps
// directly to the next success (Batagelj–Brandes / Miller–Hagberg).
//
// Vertex identifiers are class-ordered: class k owns the ID range
// [I(k), I(k)+n_k) where I is the prefix sum of class counts, exactly as
// the paper retrieves global IDs. Output is simple by construction:
// every distinct vertex pair is considered at most once, and no space
// contains a self-pair.
//
// Parallelism is two-level: across spaces, and within any space larger
// than a chunk threshold by restarting the skip process at interior
// offsets (valid because the underlying Bernoulli process is
// memoryless). Each chunk draws from its own deterministic RNG stream
// and writes to its own buffer; buffers are concatenated in chunk order,
// so output is identical for a fixed seed regardless of scheduling or
// worker count.
package edgeskip

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"nullgraph/internal/degseq"
	"nullgraph/internal/graph"
	"nullgraph/internal/obs"
	"nullgraph/internal/par"
	"nullgraph/internal/probgen"
	"nullgraph/internal/rng"
)

// Options configures generation.
type Options struct {
	// Workers is the parallel width; <= 0 means GOMAXPROCS.
	Workers int
	// Seed fixes the generated graph for any worker count.
	Seed uint64
	// ChunkSpan is the maximum index span one chunk covers; spaces
	// larger than this are split for intra-space parallelism. <= 0 uses
	// a default of 1<<22.
	ChunkSpan int64
	// Recorder, when non-nil, receives per-space skip-draw accounting
	// (obs.SpaceReport per class pair) after generation. Counting is
	// per-chunk and aggregated once at the join, so it is deterministic
	// for a fixed seed regardless of scheduling.
	Recorder *obs.Recorder
}

const defaultChunkSpan = 1 << 22

// chunk is one contiguous index interval of one class-pair space.
type chunk struct {
	ci, cj     int   // class indices, ci <= cj
	begin, end int64 // index interval within the space
	prob       float64
}

// Generate draws a simple random graph whose class-pair edge
// probabilities are given by m (dimension |D|), over the vertex layout
// of dist. It returns the edge list with NumVertices = Σ n_k.
func Generate(dist *degseq.Distribution, m *probgen.Matrix, opt Options) (*graph.EdgeList, error) {
	k := dist.NumClasses()
	if m.Dim() != k {
		return nil, fmt.Errorf("edgeskip: matrix dim %d != |D| %d", m.Dim(), k)
	}
	n := dist.NumVertices()
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("edgeskip: %d vertices exceed int32 IDs", n)
	}
	p := par.Workers(opt.Workers)
	span := opt.ChunkSpan
	if span <= 0 {
		span = defaultChunkSpan
	}
	offsets := dist.VertexOffsets(p)

	// Enumerate chunks. Spaces with zero probability contribute nothing
	// and are skipped outright.
	var chunks []chunk
	for i := 0; i < k; i++ {
		ni := dist.Classes[i].Count
		for j := i; j < k; j++ {
			prob := m.At(i, j)
			if prob <= 0 {
				continue
			}
			var end int64
			if i == j {
				end = ni * (ni - 1) / 2
			} else {
				end = ni * dist.Classes[j].Count
			}
			for b := int64(0); b < end; b += span {
				e := b + span
				if e > end {
					e = end
				}
				chunks = append(chunks, chunk{ci: i, cj: j, begin: b, end: e, prob: prob})
			}
		}
	}

	// Dynamic scheduling over chunks (sizes are wildly uneven); each
	// chunk's stream is keyed by its index so the result is independent
	// of which worker runs it.
	buffers := make([][]graph.Edge, len(chunks))
	draws := make([]int64, len(chunks))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= len(chunks) {
					return
				}
				buffers[c], draws[c] = runChunk(dist, offsets, chunks[c], rng.New(rng.Mix64(opt.Seed)^rng.Mix64(uint64(c)+0x1234567)))
			}
		}()
	}
	wg.Wait()

	if obs.Enabled && opt.Recorder != nil {
		recordSpaces(opt.Recorder, chunks, buffers, draws)
	}

	var total int
	for _, b := range buffers {
		total += len(b)
	}
	edges := make([]graph.Edge, 0, total)
	for _, b := range buffers {
		edges = append(edges, b...)
	}
	return graph.NewEdgeList(edges, int(n)), nil
}

// recordSpaces merges per-chunk draw/edge counts back into one record
// per class-pair space (chunks are enumerated in ascending (ci, cj)
// order, so the merged spaces come out sorted and deterministic).
func recordSpaces(rec *obs.Recorder, chunks []chunk, buffers [][]graph.Edge, draws []int64) {
	var spaces []obs.SpaceReport
	for c, ch := range chunks {
		if len(spaces) == 0 || spaces[len(spaces)-1].ClassI != ch.ci || spaces[len(spaces)-1].ClassJ != ch.cj {
			spaces = append(spaces, obs.SpaceReport{ClassI: ch.ci, ClassJ: ch.cj, Probability: ch.prob})
		}
		sp := &spaces[len(spaces)-1]
		sp.Pairs += ch.end - ch.begin
		sp.Draws += draws[c]
		sp.Edges += int64(len(buffers[c]))
	}
	rec.SetEdgeSkip(spaces)
}

// runChunk samples the Bernoulli process on [c.begin, c.end) of the
// (c.ci, c.cj) space. It also returns the number of geometric skip
// lengths drawn (the observability layer's per-space cost signal; the
// degenerate prob >= 1 path emits without drawing, so it reports 0).
func runChunk(dist *degseq.Distribution, offsets []int64, c chunk, src *rng.Source) ([]graph.Edge, int64) {
	expected := float64(c.end-c.begin) * c.prob
	out := make([]graph.Edge, 0, int(expected*1.15)+8)
	baseI := offsets[c.ci]
	baseJ := offsets[c.cj]
	nj := dist.Classes[c.cj].Count
	// x is the next candidate index; the first draw positions it at
	// begin + skip.
	if c.prob >= 1 {
		// Degenerate but valid: every index is an edge.
		for x := c.begin; x < c.end; x++ {
			out = append(out, decode(c.ci == c.cj, x, baseI, baseJ, nj))
		}
		return out, 0
	}
	var ndraws int64 = 1
	x := c.begin + src.Geometric(c.prob)
	for x < c.end {
		out = append(out, decode(c.ci == c.cj, x, baseI, baseJ, nj))
		x += 1 + src.Geometric(c.prob)
		ndraws++
	}
	return out, ndraws
}

// decode maps a space index to its global vertex pair.
func decode(diagonal bool, x, baseI, baseJ, nj int64) graph.Edge {
	if diagonal {
		u, v := triangular(x)
		return graph.Edge{U: int32(baseI + u), V: int32(baseI + v)}
	}
	u := x / nj
	v := x % nj
	return graph.Edge{U: int32(baseI + u), V: int32(baseJ + v)}
}

// triangular inverts x = u(u−1)/2 + v with 0 <= v < u: the strict
// lower-triangular enumeration of within-class pairs. The float64
// estimate is corrected by ±1 so the decode is exact for any x within
// int64's triangular range.
func triangular(x int64) (u, v int64) {
	u = int64((1 + math.Sqrt(1+8*float64(x))) / 2)
	for u*(u-1)/2 > x {
		u--
	}
	for (u+1)*u/2 <= x {
		u++
	}
	v = x - u*(u-1)/2
	return u, v
}

// ExpectedEdges returns the expected edge count of the Bernoulli process
// defined by (dist, m); identical to probgen.ExpectedEdges but local to
// this package's decode conventions for use in tests.
func ExpectedEdges(dist *degseq.Distribution, m *probgen.Matrix) float64 {
	return probgen.ExpectedEdges(dist, m)
}

// GenerateBernoulliReference flips one coin per candidate pair — the
// O(n²) model the skip process compresses. Only for validation on tiny
// inputs.
func GenerateBernoulliReference(dist *degseq.Distribution, m *probgen.Matrix, seed uint64) (*graph.EdgeList, error) {
	k := dist.NumClasses()
	if m.Dim() != k {
		return nil, fmt.Errorf("edgeskip: matrix dim %d != |D| %d", m.Dim(), k)
	}
	offsets := dist.VertexOffsets(1)
	n := dist.NumVertices()
	src := rng.New(seed)
	var edges []graph.Edge
	for i := 0; i < k; i++ {
		ni := dist.Classes[i].Count
		for j := i; j < k; j++ {
			prob := m.At(i, j)
			var end int64
			if i == j {
				end = ni * (ni - 1) / 2
			} else {
				end = ni * dist.Classes[j].Count
			}
			for x := int64(0); x < end; x++ {
				if src.Float64() < prob {
					edges = append(edges, decode(i == j, x, offsets[i], offsets[j], dist.Classes[j].Count))
				}
			}
		}
	}
	return graph.NewEdgeList(edges, int(n)), nil
}
