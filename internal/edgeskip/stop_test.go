package edgeskip

import (
	"errors"
	"testing"

	"nullgraph/internal/par"
	"nullgraph/internal/probgen"
)

// TestGenerateStopPreTripped: a tripped flag makes Generate bail with
// par.ErrStopped and no graph.
func TestGenerateStopPreTripped(t *testing.T) {
	dist := mustDist(t, map[int64]int64{2: 200, 3: 100})
	m := probgen.Generate(dist, 1)
	stop := &par.Stop{}
	stop.Set()
	el, err := Generate(dist, m, Options{Workers: 2, Seed: 1, Stop: stop})
	if !errors.Is(err, par.ErrStopped) {
		t.Fatalf("got err %v, want par.ErrStopped", err)
	}
	if el != nil {
		t.Fatal("stopped Generate returned a graph")
	}
}

// TestGenerateStopUntrippedBitIdentical: attaching a Stop that never
// trips must not change the output — polling consumes no randomness.
func TestGenerateStopUntrippedBitIdentical(t *testing.T) {
	dist := mustDist(t, map[int64]int64{2: 400, 5: 100, 9: 20})
	m := probgen.Generate(dist, 1)
	plain, err := Generate(dist, m, Options{Workers: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	watched, err := Generate(dist, m, Options{Workers: 1, Seed: 7, Stop: &par.Stop{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Edges) != len(watched.Edges) {
		t.Fatalf("edge counts differ: %d vs %d", len(plain.Edges), len(watched.Edges))
	}
	for i := range plain.Edges {
		if plain.Edges[i] != watched.Edges[i] {
			t.Fatalf("stop polling changed the output at edge %d", i)
		}
	}
}

// TestGeneratorReuseAfterStop: an aborted Generate must leave the
// Generator reusable, and the retry bit-identical to a clean run.
func TestGeneratorReuseAfterStop(t *testing.T) {
	dist := mustDist(t, map[int64]int64{2: 400, 5: 100})
	m := probgen.Generate(dist, 1)
	g := NewGenerator(Options{Workers: 1})
	stop := &par.Stop{}
	stop.Set()
	if _, err := g.Generate(dist, m, 3, stop); !errors.Is(err, par.ErrStopped) {
		t.Fatalf("got err %v, want par.ErrStopped", err)
	}
	got, err := g.Generate(dist, m, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Generate(dist, m, Options{Workers: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Edges) != len(want.Edges) {
		t.Fatalf("retry drew %d edges, clean run drew %d", len(got.Edges), len(want.Edges))
	}
	for i := range got.Edges {
		if got.Edges[i] != want.Edges[i] {
			t.Fatalf("retry diverges from clean run at edge %d", i)
		}
	}
}
