package edgeskip

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"nullgraph/internal/degseq"
	"nullgraph/internal/graph"
	"nullgraph/internal/obs"
	"nullgraph/internal/probgen"
)

func mustDist(t testing.TB, counts map[int64]int64) *degseq.Distribution {
	t.Helper()
	d, err := degseq.FromCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestTriangularDecode(t *testing.T) {
	// Exhaustive bijection check over the first few thousand indices.
	seen := map[[2]int64]bool{}
	var x int64
	for u := int64(1); u < 120; u++ {
		for v := int64(0); v < u; v++ {
			gu, gv := triangular(x)
			if gu != u || gv != v {
				t.Fatalf("triangular(%d) = (%d,%d), want (%d,%d)", x, gu, gv, u, v)
			}
			if seen[[2]int64{gu, gv}] {
				t.Fatalf("pair (%d,%d) decoded twice", gu, gv)
			}
			seen[[2]int64{gu, gv}] = true
			x++
		}
	}
}

func TestTriangularDecodeLargeProperty(t *testing.T) {
	f := func(raw uint32) bool {
		x := int64(raw) * 4096 // exercise large indices
		u, v := triangular(x)
		return v >= 0 && v < u && u*(u-1)/2+v == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGenerateIsSimple(t *testing.T) {
	d := mustDist(t, map[int64]int64{2: 500, 5: 100, 20: 10})
	m := probgen.Generate(d, 2)
	el, err := Generate(d, m, Options{Workers: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep := el.CheckSimplicity(); !rep.IsSimple() {
		t.Fatalf("edge-skipping output not simple: %+v", rep)
	}
	if el.NumVertices != int(d.NumVertices()) {
		t.Errorf("NumVertices = %d, want %d", el.NumVertices, d.NumVertices())
	}
}

func TestGenerateDeterministicAcrossWorkers(t *testing.T) {
	d := mustDist(t, map[int64]int64{2: 2000, 7: 300, 40: 20})
	m := probgen.Generate(d, 2)
	a, err := Generate(d, m, Options{Workers: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(d, m, Options{Workers: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Edges) != len(b.Edges) {
		t.Fatalf("edge counts differ: %d vs %d", len(a.Edges), len(b.Edges))
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs between worker counts: %v vs %v", i, a.Edges[i], b.Edges[i])
		}
	}
	c, err := Generate(d, m, Options{Workers: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.EqualAsSets(c) {
		t.Error("different seeds gave identical graphs")
	}
}

func TestGenerateEdgeCountNearExpectation(t *testing.T) {
	d := mustDist(t, map[int64]int64{3: 3000, 10: 500, 50: 20})
	m := probgen.Generate(d, 2)
	want := probgen.ExpectedEdges(d, m)
	var total float64
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		el, err := Generate(d, m, Options{Workers: 4, Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		total += float64(el.NumEdges())
	}
	mean := total / trials
	// Binomial std ≈ sqrt(want) per trial; mean of 20 trials within 5σ/√20.
	tol := 5 * math.Sqrt(want) / math.Sqrt(trials)
	if math.Abs(mean-want) > tol {
		t.Errorf("mean edges %v, want %v ± %v", mean, want, tol)
	}
}

func TestGenerateDegreesMatchExpectation(t *testing.T) {
	// Per-class realized average degree must track the matrix's expected
	// degree for that class.
	d := mustDist(t, map[int64]int64{3: 2000, 12: 200, 60: 10})
	m := probgen.Generate(d, 2)
	offsets := d.VertexOffsets(1)
	classSum := make([]float64, d.NumClasses())
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		el, err := Generate(d, m, Options{Workers: 4, Seed: uint64(100 + trial)})
		if err != nil {
			t.Fatal(err)
		}
		deg := el.Degrees(2)
		for c := 0; c < d.NumClasses(); c++ {
			var s int64
			for v := offsets[c]; v < offsets[c+1]; v++ {
				s += deg[v]
			}
			classSum[c] += float64(s) / float64(d.Classes[c].Count)
		}
	}
	resid := probgen.RowResiduals(d, m)
	for c := 0; c < d.NumClasses(); c++ {
		got := classSum[c] / trials
		want := float64(d.Classes[c].Degree) + resid[c] // what the matrix actually encodes
		if math.Abs(got-want) > 0.15*want+0.2 {
			t.Errorf("class %d (degree %d): realized avg degree %v, matrix expectation %v",
				c, d.Classes[c].Degree, got, want)
		}
	}
}

func TestGenerateMatchesBernoulliReference(t *testing.T) {
	// Same distribution: edge frequency per pair must match the coin-flip
	// model across many seeds.
	d := mustDist(t, map[int64]int64{1: 6, 3: 4})
	m := probgen.Generate(d, 1)
	const trials = 3000
	skipCount := map[uint64]int{}
	coinCount := map[uint64]int{}
	for trial := 0; trial < trials; trial++ {
		a, err := Generate(d, m, Options{Workers: 2, Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range a.Edges {
			skipCount[e.Key()]++
		}
		b, err := GenerateBernoulliReference(d, m, uint64(trial)+999999)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range b.Edges {
			coinCount[e.Key()]++
		}
	}
	n := int32(d.NumVertices())
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			k := (graph.Edge{U: u, V: v}).Key()
			ps := float64(skipCount[k]) / trials
			pc := float64(coinCount[k]) / trials
			// 6-sigma binomial tolerance on the difference of two
			// independent estimates.
			tol := 6 * math.Sqrt(2*0.25/trials)
			if math.Abs(ps-pc) > tol {
				t.Errorf("pair (%d,%d): skip %v vs coin %v", u, v, ps, pc)
			}
		}
	}
}

func TestGenerateChunkSplitEquivalent(t *testing.T) {
	// Tiny chunk span forces intra-space splitting; the edge *set*
	// distribution must be unaffected (counts near expectation).
	d := mustDist(t, map[int64]int64{4: 1000})
	m := probgen.Generate(d, 1)
	want := probgen.ExpectedEdges(d, m)
	var total float64
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		el, err := Generate(d, m, Options{Workers: 4, Seed: uint64(trial), ChunkSpan: 1000})
		if err != nil {
			t.Fatal(err)
		}
		if rep := el.CheckSimplicity(); !rep.IsSimple() {
			t.Fatalf("chunked output not simple: %+v", rep)
		}
		total += float64(el.NumEdges())
	}
	mean := total / trials
	tol := 5 * math.Sqrt(want) / math.Sqrt(trials)
	if math.Abs(mean-want) > tol {
		t.Errorf("chunked mean edges %v, want %v ± %v", mean, want, tol)
	}
}

func TestGenerateProbabilityOne(t *testing.T) {
	// P = 1 everywhere must produce the complete graph.
	d := mustDist(t, map[int64]int64{3: 4, 9: 3}) // 7 vertices
	m := probgen.NewMatrix(2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 1)
	m.Set(1, 1, 1)
	el, err := Generate(d, m, Options{Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if el.NumEdges() != 21 {
		t.Errorf("complete graph on 7 vertices: %d edges, want 21", el.NumEdges())
	}
	if rep := el.CheckSimplicity(); !rep.IsSimple() {
		t.Errorf("not simple: %+v", rep)
	}
}

func TestGenerateZeroProbability(t *testing.T) {
	d := mustDist(t, map[int64]int64{2: 10})
	m := probgen.NewMatrix(1) // all zero
	el, err := Generate(d, m, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if el.NumEdges() != 0 {
		t.Errorf("zero matrix produced %d edges", el.NumEdges())
	}
}

func TestGenerateDimensionMismatch(t *testing.T) {
	d := mustDist(t, map[int64]int64{2: 10})
	m := probgen.NewMatrix(3)
	if _, err := Generate(d, m, Options{}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := GenerateBernoulliReference(d, m, 1); err == nil {
		t.Error("reference: dimension mismatch accepted")
	}
}

func TestGenerateSingletonClasses(t *testing.T) {
	// Classes of one vertex have empty diagonal spaces and must not
	// emit self-loops.
	d := mustDist(t, map[int64]int64{5: 1, 6: 1, 7: 1})
	m := probgen.NewMatrix(3)
	for i := 0; i < 3; i++ {
		for j := i; j < 3; j++ {
			m.Set(i, j, 1)
		}
	}
	el, err := Generate(d, m, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// 3 vertices, all cross pairs = 3 edges, no loops.
	if el.NumEdges() != 3 {
		t.Errorf("edges = %d, want 3", el.NumEdges())
	}
	for _, e := range el.Edges {
		if e.IsLoop() {
			t.Errorf("self-loop %v emitted", e)
		}
	}
}

// TestGenerateRecordsSpaces locks the observability contract of the
// edge-skip phase: one merged record per class pair with prob > 0,
// edge counts matching the actual output, draw counts covering every
// emitted edge, and determinism across worker counts (chunk streams
// are keyed by chunk index, so scheduling cannot move counts between
// spaces).
func TestGenerateRecordsSpaces(t *testing.T) {
	d := mustDist(t, map[int64]int64{2: 2000, 7: 300, 40: 20})
	m := probgen.Generate(d, 2)
	collect := func(workers int) (*graph.EdgeList, *obs.EdgeSkipReport) {
		rec := obs.NewRecorder()
		el, err := Generate(d, m, Options{Workers: workers, Seed: 5, Recorder: rec})
		if err != nil {
			t.Fatal(err)
		}
		return el, rec.Report().EdgeSkip
	}
	el, rep := collect(1)
	if rep == nil {
		t.Fatal("no edge-skip section recorded")
	}
	if rep.TotalEdges != int64(el.NumEdges()) {
		t.Errorf("recorded %d edges, generated %d", rep.TotalEdges, el.NumEdges())
	}
	// Every emitted edge consumed at least one draw, plus each space's
	// positioning draw.
	if rep.TotalDraws < rep.TotalEdges {
		t.Errorf("draws %d < edges %d", rep.TotalDraws, rep.TotalEdges)
	}
	seen := map[[2]int]bool{}
	for _, sp := range rep.Spaces {
		key := [2]int{sp.ClassI, sp.ClassJ}
		if seen[key] {
			t.Fatalf("space (%d,%d) recorded twice (chunks not merged)", sp.ClassI, sp.ClassJ)
		}
		seen[key] = true
		if sp.ClassI > sp.ClassJ || sp.Probability <= 0 || sp.Pairs <= 0 {
			t.Errorf("malformed space record %+v", sp)
		}
	}
	_, rep8 := collect(8)
	if !reflect.DeepEqual(rep, rep8) {
		t.Errorf("space accounting differs across worker counts:\n%+v\n%+v", rep, rep8)
	}
}

func BenchmarkGenerate(b *testing.B) {
	d, err := degseq.SamplePowerLaw(degseq.PowerLawConfig{
		NumVertices: 500000, MinDegree: 2, MaxDegree: 5000, Gamma: 2.2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	m := probgen.Generate(d, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		el, err := Generate(d, m, Options{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(el.NumEdges()) * 8)
	}
}
