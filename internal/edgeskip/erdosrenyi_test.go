package edgeskip

import (
	"math"
	"testing"
)

func TestGenerateERCountNearExpectation(t *testing.T) {
	const n = 1000
	const p = 0.01
	want := p * float64(n*(n-1)/2)
	var total float64
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		el, err := GenerateER(n, p, Options{Workers: 4, Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if rep := el.CheckSimplicity(); !rep.IsSimple() {
			t.Fatalf("ER output not simple: %+v", rep)
		}
		total += float64(el.NumEdges())
	}
	mean := total / trials
	tol := 5 * math.Sqrt(want*(1-p)) / math.Sqrt(trials)
	if math.Abs(mean-want) > tol {
		t.Errorf("mean edges %v, want %v ± %v", mean, want, tol)
	}
}

func TestGenerateERExtremes(t *testing.T) {
	// p = 1: complete graph.
	el, err := GenerateER(30, 1, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if el.NumEdges() != 30*29/2 {
		t.Errorf("complete graph edges = %d, want %d", el.NumEdges(), 30*29/2)
	}
	// p = 0: empty graph.
	el, err = GenerateER(30, 0, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if el.NumEdges() != 0 {
		t.Errorf("p=0 edges = %d", el.NumEdges())
	}
	// n = 0 and n = 1: no pairs.
	for _, n := range []int64{0, 1} {
		el, err = GenerateER(n, 0.5, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if el.NumEdges() != 0 {
			t.Errorf("n=%d edges = %d", n, el.NumEdges())
		}
	}
}

func TestGenerateERValidation(t *testing.T) {
	if _, err := GenerateER(10, -0.5, Options{}); err == nil {
		t.Error("negative p accepted")
	}
	if _, err := GenerateER(10, 1.5, Options{}); err == nil {
		t.Error("p > 1 accepted")
	}
	if _, err := GenerateER(-1, 0.5, Options{}); err == nil {
		t.Error("negative n accepted")
	}
}

func TestGenerateERDeterministicAcrossWorkers(t *testing.T) {
	a, err := GenerateER(2000, 0.005, Options{Workers: 1, Seed: 9, ChunkSpan: 10000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateER(2000, 0.005, Options{Workers: 8, Seed: 9, ChunkSpan: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Edges) != len(b.Edges) {
		t.Fatalf("edge counts differ: %d vs %d", len(a.Edges), len(b.Edges))
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs across worker counts", i)
		}
	}
}

func TestGenerateERDegreeDistributionBinomial(t *testing.T) {
	// Degrees of G(n,p) are Binomial(n-1, p): check mean and variance.
	const n = 4000
	const p = 0.01
	el, err := GenerateER(n, p, Options{Workers: 4, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	deg := el.Degrees(2)
	var mean float64
	for _, d := range deg {
		mean += float64(d)
	}
	mean /= n
	want := p * (n - 1)
	if math.Abs(mean-want) > 0.05*want {
		t.Errorf("mean degree %v, want ~%v", mean, want)
	}
	var variance float64
	for _, d := range deg {
		variance += (float64(d) - mean) * (float64(d) - mean)
	}
	variance /= n
	wantVar := (n - 1) * p * (1 - p)
	if math.Abs(variance-wantVar) > 0.15*wantVar {
		t.Errorf("degree variance %v, want ~%v", variance, wantVar)
	}
}

func BenchmarkGenerateER(b *testing.B) {
	for i := 0; i < b.N; i++ {
		el, err := GenerateER(1_000_000, 4e-6, Options{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(el.NumEdges()) * 8)
	}
}
