package edgeskip

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"nullgraph/internal/graph"
	"nullgraph/internal/par"
	"nullgraph/internal/rng"
)

// GenerateER draws a G(n, p) Erdős–Rényi graph with the same
// edge-skipping machinery — the single-space base case the paper uses
// to introduce the technique ("with a graph having equal edge
// probabilities between all vertex pairs ... we only need to consider
// one single space for the entire graph"). Simple by construction;
// O(p·n²) expected work, i.e. O(m).
func GenerateER(n int64, p float64, opt Options) (*graph.EdgeList, error) {
	if n < 0 || n > math.MaxInt32 {
		return nil, fmt.Errorf("edgeskip: vertex count %d out of range", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("edgeskip: probability %v out of [0,1]", p)
	}
	space := n * (n - 1) / 2
	if space == 0 || p == 0 {
		return graph.NewEdgeList(nil, int(n)), nil
	}
	span := opt.ChunkSpan
	if span <= 0 {
		span = defaultChunkSpan
	}
	nChunks := int((space + span - 1) / span)
	buffers := make([][]graph.Edge, nChunks)
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := par.Workers(opt.Workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nChunks {
					return
				}
				begin := int64(c) * span
				end := begin + span
				if end > space {
					end = space
				}
				buffers[c] = runERChunk(begin, end, p,
					rng.New(rng.Mix64(opt.Seed)^rng.Mix64(uint64(c)+0xe2d05)))
			}
		}()
	}
	wg.Wait()
	var total int
	for _, b := range buffers {
		total += len(b)
	}
	edges := make([]graph.Edge, 0, total)
	for _, b := range buffers {
		edges = append(edges, b...)
	}
	return graph.NewEdgeList(edges, int(n)), nil
}

func runERChunk(begin, end int64, p float64, src *rng.Source) []graph.Edge {
	expected := float64(end-begin) * p
	out := make([]graph.Edge, 0, int(expected*1.15)+8)
	emit := func(x int64) {
		u, v := triangular(x)
		out = append(out, graph.Edge{U: int32(u), V: int32(v)})
	}
	if p >= 1 {
		for x := begin; x < end; x++ {
			emit(x)
		}
		return out
	}
	x := begin + src.Geometric(p)
	for x < end {
		emit(x)
		x += 1 + src.Geometric(p)
	}
	return out
}
