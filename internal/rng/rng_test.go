package rng

import (
	"math"
	"testing"
	"testing/quick"
)

// refSplitMix64 is an independent transcription of Vigna's canonical
// splitmix64 next() used to cross-check the package implementation.
func refSplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func TestSplitMix64MatchesReference(t *testing.T) {
	for _, seed := range []uint64{0, 1, 1234567, math.MaxUint64} {
		sm := NewSplitMix64(seed)
		state := seed
		for i := 0; i < 64; i++ {
			if got, want := sm.Next(), refSplitMix64(&state); got != want {
				t.Fatalf("seed %d step %d: Next() = %#x, want %#x", seed, i, got, want)
			}
		}
	}
}

func TestMix64MatchesSplitMix(t *testing.T) {
	sm := NewSplitMix64(42)
	if got, want := Mix64(42), sm.Next(); got != want {
		t.Errorf("Mix64(42) = %#x, want %#x", got, want)
	}
}

func TestNewDeterministic(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed sources diverged at step %d", i)
		}
	}
	c := New(100)
	same := true
	a = New(99)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical first 10 outputs")
	}
}

func TestStreamsIndependentAndStable(t *testing.T) {
	s1 := Streams(7, 4)
	s2 := Streams(7, 8)
	// Stream i must not depend on how many streams were requested.
	for i := 0; i < 4; i++ {
		for k := 0; k < 16; k++ {
			if s1[i].Uint64() != s2[i].Uint64() {
				t.Fatalf("stream %d differs between Streams(7,4) and Streams(7,8)", i)
			}
		}
	}
	// Distinct streams should not collide on their first outputs.
	s := Streams(7, 16)
	seen := map[uint64]int{}
	for i, src := range s {
		v := src.Uint64()
		if j, dup := seen[v]; dup {
			t.Errorf("streams %d and %d share first output %#x", i, j, v)
		}
		seen[v] = i
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64OpenRange(t *testing.T) {
	r := New(5)
	for i := 0; i < 100000; i++ {
		f := r.Float64Open()
		if f <= 0 || f >= 1 {
			t.Fatalf("Float64Open out of (0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean of %d uniforms = %v, want ~0.5", n, mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(17)
	const n, draws = 10, 200000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("Intn(%d): value %d drawn %d times, want ~%v", n, v, c, want)
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%#x,%#x) = (%#x,%#x), want (%#x,%#x)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestMul64Property(t *testing.T) {
	f := func(a, b uint32) bool {
		hi, lo := mul64(uint64(a), uint64(b))
		return hi == 0 && lo == uint64(a)*uint64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeometricEdgeCases(t *testing.T) {
	r := New(1)
	if got := r.Geometric(1.0); got != 0 {
		t.Errorf("Geometric(1) = %d, want 0", got)
	}
	if got := r.Geometric(1.5); got != 0 {
		t.Errorf("Geometric(1.5) = %d, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Geometric(0) did not panic")
		}
	}()
	r.Geometric(0)
}

func TestGeometricMean(t *testing.T) {
	// E[Geom(p)] (failures before first success) = (1-p)/p.
	r := New(23)
	for _, p := range []float64{0.5, 0.1, 0.01} {
		const n = 100000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Geometric(p))
		}
		mean := sum / n
		want := (1 - p) / p
		if math.Abs(mean-want) > 0.05*want+0.05 {
			t.Errorf("Geometric(%v): mean = %v, want ~%v", p, mean, want)
		}
	}
}

func TestGeometricNonNegativeProperty(t *testing.T) {
	r := New(9)
	f := func(raw uint16) bool {
		p := (float64(raw) + 1) / (math.MaxUint16 + 2) // p in (0,1)
		return r.Geometric(p) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(77)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		out := make([]int, n)
		r.Perm(out)
		seen := make([]bool, n)
		for _, v := range out {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, out)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(31)
	vals := []int{5, 5, 1, 9, 2, 2, 2}
	orig := map[int]int{}
	for _, v := range vals {
		orig[v]++
	}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	got := map[int]int{}
	for _, v := range vals {
		got[v]++
	}
	for k, c := range orig {
		if got[k] != c {
			t.Errorf("Shuffle changed multiset: %v", vals)
		}
	}
}

func TestBoolRoughlyFair(t *testing.T) {
	r := New(41)
	const n = 100000
	trues := 0
	for i := 0; i < n; i++ {
		if r.Bool() {
			trues++
		}
	}
	if math.Abs(float64(trues)-n/2) > 3*math.Sqrt(n/4) {
		t.Errorf("Bool: %d of %d true", trues, n)
	}
}
