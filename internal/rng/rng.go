// Package rng provides the deterministic pseudo-random machinery used by
// every generator in the library: a splitmix64 seed expander, the
// xoshiro256** generator, and derivation of independent per-worker
// streams so parallel runs are reproducible for a fixed (seed, workers)
// pair.
//
// The stdlib math/rand sources are avoided in hot paths: generation and
// swapping draw billions of variates, and a locked global source (or an
// interface call per variate) dominates the profile. xoshiro256** is the
// generator used by several HPC graph-generation codes and by Go's own
// runtime-internal fastrand ancestry; it is small, splittable via
// splitmix64 seeding, and passes BigCrush.
package rng

import (
	"math"
	"math/bits"
)

// SplitMix64 is a tiny counter-based generator used to expand one seed
// into many well-separated seeds. Zero value is usable: the first Next
// advances the state away from 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Next returns the next value in the splitmix64 sequence.
//
//nullgraph:hotpath
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 hashes x with the splitmix64 finalizer; useful for stateless
// per-index hashing (e.g. deriving a stream for index i).
//
//nullgraph:hotpath
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Source is a xoshiro256** pseudo-random generator. It is NOT safe for
// concurrent use; use Streams to derive one Source per worker.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded from seed via splitmix64, per the xoshiro
// authors' recommendation. The state is guaranteed nonzero.
func New(seed uint64) *Source {
	src := &Source{}
	src.Reseed(seed)
	return src
}

// Reseed re-initializes the source in place, leaving it in exactly the
// state New(seed) produces. It lets hot loops keep a Source value on the
// stack (or embedded in per-worker scratch) and re-derive a stream per
// iteration without allocating.
//
//nullgraph:hotpath
func (r *Source) Reseed(seed uint64) {
	sm := SplitMix64{state: seed}
	r.s0, r.s1, r.s2, r.s3 = sm.Next(), sm.Next(), sm.Next(), sm.Next()
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15 // all-zero state is the one forbidden state
	}
}

// Streams derives n independent sources from seed. Stream i depends only
// on (seed, i), so a worker's stream is stable across runs regardless of
// scheduling.
func Streams(seed uint64, n int) []*Source {
	streams := make([]*Source, n)
	for i := range streams {
		streams[i] = New(Mix64(seed) ^ Mix64(uint64(i)+0x632be59bd9b4e019))
	}
	return streams
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
//
//nullgraph:hotpath
func (r *Source) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
//
//nullgraph:hotpath
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float64Open returns a uniform float64 in (0, 1); it never returns 0,
// which makes it safe as the argument of log() in inversion sampling.
//
// The rejection loop looks dead but is not: the low end is safe
// (u>>11 == 0 gives 2^-54), but when u>>11 == 2^53-1 the sum
// float64(2^53-1)+0.5 lands exactly halfway between 2^53-1 and 2^53 and
// round-to-nearest-even picks 2^53, so f == 1.0 with probability 2^-53.
// Any change here must keep the retry, or bit-reproducibility of every
// inversion-sampled stream breaks one draw in 9e15.
//
//nullgraph:hotpath
func (r *Source) Float64Open() float64 {
	for {
		f := (float64(r.Uint64()>>11) + 0.5) * (1.0 / (1 << 53))
		if f < 1 {
			return f
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method: one multiply in the common
// case, no division.
//
//nullgraph:hotpath
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
//
//nullgraph:hotpath
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Lemire (2019): multiply a 64-bit variate by n, take the high word;
	// reject the small biased region of the low word.
	hi, lo := mul64(r.Uint64(), n)
	if lo < n {
		threshold := (-n) % n
		for lo < threshold {
			hi, lo = mul64(r.Uint64(), n)
		}
	}
	return hi
}

// mul64 returns the 128-bit product of a and b as (hi, lo). bits.Mul64
// is a compiler intrinsic (one MULQ on amd64); the previous hand-rolled
// 32×32 decomposition cost ~12 ALU ops per bounded draw and blew the
// inlining budget of every caller. The product is identical bit-for-bit.
//
//nullgraph:hotpath
func mul64(a, b uint64) (hi, lo uint64) {
	return bits.Mul64(a, b)
}

// Bool returns a fair coin flip.
//
//nullgraph:hotpath
func (r *Source) Bool() bool { return r.Uint64()&1 == 1 }

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials — the "skip length" l of edge-skipping, distributed
// Geom(p) on {0, 1, 2, ...}. For p >= 1 it returns 0. It panics if
// p <= 0: a zero success probability has no finite skip.
//
// Uses inversion: floor(log(U)/log(1-p)) with U in (0,1).
//
// Edge cases, pinned by tests in geometric_test.go:
//   - p = 1 (and anything above): always 0, no variate is consumed.
//   - p → 0: log1p(-p) → -0 ⁻ and the ratio grows without bound; once it
//     exceeds MaxInt64/2 (including the +Inf produced when log1p(-p)
//     underflows to -0 for subnormal p) the result clamps to MaxInt64/2.
//     The clamp keeps `begin + skip` arithmetic overflow-free for any
//     int64 begin, at the cost of truncating a tail that is unreachable
//     in practice: for p = 1e-12 the clamp triggers with probability
//     under exp(-4.6e6).
//   - The ratio can round to a small negative value when U is close
//     to 1; negative results clamp to 0.
//
//nullgraph:hotpath
func (r *Source) Geometric(p float64) int64 {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("rng: Geometric called with p <= 0")
	}
	l := math.Floor(math.Log(r.Float64Open()) / math.Log1p(-p))
	if l < 0 {
		// Floating-point edge: log ratio can round to a tiny negative.
		return 0
	}
	if l > math.MaxInt64/2 {
		return math.MaxInt64 / 2
	}
	return int64(l)
}

// Perm fills out with a uniformly random permutation of [0, len(out))
// via Fisher–Yates.
func (r *Source) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// Shuffle performs an in-place Fisher–Yates shuffle of n elements using
// the provided swap function.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
