package rng

import "math"

// BlockLen is the number of uint64 variates a Block pre-generates per
// refill. 64 draws (512 B) is small enough to live in per-worker stack
// frames or scratch cells yet long enough that the xoshiro state stays
// in registers for the whole refill loop.
const BlockLen = 64

// Block is a Source that generates variates in batches of BlockLen
// instead of one call per draw. It produces the *exact same* uint64
// sequence as calling Source.Uint64 repeatedly after the same Reseed —
// consumers can switch between Source and Block without perturbing any
// seeded stream, which is what keeps the repo-wide bit-reproducibility
// contract (instrumented-vs-plain, goldens, naive-reference tests)
// intact.
//
// The win is mechanical: a per-call Source.Uint64 through a pointer
// forces the four state words through memory on every draw, while
// refill keeps them in registers for BlockLen rounds and touches memory
// once. Like Source, a Block is NOT safe for concurrent use; derive one
// per worker.
//
// The zero value is not seeded; call Reseed before use.
type Block struct {
	src Source
	i   int
	buf [BlockLen]uint64
}

// Reseed re-initializes the block in place to the state New(seed)
// produces and discards any buffered variates, so the next draw is the
// first draw of stream `seed`.
//
//nullgraph:hotpath
func (b *Block) Reseed(seed uint64) {
	b.src.Reseed(seed)
	b.i = BlockLen
}

// refill regenerates the buffer. Kept separate from Uint64 so the
// common path (buffered draw) stays small enough to inline.
//
//nullgraph:hotpath
func (b *Block) refill() {
	s0, s1, s2, s3 := b.src.s0, b.src.s1, b.src.s2, b.src.s3
	for i := range b.buf {
		b.buf[i] = rotl(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = rotl(s3, 45)
	}
	b.src.s0, b.src.s1, b.src.s2, b.src.s3 = s0, s1, s2, s3
	b.i = 0
}

// Uint64 returns the next 64 uniformly random bits of the stream.
//
//nullgraph:hotpath
func (b *Block) Uint64() uint64 {
	if b.i == BlockLen {
		b.refill()
	}
	u := b.buf[b.i&(BlockLen-1)] // mask elides the bounds check; i < BlockLen here
	b.i++
	return u
}

// Bool returns a fair coin flip, consuming one variate like Source.Bool.
//
//nullgraph:hotpath
func (b *Block) Bool() bool { return b.Uint64()&1 == 1 }

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
//
//nullgraph:hotpath
func (b *Block) Float64() float64 {
	return float64(b.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float64Open returns a uniform float64 in (0, 1). The retry is live —
// see Source.Float64Open for why f == 1.0 occurs with probability 2^-53
// — and must be kept for bit-identity with the Source form.
//
//nullgraph:hotpath
func (b *Block) Float64Open() float64 {
	for {
		f := (float64(b.Uint64()>>11) + 0.5) * (1.0 / (1 << 53))
		if f < 1 {
			return f
		}
	}
}

// Uint64n returns a uniform uint64 in [0, n) for n > 0 via Lemire
// rejection, consuming variates in the exact order Source.Uint64n does.
// The rejection tail is split into uint64nRetry so this fast path —
// one multiply plus an almost-never-taken compare — inlines into
// per-index hot loops. For n == 0 the result is unspecified (0); unlike
// Source.Uint64n it does not spend a branch on the panic.
//
//nullgraph:hotpath
func (b *Block) Uint64n(n uint64) uint64 {
	hi, lo := mul64(b.Uint64(), n)
	if lo < n {
		return b.uint64nRetry(lo, hi, n)
	}
	return hi
}

//nullgraph:hotpath
func (b *Block) uint64nRetry(lo, hi, n uint64) uint64 {
	threshold := (-n) % n
	for lo < threshold {
		hi, lo = mul64(b.Uint64(), n)
	}
	return hi
}

// GeometricSkip is a Geom(p) sampler with the log term of the inversion
// formula hoisted out: Source.Geometric recomputes math.Log1p(-p) on
// every draw even though p is loop-invariant in edge-skipping, and that
// transcendental is roughly half the cost of a skip draw. A GeometricSkip
// is immutable and safe to copy or share.
//
// Next performs the exact floating-point operations Source.Geometric
// performs — same log, same division (not a reciprocal multiply, whose
// rounding can differ by 1 ulp), same clamps — so for the same consumed
// variate the two forms return identical values. A paired-draw test pins
// this over 1e6 draws.
type GeometricSkip struct {
	logq float64 // log(1-p) < 0; -Inf when p >= 1
}

// NewGeometricSkip returns a sampler for Geom(p). It panics if p <= 0,
// matching Source.Geometric. For p >= 1 every draw returns 0.
func NewGeometricSkip(p float64) GeometricSkip {
	if p <= 0 {
		panic("rng: NewGeometricSkip called with p <= 0")
	}
	if p >= 1 {
		return GeometricSkip{logq: math.Inf(-1)}
	}
	return GeometricSkip{logq: math.Log1p(-p)}
}

// Next draws one skip length from r. Aside from the astronomically rare
// Float64Open retry, the path is branch-free: the two clamps compile to
// conditional moves. For p >= 1, log(U)/-Inf is +0 and Next returns 0
// while still consuming one variate; callers that need Geometric's
// draw-free p >= 1 short-circuit must branch themselves (edgeskip's
// chunk loop does not: it never runs with p = 1).
//
// Next draws from an unbatched Source deliberately: each draw already
// pays for a log(), so batching the underlying uint64s saves nothing
// and the Block buffer round-trip showed up as a measurable net loss in
// edgeskip profiles. Use NextBlock only when the surrounding loop
// already holds a Block for other draws.
//
//nullgraph:hotpath
func (g GeometricSkip) Next(r *Source) int64 {
	l := math.Floor(math.Log(r.Float64Open()) / g.logq)
	if l < 0 {
		return 0
	}
	if l > math.MaxInt64/2 {
		return math.MaxInt64 / 2
	}
	return int64(l)
}

// NextBlock is Next drawing from a batched Block, in lockstep with the
// Source form (same consumed variate, same result).
//
//nullgraph:hotpath
func (g GeometricSkip) NextBlock(b *Block) int64 {
	l := math.Floor(math.Log(b.Float64Open()) / g.logq)
	if l < 0 {
		return 0
	}
	if l > math.MaxInt64/2 {
		return math.MaxInt64 / 2
	}
	return int64(l)
}
