package rng

import "testing"

// TestBlockMatchesSourceSequence is the contract that makes Block a
// drop-in for Source in hot loops: for the same seed, the batched and
// unbatched generators must emit the identical uint64 stream. The range
// deliberately crosses several refill boundaries and a mid-buffer
// Reseed.
func TestBlockMatchesSourceSequence(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef, ^uint64(0)} {
		src := New(seed)
		var blk Block
		blk.Reseed(seed)
		for i := 0; i < 5*BlockLen+7; i++ {
			want, got := src.Uint64(), blk.Uint64()
			if want != got {
				t.Fatalf("seed %#x draw %d: Source=%#x Block=%#x", seed, i, want, got)
			}
		}
		// Reseeding mid-buffer must discard buffered draws.
		src.Reseed(seed ^ 0x1234)
		blk.Reseed(seed ^ 0x1234)
		for i := 0; i < BlockLen+3; i++ {
			want, got := src.Uint64(), blk.Uint64()
			if want != got {
				t.Fatalf("seed %#x post-reseed draw %d: Source=%#x Block=%#x", seed, i, want, got)
			}
		}
	}
}

// TestBlockDerivedDrawsMatchSource pins the derived draws (Bool,
// Float64, Float64Open, Uint64n) to their Source counterparts —
// including variate-consumption order, so a mixed call pattern stays in
// lockstep.
func TestBlockDerivedDrawsMatchSource(t *testing.T) {
	src := New(99)
	var blk Block
	blk.Reseed(99)
	bounds := []uint64{1, 2, 3, 7, 1 << 20, 1<<64 - 1}
	for i := 0; i < 4*BlockLen; i++ {
		if want, got := src.Bool(), blk.Bool(); want != got {
			t.Fatalf("draw %d: Bool mismatch", i)
		}
		if want, got := src.Float64(), blk.Float64(); want != got {
			t.Fatalf("draw %d: Float64 mismatch: %v vs %v", i, want, got)
		}
		if want, got := src.Float64Open(), blk.Float64Open(); want != got {
			t.Fatalf("draw %d: Float64Open mismatch: %v vs %v", i, want, got)
		}
		n := bounds[i%len(bounds)]
		if want, got := src.Uint64n(n), blk.Uint64n(n); want != got {
			t.Fatalf("draw %d: Uint64n(%d) mismatch: %d vs %d", i, n, want, got)
		}
	}
}

// TestBlockUint64nBounds exercises the Lemire rejection tail with small
// bounds where the biased region is comparatively large.
func TestBlockUint64nBounds(t *testing.T) {
	var blk Block
	blk.Reseed(7)
	for _, n := range []uint64{1, 2, 3, 5, 6, 10} {
		for i := 0; i < 2000; i++ {
			if v := blk.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestFloat64OpenStrictlyInside(t *testing.T) {
	var blk Block
	blk.Reseed(3)
	for i := 0; i < 1_000_000; i++ {
		f := blk.Float64Open()
		if f <= 0 || f >= 1 {
			t.Fatalf("Float64Open = %v outside (0,1)", f)
		}
	}
}

func BenchmarkSourceUint64(b *testing.B) {
	src := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += src.Uint64()
	}
	_ = sink
}

func BenchmarkBlockUint64(b *testing.B) {
	var blk Block
	blk.Reseed(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += blk.Uint64()
	}
	_ = sink
}

func BenchmarkSourceBool(b *testing.B) {
	src := New(1)
	n := 0
	for i := 0; i < b.N; i++ {
		if src.Bool() {
			n++
		}
	}
	_ = n
}

func BenchmarkBlockBool(b *testing.B) {
	var blk Block
	blk.Reseed(1)
	n := 0
	for i := 0; i < b.N; i++ {
		if blk.Bool() {
			n++
		}
	}
	_ = n
}

func BenchmarkSourceUint64n(b *testing.B) {
	src := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += src.Uint64n(uint64(i) | 1)
	}
	_ = sink
}

func BenchmarkBlockUint64n(b *testing.B) {
	var blk Block
	blk.Reseed(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += blk.Uint64n(uint64(i) | 1)
	}
	_ = sink
}
