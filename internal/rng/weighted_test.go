package rng

import (
	"math"
	"testing"
)

func checkEmpirical(t *testing.T, name string, s WeightedSampler, weights []float64, draws int) {
	t.Helper()
	r := New(1357)
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		idx := s.Sample(r)
		if idx < 0 || idx >= len(weights) {
			t.Fatalf("%s: index %d out of range", name, idx)
		}
		counts[idx]++
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		want := float64(draws) * w / total
		got := float64(counts[i])
		// 5-sigma binomial tolerance plus slack for tiny expectations.
		tol := 5*math.Sqrt(want*(1-w/total)) + 3
		if math.Abs(got-want) > tol {
			t.Errorf("%s: item %d drawn %v times, want ~%v (tol %v)", name, i, got, want, tol)
		}
		if w == 0 && counts[i] > 0 {
			t.Errorf("%s: zero-weight item %d drawn %d times", name, i, counts[i])
		}
	}
}

func TestCDFSamplerDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	checkEmpirical(t, "cdf", NewCDFSampler(weights), weights, 100000)
}

func TestAliasSamplerDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	checkEmpirical(t, "alias", NewAliasSampler(weights), weights, 100000)
}

func TestSamplersSkewedDistribution(t *testing.T) {
	// Power-law-ish weights, like a degree sequence.
	weights := make([]float64, 50)
	for i := range weights {
		weights[i] = 1.0 / float64(i+1) / float64(i+1)
	}
	checkEmpirical(t, "cdf-skew", NewCDFSampler(weights), weights, 200000)
	checkEmpirical(t, "alias-skew", NewAliasSampler(weights), weights, 200000)
}

func TestSamplersZeroWeights(t *testing.T) {
	weights := []float64{0, 3, 0, 1, 0}
	checkEmpirical(t, "cdf-zero", NewCDFSampler(weights), weights, 50000)
	checkEmpirical(t, "alias-zero", NewAliasSampler(weights), weights, 50000)
}

func TestSamplerSingleItem(t *testing.T) {
	r := New(2)
	for _, s := range []WeightedSampler{NewCDFSampler([]float64{7}), NewAliasSampler([]float64{7})} {
		for i := 0; i < 100; i++ {
			if got := s.Sample(r); got != 0 {
				t.Fatalf("single-item sampler returned %d", got)
			}
		}
		if s.Len() != 1 {
			t.Errorf("Len = %d, want 1", s.Len())
		}
	}
}

func TestSamplerPanicsOnAllZero(t *testing.T) {
	for name, build := range map[string]func(){
		"cdf":   func() { NewCDFSampler([]float64{0, 0}) },
		"alias": func() { NewAliasSampler([]float64{0, 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: all-zero weights did not panic", name)
				}
			}()
			build()
		}()
	}
}

func TestSamplerPanicsOnNegative(t *testing.T) {
	for name, build := range map[string]func(){
		"cdf":   func() { NewCDFSampler([]float64{1, -1}) },
		"alias": func() { NewAliasSampler([]float64{1, -1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: negative weight did not panic", name)
				}
			}()
			build()
		}()
	}
}

func TestSamplersAgreeOnUniform(t *testing.T) {
	// With equal weights both must be uniform.
	weights := []float64{2, 2, 2, 2, 2, 2, 2, 2}
	checkEmpirical(t, "cdf-uniform", NewCDFSampler(weights), weights, 80000)
	checkEmpirical(t, "alias-uniform", NewAliasSampler(weights), weights, 80000)
}

func BenchmarkCDFSampler(b *testing.B) {
	weights := make([]float64, 1<<16)
	for i := range weights {
		weights[i] = float64(i%97 + 1)
	}
	s := NewCDFSampler(weights)
	r := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(r)
	}
}

func BenchmarkAliasSampler(b *testing.B) {
	weights := make([]float64, 1<<16)
	for i := range weights {
		weights[i] = float64(i%97 + 1)
	}
	s := NewAliasSampler(weights)
	r := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(r)
	}
}
