package rng

import "sort"

// WeightedSampler draws indices i in [0, n) with probability proportional
// to a fixed weight w_i. Two implementations are provided:
//
//   - CDFSampler: binary search over prefix sums, O(log n) per draw.
//     This is the structure the paper attributes to the O(m) Chung-Lu
//     baseline ("sampling ... on a weighted list, requiring O(log(n))
//     time for a binary search for each sampled vertex").
//   - AliasSampler: Walker/Vose alias method, O(1) per draw after O(n)
//     setup. Used as an ablation to quantify how much of the O(m)
//     model's slowdown is the per-draw binary search.
//
// Both are read-only after construction and therefore safe for
// concurrent draws as long as each goroutine uses its own *Source.
type WeightedSampler interface {
	// Sample draws one index using the provided source.
	Sample(r *Source) int
	// Len returns the number of weighted items.
	Len() int
}

// CDFSampler samples by inverting the cumulative distribution with
// binary search.
type CDFSampler struct {
	cum []float64 // cum[i] = sum of weights[0..i]
}

// NewCDFSampler builds a sampler over the given non-negative weights.
// It panics if no weight is positive.
func NewCDFSampler(weights []float64) *CDFSampler {
	cum := make([]float64, len(weights))
	var total float64
	for i, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		panic("rng: CDFSampler requires a positive total weight")
	}
	return &CDFSampler{cum: cum}
}

// Len returns the number of weighted items.
func (s *CDFSampler) Len() int { return len(s.cum) }

// Sample draws one index in O(log n).
func (s *CDFSampler) Sample(r *Source) int {
	total := s.cum[len(s.cum)-1]
	x := r.Float64() * total
	i := sort.SearchFloat64s(s.cum, x)
	// SearchFloat64s returns the first index with cum[i] >= x; ties on
	// exact boundary values land on the earlier item, which has measure
	// zero and is harmless. Guard the i == len case for x == total.
	if i >= len(s.cum) {
		i = len(s.cum) - 1
	}
	// Skip zero-weight items that share a boundary with their predecessor.
	for i < len(s.cum)-1 && (i == 0 && s.cum[i] == 0 || i > 0 && s.cum[i] == s.cum[i-1]) {
		i++
	}
	return i
}

// AliasSampler samples in O(1) using the Vose alias method.
type AliasSampler struct {
	prob  []float64
	alias []int32
}

// NewAliasSampler builds an alias table over the given non-negative
// weights. It panics if no weight is positive.
func NewAliasSampler(weights []float64) *AliasSampler {
	n := len(weights)
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: AliasSampler requires a positive total weight")
	}
	prob := make([]float64, n)
	alias := make([]int32, n)
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		prob[s] = scaled[s]
		alias[s] = l
		scaled[l] = (scaled[l] + scaled[s]) - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, l := range large {
		prob[l] = 1
		alias[l] = l
	}
	for _, s := range small {
		// Only reachable through rounding; treat as certain.
		prob[s] = 1
		alias[s] = s
	}
	return &AliasSampler{prob: prob, alias: alias}
}

// Len returns the number of weighted items.
func (s *AliasSampler) Len() int { return len(s.prob) }

// Sample draws one index in O(1).
func (s *AliasSampler) Sample(r *Source) int {
	i := r.Intn(len(s.prob))
	if r.Float64() < s.prob[i] {
		return i
	}
	return int(s.alias[i])
}
