package rng

import (
	"math"
	"testing"
)

// TestGeometricPOneAlwaysZero: p = 1 (success certain) means zero
// failures before the first success, and no variate is consumed.
func TestGeometricPOneAlwaysZero(t *testing.T) {
	src := New(11)
	ref := New(11)
	for i := 0; i < 1000; i++ {
		if l := src.Geometric(1); l != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", l)
		}
		if l := src.Geometric(1.5); l != 0 {
			t.Fatalf("Geometric(1.5) = %d, want 0", l)
		}
	}
	// Variate-free: the stream is untouched.
	if src.Uint64() != ref.Uint64() {
		t.Fatal("Geometric(p>=1) consumed a variate")
	}
}

// TestGeometricTinyPClamps: as p → 0 the skip length diverges; once the
// inversion ratio exceeds MaxInt64/2 — including the +Inf produced when
// log1p(-p) underflows to -0 for subnormal p — the result must clamp
// rather than overflow int64 conversion.
func TestGeometricTinyPClamps(t *testing.T) {
	src := New(5)
	// Subnormal p: log1p(-p) underflows to -0, ratio is +Inf.
	for i := 0; i < 100; i++ {
		l := src.Geometric(5e-324)
		if l != math.MaxInt64/2 {
			t.Fatalf("Geometric(5e-324) = %d, want clamp %d", l, int64(math.MaxInt64/2))
		}
		if l < 0 || l > math.MaxInt64/2 {
			t.Fatalf("Geometric(5e-324) = %d escaped clamp range", l)
		}
	}
	// Small-but-normal p: huge but finite ratios must stay in range and
	// never go negative, whatever the variate.
	for _, p := range []float64{1e-300, 1e-18, 1e-9} {
		for i := 0; i < 10_000; i++ {
			l := src.Geometric(p)
			if l < 0 || l > math.MaxInt64/2 {
				t.Fatalf("Geometric(%g) = %d out of [0, MaxInt64/2]", p, l)
			}
		}
	}
}

func TestGeometricPanicsOnNonPositive(t *testing.T) {
	for _, p := range []float64{0, -0.5, math.Inf(-1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Geometric(%g) did not panic", p)
				}
			}()
			New(1).Geometric(p)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("NewGeometricSkip(0) did not panic")
			}
		}()
		NewGeometricSkip(0)
	}()
}

// TestGeometricSkipPairedIdentity is the regression gate for the
// hoisted edgeskip draw: across 1e6 paired draws at several p, the
// branchless GeometricSkip form must return the exact value
// Source.Geometric returns for the same consumed variate — not merely
// the same distribution. Both the Block and Source entry points are
// checked.
func TestGeometricSkipPairedIdentity(t *testing.T) {
	const draws = 1_000_000
	for _, p := range []float64{0.9, 0.5, 0.1, 1e-3, 1e-6} {
		g := NewGeometricSkip(p)
		ref := New(2026)
		viaSrc := New(2026)
		var viaBlk Block
		viaBlk.Reseed(2026)
		for i := 0; i < draws; i++ {
			want := ref.Geometric(p)
			if got := g.Next(viaSrc); got != want {
				t.Fatalf("p=%g draw %d: Next=%d Geometric=%d", p, i, got, want)
			}
			if got := g.NextBlock(&viaBlk); got != want {
				t.Fatalf("p=%g draw %d: NextBlock=%d Geometric=%d", p, i, got, want)
			}
		}
	}
}

// TestGeometricSkipPGEOne: for p >= 1 the hoisted form returns 0 via
// log(U)/-Inf = -0 — it consumes a variate where Source.Geometric does
// not, which is fine for edgeskip (p = 1 never reaches the chunk loop)
// but worth pinning so the difference stays documented.
func TestGeometricSkipPGEOne(t *testing.T) {
	g := NewGeometricSkip(1)
	src := New(8)
	for i := 0; i < 1000; i++ {
		if l := g.Next(src); l != 0 {
			t.Fatalf("GeometricSkip(p=1) draw = %d, want 0", l)
		}
	}
}

func BenchmarkGeometricPerDraw(b *testing.B) {
	src := New(1)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += src.Geometric(0.3)
	}
	_ = sink
}

func BenchmarkGeometricSkipHoisted(b *testing.B) {
	g := NewGeometricSkip(0.3)
	src := New(1)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += g.Next(src)
	}
	_ = sink
}
