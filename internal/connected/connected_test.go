package connected

import (
	"strings"
	"testing"

	"nullgraph/internal/degseq"
	"nullgraph/internal/graph"
	"nullgraph/internal/rng"
)

func mustDist(t *testing.T, degrees []int64) *degseq.Distribution {
	t.Helper()
	d := degseq.FromDegrees(degrees)
	if err := d.Validate(); err != nil {
		t.Fatalf("FromDegrees(%v): %v", degrees, err)
	}
	return d
}

func assertConnectedSimple(t *testing.T, el *graph.EdgeList, degrees []int64) {
	t.Helper()
	if s := el.CheckSimplicity(); !s.IsSimple() {
		t.Fatalf("graph not simple: %+v", s)
	}
	if _, count := graph.ConnectedComponents(el, 1); count != 1 {
		t.Fatalf("graph has %d components, want 1", count)
	}
	got := el.Degrees(1)
	if len(got) != len(degrees) {
		t.Fatalf("degree count %d, want %d", len(got), len(degrees))
	}
	want := append([]int64(nil), degrees...)
	sortInt64(want)
	gotSorted := append([]int64(nil), got...)
	sortInt64(gotSorted)
	for i := range want {
		if gotSorted[i] != want[i] {
			t.Fatalf("sorted degrees %v, want %v", gotSorted, want)
		}
	}
}

func sortInt64(a []int64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func TestRealizableRejections(t *testing.T) {
	cases := []struct {
		name    string
		degrees []int64
		errSub  string
	}{
		{"isolated-vertices", []int64{0, 0, 0}, "isolated"},
		{"isolated-with-edges", []int64{0, 1, 1}, "isolated"},
		{"sum-odd", []int64{1, 1, 1}, "odd"},
		{"non-graphical", []int64{3, 1}, "graphical"},
		{"forest-split", []int64{1, 1, 1, 1}, "cannot span"},
		{"two-triangles-worth", []int64{1, 1, 1, 1, 1, 1}, "cannot span"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Realizable(mustDist(t, tc.degrees))
			if err == nil {
				t.Fatalf("Realizable(%v) = nil, want error containing %q", tc.degrees, tc.errSub)
			}
			if !strings.Contains(err.Error(), tc.errSub) {
				t.Fatalf("Realizable(%v) error %q does not contain %q", tc.degrees, err, tc.errSub)
			}
			if _, err := Realize(mustDist(t, tc.degrees)); err == nil {
				t.Fatalf("Realize(%v) succeeded on an unrealizable sequence", tc.degrees)
			}
		})
	}
}

func TestRealizableTrivial(t *testing.T) {
	if err := Realizable(mustDist(t, []int64{0})); err != nil {
		t.Fatalf("single isolated vertex should be trivially connected: %v", err)
	}
}

func TestRealizeConnected(t *testing.T) {
	cases := [][]int64{
		{2, 2, 2, 2, 2, 2},    // Havel–Hakimi yields two triangles; Connect must repair
		{3, 2, 2, 2, 1},       // ISSUE.md's unicyclic example
		{1, 2, 2, 2, 1},       // path P5
		{4, 1, 1, 1, 1},       // star
		{3, 3, 3, 3, 3, 3, 3, 3}, // cubic on 8 vertices
		{2, 2, 2, 2, 2, 2, 2, 2}, // all-2s n=8: HH splits into two C4s
	}
	for _, degrees := range cases {
		el, err := Realize(mustDist(t, degrees))
		if err != nil {
			t.Fatalf("Realize(%v): %v", degrees, err)
		}
		assertConnectedSimple(t, el, degrees)
	}
}

func TestConnectRepairsTwoTriangles(t *testing.T) {
	el := graph.NewEdgeList([]graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 3, V: 5},
	}, 6)
	merges, err := Connect(el)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if merges != 1 {
		t.Fatalf("merges = %d, want 1", merges)
	}
	assertConnectedSimple(t, el, []int64{2, 2, 2, 2, 2, 2})
}

func TestConnectNoCycleEdgeErrors(t *testing.T) {
	// Two disjoint edges: a forest with two components has no spare
	// cycle edge, so no connected realization exists.
	el := graph.NewEdgeList([]graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}, 4)
	if _, err := Connect(el); err == nil {
		t.Fatal("Connect on a 2-component forest should error")
	}
}

func TestConnectIsolatedVertexErrors(t *testing.T) {
	el := graph.NewEdgeList([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}}, 4)
	if _, err := Connect(el); err == nil {
		t.Fatal("Connect with an isolated vertex should error")
	}
}

func TestBindRejectsDisconnected(t *testing.T) {
	el := graph.NewEdgeList([]graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 3, V: 5},
	}, 6)
	c := NewChecker()
	if err := c.Bind(el); err == nil {
		t.Fatal("Bind on a disconnected graph should error")
	}
}

func TestBindRejectsLoops(t *testing.T) {
	el := graph.NewEdgeList([]graph.Edge{{U: 0, V: 0}, {U: 0, V: 1}}, 2)
	c := NewChecker()
	if err := c.Bind(el); err == nil {
		t.Fatal("Bind on a loopy graph should error")
	}
}

func TestCheckerRejectsDisconnectingSwap(t *testing.T) {
	// C6; swapping edges (0,1) and (3,4) into (0,4),(1,3) splits it
	// into two triangles.
	el := cycle(6)
	c := NewChecker()
	if err := c.Bind(el); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	e, f := graph.Edge{U: 0, V: 1}, graph.Edge{U: 3, V: 4}
	g, h := graph.Edge{U: 0, V: 4}, graph.Edge{U: 1, V: 3}
	if c.SwapKeepsConnected(e, f, g, h) {
		t.Fatal("disconnecting swap accepted")
	}
	st := c.StatsSnapshot()
	if st.RejectedDisconnecting != 1 {
		t.Fatalf("RejectedDisconnecting = %d, want 1", st.RejectedDisconnecting)
	}
	// The rollback must leave the checker's adjacency intact: the same
	// rejected swap proposed again must produce the same verdict, and
	// the graph must still verify as connected.
	if c.SwapKeepsConnected(e, f, g, h) {
		t.Fatal("disconnecting swap accepted on retry")
	}
	if !c.Connected() {
		t.Fatal("checker adjacency corrupted by rollback")
	}
}

func cycle(n int) *graph.EdgeList {
	edges := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = graph.Edge{U: int32(i), V: int32((i + 1) % n)}
	}
	return graph.NewEdgeList(edges, n)
}

// validProposal reports whether removing edges at positions i, j and
// adding g, h is a legal simple-cell swap (the engine-side filter).
func validProposal(el *graph.EdgeList, i, j int, g, h graph.Edge) bool {
	if i == j || g.IsLoop() || h.IsLoop() {
		return false
	}
	gk, hk := g.Key(), h.Key()
	if gk == hk {
		return false
	}
	ek, fk := el.Edges[i].Key(), el.Edges[j].Key()
	if (gk == ek && hk == fk) || (gk == fk && hk == ek) {
		return false
	}
	for p, e := range el.Edges {
		if p == i || p == j {
			continue
		}
		k := e.Key()
		if k == gk || k == hk {
			return false
		}
	}
	return true
}

// TestCheckerMatchesGroundTruth exhaustively proposes every legal swap
// on several small connected graphs and checks the verdict against a
// from-scratch component count of the post-swap graph, at the default
// budget and at a tiny budget that forces the full-BFS fallback.
func TestCheckerMatchesGroundTruth(t *testing.T) {
	starts := []*graph.EdgeList{cycle(6), cycle(8)}
	if el, err := Realize(mustDist(t, []int64{3, 3, 3, 3, 3, 3, 3, 3})); err != nil {
		t.Fatal(err)
	} else {
		starts = append(starts, el)
	}
	if el, err := Realize(mustDist(t, []int64{3, 2, 2, 2, 1})); err != nil {
		t.Fatal(err)
	} else {
		starts = append(starts, el)
	}
	for _, bound := range []int{0, defaultBound} { // 0 clamps to 2: forces slow paths
		for _, start := range starts {
			c := NewChecker()
			c.SetBound(bound)
			m := len(start.Edges)
			for i := 0; i < m; i++ {
				for j := 0; j < m; j++ {
					for coin := 0; coin < 2; coin++ {
						el := start.Clone()
						e, f := el.Edges[i], el.Edges[j]
						var g, h graph.Edge
						if coin == 0 {
							g, h = graph.Edge{U: e.U, V: f.U}, graph.Edge{U: e.V, V: f.V}
						} else {
							g, h = graph.Edge{U: e.U, V: f.V}, graph.Edge{U: e.V, V: f.U}
						}
						if !validProposal(el, i, j, g, h) {
							continue
						}
						if err := c.Bind(el); err != nil {
							t.Fatalf("Bind: %v", err)
						}
						got := c.SwapKeepsConnected(e, f, g, h)
						el.Edges[i], el.Edges[j] = g, h
						_, count := graph.ConnectedComponents(el, 1)
						if want := count == 1; got != want {
							t.Fatalf("swap (%v,%v)->(%v,%v) at bound %d: checker says %v, ground truth %v",
								e, f, g, h, bound, got, want)
						}
						if got && !c.Connected() {
							t.Fatal("checker adjacency inconsistent after accepted swap")
						}
					}
				}
			}
			st := c.StatsSnapshot()
			if st.Proposals == 0 {
				t.Fatal("no proposals exercised")
			}
		}
	}
}

// TestCheckerRandomChain runs a long random swap chain on a cubic
// graph with the recheck forced every accepted swap, so the internal
// invariant panic would fire on any bookkeeping bug.
func TestCheckerRandomChain(t *testing.T) {
	degrees := []int64{3, 3, 3, 3, 3, 3, 3, 3, 3, 3}
	el, err := Realize(mustDist(t, degrees))
	if err != nil {
		t.Fatal(err)
	}
	c := NewChecker()
	c.SetRecheckEvery(1)
	if err := c.Bind(el); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	src := rng.New(42)
	m := uint64(len(el.Edges))
	accepted := 0
	for step := 0; step < 4000; step++ {
		i, j := int(src.Uint64n(m)), int(src.Uint64n(m))
		e, f := el.Edges[i], el.Edges[j]
		var g, h graph.Edge
		if src.Bool() {
			g, h = graph.Edge{U: e.U, V: f.U}, graph.Edge{U: e.V, V: f.V}
		} else {
			g, h = graph.Edge{U: e.U, V: f.V}, graph.Edge{U: e.V, V: f.U}
		}
		if !validProposal(el, i, j, g, h) {
			continue
		}
		if c.SwapKeepsConnected(e, f, g, h) {
			el.Edges[i], el.Edges[j] = g, h
			accepted++
		}
	}
	if accepted == 0 {
		t.Fatal("chain never accepted a swap")
	}
	assertConnectedSimple(t, el, degrees)
	st := c.StatsSnapshot()
	if st.FullRechecks != int64(accepted) {
		t.Fatalf("FullRechecks = %d, want %d (one per accepted swap)", st.FullRechecks, accepted)
	}
	if st.FastPathHits == 0 || st.BoundedChecks == 0 {
		t.Fatalf("expected both fast-path and bounded-path traffic, got %+v", st)
	}
}

// TestCheckerStatsPaths pins which counters each check tier bumps.
func TestCheckerStatsPaths(t *testing.T) {
	// Theta graph: C6 plus chord (0,3). The chord is a non-tree edge.
	el := cycle(6)
	el.Edges = append(el.Edges, graph.Edge{U: 0, V: 3})
	el = graph.NewEdgeList(el.Edges, 6)
	c := NewChecker()
	if err := c.Bind(el); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	// Swapping two tree edges of C6 stays connected thanks to the
	// chord: remove (1,2),(4,5), add (1,4),(2,5).
	e, f := graph.Edge{U: 1, V: 2}, graph.Edge{U: 4, V: 5}
	g, h := graph.Edge{U: 1, V: 4}, graph.Edge{U: 2, V: 5}
	if !c.SwapKeepsConnected(e, f, g, h) {
		t.Fatal("connectivity-preserving swap rejected")
	}
	st := c.StatsSnapshot()
	if st.FastPathHits != 0 || st.BoundedChecks == 0 || st.WitnessRebuilds != 1 {
		t.Fatalf("tree-touching accept took wrong path: %+v", st)
	}
}

func TestBindReuse(t *testing.T) {
	c := NewChecker()
	for rebind := 0; rebind < 3; rebind++ {
		el := cycle(6)
		if err := c.Bind(el); err != nil {
			t.Fatalf("Bind #%d: %v", rebind, err)
		}
		if !c.Connected() {
			t.Fatalf("Bind #%d: not connected", rebind)
		}
		if st := c.StatsSnapshot(); st.Proposals != 0 {
			t.Fatalf("Bind #%d did not reset stats: %+v", rebind, st)
		}
	}
	// Rebind to a larger graph must regrow buffers correctly.
	if err := c.Bind(cycle(40)); err != nil {
		t.Fatalf("Bind larger: %v", err)
	}
	if !c.Connected() {
		t.Fatal("larger rebind: not connected")
	}
}
