package connected

import (
	"encoding/binary"
	"math"
	"testing"

	"nullgraph/internal/degseq"
	"nullgraph/internal/graph"
)

// FuzzConnectedSeed feeds arbitrary degree sequences to the connected
// constructor: every input must either error (non-graphical, or no
// connected realization) or produce a connected simple graph with
// exactly the requested degrees. Degrees are parsed as 4-byte
// little-endian words so the fuzzer can reach large and hostile values
// (near-MaxInt32, sum-odd) without astronomically long inputs.
func FuzzConnectedSeed(f *testing.F) {
	f.Add([]byte{})                                     // empty
	f.Add(seedBytes(0, 0, 0))                           // all zeros
	f.Add(seedBytes(4, 1, 1, 1, 1))                     // star
	f.Add(seedBytes(2, 2, 2, 2, 2, 2))                  // two-triangles repair case
	f.Add(seedBytes(3, 2, 2, 2, 1))                     // unicyclic
	f.Add(seedBytes(1, 1, 1))                           // sum-odd
	f.Add(seedBytes(1, 1, 1, 1))                        // forest split
	f.Add(seedBytes(math.MaxInt32, 1))                  // near-MaxInt32 degree
	f.Add(seedBytes(math.MaxInt32, math.MaxInt32-1, 2)) // huge non-graphical
	f.Add(seedBytes(7, 7, 7, 7, 7, 7, 7, 7))            // dense regular
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxDegrees = 64
		nd := len(data) / 4
		if nd > maxDegrees {
			nd = maxDegrees
		}
		degrees := make([]int64, 0, nd)
		for i := 0; i < nd; i++ {
			degrees = append(degrees, int64(binary.LittleEndian.Uint32(data[4*i:])))
		}
		if len(degrees) == 0 {
			return // empty sequences fail Distribution.Validate
		}
		// Degrees >= n are non-graphical, so with n <= maxDegrees every
		// realizable input is small; hostile huge values exercise only
		// the rejection path.
		dist := degseq.FromDegrees(degrees)
		el, err := Realize(dist)
		if err != nil {
			return // rejection is a valid outcome; it must not panic
		}
		if s := el.CheckSimplicity(); !s.IsSimple() {
			t.Fatalf("Realize(%v) returned a non-simple graph: %+v", degrees, s)
		}
		if _, count := graph.ConnectedComponents(el, 1); count != 1 && len(degrees) > 1 {
			t.Fatalf("Realize(%v) returned %d components", degrees, count)
		}
		got := el.Degrees(1)
		counts := map[int64]int{}
		for _, d := range degrees {
			counts[d]++
		}
		for _, d := range got {
			counts[d]--
		}
		for d, c := range counts {
			if c != 0 {
				t.Fatalf("Realize(%v): degree %d off by %d", degrees, d, c)
			}
		}
	})
}

func seedBytes(degrees ...uint32) []byte {
	b := make([]byte, 4*len(degrees))
	for i, d := range degrees {
		binary.LittleEndian.PutUint32(b[4*i:], d)
	}
	return b
}
