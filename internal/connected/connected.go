// Package connected provides connected-graph sampling support for the
// simple cells: a seed constructor that realizes a degree sequence as a
// *connected* simple graph (seed.go), and a Checker that decides
// whether a proposed double-edge swap keeps the graph connected using
// Viger–Latapy-style heuristics (arXiv:cs/0502085).
//
// # Check hierarchy
//
// The Checker maintains a cached BFS spanning-tree witness of the
// current graph, stored as a parent array. A swap removes two edges and
// adds two (degree-preserving), so connectivity can only break when a
// removed edge is a witness tree edge:
//
//  1. Fast path: neither removed edge is a tree edge — the witness
//     still spans the new graph, accept with two array comparisons and
//     no traversal.
//  2. Bounded path: for each removed tree edge, run a bounded
//     bidirectional BFS between its endpoints in the post-swap graph.
//     The tree minus its removed edges splits the vertices into at
//     most three fragments, each internally connected by surviving
//     tree edges; reconnecting every removed tree edge's endpoint pair
//     re-links the fragments along the old tree topology, so "every
//     pair reconnects" implies the whole graph is connected. A search
//     that exhausts one side without meeting the other has fully
//     explored that side's component and proves disconnection.
//  3. Full fallback: a bounded search that hits its visit budget while
//     both frontiers are alive is inconclusive; fall back to one full
//     BFS from vertex 0.
//
// Accepting a swap that touched the tree rebuilds the witness (one
// BFS); a belt-and-braces full recheck runs every recheckEvery accepted
// swaps and panics on an invariant breach. DESIGN.md §16 tabulates the
// cost model.
//
// The Checker is not safe for concurrent use; the serial connected
// chain in internal/swap owns one per engine.
package connected

import (
	"fmt"

	"nullgraph/internal/graph"
)

const (
	// defaultBound is the total-visit budget of one bounded
	// bidirectional search before it falls back to a full BFS. Most
	// swap-local disconnections are small cycles split off the giant
	// component, so a small budget resolves the overwhelming majority
	// of tree-touching proposals without an O(n+m) traversal.
	defaultBound = 256
	// defaultRecheckEvery is the accepted-swap period of the
	// belt-and-braces full connectivity recheck.
	defaultRecheckEvery = 1 << 14
)

// Stats counts connectivity-check outcomes; they feed the RunReport's
// connectivity section (obs.ConnectivityReport).
type Stats struct {
	// Proposals is the number of swaps submitted to the checker.
	Proposals int64
	// FastPathHits counts proposals accepted with no traversal at all
	// (neither removed edge was a witness tree edge).
	FastPathHits int64
	// BoundedChecks counts bounded bidirectional searches run;
	// BoundedConclusive counts those that resolved within budget.
	BoundedChecks     int64
	BoundedConclusive int64
	// FullChecks counts full-BFS fallbacks (inconclusive bounded
	// searches and explicit Connected() calls).
	FullChecks int64
	// WitnessRebuilds counts spanning-tree reconstructions after
	// accepted tree-touching swaps.
	WitnessRebuilds int64
	// RejectedDisconnecting counts proposals rejected because they
	// would have disconnected the graph.
	RejectedDisconnecting int64
	// FullRechecks counts periodic belt-and-braces full verifications.
	FullRechecks int64
}

// Checker answers "does this swap keep the graph connected?" against a
// live adjacency view it maintains itself. Bind it to a connected edge
// list, then feed every committed swap through SwapKeepsConnected; the
// checker applies accepted swaps to its adjacency and rolls rejected
// ones back, so it always mirrors the caller's edge list.
type Checker struct {
	n int

	// CSR-style adjacency with in-place deletion: vertex v's current
	// neighbors are nbr[off[v] : off[v]+int64(deg[v])], with capacity
	// off[v+1]-off[v] equal to v's (invariant) degree. Swaps preserve
	// every degree, so removals-before-insertions keep each slot range
	// in bounds and the structure allocation-free after Bind.
	off []int64
	nbr []int32
	deg []int32

	// parent is the BFS witness tree (parent[root] == -1). An edge
	// (u,v) is a tree edge iff parent[u] == v or parent[v] == u.
	parent []int32

	// BFS scratch: stamp holds per-vertex visit epochs (two fresh
	// epochs per bidirectional search, one per side), queues are
	// reused frontier storage.
	stamp  []uint64
	epoch  uint64
	queueA []int32
	queueB []int32

	// bound and recheckEvery are defaultBound/defaultRecheckEvery;
	// tests shrink them to force the slow paths.
	bound        int
	recheckEvery int64
	accepted     int64

	stats Stats
}

// NewChecker returns an unbound checker with default heuristics.
func NewChecker() *Checker {
	return &Checker{bound: defaultBound, recheckEvery: defaultRecheckEvery}
}

// Bind (re)builds the checker's adjacency and witness tree for el,
// reusing buffers when capacities allow, and resets the outcome
// counters. It errors when el is not a connected simple graph — the
// connected chain's hard precondition (see Connect for the repair).
func (c *Checker) Bind(el *graph.EdgeList) error {
	n := el.NumVertices
	c.n = n
	m := len(el.Edges)
	if cap(c.off) < n+1 {
		c.off = make([]int64, n+1)
	}
	c.off = c.off[:n+1]
	if cap(c.deg) < n {
		c.deg = make([]int32, n)
		c.parent = make([]int32, n)
		c.stamp = make([]uint64, n)
		c.epoch = 0
	}
	c.deg = c.deg[:n]
	c.parent = c.parent[:n]
	c.stamp = c.stamp[:n]
	clear(c.deg)
	for _, e := range el.Edges {
		if e.IsLoop() {
			return fmt.Errorf("connected: input has self-loop %v; the connected chain runs on simple graphs only", e)
		}
		c.deg[e.U]++
		c.deg[e.V]++
	}
	c.off[0] = 0
	for v := 0; v < n; v++ {
		c.off[v+1] = c.off[v] + int64(c.deg[v])
	}
	if cap(c.nbr) < 2*m {
		c.nbr = make([]int32, 2*m)
	}
	c.nbr = c.nbr[:2*m]
	clear(c.deg)
	for _, e := range el.Edges {
		c.addArc(e.U, e.V)
		c.addArc(e.V, e.U)
	}
	c.accepted = 0
	c.stats = Stats{}
	if reached := c.rebuildWitness(); reached < n {
		return fmt.Errorf("connected: input graph is disconnected (%d of %d vertices reachable from 0); repair it with connected.Connect first", reached, n)
	}
	return nil
}

// StatsSnapshot returns the outcome counters accumulated since Bind.
func (c *Checker) StatsSnapshot() Stats { return c.stats }

// SetBound overrides the bounded-search visit budget (tests use tiny
// budgets to force the full-BFS fallback). Values < 2 behave as 2.
func (c *Checker) SetBound(b int) {
	if b < 2 {
		b = 2
	}
	c.bound = b
}

// SetRecheckEvery overrides the periodic full-recheck interval; <= 0
// disables the recheck.
func (c *Checker) SetRecheckEvery(k int64) { c.recheckEvery = k }

// Connected runs one full BFS and reports global connectivity (empty
// graphs and n <= 1 are trivially connected).
func (c *Checker) Connected() bool {
	c.stats.FullChecks++
	return c.fullReach() == c.n
}

// witnessIntact reports the fast-path condition: neither removed edge
// is a witness tree edge, so the cached spanning tree survives the swap
// untouched and the graph stays connected with no traversal.
//
//nullgraph:hotpath
func (c *Checker) witnessIntact(e, f graph.Edge) bool {
	p := c.parent
	if p[e.U] == e.V || p[e.V] == e.U {
		return false
	}
	if p[f.U] == f.V || p[f.V] == f.U {
		return false
	}
	return true
}

// SwapKeepsConnected decides the proposed swap (remove e and f, add g
// and h) and, when it keeps the graph connected, applies it to the
// checker's adjacency. Preconditions (the swap engine's proposal
// filter guarantees them): e and f are current edges at distinct
// positions, {g, h} is an endpoint rewiring of {e, f}, and neither g
// nor h is a self-loop or a duplicate of an existing edge.
func (c *Checker) SwapKeepsConnected(e, f, g, h graph.Edge) bool {
	c.stats.Proposals++
	if c.witnessIntact(e, f) {
		c.stats.FastPathHits++
		c.apply(e, f, g, h)
		c.maybeRecheck()
		return true
	}
	// A removed edge is a tree edge: apply tentatively and verify.
	c.apply(e, f, g, h)
	if c.stillConnected(e, f) {
		c.stats.WitnessRebuilds++
		c.rebuildWitness()
		c.maybeRecheck()
		return true
	}
	c.apply(g, h, e, f) // roll back
	c.stats.RejectedDisconnecting++
	return false
}

// stillConnected verifies post-swap connectivity given that at least
// one removed edge was a witness tree edge. The surviving tree edges
// keep each tree fragment internally connected, so reconnecting every
// removed tree edge's endpoint pair re-links the fragments along the
// old tree topology (see the package doc); any pair that fails to
// reconnect is a proven disconnection.
func (c *Checker) stillConnected(e, f graph.Edge) bool {
	for _, t := range [2]graph.Edge{e, f} {
		if c.parent[t.U] != t.V && c.parent[t.V] != t.U {
			continue // not a tree edge: no fragment boundary here
		}
		switch c.boundedReconnect(t.U, t.V) {
		case -1:
			return false
		case 0:
			// Inconclusive: one full BFS settles everything at once.
			c.stats.FullChecks++
			return c.fullReach() == c.n
		}
	}
	return true
}

// boundedReconnect runs a bounded bidirectional BFS between u and v in
// the current adjacency: +1 means connected (frontiers met), -1 means
// disconnected (one side's component was exhausted without meeting),
// 0 means the visit budget ran out while both frontiers were alive.
func (c *Checker) boundedReconnect(u, v int32) int {
	c.stats.BoundedChecks++
	c.epoch += 2
	ea, eb := c.epoch-1, c.epoch // side stamps; meeting = seeing the other's
	c.queueA = append(c.queueA[:0], u)
	c.queueB = append(c.queueB[:0], v)
	c.stamp[u] = ea
	c.stamp[v] = eb
	headA, headB := 0, 0
	visited := 2
	for headA < len(c.queueA) && headB < len(c.queueB) {
		if visited > c.bound {
			return 0
		}
		// Expand one vertex from the smaller live frontier; connectivity
		// needs no level discipline, only exhaustive exploration.
		if len(c.queueA)-headA <= len(c.queueB)-headB {
			x := c.queueA[headA]
			headA++
			for _, y := range c.nbr[c.off[x] : c.off[x]+int64(c.deg[x])] {
				if c.stamp[y] == eb {
					c.stats.BoundedConclusive++
					return 1
				}
				if c.stamp[y] != ea {
					c.stamp[y] = ea
					c.queueA = append(c.queueA, y)
					visited++
				}
			}
		} else {
			x := c.queueB[headB]
			headB++
			for _, y := range c.nbr[c.off[x] : c.off[x]+int64(c.deg[x])] {
				if c.stamp[y] == ea {
					c.stats.BoundedConclusive++
					return 1
				}
				if c.stamp[y] != eb {
					c.stamp[y] = eb
					c.queueB = append(c.queueB, y)
					visited++
				}
			}
		}
	}
	// One frontier drained: that side's entire component is explored
	// and never met the other endpoint.
	c.stats.BoundedConclusive++
	return -1
}

// fullReach BFS-explores from vertex 0 and returns the number of
// vertices reached (n means connected; 0 for the empty graph).
func (c *Checker) fullReach() int {
	if c.n == 0 {
		return 0
	}
	c.epoch++
	e := c.epoch
	c.queueA = append(c.queueA[:0], 0)
	c.stamp[0] = e
	reached := 1
	for head := 0; head < len(c.queueA); head++ {
		x := c.queueA[head]
		for _, y := range c.nbr[c.off[x] : c.off[x]+int64(c.deg[x])] {
			if c.stamp[y] != e {
				c.stamp[y] = e
				c.queueA = append(c.queueA, y)
				reached++
			}
		}
	}
	return reached
}

// rebuildWitness recomputes the BFS spanning tree from vertex 0 and
// returns the number of vertices reached.
func (c *Checker) rebuildWitness() int {
	if c.n == 0 {
		return 0
	}
	for v := range c.parent {
		c.parent[v] = -1
	}
	c.epoch++
	e := c.epoch
	c.queueA = append(c.queueA[:0], 0)
	c.stamp[0] = e
	reached := 1
	for head := 0; head < len(c.queueA); head++ {
		x := c.queueA[head]
		for _, y := range c.nbr[c.off[x] : c.off[x]+int64(c.deg[x])] {
			if c.stamp[y] != e {
				c.stamp[y] = e
				c.parent[y] = x
				c.queueA = append(c.queueA, y)
				reached++
			}
		}
	}
	return reached
}

// maybeRecheck runs the periodic belt-and-braces full connectivity
// verification after an accepted swap.
func (c *Checker) maybeRecheck() {
	c.accepted++
	if c.recheckEvery <= 0 || c.accepted%c.recheckEvery != 0 {
		return
	}
	c.stats.FullRechecks++
	if c.fullReach() != c.n {
		panic("connected: periodic full recheck found a disconnected graph (checker invariant breached)")
	}
}

// apply replaces edges e and f with g and h in the adjacency.
// Removals run before insertions so no vertex's neighbor count ever
// exceeds its (invariant) degree capacity.
func (c *Checker) apply(e, f, g, h graph.Edge) {
	c.removeArc(e.U, e.V)
	c.removeArc(e.V, e.U)
	c.removeArc(f.U, f.V)
	c.removeArc(f.V, f.U)
	c.addArc(g.U, g.V)
	c.addArc(g.V, g.U)
	c.addArc(h.U, h.V)
	c.addArc(h.V, h.U)
}

func (c *Checker) addArc(u, v int32) {
	c.nbr[c.off[u]+int64(c.deg[u])] = v
	c.deg[u]++
}

func (c *Checker) removeArc(u, v int32) {
	base := c.off[u]
	last := int64(c.deg[u]) - 1
	for i := int64(0); i <= last; i++ {
		if c.nbr[base+i] == v {
			c.nbr[base+i] = c.nbr[base+last]
			c.deg[u]--
			return
		}
	}
	panic("connected: removeArc on absent edge (checker out of sync with the edge list)")
}
