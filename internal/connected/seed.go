package connected

import (
	"fmt"

	"nullgraph/internal/degseq"
	"nullgraph/internal/graph"
	"nullgraph/internal/havelhakimi"
)

// Realizable reports whether dist has a connected simple realization.
// The classical characterization: the sequence must be graphical
// (sum-even + Erdős–Gallai), every vertex must have degree >= 1 when
// n > 1 (an isolated vertex can never join), and there must be at
// least n-1 edges to span n vertices. Those three conditions are also
// sufficient — any simple realization with c >= 2 components and
// m >= n-1 has a component containing a cycle edge, and swapping a
// cycle edge against another component's edge merges the two without
// disconnecting anything (the repair loop in Connect).
func Realizable(dist *degseq.Distribution) error {
	if err := dist.Validate(); err != nil {
		return err
	}
	n := dist.NumVertices()
	if n <= 1 {
		return nil
	}
	if dist.Classes[0].Degree == 0 {
		return fmt.Errorf("connected: degree sequence has %d isolated vertices with n = %d > 1: no connected realization", dist.Classes[0].Count, n)
	}
	if dist.NumStubs()%2 != 0 {
		return fmt.Errorf("connected: degree sum %d is odd: not graphical", dist.NumStubs())
	}
	if !dist.IsGraphical() {
		return fmt.Errorf("connected: degree sequence fails the Erdős–Gallai condition: not graphical")
	}
	if m := dist.NumEdges(); m < n-1 {
		return fmt.Errorf("connected: %d edges cannot span %d vertices (need at least %d): no connected realization", m, n, n-1)
	}
	return nil
}

// Realize constructs a connected simple graph with degree sequence
// dist: a greedy Havel–Hakimi realization followed by the deterministic
// component-joining repair of Connect. It errors exactly when
// Realizable does.
func Realize(dist *degseq.Distribution) (*graph.EdgeList, error) {
	if err := Realizable(dist); err != nil {
		return nil, err
	}
	el, err := havelhakimi.Generate(dist)
	if err != nil {
		return nil, err
	}
	if _, err := Connect(el); err != nil {
		return nil, err
	}
	return el, nil
}

// Connect repairs a simple graph into a connected one with the same
// degree sequence by deterministic defect-repair swaps, and returns the
// number of component merges performed. Each round finds a cycle edge
// (an edge whose removal keeps its component connected — with c >= 2
// components and m >= n-1 some component must contain one, since
// sum over components of (m_i - n_i + 1) = m - n + c >= 1) and swaps it
// against an edge of a different component: (u,v),(x,y) -> (u,x),(v,y)
// merges the two components, and cross-component endpoints guarantee
// the new edges are neither loops nor duplicates. It errors when no
// connected realization exists (isolated vertices, or too few edges —
// equivalently, it runs out of cycle edges while still disconnected).
func Connect(el *graph.EdgeList) (int, error) {
	n := el.NumVertices
	if n <= 1 {
		return 0, nil
	}
	parent := make([]int32, n)
	rank := make([]int8, n)
	cycleEdge := make([]int32, n) // root -> index of a cycle edge in that component, -1 if none
	merges := 0
	for {
		// Union-find pass over the current edges: an edge whose
		// endpoints are already joined closes a cycle in its component.
		for v := range parent {
			parent[v] = int32(v)
			rank[v] = 0
			cycleEdge[v] = -1
		}
		components := n
		for i, e := range el.Edges {
			ru, rv := ufFind(parent, e.U), ufFind(parent, e.V)
			if ru == rv {
				if cycleEdge[ru] < 0 {
					cycleEdge[ru] = int32(i)
				}
				continue
			}
			components--
			root := ufUnion(parent, rank, ru, rv)
			// Keep one cycle-edge witness for the merged component.
			if cycleEdge[root] < 0 {
				other := ru
				if root == ru {
					other = rv
				}
				cycleEdge[root] = cycleEdge[other]
			}
		}
		if components <= 1 {
			return merges, nil
		}
		// Pick the cycle edge in the lowest-rooted component that has
		// one, and the first edge belonging to any other component.
		ci := int32(-1)
		for v := 0; v < n; v++ {
			if parent[v] == int32(v) && cycleEdge[v] >= 0 {
				ci = cycleEdge[v]
				break
			}
		}
		if ci < 0 {
			return merges, fmt.Errorf("connected: graph has %d components and no spare cycle edge: no connected realization with this degree sequence", components)
		}
		cRoot := ufFind(parent, el.Edges[ci].U)
		oi := -1
		for i, e := range el.Edges {
			if ufFind(parent, e.U) != cRoot {
				oi = i
				break
			}
		}
		if oi < 0 {
			// components > 1 but every edge is in one component: the
			// other components are isolated vertices.
			return merges, fmt.Errorf("connected: graph has isolated vertices: no connected realization with this degree sequence")
		}
		u, v := el.Edges[ci].U, el.Edges[ci].V
		x, y := el.Edges[oi].U, el.Edges[oi].V
		el.Edges[ci] = graph.Edge{U: u, V: x}
		el.Edges[oi] = graph.Edge{U: v, V: y}
		merges++
	}
}

// ufFind resolves v's root with path halving.
func ufFind(parent []int32, v int32) int32 {
	for parent[v] != v {
		parent[v] = parent[parent[v]]
		v = parent[v]
	}
	return v
}

// ufUnion links two distinct roots by rank and returns the new root.
func ufUnion(parent []int32, rank []int8, a, b int32) int32 {
	if rank[a] < rank[b] {
		a, b = b, a
	}
	parent[b] = a
	if rank[a] == rank[b] {
		rank[a]++
	}
	return a
}
