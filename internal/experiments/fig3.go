package experiments

import (
	"fmt"
	"io"
	"math"

	"nullgraph/internal/metrics"
	"nullgraph/internal/rng"
)

// Fig3Cell is one (dataset, method) measurement: mean absolute
// percentage errors over trials.
type Fig3Cell struct {
	EdgesPct     float64
	MaxDegreePct float64
	GiniPct      float64
}

// Fig3Result reproduces Figure 3: output quality per generator, as
// percentage error in edge count (top panel), maximum degree (middle)
// and Gini coefficient (bottom).
type Fig3Result struct {
	Datasets []string
	Methods  []Method
	Cells    map[string]map[Method]Fig3Cell
	Trials   int
}

// RunFig3 measures every method's raw output against the target
// distribution on the quality datasets.
func RunFig3(cfg Config) (*Fig3Result, error) {
	res := &Fig3Result{Methods: AllMethods(), Cells: map[string]map[Method]Fig3Cell{}, Trials: cfg.trials()}
	for _, spec := range cfg.specs() {
		dist, err := cfg.load(spec)
		if err != nil {
			return nil, err
		}
		res.Datasets = append(res.Datasets, spec.Name)
		res.Cells[spec.Name] = map[Method]Fig3Cell{}
		for _, method := range res.Methods {
			var cell Fig3Cell
			for t := 0; t < res.Trials; t++ {
				el, err := generate(method, dist, cfg.Workers, rng.Mix64(cfg.Seed)^rng.Mix64(uint64(t)*31+uint64(len(method))))
				if err != nil {
					return nil, fmt.Errorf("%s on %s: %w", method, spec.Name, err)
				}
				q := metrics.Quality(el, dist, cfg.Workers)
				cell.EdgesPct += math.Abs(q.Edges) * 100
				cell.MaxDegreePct += math.Abs(q.MaxDegree) * 100
				cell.GiniPct += math.Abs(q.Gini) * 100
			}
			cell.EdgesPct /= float64(res.Trials)
			cell.MaxDegreePct /= float64(res.Trials)
			cell.GiniPct /= float64(res.Trials)
			res.Cells[spec.Name][method] = cell
		}
	}
	return res, nil
}

// Average returns the mean cell across datasets for one method (the
// paper plots averaged error bars).
func (r *Fig3Result) Average(m Method) Fig3Cell {
	var avg Fig3Cell
	if len(r.Datasets) == 0 {
		return avg
	}
	for _, d := range r.Datasets {
		c := r.Cells[d][m]
		avg.EdgesPct += c.EdgesPct
		avg.MaxDegreePct += c.MaxDegreePct
		avg.GiniPct += c.GiniPct
	}
	n := float64(len(r.Datasets))
	avg.EdgesPct /= n
	avg.MaxDegreePct /= n
	avg.GiniPct /= n
	return avg
}

// Render prints the three panels.
func (r *Fig3Result) Render(w io.Writer) {
	header(w, fmt.Sprintf("Figure 3 — %% error in #edges / d_max / Gini (%d trials)", r.Trials))
	for _, panel := range []struct {
		name string
		pick func(Fig3Cell) float64
	}{
		{"#edges", func(c Fig3Cell) float64 { return c.EdgesPct }},
		{"d_max", func(c Fig3Cell) float64 { return c.MaxDegreePct }},
		{"Gini", func(c Fig3Cell) float64 { return c.GiniPct }},
	} {
		fmt.Fprintf(w, "\n%% error in %s:\n%-12s", panel.name, "dataset")
		for _, m := range r.Methods {
			fmt.Fprintf(w, " %16s", m)
		}
		fmt.Fprintln(w)
		for _, d := range r.Datasets {
			fmt.Fprintf(w, "%-12s", d)
			for _, m := range r.Methods {
				fmt.Fprintf(w, " %16.3f", panel.pick(r.Cells[d][m]))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%-12s", "average")
		for _, m := range r.Methods {
			fmt.Fprintf(w, " %16.3f", panel.pick(r.Average(m)))
		}
		fmt.Fprintln(w)
	}
}
