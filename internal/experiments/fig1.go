package experiments

import (
	"fmt"
	"io"

	"nullgraph/internal/datasets"
	"nullgraph/internal/metrics"
	"nullgraph/internal/rng"
)

// Fig1Point is one degree on the x-axis of Figure 1: the attachment
// probability between the largest-degree vertex's class and the class
// of this degree, as Chung-Lu computes it and as uniformly random
// simple graphs realize it.
type Fig1Point struct {
	Degree    int64
	ChungLu   float64
	Empirical float64
}

// Fig1Result reproduces Figure 1 on the as20 analog: Chung-Lu
// probabilities for the largest-degree vertex exceed 1 and diverge from
// the empirical uniform-random curve.
type Fig1Result struct {
	Dataset string
	Samples int
	Points  []Fig1Point
	// MaxChungLu is the largest (pre-clamp) Chung-Lu probability
	// encountered — the paper notes it exceeds 1 for a majority of
	// pairwise degrees.
	MaxChungLu float64
	// FractionAboveOne is the fraction of plotted degrees whose raw
	// Chung-Lu attachment probability with the hub exceeds 1.
	FractionAboveOne float64
}

// RunFig1 samples uniform random graphs (Havel-Hakimi + swaps, the
// paper uses 100 samples) and compares the hub row of the empirical
// attachment matrix against raw Chung-Lu probabilities w_i·w_j/2m.
func RunFig1(cfg Config) (*Fig1Result, error) {
	spec, err := datasets.ByName("as20")
	if err != nil {
		return nil, err
	}
	dist, err := cfg.load(spec)
	if err != nil {
		return nil, err
	}
	samples := cfg.trials() * 10
	if samples > 100 {
		samples = 100
	}
	acc := metrics.NewAttachmentAccumulator(dist)
	for t := 0; t < samples; t++ {
		el, err := uniformReference(dist, cfg.Workers, rng.Mix64(cfg.Seed)+uint64(t)*104729, 24)
		if err != nil {
			return nil, err
		}
		acc.Add(el)
	}
	empirical := acc.Matrix()

	res := &Fig1Result{Dataset: spec.Name, Samples: samples}
	k := dist.NumClasses()
	hub := k - 1 // largest degree class
	twoM := float64(dist.NumStubs())
	hubDegree := float64(dist.MaxDegree())
	for i := 0; i < k; i++ {
		raw := hubDegree * float64(dist.Classes[i].Degree) / twoM
		if raw > res.MaxChungLu {
			res.MaxChungLu = raw
		}
		if raw > 1 {
			res.FractionAboveOne++
		}
		res.Points = append(res.Points, Fig1Point{
			Degree:    dist.Classes[i].Degree,
			ChungLu:   raw,
			Empirical: empirical.At(hub, i),
		})
	}
	res.FractionAboveOne /= float64(k)
	return res, nil
}

// Render prints the two curves as a degree-indexed series.
func (r *Fig1Result) Render(w io.Writer) {
	header(w, fmt.Sprintf("Figure 1 — attachment probabilities of the largest-degree vertex (%s, %d uniform samples)", r.Dataset, r.Samples))
	fmt.Fprintf(w, "%10s %14s %14s\n", "degree", "Chung-Lu", "uniform-random")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%10d %14.6f %14.6f\n", p.Degree, p.ChungLu, p.Empirical)
	}
	fmt.Fprintf(w, "max Chung-Lu probability: %.3f; fraction of degrees with P>1: %.2f\n",
		r.MaxChungLu, r.FractionAboveOne)
}
