package experiments

import (
	"fmt"
	"io"
	"math"

	"nullgraph/internal/chunglu"
	"nullgraph/internal/degseq"
	"nullgraph/internal/edgeskip"
	"nullgraph/internal/graph"
	"nullgraph/internal/metrics"
	"nullgraph/internal/probgen"
	"nullgraph/internal/rng"
)

// AblationVariant names one probability-matrix source feeding the same
// edge-skipping generator.
type AblationVariant string

const (
	// VariantHeuristic is the paper's Section IV-A method.
	VariantHeuristic AblationVariant = "heuristic"
	// VariantRefined adds iterative-proportional-fitting passes.
	VariantRefined AblationVariant = "heuristic+IPF"
	// VariantChungLu is the naive clamped min(1, w_i·w_j/2m) matrix.
	VariantChungLu AblationVariant = "naive Chung-Lu"
	// VariantOMSimplify is the O(m) Chung-Lu multigraph driven simple by
	// Sjöstrand targeted swaps instead of edge erasure — no probability
	// matrix involved, so its residual-L1 column is blank. Its output is
	// asserted simple: a residual defect fails the experiment.
	VariantOMSimplify AblationVariant = "O(m)+simplify"
)

// AblationCell is one (dataset, variant) measurement.
type AblationCell struct {
	// ResidualL1 is Σ|expected degree − target| over classes, per the
	// matrix itself (no sampling noise).
	ResidualL1 float64
	// EdgesPct / MaxDegreePct are realized output errors (mean absolute
	// % over trials).
	EdgesPct     float64
	MaxDegreePct float64
	// SimplifySwaps is the mean number of targeted simplification swaps
	// applied (VariantOMSimplify only; zero for the matrix variants,
	// whose edge-skipping output is simple by construction).
	SimplifySwaps float64
}

// AblationResult isolates the probability-generation design choice: the
// same edge-skipping generator fed by three different matrices.
type AblationResult struct {
	Datasets []string
	Variants []AblationVariant
	Cells    map[string]map[AblationVariant]AblationCell
	Trials   int
}

// RunAblation measures each variant on the quality datasets.
func RunAblation(cfg Config) (*AblationResult, error) {
	res := &AblationResult{
		Variants: []AblationVariant{VariantHeuristic, VariantRefined, VariantChungLu, VariantOMSimplify},
		Cells:    map[string]map[AblationVariant]AblationCell{},
		Trials:   cfg.trials(),
	}
	for _, spec := range cfg.specs() {
		dist, err := cfg.load(spec)
		if err != nil {
			return nil, err
		}
		res.Datasets = append(res.Datasets, spec.Name)
		res.Cells[spec.Name] = map[AblationVariant]AblationCell{}
		for _, variant := range res.Variants {
			cell, err := runAblationVariant(variant, spec.Name, dist, cfg, res.Trials)
			if err != nil {
				return nil, err
			}
			res.Cells[spec.Name][variant] = cell
		}
	}
	return res, nil
}

// runAblationVariant measures one (dataset, variant) cell. The matrix
// variants share the edge-skipping generator; VariantOMSimplify runs
// the O(m) multigraph through the Sjöstrand pass and asserts the
// result is simple.
func runAblationVariant(variant AblationVariant, dataset string, dist *degseq.Distribution, cfg Config, trials int) (AblationCell, error) {
	var cell AblationCell
	var matrix *probgen.Matrix
	if variant == VariantOMSimplify {
		cell.ResidualL1 = math.NaN() // no probability matrix to measure
	} else {
		matrix = variantMatrix(variant, dist, cfg.Workers)
		cell.ResidualL1 = residualL1(dist, matrix)
	}
	for t := 0; t < trials; t++ {
		seed := rng.Mix64(cfg.Seed) ^ rng.Mix64(uint64(t)*53+uint64(len(variant)))
		var el *graph.EdgeList
		if variant == VariantOMSimplify {
			out, sres := chunglu.GenerateSimplified(dist, chunglu.Options{Workers: cfg.Workers, Seed: seed})
			if !sres.Simple || !graph.MultisetOf(out).IsSimple() {
				return cell, fmt.Errorf("%s on %s trial %d: output not simple (%d residual defects after %d swaps)",
					variant, dataset, t, sres.ResidualDefects, sres.Swaps)
			}
			cell.SimplifySwaps += float64(sres.Swaps)
			el = out
		} else {
			var err error
			el, err = edgeskip.Generate(dist, matrix, edgeskip.Options{Workers: cfg.Workers, Seed: seed})
			if err != nil {
				return cell, fmt.Errorf("%s on %s: %w", variant, dataset, err)
			}
		}
		q := metrics.Quality(el, dist, cfg.Workers)
		cell.EdgesPct += math.Abs(q.Edges) * 100
		cell.MaxDegreePct += math.Abs(q.MaxDegree) * 100
	}
	cell.EdgesPct /= float64(trials)
	cell.MaxDegreePct /= float64(trials)
	cell.SimplifySwaps /= float64(trials)
	return cell, nil
}

func variantMatrix(v AblationVariant, dist *degseq.Distribution, workers int) *probgen.Matrix {
	switch v {
	case VariantRefined:
		return probgen.Refine(dist, probgen.Generate(dist, workers), 12)
	case VariantChungLu:
		return probgen.ChungLu(dist)
	default:
		return probgen.Generate(dist, workers)
	}
}

func residualL1(dist *degseq.Distribution, m *probgen.Matrix) float64 {
	var s float64
	for _, r := range probgen.RowResiduals(dist, m) {
		s += math.Abs(r)
	}
	return s
}

// Render prints the comparison.
func (r *AblationResult) Render(w io.Writer) {
	header(w, fmt.Sprintf("Ablation — probability generation variants through identical edge-skipping, plus the simplified O(m) baseline (%d trials)", r.Trials))
	fmt.Fprintf(w, "%-12s %-16s %14s %12s %12s %14s\n", "dataset", "variant", "residual L1", "edges %err", "d_max %err", "simplify swaps")
	for _, d := range r.Datasets {
		for _, v := range r.Variants {
			c := r.Cells[d][v]
			l1 := "-"
			if !math.IsNaN(c.ResidualL1) {
				l1 = fmt.Sprintf("%.2f", c.ResidualL1)
			}
			swaps := "-"
			if v == VariantOMSimplify {
				swaps = fmt.Sprintf("%.1f", c.SimplifySwaps)
			}
			fmt.Fprintf(w, "%-12s %-16s %14s %12.3f %12.3f %14s\n", d, v, l1, c.EdgesPct, c.MaxDegreePct, swaps)
		}
	}
}
