package experiments

import (
	"fmt"
	"io"
	"math"

	"nullgraph/internal/degseq"
	"nullgraph/internal/edgeskip"
	"nullgraph/internal/metrics"
	"nullgraph/internal/probgen"
	"nullgraph/internal/rng"
)

// AblationVariant names one probability-matrix source feeding the same
// edge-skipping generator.
type AblationVariant string

const (
	// VariantHeuristic is the paper's Section IV-A method.
	VariantHeuristic AblationVariant = "heuristic"
	// VariantRefined adds iterative-proportional-fitting passes.
	VariantRefined AblationVariant = "heuristic+IPF"
	// VariantChungLu is the naive clamped min(1, w_i·w_j/2m) matrix.
	VariantChungLu AblationVariant = "naive Chung-Lu"
)

// AblationCell is one (dataset, variant) measurement.
type AblationCell struct {
	// ResidualL1 is Σ|expected degree − target| over classes, per the
	// matrix itself (no sampling noise).
	ResidualL1 float64
	// EdgesPct / MaxDegreePct are realized output errors (mean absolute
	// % over trials).
	EdgesPct     float64
	MaxDegreePct float64
}

// AblationResult isolates the probability-generation design choice: the
// same edge-skipping generator fed by three different matrices.
type AblationResult struct {
	Datasets []string
	Variants []AblationVariant
	Cells    map[string]map[AblationVariant]AblationCell
	Trials   int
}

// RunAblation measures each variant on the quality datasets.
func RunAblation(cfg Config) (*AblationResult, error) {
	res := &AblationResult{
		Variants: []AblationVariant{VariantHeuristic, VariantRefined, VariantChungLu},
		Cells:    map[string]map[AblationVariant]AblationCell{},
		Trials:   cfg.trials(),
	}
	for _, spec := range cfg.specs() {
		dist, err := cfg.load(spec)
		if err != nil {
			return nil, err
		}
		res.Datasets = append(res.Datasets, spec.Name)
		res.Cells[spec.Name] = map[AblationVariant]AblationCell{}
		for _, variant := range res.Variants {
			matrix := variantMatrix(variant, dist, cfg.Workers)
			cell := AblationCell{ResidualL1: residualL1(dist, matrix)}
			for t := 0; t < res.Trials; t++ {
				el, err := edgeskip.Generate(dist, matrix, edgeskip.Options{
					Workers: cfg.Workers,
					Seed:    rng.Mix64(cfg.Seed) ^ rng.Mix64(uint64(t)*53+uint64(len(variant))),
				})
				if err != nil {
					return nil, fmt.Errorf("%s on %s: %w", variant, spec.Name, err)
				}
				q := metrics.Quality(el, dist, cfg.Workers)
				cell.EdgesPct += math.Abs(q.Edges) * 100
				cell.MaxDegreePct += math.Abs(q.MaxDegree) * 100
			}
			cell.EdgesPct /= float64(res.Trials)
			cell.MaxDegreePct /= float64(res.Trials)
			res.Cells[spec.Name][variant] = cell
		}
	}
	return res, nil
}

func variantMatrix(v AblationVariant, dist *degseq.Distribution, workers int) *probgen.Matrix {
	switch v {
	case VariantRefined:
		return probgen.Refine(dist, probgen.Generate(dist, workers), 12)
	case VariantChungLu:
		return probgen.ChungLu(dist)
	default:
		return probgen.Generate(dist, workers)
	}
}

func residualL1(dist *degseq.Distribution, m *probgen.Matrix) float64 {
	var s float64
	for _, r := range probgen.RowResiduals(dist, m) {
		s += math.Abs(r)
	}
	return s
}

// Render prints the comparison.
func (r *AblationResult) Render(w io.Writer) {
	header(w, fmt.Sprintf("Ablation — probability generation variants through identical edge-skipping (%d trials)", r.Trials))
	fmt.Fprintf(w, "%-12s %-16s %14s %12s %12s\n", "dataset", "variant", "residual L1", "edges %err", "d_max %err")
	for _, d := range r.Datasets {
		for _, v := range r.Variants {
			c := r.Cells[d][v]
			fmt.Fprintf(w, "%-12s %-16s %14.2f %12.3f %12.3f\n", d, v, c.ResidualL1, c.EdgesPct, c.MaxDegreePct)
		}
	}
}
