package experiments

import (
	"fmt"
	"io"
	"math"

	"nullgraph/internal/chunglu"
	"nullgraph/internal/datasets"
	"nullgraph/internal/rng"
)

// Fig2Point is one degree of the Figure 2 series: the erased
// configuration model's output vertex count at that degree versus the
// target, averaged over trials.
type Fig2Point struct {
	Degree   int64
	Target   int64
	GotMean  float64
	RelError float64 // (got-target)/target when target > 0
}

// Fig2Result reproduces Figure 2: erased-model degree distribution
// error versus degree on the as20 analog.
type Fig2Result struct {
	Dataset string
	Trials  int
	Points  []Fig2Point
	// MeanAbsRelError summarizes the curve (target degrees only).
	MeanAbsRelError float64
}

// RunFig2 generates erased Chung-Lu graphs and tabulates the per-degree
// output error.
func RunFig2(cfg Config) (*Fig2Result, error) {
	spec, err := datasets.ByName("as20")
	if err != nil {
		return nil, err
	}
	dist, err := cfg.load(spec)
	if err != nil {
		return nil, err
	}
	trials := cfg.trials() * 3
	res := &Fig2Result{Dataset: spec.Name, Trials: trials}

	gotSum := map[int64]float64{}
	for t := 0; t < trials; t++ {
		el, _ := chunglu.GenerateErased(dist, chunglu.Options{
			Workers: cfg.Workers,
			Seed:    rng.Mix64(cfg.Seed) + uint64(t)*2654435761,
		})
		for _, d := range el.Degrees(cfg.Workers) {
			gotSum[d]++
		}
	}
	target := map[int64]int64{}
	for _, c := range dist.Classes {
		target[c.Degree] = c.Count
	}
	degrees := map[int64]struct{}{}
	for d := range gotSum {
		degrees[d] = struct{}{}
	}
	for d := range target {
		degrees[d] = struct{}{}
	}
	var absSum float64
	var withTarget int
	for d := range degrees {
		p := Fig2Point{Degree: d, Target: target[d], GotMean: gotSum[d] / float64(trials)}
		if p.Target > 0 {
			p.RelError = (p.GotMean - float64(p.Target)) / float64(p.Target)
			absSum += math.Abs(p.RelError)
			withTarget++
		}
		res.Points = append(res.Points, p)
	}
	sortFig2(res.Points)
	if withTarget > 0 {
		res.MeanAbsRelError = absSum / float64(withTarget)
	}
	return res, nil
}

func sortFig2(points []Fig2Point) {
	for i := 1; i < len(points); i++ {
		for j := i; j > 0 && points[j-1].Degree > points[j].Degree; j-- {
			points[j-1], points[j] = points[j], points[j-1]
		}
	}
}

// Render prints the error series.
func (r *Fig2Result) Render(w io.Writer) {
	header(w, fmt.Sprintf("Figure 2 — erased-model output degree distribution error (%s, %d trials)", r.Dataset, r.Trials))
	fmt.Fprintf(w, "%10s %10s %12s %12s\n", "degree", "target", "mean output", "rel. error")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%10d %10d %12.2f %+12.4f\n", p.Degree, p.Target, p.GotMean, p.RelError)
	}
	fmt.Fprintf(w, "mean |relative error| over target degrees: %.4f\n", r.MeanAbsRelError)
}
