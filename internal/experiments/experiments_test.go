package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// smallCfg keeps experiment runtimes test-friendly.
func smallCfg() Config {
	return Config{
		Workers:        4,
		Seed:           99,
		MaxVertices:    4000,
		Trials:         2,
		SwapIterations: 6,
		SkewedOnly:     true,
	}
}

func TestRunTable1(t *testing.T) {
	cfg := smallCfg()
	cfg.SkewedOnly = false
	res, err := RunTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.AnalogN <= 0 || row.AnalogM <= 0 || row.AnalogDMax <= 0 || row.AnalogUniqueDegrees <= 0 {
			t.Errorf("%s: degenerate analog %+v", row.Name, row)
		}
		if row.AnalogN > 4000 {
			t.Errorf("%s: analog larger than cap: %d", row.Name, row.AnalogN)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Meso") || !strings.Contains(buf.String(), "uk-2005") {
		t.Error("render missing datasets")
	}
}

func TestRunFig1ShowsChungLuFailure(t *testing.T) {
	res, err := RunFig1(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	// The paper's headline: raw Chung-Lu probabilities exceed 1 for many
	// degrees of the hub row.
	if res.MaxChungLu <= 1 {
		t.Errorf("MaxChungLu = %v, want > 1 on a skewed instance", res.MaxChungLu)
	}
	if res.FractionAboveOne <= 0.1 {
		t.Errorf("FractionAboveOne = %v, want substantial", res.FractionAboveOne)
	}
	// Empirical probabilities are true probabilities.
	for _, p := range res.Points {
		if p.Empirical < 0 || p.Empirical > 1 {
			t.Errorf("empirical probability %v out of range at degree %d", p.Empirical, p.Degree)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Chung-Lu") {
		t.Error("render missing header")
	}
}

func TestRunFig2ErasedUndershootsTail(t *testing.T) {
	res, err := RunFig2(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanAbsRelError <= 0 {
		t.Error("erased model shows no degree error on a skewed instance")
	}
	// The hub degrees must be undershot (erasure removes their edges).
	var top *Fig2Point
	for i := range res.Points {
		p := &res.Points[i]
		if p.Target > 0 {
			top = p
		}
	}
	if top == nil {
		t.Fatal("no target degrees")
	}
	if top.GotMean >= float64(top.Target) {
		t.Errorf("largest target degree %d realized %v times, expected undershoot", top.Degree, top.GotMean)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "erased") {
		t.Error("render missing header")
	}
}

func TestRunFig3ShapeHolds(t *testing.T) {
	res, err := RunFig3(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Datasets) != 4 {
		t.Fatalf("datasets = %v", res.Datasets)
	}
	om := res.Average(MethodOM)
	erased := res.Average(MethodErased)
	bernoulli := res.Average(MethodBernoulli)
	ours := res.Average(MethodOurs)
	// Paper's Figure 3 shape: the O(m) multigraph matches edge count
	// (it has exactly m edges); the erased model loses edges; our
	// method beats the erased and Bernoulli baselines on edge count
	// and d_max.
	if om.EdgesPct > 0.5 {
		t.Errorf("O(m) edge error %v%%, want ~0", om.EdgesPct)
	}
	if ours.EdgesPct >= erased.EdgesPct {
		t.Errorf("ours edge error %v%% not better than erased %v%%", ours.EdgesPct, erased.EdgesPct)
	}
	if ours.EdgesPct >= bernoulli.EdgesPct {
		t.Errorf("ours edge error %v%% not better than Bernoulli CL %v%%", ours.EdgesPct, bernoulli.EdgesPct)
	}
	if ours.MaxDegreePct >= erased.MaxDegreePct {
		t.Errorf("ours d_max error %v%% not better than erased %v%%", ours.MaxDegreePct, erased.MaxDegreePct)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Gini") {
		t.Error("render missing Gini panel")
	}
}

func TestRunFig4Converges(t *testing.T) {
	// Small instance, many trials: the empirical attachment matrices
	// need enough samples that the convergence signal beats the
	// estimation noise floor (see EXPERIMENTS.md).
	res, err := RunFig4(Config{
		Workers: 4, Seed: 99, MaxVertices: 2000,
		Trials: 24, SwapIterations: 8, Datasets: []string{"Meso"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("series count = %d, want 4", len(res.Series))
	}
	byDataset := map[string]map[Method]Fig4Series{}
	for _, s := range res.Series {
		if len(s.L1) != 9 {
			t.Fatalf("%s/%s: curve length %d", s.Dataset, s.Method, len(s.L1))
		}
		if byDataset[s.Dataset] == nil {
			byDataset[s.Dataset] = map[Method]Fig4Series{}
		}
		byDataset[s.Dataset][s.Method] = s
	}
	for dataset, methods := range byDataset {
		// Paper's Figure 4 shape, claim 1: the O(m) model starts worst
		// (multi-edges inflate its attachment error before swaps clean
		// them up). Allow a small noise margin.
		om := methods[MethodOM].L1[0]
		for _, m := range []Method{MethodErased, MethodBernoulli, MethodOurs} {
			if om < 0.95*methods[m].L1[0] {
				t.Errorf("%s: O(m) initial error %v not the worst (vs %s %v)",
					dataset, om, m, methods[m].L1[0])
			}
		}
		// Claim 2: swaps fix the O(m) model's multi-edge bias — its
		// error must drop substantially from its own start.
		omFinal := methods[MethodOM].L1[len(methods[MethodOM].L1)-1]
		if omFinal > 0.6*om {
			t.Errorf("%s: O(m) error only fell %v -> %v", dataset, om, omFinal)
		}
		// Claim 3: the exact-m simple generators (Bernoulli CL and this
		// work) converge to a common noise floor with the mixed O(m)
		// model. The factor allows for estimation noise in the floor
		// itself: with Workers > 1 the O(m) final error varies ~10%
		// run-to-run (the engine's documented benign scheduling race),
		// and the Bernoulli chain's deterministic serial ratio at this
		// instance size is already ~2.05x, so a factor of 2 sat on the
		// noise boundary.
		floor := omFinal
		for _, m := range []Method{MethodBernoulli, MethodOurs} {
			final := methods[m].L1[len(methods[m].L1)-1]
			if final > 2.5*floor+1 {
				t.Errorf("%s/%s: final error %v far above O(m) floor %v", dataset, m, final, floor)
			}
		}
		// Claim 4: the erased model keeps a permanent deficit on a
		// skewed instance — it erased edges that swapping cannot
		// restore, so it must plateau above this work's curve.
		erasedFinal := methods[MethodErased].L1[len(methods[MethodErased].L1)-1]
		oursFinal := methods[MethodOurs].L1[len(methods[MethodOurs].L1)-1]
		if erasedFinal < oursFinal {
			t.Errorf("%s: erased final %v below ours %v (deficit should persist)", dataset, erasedFinal, oursFinal)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "it0") {
		t.Error("render missing iteration columns")
	}
}

func TestRunFig5AllMethodsTimed(t *testing.T) {
	cfg := smallCfg()
	cfg.Trials = 1
	res, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Datasets {
		for _, m := range res.Methods {
			if res.Cells[d][m].Total() <= 0 {
				t.Errorf("%s/%s: non-positive time", d, m)
			}
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "end-to-end") {
		t.Error("render missing header")
	}
}

func TestRunFig6PhasesRecorded(t *testing.T) {
	cfg := smallCfg()
	cfg.Trials = 1
	res, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Phases.EdgeGeneration <= 0 || row.Phases.Swapping <= 0 {
			t.Errorf("%s: phases not recorded: %+v", row.Dataset, row.Phases)
		}
		if row.Edges <= 0 {
			t.Errorf("%s: no edges", row.Dataset)
		}
	}
	if res.EdgeRate <= 0 {
		t.Error("edge rate not computed")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "edgegen") {
		t.Error("render missing phase columns")
	}
}

func TestRunSwapScale(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxVertices = 6000
	res, err := RunSwapScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no sweep points")
	}
	if res.Points[0].Workers != 1 {
		t.Errorf("sweep must start at 1 worker, got %d", res.Points[0].Workers)
	}
	for _, p := range res.Points {
		if p.TimeThreeIterations <= 0 || p.TimeOneIteration <= 0 {
			t.Errorf("workers=%d: non-positive times", p.Workers)
		}
		// The paper observes ~99.9% of edges swap in one iteration on
		// LiveJournal; demand a strong majority here.
		if p.SwappedAfterOne < 0.8 {
			t.Errorf("workers=%d: only %v of edges swapped after one iteration", p.Workers, p.SwappedAfterOne)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "speedup") {
		t.Error("render missing speedup column")
	}
}

func TestGenerateUnknownMethod(t *testing.T) {
	if _, err := generate(Method("nope"), nil, 1, 1); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestRunAblation(t *testing.T) {
	cfg := smallCfg()
	cfg.Datasets = []string{"Meso", "as20"}
	res, err := RunAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Datasets) != 2 {
		t.Fatalf("datasets = %v", res.Datasets)
	}
	for _, d := range res.Datasets {
		heur := res.Cells[d][VariantHeuristic]
		refined := res.Cells[d][VariantRefined]
		naive := res.Cells[d][VariantChungLu]
		// The heuristic must beat naive Chung-Lu on residuals, and
		// refinement must not make residuals worse.
		if heur.ResidualL1 >= naive.ResidualL1 {
			t.Errorf("%s: heuristic residual %v not better than naive %v", d, heur.ResidualL1, naive.ResidualL1)
		}
		if refined.ResidualL1 > heur.ResidualL1+1e-9 {
			t.Errorf("%s: refinement worsened residual %v -> %v", d, heur.ResidualL1, refined.ResidualL1)
		}
		// Realized edge error must follow the same ordering vs naive.
		if heur.EdgesPct >= naive.EdgesPct {
			t.Errorf("%s: heuristic edge error %v not better than naive %v", d, heur.EdgesPct, naive.EdgesPct)
		}
		// The simplified O(m) baseline has no probability matrix; its
		// post-condition simplicity is asserted inside RunAblation (a
		// residual defect surfaces as err above). On these skewed
		// analogs the raw O(m) draw always has defects to remove.
		simp := res.Cells[d][VariantOMSimplify]
		if !math.IsNaN(simp.ResidualL1) {
			t.Errorf("%s: simplified variant reports a residual L1 (%v) with no matrix", d, simp.ResidualL1)
		}
		if simp.SimplifySwaps <= 0 {
			t.Errorf("%s: simplified variant applied no swaps on a skewed analog", d)
		}
		// Degree preservation keeps the simplified model's edge count
		// exact, so its realized edge error is zero by construction.
		if simp.EdgesPct != 0 {
			t.Errorf("%s: simplified variant edge error %v, want 0 (degrees preserved)", d, simp.EdgesPct)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "naive Chung-Lu") || !strings.Contains(buf.String(), "O(m)+simplify") {
		t.Error("render missing variant")
	}
}

func TestRunMixingTime(t *testing.T) {
	cfg := smallCfg()
	cfg.Datasets = []string{"Meso", "as20"}
	res, err := RunMixingTime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Paper's empirical claims: mixing well inside a few dozen
		// iterations, and most edges swap in the first iteration.
		if row.RelaxationIters > res.Iterations*3/4 {
			t.Errorf("%s: relaxation = %d of %d (never settled)", row.Dataset, row.RelaxationIters, res.Iterations)
		}
		// Extreme skew depresses the first-iteration success rate (the
		// paper ties it to density and skew); even the harshest analogs
		// should swap a solid minority of edges immediately, and the
		// mild LiveJournal analog reaches ~97% (see swapscale).
		if row.SwappedAfterOne < 0.25 {
			t.Errorf("%s: only %v of edges swapped in iteration 1", row.Dataset, row.SwappedAfterOne)
		}
		if row.SuccessRate <= 0 || row.SuccessRate > 1 {
			t.Errorf("%s: success rate %v", row.Dataset, row.SuccessRate)
		}
		if row.Tau < 1 {
			t.Errorf("%s: tau = %v < 1", row.Dataset, row.Tau)
		}
	}
	if len(res.Adaptive) != 2 {
		t.Fatalf("adaptive rows = %d", len(res.Adaptive))
	}
	for _, row := range res.Adaptive {
		if row.FixedIters != res.FixedBudget {
			t.Errorf("%s: fixed iterations = %d, want %d", row.Dataset, row.FixedIters, res.FixedBudget)
		}
		// The monitor may only stop inside [floor, budget].
		if row.AdaptiveIters < 1 || row.AdaptiveIters > float64(res.AdaptiveBudget) {
			t.Errorf("%s: adaptive iterations = %v outside [1, %d]", row.Dataset, row.AdaptiveIters, res.AdaptiveBudget)
		}
		if row.Reason != "converged" && row.Reason != "budget" {
			t.Errorf("%s: adaptive stop reason = %q", row.Dataset, row.Reason)
		}
		if row.FixedSwapMs <= 0 || row.AdaptiveSwapMs <= 0 {
			t.Errorf("%s: non-positive swap wall time (fixed %v ms, adaptive %v ms)",
				row.Dataset, row.FixedSwapMs, row.AdaptiveSwapMs)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "relaxation") {
		t.Error("render missing columns")
	}
	if !strings.Contains(buf.String(), "adaptive stop") {
		t.Error("render missing the fixed-vs-adaptive comparison")
	}
}

func TestRunUniformity(t *testing.T) {
	res, err := RunUniformity(Config{Workers: 2, Seed: 5, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.States != 15 {
		t.Fatalf("space has %d states, want all 15 matchings", res.States)
	}
	// A biased sampler fails loudly here (p-value below any plausible
	// significance level); an unbiased one rejects with probability 1e-4.
	if res.PValue < 1e-4 {
		t.Errorf("uniformity rejected: chi-square = %v over %d dof, p = %v",
			res.ChiSquare, res.DegreesOfFreedom, res.PValue)
	}
	if res.PValue < 0 || res.PValue > 1 {
		t.Errorf("p-value %v outside [0,1]", res.PValue)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "chi-square") || !strings.Contains(buf.String(), "p = ") {
		t.Error("render missing statistic or p-value")
	}
}

func TestCollectRunReport(t *testing.T) {
	cfg := smallCfg()
	rep, err := CollectRunReport(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema == "" || rep.SwapTotals.Attempts == 0 {
		t.Errorf("report not populated: %+v", rep.SwapTotals)
	}
	if rep.EdgeSkip == nil || rep.EdgeSkip.TotalEdges == 0 {
		t.Error("report missing edge-skip accounting")
	}
	if rep.Phases == nil || rep.Phases.SwappingNs <= 0 {
		t.Error("report missing phase times")
	}
	cfg.Datasets = []string{"no-such-dataset"}
	if _, err := CollectRunReport(cfg); err == nil {
		t.Error("empty dataset selection accepted")
	}
}
