// Package experiments reproduces every table and figure of the paper's
// evaluation (Section VIII) on the synthetic Table I analogs:
//
//	Table 1    — test graph characteristics
//	Figure 1   — Chung-Lu vs empirical attachment probabilities
//	Figure 2   — erased-model degree distribution error
//	Figure 3   — % error in #edges / d_max / Gini per generator
//	Figure 4   — L1 attachment-probability error vs swap iterations
//	Figure 5   — end-to-end generation times per generator
//	Figure 6   — per-phase times of the paper's method
//	SwapScale  — §VIII-C swap throughput and thread scaling
//
// Each experiment is a pure function from a Config to a result struct
// with a Render method that prints the same rows/series the paper
// plots; cmd/experiments and the repository-level benchmarks are thin
// wrappers around these.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"nullgraph/internal/chunglu"
	"nullgraph/internal/core"
	"nullgraph/internal/datasets"
	"nullgraph/internal/degseq"
	"nullgraph/internal/graph"
	"nullgraph/internal/havelhakimi"
	"nullgraph/internal/metrics"
	"nullgraph/internal/obs"
	"nullgraph/internal/probgen"
	"nullgraph/internal/rng"
	"nullgraph/internal/swap"
)

// Method names one generator under comparison, with the paper's labels.
type Method string

const (
	// MethodOM is the O(m) Chung-Lu multigraph model.
	MethodOM Method = "O(m)"
	// MethodErased is the erased ("O(m) simple") model.
	MethodErased Method = "O(m) simple"
	// MethodBernoulli is the Bernoulli Chung-Lu ("O(n^2) edgeskip").
	MethodBernoulli Method = "O(n^2) edgeskip"
	// MethodOurs is the paper's method (probabilities + edge-skipping).
	MethodOurs Method = "this work"
)

// AllMethods lists the comparison set in the paper's order.
func AllMethods() []Method {
	return []Method{MethodOM, MethodErased, MethodBernoulli, MethodOurs}
}

// Config sizes and seeds an experiment run.
type Config struct {
	// Workers is the parallel width (<= 0: GOMAXPROCS).
	Workers int
	// Seed drives all sampling.
	Seed uint64
	// MaxVertices caps dataset analog sizes (<= 0: package default).
	MaxVertices int64
	// Trials averages stochastic measurements (<= 0: 3).
	Trials int
	// SwapIterations is the mixing-curve length for Figure 4 (<= 0: 16).
	SwapIterations int
	// SkewedOnly restricts dataset sweeps to the paper's four skewed
	// quality-comparison instances.
	SkewedOnly bool
	// Datasets, when non-empty, restricts sweeps to the named Table I
	// instances (applied after SkewedOnly).
	Datasets []string
}

func (c Config) trials() int {
	if c.Trials <= 0 {
		return 3
	}
	return c.Trials
}

func (c Config) swapIterations() int {
	if c.SwapIterations <= 0 {
		return 16
	}
	return c.SwapIterations
}

func (c Config) specs() []datasets.Spec {
	var out []datasets.Spec
	for _, s := range datasets.Table1() {
		if c.SkewedOnly && !s.Skewed {
			continue
		}
		if len(c.Datasets) > 0 {
			found := false
			for _, name := range c.Datasets {
				if s.Name == name {
					found = true
					break
				}
			}
			if !found {
				continue
			}
		}
		out = append(out, s)
	}
	return out
}

func (c Config) load(s datasets.Spec) (*degseq.Distribution, error) {
	return datasets.Load(s, datasets.LoadOptions{MaxVertices: c.MaxVertices, Seed: c.Seed})
}

// generate runs one method without any mixing and returns its raw output
// (the O(m) model's output is a multigraph).
func generate(m Method, dist *degseq.Distribution, workers int, seed uint64) (*graph.EdgeList, error) {
	opt := chunglu.Options{Workers: workers, Seed: seed}
	switch m {
	case MethodOM:
		return chunglu.GenerateOM(dist, opt), nil
	case MethodErased:
		el, _ := chunglu.GenerateErased(dist, opt)
		return el, nil
	case MethodBernoulli:
		return chunglu.GenerateBernoulli(dist, opt)
	case MethodOurs:
		res, err := core.FromDistribution(dist, core.Options{Workers: workers, Seed: seed, SwapIterations: 0})
		if err != nil {
			return nil, err
		}
		return res.Graph, nil
	default:
		return nil, fmt.Errorf("experiments: unknown method %q", m)
	}
}

// uniformReference draws one uniformly random simple graph for dist via
// Havel-Hakimi construction plus heavy double-edge swapping — the
// baseline sample of Figures 1 and 4 (the paper uses 128 iterations).
func uniformReference(dist *degseq.Distribution, workers int, seed uint64, iterations int) (*graph.EdgeList, error) {
	el, err := havelhakimi.Generate(dist)
	if err != nil {
		return nil, err
	}
	swap.Run(el, swap.Options{Iterations: iterations, Workers: workers, Seed: seed})
	return el, nil
}

// baseAttachment averages the attachment matrix of `samples` uniform
// reference graphs.
func baseAttachment(dist *degseq.Distribution, workers int, seed uint64, samples, iterations int) (*probgen.Matrix, error) {
	acc := metrics.NewAttachmentAccumulator(dist)
	for t := 0; t < samples; t++ {
		el, err := uniformReference(dist, workers, rng.Mix64(seed)+uint64(t)*7919, iterations)
		if err != nil {
			return nil, err
		}
		acc.Add(el)
	}
	return acc.Matrix(), nil
}

// CollectRunReport runs the paper's full pipeline once on the first
// configured Table I analog with chain-health instrumentation attached
// and returns the resulting report — the observability companion to an
// experiment sweep, so a figure's numbers can be cross-checked against
// the acceptance, probe, and skip-draw statistics of an identically
// configured run.
func CollectRunReport(cfg Config) (*obs.RunReport, error) {
	specs := cfg.specs()
	if len(specs) == 0 {
		return nil, fmt.Errorf("experiments: no datasets selected")
	}
	dist, err := cfg.load(specs[0])
	if err != nil {
		return nil, err
	}
	rec := obs.NewRecorder()
	_, err = core.FromDistribution(dist, core.Options{
		Workers:        cfg.Workers,
		Seed:           cfg.Seed,
		SwapIterations: cfg.swapIterations(),
		TrackSwapStats: true,
		Recorder:       rec,
	})
	if err != nil {
		return nil, err
	}
	return rec.Report(), nil
}

// column formats a duration in milliseconds with fixed width.
func ms(d time.Duration) string { return fmt.Sprintf("%9.1f", float64(d.Microseconds())/1000) }

// sortedKeys returns map keys in sorted order for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// header prints a section banner.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
}
