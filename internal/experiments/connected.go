package experiments

import (
	"fmt"
	"io"
	"time"

	"nullgraph/internal/connected"
	"nullgraph/internal/graph"
	"nullgraph/internal/havelhakimi"
	"nullgraph/internal/metrics"
	"nullgraph/internal/rng"
	"nullgraph/internal/swap"
)

// ConnectedRow compares the connectivity-preserving chain against the
// unconstrained chain on one dataset's Figure 5 swap workload, both
// started from the same repaired Havel-Hakimi realization.
type ConnectedRow struct {
	Dataset string
	// UnconstrainedAssort / ConnectedAssort are the trial-mean degree
	// assortativity of the delivered graphs. Their gap is the quantity
	// of interest: conditioning the null model on connectivity shifts
	// the ensemble, and this row measures by how much.
	UnconstrainedAssort float64
	ConnectedAssort     float64
	// UnconstrainedSwapMs / ConnectedSwapMs are the swap wall times in
	// milliseconds (best of trials). The connected chain is serial and
	// runs a connectivity check per proposal, so its overhead factor is
	// the cost of the constraint.
	UnconstrainedSwapMs float64
	ConnectedSwapMs     float64
	// RejectedFrac is the fraction of connectivity-checked proposals
	// rejected for disconnecting the graph; FastPathFrac is the
	// fraction settled by the O(1) witness-tree fast path (see
	// DESIGN.md §16 for the check hierarchy).
	RejectedFrac float64
	FastPathFrac float64
}

// ConnectedResult holds the connected-vs-unconstrained comparison.
type ConnectedResult struct {
	Iterations int
	Trials     int
	Rows       []ConnectedRow
}

// RunConnected measures what conditioning on connectivity does to the
// delivered ensemble and what it costs: per dataset, the same repaired
// Havel-Hakimi start is mixed for the Figure 5 swap budget by the
// unconstrained chain and by the connectivity-preserving chain, and
// the row reports assortativity, wall time, and the connected chain's
// rejection/fast-path profile. Datasets whose degree sequence admits
// no connected realization are skipped.
func RunConnected(cfg Config) (*ConnectedResult, error) {
	res := &ConnectedResult{Iterations: cfg.swapIterations(), Trials: cfg.trials()}
	for _, spec := range cfg.specs() {
		dist, err := cfg.load(spec)
		if err != nil {
			return nil, err
		}
		if err := connected.Realizable(dist); err != nil {
			continue
		}
		start, err := havelhakimi.Generate(dist)
		if err != nil {
			return nil, err
		}
		if _, err := connected.Connect(start); err != nil {
			return nil, fmt.Errorf("connected repair on %s: %w", spec.Name, err)
		}
		row := ConnectedRow{Dataset: spec.Name}
		bestU, bestC := time.Hour, time.Hour
		var proposals, rejected, fastPath int64
		for t := 0; t < cfg.trials(); t++ {
			seed := rng.Mix64(cfg.Seed^0xc0a) + uint64(t)

			elU := graph.NewEdgeList(append([]graph.Edge(nil), start.Edges...), start.NumVertices)
			t0 := time.Now()
			swap.Run(elU, swap.Options{Iterations: res.Iterations, Workers: cfg.Workers, Seed: seed})
			if d := time.Since(t0); d < bestU {
				bestU = d
			}
			row.UnconstrainedAssort += metrics.Assortativity(elU, cfg.Workers)

			elC := graph.NewEdgeList(append([]graph.Edge(nil), start.Edges...), start.NumVertices)
			eng := swap.NewEngine(elC, swap.Options{
				Connected: true, Iterations: res.Iterations, Workers: cfg.Workers, Seed: seed,
			})
			t0 = time.Now()
			swap.RunEngine(eng)
			if d := time.Since(t0); d < bestC {
				bestC = d
			}
			row.ConnectedAssort += metrics.Assortativity(elC, cfg.Workers)
			if st := eng.ConnectivityStats(); st != nil {
				proposals += st.Proposals
				rejected += st.RejectedDisconnecting
				fastPath += st.FastPathHits
			}
			eng.Close()
		}
		n := float64(cfg.trials())
		row.UnconstrainedAssort /= n
		row.ConnectedAssort /= n
		row.UnconstrainedSwapMs = float64(bestU) / float64(time.Millisecond)
		row.ConnectedSwapMs = float64(bestC) / float64(time.Millisecond)
		if proposals > 0 {
			row.RejectedFrac = float64(rejected) / float64(proposals)
			row.FastPathFrac = float64(fastPath) / float64(proposals)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the comparison table.
func (r *ConnectedResult) Render(w io.Writer) {
	header(w, fmt.Sprintf("Connected vs unconstrained sampling — Figure 5 swap workload (%d iterations, %d trials)",
		r.Iterations, r.Trials))
	fmt.Fprintf(w, "%-12s %10s %10s %12s %12s %10s %10s\n",
		"dataset", "free r", "conn r", "free ms", "conn ms", "rejected", "fast path")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %10.4f %10.4f %12.1f %12.1f %9.2f%% %9.1f%%\n",
			row.Dataset, row.UnconstrainedAssort, row.ConnectedAssort,
			row.UnconstrainedSwapMs, row.ConnectedSwapMs,
			row.RejectedFrac*100, row.FastPathFrac*100)
	}
	fmt.Fprintln(w, "r = delivered degree assortativity (trial mean); the free-vs-conn gap is the bias")
	fmt.Fprintln(w, "conditioning the null model on connectivity introduces. rejected/fast path are")
	fmt.Fprintln(w, "fractions of connectivity-checked proposals (DESIGN.md §16 check hierarchy).")
}
