package experiments

import (
	"fmt"
	"io"
	"sort"

	"nullgraph/internal/graph"
	"nullgraph/internal/rng"
	"nullgraph/internal/swap"
)

// UniformityResult reproduces the paper's §III-A validation (a Milo et
// al.-style experiment): repeated parallel swap runs on a tiny degree
// sequence whose simple-graph space is enumerable must visit every
// state with equal frequency.
//
// The state space here is the 15 perfect matchings of six labeled
// vertices (the 1-regular degree sequence); each trial starts from the
// same matching and mixes with the parallel engine.
type UniformityResult struct {
	Trials     int
	Iterations int
	States     int
	Counts     []int // per-state draw counts, descending
	ChiSquare  float64
	// DegreesOfFreedom = States-1; for reference, P(chi² > 2·dof) is
	// already large, and the paper's "minimally-biased" claim
	// corresponds to an unremarkable statistic.
	DegreesOfFreedom int
}

// RunUniformity draws cfg.trials()*2000 samples (at least 3000).
func RunUniformity(cfg Config) (*UniformityResult, error) {
	trials := cfg.trials() * 2000
	if trials < 3000 {
		trials = 3000
	}
	const iterations = 30
	counts := map[string]int{}
	for trial := 0; trial < trials; trial++ {
		el := graph.NewEdgeList([]graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}}, 6)
		swap.Run(el, swap.Options{
			Iterations: iterations,
			Workers:    cfg.Workers,
			Seed:       rng.Mix64(cfg.Seed) + uint64(trial)*2654435761,
		})
		counts[matchingSignature(el)]++
	}
	res := &UniformityResult{
		Trials:           trials,
		Iterations:       iterations,
		States:           len(counts),
		DegreesOfFreedom: len(counts) - 1,
	}
	expect := float64(trials) / float64(len(counts))
	for _, c := range counts {
		res.Counts = append(res.Counts, c)
		diff := float64(c) - expect
		res.ChiSquare += diff * diff / expect
	}
	sort.Sort(sort.Reverse(sort.IntSlice(res.Counts)))
	return res, nil
}

func matchingSignature(el *graph.EdgeList) string {
	keys := make([]uint64, len(el.Edges))
	for i, e := range el.Edges {
		keys[i] = e.Key()
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	sig := make([]byte, 0, len(keys)*8)
	for _, k := range keys {
		for b := 0; b < 8; b++ {
			sig = append(sig, byte(k>>(8*b)))
		}
	}
	return string(sig)
}

// Render prints the per-state counts and the chi-square statistic.
func (r *UniformityResult) Render(w io.Writer) {
	header(w, fmt.Sprintf("§III-A validation — uniformity over the %d perfect matchings of K6 (%d samples, %d swap iterations each)",
		r.States, r.Trials, r.Iterations))
	expect := float64(r.Trials) / float64(r.States)
	fmt.Fprintf(w, "expected per state: %.1f\n", expect)
	fmt.Fprintf(w, "observed (sorted): %v\n", r.Counts)
	fmt.Fprintf(w, "chi-square = %.2f over %d dof (values far above ~2x dof indicate bias)\n",
		r.ChiSquare, r.DegreesOfFreedom)
}
