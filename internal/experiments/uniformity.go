package experiments

import (
	"fmt"
	"io"
	"sort"

	"nullgraph/internal/degseq"
	"nullgraph/internal/graph"
	"nullgraph/internal/rng"
	"nullgraph/internal/statcheck"
	"nullgraph/internal/swap"
)

// UniformityResult reproduces the paper's §III-A validation (a Milo et
// al.-style experiment): repeated parallel swap runs on a tiny degree
// sequence whose simple-graph space is enumerable must visit every
// state with equal frequency.
//
// The state space here is the 15 perfect matchings of six labeled
// vertices (the 1-regular degree sequence), enumerated exactly by
// internal/statcheck; each trial starts from the same matching and
// mixes with the parallel engine. The statistic and its p-value come
// from the same implementation the statistical verification suite
// gates on, so the figure output and the test gate cannot drift apart.
type UniformityResult struct {
	Trials     int
	Iterations int
	States     int
	Counts     []int // per-state draw counts, descending
	ChiSquare  float64
	// DegreesOfFreedom = States-1.
	DegreesOfFreedom int
	// PValue is P(chi²_dof > ChiSquare) under the uniform null: small
	// values (say < 0.001) reject uniformity; anything else is an
	// unremarkable statistic, which is what the paper's
	// "minimally-biased" claim predicts.
	PValue float64
}

// RunUniformity draws cfg.trials()*2000 samples (at least 3000).
func RunUniformity(cfg Config) (*UniformityResult, error) {
	trials := cfg.trials() * 2000
	if trials < 3000 {
		trials = 3000
	}
	const iterations = 30
	dist, err := degseq.FromCounts(map[int64]int64{1: 6})
	if err != nil {
		return nil, err
	}
	space, err := statcheck.EnumerateSimpleGraphs(dist, "k6-matchings")
	if err != nil {
		return nil, err
	}
	counts := make([]int64, space.NumStates())
	for trial := 0; trial < trials; trial++ {
		el := graph.NewEdgeList([]graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}}, 6)
		swap.Run(el, swap.Options{
			Iterations: iterations,
			Workers:    cfg.Workers,
			Seed:       rng.Mix64(cfg.Seed) + uint64(trial)*2654435761,
		})
		idx, ok := space.Index[statcheck.SignatureOfEdges(el.Edges)]
		if !ok {
			return nil, fmt.Errorf("experiments: trial %d left the %d-state matching space", trial, space.NumStates())
		}
		counts[idx]++
	}
	stat, dof, p, err := statcheck.ChiSquareUniform(counts)
	if err != nil {
		return nil, err
	}
	res := &UniformityResult{
		Trials:           trials,
		Iterations:       iterations,
		States:           space.NumStates(),
		ChiSquare:        stat,
		DegreesOfFreedom: dof,
		PValue:           p,
	}
	for _, c := range counts {
		res.Counts = append(res.Counts, int(c))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(res.Counts)))
	return res, nil
}

// Render prints the per-state counts, the chi-square statistic and its
// p-value.
func (r *UniformityResult) Render(w io.Writer) {
	header(w, fmt.Sprintf("§III-A validation — uniformity over the %d perfect matchings of K6 (%d samples, %d swap iterations each)",
		r.States, r.Trials, r.Iterations))
	expect := float64(r.Trials) / float64(r.States)
	fmt.Fprintf(w, "expected per state: %.1f\n", expect)
	fmt.Fprintf(w, "observed (sorted): %v\n", r.Counts)
	verdict := "uniformity not rejected"
	if r.PValue < 0.001 {
		verdict = "REJECTS uniformity at alpha=0.001"
	}
	fmt.Fprintf(w, "chi-square = %.2f over %d dof, p = %.4f (%s)\n",
		r.ChiSquare, r.DegreesOfFreedom, r.PValue, verdict)
}
