package experiments

import (
	"fmt"
	"io"

	"nullgraph/internal/havelhakimi"
	"nullgraph/internal/mixing"
	"nullgraph/internal/rng"
)

// MixingTimeRow is one dataset's empirical mixing diagnostics.
type MixingTimeRow struct {
	Dataset string
	// RelaxationIters is the burn-in estimate of the triangle-count
	// trajectory from a Havel-Hakimi (maximally structured) start.
	RelaxationIters int
	// Tau is the integrated autocorrelation time of the statistic after
	// burn-in (samples one iteration apart).
	Tau float64
	// SuccessRate is the steady-state fraction of proposals committed.
	SuccessRate float64
	// SwappedAfterOne is the fraction of edges swapped in the first
	// iteration.
	SwappedAfterOne float64
}

// MixingTimeResult addresses the paper's discussion-section question —
// how many iterations suffice, and how does it relate to the chance of
// an unsuccessful swap — with empirical diagnostics per dataset.
type MixingTimeResult struct {
	Iterations int
	Rows       []MixingTimeRow
}

// RunMixingTime records one trajectory per (skewed-by-default) dataset.
func RunMixingTime(cfg Config) (*MixingTimeResult, error) {
	iterations := cfg.swapIterations() * 2
	if iterations < 24 {
		iterations = 24
	}
	res := &MixingTimeResult{Iterations: iterations}
	for _, spec := range cfg.specs() {
		dist, err := cfg.load(spec)
		if err != nil {
			return nil, err
		}
		el, err := havelhakimi.Generate(dist)
		if err != nil {
			return nil, err
		}
		tr := mixing.Record(el, mixing.Options{
			Iterations: iterations,
			Workers:    cfg.Workers,
			Seed:       rng.Mix64(cfg.Seed) ^ 0x317,
			Statistic:  mixing.Triangles,
		})
		row := MixingTimeRow{Dataset: spec.Name}
		row.RelaxationIters = mixing.RelaxationIterations(tr.Values, 0.05)
		row.Tau = mixing.IntegratedTime(tr.Values[row.RelaxationIters:])
		if len(tr.SwapStats) > 0 {
			first := tr.SwapStats[0]
			row.SwappedAfterOne = first.EverSwapped
			last := tr.SwapStats[len(tr.SwapStats)-1]
			if last.Attempts > 0 {
				row.SuccessRate = float64(last.Successes) / float64(last.Attempts)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the diagnostics table.
func (r *MixingTimeResult) Render(w io.Writer) {
	header(w, fmt.Sprintf("Mixing-time diagnostics — triangle trajectory from a Havel-Hakimi start (%d iterations)", r.Iterations))
	fmt.Fprintf(w, "%-12s %12s %8s %14s %16s\n", "dataset", "relaxation", "tau", "success rate", "swapped after 1")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %12d %8.2f %13.1f%% %15.1f%%\n",
			row.Dataset, row.RelaxationIters, row.Tau, row.SuccessRate*100, row.SwappedAfterOne*100)
	}
	fmt.Fprintln(w, "relaxation ≈ the paper's empirical 'steady state after ~10 iterations';")
	fmt.Fprintln(w, "success rate relates mixing speed to graph density/skew, per the paper's discussion.")
}
