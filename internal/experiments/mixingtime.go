package experiments

import (
	"fmt"
	"io"
	"time"

	"nullgraph/internal/converge"
	"nullgraph/internal/core"
	"nullgraph/internal/degseq"
	"nullgraph/internal/havelhakimi"
	"nullgraph/internal/metrics"
	"nullgraph/internal/mixing"
	"nullgraph/internal/rng"
)

// MixingTimeRow is one dataset's empirical mixing diagnostics.
type MixingTimeRow struct {
	Dataset string
	// RelaxationIters is the burn-in estimate of the triangle-count
	// trajectory from a Havel-Hakimi (maximally structured) start.
	RelaxationIters int
	// Tau is the integrated autocorrelation time of the statistic after
	// burn-in (samples one iteration apart).
	Tau float64
	// SuccessRate is the steady-state fraction of proposals committed.
	SuccessRate float64
	// SwappedAfterOne is the fraction of edges swapped in the first
	// iteration.
	SwappedAfterOne float64
}

// AdaptiveStopRow compares the fixed swap budget against the adaptive
// stopper on one dataset's end-to-end (Figure 5) generation workload.
type AdaptiveStopRow struct {
	Dataset string
	// FixedIters / AdaptiveIters are the completed swap iterations of
	// each policy (adaptive averaged over trials).
	FixedIters    int
	AdaptiveIters float64
	// FixedSwapMs / AdaptiveSwapMs are the swap-phase wall times in
	// milliseconds (best of trials, matching RunFig5's damping).
	FixedSwapMs    float64
	AdaptiveSwapMs float64
	// FixedAssort / AdaptiveAssort are the trial-mean degree
	// assortativity of the delivered graphs — the agreement check that
	// early stopping did not bias the ensemble.
	FixedAssort    float64
	AdaptiveAssort float64
	// Reason is the adaptive stop reason of the last trial
	// ("converged" or "budget").
	Reason string
}

// MixingTimeResult addresses the paper's discussion-section question —
// how many iterations suffice, and how does it relate to the chance of
// an unsuccessful swap — with empirical diagnostics per dataset, plus
// a fixed-vs-adaptive wall-clock comparison on the Figure 5 workload.
type MixingTimeResult struct {
	Iterations int
	Rows       []MixingTimeRow
	// FixedBudget is the fixed policy's iteration count; AdaptiveBudget
	// is the adaptive policy's hard cap.
	FixedBudget    int
	AdaptiveBudget int
	Adaptive       []AdaptiveStopRow
}

// RunMixingTime records one trajectory per (skewed-by-default) dataset.
func RunMixingTime(cfg Config) (*MixingTimeResult, error) {
	iterations := cfg.swapIterations() * 2
	if iterations < 24 {
		iterations = 24
	}
	res := &MixingTimeResult{
		Iterations:     iterations,
		FixedBudget:    cfg.swapIterations(),
		AdaptiveBudget: cfg.swapIterations() * 2,
	}
	for _, spec := range cfg.specs() {
		dist, err := cfg.load(spec)
		if err != nil {
			return nil, err
		}
		el, err := havelhakimi.Generate(dist)
		if err != nil {
			return nil, err
		}
		tr := mixing.Record(el, mixing.Options{
			Iterations: iterations,
			Workers:    cfg.Workers,
			Seed:       rng.Mix64(cfg.Seed) ^ 0x317,
			Statistic:  mixing.Triangles,
		})
		row := MixingTimeRow{Dataset: spec.Name}
		row.RelaxationIters = mixing.RelaxationIterations(tr.Values, 0.05)
		row.Tau = mixing.IntegratedTime(tr.Values[row.RelaxationIters:])
		if len(tr.SwapStats) > 0 {
			first := tr.SwapStats[0]
			row.SwappedAfterOne = first.EverSwapped
			last := tr.SwapStats[len(tr.SwapStats)-1]
			if last.Attempts > 0 {
				row.SuccessRate = float64(last.Successes) / float64(last.Attempts)
			}
		}
		res.Rows = append(res.Rows, row)

		adaptive, err := compareStopPolicies(cfg, spec.Name, dist, res.FixedBudget, res.AdaptiveBudget)
		if err != nil {
			return nil, err
		}
		res.Adaptive = append(res.Adaptive, adaptive)
	}
	return res, nil
}

// compareStopPolicies runs the Figure 5 end-to-end workload (full
// pipeline, all swap iterations) once per trial under each stopping
// policy and reports iterations, swap-phase wall time, and delivered
// assortativity. Seeds are shared pairwise so the fixed run and the
// adaptive run of a trial start from the same generated graph.
func compareStopPolicies(cfg Config, name string, dist *degseq.Distribution, fixedBudget, adaptiveBudget int) (AdaptiveStopRow, error) {
	row := AdaptiveStopRow{Dataset: name, FixedIters: fixedBudget}
	bestFixed, bestAdaptive := time.Hour, time.Hour
	for t := 0; t < cfg.trials(); t++ {
		seed := rng.Mix64(cfg.Seed^0x5ad) + uint64(t)

		fixed, err := core.FromDistribution(dist, core.Options{
			Workers: cfg.Workers, Seed: seed, SwapIterations: fixedBudget,
		})
		if err != nil {
			return row, fmt.Errorf("fixed stop on %s: %w", name, err)
		}
		if fixed.Phases.Swapping < bestFixed {
			bestFixed = fixed.Phases.Swapping
		}
		row.FixedAssort += metrics.Assortativity(fixed.Graph, cfg.Workers)

		// Growth 1.1 densifies the checkpoint schedule: the default 1.4
		// spacing cannot gather the six checkpoints the Geweke test
		// needs until iteration ~21, pushing the earliest stop past a
		// 16-scan fixed budget. Checkpoints are O(m) like iterations,
		// so density costs a constant factor, not a complexity class.
		adapt, err := core.FromDistribution(dist, core.Options{
			Workers: cfg.Workers, Seed: seed,
			StopPolicy: &converge.Policy{Budget: adaptiveBudget, Growth: 1.1},
		})
		if err != nil {
			return row, fmt.Errorf("adaptive stop on %s: %w", name, err)
		}
		if adapt.Phases.Swapping < bestAdaptive {
			bestAdaptive = adapt.Phases.Swapping
		}
		row.AdaptiveIters += float64(adapt.Stop.Iterations)
		row.AdaptiveAssort += metrics.Assortativity(adapt.Graph, cfg.Workers)
		row.Reason = adapt.Stop.Reason
	}
	n := float64(cfg.trials())
	row.AdaptiveIters /= n
	row.FixedAssort /= n
	row.AdaptiveAssort /= n
	row.FixedSwapMs = float64(bestFixed) / float64(time.Millisecond)
	row.AdaptiveSwapMs = float64(bestAdaptive) / float64(time.Millisecond)
	return row, nil
}

// Render prints the diagnostics table.
func (r *MixingTimeResult) Render(w io.Writer) {
	header(w, fmt.Sprintf("Mixing-time diagnostics — triangle trajectory from a Havel-Hakimi start (%d iterations)", r.Iterations))
	fmt.Fprintf(w, "%-12s %12s %8s %14s %16s\n", "dataset", "relaxation", "tau", "success rate", "swapped after 1")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %12d %8.2f %13.1f%% %15.1f%%\n",
			row.Dataset, row.RelaxationIters, row.Tau, row.SuccessRate*100, row.SwappedAfterOne*100)
	}
	fmt.Fprintln(w, "relaxation ≈ the paper's empirical 'steady state after ~10 iterations';")
	fmt.Fprintln(w, "success rate relates mixing speed to graph density/skew, per the paper's discussion.")

	header(w, fmt.Sprintf("Fixed (%d scans) vs adaptive stop (floor %d, budget %d, growth 1.1) — Figure 5 workload",
		r.FixedBudget, converge.DefaultFloor, r.AdaptiveBudget))
	fmt.Fprintf(w, "%-12s %11s %14s %11s %14s %9s %9s %10s\n",
		"dataset", "fixed iter", "fixed swap ms", "adapt iter", "adapt swap ms", "fixed r", "adapt r", "reason")
	for _, row := range r.Adaptive {
		fmt.Fprintf(w, "%-12s %11d %14.1f %11.1f %14.1f %9.4f %9.4f %10s\n",
			row.Dataset, row.FixedIters, row.FixedSwapMs, row.AdaptiveIters, row.AdaptiveSwapMs,
			row.FixedAssort, row.AdaptiveAssort, row.Reason)
	}
	fmt.Fprintln(w, "r = delivered degree assortativity (trial mean); matching r across policies is the")
	fmt.Fprintln(w, "agreement check that early stopping did not bias the delivered ensemble.")
}
