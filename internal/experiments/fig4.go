package experiments

import (
	"fmt"
	"io"

	"nullgraph/internal/degseq"
	"nullgraph/internal/metrics"
	"nullgraph/internal/probgen"
	"nullgraph/internal/rng"
	"nullgraph/internal/swap"
)

// Fig4Series is one method's L1 error curve versus swap iterations on
// one dataset.
type Fig4Series struct {
	Dataset string
	Method  Method
	// L1 holds the error at 0, 1, ..., Iterations swap iterations: the
	// pair-count-weighted L1 distance between the method's empirical
	// attachment matrix (averaged over trials) and the uniform-random
	// reference, in expected-edge units.
	L1 []float64
}

// Converged reports the first iteration at which the error drops within
// factor of its final value (a simple mixing-time readout).
func (s Fig4Series) Converged(factor float64) int {
	if len(s.L1) == 0 {
		return 0
	}
	final := s.L1[len(s.L1)-1]
	for it, v := range s.L1 {
		if v <= final*factor {
			return it
		}
	}
	return len(s.L1) - 1
}

// Fig4Result reproduces Figure 4: convergence of pairwise attachment
// probabilities toward the uniform-random reference as swap iterations
// accumulate.
type Fig4Result struct {
	Iterations int
	Trials     int
	Series     []Fig4Series
}

// RunFig4 runs every method's swap chain on the configured datasets,
// snapshotting the attachment matrix at every iteration.
func RunFig4(cfg Config) (*Fig4Result, error) {
	iterations := cfg.swapIterations()
	trials := cfg.trials()
	res := &Fig4Result{Iterations: iterations, Trials: trials}
	for _, spec := range cfg.specs() {
		dist, err := cfg.load(spec)
		if err != nil {
			return nil, err
		}
		// The reference needs less variance than the curves it anchors;
		// use a few times more samples than the per-method trials.
		baseSamples := 3 * trials
		if baseSamples < 6 {
			baseSamples = 6
		}
		base, err := baseAttachment(dist, cfg.Workers, cfg.Seed^0xba5e, baseSamples, 48)
		if err != nil {
			return nil, err
		}
		for _, method := range AllMethods() {
			series, err := mixingCurve(dist, method, base, cfg, iterations, trials)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", method, spec.Name, err)
			}
			series.Dataset = spec.Name
			res.Series = append(res.Series, series)
		}
	}
	return res, nil
}

// mixingCurve measures one method's L1 trajectory: attachment matrices
// are accumulated across trials at each iteration count, then compared
// to the base.
func mixingCurve(dist *degseq.Distribution, method Method, base *probgen.Matrix, cfg Config, iterations, trials int) (Fig4Series, error) {
	accs := make([]*metrics.AttachmentAccumulator, iterations+1)
	for i := range accs {
		accs[i] = metrics.NewAttachmentAccumulator(dist)
	}
	for t := 0; t < trials; t++ {
		el, err := generate(method, dist, cfg.Workers, rng.Mix64(cfg.Seed)^rng.Mix64(uint64(t)+uint64(len(method))*977))
		if err != nil {
			return Fig4Series{}, err
		}
		accs[0].Add(el)
		eng := swap.NewEngine(el, swap.Options{
			Workers: cfg.Workers,
			Seed:    rng.Mix64(cfg.Seed) + uint64(t)*13,
		})
		for it := 1; it <= iterations; it++ {
			eng.Step()
			accs[it].Add(el)
		}
		eng.Close()
	}
	counts := make([]int64, dist.NumClasses())
	for i, c := range dist.Classes {
		counts[i] = c.Count
	}
	series := Fig4Series{Method: method, L1: make([]float64, iterations+1)}
	for it := 0; it <= iterations; it++ {
		series.L1[it] = probgen.WeightedL1Distance(counts, accs[it].Matrix(), base)
	}
	return series, nil
}

// Render prints one row per (dataset, method) with the L1 trajectory.
func (r *Fig4Result) Render(w io.Writer) {
	header(w, fmt.Sprintf("Figure 4 — L1 error of pairwise attachment probabilities vs swap iterations (%d trials)", r.Trials))
	fmt.Fprintf(w, "%-12s %-16s", "dataset", "method")
	for it := 0; it <= r.Iterations; it++ {
		fmt.Fprintf(w, " %7s", fmt.Sprintf("it%d", it))
	}
	fmt.Fprintln(w)
	for _, s := range r.Series {
		fmt.Fprintf(w, "%-12s %-16s", s.Dataset, s.Method)
		for _, v := range s.L1 {
			fmt.Fprintf(w, " %7.3f", v)
		}
		fmt.Fprintln(w)
	}
}
