package experiments

import (
	"fmt"
	"io"
	"time"

	"nullgraph/internal/core"
	"nullgraph/internal/rng"
)

// Fig6Row is one dataset's per-phase cost of the paper's method.
type Fig6Row struct {
	Dataset string
	Phases  core.PhaseTimes
	Edges   int64
}

// Fig6Result reproduces Figure 6: average time spent in probability
// computation, edge generation and edge swapping.
type Fig6Result struct {
	Rows    []Fig6Row
	Average core.PhaseTimes
	// EdgeRate is aggregate generated edges per second of edge-
	// generation time across all instances (the paper reports ~1B
	// edges/s on its largest runs).
	EdgeRate float64
}

// RunFig6 runs the full pipeline (one swap iteration, matching Figure
// 5's convention) on every dataset and splits the wall time by phase.
func RunFig6(cfg Config) (*Fig6Result, error) {
	res := &Fig6Result{}
	var totalEdges int64
	var totalEdgeGen time.Duration
	for _, spec := range cfg.specs() {
		dist, err := cfg.load(spec)
		if err != nil {
			return nil, err
		}
		best := Fig6Row{Dataset: spec.Name, Phases: core.PhaseTimes{Probabilities: time.Hour}}
		for t := 0; t < cfg.trials(); t++ {
			out, err := core.FromDistribution(dist, core.Options{
				Workers:        cfg.Workers,
				Seed:           rng.Mix64(cfg.Seed) + uint64(t)*101,
				SwapIterations: 1,
			})
			if err != nil {
				return nil, fmt.Errorf("%s: %w", spec.Name, err)
			}
			if best.Phases.Total() == 0 || out.Phases.Total() < best.Phases.Total() {
				best.Phases = out.Phases
				best.Edges = int64(out.Graph.NumEdges())
			}
		}
		res.Rows = append(res.Rows, best)
		res.Average.Probabilities += best.Phases.Probabilities
		res.Average.EdgeGeneration += best.Phases.EdgeGeneration
		res.Average.Swapping += best.Phases.Swapping
		totalEdges += best.Edges
		totalEdgeGen += best.Phases.EdgeGeneration
	}
	if n := len(res.Rows); n > 0 {
		res.Average.Probabilities /= time.Duration(n)
		res.Average.EdgeGeneration /= time.Duration(n)
		res.Average.Swapping /= time.Duration(n)
	}
	if totalEdgeGen > 0 {
		res.EdgeRate = float64(totalEdges) / totalEdgeGen.Seconds()
	}
	return res, nil
}

// Render prints per-phase milliseconds.
func (r *Fig6Result) Render(w io.Writer) {
	header(w, "Figure 6 — per-phase execution time (ms)")
	fmt.Fprintf(w, "%-12s %9s %9s %9s %9s %12s\n", "dataset", "probs", "edgegen", "swap", "total", "edges")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %s %s %s %s %12d\n", row.Dataset,
			ms(row.Phases.Probabilities), ms(row.Phases.EdgeGeneration),
			ms(row.Phases.Swapping), ms(row.Phases.Total()), row.Edges)
	}
	fmt.Fprintf(w, "%-12s %s %s %s %s\n", "average",
		ms(r.Average.Probabilities), ms(r.Average.EdgeGeneration),
		ms(r.Average.Swapping), ms(r.Average.Total()))
	fmt.Fprintf(w, "aggregate edge generation rate: %.1f M edges/s\n", r.EdgeRate/1e6)
}
