package experiments

import (
	"fmt"
	"io"

	"nullgraph/internal/graph"
)

// Table1Row holds one dataset's published statistics alongside its
// analog's realized statistics.
type Table1Row struct {
	Name                string
	PublishedN          int64
	PublishedM          int64
	PublishedDMax       int64
	AnalogN             int64
	AnalogM             int64
	AnalogAvgDegree     float64
	AnalogDMax          int64
	AnalogUniqueDegrees int
}

// Table1Result reproduces Table I for the synthetic analogs.
type Table1Result struct {
	Rows []Table1Row
}

// RunTable1 builds every analog and tabulates its characteristics next
// to the published full-scale numbers.
func RunTable1(cfg Config) (*Table1Result, error) {
	res := &Table1Result{}
	for _, spec := range cfg.specs() {
		dist, err := cfg.load(spec)
		if err != nil {
			return nil, err
		}
		stats := graph.StatsFromDegrees(dist.ToDegrees(), int(dist.NumEdges()))
		res.Rows = append(res.Rows, Table1Row{
			Name:                spec.Name,
			PublishedN:          spec.FullN,
			PublishedM:          spec.FullM,
			PublishedDMax:       spec.FullDMax,
			AnalogN:             dist.NumVertices(),
			AnalogM:             dist.NumEdges(),
			AnalogAvgDegree:     stats.AvgDegree,
			AnalogDMax:          dist.MaxDegree(),
			AnalogUniqueDegrees: dist.NumClasses(),
		})
	}
	return res, nil
}

// Render prints the table in the paper's column order (n, m, d_avg,
// d_max, |D|) for the analogs, with the published sizes for reference.
func (r *Table1Result) Render(w io.Writer) {
	header(w, "Table I — test graph characteristics (synthetic analogs)")
	fmt.Fprintf(w, "%-12s %12s %12s | %10s %10s %8s %8s %6s\n",
		"Network", "publ. n", "publ. m", "n", "m", "d_avg", "d_max", "|D|")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %12d %12d | %10d %10d %8.2f %8d %6d\n",
			row.Name, row.PublishedN, row.PublishedM,
			row.AnalogN, row.AnalogM, row.AnalogAvgDegree, row.AnalogDMax, row.AnalogUniqueDegrees)
	}
}
