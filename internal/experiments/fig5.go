package experiments

import (
	"fmt"
	"io"
	"time"

	"nullgraph/internal/rng"
	"nullgraph/internal/swap"
)

// Fig5Cell is one (dataset, method) end-to-end wall time.
type Fig5Cell struct {
	Generation time.Duration
	Swap       time.Duration
}

// Total returns generation + one swap iteration.
func (c Fig5Cell) Total() time.Duration { return c.Generation + c.Swap }

// Fig5Result reproduces Figure 5: shared-memory end-to-end times for the
// various generators with a single double-edge swap iteration (the
// paper fixes one iteration "for consistency, as mixing time is
// graph-dependent").
type Fig5Result struct {
	Datasets []string
	Methods  []Method
	Cells    map[string]map[Method]Fig5Cell
}

// RunFig5 times each generator end to end (generation + 1 swap
// iteration), taking the best of cfg.trials() runs to damp scheduler
// noise.
func RunFig5(cfg Config) (*Fig5Result, error) {
	res := &Fig5Result{Methods: AllMethods(), Cells: map[string]map[Method]Fig5Cell{}}
	for _, spec := range cfg.specs() {
		dist, err := cfg.load(spec)
		if err != nil {
			return nil, err
		}
		res.Datasets = append(res.Datasets, spec.Name)
		res.Cells[spec.Name] = map[Method]Fig5Cell{}
		for _, method := range res.Methods {
			best := Fig5Cell{Generation: time.Hour, Swap: time.Hour}
			for t := 0; t < cfg.trials(); t++ {
				seed := rng.Mix64(cfg.Seed) + uint64(t)*librarySalt(method)
				start := time.Now()
				el, err := generate(method, dist, cfg.Workers, seed)
				if err != nil {
					return nil, fmt.Errorf("%s on %s: %w", method, spec.Name, err)
				}
				genTime := time.Since(start)
				start = time.Now()
				swap.Run(el, swap.Options{Iterations: 1, Workers: cfg.Workers, Seed: seed})
				swapTime := time.Since(start)
				if genTime+swapTime < best.Total() {
					best = Fig5Cell{Generation: genTime, Swap: swapTime}
				}
			}
			res.Cells[spec.Name][method] = best
		}
	}
	return res, nil
}

func librarySalt(m Method) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(m); i++ {
		h = (h ^ uint64(m[i])) * 1099511628211
	}
	return h | 1
}

// Render prints total milliseconds per (dataset, method).
func (r *Fig5Result) Render(w io.Writer) {
	header(w, "Figure 5 — end-to-end generation time, 1 swap iteration (ms)")
	fmt.Fprintf(w, "%-12s", "dataset")
	for _, m := range r.Methods {
		fmt.Fprintf(w, " %16s", m)
	}
	fmt.Fprintln(w)
	for _, d := range r.Datasets {
		fmt.Fprintf(w, "%-12s", d)
		for _, m := range r.Methods {
			fmt.Fprintf(w, " %16s", ms(r.Cells[d][m].Total()))
		}
		fmt.Fprintln(w)
	}
}
