package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"nullgraph/internal/datasets"
	"nullgraph/internal/havelhakimi"
	"nullgraph/internal/rng"
	"nullgraph/internal/swap"
)

// SwapScalePoint is one worker count's measurement on the LiveJournal
// analog.
type SwapScalePoint struct {
	Workers int
	// TimeThreeIterations is the wall time of 3 full swap iterations
	// (the paper's "successfully swap all edges" budget).
	TimeThreeIterations time.Duration
	// TimeOneIteration is one iteration's wall time.
	TimeOneIteration time.Duration
	// SwappedAfterOne is the fraction of edges swapped at least once
	// after a single iteration (the paper observes 99.9%... of
	// proposals succeeding on LiveJournal-like inputs).
	SwappedAfterOne float64
}

// SwapScaleResult reproduces the §VIII-C comparison: serial and parallel
// times to swap (nearly) all edges of the LiveJournal analog, against
// the numbers the paper quotes for itself and for Bhuiyan et al. [5].
type SwapScaleResult struct {
	Dataset string
	Edges   int
	Points  []SwapScalePoint
	// PaperSerialSeconds / PaperParallelSeconds are the paper's own
	// reported times (15 s serial, 3 s on 16 cores) for context in the
	// rendered report; the reproduced quantity is the speedup shape.
	PaperSerialSeconds   float64
	PaperParallelSeconds float64
}

// RunSwapScale measures swap throughput over a worker sweep.
func RunSwapScale(cfg Config) (*SwapScaleResult, error) {
	spec, err := datasets.ByName("LiveJournal")
	if err != nil {
		return nil, err
	}
	dist, err := cfg.load(spec)
	if err != nil {
		return nil, err
	}
	base, err := havelhakimi.Generate(dist)
	if err != nil {
		return nil, err
	}
	res := &SwapScaleResult{
		Dataset:              spec.Name,
		Edges:                base.NumEdges(),
		PaperSerialSeconds:   15,
		PaperParallelSeconds: 3,
	}
	maxWorkers := cfg.Workers
	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	for w := 1; w <= maxWorkers; w *= 2 {
		el := base.Clone()
		start := time.Now()
		r := swap.Run(el, swap.Options{
			Iterations: 3, Workers: w, Seed: rng.Mix64(cfg.Seed) + uint64(w),
			TrackSwapped: true,
		})
		elapsed := time.Since(start)
		point := SwapScalePoint{Workers: w, TimeThreeIterations: elapsed}
		if len(r.PerIteration) > 0 {
			point.SwappedAfterOne = r.PerIteration[0].EverSwapped
		}
		// One-iteration time measured separately on a fresh clone
		// without tracking overhead.
		el = base.Clone()
		start = time.Now()
		swap.Run(el, swap.Options{Iterations: 1, Workers: w, Seed: rng.Mix64(cfg.Seed) + uint64(w)})
		point.TimeOneIteration = time.Since(start)
		res.Points = append(res.Points, point)
		if w < maxWorkers && w*2 > maxWorkers {
			w = maxWorkers / 2 // ensure the final sweep point is maxWorkers
		}
	}
	return res, nil
}

// Speedup returns T(1)/T(p) for the 3-iteration measurement.
func (r *SwapScaleResult) Speedup() []float64 {
	if len(r.Points) == 0 {
		return nil
	}
	t1 := r.Points[0].TimeThreeIterations.Seconds()
	out := make([]float64, len(r.Points))
	for i, p := range r.Points {
		out[i] = t1 / p.TimeThreeIterations.Seconds()
	}
	return out
}

// Render prints the sweep.
func (r *SwapScaleResult) Render(w io.Writer) {
	header(w, fmt.Sprintf("§VIII-C — swap scaling on the %s analog (%d edges)", r.Dataset, r.Edges))
	fmt.Fprintf(w, "paper (full-size, 16-core Xeon): %.0f s serial / %.0f s parallel for 3 iterations\n",
		r.PaperSerialSeconds, r.PaperParallelSeconds)
	fmt.Fprintf(w, "%8s %14s %14s %10s %16s\n", "workers", "3 iters (ms)", "1 iter (ms)", "speedup", "swapped after 1")
	speedups := r.Speedup()
	for i, p := range r.Points {
		fmt.Fprintf(w, "%8d %14s %14s %10.2f %15.1f%%\n",
			p.Workers, ms(p.TimeThreeIterations), ms(p.TimeOneIteration),
			speedups[i], p.SwappedAfterOne*100)
	}
}
