package chunglu

import (
	"math"
	"slices"
	"testing"

	"nullgraph/internal/degseq"
)

func mustDist(t testing.TB, counts map[int64]int64) *degseq.Distribution {
	t.Helper()
	d, err := degseq.FromCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateOMEdgeCount(t *testing.T) {
	d := mustDist(t, map[int64]int64{2: 1000, 5: 100})
	el := GenerateOM(d, Options{Workers: 4, Seed: 1})
	if int64(el.NumEdges()) != d.NumEdges() {
		t.Errorf("edges = %d, want %d", el.NumEdges(), d.NumEdges())
	}
	if el.NumVertices != int(d.NumVertices()) {
		t.Errorf("vertices = %d, want %d", el.NumVertices, d.NumVertices())
	}
}

func TestGenerateOMDegreesMatchExpectation(t *testing.T) {
	// The O(m) model matches the distribution in expectation exactly —
	// check class-average realized degrees across trials.
	d := mustDist(t, map[int64]int64{2: 2000, 10: 200, 50: 10})
	offsets := d.VertexOffsets(1)
	classSum := make([]float64, d.NumClasses())
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		el := GenerateOM(d, Options{Workers: 4, Seed: uint64(trial)})
		deg := el.Degrees(2)
		for c := 0; c < d.NumClasses(); c++ {
			var s int64
			for v := offsets[c]; v < offsets[c+1]; v++ {
				s += deg[v]
			}
			classSum[c] += float64(s) / float64(d.Classes[c].Count)
		}
	}
	for c := 0; c < d.NumClasses(); c++ {
		got := classSum[c] / trials
		want := float64(d.Classes[c].Degree)
		if math.Abs(got-want) > 0.05*want+0.1 {
			t.Errorf("class %d: realized avg degree %v, want ~%v", c, got, want)
		}
	}
}

func TestGenerateOMSamplersAgree(t *testing.T) {
	// CDF and alias draws differ per seed but must agree in
	// distribution: compare class-average degrees.
	d := mustDist(t, map[int64]int64{1: 3000, 20: 100})
	offsets := d.VertexOffsets(1)
	avgTop := func(kind SamplerKind) float64 {
		var sum float64
		const trials = 15
		for trial := 0; trial < trials; trial++ {
			el := GenerateOM(d, Options{Workers: 2, Seed: uint64(trial), Sampler: kind})
			deg := el.Degrees(2)
			var s int64
			for v := offsets[1]; v < offsets[2]; v++ {
				s += deg[v]
			}
			sum += float64(s) / float64(d.Classes[1].Count)
		}
		return sum / trials
	}
	cdf, alias := avgTop(CDF), avgTop(Alias)
	if math.Abs(cdf-alias) > 0.08*cdf {
		t.Errorf("samplers disagree on top-class degree: CDF %v vs alias %v", cdf, alias)
	}
}

func TestGenerateOMDeterministic(t *testing.T) {
	d := mustDist(t, map[int64]int64{3: 500})
	a := GenerateOM(d, Options{Workers: 3, Seed: 5})
	b := GenerateOM(d, Options{Workers: 3, Seed: 5})
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("same (seed,workers) diverged at %d", i)
		}
	}
}

func TestGenerateOMProducesMultiEdgesOnSkew(t *testing.T) {
	// The motivating failure: skewed weights make multi-edges/loops
	// likely. A 2-vertex hub pair with large degree must collide.
	d := mustDist(t, map[int64]int64{1: 100, 80: 2})
	el := GenerateOM(d, Options{Workers: 2, Seed: 3})
	rep := el.CheckSimplicity()
	if rep.IsSimple() {
		t.Error("O(m) model on extreme skew produced a simple graph (statistically near-impossible)")
	}
}

func TestGenerateErased(t *testing.T) {
	d := mustDist(t, map[int64]int64{1: 100, 80: 2})
	el, rep := GenerateErased(d, Options{Workers: 2, Seed: 3})
	if rep.IsSimple() {
		t.Error("erasure report claims nothing was erased on extreme skew")
	}
	if got := el.CheckSimplicity(); !got.IsSimple() {
		t.Errorf("erased output not simple: %+v", got)
	}
	// Erasure strictly reduces edges below m.
	if int64(el.NumEdges()) >= d.NumEdges() {
		t.Errorf("erased edges %d, want < %d", el.NumEdges(), d.NumEdges())
	}
}

func TestGenerateSimplified(t *testing.T) {
	// Skewed enough that hub-hub collisions are certain, but with ample
	// leaf capacity so the realized sequence stays simple-graphical —
	// unlike the {1:100, 80:2} fixture above, whose realized hubs
	// exceed what Erdős–Gallai allows and can never fully simplify.
	d := mustDist(t, map[int64]int64{1: 400, 40: 6})
	raw := GenerateOM(d, Options{Workers: 2, Seed: 3})
	el, res := GenerateSimplified(d, Options{Workers: 2, Seed: 3})
	if res.InitialDefects == 0 {
		t.Fatal("extreme skew produced no defects to simplify")
	}
	if !res.Simple {
		t.Fatalf("simplification left %d residual defects", res.ResidualDefects)
	}
	if got := el.CheckSimplicity(); !got.IsSimple() {
		t.Errorf("simplified output not simple: %+v", got)
	}
	// Unlike erasure, simplification preserves the realized degree
	// sequence (and hence the edge count) of the O(m) draw exactly.
	if int64(el.NumEdges()) != d.NumEdges() {
		t.Errorf("simplified edges %d, want %d", el.NumEdges(), d.NumEdges())
	}
	if got, want := el.Degrees(1), raw.Degrees(1); !slices.Equal(got, want) {
		t.Error("simplification changed the realized degree sequence")
	}
	if res.Swaps > res.InitialDefects {
		t.Errorf("swap count %d exceeds the Sjöstrand bound of %d", res.Swaps, res.InitialDefects)
	}
}

func TestGenerateBernoulliSimpleAndSized(t *testing.T) {
	d := mustDist(t, map[int64]int64{3: 2000, 15: 100})
	el, err := GenerateBernoulli(d, Options{Workers: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if rep := el.CheckSimplicity(); !rep.IsSimple() {
		t.Fatalf("Bernoulli output not simple: %+v", rep)
	}
	// Edge count should be within a few percent of m for a mild
	// distribution (Chung-Lu bias is small when w_i w_j << 2m).
	m := float64(d.NumEdges())
	got := float64(el.NumEdges())
	if math.Abs(got-m) > 0.1*m {
		t.Errorf("Bernoulli edges %v, want within 10%% of %v", got, m)
	}
}

func TestGenerateBernoulliUnderestimatesSkewedHubs(t *testing.T) {
	// The documented bias: with P clamped at 1, hub degrees fall short.
	d := mustDist(t, map[int64]int64{1: 200, 150: 2})
	offsets := d.VertexOffsets(1)
	var hubSum float64
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		el, err := GenerateBernoulli(d, Options{Workers: 2, Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		deg := el.Degrees(1)
		for v := offsets[1]; v < offsets[2]; v++ {
			hubSum += float64(deg[v])
		}
	}
	hubAvg := hubSum / (2 * trials)
	if hubAvg >= 150 {
		t.Errorf("hub average degree %v, expected shortfall below 150", hubAvg)
	}
}

func TestEmptyDistribution(t *testing.T) {
	d := &degseq.Distribution{}
	el := GenerateOM(d, Options{Seed: 1})
	if el.NumEdges() != 0 || el.NumVertices != 0 {
		t.Errorf("empty OM: %+v", el)
	}
}

func BenchmarkGenerateOMCDF(b *testing.B)   { benchOM(b, CDF) }
func BenchmarkGenerateOMAlias(b *testing.B) { benchOM(b, Alias) }

func benchOM(b *testing.B, kind SamplerKind) {
	d, err := degseq.SamplePowerLaw(degseq.PowerLawConfig{
		NumVertices: 500000, MinDegree: 2, MaxDegree: 5000, Gamma: 2.2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		el := GenerateOM(d, Options{Seed: uint64(i), Sampler: kind})
		b.SetBytes(int64(el.NumEdges()) * 8)
	}
}
