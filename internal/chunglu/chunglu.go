// Package chunglu implements the three Chung-Lu baselines the paper
// evaluates against:
//
//   - the O(m) model: 2m biased draws with replacement from the
//     degree-weighted vertex list, paired into m edges — a loopy
//     multigraph whose degrees match the target in expectation;
//   - the erased model ("O(m) simple"): the O(m) model with self-loops
//     and duplicate edges discarded, which biases the output degree
//     distribution downward (the error of Figure 2);
//   - the Bernoulli model ("O(n²) edgeskip"): edge-skipping generation
//     with the naive pairwise probabilities min(1, w_i·w_j/2m) —
//     guaranteed simple, biased for skewed distributions.
//
// A fourth variant, GenerateSimplified, replaces the erased model's
// edge deletion with degree-preserving Sjöstrand targeted swaps
// (internal/simplify), fixing the "swaps eventually simplify" hope the
// O(m) output used to rely on.
//
// Per the paper's timing analysis, the O(m) models sample from "a
// weighted list, requiring O(log(n)) time for a binary search for each
// sampled vertex"; that CDF sampler is the default here, with Walker's
// O(1) alias method available as an ablation.
package chunglu

import (
	"nullgraph/internal/degseq"
	"nullgraph/internal/edgeskip"
	"nullgraph/internal/graph"
	"nullgraph/internal/par"
	"nullgraph/internal/probgen"
	"nullgraph/internal/rng"
	"nullgraph/internal/simplify"
)

// SamplerKind selects how the O(m) model draws weighted vertices.
type SamplerKind int

const (
	// CDF uses binary search over prefix sums — O(log n) per draw, the
	// structure the paper's baselines use.
	CDF SamplerKind = iota
	// Alias uses Walker's alias method — O(1) per draw.
	Alias
)

// Options configures the baseline generators.
type Options struct {
	// Workers is the parallel width; <= 0 means GOMAXPROCS.
	Workers int
	// Seed fixes the output for a given worker count.
	Seed uint64
	// Sampler selects the weighted sampling structure for the O(m)
	// model (ignored by the Bernoulli model).
	Sampler SamplerKind
}

// vertexWeights expands the class layout into per-vertex degree weights,
// ordered the same way every generator orders vertex IDs.
func vertexWeights(dist *degseq.Distribution) []float64 {
	w := make([]float64, 0, dist.NumVertices())
	for _, c := range dist.Classes {
		for i := int64(0); i < c.Count; i++ {
			w = append(w, float64(c.Degree))
		}
	}
	return w
}

func newSampler(kind SamplerKind, weights []float64) rng.WeightedSampler {
	if kind == Alias {
		return rng.NewAliasSampler(weights)
	}
	return rng.NewCDFSampler(weights)
}

// GenerateOM draws the O(m) Chung-Lu multigraph: m = ⌊Σd_i·n_i / 2⌋
// edges, each endpoint an independent degree-biased draw. The result
// generally contains self-loops and multi-edges. Embarrassingly
// parallel; deterministic per (seed, workers).
func GenerateOM(dist *degseq.Distribution, opt Options) *graph.EdgeList {
	p := par.Workers(opt.Workers)
	n := dist.NumVertices()
	m := dist.NumEdges()
	edges := make([]graph.Edge, m)
	if m == 0 {
		return graph.NewEdgeList(edges, int(n))
	}
	sampler := newSampler(opt.Sampler, vertexWeights(dist))
	par.ForRange(int(m), p, func(w int, r par.Range) {
		src := rng.New(rng.Mix64(opt.Seed) ^ rng.Mix64(uint64(w)+0xc0ffee))
		for i := r.Begin; i < r.End; i++ {
			edges[i] = graph.Edge{
				U: int32(sampler.Sample(src)),
				V: int32(sampler.Sample(src)),
			}
		}
	})
	return graph.NewEdgeList(edges, int(n))
}

// GenerateErased draws the O(m) model and erases self-loops and
// duplicate edges, returning the simple graph and the report of what
// was removed.
func GenerateErased(dist *degseq.Distribution, opt Options) (*graph.EdgeList, graph.Simplicity) {
	return GenerateOM(dist, opt).Simplify()
}

// GenerateSimplified draws the O(m) model and drives it to a simple
// graph with Sjöstrand targeted swaps (internal/simplify). Unlike
// GenerateErased, which discards every defective edge and biases the
// output degree distribution downward, this preserves the realized
// degree sequence exactly; the returned Result reports the defect and
// swap counts, with Result.Simple false only when the realized
// sequence admits no simple graph at all.
func GenerateSimplified(dist *degseq.Distribution, opt Options) (*graph.EdgeList, simplify.Result) {
	el := GenerateOM(dist, opt)
	return el, simplify.Run(el, opt.Seed)
}

// GenerateBernoulli draws the Bernoulli ("O(n²) edgeskip") Chung-Lu
// model: every vertex pair is an edge independently with probability
// min(1, w_u·w_v/2m), realized in O(m) work via edge-skipping over
// degree-class spaces. Output is simple by construction.
func GenerateBernoulli(dist *degseq.Distribution, opt Options) (*graph.EdgeList, error) {
	m := probgen.ChungLu(dist)
	return edgeskip.Generate(dist, m, edgeskip.Options{Workers: opt.Workers, Seed: opt.Seed})
}
