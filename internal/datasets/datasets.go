// Package datasets provides deterministic synthetic stand-ins for the
// paper's Table I test graphs. The originals are SNAP / WebGraph /
// DBPedia corpora that are not redistributable here; every experiment in
// the paper consumes only a graph's *degree distribution*, so each
// stand-in is a truncated discrete power law calibrated to the
// original's published shape: vertex count, average degree and maximum
// degree (the quantities Table I reports), with the exponent solved
// numerically to hit the average degree. A scale factor shrinks vertex
// counts (and proportionally the degree cutoff) so the largest instances
// fit on a development machine; the skew — the property all the
// phenomena under study depend on — is preserved. See DESIGN.md §4.
package datasets

import (
	"fmt"
	"math"

	"nullgraph/internal/degseq"
)

// Spec describes one Table I graph: the published full-size statistics
// and the shape parameters of its synthetic analog.
type Spec struct {
	// Name as in Table I.
	Name string
	// FullN, FullM, FullDMax are the published statistics of the real
	// dataset (vertices, edges, max degree).
	FullN    int64
	FullM    int64
	FullDMax int64
	// MinDegree of the synthetic power law (raised for dense graphs so
	// the average is reachable at a sane exponent).
	MinDegree int64
	// Skewed marks the four instances the paper calls "extremely
	// skewed" (the quality-comparison set); the other four are the
	// scalability set.
	Skewed bool
}

// AvgDegree returns the published average degree 2m/n.
func (s Spec) AvgDegree() float64 { return 2 * float64(s.FullM) / float64(s.FullN) }

// Table1 lists the eight test graphs in the paper's order.
func Table1() []Spec {
	return []Spec{
		{Name: "Meso", FullN: 1800, FullM: 3100, FullDMax: 401, MinDegree: 1, Skewed: true},
		{Name: "as20", FullN: 6500, FullM: 12500, FullDMax: 1500, MinDegree: 1, Skewed: true},
		{Name: "WikiTalk", FullN: 2_400_000, FullM: 4_700_000, FullDMax: 100_000, MinDegree: 1, Skewed: true},
		{Name: "DBPedia", FullN: 6_700_000, FullM: 193_000_000, FullDMax: 1_000_000, MinDegree: 4, Skewed: true},
		{Name: "LiveJournal", FullN: 4_100_000, FullM: 27_000_000, FullDMax: 15_000, MinDegree: 1, Skewed: false},
		{Name: "Friendster", FullN: 40_000_000, FullM: 1_800_000_000, FullDMax: 5_200, MinDegree: 8, Skewed: false},
		{Name: "Twitter", FullN: 39_000_000, FullM: 1_400_000_000, FullDMax: 3_000_000, MinDegree: 6, Skewed: false},
		{Name: "uk-2005", FullN: 30_000_000, FullM: 728_000_000, FullDMax: 1_700_000, MinDegree: 4, Skewed: false},
	}
}

// ByName returns the spec with the given Table I name.
func ByName(name string) (Spec, error) {
	for _, s := range Table1() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("datasets: unknown dataset %q", name)
}

// LoadOptions controls analog construction.
type LoadOptions struct {
	// MaxVertices caps the analog's vertex count; full-size specs are
	// scaled down to it proportionally (degree cutoff shrinks with the
	// same factor, floored at 64). <= 0 means 150_000, which keeps the
	// largest analog's edge count in the low millions.
	MaxVertices int64
	// Seed drives the degree draw.
	Seed uint64
}

func (o LoadOptions) maxVertices() int64 {
	if o.MaxVertices <= 0 {
		return 150_000
	}
	return o.MaxVertices
}

// Load builds the scaled synthetic degree distribution for a spec.
func Load(s Spec, opt LoadOptions) (*degseq.Distribution, error) {
	n := s.FullN
	dmax := s.FullDMax
	if limit := opt.maxVertices(); n > limit {
		scale := float64(limit) / float64(n)
		n = limit
		dmax = int64(float64(dmax) * scale)
		// The cutoff must stay well above the average degree or the
		// truncated power law cannot reproduce the graph's density.
		floor := int64(8 * s.AvgDegree())
		if floor < 64 {
			floor = 64
		}
		if dmax < floor {
			dmax = floor
		}
	}
	if dmax >= n {
		dmax = n - 1
	}
	minDeg := s.MinDegree
	if minDeg >= dmax {
		minDeg = 1
	}
	gamma, err := calibrateGamma(minDeg, dmax, s.AvgDegree())
	for err != nil && minDeg < dmax/4 {
		// Density unreachable even at the flattest exponent: thicken the
		// bottom of the distribution and retry.
		minDeg *= 2
		gamma, err = calibrateGamma(minDeg, dmax, s.AvgDegree())
	}
	if err != nil {
		return nil, fmt.Errorf("datasets: %s: %w", s.Name, err)
	}
	return degseq.SamplePowerLaw(degseq.PowerLawConfig{
		NumVertices: n,
		MinDegree:   minDeg,
		MaxDegree:   dmax,
		Gamma:       gamma,
		Seed:        opt.Seed ^ hashName(s.Name),
	})
}

// LoadAll builds every Table I analog with shared options.
func LoadAll(opt LoadOptions) (map[string]*degseq.Distribution, error) {
	out := make(map[string]*degseq.Distribution, 8)
	for _, s := range Table1() {
		d, err := Load(s, opt)
		if err != nil {
			return nil, err
		}
		out[s.Name] = d
	}
	return out, nil
}

func hashName(name string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// truncatedPowerLawMean returns E[d] for P(d) ∝ d^-gamma on [lo, hi].
func truncatedPowerLawMean(lo, hi int64, gamma float64) float64 {
	var num, den float64
	for d := lo; d <= hi; d++ {
		w := math.Pow(float64(d), -gamma)
		num += float64(d) * w
		den += w
	}
	return num / den
}

// calibrateGamma solves truncatedPowerLawMean(lo, hi, gamma) = target by
// bisection (the mean is strictly decreasing in gamma).
func calibrateGamma(lo, hi int64, target float64) (float64, error) {
	const gLo, gHi = 1.01, 6.0
	meanAtLo := truncatedPowerLawMean(lo, hi, gLo)
	meanAtHi := truncatedPowerLawMean(lo, hi, gHi)
	if target > meanAtLo {
		return 0, fmt.Errorf("average degree %.1f unreachable: max %.1f at gamma=%.2f (raise MinDegree)", target, meanAtLo, gLo)
	}
	if target < meanAtHi {
		// Lighter than the lightest representable tail; use the
		// steepest exponent rather than failing — the analog just ends
		// slightly denser than the original.
		return gHi, nil
	}
	a, b := gLo, gHi
	for iter := 0; iter < 80; iter++ {
		mid := (a + b) / 2
		if truncatedPowerLawMean(lo, hi, mid) > target {
			a = mid
		} else {
			b = mid
		}
	}
	return (a + b) / 2, nil
}
