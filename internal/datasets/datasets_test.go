package datasets

import (
	"math"
	"testing"
)

func TestTable1Complete(t *testing.T) {
	specs := Table1()
	if len(specs) != 8 {
		t.Fatalf("Table1 has %d entries, want 8", len(specs))
	}
	names := map[string]bool{}
	skewed := 0
	for _, s := range specs {
		if names[s.Name] {
			t.Errorf("duplicate dataset %q", s.Name)
		}
		names[s.Name] = true
		if s.FullN <= 0 || s.FullM <= 0 || s.FullDMax <= 0 {
			t.Errorf("%s: non-positive published stats %+v", s.Name, s)
		}
		if s.Skewed {
			skewed++
		}
	}
	if skewed != 4 {
		t.Errorf("%d skewed instances, want 4 (the paper's quality set)", skewed)
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("as20")
	if err != nil || s.Name != "as20" {
		t.Errorf("ByName(as20) = %+v, %v", s, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestLoadSmallInstancesFullSize(t *testing.T) {
	// Meso and as20 are below the default cap and load at full n.
	for _, name := range []string{"Meso", "as20"} {
		s, _ := ByName(name)
		d, err := Load(s, LoadOptions{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.NumVertices() != s.FullN {
			t.Errorf("%s: vertices = %d, want %d", name, d.NumVertices(), s.FullN)
		}
		// Average degree within 15% of published.
		got := 2 * float64(d.NumEdges()) / float64(d.NumVertices())
		want := s.AvgDegree()
		if math.Abs(got-want) > 0.15*want {
			t.Errorf("%s: avg degree %v, want ~%v", name, got, want)
		}
		// Max degree near the published cutoff.
		if d.MaxDegree() < s.FullDMax*8/10 {
			t.Errorf("%s: dmax = %d, want near %d", name, d.MaxDegree(), s.FullDMax)
		}
		if !d.IsGraphical() {
			t.Errorf("%s: not graphical", name)
		}
	}
}

func TestLoadLargeInstancesScaled(t *testing.T) {
	s, _ := ByName("Friendster")
	d, err := Load(s, LoadOptions{MaxVertices: 50_000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumVertices() != 50_000 {
		t.Errorf("vertices = %d, want 50000", d.NumVertices())
	}
	got := 2 * float64(d.NumEdges()) / float64(d.NumVertices())
	want := s.AvgDegree()
	if math.Abs(got-want) > 0.2*want {
		t.Errorf("avg degree %v, want ~%v (skew preserved under scaling)", got, want)
	}
}

func TestLoadAll(t *testing.T) {
	all, err := LoadAll(LoadOptions{MaxVertices: 20_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 8 {
		t.Fatalf("LoadAll returned %d instances", len(all))
	}
	for name, d := range all {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if !d.IsGraphical() {
			t.Errorf("%s: not graphical", name)
		}
	}
}

func TestLoadDeterministic(t *testing.T) {
	s, _ := ByName("WikiTalk")
	a, err := Load(s, LoadOptions{MaxVertices: 10_000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load(s, LoadOptions{MaxVertices: 10_000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Classes) != len(b.Classes) {
		t.Fatal("same seed, different class structure")
	}
	for i := range a.Classes {
		if a.Classes[i] != b.Classes[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestDatasetsDistinct(t *testing.T) {
	// Different datasets must not collapse to the same distribution
	// (the per-name seed salt).
	all, err := LoadAll(LoadOptions{MaxVertices: 10_000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	lj, fr := all["LiveJournal"], all["Friendster"]
	if lj.NumEdges() == fr.NumEdges() && lj.NumClasses() == fr.NumClasses() {
		t.Error("LiveJournal and Friendster analogs look identical")
	}
}

func TestCalibrateGamma(t *testing.T) {
	g, err := calibrateGamma(1, 1000, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	if got := truncatedPowerLawMean(1, 1000, g); math.Abs(got-4.0) > 0.01 {
		t.Errorf("calibrated mean %v, want 4.0", got)
	}
	// Unreachable average errors out.
	if _, err := calibrateGamma(1, 10, 9.9); err == nil {
		t.Error("impossible average accepted")
	}
	// Very light target clamps to steepest exponent.
	g, err = calibrateGamma(2, 1000, 1.9)
	if err != nil {
		t.Fatal(err)
	}
	if g != 6.0 {
		t.Errorf("light-tail clamp gamma = %v, want 6.0", g)
	}
}
