// Package atomicfile writes files atomically: content goes to a
// temporary file in the destination's directory, is fsynced, and only
// then renamed over the destination. A crash, SIGKILL, watchdog exit,
// or write error at any point leaves either the old file or no file —
// never a truncated one.
//
// The CLIs use it for every file they save, so their hard-timeout and
// signal paths can never leave a partial binary edge list behind for
// graph.ReadEdgeListBinary (or any other reader) to choke on later.
package atomicfile

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Write atomically replaces path with the bytes produced by write.
//
// The content is staged in a hidden temp file next to path (same
// filesystem, so the final rename is atomic), flushed with fsync, and
// renamed over path only after every byte is durably on disk; the
// directory is then fsynced (best-effort) so the rename itself survives
// a crash. If write returns an error, or any syscall fails, the temp
// file is removed and path is left untouched.
//
// write receives a plain *os.File-backed io.Writer; callers that batch
// small writes should wrap it in a bufio.Writer and flush before
// returning (the library's Write* helpers already do).
func Write(path string, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicfile: staging %s: %w", path, err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	// CreateTemp's 0600 is right for a private staging file but wrong
	// for the published one; match os.Create's default before the
	// rename makes it visible.
	if err = f.Chmod(0o644); err != nil {
		return fmt.Errorf("atomicfile: chmod %s: %w", tmp, err)
	}
	if err = write(f); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("atomicfile: fsync %s: %w", tmp, err)
	}
	if err = f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomicfile: close %s: %w", tmp, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomicfile: publish %s: %w", path, err)
	}
	// Make the rename durable. Failure here is not worth failing the
	// run over: the file is already complete and visible, only its
	// directory entry might not survive an immediate power loss.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// WriteTo writes to w when it is non-nil (the caller's stdout path), or
// atomically to path otherwise — the shape every CLI save path has.
func WriteTo(w io.Writer, path string, write func(w io.Writer) error) error {
	if w != nil {
		return write(w)
	}
	return Write(path, write)
}
