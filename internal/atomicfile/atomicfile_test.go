package atomicfile

import (
	"bytes"
	"errors"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func readDirNames(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

func TestWriteSuccess(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	want := []byte("hello atomic world")
	if err := Write(path, func(w io.Writer) error {
		_, err := w.Write(want)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("content mismatch: %q", got)
	}
	if names := readDirNames(t, dir); len(names) != 1 {
		t.Fatalf("staging leftovers: %v", names)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o644 {
		t.Fatalf("published mode %v, want 0644", info.Mode().Perm())
	}
}

// TestWriteErrorLeavesTargetUntouched: a mid-write failure must neither
// create the target nor clobber a pre-existing one, and must clean up
// its staging file.
func TestWriteErrorLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	old := []byte("previous complete output")
	if err := os.WriteFile(path, old, 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	err := Write(path, func(w io.Writer) error {
		if _, werr := w.Write([]byte("partial gar")); werr != nil {
			return werr
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want injected error back, got %v", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if !bytes.Equal(got, old) {
		t.Fatalf("target clobbered by failed write: %q", got)
	}
	if names := readDirNames(t, dir); len(names) != 1 {
		t.Fatalf("staging leftovers after failure: %v", names)
	}
}

func TestWriteToStdoutPath(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTo(&buf, "", func(w io.Writer) error {
		_, err := io.WriteString(w, "to stdout")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "to stdout" {
		t.Fatalf("got %q", buf.String())
	}
}

// TestKillMidWriteLeavesNoPartialTarget is the satellite's lock: a
// subprocess is SIGKILLed while streaming into an atomicfile.Write —
// the moral equivalent of the CLIs' hard watchdog or a kill -9 mid-save
// — and the target path must afterwards either not exist or (when it
// pre-existed) hold its old bytes, never a truncated new file.
func TestKillMidWriteLeavesNoPartialTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	target := filepath.Join(dir, "graph.bin")
	old := []byte("complete old graph file")
	if err := os.WriteFile(target, old, 0o644); err != nil {
		t.Fatal(err)
	}
	ready := filepath.Join(dir, "ready")

	cmd := exec.Command(os.Args[0], "-test.run=TestHelperKillMidWrite$", "-test.v")
	cmd.Env = append(os.Environ(),
		"ATOMICFILE_KILL_HELPER=1",
		"ATOMICFILE_TARGET="+target,
		"ATOMICFILE_READY="+ready,
	)
	var out strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait until the helper has provably written payload bytes into its
	// staging file, then kill it cold.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(ready); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("helper never signalled readiness; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // expected to report the kill; the assertions below are the test

	got, err := os.ReadFile(target)
	if err != nil {
		t.Fatalf("target unreadable after kill: %v", err)
	}
	if !bytes.Equal(got, old) {
		t.Fatalf("kill mid-write corrupted the target: got %d bytes, want the %d old bytes", len(got), len(old))
	}
}

// TestHelperKillMidWrite is the subprocess body of the kill test: it
// streams payload into an atomic write forever (signalling once bytes
// are in flight) and is killed by the parent mid-stream.
func TestHelperKillMidWrite(t *testing.T) {
	if os.Getenv("ATOMICFILE_KILL_HELPER") != "1" {
		t.Skip("helper process for TestKillMidWriteLeavesNoPartialTarget")
	}
	target := os.Getenv("ATOMICFILE_TARGET")
	ready := os.Getenv("ATOMICFILE_READY")
	chunk := bytes.Repeat([]byte{0xAB}, 1<<12)
	err := Write(target, func(w io.Writer) error {
		if _, err := w.Write(chunk); err != nil {
			return err
		}
		if err := os.WriteFile(ready, nil, 0o644); err != nil {
			return err
		}
		for { // stream until killed
			if _, err := w.Write(chunk); err != nil {
				return err
			}
			time.Sleep(2 * time.Millisecond)
		}
	})
	// Only reachable if the parent failed to kill us; surface the state.
	t.Fatalf("helper survived: write returned %v", err)
}
