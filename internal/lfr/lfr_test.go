package lfr

import (
	"math"
	"testing"

	"nullgraph/internal/core"
	"nullgraph/internal/graph"
)

func baseConfig() Config {
	return Config{
		NumVertices:    3000,
		DegreeGamma:    2.2,
		MinDegree:      3,
		MaxDegree:      60,
		CommunityGamma: 1.8,
		MinCommunity:   30,
		MaxCommunity:   300,
		Mu:             0.3,
		SwapIterations: 3,
		Workers:        4,
		Seed:           42,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := baseConfig().Validate(); err != nil {
		t.Fatalf("base config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.NumVertices = 0 },
		func(c *Config) { c.Mu = -0.1 },
		func(c *Config) { c.Mu = 1.1 },
		func(c *Config) { c.MinDegree = 0 },
		func(c *Config) { c.MaxDegree = 1 },
		func(c *Config) { c.MinCommunity = 1 },
		func(c *Config) { c.MaxCommunity = 10 },
		func(c *Config) { c.MaxCommunity = 99999 },
		func(c *Config) { c.DegreeGamma = 0 },
		func(c *Config) { c.MaxDegree = 3000 },
	}
	for i, mutate := range mutations {
		c := baseConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, c)
		}
	}
}

func TestGenerateBasics(t *testing.T) {
	res, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep := res.Graph.CheckSimplicity(); !rep.IsSimple() {
		t.Fatalf("LFR output not simple: %+v", rep)
	}
	if res.Graph.NumVertices != 3000 {
		t.Errorf("vertices = %d", res.Graph.NumVertices)
	}
	// Every vertex in exactly one community.
	seen := make([]int, 3000)
	for _, comm := range res.Communities {
		if len(comm) == 0 {
			t.Error("empty community")
		}
		for _, v := range comm {
			seen[v]++
		}
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("vertex %d in %d communities", v, c)
		}
	}
	// Community sizes within the configured range (last may be trimmed
	// or folded, allow slack up to max+min).
	for _, comm := range res.Communities {
		if int64(len(comm)) > baseConfig().MaxCommunity+baseConfig().MinCommunity {
			t.Errorf("community of size %d exceeds range", len(comm))
		}
	}
}

func TestGenerateMixingParameter(t *testing.T) {
	for _, mu := range []float64{0.1, 0.5} {
		cfg := baseConfig()
		cfg.Mu = mu
		res, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Observed mixing within a tolerant band: duplicates erased and
		// parity repairs shift it slightly.
		if math.Abs(res.ObservedMu-mu) > 0.12 {
			t.Errorf("mu=%v: observed %v", mu, res.ObservedMu)
		}
	}
}

func TestGenerateDegreesApproximateTarget(t *testing.T) {
	cfg := baseConfig()
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	deg := res.Graph.Degrees(2)
	var targetSum, gotSum float64
	for v := range deg {
		targetSum += float64(res.Degrees[v])
		gotSum += float64(deg[v])
	}
	// Allow a several-percent shortfall for drops/duplicates/residuals.
	if gotSum < 0.85*targetSum || gotSum > 1.05*targetSum {
		t.Errorf("total degree %v vs target %v", gotSum, targetSum)
	}
}

func TestGenerateMuExtremes(t *testing.T) {
	// Mu = 0: (almost) no cross-community edges.
	cfg := baseConfig()
	cfg.Mu = 0
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ObservedMu > 0.02 {
		t.Errorf("mu=0: observed %v", res.ObservedMu)
	}
	// Mu = 1: no intra-community structure is enforced; observed should
	// be high (random graph crosses communities most of the time).
	cfg.Mu = 1
	res, err = Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ObservedMu < 0.7 {
		t.Errorf("mu=1: observed %v", res.ObservedMu)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	// Exact reproducibility needs Workers=1 (parallel swaps race
	// benignly; see swap.Options.Seed).
	cfg := baseConfig()
	cfg.Workers = 1
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Graph.EqualAsSets(b.Graph) {
		t.Error("same config+seed gave different graphs")
	}
}

func TestGenerateLayeredLambdaValidation(t *testing.T) {
	deg := []int64{2, 2, 2, 2}
	groups := [][]int32{{0, 1, 2, 3}}
	if _, err := GenerateLayered(deg, []Layer{{Groups: groups, Lambda: 0.5}}, core.Options{}); err == nil {
		t.Error("lambda sum != 1 accepted")
	}
	if _, err := GenerateLayered(deg, []Layer{{Groups: groups, Lambda: -0.2}, {Groups: groups, Lambda: 1.2}}, core.Options{}); err == nil {
		t.Error("out-of-range lambda accepted")
	}
	if _, err := GenerateLayered(nil, []Layer{{Groups: groups, Lambda: 1}}, core.Options{}); err == nil {
		t.Error("empty degrees accepted")
	}
}

func TestGenerateLayeredSingleLayerIsPlainGeneration(t *testing.T) {
	deg := make([]int64, 500)
	for i := range deg {
		deg[i] = 4
	}
	res, err := GenerateLayered(deg, []Layer{{
		Groups: [][]int32{allVertices(500)},
		Lambda: 1,
	}}, core.Options{Workers: 2, Seed: 9, SwapIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep := res.Graph.CheckSimplicity(); !rep.IsSimple() {
		t.Fatalf("not simple: %+v", rep)
	}
	got := res.Graph.Degrees(1)
	var sum int64
	for _, d := range got {
		sum += d
	}
	if math.Abs(float64(sum)-2000) > 150 {
		t.Errorf("total degree %d, want ~2000", sum)
	}
}

func TestGenerateLayeredThreeLevels(t *testing.T) {
	// A 3-level hierarchy: 4 leaf groups, 2 mid groups, 1 global.
	const n = 800
	deg := make([]int64, n)
	for i := range deg {
		deg[i] = 8
	}
	leaf := make([][]int32, 4)
	mid := make([][]int32, 2)
	for v := int32(0); v < n; v++ {
		leaf[v/200] = append(leaf[v/200], v)
		mid[v/400] = append(mid[v/400], v)
	}
	res, err := GenerateLayered(deg, []Layer{
		{Groups: leaf, Lambda: 0.5},
		{Groups: mid, Lambda: 0.3},
		{Groups: [][]int32{allVertices(n)}, Lambda: 0.2},
	}, core.Options{Workers: 4, Seed: 17, SwapIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep := res.Graph.CheckSimplicity(); !rep.IsSimple() {
		t.Fatalf("not simple: %+v", rep)
	}
	// Leaf-internal edge fraction: the leaf layer contributes its full
	// 0.5 share, and the mid/global layers land inside a leaf by chance
	// (≈1/2 within a mid group of two leaves, ≈1/4 globally):
	// 0.5 + 0.3·0.5 + 0.2·0.25 ≈ 0.70.
	var leafInternal, midInternal int
	for _, e := range res.Graph.Edges {
		if e.U/200 == e.V/200 {
			leafInternal++
		}
		if e.U/400 == e.V/400 {
			midInternal++
		}
	}
	leafFrac := float64(leafInternal) / float64(res.Graph.NumEdges())
	if math.Abs(leafFrac-0.70) > 0.08 {
		t.Errorf("leaf-internal fraction %v, want ~0.70", leafFrac)
	}
	// Mid-internal: 0.5 + 0.3 + 0.2·0.5 ≈ 0.90.
	midFrac := float64(midInternal) / float64(res.Graph.NumEdges())
	if math.Abs(midFrac-0.90) > 0.08 {
		t.Errorf("mid-internal fraction %v, want ~0.90", midFrac)
	}
}

func TestSplitDegreesExact(t *testing.T) {
	deg := []int64{7, 1, 0, 13}
	layers := []Layer{{Lambda: 0.6}, {Lambda: 0.4}}
	splits := splitDegrees(deg, layers)
	for v, d := range deg {
		var sum int64
		for li := range layers {
			if splits[li][v] < 0 {
				t.Fatalf("negative split at layer %d vertex %d", li, v)
			}
			sum += splits[li][v]
		}
		if sum != d {
			t.Errorf("vertex %d: splits sum %d, want %d", v, sum, d)
		}
	}
}

func TestGenerateGroupTooSmall(t *testing.T) {
	// Groups of size < 2 produce nothing and drop their stubs.
	edges, dropped, err := generateGroup([]int32{5}, []int64{0, 0, 0, 0, 0, 3}, core.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 0 || dropped != 3 {
		t.Errorf("edges=%d dropped=%d, want 0/3", len(edges), dropped)
	}
}

func TestObservedMuIsolatedVertices(t *testing.T) {
	el := graph.NewEdgeList([]graph.Edge{{U: 0, V: 1}}, 3)
	// Vertex 2 unassigned; edge (0,1) internal to community 0.
	mu := observedMu(el, [][]int32{{0, 1}}, 3)
	if mu != 0 {
		t.Errorf("observedMu = %v, want 0", mu)
	}
}
