package lfr

import (
	"math"
	"testing"

	"nullgraph/internal/core"
)

// overlapFixture: 900 vertices, three communities of 400 with 100-vertex
// overlaps (0-399, 300-699, 600-999 clipped to n).
func overlapFixture(n int) (degrees []int64, memberships [][]int32) {
	degrees = make([]int64, n)
	for i := range degrees {
		degrees[i] = 8
	}
	mk := func(lo, hi int) []int32 {
		var out []int32
		for v := lo; v < hi && v < n; v++ {
			out = append(out, int32(v))
		}
		return out
	}
	memberships = [][]int32{mk(0, 400), mk(300, 700), mk(600, 1000)}
	return degrees, memberships
}

func TestGenerateOverlappingBasics(t *testing.T) {
	degrees, memberships := overlapFixture(900)
	res, err := GenerateOverlapping(degrees, memberships, 0.2,
		core.Options{Workers: 4, Seed: 3, SwapIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep := res.Graph.CheckSimplicity(); !rep.IsSimple() {
		t.Fatalf("not simple: %+v", rep)
	}
	if res.Graph.NumVertices != 900 {
		t.Errorf("vertices = %d", res.Graph.NumVertices)
	}
	// Total degree near target.
	deg := res.Graph.Degrees(2)
	var got, want float64
	for v := range deg {
		got += float64(deg[v])
		want += float64(degrees[v])
	}
	if got < 0.85*want || got > 1.02*want {
		t.Errorf("total degree %v vs target %v", got, want)
	}
	// Observed mixing near mu.
	if math.Abs(res.ObservedMu-0.2) > 0.12 {
		t.Errorf("observed mu %v, want ~0.2", res.ObservedMu)
	}
}

func TestGenerateOverlappingSharedVerticesBridge(t *testing.T) {
	// Overlap vertices (300-399 etc.) must have edges into BOTH their
	// communities.
	degrees, memberships := overlapFixture(900)
	res, err := GenerateOverlapping(degrees, memberships, 0.0,
		core.Options{Workers: 2, Seed: 7, SwapIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	// With mu=0, every edge endpoint pair shares a community.
	if res.ObservedMu > 0.02 {
		t.Errorf("mu=0: observed %v", res.ObservedMu)
	}
	// Count overlap vertices with neighbors on both exclusive sides.
	into := map[int32][2]int{}
	for _, e := range res.Graph.Edges {
		for _, pair := range [][2]int32{{e.U, e.V}, {e.V, e.U}} {
			v, u := pair[0], pair[1]
			if v >= 300 && v < 400 { // in communities 0 and 1
				c := into[v]
				if u < 300 {
					c[0]++
				}
				if u >= 400 && u < 700 {
					c[1]++
				}
				into[v] = c
			}
		}
	}
	both := 0
	for _, c := range into {
		if c[0] > 0 && c[1] > 0 {
			both++
		}
	}
	if both < 50 {
		t.Errorf("only %d of ~100 overlap vertices bridge both communities", both)
	}
}

func TestGenerateOverlappingNoMembership(t *testing.T) {
	// Vertices in no community spend everything externally.
	degrees := []int64{4, 4, 4, 4, 4, 4, 4, 4}
	res, err := GenerateOverlapping(degrees, [][]int32{{0, 1, 2}}, 0.5,
		core.Options{Workers: 1, Seed: 5, SwapIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumVertices != 8 {
		t.Errorf("vertices = %d", res.Graph.NumVertices)
	}
}

func TestGenerateOverlappingValidation(t *testing.T) {
	if _, err := GenerateOverlapping(nil, nil, 0.5, core.Options{}); err == nil {
		t.Error("empty degrees accepted")
	}
	if _, err := GenerateOverlapping([]int64{2}, nil, 1.5, core.Options{}); err == nil {
		t.Error("bad mu accepted")
	}
	if _, err := GenerateOverlapping([]int64{2}, [][]int32{{5}}, 0.5, core.Options{}); err == nil {
		t.Error("out-of-range member accepted")
	}
}

func TestGenerateOverlappingSplitConservation(t *testing.T) {
	// Internal + external budgets must sum to each vertex's degree.
	degrees := []int64{7, 13, 1, 0, 20}
	memberships := [][]int32{{0, 1, 4}, {1, 2, 4}, {1}}
	// Probe with mu = 0.3 by re-deriving the split arithmetic.
	mu := 0.3
	memberCount := make([]int64, len(degrees))
	for _, ms := range memberships {
		for _, v := range ms {
			memberCount[v]++
		}
	}
	for v, d := range degrees {
		if memberCount[v] == 0 {
			continue
		}
		internal := int64(float64(d) * (1 - mu))
		external := d - internal
		if internal+external != d || internal < 0 || external < 0 {
			t.Errorf("vertex %d: split %d+%d != %d", v, internal, external, d)
		}
	}
	// And the generator must accept it.
	if _, err := GenerateOverlapping(degrees, memberships, mu,
		core.Options{Workers: 1, Seed: 1, SwapIterations: 0}); err != nil {
		t.Fatal(err)
	}
}
