package lfr

import (
	"fmt"
	"sort"

	"nullgraph/internal/core"
	"nullgraph/internal/graph"
)

// GenerateOverlapping builds a graph with *overlapping* communities —
// the AGM-style structure Section VI sketches ("hierarchical and
// overlapping network structures ... while retaining a global degree
// distribution"). Each vertex may belong to any number of communities;
// its degree is split as:
//
//   - a fraction mu goes to the global external layer,
//   - the remaining (1−mu)·d is divided equally among the vertex's
//     memberships (largest-remainder rounding keeps the split exact);
//     vertices with no membership spend everything externally.
//
// Every community's subgraph and the external graph are generated with
// the core pipeline, then unioned with duplicate edges erased.
func GenerateOverlapping(degrees []int64, memberships [][]int32, mu float64, opt core.Options) (*Result, error) {
	n := len(degrees)
	if n == 0 {
		return nil, fmt.Errorf("lfr: empty degree sequence")
	}
	if mu < 0 || mu > 1 {
		return nil, fmt.Errorf("lfr: mu = %v out of [0,1]", mu)
	}
	// memberCount[v] = how many communities contain v.
	memberCount := make([]int64, n)
	for ci, members := range memberships {
		for _, v := range members {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("lfr: community %d contains out-of-range vertex %d", ci, v)
			}
			memberCount[v]++
		}
	}

	// Per-community split arrays plus the external split.
	external := make([]int64, n)
	internalBudget := make([]int64, n)
	communitySplit := make([][]int64, len(memberships))
	for ci := range communitySplit {
		communitySplit[ci] = make([]int64, n)
	}
	for v := 0; v < n; v++ {
		d := degrees[v]
		if memberCount[v] == 0 {
			external[v] = d
			continue
		}
		internal := int64(float64(d) * (1 - mu))
		external[v] = d - internal
		internalBudget[v] = internal
	}
	// Second pass: walk memberships and hand each (community, vertex)
	// slot its share.
	slotIndex := make([]int64, n)
	for ci, members := range memberships {
		for _, v := range members {
			total := internalBudget[v]
			k := memberCount[v]
			base := total / k
			if slotIndex[v] < total%k {
				base++
			}
			communitySplit[ci][v] = base
			slotIndex[v]++
		}
	}

	res := &Result{Degrees: degrees, Communities: memberships}
	var edges []graph.Edge
	for ci, members := range memberships {
		groupEdges, dropped, err := generateGroup(members, communitySplit[ci], opt, uint64(ci)+0xabcdef)
		if err != nil {
			return nil, fmt.Errorf("lfr: overlapping community %d: %w", ci, err)
		}
		res.DroppedStubs += dropped
		edges = append(edges, groupEdges...)
	}
	all := allVertices(int64(n))
	extEdges, dropped, err := generateGroup(all, external, opt, 0x9e3779b9)
	if err != nil {
		return nil, fmt.Errorf("lfr: external layer: %w", err)
	}
	res.DroppedStubs += dropped
	edges = append(edges, extEdges...)

	el := graph.NewEdgeList(edges, n)
	simple, rep := el.Simplify()
	res.DuplicateEdges = rep.MultiEdges
	res.Graph = simple
	res.ObservedMu = observedOverlapMu(simple, memberships, n)
	return res, nil
}

// observedOverlapMu is the fraction of edges whose endpoints share NO
// community.
func observedOverlapMu(el *graph.EdgeList, memberships [][]int32, n int) float64 {
	if el.NumEdges() == 0 {
		return 0
	}
	// Sorted membership lists per vertex for fast intersection.
	perVertex := make([][]int32, n)
	for ci, members := range memberships {
		for _, v := range members {
			perVertex[v] = append(perVertex[v], int32(ci))
		}
	}
	for v := range perVertex {
		sort.Slice(perVertex[v], func(a, b int) bool { return perVertex[v][a] < perVertex[v][b] })
	}
	shares := func(a, b []int32) bool {
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			switch {
			case a[i] < b[j]:
				i++
			case a[i] > b[j]:
				j++
			default:
				return true
			}
		}
		return false
	}
	external := 0
	for _, e := range el.Edges {
		if !shares(perVertex[e.U], perVertex[e.V]) {
			external++
		}
	}
	return float64(external) / float64(el.NumEdges())
}
