package havelhakimi

import (
	"testing"
	"testing/quick"

	"nullgraph/internal/degseq"
	"nullgraph/internal/rng"
)

func mustDist(t testing.TB, counts map[int64]int64) *degseq.Distribution {
	t.Helper()
	d, err := degseq.FromCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func checkRealizes(t *testing.T, d *degseq.Distribution) {
	t.Helper()
	el, err := Generate(d)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if rep := el.CheckSimplicity(); !rep.IsSimple() {
		t.Fatalf("not simple: %+v", rep)
	}
	got := degseq.FromDegrees(el.Degrees(1))
	if len(got.Classes) != len(d.Classes) {
		t.Fatalf("degree distribution mismatch: got %+v, want %+v", got.Classes, d.Classes)
	}
	for i := range d.Classes {
		if got.Classes[i] != d.Classes[i] {
			t.Fatalf("class %d: got %+v, want %+v", i, got.Classes[i], d.Classes[i])
		}
	}
}

func TestGenerateExactRealizations(t *testing.T) {
	cases := []map[int64]int64{
		{1: 2},             // single edge
		{2: 3},             // triangle
		{3: 4},             // K4
		{1: 4, 4: 1},       // star (isolated? no: 4 leaves + hub)
		{2: 5},             // 5-cycle
		{1: 2, 2: 3},       // path of 5
		{0: 3, 1: 2},       // isolated vertices + an edge
		{3: 4, 2: 2, 1: 2}, // mixed
		{7: 8},             // K8
	}
	for _, counts := range cases {
		checkRealizes(t, mustDist(t, counts))
	}
}

func TestGeneratePowerLaw(t *testing.T) {
	d, err := degseq.SamplePowerLaw(degseq.PowerLawConfig{
		NumVertices: 10000, MinDegree: 1, MaxDegree: 500, Gamma: 2.1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkRealizes(t, d)
}

func TestGenerateRejectsNonGraphical(t *testing.T) {
	bad := []map[int64]int64{
		{1: 3},       // odd stubs
		{4: 4},       // d_max >= n
		{3: 2, 1: 2}, // 3,3,1,1
	}
	for _, counts := range bad {
		if _, err := Generate(mustDist(t, counts)); err == nil {
			t.Errorf("non-graphical %v accepted", counts)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d := mustDist(t, map[int64]int64{1: 10, 3: 4, 5: 2})
	a, err := Generate(d)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("Havel-Hakimi not deterministic")
		}
	}
}

func TestGenerateEmpty(t *testing.T) {
	el, err := Generate(&degseq.Distribution{})
	if err != nil {
		t.Fatal(err)
	}
	if el.NumEdges() != 0 {
		t.Errorf("empty distribution produced edges")
	}
}

func TestGenerateQuickProperty(t *testing.T) {
	// Any graphical random sequence must be realized exactly.
	r := rng.New(8)
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 30 {
			return true
		}
		deg := make([]int64, len(raw))
		for i, v := range raw {
			deg[i] = int64(v) % int64(len(raw))
		}
		d := degseq.FromDegrees(deg)
		if !d.IsGraphical() {
			_, err := Generate(d)
			return err != nil
		}
		el, err := Generate(d)
		if err != nil {
			return false
		}
		if rep := el.CheckSimplicity(); !rep.IsSimple() {
			return false
		}
		got := el.Degrees(1)
		back := degseq.FromDegrees(got)
		if len(back.Classes) != len(d.Classes) {
			return false
		}
		for i := range d.Classes {
			if back.Classes[i] != d.Classes[i] {
				return false
			}
		}
		_ = r
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGenerate(b *testing.B) {
	d, err := degseq.SamplePowerLaw(degseq.PowerLawConfig{
		NumVertices: 100000, MinDegree: 2, MaxDegree: 2000, Gamma: 2.2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(d); err != nil {
			b.Fatal(err)
		}
	}
}
