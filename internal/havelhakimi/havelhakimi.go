// Package havelhakimi deterministically realizes a graphical degree
// sequence as a simple graph via the Havel–Hakimi construction:
// repeatedly connect the highest-remaining-degree vertex to the next
// highest ones. The paper uses Havel-Hakimi + many double-edge swap
// iterations as the "uniformly random" reference sample (P_Base in
// Figure 4).
//
// The construction runs in O(m log n) using a max-heap keyed by
// remaining degree (ties broken by vertex ID for determinism).
package havelhakimi

import (
	"container/heap"
	"fmt"

	"nullgraph/internal/degseq"
	"nullgraph/internal/graph"
)

type node struct {
	id     int32
	remain int64
}

type maxHeap []node

func (h maxHeap) Len() int { return len(h) }
func (h maxHeap) Less(i, j int) bool {
	if h[i].remain != h[j].remain {
		return h[i].remain > h[j].remain
	}
	return h[i].id < h[j].id
}
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(node)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Generate builds a simple graph realizing dist exactly. Vertex IDs
// follow the standard class layout (ascending degree classes). It
// returns an error if the sequence is not graphical.
func Generate(dist *degseq.Distribution) (*graph.EdgeList, error) {
	if err := dist.Validate(); err != nil {
		return nil, err
	}
	if !dist.IsGraphical() {
		return nil, fmt.Errorf("havelhakimi: degree sequence is not graphical")
	}
	n := dist.NumVertices()
	h := make(maxHeap, 0, n)
	var id int32
	for _, c := range dist.Classes {
		for i := int64(0); i < c.Count; i++ {
			if c.Degree > 0 {
				h = append(h, node{id: id, remain: c.Degree})
			}
			id++
		}
	}
	heap.Init(&h)
	edges := make([]graph.Edge, 0, dist.NumEdges())
	scratch := make([]node, 0, 64)
	for h.Len() > 0 {
		v := heap.Pop(&h).(node)
		if v.remain == 0 {
			continue
		}
		if int64(h.Len()) < v.remain {
			return nil, fmt.Errorf("havelhakimi: ran out of partners for vertex %d (internal inconsistency)", v.id)
		}
		scratch = scratch[:0]
		for k := int64(0); k < v.remain; k++ {
			u := heap.Pop(&h).(node)
			if u.remain <= 0 {
				return nil, fmt.Errorf("havelhakimi: partner with zero remaining degree (internal inconsistency)")
			}
			edges = append(edges, graph.Edge{U: v.id, V: u.id})
			u.remain--
			scratch = append(scratch, u)
		}
		for _, u := range scratch {
			if u.remain > 0 {
				heap.Push(&h, u)
			}
		}
	}
	return graph.NewEdgeList(edges, int(n)), nil
}
