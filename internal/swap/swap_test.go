package swap

import (
	"math"
	"sort"
	"testing"

	"nullgraph/internal/graph"
	"nullgraph/internal/hashtable"
	"nullgraph/internal/rng"
)

// ring returns a cycle graph on n vertices — simple, connected, and
// degree-regular, so every invariant check is easy to state.
func ring(n int) *graph.EdgeList {
	edges := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = graph.Edge{U: int32(i), V: int32((i + 1) % n)}
	}
	return graph.NewEdgeList(edges, n)
}

func degreesOf(el *graph.EdgeList) []int64 { return el.Degrees(1) }

func sortedCopy(d []int64) []int64 {
	c := make([]int64, len(d))
	copy(c, d)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	return c
}

func equalInt64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRunPreservesInvariants(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		el := ring(500)
		before := degreesOf(el)
		m := el.NumEdges()
		res := Run(el, Options{Iterations: 10, Workers: workers, Seed: 42})
		if el.NumEdges() != m {
			t.Fatalf("workers=%d: edge count changed: %d -> %d", workers, m, el.NumEdges())
		}
		if !equalInt64(before, degreesOf(el)) {
			t.Fatalf("workers=%d: degree sequence changed", workers)
		}
		if rep := el.CheckSimplicity(); !rep.IsSimple() {
			t.Fatalf("workers=%d: output not simple: %+v", workers, rep)
		}
		if res.TotalSuccesses == 0 {
			t.Errorf("workers=%d: no successful swaps on a 500-ring in 10 iterations", workers)
		}
		if len(res.PerIteration) != 10 {
			t.Errorf("workers=%d: %d iteration stats, want 10", workers, len(res.PerIteration))
		}
		for i, s := range res.PerIteration {
			if s.Attempts != int64(m/2) {
				t.Errorf("workers=%d iter %d: attempts = %d, want %d", workers, i, s.Attempts, m/2)
			}
			if s.Successes > s.Attempts {
				t.Errorf("workers=%d iter %d: successes %d > attempts %d", workers, i, s.Successes, s.Attempts)
			}
		}
	}
}

func TestRunActuallyChangesGraph(t *testing.T) {
	el := ring(1000)
	orig := el.Clone()
	Run(el, Options{Iterations: 5, Workers: 4, Seed: 7})
	if el.EqualAsSets(orig) {
		t.Error("5 iterations left a 1000-ring unchanged")
	}
}

func TestRunDeterministicSingleWorker(t *testing.T) {
	// Bit-exact reproducibility holds for Workers=1; with more workers
	// concurrent proposals of the same new edge race benignly (see
	// Options.Seed), so only invariants are asserted there.
	a, b := ring(2000), ring(2000)
	Run(a, Options{Iterations: 4, Workers: 1, Seed: 11})
	Run(b, Options{Iterations: 4, Workers: 1, Seed: 11})
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("same (seed,workers=1) diverged at edge %d", i)
		}
	}
	c := ring(2000)
	Run(c, Options{Iterations: 4, Workers: 1, Seed: 12})
	if a.EqualAsSets(c) {
		t.Error("different seeds produced identical graphs")
	}
}

func TestRunQuadraticProbing(t *testing.T) {
	el := ring(300)
	before := degreesOf(el)
	Run(el, Options{Iterations: 6, Workers: 4, Seed: 1, Probing: hashtable.Quadratic})
	if !equalInt64(before, degreesOf(el)) {
		t.Fatal("degree sequence changed under quadratic probing")
	}
	if rep := el.CheckSimplicity(); !rep.IsSimple() {
		t.Fatalf("not simple: %+v", rep)
	}
}

func TestRunTinyGraphs(t *testing.T) {
	// m < 2: nothing to do, no panic.
	single := graph.NewEdgeList([]graph.Edge{{U: 0, V: 1}}, 2)
	res := Run(single, Options{Iterations: 3, Seed: 1})
	if res.TotalSuccesses != 0 {
		t.Error("swapped a single edge")
	}
	empty := graph.NewEdgeList(nil, 0)
	Run(empty, Options{Iterations: 3, Seed: 1})
	// Two edges sharing a vertex: any swap makes a loop or duplicate;
	// engine must reject everything and keep the graph intact.
	wedge := graph.NewEdgeList([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, 3)
	res = Run(wedge, Options{Iterations: 10, Seed: 3})
	if res.TotalSuccesses != 0 {
		t.Errorf("committed %d impossible swaps on a wedge", res.TotalSuccesses)
	}
	if rep := wedge.CheckSimplicity(); !rep.IsSimple() {
		t.Errorf("wedge corrupted: %+v", rep)
	}
}

func TestZeroIterations(t *testing.T) {
	el := ring(10)
	orig := el.Clone()
	res := Run(el, Options{Iterations: 0, Seed: 5})
	if len(res.PerIteration) != 0 || !el.EqualAsSets(orig) {
		t.Error("zero iterations had effects")
	}
}

func TestSimplifiesMultigraph(t *testing.T) {
	// A dense multigraph: 50 copies of the same edge plus a pool of
	// fresh vertices to swap against.
	var edges []graph.Edge
	for i := 0; i < 50; i++ {
		edges = append(edges, graph.Edge{U: 0, V: 1})
	}
	for i := int32(2); i < 300; i += 2 {
		edges = append(edges, graph.Edge{U: i, V: i + 1})
	}
	el := graph.NewEdgeList(edges, 302)
	before := degreesOf(el)
	Run(el, Options{Iterations: 60, Workers: 4, Seed: 9})
	if !equalInt64(before, degreesOf(el)) {
		t.Fatal("degree sequence changed while simplifying")
	}
	rep := el.CheckSimplicity()
	if !rep.IsSimple() {
		t.Errorf("multigraph not simplified after 60 iterations: %+v", rep)
	}
}

func TestSimplicityIsInvariantOncesSimple(t *testing.T) {
	el := ring(100)
	for it := 0; it < 20; it++ {
		Run(el, Options{Iterations: 1, Workers: 2, Seed: uint64(it)})
		if rep := el.CheckSimplicity(); !rep.IsSimple() {
			t.Fatalf("iteration %d broke simplicity: %+v", it, rep)
		}
	}
}

func TestTrackSwappedMonotone(t *testing.T) {
	el := ring(400)
	var fractions []float64
	Run(el, Options{
		Iterations: 12, Workers: 2, Seed: 21, TrackSwapped: true,
		OnIteration: func(_ int, s IterStats) { fractions = append(fractions, s.EverSwapped) },
	})
	if len(fractions) != 12 {
		t.Fatalf("got %d callbacks", len(fractions))
	}
	for i := 1; i < len(fractions); i++ {
		if fractions[i] < fractions[i-1]-1e-12 {
			t.Errorf("EverSwapped decreased: %v -> %v", fractions[i-1], fractions[i])
		}
	}
	if fractions[len(fractions)-1] <= 0 {
		t.Error("EverSwapped never rose above 0")
	}
}

func TestRunUntilMixed(t *testing.T) {
	el := ring(256)
	res, mixed := RunUntilMixed(el, Options{Workers: 2, Seed: 33}, 200)
	if !mixed {
		t.Fatalf("256-ring did not fully mix in 200 iterations (%d run)", len(res.PerIteration))
	}
	last := res.PerIteration[len(res.PerIteration)-1]
	if last.EverSwapped < 1.0 {
		t.Errorf("mixed=true but EverSwapped = %v", last.EverSwapped)
	}
	// The paper observes ~10 iterations suffice; allow generous slack
	// but catch pathological slowness.
	if len(res.PerIteration) > 100 {
		t.Errorf("mixing took %d iterations, expected ~10-40", len(res.PerIteration))
	}
}

func TestRunUntilMixedBudgetExhausted(t *testing.T) {
	// A wedge can never swap, so mixing is impossible; the budgeted
	// loop must terminate and report mixed=false.
	el := graph.NewEdgeList([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, 3)
	res, mixed := RunUntilMixed(el, Options{Workers: 1, Seed: 1}, 5)
	if mixed {
		t.Error("impossible mixing reported as achieved")
	}
	if len(res.PerIteration) != 5 {
		t.Errorf("ran %d iterations, want the full budget of 5", len(res.PerIteration))
	}
}

func TestSerialReferencePreservesInvariants(t *testing.T) {
	el := ring(200)
	before := degreesOf(el)
	succ, err := RunSerial(el, 5000, 17)
	if err != nil {
		t.Fatal(err)
	}
	if succ == 0 {
		t.Error("serial chain committed nothing")
	}
	if !equalInt64(before, degreesOf(el)) {
		t.Fatal("serial chain changed degrees")
	}
	if rep := el.CheckSimplicity(); !rep.IsSimple() {
		t.Fatalf("serial chain broke simplicity: %+v", rep)
	}
}

func TestSerialRejectsMultigraph(t *testing.T) {
	el := graph.FromEdges([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 0}})
	if _, err := RunSerial(el, 10, 1); err == nil {
		t.Error("multigraph accepted by serial reference")
	}
}

// enumerate all perfect matchings of 2k labeled vertices as canonical
// sorted key-strings.
func matchingKey(el *graph.EdgeList) string {
	keys := make([]uint64, len(el.Edges))
	for i, e := range el.Edges {
		keys[i] = e.Key()
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]byte, 0, len(keys)*8)
	for _, k := range keys {
		for b := 0; b < 8; b++ {
			out = append(out, byte(k>>(8*b)))
		}
	}
	return string(out)
}

// TestSwapUniformityMatchings repeats the paper's Milo-style validation:
// the stationary distribution over the 15 perfect matchings of K6's
// 1-regular sequence must be uniform. Each trial starts from the same
// matching and runs enough parallel iterations to mix.
func TestSwapUniformityMatchings(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const trials = 6000
	counts := map[string]int{}
	for trial := 0; trial < trials; trial++ {
		el := graph.NewEdgeList([]graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}}, 6)
		Run(el, Options{Iterations: 30, Workers: 1, Seed: rng.Mix64(uint64(trial) + 1)})
		counts[matchingKey(el)]++
	}
	if len(counts) != 15 {
		t.Fatalf("reached %d matchings, want all 15", len(counts))
	}
	want := float64(trials) / 15
	// chi-square with 14 dof; 5-sigma-ish bound on each cell plus a
	// total statistic sanity check.
	var chi2 float64
	for key, c := range counts {
		diff := float64(c) - want
		chi2 += diff * diff / want
		if math.Abs(diff) > 6*math.Sqrt(want) {
			t.Errorf("matching %x: %d draws, want ~%v", key, c, want)
		}
	}
	// P(chi2_14 > 60) ~ 1e-7.
	if chi2 > 60 {
		t.Errorf("chi-square = %v over 14 dof, distribution not uniform", chi2)
	}
}

// TestSwapUniformityMatchesSerial compares the parallel engine's
// long-run edge marginals against the serial reference chain on a small
// skewed graph: for every vertex pair, the probability that the pair is
// an edge must agree between the two samplers.
func TestSwapUniformityMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	base := []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}, {U: 4, V: 5}}
	const n = 6
	const trials = 4000
	marginalPar := map[uint64]int{}
	marginalSer := map[uint64]int{}
	for trial := 0; trial < trials; trial++ {
		elP := graph.NewEdgeList(append([]graph.Edge(nil), base...), n)
		Run(elP, Options{Iterations: 25, Workers: 2, Seed: rng.Mix64(uint64(trial) + 77)})
		for _, e := range elP.Edges {
			marginalPar[e.Key()]++
		}
		elS := graph.NewEdgeList(append([]graph.Edge(nil), base...), n)
		if _, err := RunSerial(elS, 500, rng.Mix64(uint64(trial)+123456)); err != nil {
			t.Fatal(err)
		}
		for _, e := range elS.Edges {
			marginalSer[e.Key()]++
		}
	}
	// Compare each pair's occupancy.
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			k := (graph.Edge{U: u, V: v}).Key()
			pp := float64(marginalPar[k]) / trials
			ps := float64(marginalSer[k]) / trials
			// Binomial std dev ~ sqrt(p(1-p)/trials) ≈ 0.008; allow 6x
			// plus slack for residual mixing differences.
			if math.Abs(pp-ps) > 0.06 {
				t.Errorf("edge (%d,%d): parallel marginal %v vs serial %v", u, v, pp, ps)
			}
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{Iterations: -1}).Validate(); err == nil {
		t.Error("negative iterations accepted")
	}
	if err := (Options{Iterations: 5}).Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

func BenchmarkSwapIteration(b *testing.B) {
	el := ring(1 << 18)
	eng := NewEngine(el, Options{Workers: 0, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
	b.SetBytes(int64(el.NumEdges()) * 8)
}

func BenchmarkSwapIterationSerial(b *testing.B) {
	el := ring(1 << 18)
	eng := NewEngine(el, Options{Workers: 1, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
	b.SetBytes(int64(el.NumEdges()) * 8)
}

// BenchmarkSwapStep is the hot-path tracking benchmark (ISSUE 1): one
// full iteration on a >=1M-edge graph, reporting allocations and swap
// throughput. cmd/benchswap emits the same measurement as BENCH_swap.json.
func BenchmarkSwapStep(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{{"workers=1", 1}, {"workers=max", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			el := ring(1 << 20)
			eng := NewEngine(el, Options{Workers: bc.workers, Seed: 1})
			eng.Step() // warm-up: populate scratch buffers
			b.ReportAllocs()
			b.ResetTimer()
			var successes int64
			for i := 0; i < b.N; i++ {
				successes += eng.Step().Successes
			}
			b.StopTimer()
			b.SetBytes(int64(el.NumEdges()) * 8)
			if b.Elapsed() > 0 {
				b.ReportMetric(float64(successes)/b.Elapsed().Seconds(), "swaps/sec")
			}
		})
	}
}

// Probing ablation (DESIGN.md): linear vs quadratic collision handling
// under the swap workload.
func BenchmarkSwapIterationLinearProbing(b *testing.B)    { benchProbing(b, hashtable.Linear) }
func BenchmarkSwapIterationQuadraticProbing(b *testing.B) { benchProbing(b, hashtable.Quadratic) }

func benchProbing(b *testing.B, probing hashtable.Probing) {
	el := ring(1 << 18)
	eng := NewEngine(el, Options{Workers: 0, Seed: 1, Probing: probing})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
	b.SetBytes(int64(el.NumEdges()) * 8)
}

// Tracking ablation: the cost of the EverSwapped mixing tracker (one
// extra permutation plus a parallel sum per iteration).
func BenchmarkSwapIterationTracked(b *testing.B) {
	el := ring(1 << 18)
	eng := NewEngine(el, Options{Workers: 0, Seed: 1, TrackSwapped: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
	b.SetBytes(int64(el.NumEdges()) * 8)
}
