// Per-space swap acceptance policies.
//
// The engine samples one cell of the Dutta–Fosdick–Clauset space
// matrix (graph.Space, arXiv:2105.12120). The cells split into two
// mechanically different regimes:
//
//   - Stub-labeled cells (and simple graphs, where stub- and
//     vertex-labeled uniformity coincide) keep the paper's parallel
//     kernel: permute, propose adjacent disjoint pairs, accept by a
//     per-space rejection rule. No Metropolis–Hastings correction is
//     needed — in the stub-labeled target each graph is weighted by
//     its number of stub matchings, and the proposal degeneracies of
//     the pair-and-coin move (two coins collapsing onto one outcome
//     exactly when a loop or parallel pair is involved) cancel those
//     weights, so plain rejection of out-of-space proposals is the
//     correct chain: simple rejects loops and duplicates, loopy-stub
//     rejects duplicates only, multigraph-stub accepts everything.
//
//   - Vertex-labeled loopy/multigraph cells target the uniform
//     distribution over graphs, which the pair-and-coin proposal does
//     NOT sample unadjusted (it over-proposes moves out of states
//     with parallel edges and loops). These run a serial exact
//     Metropolis–Hastings sweep with the acceptance ratio
//
//     α = min(1, (N_b · c_b) / (N_f · c_f))
//
//     where N_f is the number of edge-instance pairs realizing the
//     forward proposal (w_e·w_f for distinct keys, w(w−1)/2 for two
//     instances of one key), N_b the same count for the reverse move
//     evaluated in the proposed state, and c_f/c_b ∈ {1, 2} count the
//     coin degeneracy — 2 exactly when both coin pairings produce the
//     same outcome. For a non-identity move the added key pair is
//     disjoint from the removed key pair (sharing one key forces
//     sharing both), so the reverse-move counts are the current
//     multiplicities plus the instances the move itself adds, and the
//     move's key quadruple is unique — making the per-move ratio the
//     exact proposal ratio. Multiplicities come from a graph.Multiset,
//     so this path is serial and map-backed; it is intentionally NOT
//     //nullgraph:hotpath (the parallel stub kernels below are).
package swap

import (
	"nullgraph/internal/graph"
	"nullgraph/internal/hashtable"
	"nullgraph/internal/rng"
)

// acceptSimple is the paper's simple-space acceptance rule: commit iff
// neither proposed edge is a self-loop and neither is already present
// (TestAndSet registers the probes, suppressing re-proposals this
// iteration — see the package doc for the short-circuit ordering).
//
//nullgraph:hotpath
func acceptSimple(wtr *hashtable.Writer, g, h graph.Edge) bool {
	if g.IsLoop() || h.IsLoop() {
		return false
	}
	if wtr.TestAndSet(g.Key()) {
		return false
	}
	if wtr.TestAndSet(h.Key()) {
		// g stays registered: harmless for correctness (it only
		// suppresses re-proposals of g this iteration).
		return false
	}
	return true
}

// acceptLoopyStub is the loopy-stub rule: loops are legal states, so
// only duplicate creation is rejected. Loop keys pack and probe like
// any other key, and a proposal that would create a duplicated loop
// (g and h the same loop) is caught by the second TestAndSet seeing
// the first's registration.
//
//nullgraph:hotpath
func acceptLoopyStub(wtr *hashtable.Writer, g, h graph.Edge) bool {
	if wtr.TestAndSet(g.Key()) {
		return false
	}
	if wtr.TestAndSet(h.Key()) {
		// As in acceptSimple, g's registration persists harmlessly.
		return false
	}
	return true
}

// sameKeyPair reports multiset equality of the two canonical-key
// pairs {a1, a2} and {b1, b2}.
func sameKeyPair(a1, a2, b1, b2 uint64) bool {
	return (a1 == b1 && a2 == b2) || (a1 == b2 && a2 == b1)
}

// stepVertex runs one serial Metropolis–Hastings sweep for the
// vertex-labeled loopy/multigraph cells: ⌊m/2⌋ proposals, each picking
// a uniform pair of distinct edge positions and a fair coin, accepted
// with the exact ratio derived in the file doc. Serial because the
// acceptance ratio reads live multiplicities — the parallel kernel's
// iteration-frozen hash table cannot answer those — and bit-
// reproducible for any Workers setting as a consequence.
func (eng *Engine) stepVertex() (IterStats, bool) {
	m := len(eng.el.Edges)
	it := eng.iteration
	eng.iteration++
	if m < 2 {
		return IterStats{}, eng.stop.Stopped()
	}
	if eng.stop.Stopped() {
		return IterStats{}, true
	}
	src := rng.New(sweepSeedFor(eng.opt.Seed, it))
	edges := eng.el.Edges
	ms := eng.ms
	stop := eng.stop
	swapped := eng.swapped
	allowMulti := eng.opt.Space.AllowsMulti()
	pairs := m / 2
	stats := IterStats{Attempts: int64(pairs)}
	var local, newly int64
	for k := 0; k < pairs; k++ {
		if stop != nil && k&2047 == 0 && stop.Stopped() {
			// Committed proposals are individually valid states of the
			// space, so a partial sweep leaves the edge list (and ms)
			// consistent; statistics for the interrupted iteration are
			// dropped, as in the parallel step.
			return IterStats{}, true
		}
		i := int(src.Uint64n(uint64(m)))
		j := int(src.Uint64n(uint64(m)))
		if i == j {
			continue
		}
		e, f := edges[i], edges[j]
		coin := src.Bool()
		g, h := rewirePair(e, f, coin)
		og, oh := rewirePair(e, f, !coin)
		ek, fk := e.Key(), f.Key()
		gk, hk := g.Key(), h.Key()
		if sameKeyPair(gk, hk, ek, fk) {
			// Identity outcome: the proposed state is the current one.
			continue
		}
		if !allowMulti && (gk == hk || ms.Count(gk) > 0 || ms.Count(hk) > 0) {
			// Out of space: the move would create a parallel pair (or a
			// duplicated loop, which counts as one).
			continue
		}
		// Forward realization count: instance pairs with keys {ek, fk},
		// times the coin degeneracy (2 iff both coins give this outcome).
		var nf float64
		if ek == fk {
			w := float64(ms.Count(ek))
			nf = w * (w - 1) / 2
		} else {
			nf = float64(ms.Count(ek)) * float64(ms.Count(fk))
		}
		if sameKeyPair(gk, hk, og.Key(), oh.Key()) {
			nf *= 2
		}
		// Backward realization count, evaluated in the proposed state:
		// the new keys are disjoint from {ek, fk}, so their multiplicity
		// there is the current one plus what the move adds. The reverse
		// pair's two coin outcomes are exactly {e, f} and this move's
		// other outcome, so c_b = 2 iff the other outcome is an identity.
		var nb float64
		if gk == hk {
			w := float64(ms.Count(gk))
			nb = (w + 2) * (w + 1) / 2
		} else {
			nb = float64(ms.Count(gk)+1) * float64(ms.Count(hk)+1)
		}
		if sameKeyPair(og.Key(), oh.Key(), ek, fk) {
			nb *= 2
		}
		if nb < nf && src.Float64() >= nb/nf {
			continue
		}
		ms.RemoveEdge(e)
		ms.RemoveEdge(f)
		ms.AddEdge(g)
		ms.AddEdge(h)
		edges[i], edges[j] = g, h
		if swapped != nil {
			if swapped[i] == 0 {
				swapped[i] = 1
				newly++
			}
			if swapped[j] == 0 {
				swapped[j] = 1
				newly++
			}
		}
		local++
	}
	stats.Successes = local
	eng.swappedCount += newly
	if swapped != nil {
		stats.EverSwapped = eng.EverSwappedFraction()
	}
	if eng.rec != nil {
		eng.rec.FlushIteration(stats.Attempts, stats.Successes, stats.EverSwapped)
	}
	return stats, false
}

// rewirePair returns the coin's endpoint pairing of (e, f); both
// pairings preserve all four endpoint degrees.
//
//nullgraph:hotpath
func rewirePair(e, f graph.Edge, coin bool) (graph.Edge, graph.Edge) {
	if coin {
		return graph.Edge{U: e.U, V: f.U}, graph.Edge{U: e.V, V: f.V}
	}
	return graph.Edge{U: e.U, V: f.V}, graph.Edge{U: e.V, V: f.U}
}
