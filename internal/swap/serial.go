package swap

import (
	"fmt"

	"nullgraph/internal/graph"
	"nullgraph/internal/rng"
)

// RunSerial performs `attempts` classic single-proposal double-edge swap
// steps (the textbook Markov chain of Milo et al.): pick two random
// distinct edge positions, flip a coin for the endpoint pairing, and
// commit iff the two new edges are loop-free and absent from the graph.
// It mutates el in place and returns the number of committed swaps.
//
// This is the validation reference for the parallel engine — same state
// space, same moves, pedestrian execution. It requires a simple input.
func RunSerial(el *graph.EdgeList, attempts int64, seed uint64) (int64, error) {
	if rep := el.CheckSimplicity(); !rep.IsSimple() {
		return 0, fmt.Errorf("swap: RunSerial requires a simple graph, got %+v", rep)
	}
	m := len(el.Edges)
	if m < 2 {
		return 0, nil
	}
	present := make(map[uint64]struct{}, m)
	for _, e := range el.Edges {
		present[e.Key()] = struct{}{}
	}
	src := rng.New(seed)
	var successes int64
	for a := int64(0); a < attempts; a++ {
		i := src.Intn(m)
		j := src.Intn(m - 1)
		if j >= i {
			j++
		}
		e, f := el.Edges[i], el.Edges[j]
		var g, h graph.Edge
		if src.Bool() {
			g = graph.Edge{U: e.U, V: f.U}
			h = graph.Edge{U: e.V, V: f.V}
		} else {
			g = graph.Edge{U: e.U, V: f.V}
			h = graph.Edge{U: e.V, V: f.U}
		}
		if g.IsLoop() || h.IsLoop() {
			continue
		}
		gk, hk := g.Key(), h.Key()
		if gk == hk {
			continue
		}
		if _, hit := present[gk]; hit {
			continue
		}
		if _, hit := present[hk]; hit {
			continue
		}
		delete(present, e.Key())
		delete(present, f.Key())
		present[gk] = struct{}{}
		present[hk] = struct{}{}
		el.Edges[i], el.Edges[j] = g, h
		successes++
	}
	return successes, nil
}
