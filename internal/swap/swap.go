// Package swap implements the paper's parallel double-edge swap engine
// (Algorithm III.1): an MCMC process that uniformly mixes the simple
// graphs of a fixed degree sequence.
//
// Each iteration:
//  1. every current edge is inserted into a concurrent hash table,
//  2. the edge list is randomly permuted in parallel (Shun et al.),
//  3. adjacent disjoint pairs (E[2k], E[2k+1]) each propose one of the
//     two endpoint exchanges, chosen by a fair coin, and commit it iff
//     neither new edge is a self-loop and neither is already present in
//     the table (checked with thread-safe TestAndSet),
//  4. the table is cleared with a parallel streaming sweep and the
//     per-worker insert counters are checked against the load contract.
//
// Degree sequence, edge count and — once the input is simple —
// simplicity are invariants of every iteration. Non-simple inputs (the
// O(m) Chung-Lu model emits loops and multi-edges) are progressively
// "simplified": a duplicate edge can swap into two fresh edges, and the
// paper observes a few dozen iterations remove all multi-edges.
//
// Deviation from the paper's pseudocode, documented here once: the
// self-loop test runs *before* the TestAndSet calls rather than after.
// Algorithm III.1's short-circuit `TestAndSet(g) = false and
// TestAndSet(h) = false and not loops` inserts g (and possibly h) into
// the table even when the loop test then rejects the proposal, which
// spuriously blocks later proposals of g in the same iteration. Testing
// loops first only removes those spurious failures; every committed
// swap satisfies exactly the same conditions.
//
// # Hot-path memory discipline
//
// The Engine owns every buffer an iteration needs — hash-table writer
// journals, the permutation target array and reservation scratch,
// per-worker padded accumulators, a persistent worker pool — so after
// the first Step on a given size, Step performs no heap allocations and
// the only cross-worker atomics are the edge table's CAS slots and the
// permutation's reservation words. Step must not be called concurrently
// with itself or with any other method of the same Engine.
package swap

import (
	"fmt"

	"nullgraph/internal/connected"
	"nullgraph/internal/graph"
	"nullgraph/internal/hashtable"
	"nullgraph/internal/obs"
	"nullgraph/internal/par"
	"nullgraph/internal/permute"
	"nullgraph/internal/rng"
)

// Options configures a swap run.
type Options struct {
	// Space selects the cell of the sampling-space matrix the chain
	// targets (see graph.Space and policy.go). The zero value is
	// graph.SimpleStub — the paper's regime — and leaves every code
	// path bit-identical to the pre-matrix engine. Stub-labeled cells
	// run the parallel kernel with a per-space acceptance rule; the
	// vertex-labeled loopy/multigraph cells run a serial exact
	// Metropolis–Hastings sweep (Workers is ignored there). The caller
	// is responsible for the input being a legal state of the space;
	// the simple cells additionally tolerate non-simple input, which
	// the chain progressively simplifies (the historical behavior —
	// internal/simplify does it deterministically instead).
	Space graph.Space
	// Connected restricts the simple cell to *connected* simple graphs
	// (Viger–Latapy, arXiv:cs/0502085): proposals that would disconnect
	// the graph are rejected by a connectivity checker with a cached
	// spanning-tree witness (internal/connected). The chain is serial —
	// parallel commits that are individually connectivity-safe can
	// jointly disconnect the graph, so Workers is ignored, like the
	// vertex-labeled MH cells — and requires a connected simple input
	// (see connected.Connect for the repair) and a simple-cell Space.
	Connected bool
	// Iterations is the number of full permute-and-sweep passes.
	Iterations int
	// Workers is the parallel width; <= 0 means GOMAXPROCS.
	Workers int
	// Seed drives the permutations and proposal coins. With Workers=1
	// the run is bit-reproducible. With Workers>1 all *randomness* is
	// still seed-determined, but when two workers concurrently propose
	// the same new edge, which proposal the hash table admits depends
	// on scheduling — the same benign race the paper's OpenMP
	// implementation has — so exact outputs can differ across runs
	// while every invariant (degrees, edge count, simplicity) and the
	// sampled distribution are unaffected.
	Seed uint64
	// Probing selects the hash-table collision strategy.
	Probing hashtable.Probing
	// TrackSwapped maintains a per-edge "ever successfully swapped" flag
	// so IterStats can report the mixing fraction the paper uses as its
	// empirical stopping signal. The fraction is accumulated
	// incrementally from newly-set flags, so tracking costs one extra
	// permutation per iteration (the flags ride the edge permutation)
	// but no re-scan; leave false in throughput benchmarks.
	TrackSwapped bool
	// OnIteration, when non-nil, receives each iteration's statistics as
	// soon as the sweep finishes; experiments use it to snapshot
	// convergence without re-running.
	OnIteration func(iteration int, stats IterStats)
	// Recorder, when non-nil (and the obs layer is compiled in),
	// collects chain-health observability: per-iteration rejection
	// splits, hash-table probe-length histograms, and the ever-swapped
	// trajectory, aggregated at each iteration's quiescent point into
	// an obs.RunReport. The cost model is pay-for-use: NewEngine binds
	// instrumented loop bodies only when a recorder is attached, so a
	// nil Recorder leaves the hot path — and its zero-allocation
	// budget — exactly as before.
	Recorder *obs.Recorder
	// Stop, when non-nil, is polled cooperatively inside each phase's
	// loops (every few thousand indices) and between phases; a tripped
	// flag ends the run early with Result.Stopped set, leaving the edge
	// list valid (degree sequence and edge count preserved) but not
	// fully mixed. Polling never consumes randomness, so untripped runs
	// are bit-identical with or without a Stop, and a nil Stop leaves
	// the hot path's zero-allocation budget untouched.
	Stop *par.Stop
	// Pool, when non-nil, is an externally owned worker pool the engine
	// dispatches on instead of creating its own; the pool's width
	// overrides Workers, and Close leaves it running. Sessions use this
	// to share one pool across all pipeline phases.
	Pool *par.Pool
}

// Validate reports option misuse.
func (o Options) Validate() error {
	if o.Iterations < 0 {
		return fmt.Errorf("swap: negative iteration count %d", o.Iterations)
	}
	if !o.Space.Valid() {
		return fmt.Errorf("swap: invalid sampling space %v", o.Space)
	}
	if o.Connected && (o.Space.AllowsLoops() || o.Space.AllowsMulti()) {
		return fmt.Errorf("swap: Connected sampling is defined for the simple cell only, not %v", o.Space)
	}
	return nil
}

// IterStats reports one iteration of swapping.
type IterStats struct {
	// Attempts is the number of proposed pair swaps (⌊m/2⌋).
	Attempts int64
	// Successes is the number of committed swaps.
	Successes int64
	// EverSwapped is the fraction of edges that have been part of at
	// least one successful swap in any iteration so far. Only populated
	// when Options.TrackSwapped is set.
	EverSwapped float64
}

// Result summarizes a run.
type Result struct {
	PerIteration []IterStats
	// TotalSuccesses across all iterations.
	TotalSuccesses int64
	// Stopped reports that a cooperative stop flag ended the run before
	// its iteration budget. The edge list is valid (degrees, edge count,
	// and — for simple inputs — simplicity all hold) but under-mixed:
	// the interrupted iteration's partial work is kept, its statistics
	// are not reported, and PerIteration covers only complete
	// iterations.
	Stopped bool
}

// permSeedFor and sweepSeedFor derive an iteration's permutation and
// proposal streams; factored out so the naive reference implementation
// in the tests replays the exact streams.
func permSeedFor(seed uint64, it int) uint64 {
	return rng.Mix64(seed) + 0x9e3779b97f4a7c15*uint64(it+1)
}

func sweepSeedFor(seed uint64, it int) uint64 {
	return rng.Mix64(seed) ^ rng.Mix64(uint64(it)+0xabcd0123)
}

// sweepWorkerSeed derives worker w's proposal stream for an iteration.
func sweepWorkerSeed(sweepSeed uint64, w int) uint64 {
	return rng.Mix64(sweepSeed) ^ rng.Mix64(uint64(w)+0x5134)
}

// Engine holds the reusable state of the swap process on one edge list:
// the concurrent edge table with its per-worker insertion counters, the
// ever-swapped flags, the permutation scratch, and the worker pool.
// Iterations can be run in any grouping without losing tracking state.
//
// Engines with more than one worker own parked goroutines; call Close
// when done with an engine (Run and RunUntilMixed do it for the engines
// they create). All methods must be called from one goroutine at a
// time.
type Engine struct {
	el  *graph.EdgeList
	opt Options
	p   int

	pool     *par.Pool
	ownsPool bool
	table    *hashtable.EdgeSet
	writers  []*hashtable.Writer

	// Space-derived configuration, fixed at construction. vertexMH
	// selects the serial Metropolis–Hastings step (policy.go); useTable
	// is false for cells whose acceptance rule never consults the edge
	// table (multigraph-stub accepts every proposal), which skips the
	// register and clear phases entirely. accept is the stub-cell
	// acceptance policy the parallel sweep bodies dispatch through; ms
	// is the live multiplicity view the vertex-labeled step reads.
	vertexMH bool
	useTable bool
	accept   func(wtr *hashtable.Writer, g, h graph.Edge) bool
	ms       *graph.Multiset

	// connMode selects the serial connectivity-preserving step
	// (connected.go); conn is its swap-acceptance checker. Both are nil
	// state for unconstrained runs, whose code paths stay bit-identical.
	connMode bool
	conn     *connected.Checker

	// stop is the attached cooperative cancellation flag (nil when the
	// run is uncancelable, which keeps the hot path to nil checks).
	stop *par.Stop

	// swapped flags ever-swapped edges; swappedCount accumulates the
	// number of set flags so EverSwappedFraction is O(1) instead of an
	// O(m) rescan per iteration.
	swapped      []uint8
	swappedCount int64

	// h is the permutation target buffer; sc/apEdges/apFlags the
	// reusable reservation machinery (the appliers share one scratch —
	// they run sequentially).
	h       []int32
	sc      *permute.Scratch
	apEdges *permute.Applier[graph.Edge]
	apFlags *permute.Applier[uint8]

	// successes and newly are per-worker padded accumulators (cache-line
	// isolated so workers don't false-share).
	successes []par.Cell
	newly     []par.Cell

	// iteration counts all iterations run so far; it seeds each
	// iteration's permutation and proposal streams. permSeed/sweepSeed
	// are the current iteration's derived seeds, read by the prebound
	// bodies below.
	iteration int
	permSeed  uint64
	sweepSeed uint64

	// rec is the attached chain-health recorder (nil when observability
	// is off, which leaves the hot path untouched).
	rec *obs.Recorder

	// Prebound parallel-region bodies: allocated once here so Step
	// dispatches them without creating closures. With a recorder
	// attached, registerBody and sweepBody hold the instrumented
	// variants instead; Step's dispatch is identical either way. The
	// *Stop variants poll the stop flag inside their loops; step
	// selects them only when a stop is attached, so the plain bodies —
	// and their per-iteration cost — are byte-identical to a build
	// without cancellation.
	registerBody     func(w int, r par.Range)
	targetsBody      func(w int, r par.Range)
	sweepBody        func(w int, r par.Range)
	clearBody        func(w int, r par.Range)
	registerStopBody func(w int, r par.Range)
	targetsStopBody  func(w int, r par.Range)
	sweepStopBody    func(w int, r par.Range)
}

// NewEngine prepares a swap engine over el. The engine mutates el's
// edge slice in place; el must not be resized while the engine is live.
func NewEngine(el *graph.EdgeList, opt Options) *Engine {
	p := par.Workers(opt.Workers)
	if opt.Pool != nil {
		// Per-worker state (writers, cells) is indexed by the dispatching
		// pool's worker IDs, so an external pool dictates the width.
		p = opt.Pool.Workers()
	}
	eng := &Engine{el: el, opt: opt, p: p}
	switch opt.Space {
	case graph.LoopyVertex, graph.MultigraphVertex:
		// Serial exact-MH cells: no table, no permutation.
		eng.vertexMH = true
	case graph.MultigraphStub:
		// Every proposal is accepted, so the register/clear phases and
		// the table itself are dead weight; only permute-and-commit runs.
	case graph.LoopyStub:
		eng.useTable = true
		eng.accept = acceptLoopyStub
	default: // SimpleStub, SimpleVertex: one regime, see graph.Space.
		eng.useTable = true
		eng.accept = acceptSimple
	}
	if opt.Connected {
		if opt.Space.AllowsLoops() || opt.Space.AllowsMulti() {
			panic("swap: Connected sampling is defined for the simple cell only (Options.Validate catches this)")
		}
		// The connected chain is a serial sweep over live multiplicity
		// and adjacency state (like the vertex-MH cells), so the frozen
		// table and the permutation machinery are dead weight.
		eng.connMode = true
		eng.useTable = false
		eng.conn = connected.NewChecker()
	}
	if opt.Pool != nil {
		eng.pool = opt.Pool
	} else {
		eng.pool = par.NewPool(p)
		eng.ownsPool = true
	}
	eng.sc = permute.NewScratch()
	eng.apEdges = permute.NewApplier[graph.Edge](eng.sc)
	eng.apFlags = permute.NewApplier[uint8](eng.sc)
	eng.successes = make([]par.Cell, p)
	eng.newly = make([]par.Cell, p)

	eng.registerBody = func(w int, r par.Range) {
		wtr := eng.writers[w]
		edges := eng.el.Edges
		for i := r.Begin; i < r.End; i++ {
			wtr.TestAndSet(edges[i].Key())
		}
	}
	eng.targetsBody = func(w int, r par.Range) {
		permute.FillTargets(eng.h, eng.permSeed, w, r.Begin, r.End)
	}
	eng.sweepBody = func(w int, r par.Range) {
		var src rng.Block
		src.Reseed(sweepWorkerSeed(eng.sweepSeed, w))
		edges := eng.el.Edges
		wtr := eng.writers[w]
		accept := eng.accept
		swapped := eng.swapped
		var local, newly int64
		for k := r.Begin; k < r.End; k++ {
			i, j := 2*k, 2*k+1
			e, f := edges[i], edges[j]
			g, hh := rewirePair(e, f, src.Bool())
			if !accept(wtr, g, hh) {
				continue
			}
			edges[i], edges[j] = g, hh
			if swapped != nil {
				if swapped[i] == 0 {
					swapped[i] = 1
					newly++
				}
				if swapped[j] == 0 {
					swapped[j] = 1
					newly++
				}
			}
			local++
		}
		eng.successes[w].V = local
		eng.newly[w].V = newly
	}
	eng.clearBody = func(_ int, r par.Range) {
		eng.table.ClearRange(r.Begin, r.End)
	}

	// Cancelable variants. A worker that observes the tripped flag exits
	// its chunk early; the join still happens, so the engine's state
	// stays consistent and step() decides what to do with the partial
	// phase. Polling reads nothing from the RNG streams.
	eng.registerStopBody = func(w int, r par.Range) {
		wtr := eng.writers[w]
		edges := eng.el.Edges
		stop := eng.stop
		//nullgraph:cancelable
		for i := r.Begin; i < r.End; i++ {
			if (i-r.Begin)&8191 == 0 && stop.Stopped() {
				return
			}
			wtr.TestAndSet(edges[i].Key())
		}
	}
	eng.targetsStopBody = func(w int, r par.Range) {
		permute.FillTargetsStop(eng.h, eng.permSeed, w, r.Begin, r.End, eng.stop)
	}
	eng.sweepStopBody = func(w int, r par.Range) {
		var src rng.Block
		src.Reseed(sweepWorkerSeed(eng.sweepSeed, w))
		edges := eng.el.Edges
		wtr := eng.writers[w]
		accept := eng.accept
		stop := eng.stop
		swapped := eng.swapped
		var local, newly int64
		//nullgraph:cancelable
		for k := r.Begin; k < r.End; k++ {
			if (k-r.Begin)&2047 == 0 && stop.Stopped() {
				break
			}
			i, j := 2*k, 2*k+1
			e, f := edges[i], edges[j]
			g, hh := rewirePair(e, f, src.Bool())
			if !accept(wtr, g, hh) {
				continue
			}
			edges[i], edges[j] = g, hh
			if swapped != nil {
				if swapped[i] == 0 {
					swapped[i] = 1
					newly++
				}
				if swapped[j] == 0 {
					swapped[j] = 1
					newly++
				}
			}
			local++
		}
		eng.successes[w].V = local
		eng.newly[w].V = newly
	}

	if opt.Space == graph.MultigraphStub {
		// Accept-all sweeps: no acceptance state at all, so the bodies
		// never touch writers (which don't exist for this cell).
		eng.sweepBody = func(w int, r par.Range) {
			var src rng.Block
			src.Reseed(sweepWorkerSeed(eng.sweepSeed, w))
			edges := eng.el.Edges
			swapped := eng.swapped
			var local, newly int64
			for k := r.Begin; k < r.End; k++ {
				i, j := 2*k, 2*k+1
				g, hh := rewirePair(edges[i], edges[j], src.Bool())
				edges[i], edges[j] = g, hh
				if swapped != nil {
					if swapped[i] == 0 {
						swapped[i] = 1
						newly++
					}
					if swapped[j] == 0 {
						swapped[j] = 1
						newly++
					}
				}
				local++
			}
			eng.successes[w].V = local
			eng.newly[w].V = newly
		}
		eng.sweepStopBody = func(w int, r par.Range) {
			var src rng.Block
			src.Reseed(sweepWorkerSeed(eng.sweepSeed, w))
			edges := eng.el.Edges
			stop := eng.stop
			swapped := eng.swapped
			var local, newly int64
			//nullgraph:cancelable
			for k := r.Begin; k < r.End; k++ {
				if (k-r.Begin)&2047 == 0 && stop.Stopped() {
					break
				}
				i, j := 2*k, 2*k+1
				g, hh := rewirePair(edges[i], edges[j], src.Bool())
				edges[i], edges[j] = g, hh
				if swapped != nil {
					if swapped[i] == 0 {
						swapped[i] = 1
						newly++
					}
					if swapped[j] == 0 {
						swapped[j] = 1
						newly++
					}
				}
				local++
			}
			eng.successes[w].V = local
			eng.newly[w].V = newly
		}
	}

	if obs.Enabled && opt.Recorder != nil {
		eng.rec = opt.Recorder
		// Probe-level instrumentation exists for the simple cells only;
		// the other cells still flush per-iteration chain statistics.
		if opt.Space == graph.SimpleStub || opt.Space == graph.SimpleVertex {
			eng.bindInstrumentedBodies()
		}
	}
	eng.SetStop(opt.Stop)

	eng.bind(el)
	return eng
}

// bindInstrumentedBodies replaces the register and sweep bodies with
// variants that feed the recorder's per-worker cells: probe lengths for
// every TestAndSet (registration and proposals alike) and the proposal
// rejection split. They deliberately duplicate the plain loops — a
// branch-per-proposal "if instrumented" inside the shared hot loop
// would tax the disabled path this layer promises to leave free.
// Counters go to the worker's own cache-line-padded cell, so the
// instrumented sweep adds no cross-worker traffic either.
func (eng *Engine) bindInstrumentedBodies() {
	eng.registerBody = func(w int, r par.Range) {
		wtr := eng.writers[w]
		cell := eng.rec.Cell(w)
		edges := eng.el.Edges
		for i := r.Begin; i < r.End; i++ {
			_, probes := wtr.TestAndSetProbed(edges[i].Key())
			cell.RecordProbe(probes)
		}
	}
	eng.sweepBody = func(w int, r par.Range) {
		var src rng.Block
		src.Reseed(sweepWorkerSeed(eng.sweepSeed, w))
		edges := eng.el.Edges
		wtr := eng.writers[w]
		cell := eng.rec.Cell(w)
		swapped := eng.swapped
		var local, newly int64
		for k := r.Begin; k < r.End; k++ {
			i, j := 2*k, 2*k+1
			e, f := edges[i], edges[j]
			var g, hh graph.Edge
			if src.Bool() {
				g = graph.Edge{U: e.U, V: f.U}
				hh = graph.Edge{U: e.V, V: f.V}
			} else {
				g = graph.Edge{U: e.U, V: f.V}
				hh = graph.Edge{U: e.V, V: f.U}
			}
			if g.IsLoop() || hh.IsLoop() {
				cell.RejectSelfLoop++
				continue
			}
			present, probes := wtr.TestAndSetProbed(g.Key())
			cell.RecordProbe(probes)
			if present {
				cell.RejectDuplicate++
				continue
			}
			present, probes = wtr.TestAndSetProbed(hh.Key())
			cell.RecordProbe(probes)
			if present {
				// g stays registered: harmless for correctness (it only
				// suppresses re-proposals of g this iteration).
				cell.RejectPartnerDuplicate++
				continue
			}
			edges[i], edges[j] = g, hh
			if swapped != nil {
				if swapped[i] == 0 {
					swapped[i] = 1
					newly++
				}
				if swapped[j] == 0 {
					swapped[j] = 1
					newly++
				}
			}
			local++
		}
		eng.successes[w].V = local
		eng.newly[w].V = newly
	}
}

// bind sizes the per-edge-list state (table, journals, target buffer,
// flags) for el, reusing existing buffers when they are large enough.
func (eng *Engine) bind(el *graph.EdgeList) {
	eng.el = el
	m := len(el.Edges)
	if eng.vertexMH || eng.connMode {
		// The serial steps read multiplicities instead of a frozen
		// table and propose positions directly, so the multiset is the
		// per-edge-list state they need.
		if eng.ms == nil {
			eng.ms = graph.MultisetOf(el)
		} else {
			eng.ms.Reset()
			for _, e := range el.Edges {
				eng.ms.AddEdge(e)
			}
		}
	}
	if eng.connMode {
		// The connected chain's hard precondition is a connected simple
		// input; callers repair with connected.Connect before binding.
		if err := eng.conn.Bind(el); err != nil {
			panic("swap: " + err.Error())
		}
	}
	if m >= 2 && eng.useTable {
		// Worst case insertions per iteration: m initial edges + 2 new
		// edges per proposing pair = 2m, the table's exact capacity.
		// Counting-only writers: at >= m inserts into <= 8m slots the
		// iteration always ends above the journal/sweep crossover, so
		// journaling the slots would be pure per-insert overhead (see the
		// hashtable package doc).
		if eng.table == nil || eng.table.Capacity() < 2*m {
			capacity := 2 * m
			if eng.table != nil {
				// Rebind growth: batch samples over a same-shape input
				// jitter in edge count, so a little slack absorbs the
				// fluctuations instead of reallocating per sample. Slot
				// count affects only probe lengths, never membership
				// outcomes (exact key compare), so output is unchanged.
				capacity += m / 4
			}
			eng.table = hashtable.New(capacity, eng.opt.Probing)
			eng.writers = eng.table.NewCountingWriters(eng.p)
		}
		for _, w := range eng.writers {
			w.Reset()
		}
	}
	if m >= 2 && !eng.vertexMH && !eng.connMode {
		// Permutation target buffer — every parallel cell permutes, with
		// or without a table; the serial steps propose positions
		// directly and need none.
		if cap(eng.h) < m {
			grown := m
			if eng.h != nil {
				grown += m / 8
			}
			eng.h = make([]int32, grown)
		}
		eng.h = eng.h[:m]
	}
	if eng.opt.TrackSwapped {
		if cap(eng.swapped) < m {
			eng.swapped = make([]uint8, m)
		}
		eng.swapped = eng.swapped[:m]
		clear(eng.swapped)
	}
	eng.swappedCount = 0
	eng.iteration = 0
	if eng.rec != nil {
		// A (re)bound engine starts a fresh chain, so the recorder's
		// swap section restarts with it; generation-phase sections
		// recorded earlier in the pipeline are preserved.
		eng.rec.StartRun(eng.opt.Seed, eng.p, m)
	}
}

// Reset rebinds the engine to a new edge list, reusing the table,
// counters, scratch and pool when capacities allow. Tracking state and
// the iteration counter restart from zero, so a Reset engine behaves
// exactly like a freshly constructed one (bit-identically for
// Workers=1). The previous edge list is left as the last Step left it.
func (eng *Engine) Reset(el *graph.EdgeList) {
	eng.bind(el)
}

// SetSeed redirects the randomness of subsequent iterations to a new
// seed stream. Combined with Reset, it lets one engine's buffers serve
// a batch of independent samples.
func (eng *Engine) SetSeed(seed uint64) { eng.opt.Seed = seed }

// SetStop attaches (or, with nil, detaches) a cooperative stop flag for
// subsequent iterations, propagating it to the permutation appliers.
// With a nil stop the plain loop bodies run, preserving the
// zero-allocation, bit-identical hot path.
func (eng *Engine) SetStop(stop *par.Stop) {
	eng.stop = stop
	eng.apEdges.SetStop(stop)
	eng.apFlags.SetStop(stop)
}

// Close releases the engine's worker pool (unless it was supplied via
// Options.Pool, in which case its owner closes it). The engine must not
// be used afterwards. Idempotent.
func (eng *Engine) Close() {
	if eng.ownsPool {
		eng.pool.Close()
	}
}

// EverSwappedFraction returns the fraction of edges that have been in a
// successful swap so far (0 when tracking is disabled).
func (eng *Engine) EverSwappedFraction() float64 {
	if len(eng.swapped) == 0 {
		return 0
	}
	return float64(eng.swappedCount) / float64(len(eng.swapped))
}

// Step runs one full swap iteration and returns its statistics.
func (eng *Engine) Step() IterStats {
	stats, _ := eng.step()
	return stats
}

// clearTable restores the edge table and writer counters after an
// abandoned iteration, so the next Step (or a Reset) finds the same
// clean state a completed iteration leaves.
func (eng *Engine) clearTable() {
	if eng.table == nil {
		// Table-less cells (multigraph-stub) have nothing to restore.
		return
	}
	eng.pool.Run(eng.table.NumSlots(), eng.clearBody)
	for _, w := range eng.writers {
		w.Reset()
	}
}

// step runs one swap iteration, reporting whether the stop flag
// interrupted it. An interrupted iteration keeps whatever partial work
// committed (every committed swap is individually valid, so the edge
// list stays degree- and simplicity-preserving), restores the hash
// table, and reports no statistics. With a recorder attached the loop
// bodies are the instrumented ones, which do not poll; cancellation
// latency is then bounded by a phase, not a poll interval.
//
//nullgraph:hotpath
func (eng *Engine) step() (IterStats, bool) {
	if eng.vertexMH {
		return eng.stepVertex()
	}
	if eng.connMode {
		return eng.stepConnected()
	}
	m := len(eng.el.Edges)
	it := eng.iteration
	eng.iteration++
	if m < 2 {
		return IterStats{}, eng.stop.Stopped()
	}
	pool := eng.pool
	stop := eng.stop
	// In-loop polling variants only exist for the plain bodies; the
	// instrumented ones cancel at phase boundaries.
	polled := stop != nil && eng.rec == nil
	if stop.Stopped() {
		// Nothing touched yet: the table is still clean.
		return IterStats{}, true
	}

	// Phase 1: register the current edge set (skipped for cells whose
	// acceptance rule never consults the table).
	if eng.useTable {
		if polled {
			pool.Run(m, eng.registerStopBody)
		} else {
			pool.Run(m, eng.registerBody)
		}
		if stop.Stopped() {
			eng.clearTable()
			return IterStats{}, true
		}
	}

	// Phase 2: permute. The swapped flags ride along under the same
	// targets so flag k keeps following edge k.
	eng.permSeed = permSeedFor(eng.opt.Seed, it)
	if polled {
		pool.Run(m, eng.targetsStopBody)
	} else {
		pool.Run(m, eng.targetsBody)
	}
	if stop.Stopped() {
		eng.clearTable()
		return IterStats{}, true
	}
	eng.apEdges.Apply(eng.el.Edges, eng.h, eng.p, pool)
	if eng.swapped != nil {
		// A stop between the two applies leaves the flags lagging the
		// edges; acceptable, because an interrupted sample's tracking
		// state is discarded (the run ends, and Reset clears it).
		eng.apFlags.Apply(eng.swapped, eng.h, eng.p, pool)
	}
	if stop.Stopped() {
		eng.clearTable()
		return IterStats{}, true
	}

	// Phase 3: propose swaps on adjacent disjoint pairs.
	pairs := m / 2
	stats := IterStats{Attempts: int64(pairs)}
	eng.sweepSeed = sweepSeedFor(eng.opt.Seed, it)
	for w := range eng.successes {
		eng.successes[w].V = 0
		eng.newly[w].V = 0
	}
	if polled {
		pool.Run(pairs, eng.sweepStopBody)
	} else {
		pool.Run(pairs, eng.sweepBody)
	}
	for w := range eng.successes {
		stats.Successes += eng.successes[w].V
		eng.swappedCount += eng.newly[w].V
	}
	if eng.swapped != nil {
		stats.EverSwapped = eng.EverSwappedFraction()
	}
	if stop.Stopped() {
		eng.clearTable()
		return IterStats{}, true
	}

	// Phase 4: reset the table for the next iteration — a streaming
	// parallel sweep (the measured winner at swap occupancy; see the
	// hashtable package doc), with the deterministic load check at this
	// quiescent point.
	if eng.useTable {
		eng.table.CheckLoad(eng.writers)
		eng.clearTable()
	}
	if eng.rec != nil {
		// Quiescent point: all workers joined, so aggregating and
		// resetting their cells races with nothing.
		eng.rec.FlushIteration(stats.Attempts, stats.Successes, stats.EverSwapped)
	}
	return stats, false
}

// Stopper decides, after each completed iteration, whether the chain
// has run long enough. Observe is called with the 0-based iteration
// index and that iteration's statistics; returning true ends the run.
// The swap layer knows nothing about convergence policy — adaptive
// monitors (internal/converge) plug in here via an adapter, keeping
// this package free of any dependency on diagnostics.
type Stopper interface {
	Observe(it int, stats IterStats) bool
}

// runLoop drives eng for the given iteration budget, optionally
// stopping when fully mixed or when a Stopper (if non-nil) fires. The
// boolean reports whether the mixed/stopper condition ended the run
// before the budget.
func runLoop(eng *Engine, iterations int, stopWhenMixed bool, st Stopper) (Result, bool) {
	result := Result{PerIteration: make([]IterStats, 0, iterations)}
	for it := 0; it < iterations; it++ {
		stats, stopped := eng.step()
		if stopped {
			result.Stopped = true
			return result, false
		}
		result.PerIteration = append(result.PerIteration, stats)
		result.TotalSuccesses += stats.Successes
		if eng.opt.OnIteration != nil {
			eng.opt.OnIteration(it, stats)
		}
		if stopWhenMixed && stats.EverSwapped >= 1.0 {
			return result, true
		}
		if st != nil && st.Observe(it, stats) {
			return result, true
		}
	}
	return result, false
}

// Run performs opt.Iterations parallel double-edge swap iterations on el
// in place and returns per-iteration statistics.
func Run(el *graph.EdgeList, opt Options) Result {
	eng := NewEngine(el, opt)
	defer eng.Close()
	result, _ := runLoop(eng, opt.Iterations, false, nil)
	return result
}

// RunUntilMixed swaps until every edge has been part of a successful
// swap at least once (the paper's empirical mixing signal), or until
// maxIterations. Tracking is forced on. It returns the statistics and
// whether full mixing was reached.
func RunUntilMixed(el *graph.EdgeList, opt Options, maxIterations int) (Result, bool) {
	opt.TrackSwapped = true
	eng := NewEngine(el, opt)
	defer eng.Close()
	return runLoop(eng, maxIterations, true, nil)
}

// RunEngine performs eng.opt.Iterations iterations on an existing
// (possibly Reset) engine, reusing all of its buffers.
func RunEngine(eng *Engine) Result {
	result, _ := runLoop(eng, eng.opt.Iterations, false, nil)
	return result
}

// RunEngineUntilMixed is RunUntilMixed on an existing engine, which
// must have been constructed with TrackSwapped set.
func RunEngineUntilMixed(eng *Engine, maxIterations int) (Result, bool) {
	if eng.swapped == nil && len(eng.el.Edges) > 0 {
		panic("swap: RunEngineUntilMixed requires TrackSwapped")
	}
	return runLoop(eng, maxIterations, true, nil)
}

// RunEngineStopper drives eng until the stopper fires or maxIterations
// complete, whichever is first. It returns the statistics and whether
// the stopper ended the run (false means the budget ran out or the
// cooperative stop flag canceled the run).
func RunEngineStopper(eng *Engine, maxIterations int, st Stopper) (Result, bool) {
	return runLoop(eng, maxIterations, false, st)
}
