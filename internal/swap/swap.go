// Package swap implements the paper's parallel double-edge swap engine
// (Algorithm III.1): an MCMC process that uniformly mixes the simple
// graphs of a fixed degree sequence.
//
// Each iteration:
//  1. every current edge is inserted into a concurrent hash table,
//  2. the edge list is randomly permuted in parallel (Shun et al.),
//  3. adjacent disjoint pairs (E[2k], E[2k+1]) each propose one of the
//     two endpoint exchanges, chosen by a fair coin, and commit it iff
//     neither new edge is a self-loop and neither is already present in
//     the table (checked with thread-safe TestAndSet),
//  4. the table is cleared in parallel.
//
// Degree sequence, edge count and — once the input is simple —
// simplicity are invariants of every iteration. Non-simple inputs (the
// O(m) Chung-Lu model emits loops and multi-edges) are progressively
// "simplified": a duplicate edge can swap into two fresh edges, and the
// paper observes a few dozen iterations remove all multi-edges.
//
// Deviation from the paper's pseudocode, documented here once: the
// self-loop test runs *before* the TestAndSet calls rather than after.
// Algorithm III.1's short-circuit `TestAndSet(g) = false and
// TestAndSet(h) = false and not loops` inserts g (and possibly h) into
// the table even when the loop test then rejects the proposal, which
// spuriously blocks later proposals of g in the same iteration. Testing
// loops first only removes those spurious failures; every committed
// swap satisfies exactly the same conditions.
package swap

import (
	"fmt"

	"nullgraph/internal/graph"
	"nullgraph/internal/hashtable"
	"nullgraph/internal/par"
	"nullgraph/internal/permute"
	"nullgraph/internal/rng"
)

// Options configures a swap run.
type Options struct {
	// Iterations is the number of full permute-and-sweep passes.
	Iterations int
	// Workers is the parallel width; <= 0 means GOMAXPROCS.
	Workers int
	// Seed drives the permutations and proposal coins. With Workers=1
	// the run is bit-reproducible. With Workers>1 all *randomness* is
	// still seed-determined, but when two workers concurrently propose
	// the same new edge, which proposal the hash table admits depends
	// on scheduling — the same benign race the paper's OpenMP
	// implementation has — so exact outputs can differ across runs
	// while every invariant (degrees, edge count, simplicity) and the
	// sampled distribution are unaffected.
	Seed uint64
	// Probing selects the hash-table collision strategy.
	Probing hashtable.Probing
	// TrackSwapped maintains a per-edge "ever successfully swapped" flag
	// so IterStats can report the mixing fraction the paper uses as its
	// empirical stopping signal. Costs one extra permutation per
	// iteration; leave false in throughput benchmarks.
	TrackSwapped bool
	// OnIteration, when non-nil, receives each iteration's statistics as
	// soon as the sweep finishes; experiments use it to snapshot
	// convergence without re-running.
	OnIteration func(iteration int, stats IterStats)
}

// Validate reports option misuse.
func (o Options) Validate() error {
	if o.Iterations < 0 {
		return fmt.Errorf("swap: negative iteration count %d", o.Iterations)
	}
	return nil
}

// IterStats reports one iteration of swapping.
type IterStats struct {
	// Attempts is the number of proposed pair swaps (⌊m/2⌋).
	Attempts int64
	// Successes is the number of committed swaps.
	Successes int64
	// EverSwapped is the fraction of edges that have been part of at
	// least one successful swap in any iteration so far. Only populated
	// when Options.TrackSwapped is set.
	EverSwapped float64
}

// Result summarizes a run.
type Result struct {
	PerIteration []IterStats
	// TotalSuccesses across all iterations.
	TotalSuccesses int64
}

// Engine holds the reusable state of the swap process on one edge list:
// the concurrent edge table and the ever-swapped flags. Iterations can
// be run in any grouping without losing tracking state.
type Engine struct {
	el      *graph.EdgeList
	opt     Options
	p       int
	table   *hashtable.EdgeSet
	swapped []uint8
	// iteration counts all iterations run so far; it seeds each
	// iteration's permutation and proposal streams.
	iteration int
}

// NewEngine prepares a swap engine over el. The engine mutates el's
// edge slice in place; el must not be resized while the engine is live.
func NewEngine(el *graph.EdgeList, opt Options) *Engine {
	p := par.Workers(opt.Workers)
	m := len(el.Edges)
	eng := &Engine{el: el, opt: opt, p: p}
	if m >= 2 {
		// Worst case insertions per iteration: m initial edges + 2 new
		// edges per proposing pair = 2m.
		eng.table = hashtable.New(2*m, opt.Probing)
	}
	if opt.TrackSwapped {
		eng.swapped = make([]uint8, m)
	}
	return eng
}

// EverSwappedFraction returns the fraction of edges that have been in a
// successful swap so far (0 when tracking is disabled).
func (eng *Engine) EverSwappedFraction() float64 {
	if eng.swapped == nil || len(eng.swapped) == 0 {
		return 0
	}
	count := par.SumInt64(len(eng.swapped), eng.p, func(i int) int64 { return int64(eng.swapped[i]) })
	return float64(count) / float64(len(eng.swapped))
}

// Step runs one full swap iteration and returns its statistics.
func (eng *Engine) Step() IterStats {
	edges := eng.el.Edges
	m := len(edges)
	it := eng.iteration
	eng.iteration++
	if m < 2 {
		return IterStats{}
	}
	p := eng.p

	// Phase 1: register the current edge set.
	table := eng.table
	par.ForRange(m, p, func(_ int, r par.Range) {
		for i := r.Begin; i < r.End; i++ {
			table.TestAndSet(edges[i].Key())
		}
	})

	// Phase 2: permute. The swapped flags ride along under the same
	// targets so flag k keeps following edge k.
	permSeed := rng.Mix64(eng.opt.Seed) + 0x9e3779b97f4a7c15*uint64(it+1)
	h := permute.Targets(permSeed, m, p)
	permute.Apply(edges, h, p)
	if eng.swapped != nil {
		permute.Apply(eng.swapped, h, p)
	}

	// Phase 3: propose swaps on adjacent disjoint pairs.
	pairs := m / 2
	stats := IterStats{Attempts: int64(pairs)}
	sweepSeed := rng.Mix64(eng.opt.Seed) ^ rng.Mix64(uint64(it)+0xabcd0123)
	successes := make([]int64, p)
	par.ForRange(pairs, p, func(w int, r par.Range) {
		src := rng.New(rng.Mix64(sweepSeed) ^ rng.Mix64(uint64(w)+0x5134))
		var local int64
		for k := r.Begin; k < r.End; k++ {
			i, j := 2*k, 2*k+1
			e, f := edges[i], edges[j]
			var g, hh graph.Edge
			if src.Bool() {
				g = graph.Edge{U: e.U, V: f.U}
				hh = graph.Edge{U: e.V, V: f.V}
			} else {
				g = graph.Edge{U: e.U, V: f.V}
				hh = graph.Edge{U: e.V, V: f.U}
			}
			if g.IsLoop() || hh.IsLoop() {
				continue
			}
			if table.TestAndSet(g.Key()) {
				continue
			}
			if table.TestAndSet(hh.Key()) {
				// g stays registered: harmless for correctness (it only
				// suppresses re-proposals of g this iteration).
				continue
			}
			edges[i], edges[j] = g, hh
			if eng.swapped != nil {
				eng.swapped[i], eng.swapped[j] = 1, 1
			}
			local++
		}
		successes[w] = local
	})
	for _, s := range successes {
		stats.Successes += s
	}
	if eng.swapped != nil {
		stats.EverSwapped = eng.EverSwappedFraction()
	}

	// Phase 4: reset the table for the next iteration.
	table.Clear(p)
	return stats
}

// Run performs opt.Iterations parallel double-edge swap iterations on el
// in place and returns per-iteration statistics.
func Run(el *graph.EdgeList, opt Options) Result {
	eng := NewEngine(el, opt)
	result := Result{PerIteration: make([]IterStats, 0, opt.Iterations)}
	for it := 0; it < opt.Iterations; it++ {
		stats := eng.Step()
		result.PerIteration = append(result.PerIteration, stats)
		result.TotalSuccesses += stats.Successes
		if opt.OnIteration != nil {
			opt.OnIteration(it, stats)
		}
	}
	return result
}

// RunUntilMixed swaps until every edge has been part of a successful
// swap at least once (the paper's empirical mixing signal), or until
// maxIterations. Tracking is forced on. It returns the statistics and
// whether full mixing was reached.
func RunUntilMixed(el *graph.EdgeList, opt Options, maxIterations int) (Result, bool) {
	opt.TrackSwapped = true
	eng := NewEngine(el, opt)
	var result Result
	for it := 0; it < maxIterations; it++ {
		stats := eng.Step()
		result.PerIteration = append(result.PerIteration, stats)
		result.TotalSuccesses += stats.Successes
		if opt.OnIteration != nil {
			opt.OnIteration(it, stats)
		}
		if stats.EverSwapped >= 1.0 {
			return result, true
		}
	}
	return result, false
}
