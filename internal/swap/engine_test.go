package swap

import (
	"encoding/binary"
	"hash/fnv"
	"reflect"
	"testing"

	"nullgraph/internal/graph"
	"nullgraph/internal/obs"
	"nullgraph/internal/permute"
	"nullgraph/internal/rng"
)

// edgeHash fingerprints an edge list in order (not as a set), so it
// detects any difference in the final array layout, not just the graph.
func edgeHash(el *graph.EdgeList) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, e := range el.Edges {
		binary.LittleEndian.PutUint64(buf[:], e.Key())
		h.Write(buf[:])
	}
	return h.Sum64()
}

// TestGoldenSerialChain pins the exact serial output of the engine: the
// value was captured from the pre-buffer-reuse implementation, so any
// refactor that perturbs the Workers=1 bit-stream (seed derivations,
// permutation, sweep order, rejection logic) fails here.
func TestGoldenSerialChain(t *testing.T) {
	el := ring(2000)
	Run(el, Options{Iterations: 4, Workers: 1, Seed: 11})
	const want = uint64(0x19e55278175fc9c9)
	if got := edgeHash(el); got != want {
		t.Fatalf("serial chain output hash = %#x, want %#x", got, want)
	}
}

// naiveStep is an independent map-based reimplementation of one
// Workers=1 iteration, sharing only the seed-derivation helpers with
// the engine. It is the executable spec the buffered engine must match.
func naiveStep(el *graph.EdgeList, seed uint64, it int) {
	m := len(el.Edges)
	if m < 2 {
		return
	}
	set := make(map[uint64]bool, 2*m)
	testAndSet := func(key uint64) bool {
		if set[key] {
			return true
		}
		set[key] = true
		return false
	}
	for _, e := range el.Edges {
		testAndSet(e.Key())
	}
	h := permute.Targets(permSeedFor(seed, it), m, 1)
	for i := range el.Edges {
		j := h[i]
		el.Edges[i], el.Edges[j] = el.Edges[j], el.Edges[i]
	}
	var src rng.Source
	src.Reseed(sweepWorkerSeed(sweepSeedFor(seed, it), 0))
	for k := 0; k < m/2; k++ {
		i, j := 2*k, 2*k+1
		e, f := el.Edges[i], el.Edges[j]
		var g, hh graph.Edge
		if src.Bool() {
			g = graph.Edge{U: e.U, V: f.U}
			hh = graph.Edge{U: e.V, V: f.V}
		} else {
			g = graph.Edge{U: e.U, V: f.V}
			hh = graph.Edge{U: e.V, V: f.U}
		}
		if g.IsLoop() || hh.IsLoop() {
			continue
		}
		if testAndSet(g.Key()) {
			continue
		}
		if testAndSet(hh.Key()) {
			continue
		}
		el.Edges[i], el.Edges[j] = g, hh
	}
}

// TestEngineMatchesNaiveReference locks the buffered engine to the
// naive per-iteration spec above, edge for edge, across several
// iterations and graph shapes.
func TestEngineMatchesNaiveReference(t *testing.T) {
	for _, n := range []int{7, 64, 999, 5000} {
		const seed = 31
		fast := ring(n)
		slow := ring(n)
		eng := NewEngine(fast, Options{Workers: 1, Seed: seed})
		for it := 0; it < 5; it++ {
			eng.Step()
			naiveStep(slow, seed, it)
			for i := range fast.Edges {
				if fast.Edges[i] != slow.Edges[i] {
					t.Fatalf("n=%d iteration %d: engine edge %d = %v, naive reference %v",
						n, it, i, fast.Edges[i], slow.Edges[i])
				}
			}
		}
		eng.Close()
	}
}

// TestEngineResetMatchesFresh locks Reset's contract: a reused engine
// rebound to a new edge list behaves bit-identically (Workers=1) to a
// freshly constructed engine, including after shrinking and regrowing.
func TestEngineResetMatchesFresh(t *testing.T) {
	eng := NewEngine(ring(3000), Options{Workers: 1, Seed: 5, TrackSwapped: true})
	defer eng.Close()
	for _, n := range []int{3000, 800, 4096} { // same size, shrink, grow
		reused := ring(n)
		eng.Reset(reused)
		var gotStats []IterStats
		for it := 0; it < 3; it++ {
			gotStats = append(gotStats, eng.Step())
		}
		fresh := ring(n)
		ref := NewEngine(fresh, Options{Workers: 1, Seed: 5, TrackSwapped: true})
		var wantStats []IterStats
		for it := 0; it < 3; it++ {
			wantStats = append(wantStats, ref.Step())
		}
		ref.Close()
		if edgeHash(reused) != edgeHash(fresh) {
			t.Fatalf("n=%d: reset engine diverged from fresh engine", n)
		}
		for it := range gotStats {
			if gotStats[it] != wantStats[it] {
				t.Fatalf("n=%d iteration %d: reset stats %+v, fresh stats %+v",
					n, it, gotStats[it], wantStats[it])
			}
		}
	}
}

func TestRunEngineHelpers(t *testing.T) {
	eng := NewEngine(ring(400), Options{Iterations: 6, Workers: 1, Seed: 2})
	defer eng.Close()
	res := RunEngine(eng)
	if len(res.PerIteration) != 6 {
		t.Fatalf("RunEngine ran %d iterations, want 6", len(res.PerIteration))
	}
	tracked := NewEngine(ring(256), Options{Workers: 1, Seed: 3, TrackSwapped: true})
	defer tracked.Close()
	if _, mixed := RunEngineUntilMixed(tracked, 200); !mixed {
		t.Error("256-ring did not mix on a reusable engine")
	}
	// Reset restarts tracking: the fraction must drop back to zero.
	tracked.Reset(ring(256))
	if f := tracked.EverSwappedFraction(); f != 0 {
		t.Errorf("EverSwappedFraction after Reset = %v, want 0", f)
	}
	untracked := NewEngine(ring(64), Options{Workers: 1, Seed: 4})
	defer untracked.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RunEngineUntilMixed without TrackSwapped did not panic")
			}
		}()
		RunEngineUntilMixed(untracked, 1)
	}()
}

func TestEngineCloseIdempotent(t *testing.T) {
	for _, workers := range []int{1, 4} {
		eng := NewEngine(ring(32), Options{Workers: workers, Seed: 1})
		eng.Step()
		eng.Close()
		eng.Close()
	}
}

// TestStepDoesNotAllocate is the tentpole's acceptance check in unit
// form: after warm-up, Step on a graph large enough to take the
// parallel permutation path must not touch the heap. The obs layer is
// compiled in here but disabled (no Recorder), which is exactly the
// configuration the CI alloc budget protects.
func TestStepDoesNotAllocate(t *testing.T) {
	el := ring(1 << 13) // above permute's serial cutoff
	eng := NewEngine(el, Options{Workers: 1, Seed: 1, TrackSwapped: true})
	defer eng.Close()
	eng.Step() // warm-up: scratch buffers materialize on first use
	if allocs := testing.AllocsPerRun(5, func() { eng.Step() }); allocs != 0 {
		t.Errorf("Step allocated %v objects per call after warm-up, want 0", allocs)
	}
}

// TestInstrumentedEngineMatchesPlain locks the observability layer's
// non-interference contract: attaching a recorder must not change the
// chain — the instrumented engine's edge stream is bit-identical to the
// plain engine's for the same seed.
func TestInstrumentedEngineMatchesPlain(t *testing.T) {
	for _, workers := range []int{1, 4} {
		plain := ring(3000)
		instrumented := ring(3000)
		rec := obs.NewRecorder()
		Run(plain, Options{Iterations: 4, Workers: workers, Seed: 9, TrackSwapped: true})
		Run(instrumented, Options{Iterations: 4, Workers: workers, Seed: 9, TrackSwapped: true, Recorder: rec})
		if workers == 1 && edgeHash(plain) != edgeHash(instrumented) {
			t.Errorf("workers=%d: recorder changed the chain output", workers)
		}
		rep := rec.Report()
		if len(rep.Iterations) != 4 {
			t.Fatalf("workers=%d: report has %d iterations, want 4", workers, len(rep.Iterations))
		}
		// The rejection split is exhaustive: every proposal either
		// commits or lands in exactly one rejection counter.
		for it, r := range rep.Iterations {
			if got := r.Successes + r.RejectSelfLoop + r.RejectDuplicate + r.RejectPartnerDuplicate; got != r.Attempts {
				t.Errorf("workers=%d iteration %d: split sums to %d, want %d attempts", workers, it, got, r.Attempts)
			}
		}
		// Every registration probes the table: the histogram must hold
		// at least m probes per iteration.
		var probeCount int64
		for _, n := range rep.ProbeHistogram {
			probeCount += n
		}
		if probeCount < int64(4*3000) {
			t.Errorf("workers=%d: probe histogram holds %d samples, want >= %d", workers, probeCount, 4*3000)
		}
	}
}

// TestInstrumentedReportDeterministic locks the acceptance criterion:
// same seed and Workers=1 produce identical report counters.
func TestInstrumentedReportDeterministic(t *testing.T) {
	collect := func() *obs.RunReport {
		rec := obs.NewRecorder()
		el := ring(2500)
		Run(el, Options{Iterations: 5, Workers: 1, Seed: 77, TrackSwapped: true, Recorder: rec})
		return rec.Report()
	}
	a, b := collect(), collect()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("reports differ across identical seeded runs:\n%+v\n%+v", a, b)
	}
	if a.SwapTotals.Successes == 0 || a.SwapTotals.FinalEverSwapped == 0 {
		t.Errorf("degenerate report: %+v", a.SwapTotals)
	}
}

// TestInstrumentedStepSteadyStateAllocs: with a recorder attached the
// per-Step cost is bounded by the iteration-record append — at most a
// couple of amortized allocations, never per-edge work.
func TestInstrumentedStepSteadyStateAllocs(t *testing.T) {
	rec := obs.NewRecorder()
	el := ring(1 << 13)
	eng := NewEngine(el, Options{Workers: 1, Seed: 1, TrackSwapped: true, Recorder: rec})
	defer eng.Close()
	for i := 0; i < 8; i++ {
		eng.Step() // warm-up; lets the iterations slice grow
	}
	if allocs := testing.AllocsPerRun(5, func() { eng.Step() }); allocs > 1 {
		t.Errorf("instrumented Step allocated %v objects per call, want <= 1 (amortized append)", allocs)
	}
}

// TestEngineResetRestartsReport: a rebound engine reports only its
// latest run (the Mixer batch pattern).
func TestEngineResetRestartsReport(t *testing.T) {
	rec := obs.NewRecorder()
	eng := NewEngine(ring(512), Options{Workers: 1, Seed: 6, Recorder: rec})
	defer eng.Close()
	eng.Step()
	eng.Step()
	eng.Reset(ring(512))
	eng.Step()
	if got := len(rec.Report().Iterations); got != 1 {
		t.Errorf("report holds %d iterations after Reset+1 Step, want 1", got)
	}
}
