package swap

import (
	"testing"

	"nullgraph/internal/par"
)

// TestRunStopPreTripped: a tripped flag ends the run before the first
// iteration with Stopped set and the edge list untouched.
func TestRunStopPreTripped(t *testing.T) {
	el := ring(512)
	orig := ring(512)
	stop := &par.Stop{}
	stop.Set()
	res := Run(el, Options{Iterations: 10, Workers: 2, Seed: 1, Stop: stop})
	if !res.Stopped {
		t.Fatal("pre-tripped stop: Result.Stopped is false")
	}
	if len(res.PerIteration) != 0 {
		t.Fatalf("pre-tripped stop ran %d iterations", len(res.PerIteration))
	}
	for i := range orig.Edges {
		if el.Edges[i] != orig.Edges[i] {
			t.Fatalf("pre-tripped stop mutated edge %d", i)
		}
	}
}

// TestRunStopUntrippedBitIdentical: polling must not change the chain
// at Workers=1.
func TestRunStopUntrippedBitIdentical(t *testing.T) {
	a := ring(2048)
	Run(a, Options{Iterations: 6, Workers: 1, Seed: 9})
	b := ring(2048)
	res := Run(b, Options{Iterations: 6, Workers: 1, Seed: 9, Stop: &par.Stop{}})
	if res.Stopped {
		t.Fatal("untripped stop reported Stopped")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("stop polling changed the chain at edge %d", i)
		}
	}
}

// TestStepAfterMidIterationStop: an interrupted iteration must restore
// the hash table so the next Step behaves like a clean one. The
// mid-iteration path is exercised deterministically by tripping the
// flag between Steps (phase boundaries are a superset of the in-loop
// polls' behavior: both leave the table cleared).
func TestStepAfterMidIterationStop(t *testing.T) {
	el := ring(1024)
	degrees := degreesOf(el)
	eng := NewEngine(el, Options{Workers: 2, Seed: 4})
	defer eng.Close()
	eng.Step()

	stop := &par.Stop{}
	stop.Set()
	eng.SetStop(stop)
	if stats, stopped := eng.step(); !stopped || stats.Successes != 0 {
		t.Fatalf("tripped step: stopped=%v stats=%+v", stopped, stats)
	}

	// Clear the flag and keep going: invariants must hold.
	eng.SetStop(nil)
	for i := 0; i < 4; i++ {
		eng.Step()
	}
	if !equalInt64(degrees, degreesOf(el)) {
		t.Fatal("degree sequence broken after an interrupted iteration")
	}
	if rep := el.CheckSimplicity(); !rep.IsSimple() {
		t.Fatalf("graph not simple after an interrupted iteration: %+v", rep)
	}
}
