package swap

import (
	"testing"

	"nullgraph/internal/connected"
	"nullgraph/internal/degseq"
	"nullgraph/internal/graph"
)

func connectedStart(t *testing.T, degrees []int64) *graph.EdgeList {
	t.Helper()
	el, err := connected.Realize(degseq.FromDegrees(degrees))
	if err != nil {
		t.Fatalf("Realize(%v): %v", degrees, err)
	}
	return el
}

func TestConnectedOptionValidate(t *testing.T) {
	for _, space := range []graph.Space{graph.LoopyStub, graph.LoopyVertex, graph.MultigraphStub, graph.MultigraphVertex} {
		if err := (Options{Space: space, Connected: true}).Validate(); err == nil {
			t.Errorf("Connected with %v should fail validation", space)
		}
	}
	if err := (Options{Space: graph.SimpleStub, Connected: true}).Validate(); err != nil {
		t.Errorf("Connected with simple space rejected: %v", err)
	}
}

func TestConnectedNewEnginePanicsOnBadSpace(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewEngine with Connected on a loopy space did not panic")
		}
	}()
	NewEngine(connectedStart(t, []int64{2, 2, 2}), Options{Space: graph.LoopyStub, Connected: true})
}

func TestConnectedNewEnginePanicsOnDisconnectedInput(t *testing.T) {
	el := graph.NewEdgeList([]graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 3, V: 5},
	}, 6)
	defer func() {
		if recover() == nil {
			t.Fatal("NewEngine with disconnected input did not panic")
		}
	}()
	NewEngine(el, Options{Connected: true})
}

// TestConnectedChainInvariants runs the connected chain and checks
// every iteration preserves connectivity, simplicity, and degrees.
func TestConnectedChainInvariants(t *testing.T) {
	degrees := []int64{3, 3, 3, 3, 3, 3, 2, 2, 2, 2}
	el := connectedStart(t, degrees)
	want := el.Degrees(1)
	eng := NewEngine(el, Options{Connected: true, Seed: 7, TrackSwapped: true})
	defer eng.Close()
	total := int64(0)
	for it := 0; it < 40; it++ {
		stats := eng.Step()
		total += stats.Successes
		if _, count := graph.ConnectedComponents(el, 1); count != 1 {
			t.Fatalf("iteration %d: %d components", it, count)
		}
		if s := el.CheckSimplicity(); !s.IsSimple() {
			t.Fatalf("iteration %d: not simple: %+v", it, s)
		}
	}
	if total == 0 {
		t.Fatal("connected chain accepted no swaps in 40 iterations")
	}
	got := el.Degrees(1)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d degree %d, want %d", v, got[v], want[v])
		}
	}
	st := eng.ConnectivityStats()
	if st == nil || st.Proposals == 0 {
		t.Fatalf("ConnectivityStats = %+v, want live counters", st)
	}
	if st.FastPathHits+st.BoundedChecks == 0 {
		t.Fatalf("no checker traffic recorded: %+v", st)
	}
}

// TestConnectedChainDeterministic pins that the serial chain is
// bit-reproducible regardless of the Workers setting.
func TestConnectedChainDeterministic(t *testing.T) {
	degrees := []int64{3, 3, 3, 3, 3, 3, 3, 3}
	run := func(workers int) []graph.Edge {
		el := connectedStart(t, degrees)
		eng := NewEngine(el, Options{Connected: true, Seed: 11, Workers: workers, Iterations: 25})
		defer eng.Close()
		RunEngine(eng)
		return append([]graph.Edge(nil), el.Edges...)
	}
	a, b := run(1), run(4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs across worker widths: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestConnectedChainRejectsDisconnection pins that a state space whose
// only reachable disconnection is blocked stays connected: C6's sole
// non-identity simple swap family either re-forms a 6-cycle or splits
// two triangles, so every sampled state must remain a single cycle.
func TestConnectedChainRejectsDisconnection(t *testing.T) {
	el := connectedStart(t, []int64{2, 2, 2, 2, 2, 2})
	eng := NewEngine(el, Options{Connected: true, Seed: 3, Iterations: 60})
	defer eng.Close()
	RunEngine(eng)
	if _, count := graph.ConnectedComponents(el, 1); count != 1 {
		t.Fatalf("connected chain left %d components", count)
	}
	st := eng.ConnectivityStats()
	if st.RejectedDisconnecting == 0 {
		t.Fatal("C6 chain never saw a disconnecting proposal; rejection path untested")
	}
}

// TestConnectedReset checks engine reuse across samples: Reset rebinds
// the checker and restarts its counters.
func TestConnectedReset(t *testing.T) {
	degrees := []int64{2, 2, 2, 2, 2, 2}
	el := connectedStart(t, degrees)
	eng := NewEngine(el, Options{Connected: true, Seed: 5, Iterations: 10})
	defer eng.Close()
	RunEngine(eng)
	first := *eng.ConnectivityStats()
	el2 := connectedStart(t, degrees)
	eng.SetSeed(6)
	eng.Reset(el2)
	if st := eng.ConnectivityStats(); st.Proposals != 0 {
		t.Fatalf("Reset did not clear connectivity stats: %+v", st)
	}
	RunEngine(eng)
	if _, count := graph.ConnectedComponents(el2, 1); count != 1 {
		t.Fatal("post-Reset chain disconnected the graph")
	}
	if first.Proposals == 0 {
		t.Fatal("first run recorded no proposals")
	}
}
