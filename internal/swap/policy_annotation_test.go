package swap

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestAcceptancePoliciesStayAnnotated pins the //nullgraph:hotpath
// directive on the per-space acceptance functions. The hotpathalloc
// analyzer only inspects annotated functions, so dropping a directive
// silently removes the alloc-free gate from that policy; this test
// turns that into a loud failure. stepVertex is intentionally absent —
// the vertex-labeled MH sweep is serial and map-backed by design (see
// the policy.go file doc).
func TestAcceptancePoliciesStayAnnotated(t *testing.T) {
	want := []string{"acceptSimple", "acceptLoopyStub", "rewirePair"}
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "policy.go", nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	annotated := map[string]bool{}
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Doc == nil {
			continue
		}
		for _, c := range fn.Doc.List {
			if strings.TrimSpace(c.Text) == "//nullgraph:hotpath" {
				annotated[fn.Name.Name] = true
			}
		}
	}
	for _, name := range want {
		if !annotated[name] {
			t.Errorf("policy.go: %s lost its //nullgraph:hotpath directive; the hotpathalloc gate no longer covers it", name)
		}
	}
}
