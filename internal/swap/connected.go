// The serial connectivity-preserving chain for the simple cell
// (Options.Connected; Viger–Latapy, arXiv:cs/0502085).
//
// Why serial: the parallel kernel's per-iteration safety argument is
// local — each committed swap is individually a legal state transition
// against the iteration-frozen edge table. Connectivity is global:
// two swaps that each preserve connectivity on the current graph can
// jointly disconnect it (each can sever a bridge the other's path
// relied on), and no frozen per-iteration witness can arbitrate the
// interleaving without serializing the commits anyway. So the
// connected cell follows the vertex-MH precedent: a serial sweep of
// ⌊m/2⌋ proposals drawn as uniform ordered position pairs plus a fair
// coin, bit-reproducible for any Workers setting.
//
// Why plain rejection samples uniformly: in the simple cell stub- and
// vertex-labeled uniformity coincide, the pair-and-coin proposal is
// symmetric between any two simple graphs, and restricting a
// symmetric-proposal chain to a subset (here: connected graphs) by
// rejecting moves that leave the subset preserves the uniform
// stationary distribution on the subset. Irreducibility over connected
// simple realizations of a degree sequence under connectivity-
// preserving double-edge swaps is Taylor's theorem (the result
// Viger–Latapy build on), and laziness (rejections) gives
// aperiodicity — so the chain converges to uniform over connected
// simple graphs, which the connected-uniformity statcheck gates verify
// against exact enumeration.
package swap

import (
	"nullgraph/internal/connected"
	"nullgraph/internal/rng"
)

// ConnectivityStats returns a snapshot of the connectivity checker's
// outcome counters (fast-path hits, bounded/full checks, rejected
// disconnecting proposals) accumulated since the last bind, or nil for
// engines without Options.Connected.
func (eng *Engine) ConnectivityStats() *connected.Stats {
	if eng.conn == nil {
		return nil
	}
	s := eng.conn.StatsSnapshot()
	return &s
}

// stepConnected runs one serial connectivity-preserving sweep: ⌊m/2⌋
// proposals, each accepted iff it keeps the graph simple (live
// multiset check, as stepVertex) and connected (checker hierarchy:
// witness fast path, bounded bidirectional BFS, full-BFS fallback).
func (eng *Engine) stepConnected() (IterStats, bool) {
	m := len(eng.el.Edges)
	it := eng.iteration
	eng.iteration++
	if m < 2 {
		return IterStats{}, eng.stop.Stopped()
	}
	if eng.stop.Stopped() {
		return IterStats{}, true
	}
	src := rng.New(sweepSeedFor(eng.opt.Seed, it))
	edges := eng.el.Edges
	ms := eng.ms
	conn := eng.conn
	stop := eng.stop
	swapped := eng.swapped
	pairs := m / 2
	stats := IterStats{Attempts: int64(pairs)}
	var local, newly int64
	//nullgraph:cancelable
	for k := 0; k < pairs; k++ {
		if stop != nil && k&2047 == 0 && stop.Stopped() {
			// As in stepVertex: committed proposals are individually
			// valid connected states, so a partial sweep leaves the edge
			// list, multiset, and checker consistent; the interrupted
			// iteration's statistics are dropped.
			return IterStats{}, true
		}
		i := int(src.Uint64n(uint64(m)))
		j := int(src.Uint64n(uint64(m)))
		if i == j {
			continue
		}
		e, f := edges[i], edges[j]
		g, h := rewirePair(e, f, src.Bool())
		gk, hk := g.Key(), h.Key()
		if sameKeyPair(gk, hk, e.Key(), f.Key()) {
			// Identity outcome: the proposed state is the current one.
			continue
		}
		if g.IsLoop() || h.IsLoop() {
			continue
		}
		if gk == hk || ms.Count(gk) > 0 || ms.Count(hk) > 0 {
			// Would create a parallel pair: out of the simple cell.
			continue
		}
		if !conn.SwapKeepsConnected(e, f, g, h) {
			// Would disconnect: out of the connected subspace. The
			// checker already rolled its adjacency back.
			continue
		}
		ms.RemoveEdge(e)
		ms.RemoveEdge(f)
		ms.AddEdge(g)
		ms.AddEdge(h)
		edges[i], edges[j] = g, h
		if swapped != nil {
			if swapped[i] == 0 {
				swapped[i] = 1
				newly++
			}
			if swapped[j] == 0 {
				swapped[j] = 1
				newly++
			}
		}
		local++
	}
	stats.Successes = local
	eng.swappedCount += newly
	if swapped != nil {
		stats.EverSwapped = eng.EverSwappedFraction()
	}
	if eng.rec != nil {
		eng.rec.FlushIteration(stats.Attempts, stats.Successes, stats.EverSwapped)
	}
	return stats, false
}
