package swap

import (
	"testing"

	"nullgraph/internal/graph"
)

// loopyStart is a legal loopy-space state: a ring plus self-loops on a
// few vertices (degrees stay even, no multi-edges).
func loopyStart(n int) *graph.EdgeList {
	el := ring(n)
	for v := 0; v < 3; v++ {
		el.Edges = append(el.Edges, graph.Edge{U: int32(v), V: int32(v)})
	}
	return graph.NewEdgeList(el.Edges, n)
}

// multiStart adds parallel edges and a doubled loop on top of loopyStart.
func multiStart(n int) *graph.EdgeList {
	el := loopyStart(n)
	el.Edges = append(el.Edges,
		graph.Edge{U: 0, V: 1}, graph.Edge{U: 0, V: 1},
		graph.Edge{U: 5, V: 5})
	return graph.NewEdgeList(el.Edges, n)
}

// startFor returns a legal, defect-bearing (where allowed) start state
// for the space.
func startFor(space graph.Space, n int) *graph.EdgeList {
	switch {
	case space.AllowsMulti():
		return multiStart(n)
	case space.AllowsLoops():
		return loopyStart(n)
	default:
		return ring(n)
	}
}

// TestSpaceInvariantMatrix runs every cell of the matrix across seeds
// and worker counts and checks the chain's invariants: degree sequence
// and edge count preserved, and the state stays inside the cell.
func TestSpaceInvariantMatrix(t *testing.T) {
	for _, space := range graph.Spaces() {
		for _, workers := range []int{1, 4} {
			for seed := uint64(1); seed <= 3; seed++ {
				el := startFor(space, 200)
				degBefore := degreesOf(el)
				mBefore := len(el.Edges)
				res := Run(el, Options{Space: space, Iterations: 6, Workers: workers, Seed: seed})
				if len(el.Edges) != mBefore {
					t.Fatalf("%s w=%d seed=%d: edge count %d -> %d", space, workers, seed, mBefore, len(el.Edges))
				}
				if !equalInt64(degreesOf(el), degBefore) {
					t.Errorf("%s w=%d seed=%d: degree sequence changed", space, workers, seed)
				}
				if !el.SatisfiesSpace(space) {
					t.Errorf("%s w=%d seed=%d: output left the space: %v", space, workers, seed,
						graph.ValidateInSpace(el, space))
				}
				if res.TotalSuccesses == 0 {
					t.Errorf("%s w=%d seed=%d: chain never moved", space, workers, seed)
				}
			}
		}
	}
}

// TestSimpleVertexMatchesSimpleStub: the two simple cells are one
// regime — identical chains, bit-identical serial output.
func TestSimpleVertexMatchesSimpleStub(t *testing.T) {
	a, b := ring(300), ring(300)
	Run(a, Options{Space: graph.SimpleStub, Iterations: 4, Workers: 1, Seed: 7})
	Run(b, Options{Space: graph.SimpleVertex, Iterations: 4, Workers: 1, Seed: 7})
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a.Edges[i], b.Edges[i])
		}
	}
}

// TestMultigraphStubAcceptsAll: the configuration-model chain has no
// rejection — every proposal commits.
func TestMultigraphStubAcceptsAll(t *testing.T) {
	el := multiStart(100)
	res := Run(el, Options{Space: graph.MultigraphStub, Iterations: 3, Workers: 2, Seed: 5})
	for it, s := range res.PerIteration {
		if s.Successes != s.Attempts {
			t.Fatalf("iteration %d: %d successes of %d attempts; accept-all cell must commit every proposal",
				it, s.Successes, s.Attempts)
		}
	}
}

// TestVertexMHWorkersIrrelevant: the vertex-labeled cells are serial,
// so the Workers setting must not change the output stream.
func TestVertexMHWorkersIrrelevant(t *testing.T) {
	for _, space := range []graph.Space{graph.LoopyVertex, graph.MultigraphVertex} {
		a := startFor(space, 150)
		b := startFor(space, 150)
		ra := Run(a, Options{Space: space, Iterations: 5, Workers: 1, Seed: 13})
		rb := Run(b, Options{Space: space, Iterations: 5, Workers: 8, Seed: 13})
		if ra.TotalSuccesses != rb.TotalSuccesses {
			t.Fatalf("%s: success counts differ across Workers: %d vs %d", space, ra.TotalSuccesses, rb.TotalSuccesses)
		}
		for i := range a.Edges {
			if a.Edges[i] != b.Edges[i] {
				t.Fatalf("%s: edge %d differs across Workers: %v vs %v", space, i, a.Edges[i], b.Edges[i])
			}
		}
	}
}

// TestVertexMHResetReuse: Reset + SetSeed on a vertex-labeled engine
// must rebuild the multiset, matching a fresh engine bit-for-bit.
func TestVertexMHResetReuse(t *testing.T) {
	eng := NewEngine(loopyStart(120), Options{Space: graph.LoopyVertex, Iterations: 3, Seed: 1})
	defer eng.Close()
	RunEngine(eng)

	reused := loopyStart(120)
	eng.Reset(reused)
	eng.SetSeed(77)
	RunEngine(eng)

	fresh := loopyStart(120)
	Run(fresh, Options{Space: graph.LoopyVertex, Iterations: 3, Seed: 77})
	for i := range fresh.Edges {
		if reused.Edges[i] != fresh.Edges[i] {
			t.Fatalf("edge %d differs between reused and fresh engines: %v vs %v",
				i, reused.Edges[i], fresh.Edges[i])
		}
	}
}

// TestLoopyStubPreservesLoopLegality: a loopy-stub chain must be able
// to both create and destroy loops (otherwise it is not irreducible on
// the loopy space). Run until both directions have been observed.
func TestLoopyStubLoopTurnover(t *testing.T) {
	// Creation: starting from a simple ring, the chain must reach a
	// state with a loop (loops are legal states of the cell).
	created := false
	el := ring(60)
	eng := NewEngine(el, Options{Space: graph.LoopyStub, Iterations: 1, Workers: 1, Seed: 3})
	defer eng.Close()
	for it := 0; it < 200 && !created; it++ {
		eng.Step()
		created = graph.MultisetOf(el).Loops() > 0
	}
	if !created {
		t.Fatal("chain never created a loop from a simple start: not mixing over the loopy space")
	}

	// Destruction: starting with loops, the chain must shed one.
	destroyed := false
	el2 := loopyStart(60)
	eng2 := NewEngine(el2, Options{Space: graph.LoopyStub, Iterations: 1, Workers: 1, Seed: 4})
	defer eng2.Close()
	for it := 0; it < 200 && !destroyed; it++ {
		eng2.Step()
		destroyed = graph.MultisetOf(el2).Loops() < 3
	}
	if !destroyed {
		t.Fatal("chain never destroyed a loop: not mixing over the loopy space")
	}
}

// TestValidateSpaceOption: Validate rejects an out-of-range space.
func TestValidateSpaceOption(t *testing.T) {
	if err := (Options{Space: graph.Space(99)}).Validate(); err == nil {
		t.Fatal("Validate accepted an invalid space")
	}
	for _, s := range graph.Spaces() {
		if err := (Options{Space: s}).Validate(); err != nil {
			t.Fatalf("Validate rejected %s: %v", s, err)
		}
	}
}
