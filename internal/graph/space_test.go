package graph

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSpacePredicates(t *testing.T) {
	cases := []struct {
		s              Space
		loops, multi   bool
		vertex         bool
		name, reparsed string
	}{
		{SimpleStub, false, false, false, "simple", "simple"},
		{SimpleVertex, false, false, true, "simple-vertex", "simple-vertex"},
		{LoopyStub, true, false, false, "loopy-stub", "loopy-stub"},
		{LoopyVertex, true, false, true, "loopy-vertex", "loopy-vertex"},
		{MultigraphStub, true, true, false, "multigraph-stub", "multigraph-stub"},
		{MultigraphVertex, true, true, true, "multigraph-vertex", "multigraph-vertex"},
	}
	if len(cases) != len(Spaces()) {
		t.Fatalf("matrix has %d cells, test covers %d", len(Spaces()), len(cases))
	}
	for _, c := range cases {
		if c.s.AllowsLoops() != c.loops || c.s.AllowsMulti() != c.multi || c.s.VertexLabeled() != c.vertex {
			t.Errorf("%s: predicates (loops=%v multi=%v vertex=%v)", c.s, c.s.AllowsLoops(), c.s.AllowsMulti(), c.s.VertexLabeled())
		}
		if c.s.String() != c.name {
			t.Errorf("String() = %q, want %q", c.s.String(), c.name)
		}
		got, err := ParseSpace(c.reparsed)
		if err != nil || got != c.s {
			t.Errorf("ParseSpace(%q) = %v, %v", c.reparsed, got, err)
		}
	}
	// The zero value is the paper's historical regime.
	var zero Space
	if zero != SimpleStub {
		t.Fatalf("zero Space = %v, want SimpleStub", zero)
	}
	if _, err := ParseSpace("bogus"); err == nil {
		t.Fatal("ParseSpace accepted bogus name")
	}
	for _, alias := range []string{"", "simple-stub", "multi-stub", "multi-vertex"} {
		if _, err := ParseSpace(alias); err != nil {
			t.Errorf("ParseSpace(%q): %v", alias, err)
		}
	}
}

func TestValidateInSpace(t *testing.T) {
	simple := FromEdges([]Edge{{0, 1}, {1, 2}})
	loopy := FromEdges([]Edge{{0, 0}, {1, 2}})
	multi := FromEdges([]Edge{{0, 1}, {1, 0}, {2, 2}})
	dupLoop := FromEdges([]Edge{{0, 0}, {0, 0}, {1, 2}})

	type want struct{ simple, loopy, multi, dupLoop bool }
	cases := map[Space]want{
		SimpleStub:       {true, false, false, false},
		SimpleVertex:     {true, false, false, false},
		LoopyStub:        {true, true, false, false},
		LoopyVertex:      {true, true, false, false},
		MultigraphStub:   {true, true, true, true},
		MultigraphVertex: {true, true, true, true},
	}
	for space, w := range cases {
		for _, c := range []struct {
			el *EdgeList
			ok bool
		}{{simple, w.simple}, {loopy, w.loopy}, {multi, w.multi}, {dupLoop, w.dupLoop}} {
			err := ValidateInSpace(c.el, space)
			if (err == nil) != c.ok {
				t.Errorf("space %s, input %v: err = %v, want ok=%v", space, c.el.Edges, err, c.ok)
			}
			if c.el.SatisfiesSpace(space) != c.ok {
				t.Errorf("space %s, input %v: SatisfiesSpace mismatch", space, c.el.Edges)
			}
		}
	}
}

func TestMultisetCounts(t *testing.T) {
	ms := NewMultiset(8)
	ms.AddEdge(Edge{0, 1})
	ms.AddEdge(Edge{1, 0}) // same key, other orientation
	ms.AddEdge(Edge{2, 2})
	ms.AddEdge(Edge{2, 2})
	ms.AddEdge(Edge{3, 4})
	if got := ms.CountEdge(Edge{0, 1}); got != 2 {
		t.Fatalf("Count(0,1) = %d, want 2", got)
	}
	if ms.Loops() != 2 || ms.MultiExcess() != 2 {
		t.Fatalf("loops=%d extra=%d, want 2, 2", ms.Loops(), ms.MultiExcess())
	}
	if ms.IsSimple() {
		t.Fatal("IsSimple on defective multiset")
	}
	ms.RemoveEdge(Edge{2, 2})
	ms.RemoveEdge(Edge{2, 2})
	ms.RemoveEdge(Edge{0, 1})
	if !ms.IsSimple() || ms.Defects() != 0 {
		t.Fatalf("after removals: loops=%d extra=%d", ms.Loops(), ms.MultiExcess())
	}
	if got := ms.Count(Edge{1, 0}.Key()); got != 1 {
		t.Fatalf("Count after removal = %d, want 1", got)
	}
	ms.Reset()
	if ms.Count(Edge{3, 4}.Key()) != 0 || ms.Defects() != 0 {
		t.Fatal("Reset left state behind")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("RemoveEdge of absent edge did not panic")
		}
	}()
	ms.RemoveEdge(Edge{9, 9})
}

func TestMultisetOfMatchesCheckSimplicity(t *testing.T) {
	el := FromEdges([]Edge{{0, 1}, {1, 0}, {0, 1}, {2, 2}, {3, 4}, {4, 3}})
	ms := MultisetOf(el)
	rep := el.CheckSimplicity()
	if ms.Loops() != rep.SelfLoops {
		t.Errorf("loops %d vs CheckSimplicity %d", ms.Loops(), rep.SelfLoops)
	}
	// CheckSimplicity's MultiEdges excludes loop keys; this input has no
	// duplicated loops, so the counts must agree.
	if ms.MultiExcess() != rep.MultiEdges {
		t.Errorf("extra %d vs CheckSimplicity %d", ms.MultiExcess(), rep.MultiEdges)
	}
}

func TestCanonicalize(t *testing.T) {
	el := FromEdges([]Edge{{3, 1}, {2, 0}, {1, 3}})
	el.Canonicalize()
	want := []Edge{{0, 2}, {1, 3}, {1, 3}}
	for i, e := range want {
		if el.Edges[i] != e {
			t.Fatalf("canonical edges = %v, want %v", el.Edges, want)
		}
	}
}

// TestLogStubLabelings pins hand-computed matching counts: the number
// of stub matchings of G is ∏ d_v! / (∏ w_uv! ∏_v 2^{w_vv} w_vv!).
func TestLogStubLabelings(t *testing.T) {
	cases := []struct {
		edges []Edge
		want  float64 // exact matching count
	}{
		// Triangle: degrees 2,2,2 → (2!)³ / 1 = 8.
		{[]Edge{{0, 1}, {1, 2}, {0, 2}}, 8},
		// Doubled edge: degrees 2,2 → (2!)² / 2! = 2.
		{[]Edge{{0, 1}, {0, 1}}, 2},
		// Single loop: degree 2 → 2! / 2 = 1.
		{[]Edge{{0, 0}}, 1},
		// Loop + simple edge at same vertex: degrees 3,1 → 3!·1!/2 = 3.
		{[]Edge{{0, 0}, {0, 1}}, 3},
	}
	for _, c := range cases {
		el := FromEdges(c.edges)
		got := math.Exp(el.LogStubLabelings())
		if math.Abs(got-c.want) > 1e-9*c.want {
			t.Errorf("%v: labelings = %g, want %g", c.edges, got, c.want)
		}
	}
}

func TestReadInSpace(t *testing.T) {
	loopyText := "0 0\n1 2\n"
	if _, err := ReadEdgeListTextInSpace(strings.NewReader(loopyText), SimpleStub); err == nil {
		t.Fatal("simple-space read accepted a loop")
	}
	el, err := ReadEdgeListTextInSpace(strings.NewReader(loopyText), LoopyStub)
	if err != nil || len(el.Edges) != 2 {
		t.Fatalf("loopy-space read: %v", err)
	}

	multi := FromEdges([]Edge{{0, 1}, {1, 0}, {2, 2}})
	var buf bytes.Buffer
	if err := WriteEdgeListBinary(&buf, multi); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadEdgeListBinaryInSpace(bytes.NewReader(buf.Bytes()), LoopyStub); err == nil {
		t.Fatal("loopy-space binary read accepted a multi-edge")
	}
	back, err := ReadEdgeListBinaryInSpace(bytes.NewReader(buf.Bytes()), MultigraphStub)
	if err != nil {
		t.Fatalf("multigraph-space binary read: %v", err)
	}
	if !back.EqualAsSets(multi) {
		t.Fatal("binary round-trip changed the multigraph")
	}
}
