package graph

import (
	"sync/atomic"

	"nullgraph/internal/par"
)

// ConnectedComponents labels every vertex with a component ID in
// [0, count) and returns the labels plus the component count. Isolated
// vertices form singleton components.
//
// The algorithm is parallel label propagation with pointer-jumping
// (a simplified Shiloach–Vishkin): repeatedly hook each edge's larger
// label to the smaller via atomic min, then compress, until no label
// changes. Deterministic: labels converge to the minimum vertex ID of
// each component before renumbering.
func ConnectedComponents(el *EdgeList, p int) (labels []int32, count int) {
	p = par.Workers(p)
	n := el.NumVertices
	parent := make([]int32, n)
	for v := range parent {
		parent[v] = int32(v)
	}
	if n == 0 {
		return parent, 0
	}

	writeMin := func(slot *int32, val int32) bool {
		for {
			cur := atomic.LoadInt32(slot)
			if cur <= val {
				return false
			}
			if atomic.CompareAndSwapInt32(slot, cur, val) {
				return true
			}
		}
	}

	for {
		var changed atomic.Bool
		// Hook: every edge pulls both endpoint roots toward the minimum.
		par.ForRange(len(el.Edges), p, func(_ int, r par.Range) {
			for i := r.Begin; i < r.End; i++ {
				e := el.Edges[i]
				pu := atomic.LoadInt32(&parent[e.U])
				pv := atomic.LoadInt32(&parent[e.V])
				if pu == pv {
					continue
				}
				if pu < pv {
					if writeMin(&parent[pv], pu) {
						changed.Store(true)
					}
				} else {
					if writeMin(&parent[pu], pv) {
						changed.Store(true)
					}
				}
			}
		})
		// Compress: pointer-jump every vertex to its root.
		par.For(n, p, func(v int) {
			root := atomic.LoadInt32(&parent[v])
			for root != atomic.LoadInt32(&parent[root]) {
				root = atomic.LoadInt32(&parent[root])
			}
			atomic.StoreInt32(&parent[v], root)
		})
		if !changed.Load() {
			break
		}
	}

	// Renumber roots densely, in ascending root order for determinism.
	ids := map[int32]int32{}
	for v := 0; v < n; v++ {
		if parent[v] == int32(v) {
			ids[int32(v)] = int32(len(ids))
		}
	}
	par.For(n, p, func(v int) {
		parent[v] = ids[parent[v]]
	})
	return parent, len(ids)
}

// LargestComponentSize returns the vertex count of the biggest
// connected component (0 for an empty graph).
func LargestComponentSize(el *EdgeList, p int) int {
	labels, count := ConnectedComponents(el, p)
	if count == 0 {
		return 0
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	max := 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	return max
}

// GlobalClusteringCoefficient returns 3·triangles / wedges (the
// transitivity ratio) of a simple graph, 0 when the graph has no wedge.
func GlobalClusteringCoefficient(el *EdgeList, p int) float64 {
	deg := el.Degrees(p)
	wedges := par.SumInt64(len(deg), p, func(v int) int64 {
		return deg[v] * (deg[v] - 1) / 2
	})
	if wedges == 0 {
		return 0
	}
	triangles := BuildCSR(el, p).CountTriangles(p)
	return 3 * float64(triangles) / float64(wedges)
}
