// Package graph provides the graph substrate shared by every generator:
// packed undirected edges, edge lists, degree sequences, CSR adjacency,
// simplicity checks, summary statistics, and edge-list I/O.
//
// Vertices are int32 (the paper packs two 32-bit vertex IDs into one
// 64-bit hash-table key; we keep the same representation throughout so
// edges move through the pipeline without re-encoding).
package graph

import "fmt"

// Edge is an undirected edge between vertices U and V. The zero value is
// the (0,0) self-loop; code that treats an Edge as "absent" should track
// that separately.
type Edge struct {
	U, V int32
}

// Canonical returns the edge with endpoints ordered so U <= V. Two
// undirected edges are equal iff their canonical forms are equal.
//
//nullgraph:hotpath
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// IsLoop reports whether the edge is a self-loop.
//
//nullgraph:hotpath
func (e Edge) IsLoop() bool { return e.U == e.V }

// Key packs the canonical form into a single uint64 (u in the high 32
// bits). This is the hash-table key format from the paper.
//
//nullgraph:hotpath
func (e Edge) Key() uint64 {
	c := e.Canonical()
	return uint64(uint32(c.U))<<32 | uint64(uint32(c.V))
}

// EdgeFromKey unpacks a key produced by Edge.Key.
func EdgeFromKey(k uint64) Edge {
	return Edge{U: int32(uint32(k >> 32)), V: int32(uint32(k))}
}

// String renders the edge as "(u,v)".
func (e Edge) String() string { return fmt.Sprintf("(%d,%d)", e.U, e.V) }
