package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	el := NewEdgeList([]Edge{{0, 1}, {5, 2}, {3, 3}}, 6)
	var buf bytes.Buffer
	if err := WriteEdgeListText(&buf, el); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeListText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Edges) != len(el.Edges) {
		t.Fatalf("round trip lost edges: %d vs %d", len(got.Edges), len(el.Edges))
	}
	for i := range el.Edges {
		if got.Edges[i] != el.Edges[i] {
			t.Errorf("edge %d: %v vs %v", i, got.Edges[i], el.Edges[i])
		}
	}
}

func TestReadTextSkipsCommentsAndBlanks(t *testing.T) {
	in := "# comment\n\n% other comment\n0 1\n  2 3  \n"
	el, err := ReadEdgeListText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if el.NumEdges() != 2 {
		t.Fatalf("parsed %d edges, want 2", el.NumEdges())
	}
	if el.Edges[1] != (Edge{2, 3}) {
		t.Errorf("edge[1] = %v", el.Edges[1])
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"0\n",             // one field
		"a b\n",           // non-numeric
		"-1 2\n",          // negative
		"0 99999999999\n", // overflow int32
	}
	for _, in := range cases {
		if _, err := ReadEdgeListText(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: want error", in)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	el := NewEdgeList([]Edge{{0, 1}, {5, 2}, {3, 3}, {2, 5}}, 6)
	var buf bytes.Buffer
	if err := WriteEdgeListBinary(&buf, el); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeListBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices != el.NumVertices {
		t.Errorf("NumVertices = %d, want %d", got.NumVertices, el.NumVertices)
	}
	if len(got.Edges) != len(el.Edges) {
		t.Fatalf("edge count = %d, want %d", len(got.Edges), len(el.Edges))
	}
	for i := range el.Edges {
		if got.Edges[i] != el.Edges[i] {
			t.Errorf("edge %d: %v vs %v (orientation must be preserved)", i, got.Edges[i], el.Edges[i])
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	buf := bytes.Repeat([]byte{0xAB}, 24)
	if _, err := ReadEdgeListBinary(bytes.NewReader(buf)); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestBinaryTruncated(t *testing.T) {
	el := NewEdgeList([]Edge{{0, 1}, {1, 2}}, 3)
	var buf bytes.Buffer
	if err := WriteEdgeListBinary(&buf, el); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadEdgeListBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream accepted")
	}
}

// onlyReader hides Seek so the stream (chunked-growth) path is
// exercised; bytes.Reader would otherwise take the validated path.
type onlyReader struct{ r *bytes.Reader }

func (o onlyReader) Read(p []byte) (int, error) { return o.r.Read(p) }

// corruptEdgeCount returns a valid encoding of el whose header claims m
// edges instead of the true count.
func corruptEdgeCount(t *testing.T, el *EdgeList, m uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteEdgeListBinary(&buf, el); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for i := 0; i < 8; i++ {
		b[16+i] = byte(m >> (8 * i))
	}
	return b
}

// TestBinaryHugeClaimedEdgeCount pins the hardening contract: a header
// whose edge count vastly exceeds the actual payload must fail fast on
// both seekable and stream inputs, without attempting a proportional
// allocation first.
func TestBinaryHugeClaimedEdgeCount(t *testing.T) {
	el := NewEdgeList([]Edge{{0, 1}, {1, 2}}, 3)
	b := corruptEdgeCount(t, el, 1<<50) // would be an 8 PiB allocation if trusted
	if _, err := ReadEdgeListBinary(bytes.NewReader(b)); err == nil {
		t.Error("seekable: 2^50-edge header over a 16-byte payload accepted")
	}
	if _, err := ReadEdgeListBinary(onlyReader{bytes.NewReader(b)}); err == nil {
		t.Error("stream: 2^50-edge header over a 16-byte payload accepted")
	}
}

// TestBinaryHeaderCountMismatch: off-by-a-little corruption (claiming
// one more edge than the payload holds) is caught too — by the seekable
// validation up front, and by the short read on streams.
func TestBinaryHeaderCountMismatch(t *testing.T) {
	el := NewEdgeList([]Edge{{0, 1}, {1, 2}}, 3)
	b := corruptEdgeCount(t, el, 3)
	if _, err := ReadEdgeListBinary(bytes.NewReader(b)); err == nil {
		t.Error("seekable: header claiming 3 edges over a 2-edge payload accepted")
	}
	if _, err := ReadEdgeListBinary(onlyReader{bytes.NewReader(b)}); err == nil {
		t.Error("stream: header claiming 3 edges over a 2-edge payload accepted")
	}
}

// TestBinaryTruncatedHeader: every prefix of the 24-byte header fails
// cleanly.
func TestBinaryTruncatedHeader(t *testing.T) {
	el := NewEdgeList([]Edge{{0, 1}}, 2)
	var buf bytes.Buffer
	if err := WriteEdgeListBinary(&buf, el); err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < 24; cut++ {
		if _, err := ReadEdgeListBinary(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Errorf("%d-byte header prefix accepted", cut)
		}
	}
}

// TestBinaryNegativeEndpoint: a payload word whose high bit is set
// decodes to a negative int32 and must be rejected, not smuggled past
// the upper-bound check.
func TestBinaryNegativeEndpoint(t *testing.T) {
	el := NewEdgeList([]Edge{{0, 1}}, 2)
	var buf bytes.Buffer
	if err := WriteEdgeListBinary(&buf, el); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[24+7] = 0xFF // high byte of U
	if _, err := ReadEdgeListBinary(bytes.NewReader(b)); err == nil {
		t.Error("negative endpoint accepted")
	}
}

// TestBinaryStreamRoundTrip: the chunked stream path must still read a
// graph larger than one chunk correctly.
func TestBinaryStreamRoundTrip(t *testing.T) {
	n := 3 * binaryChunkEdges / 2
	edges := make([]Edge, n)
	for i := range edges {
		edges[i] = Edge{U: int32(i % 1000), V: int32((i + 1) % 1000)}
	}
	el := NewEdgeList(edges, 1000)
	var buf bytes.Buffer
	if err := WriteEdgeListBinary(&buf, el); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeListBinary(onlyReader{bytes.NewReader(buf.Bytes())})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Edges) != n {
		t.Fatalf("stream read %d edges, want %d", len(got.Edges), n)
	}
	for i := range edges {
		if got.Edges[i] != edges[i] {
			t.Fatalf("edge %d: %v vs %v", i, got.Edges[i], edges[i])
		}
	}
}

func TestBinaryEmptyGraph(t *testing.T) {
	el := NewEdgeList(nil, 0)
	var buf bytes.Buffer
	if err := WriteEdgeListBinary(&buf, el); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeListBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != 0 || got.NumVertices != 0 {
		t.Errorf("empty round trip: %+v", got)
	}
}

func TestStatsFromDegrees(t *testing.T) {
	deg := []int64{3, 1, 1, 1, 0}
	s := StatsFromDegrees(deg, 3)
	if s.NumVertices != 5 || s.NumEdges != 3 {
		t.Errorf("counts: %+v", s)
	}
	if s.MaxDegree != 3 {
		t.Errorf("MaxDegree = %d", s.MaxDegree)
	}
	if s.UniqueDegrees != 3 {
		t.Errorf("UniqueDegrees = %d, want 3", s.UniqueDegrees)
	}
	if s.AvgDegree != 6.0/5.0 {
		t.Errorf("AvgDegree = %v", s.AvgDegree)
	}
}

func TestComputeStats(t *testing.T) {
	el := pathGraph(5) // degrees 1,2,2,2,1
	s := ComputeStats(el, 2)
	if s.NumEdges != 4 || s.MaxDegree != 2 || s.UniqueDegrees != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestStatsEmpty(t *testing.T) {
	s := StatsFromDegrees(nil, 0)
	if s.MaxDegree != 0 || s.UniqueDegrees != 0 || s.AvgDegree != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestMaxDegreeParallel(t *testing.T) {
	deg := []int64{1, 9, 4, 9, 2}
	if got := MaxDegree(deg, 3); got != 9 {
		t.Errorf("MaxDegree = %d", got)
	}
}
