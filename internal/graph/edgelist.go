package graph

import (
	"sort"

	"nullgraph/internal/par"
)

// EdgeList is the mutable edge-centric graph representation the swap
// engine operates on. Order is significant only as MCMC state: the swap
// procedure permutes it every iteration.
type EdgeList struct {
	Edges []Edge
	// NumVertices is the vertex-ID upper bound (IDs are in [0, NumVertices)).
	NumVertices int
}

// NewEdgeList wraps edges with an explicit vertex count. It panics if an
// endpoint is out of [0, numVertices).
func NewEdgeList(edges []Edge, numVertices int) *EdgeList {
	for _, e := range edges {
		if e.U < 0 || e.V < 0 || int(e.U) >= numVertices || int(e.V) >= numVertices {
			panic("graph: edge endpoint out of range")
		}
	}
	return &EdgeList{Edges: edges, NumVertices: numVertices}
}

// FromEdges builds an EdgeList inferring the vertex count as maxID+1.
func FromEdges(edges []Edge) *EdgeList {
	var max int32 = -1
	for _, e := range edges {
		if e.U > max {
			max = e.U
		}
		if e.V > max {
			max = e.V
		}
	}
	return &EdgeList{Edges: edges, NumVertices: int(max) + 1}
}

// NumEdges returns m.
func (el *EdgeList) NumEdges() int { return len(el.Edges) }

// Clone deep-copies the edge list.
func (el *EdgeList) Clone() *EdgeList {
	edges := make([]Edge, len(el.Edges))
	copy(edges, el.Edges)
	return &EdgeList{Edges: edges, NumVertices: el.NumVertices}
}

// Degrees computes the degree of every vertex in parallel with p
// workers. Self-loops contribute 2 to their vertex's degree, the
// standard convention (each loop occupies two edge stubs).
func (el *EdgeList) Degrees(p int) []int64 {
	p = par.Workers(p)
	deg := make([]int64, el.NumVertices)
	// Per-worker private accumulation avoids atomics on the hot path;
	// degree arrays are small next to edge lists.
	ranges := par.Split(len(el.Edges), p)
	if len(ranges) <= 1 {
		for _, e := range el.Edges {
			deg[e.U]++
			deg[e.V]++
		}
		return deg
	}
	partials := make([][]int64, len(ranges))
	par.ForRange(len(el.Edges), p, func(w int, r par.Range) {
		local := make([]int64, el.NumVertices)
		for i := r.Begin; i < r.End; i++ {
			e := el.Edges[i]
			local[e.U]++
			local[e.V]++
		}
		partials[w] = local
	})
	par.For(el.NumVertices, p, func(v int) {
		var s int64
		for _, local := range partials {
			s += local[v]
		}
		deg[v] = s
	})
	return deg
}

// Simplicity describes the self-loop / multi-edge content of a list.
type Simplicity struct {
	SelfLoops  int
	MultiEdges int // number of edge instances beyond the first per vertex pair
}

// IsSimple reports no loops and no multi-edges.
func (s Simplicity) IsSimple() bool { return s.SelfLoops == 0 && s.MultiEdges == 0 }

// CheckSimplicity counts self-loops and duplicate undirected edges.
// Runs in O(m log m) via key sorting; used in validation paths, not in
// the generation hot loop (the swap engine uses the concurrent hash
// table instead).
func (el *EdgeList) CheckSimplicity() Simplicity {
	var s Simplicity
	keys := make([]uint64, 0, len(el.Edges))
	for _, e := range el.Edges {
		if e.IsLoop() {
			s.SelfLoops++
			continue
		}
		keys = append(keys, e.Key())
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i := 1; i < len(keys); i++ {
		if keys[i] == keys[i-1] {
			s.MultiEdges++
		}
	}
	return s
}

// Simplify returns a copy with self-loops and duplicate edges removed
// (the "erased" operation) plus the simplicity report of the input.
func (el *EdgeList) Simplify() (*EdgeList, Simplicity) {
	rep := el.CheckSimplicity()
	seen := make(map[uint64]struct{}, len(el.Edges))
	out := make([]Edge, 0, len(el.Edges))
	for _, e := range el.Edges {
		if e.IsLoop() {
			continue
		}
		k := e.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, e)
	}
	return &EdgeList{Edges: out, NumVertices: el.NumVertices}, rep
}

// SortCanonical sorts edges by canonical key; useful for deterministic
// comparison of edge sets in tests.
func (el *EdgeList) SortCanonical() {
	sort.Slice(el.Edges, func(i, j int) bool { return el.Edges[i].Key() < el.Edges[j].Key() })
}

// EqualAsSets reports whether two lists contain the same multiset of
// undirected edges.
func (el *EdgeList) EqualAsSets(other *EdgeList) bool {
	if len(el.Edges) != len(other.Edges) {
		return false
	}
	a := make([]uint64, len(el.Edges))
	b := make([]uint64, len(other.Edges))
	for i := range el.Edges {
		a[i] = el.Edges[i].Key()
		b[i] = other.Edges[i].Key()
	}
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
