package graph

import (
	"sort"

	"nullgraph/internal/par"
)

// CSR is a compressed-sparse-row adjacency structure built from an edge
// list. Each undirected edge appears twice (u→v and v→u); self-loops
// appear twice in their vertex's row, matching the degree convention of
// EdgeList.Degrees.
//
// CSR is read-only after construction and is used by analytics (motif
// counts, clustering checks) and by tests that need neighbor queries;
// the generators themselves stay edge-centric.
type CSR struct {
	Offsets []int64 // len NumVertices+1
	Adj     []int32 // len 2m
}

// BuildCSR constructs the adjacency structure with p workers. Neighbor
// lists are sorted ascending so membership tests can binary-search.
func BuildCSR(el *EdgeList, p int) *CSR {
	p = par.Workers(p)
	n := el.NumVertices
	deg := el.Degrees(p)
	offsets := par.PrefixSums(deg, p)
	adj := make([]int32, offsets[n])
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	// Serial fill: a parallel fill needs atomics per stub and the build
	// is outside every benchmarked phase.
	for _, e := range el.Edges {
		adj[cursor[e.U]] = e.V
		cursor[e.U]++
		adj[cursor[e.V]] = e.U
		cursor[e.V]++
	}
	par.For(n, p, func(v int) {
		row := adj[offsets[v]:offsets[v+1]]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
	})
	return &CSR{Offsets: offsets, Adj: adj}
}

// NumVertices returns n.
func (c *CSR) NumVertices() int { return len(c.Offsets) - 1 }

// Degree returns the degree of v (loops counted twice).
func (c *CSR) Degree(v int32) int64 { return c.Offsets[v+1] - c.Offsets[v] }

// Neighbors returns v's sorted neighbor slice (aliases internal storage).
func (c *CSR) Neighbors(v int32) []int32 { return c.Adj[c.Offsets[v]:c.Offsets[v+1]] }

// HasEdge reports whether u and v are adjacent, by binary search in the
// smaller row.
func (c *CSR) HasEdge(u, v int32) bool {
	if c.Degree(u) > c.Degree(v) {
		u, v = v, u
	}
	row := c.Neighbors(u)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= v })
	return i < len(row) && row[i] == v
}

// CountTriangles returns the number of triangles in the graph, assuming
// it is simple. Standard forward counting over ordered wedges; used by
// the motif-null example and its tests.
func (c *CSR) CountTriangles(p int) int64 {
	n := c.NumVertices()
	return par.SumInt64(n, p, func(vi int) int64 {
		v := int32(vi)
		var count int64
		for _, u := range c.Neighbors(v) {
			if u <= v {
				continue
			}
			// Intersect rows of v and u above v.
			rv, ru := c.Neighbors(v), c.Neighbors(u)
			i, j := 0, 0
			for i < len(rv) && j < len(ru) {
				switch {
				case rv[i] < ru[j]:
					i++
				case rv[i] > ru[j]:
					j++
				default:
					if rv[i] > u {
						count++
					}
					i++
					j++
				}
			}
		}
		return count
	})
}
