package graph

import (
	"testing"
)

func pathGraph(n int) *EdgeList {
	edges := make([]Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, Edge{int32(i), int32(i + 1)})
	}
	return NewEdgeList(edges, n)
}

func TestNewEdgeListValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range endpoint did not panic")
		}
	}()
	NewEdgeList([]Edge{{0, 5}}, 3)
}

func TestFromEdgesInfersVertexCount(t *testing.T) {
	el := FromEdges([]Edge{{0, 7}, {2, 3}})
	if el.NumVertices != 8 {
		t.Errorf("NumVertices = %d, want 8", el.NumVertices)
	}
	empty := FromEdges(nil)
	if empty.NumVertices != 0 {
		t.Errorf("empty NumVertices = %d, want 0", empty.NumVertices)
	}
}

func TestDegreesSerialAndParallelAgree(t *testing.T) {
	el := NewEdgeList([]Edge{{0, 1}, {1, 2}, {2, 2}, {0, 2}, {3, 0}}, 5)
	want := []int64{3, 2, 4, 1, 0} // loop at 2 counts twice: 1+2+1
	for _, p := range []int{1, 2, 4, 8} {
		got := el.Degrees(p)
		for v := range want {
			if got[v] != want[v] {
				t.Errorf("p=%d: deg[%d] = %d, want %d", p, v, got[v], want[v])
			}
		}
	}
}

func TestDegreesSumIs2M(t *testing.T) {
	el := pathGraph(100)
	deg := el.Degrees(4)
	var sum int64
	for _, d := range deg {
		sum += d
	}
	if sum != int64(2*el.NumEdges()) {
		t.Errorf("degree sum = %d, want %d", sum, 2*el.NumEdges())
	}
}

func TestCheckSimplicity(t *testing.T) {
	cases := []struct {
		name  string
		edges []Edge
		want  Simplicity
	}{
		{"simple", []Edge{{0, 1}, {1, 2}}, Simplicity{0, 0}},
		{"loop", []Edge{{0, 0}, {1, 2}}, Simplicity{1, 0}},
		{"multi", []Edge{{0, 1}, {1, 0}, {1, 2}}, Simplicity{0, 1}},
		{"triple", []Edge{{0, 1}, {1, 0}, {0, 1}}, Simplicity{0, 2}},
		{"both", []Edge{{0, 0}, {0, 0}, {0, 1}, {1, 0}}, Simplicity{2, 1}},
		{"empty", nil, Simplicity{0, 0}},
	}
	for _, c := range cases {
		el := FromEdges(c.edges)
		got := el.CheckSimplicity()
		if got != c.want {
			t.Errorf("%s: CheckSimplicity = %+v, want %+v", c.name, got, c.want)
		}
		if got.IsSimple() != (c.want.SelfLoops == 0 && c.want.MultiEdges == 0) {
			t.Errorf("%s: IsSimple inconsistent", c.name)
		}
	}
}

func TestSimplify(t *testing.T) {
	el := NewEdgeList([]Edge{{0, 0}, {0, 1}, {1, 0}, {1, 2}, {2, 2}}, 3)
	simple, rep := el.Simplify()
	if rep.SelfLoops != 2 || rep.MultiEdges != 1 {
		t.Errorf("report = %+v", rep)
	}
	if got := simple.CheckSimplicity(); !got.IsSimple() {
		t.Errorf("Simplify output not simple: %+v", got)
	}
	if simple.NumEdges() != 2 {
		t.Errorf("Simplify kept %d edges, want 2", simple.NumEdges())
	}
	if simple.NumVertices != el.NumVertices {
		t.Errorf("Simplify changed NumVertices to %d", simple.NumVertices)
	}
	// Original untouched.
	if el.NumEdges() != 5 {
		t.Errorf("Simplify mutated input")
	}
}

func TestCloneIndependent(t *testing.T) {
	el := pathGraph(4)
	cl := el.Clone()
	cl.Edges[0] = Edge{3, 3}
	if el.Edges[0] == (Edge{3, 3}) {
		t.Error("Clone shares backing storage")
	}
}

func TestEqualAsSets(t *testing.T) {
	a := FromEdges([]Edge{{0, 1}, {2, 3}})
	b := FromEdges([]Edge{{3, 2}, {1, 0}})
	if !a.EqualAsSets(b) {
		t.Error("orientation/order should not affect set equality")
	}
	c := FromEdges([]Edge{{0, 1}, {2, 4}})
	if a.EqualAsSets(c) {
		t.Error("different edges reported equal")
	}
	d := FromEdges([]Edge{{0, 1}})
	if a.EqualAsSets(d) {
		t.Error("different sizes reported equal")
	}
	// Multisets: duplicate counts matter.
	e1 := FromEdges([]Edge{{0, 1}, {0, 1}, {2, 3}})
	e2 := FromEdges([]Edge{{0, 1}, {2, 3}, {2, 3}})
	if e1.EqualAsSets(e2) {
		t.Error("different multiplicities reported equal")
	}
}

func TestSortCanonical(t *testing.T) {
	el := FromEdges([]Edge{{5, 1}, {0, 3}, {2, 2}})
	el.SortCanonical()
	for i := 1; i < len(el.Edges); i++ {
		if el.Edges[i-1].Key() > el.Edges[i].Key() {
			t.Errorf("not sorted at %d: %v", i, el.Edges)
		}
	}
}
