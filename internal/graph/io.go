package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteEdgeListText writes one "u v" pair per line, the format shared by
// SNAP-style datasets. Lines are written in list order.
func WriteEdgeListText(w io.Writer, el *EdgeList) error {
	bw := bufio.NewWriter(w)
	for _, e := range el.Edges {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeListText parses "u v" pairs, one per line. Blank lines and
// lines starting with '#' or '%' (SNAP/Matrix-Market comments) are
// skipped. Vertex IDs must be non-negative and fit in int32.
func ReadEdgeListText(r io.Reader) (*EdgeList, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var edges []Edge
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want two vertex IDs, got %q", line, text)
		}
		u, err := parseVertex(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		v, err := parseVertex(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		edges = append(edges, Edge{U: u, V: v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return FromEdges(edges), nil
}

func parseVertex(s string) (int32, error) {
	v, err := strconv.ParseInt(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad vertex ID %q: %v", s, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("negative vertex ID %d", v)
	}
	// The vertex count is maxID+1 and must itself fit in int32, so the
	// largest usable ID is MaxInt32-1.
	if v >= math.MaxInt32 {
		return 0, fmt.Errorf("vertex ID %d too large", v)
	}
	return int32(v), nil
}

// ReadEdgeListTextInSpace parses a text edge list and validates the
// result against the sampling space: reading a loopy or multigraph
// input is an explicit opt-in via the space argument, and input that
// does not satisfy the space's invariants (loops outside loopy cells,
// multi-edges outside multigraph cells) fails with a descriptive error
// instead of flowing silently into a sampler that assumes otherwise.
// ReadEdgeListText remains the permissive historical entry point.
func ReadEdgeListTextInSpace(r io.Reader, space Space) (*EdgeList, error) {
	el, err := ReadEdgeListText(r)
	if err != nil {
		return nil, err
	}
	if err := ValidateInSpace(el, space); err != nil {
		return nil, err
	}
	return el, nil
}

// ReadEdgeListBinaryInSpace is ReadEdgeListBinary plus the same
// explicit space-membership validation as ReadEdgeListTextInSpace.
func ReadEdgeListBinaryInSpace(r io.Reader, space Space) (*EdgeList, error) {
	el, err := ReadEdgeListBinary(r)
	if err != nil {
		return nil, err
	}
	if err := ValidateInSpace(el, space); err != nil {
		return nil, err
	}
	return el, nil
}

// binaryMagic identifies the library's binary edge-list format.
const binaryMagic = uint64(0x4e554c4c47524632) // "NULLGRF2"

// WriteEdgeListBinary writes a compact little-endian binary encoding:
// magic, n, m, then m packed 64-bit edges in list order. Roughly 8 bytes
// per edge versus ~14 for text, and parse-free to reload.
//
// Every underlying Write error — including short writes surfaced at the
// buffered flush — is propagated, so a caller that gets nil back knows
// all 24+8m bytes reached w (TestWriteEdgeListBinaryShortWrites
// enumerates every failure offset). Durability is the caller's job:
// CLI save paths route through internal/atomicfile, which fsyncs before
// renaming the file into place.
func WriteEdgeListBinary(w io.Writer, el *EdgeList) error {
	bw := bufio.NewWriter(w)
	var hdr [binaryHeaderBytes]byte
	binary.LittleEndian.PutUint64(hdr[0:], binaryMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(el.NumVertices))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(el.Edges)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, e := range el.Edges {
		// Preserve orientation (not canonicalized): list order and edge
		// orientation are MCMC state.
		binary.LittleEndian.PutUint64(buf, uint64(uint32(e.U))<<32|uint64(uint32(e.V)))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// BinaryEdgeListSize returns the exact encoded size of an edge list in
// the binary format: the fixed header plus 8 bytes per edge. Servers
// use it to set Content-Length so clients can detect truncation at the
// transport layer too.
func BinaryEdgeListSize(el *EdgeList) int64 {
	return binaryHeaderBytes + 8*int64(len(el.Edges))
}

// binaryChunkEdges caps how many edges' worth of buffer is allocated on
// the strength of the header alone when the input size cannot be
// checked: a corrupt or hostile edge count then costs at most one chunk
// (512 KiB) before the short read surfaces, instead of an arbitrarily
// large up-front allocation.
const binaryChunkEdges = 1 << 16

// binaryHeaderBytes is the encoded size of (magic, n, m).
const binaryHeaderBytes = 24

// ReadEdgeListBinary reads the format written by WriteEdgeListBinary.
// The header's edge count is never trusted blindly: on seekable inputs
// it is validated against the bytes actually remaining, and on streams
// the edge buffer grows in bounded chunks as payload arrives, so a
// truncated or corrupt header fails with a clear error rather than an
// out-of-memory allocation.
func ReadEdgeListBinary(r io.Reader) (*EdgeList, error) {
	remaining := int64(-1)
	if s, ok := r.(io.Seeker); ok {
		if cur, err := s.Seek(0, io.SeekCurrent); err == nil {
			if end, err := s.Seek(0, io.SeekEnd); err == nil {
				if _, err := s.Seek(cur, io.SeekStart); err == nil {
					remaining = end - cur
				}
			}
		}
	}
	br := bufio.NewReader(r)
	var magic, n, m uint64
	for _, dst := range []*uint64{&magic, &n, &m} {
		if err := binary.Read(br, binary.LittleEndian, dst); err != nil {
			return nil, fmt.Errorf("graph: reading binary header: %w", err)
		}
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", magic)
	}
	if n > 1<<31 {
		return nil, fmt.Errorf("graph: vertex count %d exceeds int32 range", n)
	}
	capHint := m
	if remaining >= 0 {
		payload := remaining - binaryHeaderBytes
		if payload < 0 || uint64(payload)/8 < m {
			return nil, fmt.Errorf("graph: header claims %d edges but only %d payload bytes remain", m, max(payload, 0))
		}
	} else if capHint > binaryChunkEdges {
		capHint = binaryChunkEdges
	}
	edges := make([]Edge, 0, capHint)
	buf := make([]byte, 8)
	for i := uint64(0); i < m; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("graph: reading edge %d of %d: %w", i, m, err)
		}
		k := binary.LittleEndian.Uint64(buf)
		e := Edge{U: int32(uint32(k >> 32)), V: int32(uint32(k))}
		if e.U < 0 || e.V < 0 || int(e.U) >= int(n) || int(e.V) >= int(n) {
			return nil, fmt.Errorf("graph: edge %d endpoint out of range", i)
		}
		edges = append(edges, e)
	}
	return &EdgeList{Edges: edges, NumVertices: int(n)}, nil
}
