package graph

import "testing"

func TestBuildCSRBasic(t *testing.T) {
	// Triangle 0-1-2 plus pendant 3 attached to 0.
	el := NewEdgeList([]Edge{{0, 1}, {1, 2}, {2, 0}, {0, 3}}, 4)
	for _, p := range []int{1, 4} {
		c := BuildCSR(el, p)
		if c.NumVertices() != 4 {
			t.Fatalf("p=%d: NumVertices = %d", p, c.NumVertices())
		}
		wantDeg := []int64{3, 2, 2, 1}
		for v, w := range wantDeg {
			if c.Degree(int32(v)) != w {
				t.Errorf("p=%d: Degree(%d) = %d, want %d", p, v, c.Degree(int32(v)), w)
			}
		}
		wantNbr := [][]int32{{1, 2, 3}, {0, 2}, {0, 1}, {0}}
		for v, w := range wantNbr {
			got := c.Neighbors(int32(v))
			if len(got) != len(w) {
				t.Fatalf("p=%d: Neighbors(%d) = %v, want %v", p, v, got, w)
			}
			for i := range w {
				if got[i] != w[i] {
					t.Fatalf("p=%d: Neighbors(%d) = %v, want %v", p, v, got, w)
				}
			}
		}
	}
}

func TestCSRHasEdge(t *testing.T) {
	el := NewEdgeList([]Edge{{0, 1}, {1, 2}, {2, 0}, {0, 3}}, 4)
	c := BuildCSR(el, 2)
	for _, e := range el.Edges {
		if !c.HasEdge(e.U, e.V) || !c.HasEdge(e.V, e.U) {
			t.Errorf("HasEdge missing %v", e)
		}
	}
	for _, miss := range []Edge{{1, 3}, {2, 3}, {3, 3}} {
		if c.HasEdge(miss.U, miss.V) {
			t.Errorf("HasEdge falsely reports %v", miss)
		}
	}
}

func TestCSRSelfLoop(t *testing.T) {
	el := NewEdgeList([]Edge{{0, 0}, {0, 1}}, 2)
	c := BuildCSR(el, 1)
	if c.Degree(0) != 3 {
		t.Errorf("Degree(0) = %d, want 3 (loop counts twice)", c.Degree(0))
	}
}

func TestCountTriangles(t *testing.T) {
	cases := []struct {
		name  string
		edges []Edge
		n     int
		want  int64
	}{
		{"triangle", []Edge{{0, 1}, {1, 2}, {2, 0}}, 3, 1},
		{"path", []Edge{{0, 1}, {1, 2}, {2, 3}}, 4, 0},
		{"k4", []Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}, 4, 4},
		{"two-triangles", []Edge{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}}, 6, 2},
		{"empty", nil, 0, 0},
	}
	for _, c := range cases {
		el := NewEdgeList(c.edges, c.n)
		csr := BuildCSR(el, 2)
		for _, p := range []int{1, 3} {
			if got := csr.CountTriangles(p); got != c.want {
				t.Errorf("%s p=%d: CountTriangles = %d, want %d", c.name, p, got, c.want)
			}
		}
	}
}

func TestCSRMatchesEdgeListDegrees(t *testing.T) {
	el := pathGraph(257)
	c := BuildCSR(el, 3)
	deg := el.Degrees(3)
	for v := 0; v < el.NumVertices; v++ {
		if c.Degree(int32(v)) != deg[v] {
			t.Fatalf("degree mismatch at %d: CSR %d vs list %d", v, c.Degree(int32(v)), deg[v])
		}
	}
}
