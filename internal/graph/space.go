package graph

import (
	"fmt"
	"math"
	"sort"
)

// Space selects one cell of the null-model space matrix of
// Dutta–Fosdick–Clauset (arXiv:2105.12120): which graphs are legal
// states ({simple, loopy, multigraph}) crossed with what "uniform"
// means over them ({stub-labeled, vertex-labeled}).
//
//   - Simple graphs admit neither self-loops nor multi-edges. Every
//     simple graph on a degree sequence has the same number of stub
//     labelings (∏ d_v!), so the stub- and vertex-labeled uniform
//     distributions coincide: SimpleStub and SimpleVertex are two
//     names for one sampling regime, kept distinct so the matrix is
//     explicit in reports and fingerprints.
//   - Loopy graphs admit self-loops but not multi-edges.
//   - Multigraphs admit both (the configuration-model state space).
//
// Stub-labeled uniformity weights each graph by its number of stub
// matchings, ∏ d_v! / (∏_{u<v} w_uv! · ∏_v 2^{w_vv} w_vv!); vertex-
// labeled uniformity weights every legal graph equally. The swap
// engine's acceptance policy realizes the difference (see
// internal/swap).
//
// The zero value is SimpleStub — the paper's original regime — so all
// pre-matrix code, serialized options, and fingerprints keep their
// historical meaning.
type Space uint8

const (
	// SimpleStub is the default: uniform simple graphs (the paper's
	// regime; stub- and vertex-labeled uniformity coincide here).
	SimpleStub Space = iota
	// SimpleVertex is the vertex-labeled simple cell. Identical in
	// distribution and dynamics to SimpleStub; see the Space doc.
	SimpleVertex
	// LoopyStub samples loopy graphs (loops allowed, no multi-edges)
	// with stub-labeled weights.
	LoopyStub
	// LoopyVertex samples loopy graphs uniformly (vertex-labeled).
	LoopyVertex
	// MultigraphStub samples loopy multigraphs with stub-labeled
	// weights — the configuration-model distribution.
	MultigraphStub
	// MultigraphVertex samples loopy multigraphs uniformly.
	MultigraphVertex

	numSpaces = iota
)

// Spaces returns every cell of the matrix in declaration order.
func Spaces() []Space {
	return []Space{SimpleStub, SimpleVertex, LoopyStub, LoopyVertex, MultigraphStub, MultigraphVertex}
}

// AllowsLoops reports whether self-loops are legal states in the space.
func (s Space) AllowsLoops() bool { return s >= LoopyStub }

// AllowsMulti reports whether multi-edges are legal states in the space.
func (s Space) AllowsMulti() bool { return s == MultigraphStub || s == MultigraphVertex }

// VertexLabeled reports whether the space targets the vertex-labeled
// (uniform-over-graphs) distribution rather than the stub-labeled one.
func (s Space) VertexLabeled() bool {
	return s == SimpleVertex || s == LoopyVertex || s == MultigraphVertex
}

// Valid reports whether s names a cell of the matrix.
func (s Space) Valid() bool { return s < numSpaces }

// spaceNames is the canonical CLI/report spelling per cell.
var spaceNames = [numSpaces]string{
	SimpleStub:       "simple",
	SimpleVertex:     "simple-vertex",
	LoopyStub:        "loopy-stub",
	LoopyVertex:      "loopy-vertex",
	MultigraphStub:   "multigraph-stub",
	MultigraphVertex: "multigraph-vertex",
}

// String returns the canonical spelling ("simple", "loopy-stub", ...).
func (s Space) String() string {
	if !s.Valid() {
		return fmt.Sprintf("space(%d)", uint8(s))
	}
	return spaceNames[s]
}

// ParseSpace resolves a CLI spelling to its cell. The canonical names
// are those of String; "simple-stub" and "multi-stub"/"multi-vertex"
// are accepted aliases.
func ParseSpace(name string) (Space, error) {
	switch name {
	case "", "simple", "simple-stub":
		return SimpleStub, nil
	case "simple-vertex":
		return SimpleVertex, nil
	case "loopy-stub":
		return LoopyStub, nil
	case "loopy-vertex":
		return LoopyVertex, nil
	case "multigraph-stub", "multi-stub":
		return MultigraphStub, nil
	case "multigraph-vertex", "multi-vertex":
		return MultigraphVertex, nil
	}
	return SimpleStub, fmt.Errorf("graph: unknown sampling space %q (want simple, simple-vertex, loopy-stub, loopy-vertex, multigraph-stub or multigraph-vertex)", name)
}

// SpaceNames returns the canonical spellings, for flag help text.
func SpaceNames() []string {
	names := make([]string, 0, numSpaces)
	for _, s := range Spaces() {
		names = append(names, s.String())
	}
	return names
}

// SatisfiesSpace reports whether el is a legal state of space.
func (el *EdgeList) SatisfiesSpace(space Space) bool {
	return ValidateInSpace(el, space) == nil
}

// ValidateInSpace returns a descriptive error when el is not a legal
// state of space: loops outside loopy/multigraph cells, multi-edges
// (including duplicated self-loops) outside multigraph cells. It is
// the explicit opt-in gate the readers and CLIs use so non-simple
// input is either embraced (matching space) or rejected loudly, never
// silently "hoped away". O(m) via the multiplicity view.
func ValidateInSpace(el *EdgeList, space Space) error {
	ms := MultisetOf(el)
	if ms.Loops() > 0 && !space.AllowsLoops() {
		return fmt.Errorf("graph: input has %d self-loop(s), illegal in space %s", ms.Loops(), space)
	}
	if ms.MultiExcess() > 0 && !space.AllowsMulti() {
		return fmt.Errorf("graph: input has %d multi-edge instance(s), illegal in space %s", ms.MultiExcess(), space)
	}
	return nil
}

// Multiset is the multiplicity view of an edge list: canonical edge
// key → instance count. It is the storage the vertex-labeled swap
// acceptance policies and the simplification pass share: membership,
// multiplicities and loop counts in O(1) per lookup, built in O(m).
type Multiset struct {
	counts map[uint64]int32
	// loops and extra cache the defect totals so IsSimple is O(1).
	loops int
	extra int
}

// NewMultiset returns an empty multiset with capacity for m edges.
func NewMultiset(m int) *Multiset {
	return &Multiset{counts: make(map[uint64]int32, m)}
}

// MultisetOf builds the multiset of an edge list.
func MultisetOf(el *EdgeList) *Multiset {
	ms := NewMultiset(len(el.Edges))
	for _, e := range el.Edges {
		ms.AddEdge(e)
	}
	return ms
}

// Reset empties the multiset, keeping its allocated capacity.
func (ms *Multiset) Reset() {
	clear(ms.counts)
	ms.loops, ms.extra = 0, 0
}

// Count returns the multiplicity of the canonical key k.
func (ms *Multiset) Count(k uint64) int32 { return ms.counts[k] }

// CountEdge returns the multiplicity of e (orientation-insensitive).
func (ms *Multiset) CountEdge(e Edge) int32 { return ms.counts[e.Key()] }

// AddEdge inserts one instance of e and returns its new multiplicity.
func (ms *Multiset) AddEdge(e Edge) int32 {
	k := e.Key()
	c := ms.counts[k] + 1
	ms.counts[k] = c
	if e.IsLoop() {
		ms.loops++
	}
	if c > 1 {
		ms.extra++
	}
	return c
}

// RemoveEdge removes one instance of e. Removing an absent edge is a
// programming error and panics.
func (ms *Multiset) RemoveEdge(e Edge) {
	k := e.Key()
	c := ms.counts[k]
	if c <= 0 {
		panic("graph: Multiset.RemoveEdge of absent edge")
	}
	if c == 1 {
		delete(ms.counts, k)
	} else {
		ms.counts[k] = c - 1
	}
	if e.IsLoop() {
		ms.loops--
	}
	if c > 1 {
		ms.extra--
	}
}

// Loops returns the number of self-loop instances.
func (ms *Multiset) Loops() int { return ms.loops }

// MultiExcess returns the number of edge instances beyond the first
// per canonical key — a duplicated self-loop counts here too, because
// two loop instances at one vertex are a multi-edge in the loopy (no
// multi-edge) spaces.
func (ms *Multiset) MultiExcess() int { return ms.extra }

// Defects returns Loops() + MultiExcess(): the quantity the Sjöstrand
// simplification pass drives to zero.
func (ms *Multiset) Defects() int { return ms.loops + ms.extra }

// IsSimple reports no loops and no multi-edges, in O(1).
func (ms *Multiset) IsSimple() bool { return ms.loops == 0 && ms.extra == 0 }

// Canonicalize rewrites el in place into its canonical presentation:
// every edge oriented U <= V and the list sorted by key. Orientation
// and order are MCMC state for the swap engine, so this is for
// comparison, hashing and serialization of *final* outputs only.
func (el *EdgeList) Canonicalize() {
	for i, e := range el.Edges {
		el.Edges[i] = e.Canonical()
	}
	sort.Slice(el.Edges, func(i, j int) bool { return el.Edges[i].Key() < el.Edges[j].Key() })
}

// LogStubLabelings returns the natural log of the number of stub
// matchings realizing el's multigraph:
//
//	∏_v d_v! / (∏_{u<v} w_uv! · ∏_v 2^{w_vv} w_vv!)
//
// Statcheck uses the relative weights (the ∏ d_v! numerator is shared
// by every state of a degree sequence) to build the stub-labeled
// target distribution for exact-enumeration gates; logs keep tiny
// spaces away from overflow without pulling in big.Int.
func (el *EdgeList) LogStubLabelings() float64 {
	deg := make(map[int32]int64)
	counts := make(map[uint64]int64, len(el.Edges))
	for _, e := range el.Edges {
		deg[e.U]++
		deg[e.V]++
		counts[e.Key()]++
	}
	var lg float64
	for _, d := range deg {
		lg += logFactorial(d)
	}
	for k, w := range counts {
		e := EdgeFromKey(k)
		lg -= logFactorial(w)
		if e.IsLoop() {
			lg -= float64(w) * math.Ln2
		}
	}
	return lg
}

func logFactorial(n int64) float64 {
	var s float64
	for i := int64(2); i <= n; i++ {
		s += math.Log(float64(i))
	}
	return s
}
