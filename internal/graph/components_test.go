package graph

import (
	"math"
	"testing"

	"nullgraph/internal/rng"
)

func TestConnectedComponentsBasic(t *testing.T) {
	// Two triangles and an isolated vertex: 3 components.
	el := NewEdgeList([]Edge{
		{0, 1}, {1, 2}, {2, 0},
		{3, 4}, {4, 5}, {5, 3},
	}, 7)
	for _, p := range []int{1, 4} {
		labels, count := ConnectedComponents(el, p)
		if count != 3 {
			t.Fatalf("p=%d: count = %d, want 3", p, count)
		}
		if labels[0] != labels[1] || labels[1] != labels[2] {
			t.Error("triangle 1 split")
		}
		if labels[3] != labels[4] || labels[4] != labels[5] {
			t.Error("triangle 2 split")
		}
		if labels[0] == labels[3] || labels[0] == labels[6] || labels[3] == labels[6] {
			t.Error("distinct components merged")
		}
	}
}

func TestConnectedComponentsDeterministicLabels(t *testing.T) {
	el := pathGraph(1000)
	a, ca := ConnectedComponents(el, 4)
	b, cb := ConnectedComponents(el, 2)
	if ca != cb {
		t.Fatalf("counts differ: %d vs %d", ca, cb)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("labels differ at %d", v)
		}
	}
}

func TestConnectedComponentsPath(t *testing.T) {
	el := pathGraph(5000)
	labels, count := ConnectedComponents(el, 8)
	if count != 1 {
		t.Fatalf("path has %d components", count)
	}
	for v, l := range labels {
		if l != 0 {
			t.Fatalf("vertex %d label %d", v, l)
		}
	}
}

func TestConnectedComponentsEmptyAndIsolated(t *testing.T) {
	labels, count := ConnectedComponents(NewEdgeList(nil, 0), 2)
	if count != 0 || len(labels) != 0 {
		t.Error("empty graph mishandled")
	}
	labels, count = ConnectedComponents(NewEdgeList(nil, 4), 2)
	if count != 4 {
		t.Fatalf("4 isolated vertices => %d components", count)
	}
	seen := map[int32]bool{}
	for _, l := range labels {
		if seen[l] {
			t.Error("isolated vertices share a component")
		}
		seen[l] = true
	}
}

func TestConnectedComponentsRandomAgainstUnionFind(t *testing.T) {
	src := rng.New(5)
	const n = 2000
	var edges []Edge
	for i := 0; i < 3000; i++ {
		edges = append(edges, Edge{U: int32(src.Intn(n)), V: int32(src.Intn(n))})
	}
	el := NewEdgeList(edges, n)
	labels, count := ConnectedComponents(el, 4)

	// Serial union-find reference.
	uf := make([]int32, n)
	for i := range uf {
		uf[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for uf[x] != x {
			uf[x] = uf[uf[x]]
			x = uf[x]
		}
		return x
	}
	for _, e := range edges {
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			uf[ru] = rv
		}
	}
	refCount := 0
	for v := int32(0); v < n; v++ {
		if find(v) == v {
			refCount++
		}
	}
	if count != refCount {
		t.Fatalf("count = %d, union-find says %d", count, refCount)
	}
	// Same-component relation must match.
	for i := 0; i < 5000; i++ {
		u, v := int32(src.Intn(n)), int32(src.Intn(n))
		if (labels[u] == labels[v]) != (find(u) == find(v)) {
			t.Fatalf("relation mismatch for (%d,%d)", u, v)
		}
	}
}

func TestLargestComponentSize(t *testing.T) {
	el := NewEdgeList([]Edge{{0, 1}, {1, 2}, {3, 4}}, 6)
	if got := LargestComponentSize(el, 2); got != 3 {
		t.Errorf("LargestComponentSize = %d, want 3", got)
	}
	if got := LargestComponentSize(NewEdgeList(nil, 0), 2); got != 0 {
		t.Errorf("empty = %d", got)
	}
}

func TestGlobalClusteringCoefficient(t *testing.T) {
	// Triangle: transitivity 1.
	tri := NewEdgeList([]Edge{{0, 1}, {1, 2}, {2, 0}}, 3)
	if got := GlobalClusteringCoefficient(tri, 2); math.Abs(got-1) > 1e-12 {
		t.Errorf("triangle transitivity = %v", got)
	}
	// Path: no triangles.
	path := pathGraph(10)
	if got := GlobalClusteringCoefficient(path, 2); got != 0 {
		t.Errorf("path transitivity = %v", got)
	}
	// Star: wedges but no triangles.
	star := NewEdgeList([]Edge{{0, 1}, {0, 2}, {0, 3}}, 4)
	if got := GlobalClusteringCoefficient(star, 1); got != 0 {
		t.Errorf("star transitivity = %v", got)
	}
	// K4: 4 triangles, 12 wedges: 3*4/12 = 1.
	k4 := NewEdgeList([]Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}, 4)
	if got := GlobalClusteringCoefficient(k4, 2); math.Abs(got-1) > 1e-12 {
		t.Errorf("K4 transitivity = %v", got)
	}
	// Empty.
	if got := GlobalClusteringCoefficient(NewEdgeList(nil, 0), 1); got != 0 {
		t.Errorf("empty transitivity = %v", got)
	}
}
