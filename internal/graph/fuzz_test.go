package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeListText checks the text parser never panics and that
// anything it accepts round-trips through the writer.
func FuzzReadEdgeListText(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n\n5 5\n")
	f.Add("bad input")
	f.Add("-1 0\n")
	f.Add("1 99999999999999\n")
	f.Add("0 1 extra tokens ok? no\n")
	f.Fuzz(func(t *testing.T, input string) {
		el, err := ReadEdgeListText(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteEdgeListText(&buf, el); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		back, err := ReadEdgeListText(&buf)
		if err != nil {
			t.Fatalf("reparse of own output: %v", err)
		}
		if len(back.Edges) != len(el.Edges) {
			t.Fatalf("round trip changed edge count: %d vs %d", len(back.Edges), len(el.Edges))
		}
		for i := range el.Edges {
			if back.Edges[i] != el.Edges[i] {
				t.Fatalf("round trip changed edge %d", i)
			}
		}
	})
}

// FuzzBinaryRoundTrip checks the binary reader is robust against
// arbitrary bytes and exact on its own output.
func FuzzBinaryRoundTrip(f *testing.F) {
	var seed bytes.Buffer
	el := NewEdgeList([]Edge{{0, 1}, {1, 2}}, 3)
	if err := WriteEdgeListBinary(&seed, el); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadEdgeListBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteEdgeListBinary(&buf, got); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		back, err := ReadEdgeListBinary(&buf)
		if err != nil {
			t.Fatalf("reparse of own output: %v", err)
		}
		if len(back.Edges) != len(got.Edges) || back.NumVertices != got.NumVertices {
			t.Fatal("binary round trip changed shape")
		}
	})
}
