package graph

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

// FuzzReadEdgeListText is the text-parser mirror of the binary
// differential target: hostile inputs must fail cleanly (no panic, no
// silent truncation), and anything accepted must satisfy the endpoint
// invariants and round-trip through the writer byte-for-byte.
func FuzzReadEdgeListText(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n\n5 5\n")
	f.Add("bad input")
	f.Add("-1 0\n")
	f.Add("1 99999999999999\n")
	f.Add("0 1 extra tokens ok? no\n")
	// Hostile whitespace: tabs, runs of blanks, leading/trailing pads.
	f.Add("0\t1\n \t 2   3 \t\n")
	f.Add("   \n\t\n0 1\n")
	// CRLF and bare-CR line endings.
	f.Add("0 1\r\n1 2\r\n")
	f.Add("0 1\r1 2\r")
	// Overflow tokens: beyond int64, beyond int32, exactly at bounds.
	f.Add("0 18446744073709551616\n")
	f.Add("0 9223372036854775807\n")
	f.Add("0 2147483647\n")
	f.Add("2147483648 0\n")
	// Negative and sign-decorated endpoints.
	f.Add("-9223372036854775808 0\n")
	f.Add("+1 2\n")
	// Token-count violations and mid-line comments.
	f.Add("7\n")
	f.Add("0 1 # trailing comment\n")
	// NUL bytes and other control characters inside tokens.
	f.Add("0\x001\n")
	f.Add("\x000 1\n")
	// Missing trailing newline on the last edge.
	f.Add("0 1\n2 3")
	// Non-simple inputs — self-loops, parallel edges, duplicated loops —
	// are legal text (the permissive reader accepts them; space
	// membership is checked downstream by ValidateInSpace).
	f.Add("0 0\n1 1\n0 1\n0 1\n")
	f.Add("2 2\n2 2\n")
	f.Add("0 1\n1 0\n0 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		el, err := ReadEdgeListText(strings.NewReader(input))
		if err != nil {
			return
		}
		// Endpoint invariant: every accepted edge must be in range for
		// the reported vertex count, and the count itself sane.
		if el.NumVertices < 0 {
			t.Fatalf("accepted negative vertex count %d", el.NumVertices)
		}
		n := int32(el.NumVertices)
		for i, e := range el.Edges {
			if e.U < 0 || e.V < 0 || e.U >= n || e.V >= n {
				t.Fatalf("accepted edge %d (%d,%d) out of range for %d vertices", i, e.U, e.V, n)
			}
		}
		var buf bytes.Buffer
		if err := WriteEdgeListText(&buf, el); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		back, err := ReadEdgeListText(&buf)
		if err != nil {
			t.Fatalf("reparse of own output: %v", err)
		}
		if len(back.Edges) != len(el.Edges) {
			t.Fatalf("round trip changed edge count: %d vs %d", len(back.Edges), len(el.Edges))
		}
		for i := range el.Edges {
			if back.Edges[i] != el.Edges[i] {
				t.Fatalf("round trip changed edge %d", i)
			}
		}
	})
}

// binaryHeader encodes a (magic, n, m) header for fuzz seeds.
func binaryHeader(magic, n, m uint64) []byte {
	buf := make([]byte, 24)
	binary.LittleEndian.PutUint64(buf[0:], magic)
	binary.LittleEndian.PutUint64(buf[8:], n)
	binary.LittleEndian.PutUint64(buf[16:], m)
	return buf
}

// FuzzReadEdgeListBinary targets the binary reader's header hardening:
// truncated headers, corrupt magic, hostile edge counts, out-of-range
// endpoints, and truncated payloads must all fail cleanly (no panic, no
// unbounded allocation), and the seekable fast path must agree with the
// stream path byte-for-byte — same accept/reject outcome and, on
// accept, the identical edge list.
func FuzzReadEdgeListBinary(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteEdgeListBinary(&valid, NewEdgeList([]Edge{{0, 1}, {1, 2}, {0, 2}}, 3)); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	// Empty graphs: zero edges with and without vertices.
	f.Add(binaryHeader(binaryMagic, 0, 0))
	f.Add(binaryHeader(binaryMagic, 5, 0))
	// A larger valid graph exercises the chunked-growth stream path past
	// a single append.
	{
		big := make([]Edge, 300)
		for i := range big {
			big[i] = Edge{U: int32(i), V: int32((i + 1) % 400)}
		}
		var buf bytes.Buffer
		if err := WriteEdgeListBinary(&buf, NewEdgeList(big, 400)); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Endpoints at the top of the int32 ID range (NumVertices = MaxInt32).
	{
		var buf bytes.Buffer
		top := NewEdgeList([]Edge{{0, 1<<31 - 2}, {1<<31 - 2, 3}}, 1<<31-1)
		if err := WriteEdgeListBinary(&buf, top); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Truncated headers: cut inside each of the three header words.
	f.Add(valid.Bytes()[:7])
	f.Add(valid.Bytes()[:16])
	f.Add(valid.Bytes()[:23])
	// Corrupt magic.
	f.Add(binaryHeader(0xdeadbeef, 3, 1))
	// Hostile edge count with no payload behind it (the allocation bomb
	// the chunked reader defends against).
	f.Add(binaryHeader(binaryMagic, 3, 1<<40))
	// Vertex count past int32.
	f.Add(binaryHeader(binaryMagic, 1<<40, 0))
	// Valid header, payload endpoint out of range for n=2.
	f.Add(append(binaryHeader(binaryMagic, 2, 1), valid.Bytes()[24:32]...))
	// Valid header, payload truncated mid-edge.
	f.Add(valid.Bytes()[:len(valid.Bytes())-3])
	// Non-simple payloads: self-loops, parallel edges (both
	// orientations), and a duplicated loop. The binary reader is
	// space-agnostic — these must round-trip; ReadEdgeListBinaryInSpace
	// layers the membership check on top.
	{
		var buf bytes.Buffer
		multi := NewEdgeList([]Edge{{0, 0}, {1, 1}, {0, 1}, {1, 0}, {0, 1}, {2, 2}, {2, 2}}, 3)
		if err := WriteEdgeListBinary(&buf, multi); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Seekable path: the header's edge count is validated against the
		// bytes actually present before anything is allocated.
		el, err := ReadEdgeListBinary(bytes.NewReader(data))
		// Stream path: no Seeker, so the reader must fall back to
		// bounded, chunked growth.
		elStream, errStream := ReadEdgeListBinary(struct{ io.Reader }{bytes.NewReader(data)})
		if (err == nil) != (errStream == nil) {
			t.Fatalf("seekable/stream disagree: seekable err=%v, stream err=%v", err, errStream)
		}
		if err != nil {
			return
		}
		if el.NumVertices != elStream.NumVertices || len(el.Edges) != len(elStream.Edges) {
			t.Fatalf("seekable/stream shape mismatch: (%d,%d) vs (%d,%d)",
				el.NumVertices, len(el.Edges), elStream.NumVertices, len(elStream.Edges))
		}
		for i := range el.Edges {
			if el.Edges[i] != elStream.Edges[i] {
				t.Fatalf("seekable/stream edge %d mismatch", i)
			}
		}
		n := int32(el.NumVertices)
		for i, e := range el.Edges {
			if e.U < 0 || e.V < 0 || e.U >= n || e.V >= n {
				t.Fatalf("accepted edge %d (%d,%d) out of range for %d vertices", i, e.U, e.V, n)
			}
		}
		var buf bytes.Buffer
		if err := WriteEdgeListBinary(&buf, el); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		if int64(buf.Len()) != BinaryEdgeListSize(el) {
			t.Fatalf("wrote %d bytes, BinaryEdgeListSize says %d", buf.Len(), BinaryEdgeListSize(el))
		}
		back, err := ReadEdgeListBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reparse of own output: %v", err)
		}
		if back.NumVertices != el.NumVertices || len(back.Edges) != len(el.Edges) {
			t.Fatal("round trip changed shape")
		}
		for i := range el.Edges {
			if back.Edges[i] != el.Edges[i] {
				t.Fatalf("round trip changed edge %d", i)
			}
		}
	})
}

// FuzzBinaryRoundTrip checks the binary reader is robust against
// arbitrary bytes and exact on its own output.
func FuzzBinaryRoundTrip(f *testing.F) {
	var seed bytes.Buffer
	el := NewEdgeList([]Edge{{0, 1}, {1, 2}}, 3)
	if err := WriteEdgeListBinary(&seed, el); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadEdgeListBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteEdgeListBinary(&buf, got); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		back, err := ReadEdgeListBinary(&buf)
		if err != nil {
			t.Fatalf("reparse of own output: %v", err)
		}
		if len(back.Edges) != len(got.Edges) || back.NumVertices != got.NumVertices {
			t.Fatal("binary round trip changed shape")
		}
	})
}
