package graph

import "nullgraph/internal/par"

// Stats summarizes a graph the way the paper's Table I does.
type Stats struct {
	NumVertices   int
	NumEdges      int
	AvgDegree     float64
	MaxDegree     int64
	UniqueDegrees int // |D|
}

// ComputeStats derives Table I-style statistics from an edge list.
func ComputeStats(el *EdgeList, p int) Stats {
	deg := el.Degrees(p)
	return StatsFromDegrees(deg, len(el.Edges))
}

// StatsFromDegrees derives statistics from a degree array and edge count.
func StatsFromDegrees(deg []int64, m int) Stats {
	s := Stats{NumVertices: len(deg), NumEdges: m}
	if len(deg) == 0 {
		return s
	}
	seen := make(map[int64]struct{})
	var sum int64
	for _, d := range deg {
		sum += d
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		seen[d] = struct{}{}
	}
	s.AvgDegree = float64(sum) / float64(len(deg))
	s.UniqueDegrees = len(seen)
	return s
}

// MaxDegree returns the largest degree in parallel.
func MaxDegree(deg []int64, p int) int64 {
	return par.MaxInt64(len(deg), p, func(i int) int64 { return deg[i] })
}
