package graph

import (
	"bytes"
	"errors"
	"testing"
)

// errDiskFull is the injected failure of the short-write harness.
var errDiskFull = errors.New("short write: disk full")

// failAfter is an io.Writer that accepts exactly n bytes and then
// fails, emulating a full disk or a killed pipe at byte offset n. The
// partial-accept behaviour (k < len(p) with an error) is the hardest
// case for callers to propagate correctly.
type failAfter struct {
	n     int
	wrote int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.wrote+len(p) <= f.n {
		f.wrote += len(p)
		return len(p), nil
	}
	k := f.n - f.wrote
	if k < 0 {
		k = 0
	}
	f.wrote += k
	return k, errDiskFull
}

// TestWriteEdgeListBinaryShortWrites enumerates every byte offset at
// which the destination can fail and asserts the writer reports an
// error for each — no Write error anywhere in the encoder may be
// dropped, because a silently-short binary file is exactly the
// corruption ReadEdgeListBinary exists to reject.
func TestWriteEdgeListBinaryShortWrites(t *testing.T) {
	el := NewEdgeList([]Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}}, 4)
	var full bytes.Buffer
	if err := WriteEdgeListBinary(&full, el); err != nil {
		t.Fatal(err)
	}
	total := full.Len()
	if want := int(BinaryEdgeListSize(el)); total != want {
		t.Fatalf("encoded size %d, BinaryEdgeListSize says %d", total, want)
	}
	for cut := 0; cut < total; cut++ {
		if err := WriteEdgeListBinary(&failAfter{n: cut}, el); err == nil {
			t.Fatalf("write succeeding with only %d of %d bytes accepted: dropped error", cut, total)
		}
	}
	// Exactly enough capacity must succeed.
	if err := WriteEdgeListBinary(&failAfter{n: total}, el); err != nil {
		t.Fatalf("write failing with exactly %d bytes of capacity: %v", total, err)
	}
}

// TestWriteEdgeListTextShortWrites is the text-format mirror.
func TestWriteEdgeListTextShortWrites(t *testing.T) {
	el := NewEdgeList([]Edge{{0, 1}, {10, 200}, {3000, 2}}, 3001)
	var full bytes.Buffer
	if err := WriteEdgeListText(&full, el); err != nil {
		t.Fatal(err)
	}
	total := full.Len()
	for cut := 0; cut < total; cut++ {
		if err := WriteEdgeListText(&failAfter{n: cut}, el); err == nil {
			t.Fatalf("text write succeeding with only %d of %d bytes accepted: dropped error", cut, total)
		}
	}
	if err := WriteEdgeListText(&failAfter{n: total}, el); err != nil {
		t.Fatalf("text write failing with full capacity: %v", err)
	}
}
