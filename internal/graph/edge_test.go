package graph

import (
	"testing"
	"testing/quick"
)

func TestCanonical(t *testing.T) {
	cases := []struct{ in, want Edge }{
		{Edge{1, 2}, Edge{1, 2}},
		{Edge{2, 1}, Edge{1, 2}},
		{Edge{5, 5}, Edge{5, 5}},
		{Edge{0, 0}, Edge{0, 0}},
	}
	for _, c := range cases {
		if got := c.in.Canonical(); got != c.want {
			t.Errorf("%v.Canonical() = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIsLoop(t *testing.T) {
	if !(Edge{3, 3}).IsLoop() {
		t.Error("(3,3) not reported as loop")
	}
	if (Edge{3, 4}).IsLoop() {
		t.Error("(3,4) reported as loop")
	}
}

func TestKeyRoundTrip(t *testing.T) {
	f := func(u, v int32) bool {
		if u < 0 {
			u = -u
		}
		if v < 0 {
			v = -v
		}
		e := Edge{U: u, V: v}
		got := EdgeFromKey(e.Key())
		return got == e.Canonical()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyUndirectedIdentity(t *testing.T) {
	f := func(u, v int32) bool {
		if u < 0 {
			u = -u
		}
		if v < 0 {
			v = -v
		}
		return (Edge{u, v}).Key() == (Edge{v, u}).Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyInjective(t *testing.T) {
	// Distinct canonical edges must have distinct keys.
	seen := map[uint64]Edge{}
	for u := int32(0); u < 40; u++ {
		for v := u; v < 40; v++ {
			e := Edge{u, v}
			k := e.Key()
			if prev, dup := seen[k]; dup {
				t.Fatalf("edges %v and %v share key %#x", prev, e, k)
			}
			seen[k] = e
		}
	}
}

func TestEdgeString(t *testing.T) {
	if got := (Edge{7, 9}).String(); got != "(7,9)" {
		t.Errorf("String = %q", got)
	}
}
