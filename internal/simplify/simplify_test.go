package simplify_test

import (
	"testing"

	"nullgraph/internal/chunglu"
	"nullgraph/internal/degseq"
	"nullgraph/internal/graph"
	"nullgraph/internal/simplify"
)

func degreesOf(el *graph.EdgeList) []int64 { return el.Degrees(1) }

func equalInt64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSimpleInputUntouched(t *testing.T) {
	el := graph.FromEdges([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	before := append([]graph.Edge(nil), el.Edges...)
	res := simplify.Run(el, 7)
	if !res.Simple || res.Swaps != 0 || res.Neutral != 0 || res.InitialDefects != 0 {
		t.Fatalf("simple input: %+v", res)
	}
	for i := range before {
		if el.Edges[i] != before[i] {
			t.Fatal("simple input was modified")
		}
	}
}

// TestHandCases pins small defect configurations that one targeted
// swap must resolve.
func TestHandCases(t *testing.T) {
	cases := [][]graph.Edge{
		// Loop plus a disjoint edge: (0,0),(1,2) → (0,1),(0,2).
		{{U: 0, V: 0}, {U: 1, V: 2}},
		// Double edge plus a disjoint edge.
		{{U: 0, V: 1}, {U: 0, V: 1}, {U: 2, V: 3}},
		// Two loops at distinct vertices: one swap → double edge? No:
		// (0,0),(1,1) → (0,1),(0,1) is still defective, so the pass
		// needs the second partner edge to finish.
		{{U: 0, V: 0}, {U: 1, V: 1}, {U: 2, V: 3}},
	}
	for ci, edges := range cases {
		el := graph.FromEdges(append([]graph.Edge(nil), edges...))
		degBefore := degreesOf(el)
		res := simplify.Run(el, uint64(ci)+1)
		if !res.Simple {
			t.Errorf("case %d: not simple after pass: %+v (edges %v)", ci, res, el.Edges)
		}
		if res.Swaps > res.InitialDefects {
			t.Errorf("case %d: %d swaps exceeds defect bound %d", ci, res.Swaps, res.InitialDefects)
		}
		if !equalInt64(degreesOf(el), degBefore) {
			t.Errorf("case %d: degree sequence changed", ci)
		}
	}
}

// TestNonGraphicalResidual: degrees (3,1) on two vertices admit no
// simple graph, so the pass must stop with a residual instead of
// spinning.
func TestNonGraphicalResidual(t *testing.T) {
	el := graph.FromEdges([]graph.Edge{{U: 0, V: 0}, {U: 0, V: 1}})
	res := simplify.Run(el, 3)
	if res.Simple || res.ResidualDefects == 0 {
		t.Fatalf("non-graphical input reported simple: %+v", res)
	}
	if !equalInt64(degreesOf(el), []int64{3, 1}) {
		t.Fatal("degree sequence changed")
	}
}

// TestChungLuSimplification is the wiring target: O(m) Chung-Lu output
// is a loopy multigraph, and the pass must reach a simple graph within
// the defect bound, preserving realized degrees, across seeds and
// degree shapes.
func TestChungLuSimplification(t *testing.T) {
	dists := []*degseq.Distribution{
		{Classes: []degseq.Class{{Degree: 6, Count: 200}}},
		{Classes: []degseq.Class{{Degree: 2, Count: 300}, {Degree: 12, Count: 30}, {Degree: 40, Count: 4}}},
	}
	for di, dist := range dists {
		for seed := uint64(1); seed <= 5; seed++ {
			el := chunglu.GenerateOM(dist, chunglu.Options{Seed: seed, Workers: 2})
			degBefore := degreesOf(el)
			res := simplify.Run(el, seed)
			if res.InitialDefects == 0 {
				t.Fatalf("dist %d seed %d: expected defective Chung-Lu output", di, seed)
			}
			if !res.Simple {
				t.Errorf("dist %d seed %d: residual %d defects: %+v", di, seed, res.ResidualDefects, res)
			}
			if res.Swaps > res.InitialDefects {
				t.Errorf("dist %d seed %d: %d swaps exceeds Sjöstrand bound %d",
					di, seed, res.Swaps, res.InitialDefects)
			}
			if !equalInt64(degreesOf(el), degBefore) {
				t.Errorf("dist %d seed %d: degree sequence changed", di, seed)
			}
			if rep := el.CheckSimplicity(); !rep.IsSimple() {
				t.Errorf("dist %d seed %d: CheckSimplicity disagrees: %+v", di, seed, rep)
			}
		}
	}
}

// TestDeterministic: fixed (input, seed) must yield identical output.
func TestDeterministic(t *testing.T) {
	dist := &degseq.Distribution{Classes: []degseq.Class{{Degree: 8, Count: 100}}}
	a := chunglu.GenerateOM(dist, chunglu.Options{Seed: 42})
	b := chunglu.GenerateOM(dist, chunglu.Options{Seed: 42})
	ra := simplify.Run(a, 99)
	rb := simplify.Run(b, 99)
	if ra != rb {
		t.Fatalf("results differ: %+v vs %+v", ra, rb)
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a.Edges[i], b.Edges[i])
		}
	}
	c := chunglu.GenerateOM(dist, chunglu.Options{Seed: 42})
	simplify.Run(c, 100)
	same := true
	for i := range a.Edges {
		if a.Edges[i] != c.Edges[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different simplify seeds produced identical rewirings")
	}
}
