// Package simplify implements Sjöstrand-style targeted double-edge
// swaps (arXiv:1904.06999) that drive a loopy multigraph to a simple
// graph while preserving its degree sequence exactly.
//
// The Chung-Lu O(m) baseline emits self-loops and multi-edges with
// constant expected density; the paper's pipeline previously fed those
// outputs to the swap chain and hoped the defects would mix away. This
// pass replaces that hope with a bound: every applied targeted swap
// strictly reduces the defect count D = (#self-loop instances) +
// (#edge instances beyond the first per vertex pair), so the number of
// reducing swaps is at most the initial defect count. When greedy
// reduction sticks — no partner edge admits a strictly reducing
// rewiring — a bounded number of defect-neutral shuffle swaps relocate
// the defect before another reduction attempt, and if the realized
// degree sequence is not graphical in the simple space (possible for
// Chung-Lu: consider a realized degree exceeding n-1) the residual
// defect count is reported instead of looping forever.
package simplify

import (
	"nullgraph/internal/graph"
	"nullgraph/internal/rng"
)

// seedSalt decorrelates the simplification stream from the generation
// and swap streams derived from the same user seed.
const seedSalt = 0x51ed5e11aab1e5ed

// probeLimit bounds random partner probing before falling back to a
// full circular scan (reducing moves) or giving up (neutral moves).
// 64 probes make the common case O(1)-ish while the fallback keeps the
// pass complete: if any reducing partner exists, it is found.
const probeLimit = 64

// neutralBudgetSlack is added to 4×InitialDefects to bound the total
// number of defect-neutral unsticking swaps even when the initial
// defect count is tiny.
const neutralBudgetSlack = 16

// Result reports what one simplification pass did.
type Result struct {
	// InitialDefects is D before the pass: self-loop instances plus
	// multi-edge excess instances.
	InitialDefects int
	// ResidualDefects is D after the pass; zero when Simple.
	ResidualDefects int
	// Swaps counts the applied defect-reducing swaps. The termination
	// bound is Swaps <= InitialDefects: each one strictly reduces D.
	Swaps int
	// Neutral counts applied defect-neutral unsticking swaps.
	Neutral int
	// Simple reports whether the edge list is simple after the pass.
	Simple bool
}

// Run simplifies el in place using seeded targeted swaps and returns
// what happened. The degree sequence is preserved exactly; edge order
// and orientation of untouched edges are preserved, so a fixed
// (input, seed) pair yields a deterministic output. A simple input is
// returned untouched with Swaps == 0.
func Run(el *graph.EdgeList, seed uint64) Result {
	ms := graph.MultisetOf(el)
	res := Result{InitialDefects: ms.Defects()}
	if res.InitialDefects == 0 {
		res.Simple = true
		return res
	}
	r := rng.New(rng.Mix64(seed) ^ seedSalt)
	neutralBudget := 4*res.InitialDefects + neutralBudgetSlack
	for ms.Defects() > 0 {
		i := findDefective(el, ms, r)
		if i < 0 {
			break
		}
		if j, g, h, ok := findReducing(el, ms, r, i); ok {
			el.Edges[i], el.Edges[j] = g, h
			res.Swaps++
			continue
		}
		if res.Neutral >= neutralBudget {
			break
		}
		j, g, h, ok := findNeutral(el, ms, r, i)
		if !ok {
			break
		}
		el.Edges[i], el.Edges[j] = g, h
		res.Neutral++
	}
	res.ResidualDefects = ms.Defects()
	res.Simple = res.ResidualDefects == 0
	return res
}

// defective reports whether instance e is part of a defect: a loop, or
// one of several instances sharing a vertex pair.
func defective(ms *graph.Multiset, e graph.Edge) bool {
	return e.IsLoop() || ms.CountEdge(e) > 1
}

// findDefective returns the index of a defective edge instance,
// scanning circularly from a random start so repeated calls spread
// work across the defects. Returns -1 if none exists.
func findDefective(el *graph.EdgeList, ms *graph.Multiset, r *rng.Source) int {
	m := len(el.Edges)
	if m == 0 {
		return -1
	}
	start := r.Intn(m)
	for k := 0; k < m; k++ {
		i := start + k
		if i >= m {
			i -= m
		}
		if defective(ms, el.Edges[i]) {
			return i
		}
	}
	return -1
}

// rewire returns the two double-edge-swap rewirings of (e, f); both
// preserve all four endpoint degrees.
func rewire(e, f graph.Edge, coin bool) (graph.Edge, graph.Edge) {
	if coin {
		return graph.Edge{U: e.U, V: f.U}, graph.Edge{U: e.V, V: f.V}
	}
	return graph.Edge{U: e.U, V: f.V}, graph.Edge{U: e.V, V: f.U}
}

// defectDelta returns the change ms.Defects() would undergo if one
// instance each of (e, f) were replaced by (g, h). Read-only: at most
// four map lookups, no mutation. Candidate moves vastly outnumber
// applied ones, so evaluating them without the commit-and-rollback
// churn of a mutating trial is what keeps the pass usable at millions
// of edges (the rollback variant spent >95% of its time in map
// writes on a 4M-edge Chung-Lu draw).
func defectDelta(ms *graph.Multiset, e, f, g, h graph.Edge) int {
	delta := 0
	if e.IsLoop() {
		delta--
	}
	if f.IsLoop() {
		delta--
	}
	if g.IsLoop() {
		delta++
	}
	if h.IsLoop() {
		delta++
	}
	keys := [4]uint64{e.Key(), f.Key(), g.Key(), h.Key()}
	net := [4]int32{-1, -1, 1, 1}
	// Fold duplicate keys into their earliest slot so each distinct
	// key's multiplicity change is evaluated exactly once.
	for i := 1; i < 4; i++ {
		for j := 0; j < i; j++ {
			if keys[j] == keys[i] {
				net[j] += net[i]
				net[i] = 0
				break
			}
		}
	}
	for i := 0; i < 4; i++ {
		if net[i] == 0 {
			continue
		}
		c0 := ms.Count(keys[i])
		c1 := c0 + net[i]
		delta += int(max(c1-1, 0) - max(c0-1, 0))
	}
	return delta
}

// applyRewire commits the replacement of (e, f) by (g, h) in ms.
func applyRewire(ms *graph.Multiset, e, f, g, h graph.Edge) {
	ms.RemoveEdge(e)
	ms.RemoveEdge(f)
	ms.AddEdge(g)
	ms.AddEdge(h)
}

// findReducing looks for a partner index j and rewiring of
// (Edges[i], Edges[j]) that strictly reduces the defect count,
// committing it to ms when found. Random probing handles the common
// case; a full circular scan from a random start guarantees
// completeness — if any strictly reducing single swap exists for edge
// i, it is found. The random start matters: a first-fit scan from 0
// keeps applying swaps at low indices, leaving a saturated prefix that
// every later scan must re-walk, which turns the tail of a large
// simplification quadratic.
func findReducing(el *graph.EdgeList, ms *graph.Multiset, r *rng.Source, i int) (j int, g, h graph.Edge, ok bool) {
	m := len(el.Edges)
	if m < 2 {
		return 0, graph.Edge{}, graph.Edge{}, false
	}
	e := el.Edges[i]
	for p := 0; p < probeLimit; p++ {
		j = r.Intn(m)
		if j == i {
			continue
		}
		coin := r.Bool()
		if g, h = rewire(e, el.Edges[j], coin); defectDelta(ms, e, el.Edges[j], g, h) < 0 {
			applyRewire(ms, e, el.Edges[j], g, h)
			return j, g, h, true
		}
		if g, h = rewire(e, el.Edges[j], !coin); defectDelta(ms, e, el.Edges[j], g, h) < 0 {
			applyRewire(ms, e, el.Edges[j], g, h)
			return j, g, h, true
		}
	}
	start := r.Intn(m)
	for k := 0; k < m; k++ {
		j = start + k
		if j >= m {
			j -= m
		}
		if j == i {
			continue
		}
		for _, coin := range []bool{true, false} {
			if g, h = rewire(e, el.Edges[j], coin); defectDelta(ms, e, el.Edges[j], g, h) < 0 {
				applyRewire(ms, e, el.Edges[j], g, h)
				return j, g, h, true
			}
		}
	}
	return 0, graph.Edge{}, graph.Edge{}, false
}

// findNeutral looks for a defect-neutral rewiring involving edge i
// that actually changes the multiset (a no-op shuffle would burn the
// neutral budget without relocating the defect). Probing only: when
// even random neutral moves are unavailable the pass should stop and
// report the residual rather than scan exhaustively for a shuffle.
func findNeutral(el *graph.EdgeList, ms *graph.Multiset, r *rng.Source, i int) (j int, g, h graph.Edge, ok bool) {
	m := len(el.Edges)
	if m < 2 {
		return 0, graph.Edge{}, graph.Edge{}, false
	}
	e := el.Edges[i]
	for p := 0; p < probeLimit; p++ {
		j = r.Intn(m)
		if j == i {
			continue
		}
		f := el.Edges[j]
		coin := r.Bool()
		g, h = rewire(e, f, coin)
		if sameInstancePair(e, f, g, h) {
			g, h = rewire(e, f, !coin)
			if sameInstancePair(e, f, g, h) {
				continue
			}
		}
		if defectDelta(ms, e, f, g, h) == 0 {
			applyRewire(ms, e, f, g, h)
			return j, g, h, true
		}
	}
	return 0, graph.Edge{}, graph.Edge{}, false
}

// sameInstancePair reports whether {g, h} is the same edge pair (by
// canonical key) as {e, f} — i.e. the rewiring is a multiset no-op.
func sameInstancePair(e, f, g, h graph.Edge) bool {
	ek, fk, gk, hk := e.Key(), f.Key(), g.Key(), h.Key()
	return (gk == ek && hk == fk) || (gk == fk && hk == ek)
}
