// Package metrics computes the quality measures the paper evaluates
// generators with: error in edge count, maximum degree and Gini
// coefficient (Figure 3), per-degree output distribution error
// (Figure 2), empirical pairwise degree-degree attachment probabilities
// and their L1 distance to a reference (Figures 1 and 4), plus degree
// assortativity as a general-purpose diagnostic.
package metrics

import (
	"math"
	"sort"

	"nullgraph/internal/degseq"
	"nullgraph/internal/graph"
	"nullgraph/internal/probgen"
)

// Gini returns the Gini coefficient of a degree sequence: 0 for a
// regular graph, approaching 1 as degree mass concentrates. Empty and
// zero-sum sequences return 0.
func Gini(deg []int64) float64 {
	n := len(deg)
	if n == 0 {
		return 0
	}
	sorted := make([]int64, n)
	copy(sorted, deg)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum, weighted float64
	for i, d := range sorted {
		sum += float64(d)
		weighted += float64(i+1) * float64(d)
	}
	if sum == 0 {
		return 0
	}
	nf := float64(n)
	return (2*weighted)/(nf*sum) - (nf+1)/nf
}

// GiniOfDistribution computes Gini directly from {D,N} without
// expanding (classes are already sorted ascending).
func GiniOfDistribution(dist *degseq.Distribution) float64 {
	n := dist.NumVertices()
	if n == 0 {
		return 0
	}
	var sum, weighted float64
	var rank int64 // vertices placed so far
	for _, c := range dist.Classes {
		d := float64(c.Degree)
		cnt := float64(c.Count)
		sum += d * cnt
		// Ranks rank+1 .. rank+count each carry weight d: the rank sum
		// is count*rank + count(count+1)/2.
		weighted += d * (cnt*float64(rank) + cnt*(cnt+1)/2)
		rank += c.Count
	}
	if sum == 0 {
		return 0
	}
	nf := float64(n)
	return (2*weighted)/(nf*sum) - (nf+1)/nf
}

// QualityError is the Figure 3 triple: relative errors of a generated
// graph against its target distribution. Values are signed fractions
// (e.g. -0.05 = 5% under target).
type QualityError struct {
	Edges     float64
	MaxDegree float64
	Gini      float64
}

// Quality compares a generated edge list to the target distribution.
func Quality(el *graph.EdgeList, dist *degseq.Distribution, p int) QualityError {
	deg := el.Degrees(p)
	var q QualityError
	targetM := float64(dist.NumEdges())
	if targetM > 0 {
		q.Edges = (float64(el.NumEdges()) - targetM) / targetM
	}
	targetMax := float64(dist.MaxDegree())
	if targetMax > 0 {
		q.MaxDegree = (float64(graph.MaxDegree(deg, p)) - targetMax) / targetMax
	}
	targetGini := GiniOfDistribution(dist)
	if targetGini > 0 {
		q.Gini = (Gini(deg) - targetGini) / targetGini
	}
	return q
}

// DegreeError reports the output vertex count at one degree versus the
// target — the series of Figure 2.
type DegreeError struct {
	Degree int64
	Target int64
	Got    int64
}

// RelativeError returns (got-target)/target, or 0 when the degree is
// absent from the target.
func (e DegreeError) RelativeError() float64 {
	if e.Target == 0 {
		return 0
	}
	return float64(e.Got-e.Target) / float64(e.Target)
}

// DegreeDistributionError tabulates output-vs-target counts for every
// degree present in either side, ascending.
func DegreeDistributionError(el *graph.EdgeList, dist *degseq.Distribution, p int) []DegreeError {
	got := map[int64]int64{}
	for _, d := range el.Degrees(p) {
		got[d]++
	}
	target := map[int64]int64{}
	for _, c := range dist.Classes {
		target[c.Degree] = c.Count
	}
	degrees := map[int64]struct{}{}
	for d := range got {
		degrees[d] = struct{}{}
	}
	for d := range target {
		degrees[d] = struct{}{}
	}
	out := make([]DegreeError, 0, len(degrees))
	for d := range degrees {
		out = append(out, DegreeError{Degree: d, Target: target[d], Got: got[d]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Degree < out[j].Degree })
	return out
}

// AttachmentAccumulator estimates the pairwise degree-class attachment
// probability matrix empirically by averaging edge frequencies over
// sample graphs. Vertices are classed by the target distribution's
// layout (class k owns IDs [I(k), I(k+1))), which matches every
// generator in this library and stays meaningful after swaps.
type AttachmentAccumulator struct {
	dist    *degseq.Distribution
	offsets []int64
	counts  []float64 // |D|×|D| symmetric accumulation of edge counts
	samples int
}

// NewAttachmentAccumulator prepares an accumulator for dist's layout.
func NewAttachmentAccumulator(dist *degseq.Distribution) *AttachmentAccumulator {
	k := dist.NumClasses()
	return &AttachmentAccumulator{
		dist:    dist,
		offsets: dist.VertexOffsets(1),
		counts:  make([]float64, k*k),
	}
}

// Add accumulates one sample graph. Multi-edges accumulate multiply and
// self-loops are ignored (no class pair space contains them).
func (a *AttachmentAccumulator) Add(el *graph.EdgeList) {
	k := a.dist.NumClasses()
	for _, e := range el.Edges {
		if e.IsLoop() {
			continue
		}
		ci := degseq.ClassOfVertex(a.offsets, int64(e.U))
		cj := degseq.ClassOfVertex(a.offsets, int64(e.V))
		a.counts[ci*k+cj]++
		if ci != cj {
			a.counts[cj*k+ci]++
		}
	}
	a.samples++
}

// Samples returns how many graphs have been accumulated.
func (a *AttachmentAccumulator) Samples() int { return a.samples }

// Matrix converts accumulated counts to per-pair probabilities:
// count / (samples · pairs(i,j)).
func (a *AttachmentAccumulator) Matrix() *probgen.Matrix {
	k := a.dist.NumClasses()
	m := probgen.NewMatrix(k)
	if a.samples == 0 {
		return m
	}
	for i := 0; i < k; i++ {
		ni := float64(a.dist.Classes[i].Count)
		for j := i; j < k; j++ {
			var pairs float64
			if i == j {
				pairs = ni * (ni - 1) / 2
			} else {
				pairs = ni * float64(a.dist.Classes[j].Count)
			}
			if pairs == 0 {
				continue
			}
			m.Set(i, j, a.counts[i*k+j]/(float64(a.samples)*pairs))
		}
	}
	return m
}

// BernoulliClassDegreeMoments returns, per degree class j, the exact
// mean and variance of the class's *total* degree under independent
// Bernoulli pair sampling from matrix m over dist's vertex layout:
//
//	mean[j] = 2·C(n_j,2)·P(j,j) + Σ_{i≠j} n_i·n_j·P(i,j)
//	var[j]  = 4·C(n_j,2)·P(j,j)(1−P(j,j)) + Σ_{i≠j} n_i·n_j·P(i,j)(1−P(i,j))
//
// (a within-class edge adds 2 to the class total, a cross edge adds 1;
// every candidate pair is an independent indicator). These are the
// analytic moments the statistical verification suite tests sampled
// degree totals against.
func BernoulliClassDegreeMoments(dist *degseq.Distribution, m *probgen.Matrix) (mean, variance []float64) {
	k := dist.NumClasses()
	mean = make([]float64, k)
	variance = make([]float64, k)
	for j := 0; j < k; j++ {
		nj := float64(dist.Classes[j].Count)
		within := nj * (nj - 1) / 2
		pjj := m.At(j, j)
		mean[j] = 2 * within * pjj
		variance[j] = 4 * within * pjj * (1 - pjj)
		for i := 0; i < k; i++ {
			if i == j {
				continue
			}
			pairs := float64(dist.Classes[i].Count) * nj
			pij := m.At(i, j)
			mean[j] += pairs * pij
			variance[j] += pairs * pij * (1 - pij)
		}
	}
	return mean, variance
}

// Assortativity returns the degree assortativity coefficient (Newman):
// the Pearson correlation of the degrees at either end of each edge.
// Returns 0 for degenerate inputs (no edges, or zero variance).
func Assortativity(el *graph.EdgeList, p int) float64 {
	deg := el.Degrees(p)
	m := float64(el.NumEdges())
	if m == 0 {
		return 0
	}
	var sumProd, sumSum, sumSq float64
	for _, e := range el.Edges {
		du, dv := float64(deg[e.U]), float64(deg[e.V])
		sumProd += du * dv
		sumSum += (du + dv) / 2
		sumSq += (du*du + dv*dv) / 2
	}
	num := sumProd/m - (sumSum/m)*(sumSum/m)
	den := sumSq/m - (sumSum/m)*(sumSum/m)
	if den == 0 {
		return 0
	}
	r := num / den
	if math.IsNaN(r) {
		return 0
	}
	return r
}
