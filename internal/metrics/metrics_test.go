package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"nullgraph/internal/degseq"
	"nullgraph/internal/graph"
)

func mustDist(t testing.TB, counts map[int64]int64) *degseq.Distribution {
	t.Helper()
	d, err := degseq.FromCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGiniKnownValues(t *testing.T) {
	cases := []struct {
		deg  []int64
		want float64
	}{
		{[]int64{5, 5, 5, 5}, 0},             // perfect equality
		{[]int64{0, 0, 0, 8}, 0.75},          // all mass on one of 4
		{[]int64{1, 1, 1, 1, 1, 5}, 1.0 / 3}, // computed by hand
		{nil, 0},
		{[]int64{0, 0}, 0},
		{[]int64{7}, 0},
	}
	for _, c := range cases {
		if got := Gini(c.deg); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Gini(%v) = %v, want %v", c.deg, got, c.want)
		}
	}
}

func TestGiniBoundsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		deg := make([]int64, len(raw))
		for i, v := range raw {
			deg[i] = int64(v)
		}
		g := Gini(deg)
		return g >= -1e-12 && g < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGiniOfDistributionMatchesExpanded(t *testing.T) {
	d := mustDist(t, map[int64]int64{1: 100, 3: 40, 7: 10, 50: 2})
	want := Gini(d.ToDegrees())
	if got := GiniOfDistribution(d); math.Abs(got-want) > 1e-12 {
		t.Errorf("GiniOfDistribution = %v, expanded = %v", got, want)
	}
	if got := GiniOfDistribution(&degseq.Distribution{}); got != 0 {
		t.Errorf("empty distribution Gini = %v", got)
	}
}

func TestQualityExactMatch(t *testing.T) {
	// Triangle matches the {2:3} distribution exactly.
	el := graph.NewEdgeList([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}}, 3)
	d := mustDist(t, map[int64]int64{2: 3})
	q := Quality(el, d, 2)
	if q.Edges != 0 || q.MaxDegree != 0 {
		t.Errorf("exact realization has errors: %+v", q)
	}
	// Gini of a regular target is 0, so the relative error is defined 0.
	if q.Gini != 0 {
		t.Errorf("Gini error = %v, want 0", q.Gini)
	}
}

func TestQualitySignedErrors(t *testing.T) {
	// Target says 4 edges / d_max 2, give it 3 edges / d_max 3.
	el := graph.NewEdgeList([]graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}}, 5)
	d := mustDist(t, map[int64]int64{2: 4}) // 4 edges, d_max 2
	q := Quality(el, d, 1)
	if math.Abs(q.Edges-(-0.25)) > 1e-12 {
		t.Errorf("Edges error = %v, want -0.25", q.Edges)
	}
	if math.Abs(q.MaxDegree-0.5) > 1e-12 {
		t.Errorf("MaxDegree error = %v, want +0.5", q.MaxDegree)
	}
}

func TestDegreeDistributionError(t *testing.T) {
	// Star on 4 vertices: degrees 3,1,1,1. Target: 2,2,1,1.
	el := graph.NewEdgeList([]graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}}, 4)
	d := mustDist(t, map[int64]int64{2: 2, 1: 2})
	errs := DegreeDistributionError(el, d, 1)
	byDegree := map[int64]DegreeError{}
	for _, e := range errs {
		byDegree[e.Degree] = e
	}
	if e := byDegree[1]; e.Target != 2 || e.Got != 3 {
		t.Errorf("degree 1: %+v", e)
	}
	if e := byDegree[2]; e.Target != 2 || e.Got != 0 {
		t.Errorf("degree 2: %+v", e)
	}
	if e := byDegree[3]; e.Target != 0 || e.Got != 1 {
		t.Errorf("degree 3: %+v", e)
	}
	if byDegree[1].RelativeError() != 0.5 {
		t.Errorf("relative error at degree 1 = %v", byDegree[1].RelativeError())
	}
	if byDegree[3].RelativeError() != 0 {
		t.Errorf("missing-target relative error = %v, want 0", byDegree[3].RelativeError())
	}
	// Sorted ascending.
	for i := 1; i < len(errs); i++ {
		if errs[i-1].Degree >= errs[i].Degree {
			t.Error("errors not sorted by degree")
		}
	}
}

func TestAttachmentAccumulatorSingleGraph(t *testing.T) {
	// Layout: class 0 = {0,1} (degree 1), class 1 = {2,3} (degree 2).
	d := mustDist(t, map[int64]int64{1: 2, 2: 2})
	acc := NewAttachmentAccumulator(d)
	// Edges: (0,2), (1,3), (2,3): cross pairs 2 of 4, within class-1
	// pair 1 of 1.
	el := graph.NewEdgeList([]graph.Edge{{U: 0, V: 2}, {U: 1, V: 3}, {U: 2, V: 3}}, 4)
	acc.Add(el)
	m := acc.Matrix()
	if got := m.At(0, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P(0,1) = %v, want 0.5", got)
	}
	if got := m.At(1, 1); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("P(1,1) = %v, want 1", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Errorf("P(0,0) = %v, want 0", got)
	}
	if acc.Samples() != 1 {
		t.Errorf("Samples = %d", acc.Samples())
	}
}

func TestAttachmentAccumulatorAveraging(t *testing.T) {
	d := mustDist(t, map[int64]int64{1: 2, 2: 2})
	acc := NewAttachmentAccumulator(d)
	with := graph.NewEdgeList([]graph.Edge{{U: 2, V: 3}}, 4)
	without := graph.NewEdgeList([]graph.Edge{{U: 0, V: 2}}, 4)
	acc.Add(with)
	acc.Add(without)
	m := acc.Matrix()
	if got := m.At(1, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("averaged P(1,1) = %v, want 0.5", got)
	}
}

func TestAttachmentAccumulatorIgnoresLoops(t *testing.T) {
	d := mustDist(t, map[int64]int64{2: 3})
	acc := NewAttachmentAccumulator(d)
	el := graph.FromEdges([]graph.Edge{{U: 0, V: 0}, {U: 1, V: 2}})
	el.NumVertices = 3
	acc.Add(el)
	m := acc.Matrix()
	want := 1.0 / 3 // one edge among C(3,2)=3 pairs
	if got := m.At(0, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("P = %v, want %v", got, want)
	}
}

func TestAttachmentAccumulatorEmpty(t *testing.T) {
	d := mustDist(t, map[int64]int64{1: 2})
	acc := NewAttachmentAccumulator(d)
	m := acc.Matrix()
	if m.At(0, 0) != 0 {
		t.Error("no samples should give zero matrix")
	}
}

func TestAssortativityKnownSigns(t *testing.T) {
	// Star: maximally disassortative (hub-leaf edges only).
	star := graph.NewEdgeList([]graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}}, 4)
	if r := Assortativity(star, 1); r >= 0 {
		t.Errorf("star assortativity = %v, want < 0", r)
	}
	// Regular ring: zero variance ⇒ defined 0.
	ring := graph.NewEdgeList([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}}, 3)
	if r := Assortativity(ring, 1); r != 0 {
		t.Errorf("ring assortativity = %v, want 0", r)
	}
	// Two separate cliques of different sizes: like connects to like.
	var edges []graph.Edge
	for u := int32(0); u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	edges = append(edges, graph.Edge{U: 4, V: 5})
	assort := graph.NewEdgeList(edges, 6)
	if r := Assortativity(assort, 1); r <= 0.99 {
		t.Errorf("disjoint-cliques assortativity = %v, want ~1", r)
	}
	// Empty graph.
	if r := Assortativity(graph.NewEdgeList(nil, 0), 1); r != 0 {
		t.Errorf("empty assortativity = %v", r)
	}
}

func TestGiniMonotoneInSkew(t *testing.T) {
	flat := []int64{3, 3, 3, 3, 3, 3}
	mild := []int64{1, 2, 3, 3, 4, 5}
	steep := []int64{1, 1, 1, 1, 1, 13}
	if !(Gini(flat) < Gini(mild) && Gini(mild) < Gini(steep)) {
		t.Errorf("Gini not monotone: %v %v %v", Gini(flat), Gini(mild), Gini(steep))
	}
}
