// Package mixing provides empirical mixing-time diagnostics for the
// double-edge swap chain — the "more in-depth empirical study" the
// paper's discussion section calls for. It tracks scalar graph
// statistics along a swap trajectory, estimates their integrated
// autocorrelation time, and relates the paper's practical stopping
// signals (success rate, fraction of edges swapped) to statistic
// decorrelation.
package mixing

import (
	"fmt"
	"math"

	"nullgraph/internal/graph"
	"nullgraph/internal/metrics"
	"nullgraph/internal/swap"
)

// Statistic is a scalar graph functional tracked along the chain.
type Statistic int

const (
	// Assortativity tracks the degree correlation coefficient; it
	// relaxes from any structured start toward the null ensemble's
	// mean.
	Assortativity Statistic = iota
	// Triangles tracks the triangle count — the motif-analysis
	// statistic null models exist to calibrate.
	Triangles
)

// String names the statistic.
func (s Statistic) String() string {
	switch s {
	case Assortativity:
		return "assortativity"
	case Triangles:
		return "triangles"
	default:
		return fmt.Sprintf("Statistic(%d)", int(s))
	}
}

// evaluate computes the statistic on the current graph.
func (s Statistic) evaluate(el *graph.EdgeList, workers int) float64 {
	switch s {
	case Triangles:
		return float64(graph.BuildCSR(el, workers).CountTriangles(workers))
	default:
		return metrics.Assortativity(el, workers)
	}
}

// Options configures a trajectory run.
type Options struct {
	// Iterations is the chain length to record.
	Iterations int
	// Workers / Seed / Probing are passed to the swap engine.
	Workers int
	Seed    uint64
	// Statistic selects what to track.
	Statistic Statistic
}

// Trajectory is the recorded chain: Values[t] is the statistic after t
// iterations (Values[0] is the starting graph), along with the swap
// engine's own per-iteration signals.
type Trajectory struct {
	Statistic Statistic
	Values    []float64
	SwapStats []swap.IterStats
}

// Record runs the swap chain on el in place for opt.Iterations,
// evaluating the statistic after every iteration.
func Record(el *graph.EdgeList, opt Options) *Trajectory {
	tr := &Trajectory{Statistic: opt.Statistic}
	tr.Values = append(tr.Values, opt.Statistic.evaluate(el, opt.Workers))
	eng := swap.NewEngine(el, swap.Options{
		Workers:      opt.Workers,
		Seed:         opt.Seed,
		TrackSwapped: true,
	})
	defer eng.Close()
	for it := 0; it < opt.Iterations; it++ {
		stats := eng.Step()
		tr.SwapStats = append(tr.SwapStats, stats)
		tr.Values = append(tr.Values, opt.Statistic.evaluate(el, opt.Workers))
	}
	return tr
}

// Autocorrelation returns the normalized autocorrelation function of a
// series at lags 0..maxLag (lag 0 is 1 by definition). Series shorter
// than 2 or with zero variance return all-zero (lag 0 still 1).
func Autocorrelation(series []float64, maxLag int) []float64 {
	n := len(series)
	acf := make([]float64, maxLag+1)
	if maxLag >= 0 {
		acf[0] = 1
	}
	if n < 2 {
		return acf
	}
	var mean float64
	for _, v := range series {
		mean += v
	}
	mean /= float64(n)
	var variance float64
	for _, v := range series {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(n)
	if variance == 0 {
		return acf
	}
	for lag := 1; lag <= maxLag && lag < n; lag++ {
		var cov float64
		for t := 0; t+lag < n; t++ {
			cov += (series[t] - mean) * (series[t+lag] - mean)
		}
		cov /= float64(n - lag)
		acf[lag] = cov / variance
	}
	return acf
}

// MinSeriesLen is the shortest series the integrated-autocorrelation
// estimator accepts: below 3 points there is no lag the ACF can be
// estimated at with maxLag = n/3.
const MinSeriesLen = 3

// IntegratedTime estimates the integrated autocorrelation time
// τ = 1 + 2·Σ ρ(k), truncating the sum at the first non-positive ρ
// (Geyer's initial positive sequence, simplified). τ ≈ 1 means
// consecutive samples are already independent. Degenerate inputs are
// lenient: series shorter than MinSeriesLen and constant (zero-
// variance) series both return 1 — convenient for online monitors that
// poll from the first checkpoint. Callers that want the degenerate
// cases surfaced should use IntegratedTimeChecked.
func IntegratedTime(series []float64) float64 {
	if len(series) < MinSeriesLen {
		return 1
	}
	return integratedTime(series)
}

// IntegratedTimeChecked is IntegratedTime with the too-short case
// reported as an error instead of the silent τ = 1: estimating an
// autocorrelation time from fewer than MinSeriesLen points is not a
// small-sample estimate, it is no estimate at all. A constant series
// still returns τ = 1 without error (its ACF is identically zero
// beyond lag 0, so "already independent" is the honest summary).
func IntegratedTimeChecked(series []float64) (float64, error) {
	if len(series) < MinSeriesLen {
		return 0, fmt.Errorf("mixing: series of %d points is too short for an autocorrelation-time estimate (need >= %d)",
			len(series), MinSeriesLen)
	}
	return integratedTime(series), nil
}

func integratedTime(series []float64) float64 {
	maxLag := len(series) / 3
	acf := Autocorrelation(series, maxLag)
	tau := 1.0
	for lag := 1; lag < len(acf); lag++ {
		if acf[lag] <= 0 {
			break
		}
		tau += 2 * acf[lag]
	}
	return tau
}

// RelaxationIterations returns the first iteration at which the series
// stays within tol·|range| of its tail mean (the last third), a simple
// burn-in estimate. Returns len(series)-1 if it never settles.
func RelaxationIterations(series []float64, tol float64) int {
	n := len(series)
	if n < 3 {
		return 0
	}
	tailStart := 2 * n / 3
	var tailMean float64
	for _, v := range series[tailStart:] {
		tailMean += v
	}
	tailMean /= float64(n - tailStart)
	lo, hi := series[0], series[0]
	for _, v := range series {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	band := tol * (hi - lo)
	if band == 0 {
		return 0
	}
	for t := 0; t < n; t++ {
		settled := true
		for u := t; u < n; u++ {
			if math.Abs(series[u]-tailMean) > band {
				settled = false
				break
			}
		}
		if settled {
			return t
		}
	}
	return n - 1
}
