package mixing

import (
	"math"
	"testing"

	"nullgraph/internal/graph"
	"nullgraph/internal/rng"
)

// clusteredGraph builds a deterministic clustered start — a ring of
// small cliques — without the higher-level generators, which would
// cycle back into this package through the adaptive stopper
// (lfr → core → converge → mixing).
func clusteredGraph(t testing.TB) *graph.EdgeList {
	t.Helper()
	const cliques, size = 250, 6
	var edges []graph.Edge
	for c := 0; c < cliques; c++ {
		base := int32(c * size)
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				edges = append(edges, graph.Edge{U: base + int32(i), V: base + int32(j)})
			}
		}
		// Link to the next clique so the graph is connected.
		next := int32(((c + 1) % cliques) * size)
		edges = append(edges, graph.Edge{U: base, V: next + 1})
	}
	return graph.NewEdgeList(edges, cliques*size)
}

func TestRecordTrajectoryShape(t *testing.T) {
	el := clusteredGraph(t)
	tr := Record(el, Options{Iterations: 10, Workers: 2, Seed: 3, Statistic: Triangles})
	if len(tr.Values) != 11 {
		t.Fatalf("values = %d, want 11", len(tr.Values))
	}
	if len(tr.SwapStats) != 10 {
		t.Fatalf("swap stats = %d, want 10", len(tr.SwapStats))
	}
	// A clustered start relaxes: the triangle count must fall
	// substantially within the window.
	if tr.Values[10] > tr.Values[0]/2 {
		t.Errorf("triangles did not relax: %v -> %v", tr.Values[0], tr.Values[10])
	}
}

func TestRecordStatisticNames(t *testing.T) {
	if Assortativity.String() != "assortativity" || Triangles.String() != "triangles" {
		t.Error("statistic names wrong")
	}
	if Statistic(99).String() == "" {
		t.Error("unknown statistic has empty name")
	}
}

func TestAutocorrelationKnownSeries(t *testing.T) {
	// Perfectly alternating series: ρ(1) = −1ish, ρ(2) = +1ish.
	alt := []float64{1, -1, 1, -1, 1, -1, 1, -1, 1, -1, 1, -1}
	acf := Autocorrelation(alt, 2)
	if acf[0] != 1 {
		t.Errorf("acf[0] = %v", acf[0])
	}
	if acf[1] > -0.9 {
		t.Errorf("acf[1] = %v, want ~-1", acf[1])
	}
	if acf[2] < 0.9 {
		t.Errorf("acf[2] = %v, want ~+1", acf[2])
	}
	// Constant series: zero variance → zeros beyond lag 0.
	konst := []float64{5, 5, 5, 5}
	acf = Autocorrelation(konst, 2)
	if acf[1] != 0 || acf[2] != 0 {
		t.Errorf("constant series acf = %v", acf)
	}
	// Degenerate input lengths.
	if got := Autocorrelation(nil, 3); got[0] != 1 {
		t.Errorf("empty series acf = %v", got)
	}
}

func TestIntegratedTimeOrdering(t *testing.T) {
	// A slowly-varying series must have a larger τ than white noise.
	slow := make([]float64, 300)
	noise := make([]float64, 300)
	x := 0.0
	s := uint64(88172645463325252)
	next := func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s%1000)/500 - 1
	}
	for i := range slow {
		x = 0.95*x + 0.05*next()
		slow[i] = x
		noise[i] = next()
	}
	tauSlow := IntegratedTime(slow)
	tauNoise := IntegratedTime(noise)
	if tauSlow <= tauNoise {
		t.Errorf("τ(slow) = %v not above τ(noise) = %v", tauSlow, tauNoise)
	}
	if tauNoise > 3 {
		t.Errorf("white noise τ = %v, want ~1", tauNoise)
	}
	if got := IntegratedTime([]float64{1}); got != 1 {
		t.Errorf("tiny series τ = %v", got)
	}
}

// ar1Series draws n points of x_t = phi·x_{t-1} + ε_t with uniform
// innovations; its exact autocorrelation is ρ(k) = phi^k, so the true
// integrated time is τ = (1+phi)/(1−phi) regardless of the innovation
// distribution.
func ar1Series(n int, phi float64, seed uint64) []float64 {
	src := rng.New(seed)
	series := make([]float64, n)
	x := 0.0
	// Discard a warm-up so the chain starts at stationarity.
	for i := 0; i < 200; i++ {
		x = phi*x + (src.Float64()*2 - 1)
	}
	for i := range series {
		x = phi*x + (src.Float64()*2 - 1)
		series[i] = x
	}
	return series
}

// TestIntegratedTimeAR1 checks the estimator against the one process
// whose τ is known in closed form: AR(1) with τ = (1+φ)/(1−φ). The
// truncated-positive-sequence estimator is biased slightly low (it
// drops the tail past the first noise-induced sign flip), so ±20% is
// the right acceptance band at this length.
func TestIntegratedTimeAR1(t *testing.T) {
	cases := []struct {
		phi  float64
		seed uint64
	}{
		{0.3, 11},
		{0.6, 12},
	}
	for _, tc := range cases {
		series := ar1Series(30000, tc.phi, tc.seed)
		want := (1 + tc.phi) / (1 - tc.phi)
		got, err := IntegratedTimeChecked(series)
		if err != nil {
			t.Fatalf("phi=%v: %v", tc.phi, err)
		}
		if rel := math.Abs(got-want) / want; rel > 0.20 {
			t.Errorf("phi=%v: τ̂ = %.3f, true τ = %.3f (off by %.0f%%)", tc.phi, got, want, rel*100)
		}
	}
}

// TestIntegratedTimeDegenerate pins the two degenerate inputs: constant
// traces estimate τ = 1 in both variants (no error — a zero-variance
// series is "already independent"), and too-short series error out of
// the checked variant while the lenient one returns 1.
func TestIntegratedTimeDegenerate(t *testing.T) {
	konst := []float64{7, 7, 7, 7, 7, 7, 7, 7}
	if got := IntegratedTime(konst); got != 1 {
		t.Errorf("constant series τ = %v, want 1", got)
	}
	if got, err := IntegratedTimeChecked(konst); err != nil || got != 1 {
		t.Errorf("constant series checked = (%v, %v), want (1, nil)", got, err)
	}
	for _, short := range [][]float64{nil, {1}, {1, 2}} {
		if _, err := IntegratedTimeChecked(short); err == nil {
			t.Errorf("len %d series did not error", len(short))
		}
		if got := IntegratedTime(short); got != 1 {
			t.Errorf("lenient short series τ = %v, want 1", got)
		}
	}
	if got, err := IntegratedTimeChecked([]float64{1, 2, 3}); err != nil || got < 1 {
		t.Errorf("len 3 series = (%v, %v), want a τ >= 1 and no error", got, err)
	}
}

func TestRelaxationIterations(t *testing.T) {
	// Exponential decay toward 0: settles partway through.
	series := make([]float64, 50)
	v := 100.0
	for i := range series {
		series[i] = v
		v *= 0.7
	}
	r := RelaxationIterations(series, 0.05)
	if r <= 0 || r >= 49 {
		t.Errorf("relaxation = %d, want interior", r)
	}
	// Constant series settles immediately.
	if got := RelaxationIterations([]float64{3, 3, 3, 3}, 0.1); got != 0 {
		t.Errorf("constant relaxation = %d", got)
	}
	// Short series.
	if got := RelaxationIterations([]float64{1}, 0.1); got != 0 {
		t.Errorf("short relaxation = %d", got)
	}
}

func TestChainDecorrelatesWithinPaperWindow(t *testing.T) {
	// The paper's core empirical claim: ~10 iterations decorrelate the
	// chain. After relaxation, the integrated autocorrelation time of
	// the assortativity series should be small (a few iterations).
	el := clusteredGraph(t)
	tr := Record(el, Options{Iterations: 40, Workers: 2, Seed: 9, Statistic: Triangles})
	relax := RelaxationIterations(tr.Values, 0.05)
	if relax > 20 {
		t.Errorf("relaxation took %d iterations, paper expects ~10", relax)
	}
	tail := tr.Values[relax:]
	if tau := IntegratedTime(tail); tau > 10 {
		t.Errorf("post-relaxation τ = %v, want small", tau)
	}
}
