package mixing

import (
	"testing"

	"nullgraph/internal/graph"
	"nullgraph/internal/lfr"
)

func clusteredGraph(t testing.TB) *graph.EdgeList {
	t.Helper()
	res, err := lfr.Generate(lfr.Config{
		NumVertices: 1500, DegreeGamma: 2.3, MinDegree: 4, MaxDegree: 40,
		CommunityGamma: 1.8, MinCommunity: 30, MaxCommunity: 200,
		Mu: 0.1, SwapIterations: 2, Seed: 5, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Graph
}

func TestRecordTrajectoryShape(t *testing.T) {
	el := clusteredGraph(t)
	tr := Record(el, Options{Iterations: 10, Workers: 2, Seed: 3, Statistic: Triangles})
	if len(tr.Values) != 11 {
		t.Fatalf("values = %d, want 11", len(tr.Values))
	}
	if len(tr.SwapStats) != 10 {
		t.Fatalf("swap stats = %d, want 10", len(tr.SwapStats))
	}
	// A clustered start relaxes: the triangle count must fall
	// substantially within the window.
	if tr.Values[10] > tr.Values[0]/2 {
		t.Errorf("triangles did not relax: %v -> %v", tr.Values[0], tr.Values[10])
	}
}

func TestRecordStatisticNames(t *testing.T) {
	if Assortativity.String() != "assortativity" || Triangles.String() != "triangles" {
		t.Error("statistic names wrong")
	}
	if Statistic(99).String() == "" {
		t.Error("unknown statistic has empty name")
	}
}

func TestAutocorrelationKnownSeries(t *testing.T) {
	// Perfectly alternating series: ρ(1) = −1ish, ρ(2) = +1ish.
	alt := []float64{1, -1, 1, -1, 1, -1, 1, -1, 1, -1, 1, -1}
	acf := Autocorrelation(alt, 2)
	if acf[0] != 1 {
		t.Errorf("acf[0] = %v", acf[0])
	}
	if acf[1] > -0.9 {
		t.Errorf("acf[1] = %v, want ~-1", acf[1])
	}
	if acf[2] < 0.9 {
		t.Errorf("acf[2] = %v, want ~+1", acf[2])
	}
	// Constant series: zero variance → zeros beyond lag 0.
	konst := []float64{5, 5, 5, 5}
	acf = Autocorrelation(konst, 2)
	if acf[1] != 0 || acf[2] != 0 {
		t.Errorf("constant series acf = %v", acf)
	}
	// Degenerate input lengths.
	if got := Autocorrelation(nil, 3); got[0] != 1 {
		t.Errorf("empty series acf = %v", got)
	}
}

func TestIntegratedTimeOrdering(t *testing.T) {
	// A slowly-varying series must have a larger τ than white noise.
	slow := make([]float64, 300)
	noise := make([]float64, 300)
	x := 0.0
	s := uint64(88172645463325252)
	next := func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s%1000)/500 - 1
	}
	for i := range slow {
		x = 0.95*x + 0.05*next()
		slow[i] = x
		noise[i] = next()
	}
	tauSlow := IntegratedTime(slow)
	tauNoise := IntegratedTime(noise)
	if tauSlow <= tauNoise {
		t.Errorf("τ(slow) = %v not above τ(noise) = %v", tauSlow, tauNoise)
	}
	if tauNoise > 3 {
		t.Errorf("white noise τ = %v, want ~1", tauNoise)
	}
	if got := IntegratedTime([]float64{1}); got != 1 {
		t.Errorf("tiny series τ = %v", got)
	}
}

func TestRelaxationIterations(t *testing.T) {
	// Exponential decay toward 0: settles partway through.
	series := make([]float64, 50)
	v := 100.0
	for i := range series {
		series[i] = v
		v *= 0.7
	}
	r := RelaxationIterations(series, 0.05)
	if r <= 0 || r >= 49 {
		t.Errorf("relaxation = %d, want interior", r)
	}
	// Constant series settles immediately.
	if got := RelaxationIterations([]float64{3, 3, 3, 3}, 0.1); got != 0 {
		t.Errorf("constant relaxation = %d", got)
	}
	// Short series.
	if got := RelaxationIterations([]float64{1}, 0.1); got != 0 {
		t.Errorf("short relaxation = %d", got)
	}
}

func TestChainDecorrelatesWithinPaperWindow(t *testing.T) {
	// The paper's core empirical claim: ~10 iterations decorrelate the
	// chain. After relaxation, the integrated autocorrelation time of
	// the assortativity series should be small (a few iterations).
	el := clusteredGraph(t)
	tr := Record(el, Options{Iterations: 40, Workers: 2, Seed: 9, Statistic: Triangles})
	relax := RelaxationIterations(tr.Values, 0.05)
	if relax > 20 {
		t.Errorf("relaxation took %d iterations, paper expects ~10", relax)
	}
	tail := tr.Values[relax:]
	if tau := IntegratedTime(tail); tau > 10 {
		t.Errorf("post-relaxation τ = %v, want small", tau)
	}
}
