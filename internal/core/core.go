// Package core wires the paper's Algorithm IV.1 end to end: probability
// generation (Section IV-A) → parallel edge-skipping (Section IV-B) →
// parallel double-edge swaps (Section III-A). It also exposes the
// edge-list entry point (Problem 1: mix an existing graph) and records
// per-phase wall times, which the Figure 6 experiment reports.
package core

import (
	"errors"
	"fmt"
	"time"

	"nullgraph/internal/connected"
	"nullgraph/internal/converge"
	"nullgraph/internal/degseq"
	"nullgraph/internal/graph"
	"nullgraph/internal/hashtable"
	"nullgraph/internal/obs"
	"nullgraph/internal/par"
	"nullgraph/internal/probgen"
	"nullgraph/internal/simplify"
	"nullgraph/internal/swap"
)

// ErrEngineBusy reports a concurrent call on a single Engine session.
// An Engine owns one set of phase scratch buffers, so overlapping
// GenerateSample/ShuffleSample calls would race on them; the guard
// turns that misuse into this error instead. Callers that need
// concurrency hold one Engine per goroutine (or a serve.Pool).
var ErrEngineBusy = errors.New("core: engine busy: an Engine session supports one call at a time")

// Options configures the full pipeline.
type Options struct {
	// Space selects the sampling-space cell (graph.Space) the pipeline
	// targets. The zero value is graph.SimpleStub, the paper's regime,
	// and keeps every path bit-identical to the pre-matrix pipeline.
	// Non-simple cells change the swap chain's acceptance policy (see
	// internal/swap) and make ShuffleSample validate its input against
	// the cell; the simple cells instead accept non-simple input and
	// run the targeted simplification pass (internal/simplify) before
	// swapping, replacing the historical "swaps eventually simplify"
	// behavior with a bounded deterministic one.
	Space graph.Space
	// Connected restricts sampling to *connected* simple graphs
	// (Viger–Latapy, arXiv:cs/0502085). Requires a simple-cell Space.
	// GenerateSample seeds from a deterministic connected realization
	// (connected.Realize — exact degrees, probabilistic model skipped);
	// ShuffleSample repairs its input with connected.Connect (after
	// simplification, if any ran), mutating it in place. Both fail when
	// the degree sequence admits no connected
	// realization. The swap phase then runs the serial connectivity-
	// preserving chain (swap.Options.Connected) and the Result carries
	// its check-outcome counters.
	Connected bool
	// Workers is the parallel width for every phase; <= 0 means
	// GOMAXPROCS.
	Workers int
	// Seed fixes all randomness for a given worker count.
	Seed uint64
	// SwapIterations is the number of double-edge swap iterations to
	// mix the generated edge list. The paper observes ~10 iterations
	// reach steady-state attachment probabilities on simple inputs.
	// Zero disables mixing (the output is then biased).
	SwapIterations int
	// MixUntilSwapped, when true, ignores SwapIterations and runs until
	// every edge has been in a successful swap (bounded by
	// MaxSwapIterations), the paper's empirical mixing signal.
	MixUntilSwapped bool
	// StopPolicy, when non-nil, replaces the fixed swap budget with the
	// adaptive convergence monitor of internal/converge: the chain runs
	// until the monitored statistic's checkpoint trace passes a
	// Geweke-style stationarity test (with hysteresis), bounded below by
	// StopPolicy.Floor and above by StopPolicy.Budget. It takes
	// precedence over MixUntilSwapped and SwapIterations. Ever-swapped
	// tracking is forced on (the monitor records it, and
	// StopPolicy.MinEverSwapped may gate on it). A nil StopPolicy keeps
	// the fixed-scan path bit-identical to previous releases.
	StopPolicy *converge.Policy
	// MaxSwapIterations bounds MixUntilSwapped; <= 0 means 128.
	MaxSwapIterations int
	// Probing selects the hash-table probing strategy for swaps.
	Probing hashtable.Probing
	// TrackSwapStats retains per-iteration swap statistics in the
	// result (forced on by MixUntilSwapped).
	TrackSwapStats bool
	// RefinePasses, when > 0, post-processes the heuristic probability
	// matrix with that many iterative-proportional-fitting passes
	// (probgen.Refine), trading O(passes·|D|²) extra work for tighter
	// expected-degree residuals on extreme distributions.
	RefinePasses int
	// Recorder, when non-nil, collects chain-health observability
	// across the pipeline — edge-skip space accounting, per-iteration
	// swap acceptance splits and probe histograms, and the phase wall
	// times — into an obs.RunReport. nil (the default) leaves every hot
	// path untouched.
	Recorder *obs.Recorder
	// Stop, when non-nil, is the cooperative cancellation flag the
	// one-shot entry points thread through every phase; a tripped flag
	// makes them return par.ErrStopped. The public API derives it from
	// a context.Context. nil (the default) leaves every hot path
	// untouched.
	Stop *par.Stop
}

func (o Options) maxSwapIterations() int {
	if o.MaxSwapIterations <= 0 {
		return 128
	}
	return o.MaxSwapIterations
}

// PhaseTimes records the wall time of each pipeline phase (Figure 6).
type PhaseTimes struct {
	Probabilities  time.Duration
	EdgeGeneration time.Duration
	Swapping       time.Duration
}

// Total returns the end-to-end time.
func (p PhaseTimes) Total() time.Duration {
	return p.Probabilities + p.EdgeGeneration + p.Swapping
}

// Result is the pipeline output.
type Result struct {
	// Graph is the generated (or mixed) simple edge list.
	Graph *graph.EdgeList
	// Probabilities is the class matrix used for edge-skipping (nil for
	// the edge-list entry point).
	Probabilities *probgen.Matrix
	// Phases records per-phase wall time.
	Phases PhaseTimes
	// Swaps summarizes the mixing phase.
	Swaps swap.Result
	// Simplify reports the targeted simplification pass, present only
	// when ShuffleSample ran one (simple space, non-simple input).
	Simplify *simplify.Result
	// Connectivity reports the connected chain's check outcomes,
	// present only for Options.Connected runs.
	Connectivity *connected.Stats
	// Mixed reports whether every edge swapped at least once (only
	// meaningful with MixUntilSwapped).
	Mixed bool
	// Stop records why the swap phase ended: policy "fixed" with reason
	// "scans"/"mixed"/"budget" on the default path, or the adaptive
	// monitor's outcome (reason "converged" or "budget" plus the
	// checkpoint trail) when Options.StopPolicy is set. The same record
	// lands in the RunReport's stop section when a Recorder is attached.
	Stop *obs.StopReport
}

// FromDistribution generates a uniformly random simple graph matching
// dist in expectation (Problem 2, Algorithm IV.1). It is a one-shot
// wrapper over a single-use Engine, so its output is bit-identical
// (Workers=1) to Engine.GenerateSample(dist, 0, ...) by construction;
// batch callers should hold an Engine to amortize the setup.
func FromDistribution(dist *degseq.Distribution, opt Options) (*Result, error) {
	eng := NewEngine(opt)
	defer eng.Close()
	return eng.GenerateSample(dist, 0, opt.Stop)
}

// recordPhases folds the phase wall times into the run report.
func recordPhases(opt Options, p PhaseTimes) {
	if obs.Enabled && opt.Recorder != nil {
		opt.Recorder.SetPhases(int64(p.Probabilities), int64(p.EdgeGeneration), int64(p.Swapping))
	}
}

// recordStop folds the stopping decision into the run report.
func recordStop(opt Options, st *obs.StopReport) {
	if obs.Enabled && opt.Recorder != nil && st != nil {
		opt.Recorder.SetStop(st)
	}
}

// recordSpace stamps the sampling space into the run report.
func recordSpace(opt Options) {
	if obs.Enabled && opt.Recorder != nil {
		opt.Recorder.SetSpace(opt.Space.String())
	}
}

// recordSimplify folds the simplification pass (nil when none ran —
// clearing any section a previous sample on the same recorder left)
// into the run report.
func recordSimplify(opt Options, s *simplify.Result) {
	if obs.Enabled && opt.Recorder != nil {
		if s == nil {
			opt.Recorder.SetSimplify(nil)
			return
		}
		opt.Recorder.SetSimplify(&obs.SimplifyReport{
			InitialDefects:  s.InitialDefects,
			ResidualDefects: s.ResidualDefects,
			Swaps:           s.Swaps,
			Neutral:         s.Neutral,
			Simple:          s.Simple,
		})
	}
}

// recordConnectivity folds the connected chain's check outcomes (nil
// when the run was unconstrained — clearing any section a previous
// sample on the same recorder left) into the run report.
func recordConnectivity(opt Options, s *connected.Stats) {
	if obs.Enabled && opt.Recorder != nil {
		if s == nil {
			opt.Recorder.SetConnectivity(nil)
			return
		}
		opt.Recorder.SetConnectivity(&obs.ConnectivityReport{
			Proposals:             s.Proposals,
			FastPathHits:          s.FastPathHits,
			BoundedChecks:         s.BoundedChecks,
			BoundedConclusive:     s.BoundedConclusive,
			FullChecks:            s.FullChecks,
			WitnessRebuilds:       s.WitnessRebuilds,
			RejectedDisconnecting: s.RejectedDisconnecting,
			FullRechecks:          s.FullRechecks,
		})
	}
}

// validateConnected gates the Connected option: the connected subspace
// is defined for the simple cell only.
func validateConnected(opt Options) error {
	if opt.Connected && (opt.Space.AllowsLoops() || opt.Space.AllowsMulti()) {
		return fmt.Errorf("core: Connected sampling is defined for the simple cell only, not %v", opt.Space)
	}
	return nil
}

// validateEdgeList is the shared input gate for the edge-list entry
// points: the list must be non-nil and every endpoint must name a
// vertex in [0, NumVertices). Empty and single-edge lists are valid
// (the swap phase is then a no-op). The scan itself is O(m) and
// allocation-free; the fmt calls sit on cold error exits.
//
//nullgraph:hotpath
func validateEdgeList(el *graph.EdgeList) error {
	if el == nil {
		return fmt.Errorf("core: nil edge list") //nullgraph:allow hotpathalloc cold error exit
	}
	n := int32(el.NumVertices)
	for i, e := range el.Edges {
		if e.U < 0 || e.V < 0 || e.U >= n || e.V >= n {
			return fmt.Errorf("core: edge %d (%d,%d) out of range for %d vertices", i, e.U, e.V, el.NumVertices) //nullgraph:allow hotpathalloc cold error exit
		}
	}
	return nil
}

// FromEdgeList mixes an existing edge list in place (Problem 1). The
// input may be non-simple; swapping progressively simplifies it. The
// list must be non-nil with in-range endpoints; empty and single-edge
// inputs are valid no-ops. Like FromDistribution it is a one-shot
// wrapper over a single-use Engine.
func FromEdgeList(el *graph.EdgeList, opt Options) (*Result, error) {
	eng := NewEngine(opt)
	defer eng.Close()
	return eng.ShuffleSample(el, 0, opt.Stop)
}

// swapOptions derives the swap configuration shared by runSwaps and
// Mixer.
func (o Options) swapOptions() swap.Options {
	return swap.Options{
		Space:        o.Space,
		Connected:    o.Connected,
		Iterations:   o.SwapIterations,
		Workers:      o.Workers,
		Seed:         o.Seed + 0x5eed,
		Probing:      o.Probing,
		TrackSwapped: o.TrackSwapStats || o.MixUntilSwapped || o.StopPolicy != nil,
		Recorder:     o.Recorder,
	}
}

// Mixer amortizes the swap engine's buffers across many mixing runs.
//
// Deprecated: Mixer predates Engine, which owns the scratch of every
// pipeline phase (not just swapping) and supports cancellation; Mixer
// is now a thin delegating wrapper kept for compatibility. New code
// should hold an Engine and call ShuffleSample. Each Mix call remains
// bit-identical (Workers=1) to the Engine path with the same options
// and sample index.
type Mixer struct {
	opt Options
	eng *Engine
}

// NewMixer prepares a mixer for the given pipeline options.
//
// Deprecated: use NewEngine.
func NewMixer(opt Options) *Mixer {
	return &Mixer{opt: opt, eng: NewEngine(opt)}
}

// sampleSeed derives the swap seed of one sample in the batch. Sample 0
// matches a one-shot FromEdgeList with the same Options, so a Mixer is
// a drop-in for a single call too.
func (mx *Mixer) sampleSeed(sample uint64) uint64 {
	return SampleSeed(mx.opt.Seed, sample) + 0x5eed
}

// Mix swaps el in place as the sample-th member of the batch, reusing
// the engine state from earlier calls when el's size allows. It applies
// the same input validation as FromEdgeList.
func (mx *Mixer) Mix(el *graph.EdgeList, sample uint64) (swap.Result, bool, error) {
	res, err := mx.eng.ShuffleSample(el, sample, nil)
	if err != nil {
		return swap.Result{}, false, err
	}
	return res.Swaps, res.Mixed, nil
}

// Close releases the mixer's engine. Idempotent; the mixer must not be
// used afterwards.
func (mx *Mixer) Close() { mx.eng.Close() }
