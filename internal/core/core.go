// Package core wires the paper's Algorithm IV.1 end to end: probability
// generation (Section IV-A) → parallel edge-skipping (Section IV-B) →
// parallel double-edge swaps (Section III-A). It also exposes the
// edge-list entry point (Problem 1: mix an existing graph) and records
// per-phase wall times, which the Figure 6 experiment reports.
package core

import (
	"fmt"
	"time"

	"nullgraph/internal/degseq"
	"nullgraph/internal/edgeskip"
	"nullgraph/internal/graph"
	"nullgraph/internal/hashtable"
	"nullgraph/internal/probgen"
	"nullgraph/internal/swap"
)

// Options configures the full pipeline.
type Options struct {
	// Workers is the parallel width for every phase; <= 0 means
	// GOMAXPROCS.
	Workers int
	// Seed fixes all randomness for a given worker count.
	Seed uint64
	// SwapIterations is the number of double-edge swap iterations to
	// mix the generated edge list. The paper observes ~10 iterations
	// reach steady-state attachment probabilities on simple inputs.
	// Zero disables mixing (the output is then biased).
	SwapIterations int
	// MixUntilSwapped, when true, ignores SwapIterations and runs until
	// every edge has been in a successful swap (bounded by
	// MaxSwapIterations), the paper's empirical mixing signal.
	MixUntilSwapped bool
	// MaxSwapIterations bounds MixUntilSwapped; <= 0 means 128.
	MaxSwapIterations int
	// Probing selects the hash-table probing strategy for swaps.
	Probing hashtable.Probing
	// TrackSwapStats retains per-iteration swap statistics in the
	// result (forced on by MixUntilSwapped).
	TrackSwapStats bool
	// RefinePasses, when > 0, post-processes the heuristic probability
	// matrix with that many iterative-proportional-fitting passes
	// (probgen.Refine), trading O(passes·|D|²) extra work for tighter
	// expected-degree residuals on extreme distributions.
	RefinePasses int
}

func (o Options) maxSwapIterations() int {
	if o.MaxSwapIterations <= 0 {
		return 128
	}
	return o.MaxSwapIterations
}

// PhaseTimes records the wall time of each pipeline phase (Figure 6).
type PhaseTimes struct {
	Probabilities  time.Duration
	EdgeGeneration time.Duration
	Swapping       time.Duration
}

// Total returns the end-to-end time.
func (p PhaseTimes) Total() time.Duration {
	return p.Probabilities + p.EdgeGeneration + p.Swapping
}

// Result is the pipeline output.
type Result struct {
	// Graph is the generated (or mixed) simple edge list.
	Graph *graph.EdgeList
	// Probabilities is the class matrix used for edge-skipping (nil for
	// the edge-list entry point).
	Probabilities *probgen.Matrix
	// Phases records per-phase wall time.
	Phases PhaseTimes
	// Swaps summarizes the mixing phase.
	Swaps swap.Result
	// Mixed reports whether every edge swapped at least once (only
	// meaningful with MixUntilSwapped).
	Mixed bool
}

// FromDistribution generates a uniformly random simple graph matching
// dist in expectation (Problem 2, Algorithm IV.1).
func FromDistribution(dist *degseq.Distribution, opt Options) (*Result, error) {
	if err := dist.Validate(); err != nil {
		return nil, err
	}
	res := &Result{}

	start := time.Now()
	res.Probabilities = probgen.Generate(dist, opt.Workers)
	if opt.RefinePasses > 0 {
		res.Probabilities = probgen.Refine(dist, res.Probabilities, opt.RefinePasses)
	}
	res.Phases.Probabilities = time.Since(start)

	start = time.Now()
	el, err := edgeskip.Generate(dist, res.Probabilities, edgeskip.Options{
		Workers: opt.Workers,
		Seed:    opt.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("core: edge generation: %w", err)
	}
	res.Phases.EdgeGeneration = time.Since(start)
	res.Graph = el

	start = time.Now()
	res.Swaps, res.Mixed = runSwaps(el, opt)
	res.Phases.Swapping = time.Since(start)
	return res, nil
}

// FromEdgeList mixes an existing edge list in place (Problem 1). The
// input may be non-simple; swapping progressively simplifies it.
func FromEdgeList(el *graph.EdgeList, opt Options) *Result {
	res := &Result{Graph: el}
	start := time.Now()
	res.Swaps, res.Mixed = runSwaps(el, opt)
	res.Phases.Swapping = time.Since(start)
	return res
}

func runSwaps(el *graph.EdgeList, opt Options) (swap.Result, bool) {
	sopt := swap.Options{
		Workers:      opt.Workers,
		Seed:         opt.Seed + 0x5eed,
		Probing:      opt.Probing,
		TrackSwapped: opt.TrackSwapStats || opt.MixUntilSwapped,
	}
	if opt.MixUntilSwapped {
		return swap.RunUntilMixed(el, sopt, opt.maxSwapIterations())
	}
	sopt.Iterations = opt.SwapIterations
	return swap.Run(el, sopt), false
}
