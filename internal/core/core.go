// Package core wires the paper's Algorithm IV.1 end to end: probability
// generation (Section IV-A) → parallel edge-skipping (Section IV-B) →
// parallel double-edge swaps (Section III-A). It also exposes the
// edge-list entry point (Problem 1: mix an existing graph) and records
// per-phase wall times, which the Figure 6 experiment reports.
package core

import (
	"fmt"
	"time"

	"nullgraph/internal/degseq"
	"nullgraph/internal/edgeskip"
	"nullgraph/internal/graph"
	"nullgraph/internal/hashtable"
	"nullgraph/internal/obs"
	"nullgraph/internal/probgen"
	"nullgraph/internal/swap"
)

// Options configures the full pipeline.
type Options struct {
	// Workers is the parallel width for every phase; <= 0 means
	// GOMAXPROCS.
	Workers int
	// Seed fixes all randomness for a given worker count.
	Seed uint64
	// SwapIterations is the number of double-edge swap iterations to
	// mix the generated edge list. The paper observes ~10 iterations
	// reach steady-state attachment probabilities on simple inputs.
	// Zero disables mixing (the output is then biased).
	SwapIterations int
	// MixUntilSwapped, when true, ignores SwapIterations and runs until
	// every edge has been in a successful swap (bounded by
	// MaxSwapIterations), the paper's empirical mixing signal.
	MixUntilSwapped bool
	// MaxSwapIterations bounds MixUntilSwapped; <= 0 means 128.
	MaxSwapIterations int
	// Probing selects the hash-table probing strategy for swaps.
	Probing hashtable.Probing
	// TrackSwapStats retains per-iteration swap statistics in the
	// result (forced on by MixUntilSwapped).
	TrackSwapStats bool
	// RefinePasses, when > 0, post-processes the heuristic probability
	// matrix with that many iterative-proportional-fitting passes
	// (probgen.Refine), trading O(passes·|D|²) extra work for tighter
	// expected-degree residuals on extreme distributions.
	RefinePasses int
	// Recorder, when non-nil, collects chain-health observability
	// across the pipeline — edge-skip space accounting, per-iteration
	// swap acceptance splits and probe histograms, and the phase wall
	// times — into an obs.RunReport. nil (the default) leaves every hot
	// path untouched.
	Recorder *obs.Recorder
}

func (o Options) maxSwapIterations() int {
	if o.MaxSwapIterations <= 0 {
		return 128
	}
	return o.MaxSwapIterations
}

// PhaseTimes records the wall time of each pipeline phase (Figure 6).
type PhaseTimes struct {
	Probabilities  time.Duration
	EdgeGeneration time.Duration
	Swapping       time.Duration
}

// Total returns the end-to-end time.
func (p PhaseTimes) Total() time.Duration {
	return p.Probabilities + p.EdgeGeneration + p.Swapping
}

// Result is the pipeline output.
type Result struct {
	// Graph is the generated (or mixed) simple edge list.
	Graph *graph.EdgeList
	// Probabilities is the class matrix used for edge-skipping (nil for
	// the edge-list entry point).
	Probabilities *probgen.Matrix
	// Phases records per-phase wall time.
	Phases PhaseTimes
	// Swaps summarizes the mixing phase.
	Swaps swap.Result
	// Mixed reports whether every edge swapped at least once (only
	// meaningful with MixUntilSwapped).
	Mixed bool
}

// FromDistribution generates a uniformly random simple graph matching
// dist in expectation (Problem 2, Algorithm IV.1).
func FromDistribution(dist *degseq.Distribution, opt Options) (*Result, error) {
	if err := dist.Validate(); err != nil {
		return nil, err
	}
	res := &Result{}

	start := time.Now()
	res.Probabilities = probgen.Generate(dist, opt.Workers)
	if opt.RefinePasses > 0 {
		res.Probabilities = probgen.Refine(dist, res.Probabilities, opt.RefinePasses)
	}
	res.Phases.Probabilities = time.Since(start)

	start = time.Now()
	el, err := edgeskip.Generate(dist, res.Probabilities, edgeskip.Options{
		Workers:  opt.Workers,
		Seed:     opt.Seed,
		Recorder: opt.Recorder,
	})
	if err != nil {
		return nil, fmt.Errorf("core: edge generation: %w", err)
	}
	res.Phases.EdgeGeneration = time.Since(start)
	res.Graph = el

	start = time.Now()
	res.Swaps, res.Mixed = runSwaps(el, opt)
	res.Phases.Swapping = time.Since(start)
	recordPhases(opt, res.Phases)
	return res, nil
}

// recordPhases folds the phase wall times into the run report.
func recordPhases(opt Options, p PhaseTimes) {
	if obs.Enabled && opt.Recorder != nil {
		opt.Recorder.SetPhases(int64(p.Probabilities), int64(p.EdgeGeneration), int64(p.Swapping))
	}
}

// validateEdgeList is the shared input gate for the edge-list entry
// points: the list must be non-nil and every endpoint must name a
// vertex in [0, NumVertices). Empty and single-edge lists are valid
// (the swap phase is then a no-op).
func validateEdgeList(el *graph.EdgeList) error {
	if el == nil {
		return fmt.Errorf("core: nil edge list")
	}
	n := int32(el.NumVertices)
	for i, e := range el.Edges {
		if e.U < 0 || e.V < 0 || e.U >= n || e.V >= n {
			return fmt.Errorf("core: edge %d (%d,%d) out of range for %d vertices", i, e.U, e.V, el.NumVertices)
		}
	}
	return nil
}

// FromEdgeList mixes an existing edge list in place (Problem 1). The
// input may be non-simple; swapping progressively simplifies it. The
// list must be non-nil with in-range endpoints; empty and single-edge
// inputs are valid no-ops.
func FromEdgeList(el *graph.EdgeList, opt Options) (*Result, error) {
	if err := validateEdgeList(el); err != nil {
		return nil, err
	}
	res := &Result{Graph: el}
	start := time.Now()
	res.Swaps, res.Mixed = runSwaps(el, opt)
	res.Phases.Swapping = time.Since(start)
	recordPhases(opt, res.Phases)
	return res, nil
}

// swapOptions derives the swap configuration shared by runSwaps and
// Mixer.
func (o Options) swapOptions() swap.Options {
	return swap.Options{
		Iterations:   o.SwapIterations,
		Workers:      o.Workers,
		Seed:         o.Seed + 0x5eed,
		Probing:      o.Probing,
		TrackSwapped: o.TrackSwapStats || o.MixUntilSwapped,
		Recorder:     o.Recorder,
	}
}

func runSwaps(el *graph.EdgeList, opt Options) (swap.Result, bool) {
	sopt := opt.swapOptions()
	if opt.MixUntilSwapped {
		sopt.Iterations = 0
		return swap.RunUntilMixed(el, sopt, opt.maxSwapIterations())
	}
	return swap.Run(el, sopt), false
}

// Mixer amortizes the swap engine's buffers — hash table, insertion
// journals, permutation scratch, worker pool — across many mixing runs:
// the batch-sampling pattern of "generate a graph, mix it, hand it off,
// repeat" pays the engine's setup cost once instead of per sample.
//
// Each Mix call behaves exactly like FromEdgeList on a fresh pipeline
// whose Seed produces the same per-sample swap seed (bit-identically
// for Workers=1). A Mixer is not safe for concurrent use; Close it when
// the batch is done.
type Mixer struct {
	opt Options
	eng *swap.Engine
}

// NewMixer prepares a mixer for the given pipeline options (only the
// swap-phase fields are consulted).
func NewMixer(opt Options) *Mixer { return &Mixer{opt: opt} }

// sampleSeed derives the swap seed of one sample in the batch. Sample 0
// matches runSwaps with the same Options, so a Mixer is a drop-in for a
// single FromEdgeList call too.
func (mx *Mixer) sampleSeed(sample uint64) uint64 {
	base := mx.opt.Seed + 0x5eed
	if sample == 0 {
		return base
	}
	return base ^ (sample * 0x9e3779b97f4a7c15)
}

// Mix swaps el in place as the sample-th member of the batch, reusing
// the engine state from earlier calls when el's size allows. It applies
// the same input validation as FromEdgeList.
func (mx *Mixer) Mix(el *graph.EdgeList, sample uint64) (swap.Result, bool, error) {
	if err := validateEdgeList(el); err != nil {
		return swap.Result{}, false, err
	}
	if mx.eng == nil {
		sopt := mx.opt.swapOptions()
		sopt.Seed = mx.sampleSeed(sample)
		mx.eng = swap.NewEngine(el, sopt)
	} else {
		mx.eng.SetSeed(mx.sampleSeed(sample))
		mx.eng.Reset(el)
	}
	if mx.opt.MixUntilSwapped {
		res, mixed := swap.RunEngineUntilMixed(mx.eng, mx.opt.maxSwapIterations())
		return res, mixed, nil
	}
	res := swap.RunEngine(mx.eng)
	return res, false, nil
}

// Close releases the mixer's engine. Idempotent; the mixer must not be
// used afterwards.
func (mx *Mixer) Close() {
	if mx.eng != nil {
		mx.eng.Close()
	}
}
