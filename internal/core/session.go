package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"nullgraph/internal/connected"
	"nullgraph/internal/converge"
	"nullgraph/internal/degseq"
	"nullgraph/internal/edgeskip"
	"nullgraph/internal/graph"
	"nullgraph/internal/metrics"
	"nullgraph/internal/obs"
	"nullgraph/internal/par"
	"nullgraph/internal/probgen"
	"nullgraph/internal/simplify"
	"nullgraph/internal/swap"
)

// SampleSeed derives the pipeline seed of one sample in a batch drawn
// under a base seed. Sample 0 is the base seed itself, so a batch's
// first sample is bit-identical (Workers=1) to a one-shot run with the
// same Options; later samples decorrelate through a golden-ratio
// multiply. Every phase of sample s — edge skipping directly, swapping
// through its own +0x5eed offset — draws from this one seed.
func SampleSeed(seed, sample uint64) uint64 {
	if sample == 0 {
		return seed
	}
	return seed ^ (sample * 0x9e3779b97f4a7c15)
}

// Engine is a reusable generation session: it owns every buffer the
// pipeline needs — the probability matrix (cached while the
// distribution is unchanged), the edge-skip generator's chunk and edge
// buffers, the swap engine with its hash table and permutation scratch,
// and one persistent worker pool shared by all phases — so repeated
// GenerateSample/ShuffleSample calls reach a steady state with
// near-zero allocations.
//
// Each sample s runs the pipeline under SampleSeed(opt.Seed, s):
// sample 0 is bit-identical (Workers=1) to the one-shot entry points,
// which are themselves thin wrappers over a single-use Engine.
//
// The Result of GenerateSample aliases engine-owned buffers (the edge
// list, the probability matrix); it is valid until the next call on the
// same Engine. Callers that keep samples must copy them out.
//
// An Engine is not safe for concurrent use. Close releases the worker
// pool; the engine must not be used afterwards.
type Engine struct {
	opt  Options
	pool *par.Pool
	gen  *edgeskip.Generator
	mix  *swap.Engine

	// busy guards the session's scratch against concurrent misuse:
	// GenerateSample/ShuffleSample hold it for the duration of a call,
	// and an overlapping call fails fast with ErrEngineBusy instead of
	// silently racing on the shared buffers.
	busy atomic.Bool

	// prob caches the probability matrix of the last distribution;
	// probKey is a snapshot of its classes, compared per call so a
	// changed distribution invalidates the cache.
	prob    *probgen.Matrix
	probKey []degseq.Class

	// mon is the adaptive convergence monitor, constructed on first use
	// and rearmed (Reset) per sample; monEl is the edge list its eval
	// closure reads, rebound by runSwaps before each adaptive run.
	mon   *converge.Monitor
	monEl *graph.EdgeList
}

// monitorStopper adapts the converge monitor to the swap engine's
// Stopper interface, converting IterStats into the monitor's cheap
// signals. It lives on the session Engine so steady-state adaptive runs
// allocate nothing per sample.
type monitorStopper struct {
	mon *converge.Monitor
}

func (s monitorStopper) Observe(_ int, stats swap.IterStats) bool {
	sr := 0.0
	if stats.Attempts > 0 {
		sr = float64(stats.Successes) / float64(stats.Attempts)
	}
	return s.mon.Observe(sr, stats.EverSwapped)
}

// monitor returns the session's convergence monitor for the configured
// policy, building it on first use. The eval closure reads e.monEl so
// one monitor serves every sample the session runs.
func (e *Engine) monitor() *converge.Monitor {
	if e.mon != nil {
		return e.mon
	}
	pol := *e.opt.StopPolicy
	var eval func() float64
	switch pol.Statistic {
	case converge.SuccessRate:
		eval = nil
	case converge.Triangles:
		eval = func() float64 {
			return float64(graph.BuildCSR(e.monEl, e.opt.Workers).CountTriangles(e.opt.Workers))
		}
	default:
		eval = func() float64 { return metrics.Assortativity(e.monEl, e.opt.Workers) }
	}
	e.mon = converge.NewMonitor(pol, eval)
	return e.mon
}

// fixedStopReport summarizes a fixed-budget (or mixed-heuristic) run
// for the v2 report's stop section.
func fixedStopReport(opt Options, res swap.Result, mixed bool) *obs.StopReport {
	reason := "scans"
	if opt.MixUntilSwapped {
		reason = "budget"
		if mixed {
			reason = "mixed"
		}
	}
	return &obs.StopReport{
		Policy:     "fixed",
		Reason:     reason,
		Iterations: len(res.PerIteration),
	}
}

// NewEngine prepares a session for the given pipeline options. The
// swap engine and all buffers materialize lazily on first use.
func NewEngine(opt Options) *Engine {
	e := &Engine{opt: opt}
	e.pool = par.NewPool(opt.Workers)
	e.gen = edgeskip.NewGenerator(edgeskip.Options{Workers: opt.Workers, Recorder: opt.Recorder})
	e.gen.SetPool(e.pool)
	return e
}

// Close releases the session's worker pool. Idempotent; the engine
// must not be used afterwards.
func (e *Engine) Close() {
	if e.mix != nil {
		e.mix.Close() // no-op for the pool (externally owned), kept for symmetry
	}
	e.pool.Close()
}

// classesEqual reports whether the cached class snapshot still
// describes dist.
//
//nullgraph:hotpath
func classesEqual(a, b []degseq.Class) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// probabilities returns the class probability matrix for dist, serving
// the cached one when the distribution is unchanged since the last
// call. Reports stopped=true when the stop flag interrupted a rebuild.
func (e *Engine) probabilities(dist *degseq.Distribution, stop *par.Stop) (*probgen.Matrix, bool) {
	if e.prob != nil && classesEqual(e.probKey, dist.Classes) {
		return e.prob, false
	}
	m, stopped := probgen.GenerateStop(dist, e.opt.Workers, stop)
	if stopped {
		return nil, true
	}
	if e.opt.RefinePasses > 0 {
		m, stopped = probgen.RefineStop(dist, m, e.opt.RefinePasses, stop)
		if stopped {
			return nil, true
		}
	}
	e.prob = m
	e.probKey = append(e.probKey[:0], dist.Classes...)
	return m, false
}

// runSwaps mixes el on the session's swap engine, constructing it on
// first use and rebinding it (seed, stop, buffers) on every later call.
// The returned StopReport records how the run ended (fixed or adaptive).
func (e *Engine) runSwaps(el *graph.EdgeList, seed uint64, stop *par.Stop) (swap.Result, bool, *obs.StopReport) {
	if e.mix == nil {
		sopt := e.opt.swapOptions()
		sopt.Seed = seed + 0x5eed
		sopt.Pool = e.pool
		sopt.Stop = stop
		e.mix = swap.NewEngine(el, sopt)
	} else {
		e.mix.SetSeed(seed + 0x5eed)
		e.mix.SetStop(stop)
		e.mix.Reset(el)
	}
	if e.opt.StopPolicy != nil {
		mon := e.monitor()
		mon.Reset()
		e.monEl = el
		res, _ := swap.RunEngineStopper(e.mix, mon.Policy().Budget, monitorStopper{mon})
		e.monEl = nil
		out := mon.Outcome()
		return res, false, &out
	}
	if e.opt.MixUntilSwapped {
		res, mixed := swap.RunEngineUntilMixed(e.mix, e.opt.maxSwapIterations())
		return res, mixed, fixedStopReport(e.opt, res, mixed)
	}
	res := swap.RunEngine(e.mix)
	return res, false, fixedStopReport(e.opt, res, false)
}

// acquire claims the session for one call, failing fast with
// ErrEngineBusy when another call holds it. release is the paired
// deferred unlock.
func (e *Engine) acquire() error {
	if !e.busy.CompareAndSwap(false, true) {
		return ErrEngineBusy
	}
	return nil
}

func (e *Engine) release() { e.busy.Store(false) }

// GenerateSample runs the full pipeline (Algorithm IV.1) for the
// sample-th member of the batch. The returned Result aliases
// engine-owned buffers and is valid until the next call.
//
// When stop trips mid-run, GenerateSample returns par.ErrStopped; no
// graph is returned and the engine remains reusable. A stop observed
// before any work leaves everything untouched.
//
// An overlapping call on the same Engine returns ErrEngineBusy.
func (e *Engine) GenerateSample(dist *degseq.Distribution, sample uint64, stop *par.Stop) (*Result, error) {
	if err := e.acquire(); err != nil {
		return nil, err
	}
	defer e.release()
	if err := dist.Validate(); err != nil {
		return nil, err
	}
	if err := validateConnected(e.opt); err != nil {
		return nil, err
	}
	if stop.Stopped() {
		return nil, par.ErrStopped
	}
	seed := SampleSeed(e.opt.Seed, sample)
	res := &Result{}

	var el *graph.EdgeList
	if e.opt.Connected {
		// The probabilistic model realizes a *random* degree sequence,
		// which on skewed inputs almost always strands isolated vertices
		// — unrepairable without changing degrees. Connected generation
		// therefore constructs an exact connected realization of dist
		// instead (Havel-Hakimi + deterministic cycle-edge repair): every
		// sample starts from this deterministic seed graph and
		// decorrelates through its own chain seed, the same fixed-start
		// regime the connected-uniformity gates certify. No probability
		// matrix is involved, so Result.Probabilities stays nil.
		start := time.Now()
		var err error
		el, err = connected.Realize(dist)
		if err != nil {
			return nil, fmt.Errorf("core: connected realization: %w", err)
		}
		res.Phases.EdgeGeneration = time.Since(start)
	} else {
		start := time.Now()
		prob, stopped := e.probabilities(dist, stop)
		if stopped {
			return nil, par.ErrStopped
		}
		res.Probabilities = prob
		res.Phases.Probabilities = time.Since(start)

		start = time.Now()
		var err error
		el, err = e.gen.Generate(dist, prob, seed, stop)
		if err != nil {
			if errors.Is(err, par.ErrStopped) {
				return nil, par.ErrStopped
			}
			return nil, fmt.Errorf("core: edge generation: %w", err)
		}
		res.Phases.EdgeGeneration = time.Since(start)
	}
	res.Graph = el

	start := time.Now()
	res.Swaps, res.Mixed, res.Stop = e.runSwaps(el, seed, stop)
	res.Phases.Swapping = time.Since(start)
	if res.Swaps.Stopped {
		// The generated edge list is valid but under-mixed; the sample
		// is abandoned rather than returned partially uniform.
		return nil, par.ErrStopped
	}
	res.Connectivity = e.mix.ConnectivityStats()
	recordStop(e.opt, res.Stop)
	recordPhases(e.opt, res.Phases)
	recordSpace(e.opt)
	recordSimplify(e.opt, nil)
	recordConnectivity(e.opt, res.Connectivity)
	return res, nil
}

// ShuffleSample mixes an existing edge list in place (Problem 1) as
// the sample-th member of the batch, with FromEdgeList's validation.
//
// When stop trips mid-run, ShuffleSample returns par.ErrStopped and el
// is left valid but under-mixed: its degree sequence and edge count
// are preserved (and simplicity, for simple inputs), with all swaps
// committed before the stop kept. A stop observed before any work
// leaves el untouched.
//
// An overlapping call on the same Engine returns ErrEngineBusy.
func (e *Engine) ShuffleSample(el *graph.EdgeList, sample uint64, stop *par.Stop) (*Result, error) {
	if err := e.acquire(); err != nil {
		return nil, err
	}
	defer e.release()
	if err := validateEdgeList(el); err != nil {
		return nil, err
	}
	if err := validateConnected(e.opt); err != nil {
		return nil, err
	}
	if stop.Stopped() {
		return nil, par.ErrStopped
	}
	seed := SampleSeed(e.opt.Seed, sample)
	res := &Result{Graph: el}
	start := time.Now()
	if !e.opt.Space.AllowsLoops() {
		// Simple cells tolerate non-simple input: the targeted pass
		// (internal/simplify) removes its defects within the Sjöstrand
		// bound before the chain runs, replacing the historical "swaps
		// eventually simplify" hope. Simple inputs skip the pass
		// entirely, consuming no randomness — the historical output is
		// bit-identical for them.
		if !el.SatisfiesSpace(graph.SimpleStub) {
			sres := simplify.Run(el, seed)
			res.Simplify = &sres
		}
	} else if err := graph.ValidateInSpace(el, e.opt.Space); err != nil {
		// Non-simple cells are an explicit opt-in with a hard membership
		// contract: the chain's acceptance rule assumes a legal state.
		return nil, err
	}
	if e.opt.Connected {
		// Repair runs after simplification so the component-joining
		// swaps see a simple graph; an already-connected input passes
		// through untouched (zero merges).
		if _, err := connected.Connect(el); err != nil {
			return nil, fmt.Errorf("core: connected repair: %w", err)
		}
	}
	res.Swaps, res.Mixed, res.Stop = e.runSwaps(el, seed, stop)
	res.Phases.Swapping = time.Since(start)
	if res.Swaps.Stopped {
		return nil, par.ErrStopped
	}
	res.Connectivity = e.mix.ConnectivityStats()
	recordStop(e.opt, res.Stop)
	recordPhases(e.opt, res.Phases)
	recordSpace(e.opt)
	recordSimplify(e.opt, res.Simplify)
	recordConnectivity(e.opt, res.Connectivity)
	return res, nil
}
