package core

import (
	"testing"

	"nullgraph/internal/graph"
)

func ringEdges(n int) *graph.EdgeList {
	edges := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = graph.Edge{U: int32(i), V: int32((i + 1) % n)}
	}
	return graph.NewEdgeList(edges, n)
}

// TestMixerMatchesFromEdgeList locks the Mixer's contract: sample 0 is
// bit-identical (Workers=1) to a one-shot FromEdgeList with the same
// options, and later samples match a pipeline seeded with that sample's
// derived seed.
func TestMixerMatchesFromEdgeList(t *testing.T) {
	opt := Options{Workers: 1, Seed: 17, SwapIterations: 4}
	mx := NewMixer(opt)
	defer mx.Close()
	for sample := uint64(0); sample < 3; sample++ {
		mixed := ringEdges(2000)
		res, _, err := mx.Mix(mixed, sample)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.PerIteration) != 4 {
			t.Fatalf("sample %d: ran %d iterations, want 4", sample, len(res.PerIteration))
		}

		ref := ringEdges(2000)
		refOpt := opt
		refOpt.Seed = mx.sampleSeed(sample) - 0x5eed // invert runSwaps' offset
		if _, err := FromEdgeList(ref, refOpt); err != nil {
			t.Fatal(err)
		}
		for i := range ref.Edges {
			if mixed.Edges[i] != ref.Edges[i] {
				t.Fatalf("sample %d: mixer diverges from FromEdgeList at edge %d", sample, i)
			}
		}
	}
}

func TestMixerDistinctSamplesDiffer(t *testing.T) {
	mx := NewMixer(Options{Workers: 1, Seed: 5, SwapIterations: 4})
	defer mx.Close()
	a := ringEdges(1000)
	mx.Mix(a, 0)
	b := ringEdges(1000)
	mx.Mix(b, 1)
	if a.EqualAsSets(b) {
		t.Error("samples 0 and 1 produced identical graphs")
	}
}

func TestMixerUntilSwapped(t *testing.T) {
	mx := NewMixer(Options{Workers: 2, Seed: 9, MixUntilSwapped: true, MaxSwapIterations: 200})
	defer mx.Close()
	for sample := uint64(0); sample < 2; sample++ {
		el := ringEdges(256)
		res, mixed, err := mx.Mix(el, sample)
		if err != nil {
			t.Fatal(err)
		}
		if !mixed {
			t.Fatalf("sample %d: 256-ring did not mix in 200 iterations", sample)
		}
		last := res.PerIteration[len(res.PerIteration)-1]
		if last.EverSwapped < 1.0 {
			t.Errorf("sample %d: mixed=true but EverSwapped = %v", sample, last.EverSwapped)
		}
		if rep := el.CheckSimplicity(); !rep.IsSimple() {
			t.Errorf("sample %d: output not simple: %+v", sample, rep)
		}
	}
}

// TestMixerHandlesGrowingInputs: the engine must rebind cleanly when a
// later sample is larger than the buffers sized for the first.
func TestMixerHandlesGrowingInputs(t *testing.T) {
	mx := NewMixer(Options{Workers: 1, Seed: 3, SwapIterations: 3})
	defer mx.Close()
	for _, n := range []int{500, 5000, 100} {
		el := ringEdges(n)
		degrees := el.Degrees(1)
		if _, _, err := mx.Mix(el, uint64(n)); err != nil {
			t.Fatal(err)
		}
		after := el.Degrees(1)
		for i := range degrees {
			if degrees[i] != after[i] {
				t.Fatalf("n=%d: degree sequence changed", n)
			}
		}
		if rep := el.CheckSimplicity(); !rep.IsSimple() {
			t.Fatalf("n=%d: output not simple: %+v", n, rep)
		}
	}
}
