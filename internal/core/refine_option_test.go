package core

import (
	"math"
	"testing"

	"nullgraph/internal/degseq"
	"nullgraph/internal/probgen"
)

// TestRefinePassesOptionImprovesResiduals checks the pipeline-level
// wiring of probgen.Refine: with RefinePasses set, the matrix used for
// generation must have smaller residuals on a skewed instance.
func TestRefinePassesOptionImprovesResiduals(t *testing.T) {
	d, err := degseq.SamplePowerLaw(degseq.PowerLawConfig{
		NumVertices: 4000, MinDegree: 1, MaxDegree: 900, Gamma: 2.0, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := FromDistribution(d, Options{Workers: 2, Seed: 1, SwapIterations: 0})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := FromDistribution(d, Options{Workers: 2, Seed: 1, SwapIterations: 0, RefinePasses: 12})
	if err != nil {
		t.Fatal(err)
	}
	abs := func(rs []float64) float64 {
		var s float64
		for _, r := range rs {
			s += math.Abs(r)
		}
		return s
	}
	rPlain := abs(probgen.RowResiduals(d, plain.Probabilities))
	rRefined := abs(probgen.RowResiduals(d, refined.Probabilities))
	if rRefined >= rPlain {
		t.Errorf("RefinePasses did not improve residuals: %v vs %v", rRefined, rPlain)
	}
	if rep := refined.Graph.CheckSimplicity(); !rep.IsSimple() {
		t.Fatalf("refined pipeline output not simple: %+v", rep)
	}
}
