package core

import (
	"math"
	"testing"

	"nullgraph/internal/degseq"
	"nullgraph/internal/graph"
	"nullgraph/internal/metrics"
)

func mustDist(t testing.TB, counts map[int64]int64) *degseq.Distribution {
	t.Helper()
	d, err := degseq.FromCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func powerlaw(t testing.TB, n int64, dmax int64, gamma float64, seed uint64) *degseq.Distribution {
	t.Helper()
	d, err := degseq.SamplePowerLaw(degseq.PowerLawConfig{
		NumVertices: n, MinDegree: 1, MaxDegree: dmax, Gamma: gamma, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFromDistributionEndToEnd(t *testing.T) {
	d := powerlaw(t, 5000, 300, 2.2, 3)
	res, err := FromDistribution(d, Options{Workers: 4, Seed: 7, SwapIterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep := res.Graph.CheckSimplicity(); !rep.IsSimple() {
		t.Fatalf("pipeline output not simple: %+v", rep)
	}
	if res.Graph.NumVertices != int(d.NumVertices()) {
		t.Errorf("vertices = %d, want %d", res.Graph.NumVertices, d.NumVertices())
	}
	// Output edge count within a few percent of target.
	q := metrics.Quality(res.Graph, d, 4)
	if math.Abs(q.Edges) > 0.08 {
		t.Errorf("edge count error %v, want within 8%%", q.Edges)
	}
	if len(res.Swaps.PerIteration) != 8 {
		t.Errorf("swap iterations recorded = %d, want 8", len(res.Swaps.PerIteration))
	}
	if res.Probabilities == nil || res.Probabilities.Dim() != d.NumClasses() {
		t.Error("probability matrix missing or mis-sized")
	}
	if res.Phases.Total() <= 0 {
		t.Error("phase times not recorded")
	}
}

func TestFromDistributionDegreesTrackTarget(t *testing.T) {
	d := mustDist(t, map[int64]int64{2: 3000, 8: 300, 30: 10})
	res, err := FromDistribution(d, Options{Workers: 4, Seed: 11, SwapIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Swaps preserve degrees, so the realized distribution equals what
	// edge-skipping drew; class averages must track targets.
	offsets := d.VertexOffsets(1)
	deg := res.Graph.Degrees(2)
	for c, cl := range d.Classes {
		var s int64
		for v := offsets[c]; v < offsets[c+1]; v++ {
			s += deg[v]
		}
		got := float64(s) / float64(cl.Count)
		want := float64(cl.Degree)
		if math.Abs(got-want) > 0.15*want+0.3 {
			t.Errorf("class %d: avg degree %v, want ~%v", c, got, want)
		}
	}
}

func TestFromDistributionMixUntilSwapped(t *testing.T) {
	d := mustDist(t, map[int64]int64{2: 2000, 6: 100})
	res, err := FromDistribution(d, Options{Workers: 4, Seed: 5, MixUntilSwapped: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mixed {
		t.Errorf("did not reach full mixing in %d iterations", len(res.Swaps.PerIteration))
	}
	last := res.Swaps.PerIteration[len(res.Swaps.PerIteration)-1]
	if last.EverSwapped < 1.0 {
		t.Errorf("EverSwapped = %v at exit", last.EverSwapped)
	}
}

func TestFromDistributionRejectsInvalid(t *testing.T) {
	bad := &degseq.Distribution{Classes: []degseq.Class{{Degree: 2, Count: 0}}}
	if _, err := FromDistribution(bad, Options{}); err == nil {
		t.Error("invalid distribution accepted")
	}
}

func TestFromDistributionZeroSwaps(t *testing.T) {
	d := mustDist(t, map[int64]int64{2: 500})
	res, err := FromDistribution(d, Options{Workers: 2, Seed: 1, SwapIterations: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Swaps.PerIteration) != 0 {
		t.Error("swap stats recorded despite zero iterations")
	}
	if rep := res.Graph.CheckSimplicity(); !rep.IsSimple() {
		t.Errorf("edge-skipping output must be simple even unswapped: %+v", rep)
	}
}

func TestFromEdgeList(t *testing.T) {
	// A ring, mixed in place.
	n := 600
	edges := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = graph.Edge{U: int32(i), V: int32((i + 1) % n)}
	}
	el := graph.NewEdgeList(edges, n)
	orig := el.Clone()
	res, err := FromEdgeList(el, Options{Workers: 4, Seed: 13, SwapIterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph != el {
		t.Error("FromEdgeList must mutate in place")
	}
	if el.EqualAsSets(orig) {
		t.Error("graph unchanged after 6 iterations")
	}
	if rep := el.CheckSimplicity(); !rep.IsSimple() {
		t.Fatalf("not simple: %+v", rep)
	}
	if res.Phases.Probabilities != 0 || res.Phases.EdgeGeneration != 0 {
		t.Error("edge-list entry point should only record swap time")
	}
}

// TestFromEdgeListValidation pins the edge-list entry points' input
// contract: nil and out-of-range inputs fail with a defined error
// instead of panicking in the swap engine, while empty and single-edge
// lists are valid no-ops (no pair to swap).
func TestFromEdgeListValidation(t *testing.T) {
	opt := Options{Workers: 1, Seed: 1, SwapIterations: 3}

	if _, err := FromEdgeList(nil, opt); err == nil {
		t.Error("nil edge list accepted")
	}
	bad := graph.NewEdgeList([]graph.Edge{{U: 0, V: 1}}, 2)
	bad.Edges[0].V = 7 // corrupt after construction, as a caller could
	if _, err := FromEdgeList(bad, opt); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	neg := graph.NewEdgeList([]graph.Edge{{U: 0, V: 1}}, 2)
	neg.Edges[0].U = -1
	if _, err := FromEdgeList(neg, opt); err == nil {
		t.Error("negative endpoint accepted")
	}

	for name, el := range map[string]*graph.EdgeList{
		"empty":       graph.NewEdgeList(nil, 4),
		"single-edge": graph.NewEdgeList([]graph.Edge{{U: 0, V: 1}}, 2),
	} {
		res, err := FromEdgeList(el, opt)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if res.Graph != el {
			t.Errorf("%s: result must reference the input in place", name)
		}
	}

	mx := NewMixer(opt)
	defer mx.Close()
	if _, _, err := mx.Mix(nil, 0); err == nil {
		t.Error("Mixer accepted nil edge list")
	}
	if _, _, err := mx.Mix(bad, 0); err == nil {
		t.Error("Mixer accepted out-of-range endpoint")
	}
	if _, _, err := mx.Mix(graph.NewEdgeList(nil, 2), 0); err != nil {
		t.Errorf("Mixer rejected empty list: %v", err)
	}
}

func TestFromDistributionDeterministic(t *testing.T) {
	// Bit-exact only with a single worker (parallel swap proposals race
	// benignly; see swap.Options.Seed).
	d := mustDist(t, map[int64]int64{3: 800, 9: 40})
	a, err := FromDistribution(d, Options{Workers: 1, Seed: 21, SwapIterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromDistribution(d, Options{Workers: 1, Seed: 21, SwapIterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Graph.Edges) != len(b.Graph.Edges) {
		t.Fatal("edge counts differ across identical runs")
	}
	for i := range a.Graph.Edges {
		if a.Graph.Edges[i] != b.Graph.Edges[i] {
			t.Fatalf("same (seed,workers=1) diverged at edge %d", i)
		}
	}
	// Parallel runs still draw identical *pre-swap* graphs: edge
	// generation is scheduling-independent.
	pa, err := FromDistribution(d, Options{Workers: 4, Seed: 21, SwapIterations: 0})
	if err != nil {
		t.Fatal(err)
	}
	pb, err := FromDistribution(d, Options{Workers: 4, Seed: 21, SwapIterations: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !pa.Graph.EqualAsSets(pb.Graph) {
		t.Error("edge-skipping output differs across identical parallel runs")
	}
}

func TestPhaseTimesTotal(t *testing.T) {
	p := PhaseTimes{Probabilities: 1, EdgeGeneration: 2, Swapping: 4}
	if p.Total() != 7 {
		t.Errorf("Total = %d", p.Total())
	}
}
