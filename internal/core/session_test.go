package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"nullgraph/internal/graph"
	"nullgraph/internal/par"
)

// cloneEdges snapshots an edge list's edges for later comparison.
func cloneEdges(el *graph.EdgeList) []graph.Edge {
	return append([]graph.Edge(nil), el.Edges...)
}

// TestEngineReuseBitIdentical locks the session contract at Workers=1:
// sample s from one reused Engine is bit-identical to sample s from a
// fresh Engine (and, through SampleSeed, to a one-shot run with the
// derived seed), across at least three samples.
func TestEngineReuseBitIdentical(t *testing.T) {
	dist := powerlaw(t, 4000, 60, 2.1, 7)
	opt := Options{Workers: 1, Seed: 21, SwapIterations: 4}

	reused := NewEngine(opt)
	defer reused.Close()
	for sample := uint64(0); sample < 4; sample++ {
		got, err := reused.GenerateSample(dist, sample, nil)
		if err != nil {
			t.Fatal(err)
		}
		gotEdges := cloneEdges(got.Graph) // aliases engine buffers; copy before the next call

		fresh := NewEngine(opt)
		want, err := fresh.GenerateSample(dist, sample, nil)
		if err != nil {
			fresh.Close()
			t.Fatal(err)
		}
		if len(gotEdges) != len(want.Graph.Edges) {
			t.Fatalf("sample %d: reused engine drew %d edges, fresh drew %d",
				sample, len(gotEdges), len(want.Graph.Edges))
		}
		for i := range gotEdges {
			if gotEdges[i] != want.Graph.Edges[i] {
				t.Fatalf("sample %d: reused engine diverges from fresh at edge %d", sample, i)
			}
		}
		fresh.Close()

		// One-shot equivalence through the seed schedule: a run seeded
		// with SampleSeed(base, s) reproduces batch sample s exactly.
		oneOpt := opt
		oneOpt.Seed = SampleSeed(opt.Seed, sample)
		one, err := FromDistribution(dist, oneOpt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range gotEdges {
			if gotEdges[i] != one.Graph.Edges[i] {
				t.Fatalf("sample %d: batch sample diverges from one-shot SampleSeed run at edge %d", sample, i)
			}
		}
	}
}

// TestEngineShuffleMatchesMixer pins the deprecation bridge: Mixer.Mix
// must remain bit-identical to the Engine path it now delegates to.
func TestEngineShuffleMatchesMixer(t *testing.T) {
	opt := Options{Workers: 1, Seed: 13, SwapIterations: 4}
	mx := NewMixer(opt)
	defer mx.Close()
	eng := NewEngine(opt)
	defer eng.Close()
	for sample := uint64(0); sample < 3; sample++ {
		a := ringEdges(1500)
		if _, _, err := mx.Mix(a, sample); err != nil {
			t.Fatal(err)
		}
		b := ringEdges(1500)
		if _, err := eng.ShuffleSample(b, sample, nil); err != nil {
			t.Fatal(err)
		}
		for i := range a.Edges {
			if a.Edges[i] != b.Edges[i] {
				t.Fatalf("sample %d: Mixer diverges from Engine at edge %d", sample, i)
			}
		}
	}
}

// TestEngineProbabilityCacheInvalidation: switching distributions
// mid-session must rebuild the matrix, not serve the stale one.
func TestEngineProbabilityCacheInvalidation(t *testing.T) {
	distA := powerlaw(t, 3000, 40, 2.2, 3)
	distB := mustDist(t, map[int64]int64{1: 400, 2: 300, 5: 40})
	opt := Options{Workers: 1, Seed: 9, SwapIterations: 2}

	eng := NewEngine(opt)
	defer eng.Close()
	resA1, err := eng.GenerateSample(distA, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	probA := resA1.Probabilities
	resB, err := eng.GenerateSample(distB, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resB.Probabilities == probA {
		t.Fatal("changed distribution served the cached probability matrix")
	}
	edgesB := cloneEdges(resB.Graph)

	// And the rebuilt run must equal a fresh engine's run on distB.
	fresh := NewEngine(opt)
	defer fresh.Close()
	want, err := fresh.GenerateSample(distB, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(edgesB) != len(want.Graph.Edges) {
		t.Fatalf("cache-invalidated run drew %d edges, fresh drew %d", len(edgesB), len(want.Graph.Edges))
	}
	for i := range edgesB {
		if edgesB[i] != want.Graph.Edges[i] {
			t.Fatalf("cache-invalidated run diverges from fresh at edge %d", i)
		}
	}

	// Returning to distA must also rebuild (the cache is depth-1) and
	// still serve the cached matrix on an immediate repeat.
	resA2, err := eng.GenerateSample(distA, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	resA3, err := eng.GenerateSample(distA, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resA2.Probabilities != resA3.Probabilities {
		t.Fatal("unchanged distribution rebuilt the probability matrix")
	}
}

// TestEnginePreTrippedStopUntouched: a stop observed on entry must
// return par.ErrStopped without reading randomness or touching the
// caller's graph.
func TestEnginePreTrippedStopUntouched(t *testing.T) {
	stop := &par.Stop{}
	stop.Set()

	eng := NewEngine(Options{Workers: 1, Seed: 4, SwapIterations: 8})
	defer eng.Close()

	el := ringEdges(500)
	before := cloneEdges(el)
	if _, err := eng.ShuffleSample(el, 0, stop); !errors.Is(err, par.ErrStopped) {
		t.Fatalf("pre-tripped stop: got err %v, want par.ErrStopped", err)
	}
	for i := range before {
		if el.Edges[i] != before[i] {
			t.Fatalf("pre-tripped stop mutated the input at edge %d", i)
		}
	}

	dist := mustDist(t, map[int64]int64{2: 100})
	if _, err := eng.GenerateSample(dist, 0, stop); !errors.Is(err, par.ErrStopped) {
		t.Fatalf("pre-tripped stop: got err %v, want par.ErrStopped", err)
	}
}

// TestEngineMidRunStopLeavesValidGraph trips the flag while a long mix
// is running: the call must return par.ErrStopped promptly, the edge
// list must keep its degree sequence and edge count (valid but
// under-mixed), and the engine must remain usable afterwards.
func TestEngineMidRunStopLeavesValidGraph(t *testing.T) {
	eng := NewEngine(Options{Workers: 2, Seed: 11, SwapIterations: 100_000})
	defer eng.Close()

	el := ringEdges(20000)
	degrees := el.Degrees(1)
	stop := &par.Stop{}
	go func() {
		time.Sleep(10 * time.Millisecond)
		stop.Set()
	}()
	start := time.Now()
	_, err := eng.ShuffleSample(el, 0, stop)
	elapsed := time.Since(start)
	if !errors.Is(err, par.ErrStopped) {
		t.Fatalf("mid-run stop: got err %v, want par.ErrStopped", err)
	}
	// 100k iterations on a 20k ring would run for minutes; a prompt
	// cooperative exit is orders of magnitude faster. The generous bound
	// keeps the check meaningful without flaking on loaded machines.
	if elapsed > 30*time.Second {
		t.Fatalf("mid-run stop took %v; cancellation latency is not bounded", elapsed)
	}

	if len(el.Edges) != 20000 {
		t.Fatalf("edge count changed: %d", len(el.Edges))
	}
	after := el.Degrees(1)
	for i := range degrees {
		if degrees[i] != after[i] {
			t.Fatalf("mid-run stop broke the degree sequence at vertex %d", i)
		}
	}
	if rep := el.CheckSimplicity(); !rep.IsSimple() {
		t.Fatalf("mid-run stop left a non-simple graph: %+v", rep)
	}

	// The abandoned sample must not poison the session: a second run on
	// the same engine must swap validly again. (It is stopped too — the
	// session's 100k-iteration budget is deliberately unreachable — so
	// the assertion is that it runs and preserves invariants, not that
	// it completes.)
	el2 := ringEdges(1000)
	deg2 := el2.Degrees(1)
	stop2 := &par.Stop{}
	go func() {
		time.Sleep(10 * time.Millisecond)
		stop2.Set()
	}()
	if _, err := eng.ShuffleSample(el2, 1, stop2); !errors.Is(err, par.ErrStopped) {
		t.Fatalf("engine unusable after stop: %v", err)
	}
	after2 := el2.Degrees(1)
	for i := range deg2 {
		if deg2[i] != after2[i] {
			t.Fatalf("second run broke the degree sequence at vertex %d", i)
		}
	}
}

// TestEngineConcurrentStopRace hammers cancellation from a separate
// goroutine while parallel workers are mid-phase — the scenario the
// race detector checks when this package runs under -race.
func TestEngineConcurrentStopRace(t *testing.T) {
	dist := powerlaw(t, 3000, 50, 2.1, 5)
	eng := NewEngine(Options{Workers: 4, Seed: 2, SwapIterations: 50})
	defer eng.Close()
	for trial := 0; trial < 8; trial++ {
		stop := &par.Stop{}
		var wg sync.WaitGroup
		wg.Add(1)
		go func(d time.Duration) {
			defer wg.Done()
			time.Sleep(d)
			stop.Set()
		}(time.Duration(trial) * 500 * time.Microsecond)
		_, err := eng.GenerateSample(dist, uint64(trial), stop)
		wg.Wait()
		if err != nil && !errors.Is(err, par.ErrStopped) {
			t.Fatalf("trial %d: unexpected error %v", trial, err)
		}
	}
}
