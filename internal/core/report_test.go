package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"nullgraph/internal/converge"
	"nullgraph/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite the RunReport golden file")

// collectReport runs the full pipeline instrumented at Workers=1 and
// strips the phase wall times (the only nondeterministic section).
func collectReport(t *testing.T) *obs.RunReport {
	t.Helper()
	d := mustDist(t, map[int64]int64{2: 400, 5: 40, 9: 10})
	rec := obs.NewRecorder()
	_, err := FromDistribution(d, Options{
		Workers:        1,
		Seed:           42,
		SwapIterations: 3,
		TrackSwapStats: true,
		Recorder:       rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := rec.Report()
	rep.Phases = nil
	return rep
}

// TestRunReportGolden pins the serialized RunReport schema AND the
// Workers=1 counter values: a change to either the JSON field set, the
// rng streams, or the rejection/probe accounting shows up as a golden
// diff. Regenerate deliberately with `go test ./internal/core -run
// RunReportGolden -update`.
func TestRunReportGolden(t *testing.T) {
	rep := collectReport(t)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "runreport_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("RunReport JSON drifted from golden file (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
	// The golden file must carry the schema tag round trip.
	var decoded obs.RunReport
	if err := json.Unmarshal(want, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Schema != obs.SchemaVersion {
		t.Errorf("golden schema = %q, want %q", decoded.Schema, obs.SchemaVersion)
	}
}

// TestRunReportGoldenAdaptive pins the adaptive-stop section of the v2
// schema the same way: an adaptive Workers=1 run's full report —
// including the stop reason and checkpoint trail — must not drift.
func TestRunReportGoldenAdaptive(t *testing.T) {
	d := mustDist(t, map[int64]int64{2: 400, 5: 40, 9: 10})
	rec := obs.NewRecorder()
	_, err := FromDistribution(d, Options{
		Workers:  1,
		Seed:     42,
		Recorder: rec,
		StopPolicy: &converge.Policy{
			Floor:  6,
			Budget: 48,
			Growth: 1.2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := rec.Report()
	rep.Phases = nil
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "runreport_adaptive_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("adaptive RunReport JSON drifted from golden file (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
	var decoded obs.RunReport
	if err := json.Unmarshal(want, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Stop == nil || decoded.Stop.Policy != "adaptive" {
		t.Fatalf("golden stop section missing or not adaptive: %+v", decoded.Stop)
	}
	if decoded.Stop.Iterations < 6 {
		t.Errorf("adaptive run stopped at %d iterations, inside the floor", decoded.Stop.Iterations)
	}
	if len(decoded.Stop.Checkpoints) == 0 {
		t.Error("adaptive golden has no checkpoints")
	}
}

// TestPipelineReportDeterministic is the acceptance criterion at the
// pipeline level: same seed, Workers=1, two runs — identical counters.
func TestPipelineReportDeterministic(t *testing.T) {
	a, b := collectReport(t), collectReport(t)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("pipeline reports differ across identical seeded runs:\n%+v\n%+v", a, b)
	}
	if a.EdgeSkip == nil || a.EdgeSkip.TotalEdges == 0 || a.SwapTotals.Attempts == 0 {
		t.Errorf("degenerate report: %+v", a)
	}
}
