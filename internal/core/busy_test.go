package core

import (
	"errors"
	"testing"

	"nullgraph/internal/degseq"
	"nullgraph/internal/graph"
)

// TestEngineBusyDeterministic locks the guard's semantics without any
// timing dependence: a held session rejects both entry points with
// ErrEngineBusy, and a released session serves them again.
func TestEngineBusyDeterministic(t *testing.T) {
	eng := NewEngine(Options{Workers: 1, Seed: 7, SwapIterations: 2})
	defer eng.Close()
	dist := degseq.FromDegrees([]int64{2, 2, 2, 2})

	if err := eng.acquire(); err != nil {
		t.Fatalf("acquire on idle engine: %v", err)
	}
	if _, err := eng.GenerateSample(dist, 0, nil); !errors.Is(err, ErrEngineBusy) {
		t.Fatalf("GenerateSample on held engine: got %v, want ErrEngineBusy", err)
	}
	el := graph.NewEdgeList([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}}, 4)
	if _, err := eng.ShuffleSample(el, 0, nil); !errors.Is(err, ErrEngineBusy) {
		t.Fatalf("ShuffleSample on held engine: got %v, want ErrEngineBusy", err)
	}
	eng.release()
	if _, err := eng.GenerateSample(dist, 0, nil); err != nil {
		t.Fatalf("GenerateSample after release: %v", err)
	}
}

// TestEngineBusyErrorDoesNotLeaveHeld checks that calls rejected by
// input validation release the guard: a bad distribution must not wedge
// the session.
func TestEngineBusyErrorDoesNotLeaveHeld(t *testing.T) {
	eng := NewEngine(Options{Workers: 1, Seed: 7, SwapIterations: 2})
	defer eng.Close()
	if _, err := eng.ShuffleSample(nil, 0, nil); err == nil {
		t.Fatal("nil edge list accepted")
	}
	dist := degseq.FromDegrees([]int64{2, 2, 2, 2})
	if _, err := eng.GenerateSample(dist, 0, nil); err != nil {
		t.Fatalf("engine wedged after validation error: %v", err)
	}
}
