package analysis

import (
	"go/ast"
	"go/types"
)

// HotPathAlloc bans heap-allocating constructs in functions annotated
// //nullgraph:hotpath. The swap Step contract (DESIGN.md §6) is 0
// allocs/op; benchmarks catch regressions after the fact, this analyzer
// catches them at the review stage and names the construct. Banned:
//
//   - map operations (index, range, composite literal, make, delete):
//     maps hash and may grow on the hot path;
//   - fmt calls: interface boxing plus reflection;
//   - interface conversions (a concrete value passed or converted to an
//     interface parameter): the value escapes and is boxed;
//   - append not in the self-append form `x = append(x, ...)`: only
//     amortized growth into a reused buffer is sanctioned;
//   - closures capturing local variables: captures force the variable
//     (and the closure) onto the heap.
//
// panic call arguments are exempt — a panic is the cold, terminal path
// and its formatting cost is irrelevant. Individual lines can be
// exempted with //nullgraph:allow hotpathalloc <reason>.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "//nullgraph:hotpath functions must not use maps, fmt, interface conversions, non-self append, or capturing closures",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, "hotpath") {
				continue
			}
			checkHotPath(pass, fd)
		}
	}
}

func checkHotPath(pass *Pass, fd *ast.FuncDecl) {
	// Sanctioned appends: the RHS of `x = append(x, ...)` (any assign
	// token), matched by printing both sides — object identity would miss
	// field chains like w.journal.
	sanctioned := map[*ast.CallExpr]bool{}
	// panic(...) subtrees are exempt from every check below.
	panicCalls := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if ok && isBuiltin(pass.Info, call, "append") && len(call.Args) > 0 &&
					types.ExprString(n.Lhs[i]) == types.ExprString(call.Args[0]) {
					sanctioned[call] = true
				}
			}
		case *ast.CallExpr:
			if isBuiltin(pass.Info, n, "panic") {
				panicCalls[n] = true
			}
		}
		return true
	})

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if panicCalls[n] {
			return false // cold terminal path: skip the whole subtree
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, n, sanctioned)
		case *ast.FuncLit:
			for _, name := range localCaptures(pass, n) {
				pass.Reportf(n.Pos(), "closure captures %q: captured locals and the closure itself are heap-allocated; prebind the closure outside the hot path or pass state explicitly", name)
			}
		case *ast.IndexExpr:
			if t := pass.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(n.Pos(), "map access in hot path: map operations hash and may allocate; use a slice or a prebuilt index")
				}
			}
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(n.Pos(), "map range in hot path: iteration order is random and the loop touches hash internals; use a slice")
				}
			}
		case *ast.CompositeLit:
			if t := pass.Info.TypeOf(n); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(n.Pos(), "map literal allocates in hot path")
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// checkHotCall reports banned call forms: fmt, map make/delete,
// non-self append, and implicit interface conversions at arguments.
func checkHotCall(pass *Pass, call *ast.CallExpr, sanctioned map[*ast.CallExpr]bool) {
	switch {
	case isBuiltin(pass.Info, call, "append"):
		if !sanctioned[call] {
			pass.Reportf(call.Pos(), "append outside the self-append form `x = append(x, ...)`: result spills to a fresh backing array; append into a reused, pre-sized buffer")
		}
		return
	case isBuiltin(pass.Info, call, "make"):
		if t := pass.Info.TypeOf(call); t != nil {
			if _, ok := t.Underlying().(*types.Map); ok {
				pass.Reportf(call.Pos(), "make(map) allocates in hot path")
			}
		}
		return
	case isBuiltin(pass.Info, call, "delete"):
		pass.Reportf(call.Pos(), "map delete in hot path")
		return
	}
	if fn := calleeFunc(pass.Info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s in hot path: boxes every operand and reflects on it; format off the hot path or use strconv", fn.Name())
	}
	// Explicit conversion to an interface type: I(x).
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if at := pass.Info.TypeOf(call.Args[0]); at != nil && !types.IsInterface(at) && !isUntypedNil(at) {
				pass.Reportf(call.Pos(), "conversion of %s to interface %s heap-allocates the value", at, tv.Type)
			}
		}
		return
	}
	// Implicit conversions: concrete argument to interface parameter.
	sig := signatureOf(pass.Info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if call.Ellipsis.IsValid() {
				pt = last
			} else if sl, ok := last.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if _, isTypeParam := types.Unalias(pt).(*types.TypeParam); isTypeParam {
			continue
		}
		atv, ok := pass.Info.Types[arg]
		if !ok || atv.Type == nil || types.IsInterface(atv.Type) || isUntypedNil(atv.Type) {
			continue
		}
		if atv.Value != nil {
			// Constants convert to interfaces via static descriptors, not
			// heap allocation.
			continue
		}
		pass.Reportf(arg.Pos(), "%s passed as interface %s: the value is boxed on the heap", atv.Type, pt)
	}
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// localCaptures returns the names of function-local variables (not
// package globals, which are addressed statically) that lit references
// but does not declare.
func localCaptures(pass *Pass, lit *ast.FuncLit) []string {
	var names []string
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal
		}
		if v.Parent() == pass.Pkg.Scope() {
			return true // package-level: no capture
		}
		seen[v] = true
		names = append(names, v.Name())
		return true
	})
	return names
}
