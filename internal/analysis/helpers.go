package analysis

import (
	"go/ast"
	"go/types"
)

const (
	rngPkgPath = "nullgraph/internal/rng"
	parPkgPath = "nullgraph/internal/par"
)

// deref unwraps one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedOf returns the named type behind t (through pointers and
// aliases), or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// typeIs reports whether t is (a pointer to) the named type
// pkgPath.name.
func typeIs(t types.Type, pkgPath, name string) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isRngStream reports whether t is (a pointer to) one of the rng
// package's stream types — the state whose sharing across workers the
// rngshare analyzer forbids.
func isRngStream(t types.Type) bool {
	return typeIs(t, rngPkgPath, "Source") || typeIs(t, rngPkgPath, "SplitMix64")
}

// calleeFunc resolves the *types.Func a call statically invokes
// (package function or method), or nil for builtins, conversions, and
// calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isBuiltin reports whether a call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isErrorType reports whether t is the predeclared error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// signatureOf returns the signature of a call's callee, or nil for
// builtins and conversions.
func signatureOf(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}
