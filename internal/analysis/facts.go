package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FactStore is the cross-package memory of one analysis session. The
// single-package Pass model (one analyzer, one type-checked package)
// cannot see another package's syntax — and some invariants live
// exactly there: the //nullgraph:nofingerprint annotations on
// nullgraph.Options fields are comments in the root package, consulted
// while diagnosing internal/serve's fingerprint function. Analyzers
// that need such facts declare a Facts hook; the driver runs every
// Facts hook over every loaded package before any Run, so by the time
// diagnostics are produced the store holds the whole module's facts
// regardless of which packages the user asked to check.
//
// Facts are (object key, fact name) → string. Object keys are
// fully-qualified dotted names ("nullgraph.Options.CollectReport"); the
// convention keeps the store greppable in test failures and avoids
// pinning *types.Object identities across loader boundaries.
type FactStore struct {
	m map[string]map[string]string
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: map[string]map[string]string{}}
}

// Put records fact name = value on the object key, overwriting any
// previous value.
func (fs *FactStore) Put(objKey, name, value string) {
	facts := fs.m[objKey]
	if facts == nil {
		facts = map[string]string{}
		fs.m[objKey] = facts
	}
	facts[name] = value
}

// Get returns the named fact on the object key.
func (fs *FactStore) Get(objKey, name string) (string, bool) {
	v, ok := fs.m[objKey][name]
	return v, ok
}

// Session carries the cross-package state of one analysis run: the
// module root (for resolving committed artifacts like the schema lock
// and the baseline), the fact store, and the lazily parsed schema
// manifest. Construct one per driver invocation with NewSession, call
// GatherFacts over every loaded package, then RunPackage per target.
type Session struct {
	// Root is the module root directory.
	Root string
	// SchemaLockPath locates the schemaver manifest; empty defaults to
	// Root/internal/analysis/schemas.lock. Fixture tests point it at a
	// per-fixture lock.
	SchemaLockPath string
	// Facts is the session's cross-package fact store.
	Facts *FactStore

	schemaLock     *SchemaLock
	schemaLockErr  error
	schemaLockOnce bool
}

// NewSession returns a session rooted at the module directory.
func NewSession(root string) *Session {
	return &Session{Root: root, Facts: NewFactStore()}
}

// SchemaLock parses the session's schema manifest once and caches it.
// A missing lock file is not an error here; it returns an empty lock —
// schemaver reports the missing entries itself, with a pointer to
// -update-schemas.
func (s *Session) SchemaLock() (*SchemaLock, error) {
	if !s.schemaLockOnce {
		s.schemaLockOnce = true
		path := s.SchemaLockPath
		if path == "" {
			path = filepath.Join(s.Root, "internal", "analysis", "schemas.lock")
		}
		data, err := os.ReadFile(path)
		switch {
		case os.IsNotExist(err):
			s.schemaLock = &SchemaLock{Schemas: map[string]*SchemaManifest{}}
		case err != nil:
			s.schemaLockErr = err
		default:
			s.schemaLock, s.schemaLockErr = ParseSchemaLock(string(data))
		}
	}
	return s.schemaLock, s.schemaLockErr
}

// GatherFacts runs every analyzer's Facts hook over pkg, populating the
// session's store. Facts hooks run over every loaded package — not just
// the packages diagnostics are requested for — so AppliesTo does not
// filter here.
func GatherFacts(s *Session, pkg *Package, analyzers []*Analyzer) {
	for _, a := range analyzers {
		if a.Facts == nil {
			continue
		}
		a.Facts(&Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Session:  s,
		})
	}
}

// Baseline is a committed set of known-debt findings tolerated by the
// driver: new analyzers can land (and start gating new code) before
// every pre-existing finding is paid down. Entries match on (relative
// file, analyzer, message) — deliberately no line numbers, so unrelated
// edits to a file cannot invalidate the baseline — and every entry is a
// visible line in a committed file, as auditable as a //nullgraph:allow.
type Baseline struct {
	entries map[baselineKey]bool
}

type baselineKey struct {
	file     string // slash-separated, relative to module root
	analyzer string
	message  string
}

// baselineHeader introduces every generated baseline file.
const baselineHeader = `# nullvet baseline: known-debt findings tolerated by the driver.
# One finding per line, "path: [analyzer] message" (no line numbers, so
# edits elsewhere in a file do not invalidate entries). Regenerate with
# nullvet -update-baseline; shrink it whenever debt is paid down.`

// ParseBaseline parses the committed baseline format. Blank lines and
// '#' comments are skipped; anything else must parse.
func ParseBaseline(data string) (*Baseline, error) {
	b := &Baseline{entries: map[baselineKey]bool{}}
	for i, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		k, err := parseBaselineLine(line)
		if err != nil {
			return nil, fmt.Errorf("baseline line %d: %w", i+1, err)
		}
		b.entries[k] = true
	}
	return b, nil
}

// parseBaselineLine splits "path: [analyzer] message".
func parseBaselineLine(line string) (baselineKey, error) {
	file, rest, ok := strings.Cut(line, ": [")
	if !ok {
		return baselineKey{}, fmt.Errorf("want %q, got %q", "path: [analyzer] message", line)
	}
	analyzer, msg, ok := strings.Cut(rest, "] ")
	if !ok {
		return baselineKey{}, fmt.Errorf("want %q, got %q", "path: [analyzer] message", line)
	}
	return baselineKey{file: strings.TrimSpace(file), analyzer: analyzer, message: msg}, nil
}

// Len reports the number of baseline entries.
func (b *Baseline) Len() int {
	if b == nil {
		return 0
	}
	return len(b.entries)
}

// keyFor maps a diagnostic to its baseline key, with the file made
// root-relative and slash-separated.
func baselineKeyFor(root string, d Diagnostic) baselineKey {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return baselineKey{file: file, analyzer: d.Analyzer, message: d.Message}
}

// Filter splits diags into kept (not in the baseline) and suppressed.
// A nil baseline keeps everything.
func (b *Baseline) Filter(root string, diags []Diagnostic) (kept, suppressed []Diagnostic) {
	if b == nil || len(b.entries) == 0 {
		return diags, nil
	}
	for _, d := range diags {
		if b.entries[baselineKeyFor(root, d)] {
			suppressed = append(suppressed, d)
		} else {
			kept = append(kept, d)
		}
	}
	return kept, suppressed
}

// Unused returns the baseline entries no diagnostic in diags matched,
// formatted as baseline lines — stale debt the driver surfaces so the
// file shrinks as findings are fixed.
func (b *Baseline) Unused(root string, diags []Diagnostic) []string {
	if b == nil {
		return nil
	}
	used := map[baselineKey]bool{}
	for _, d := range diags {
		used[baselineKeyFor(root, d)] = true
	}
	var stale []string
	for k := range b.entries {
		if !used[k] {
			stale = append(stale, fmt.Sprintf("%s: [%s] %s", k.file, k.analyzer, k.message))
		}
	}
	sort.Strings(stale)
	return stale
}

// FormatBaseline renders diags as a committed baseline file (header,
// sorted, deduplicated, trailing newline).
func FormatBaseline(root string, diags []Diagnostic) string {
	seen := map[baselineKey]bool{}
	var lines []string
	for _, d := range diags {
		k := baselineKeyFor(root, d)
		if seen[k] {
			continue
		}
		seen[k] = true
		lines = append(lines, fmt.Sprintf("%s: [%s] %s", k.file, k.analyzer, k.message))
	}
	sort.Strings(lines)
	return baselineHeader + "\n\n" + strings.Join(append(lines, ""), "\n")
}
