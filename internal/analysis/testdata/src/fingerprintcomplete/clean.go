// Clean fixture for the fingerprintcomplete analyzer: a fingerprint
// that consumes everything it must, with a reasoned exemption.
package fingerprintcomplete

// CleanOptions is fully covered: Seed is hashed, Debug is exempt with a
// stated reason, and the nested distribution is walked transitively.
type CleanOptions struct {
	Seed uint64
	//nullgraph:nofingerprint diagnostics only; never changes what is sampled
	Debug bool
	Dist  Distribution
}

// Distribution exercises the transitive slice-of-structs walk.
type Distribution struct {
	Classes []Class
}

// Class is the leaf pair.
type Class struct {
	Degree int64
	Count  int64
}

// Complete consumes every required field.
//
//nullgraph:fingerprint
func Complete(opt CleanOptions) uint64 {
	h := opt.Seed
	for _, c := range opt.Dist.Classes {
		h = h*31 + uint64(c.Degree)
		h = h*31 + uint64(c.Count)
	}
	return h
}
