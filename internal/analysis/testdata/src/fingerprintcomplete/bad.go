// Deliberately-broken fixture for the fingerprintcomplete analyzer.
// Never compiled into the module.
package fingerprintcomplete

// Options mirrors the real nullgraph.Options shape: flat sampling
// knobs, a nested policy pointer, and one annotated exemption.
type Options struct {
	Space   int
	Workers int
	// Bare is annotated without a reason — itself a finding.
	//
	//nullgraph:nofingerprint
	Bare bool
	// Policy is consumed, which pulls its fields into the requirement.
	Policy *Policy
}

// Policy has one hashed and one forgotten field.
type Policy struct {
	Floor  int
	Budget int
}

// Incomplete consumes Space and Policy.Floor but forgets Workers and
// Policy.Budget, and Bare's annotation is reasonless.
//
//nullgraph:fingerprint
func Incomplete(opt Options) uint64 { // want `Options.Workers is not consumed` `Policy.Budget is not consumed` `Options.Bare is annotated //nullgraph:nofingerprint without a reason`
	h := uint64(opt.Space)
	if p := opt.Policy; p != nil {
		h += uint64(p.Floor)
	}
	return h
}
