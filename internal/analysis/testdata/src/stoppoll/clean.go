package stoppoll

import "nullgraph/internal/par"

// directPoll reads the flag at a coarse interval, the §9 pattern.
func directPoll(n int, stop *par.Stop) int {
	total := 0
	//nullgraph:cancelable
	for i := 0; i < n; i++ {
		if i&8191 == 0 && stop.Stopped() {
			break
		}
		total += i
	}
	return total
}

// trailingAnnotation keeps the directive on the loop's own line.
func trailingAnnotation(n int, stop *par.Stop) int {
	total := 0
	for i := 0; i < n; i++ { //nullgraph:cancelable
		if stop.Stopped() {
			break
		}
		total++
	}
	return total
}

// delegated hands the flag to a callee that owns the polling.
func delegated(chunks [][]int, stop *par.Stop) int {
	total := 0
	//nullgraph:cancelable
	for _, c := range chunks {
		total += sumChunk(c, stop)
	}
	return total
}

func sumChunk(xs []int, stop *par.Stop) int {
	total := 0
	for i, x := range xs {
		if i&1023 == 0 && stop.Stopped() {
			break
		}
		total += x
	}
	return total
}

// unannotated loops owe nothing.
func unannotated(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}
