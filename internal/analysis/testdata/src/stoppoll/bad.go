// Deliberately-broken fixture for the stoppoll analyzer. Never
// compiled into the module.
package stoppoll

import "nullgraph/internal/par"

// neverPolls promises cancellation but never reads the flag: a tripped
// Stop would wait out the whole loop.
func neverPolls(n int, stop *par.Stop) int {
	total := 0
	//nullgraph:cancelable
	for i := 0; i < n; i++ { // want `never polls the stop flag`
		total += i
	}
	_ = stop
	return total
}

// rangeNeverPolls covers the range-statement form.
func rangeNeverPolls(xs []int, stop *par.Stop) int {
	total := 0
	//nullgraph:cancelable
	for _, x := range xs { // want `never polls the stop flag`
		total += x
	}
	_ = stop
	return total
}

// dangling shows an annotation that detached from its loop.
func dangling(n int) int {
	//nullgraph:cancelable
	total := n * 2 // want-1 `annotation without a loop`
	return total
}

// wrongStopped polls a look-alike Stopped from the wrong type.
type fakeStop struct{}

func (fakeStop) Stopped() bool { return false }

func pollsWrongType(n int, stop fakeStop) int {
	total := 0
	//nullgraph:cancelable
	for i := 0; i < n; i++ { // want `never polls the stop flag`
		if stop.Stopped() {
			break
		}
		total += i
	}
	return total
}
