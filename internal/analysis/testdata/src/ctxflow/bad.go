// Deliberately-broken fixture for the ctxflow analyzer. Never compiled
// into the module.
package ctxflow

import "context"

// restart drops the caller's ctx on the floor mid-chain.
func restart(ctx context.Context, n int) error {
	return step(context.Background(), n) // want `context.Background inside a function with a ctx parameter`
}

// todoRestart is the TODO spelling of the same bug.
func todoRestart(ctx context.Context) error {
	return step(context.TODO(), 0) // want `context.TODO inside a function with a ctx parameter`
}

func step(ctx context.Context, n int) error {
	_ = ctx
	_ = n
	return nil
}

// holder smuggles a ctx past its call scope.
type holder struct {
	ctx context.Context
}

func store(ctx context.Context) *holder {
	h := &holder{}
	h.ctx = ctx // want `context.Context stored in struct field ctx`
	return h
}

func storeLit(ctx context.Context) holder {
	return holder{ctx: ctx} // want `stored in struct field via composite literal`
}

// fetch has a Context sibling; calling the bare name from a ctx-holding
// function breaks the chain.
func fetch(n int) error { return nil }

func fetchContext(ctx context.Context, n int) error {
	_ = ctx
	return nil
}

func chain(ctx context.Context) error {
	return fetch(1) // want `fetch is called from a function holding a ctx but fetchContext exists`
}

// client covers the method-sibling form.
type client struct{}

func (c *client) get() error { return nil }

func (c *client) getContext(ctx context.Context) error {
	_ = ctx
	return nil
}

func use(ctx context.Context, c *client) error {
	return c.get() // want `get is called from a function holding a ctx but getContext exists`
}
