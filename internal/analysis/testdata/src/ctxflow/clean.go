// Clean fixture for the ctxflow analyzer: the sanctioned shapes.
package ctxflow

import "context"

// wrapper is the Foo/FooContext convenience shape: no ctx parameter, so
// starting the chain at Background is exactly its job.
func wrapper(n int) error {
	return wrapped(context.Background(), n)
}

// wrapped threads its ctx into a ctx-accepting callee.
func wrapped(ctx context.Context, n int) error {
	return threaded(ctx, n)
}

func threaded(ctx context.Context, n int) error {
	_ = ctx
	_ = n
	return nil
}

// noSibling calls a helper with no Context variant: nothing to demand.
func noSibling(ctx context.Context) int {
	_ = ctx
	return helper(2)
}

func helper(n int) int { return n * 2 }

// viaSibling calls the Context variant directly.
func viaSibling(ctx context.Context) error {
	return threadedContext(ctx)
}

func threadedContext(ctx context.Context) error {
	_ = ctx
	return nil
}
