// Deliberately-broken fixture for the hotpathalloc analyzer. Never
// compiled into the module.
package hotpathalloc

import "fmt"

type table struct {
	m map[uint64]int
}

// mapOps hits the map index on both sides of an assignment.
//
//nullgraph:hotpath
func mapOps(t *table, k uint64) int {
	t.m[k] = 1    // want `map access`
	return t.m[k] // want `map access`
}

type multiset struct {
	counts map[uint64]int
}

// acceptByCount is a swap acceptance policy that consults live
// multiplicities from a map — the vertex-labeled cells' serial
// machinery, which must never leak into an annotated parallel kernel.
//
//nullgraph:hotpath
func acceptByCount(ms *multiset, gk, hk uint64) bool {
	if ms.counts[gk] > 0 { // want `map access`
		return false
	}
	return ms.counts[hk] == 0 // want `map access`
}

// mapLife makes, ranges, and deletes.
//
//nullgraph:hotpath
func mapLife(t *table) int {
	t.m = make(map[uint64]int) // want `make\(map\)`
	total := 0
	for _, v := range t.m { // want `map range`
		total += v
	}
	delete(t.m, 0) // want `map delete`
	return total
}

// formatted boxes its operand for fmt.
//
//nullgraph:hotpath
func formatted(x int) string {
	return fmt.Sprintf("%d", x) // want `fmt.Sprintf` `passed as interface`
}

// freshAppend spills into a new backing array instead of self-
// appending into a reused buffer.
//
//nullgraph:hotpath
func freshAppend(xs []int, x int) []int {
	ys := append(xs, x) // want `append outside the self-append form`
	return ys
}

// boxed converts a concrete value at an interface parameter.
//
//nullgraph:hotpath
func boxed(x int) {
	sink(x) // want `passed as interface`
}

func sink(v any) { _ = v }

// explicitConversion boxes via a conversion expression.
//
//nullgraph:hotpath
func explicitConversion(x int) any {
	return any(x) // want `conversion of int to interface`
}

// capturing returns a closure over its locals: the closure and the
// captured word both escape.
//
//nullgraph:hotpath
func capturing(n int) func() int {
	total := 0
	return func() int { // want `closure captures "total"` `closure captures "n"`
		total += n
		return total
	}
}
