package hotpathalloc

import "fmt"

// selfAppend is the sanctioned append form: amortized growth into the
// caller's reused buffer.
//
//nullgraph:hotpath
func selfAppend(xs []int, x int) []int {
	xs = append(xs, x)
	return xs
}

// fieldSelfAppend covers self-append through a field chain.
//
//nullgraph:hotpath
func fieldSelfAppend(j *journal, slot uint32) {
	j.slots = append(j.slots, slot)
}

type journal struct {
	slots []uint32
}

// coldPanic may format freely: panic arguments are the terminal path.
//
//nullgraph:hotpath
func coldPanic(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("negative count %d", n))
	}
	return n * 2
}

// allowedLookup demonstrates the audited escape hatch.
//
//nullgraph:hotpath
func allowedLookup(m map[int]int, k int) int {
	return m[k] //nullgraph:allow hotpathalloc cold slow-path lookup, measured irrelevant
}

// writer is a slice-backed probe table standing in for the swap
// engine's iteration-frozen hash table.
type writer struct {
	slots []uint64
}

//nullgraph:hotpath
func (w *writer) testAndSet(k uint64) bool {
	i := int(k % uint64(len(w.slots)))
	for w.slots[i] != 0 {
		if w.slots[i] == k {
			return true
		}
		if i++; i == len(w.slots) {
			i = 0
		}
	}
	w.slots[i] = k
	return false
}

// acceptPolicy mirrors internal/swap's per-space acceptance shape —
// loop rejection plus table probes on concrete types, no maps, no
// boxing — which must stay silent under the analyzer.
//
//nullgraph:hotpath
func acceptPolicy(w *writer, gu, gv, hu, hv int32, gk, hk uint64) bool {
	if gu == gv || hu == hv {
		return false
	}
	if w.testAndSet(gk) {
		return false
	}
	return !w.testAndSet(hk)
}

// plainWork exercises allocation-free constructs the analyzer must not
// flag: slices, arithmetic, calls with concrete params, stack structs.
//
//nullgraph:hotpath
func plainWork(xs []int) int {
	type pair struct{ a, b int }
	total := 0
	for i := range xs {
		p := pair{a: xs[i], b: i}
		total += combine(p.a, p.b)
	}
	return total
}

func combine(a, b int) int { return a + b }
