// Clean fixture for the schemaver analyzer: the struct matches its
// locked manifest exactly, so nothing fires.
package schemaver

// CleanSchema is the version constant the directive names.
const CleanSchema = "fixture/clean-report/v1"

// CleanReport matches schemas.lock field-for-field.
//
//nullgraph:schema CleanSchema
type CleanReport struct {
	Schema string `json:"schema"`
	Count  int    `json:"count"`
	Nested Nested `json:"nested"`
}

// Nested exercises the reachable-struct walk: its fields are part of
// the locked schema too.
type Nested struct {
	Rate float64 `json:"rate"`
}
