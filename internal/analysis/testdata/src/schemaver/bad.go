// Deliberately-broken fixture for the schemaver analyzer. Never
// compiled into the module. The lock next to this file (schemas.lock)
// records the "committed" state each struct drifted from.
package schemaver

// DriftSchema kept its version while the struct below mutated.
const DriftSchema = "fixture/drift-report/v1"

// DriftReport drifted in all four ways without a version bump: a field
// added, one removed, one retyped, one re-tagged.
//
//nullgraph:schema DriftSchema
type DriftReport struct { // want `DriftReport.Added added` `DriftReport.Old removed` `DriftReport.Retyped retyped int -> int64` `DriftReport.Retagged json tag changed "retagged" -> "rt"`
	Schema   string `json:"schema"`
	Added    int    `json:"added"`
	Retyped  int64  `json:"retyped"`
	Retagged string `json:"rt"`
}

// BumpedSchema moved v1 -> v2 with the field change, but the lock was
// not regenerated.
const BumpedSchema = "fixture/bumped-report/v2"

// BumpedReport is the healthy path caught one step early: bump done,
// lock refresh missing.
//
//nullgraph:schema BumpedSchema
type BumpedReport struct { // want `schema fixture/bumped-report bumped v1 -> v2`
	Schema string `json:"schema"`
	Extra  int    `json:"extra"`
}

// UnlockedSchema has no entry in the lock at all.
const UnlockedSchema = "fixture/unlocked-report/v1"

// UnlockedReport must self-register via -update-schemas.
//
//nullgraph:schema UnlockedSchema
type UnlockedReport struct { // want `has no entry in schemas.lock`
	Schema string `json:"schema"`
}

// Dangling names a constant that does not exist.
//
//nullgraph:schema NoSuchConst
type Dangling struct { // want `no such constant`
	Schema string `json:"schema"`
}

// Bare forgot the constant name entirely.
//
//nullgraph:schema
type Bare struct { // want `needs the version constant's name`
	Schema string `json:"schema"`
}
