package rngshare

import (
	"nullgraph/internal/par"
	"nullgraph/internal/rng"
)

// perWorkerStreams is the sanctioned pattern: a slice of derived
// streams indexed by worker ID. Capturing the slice is fine — each
// worker touches only its own element.
func perWorkerStreams(n int) {
	streams := rng.Streams(42, 4)
	par.ForRange(n, 4, func(w int, r par.Range) {
		src := streams[w]
		for i := r.Begin; i < r.End; i++ {
			_ = src.Uint64()
		}
	})
}

// stackLocal is the other sanctioned pattern: a Source living entirely
// inside the worker body, reseeded from (seed, worker).
func stackLocal(n int) {
	par.ForRange(n, 4, func(w int, r par.Range) {
		var src rng.Source
		src.Reseed(rng.Mix64(42) ^ rng.Mix64(uint64(w)))
		for i := r.Begin; i < r.End; i++ {
			_ = src.Uint64()
		}
	})
}

// serialUse never crosses a boundary: plain calls may share freely.
func serialUse() uint64 {
	src := rng.New(9)
	total := src.Uint64()
	total += src.Uint64()
	return total
}
