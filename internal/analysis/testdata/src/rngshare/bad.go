// Deliberately-broken fixture for the rngshare analyzer: RNG streams
// crossing concurrency boundaries. Never compiled into the module.
package rngshare

import (
	"nullgraph/internal/par"
	"nullgraph/internal/rng"
)

// sharedAcrossPool captures one stream in a par-dispatched body: every
// worker advances the same xoshiro state concurrently.
func sharedAcrossPool(n int) {
	src := rng.New(1)
	par.For(n, 4, func(i int) {
		_ = src.Uint64() // want `RNG stream "src" captured by a closure dispatched via par.For`
	})
}

// sharedGoroutine captures a stream in a raw goroutine.
func sharedGoroutine(done chan struct{}) {
	src := rng.New(2)
	go func() {
		_ = src.Uint64() // want `captured by a closure dispatched via a goroutine`
		close(done)
	}()
}

// copiedIntoGoroutine duplicates a stream by value: both goroutines
// draw the same sequence, correlating "independent" samples.
func copiedIntoGoroutine() {
	src := rng.New(3)
	go consume(*src) // want `RNG stream passed into a goroutine`
}

func consume(s rng.Source) { _ = s.Uint64() }

// splitmixShared covers the seed-expander type too.
func splitmixShared(n int) {
	sm := rng.NewSplitMix64(7)
	par.ForRange(n, 2, func(w int, r par.Range) {
		_ = sm.Next() // want `RNG stream "sm" captured`
	})
}
