// Deliberately-broken fixture for the errpropagate analyzer. Never
// compiled into the module.
package errpropagate

import (
	"io"

	"nullgraph/internal/graph"
)

// bareStatement drops the write error on the floor: a full disk turns
// into a silently truncated edge list.
func bareStatement(w io.Writer, el *graph.EdgeList) {
	graph.WriteEdgeListText(w, el) // want `unchecked error`
}

// blankAssign discards the read error while keeping the value.
func blankAssign(r io.Reader) *graph.EdgeList {
	el, _ := graph.ReadEdgeListText(r) // want `discarded into _`
	return el
}

// pairwiseBlank discards a single error result.
func pairwiseBlank(w io.Writer, el *graph.EdgeList) {
	_ = graph.WriteEdgeListText(w, el) // want `discarded into _`
}

// deferredDrop loses the flush error at function exit, the classic
// "output looked fine" failure.
func deferredDrop(w io.Writer, el *graph.EdgeList) {
	defer graph.WriteEdgeListBinary(w, el) // want `deferred call`
}

// goroutineDrop fires the write into the void.
func goroutineDrop(w io.Writer, el *graph.EdgeList) {
	go graph.WriteEdgeListText(w, el) // want `goroutine call`
}
