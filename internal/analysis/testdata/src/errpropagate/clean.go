package errpropagate

import (
	"fmt"
	"io"
	"os"

	"nullgraph/internal/graph"
	"nullgraph/internal/rng"
)

// checked is the required shape: every module error reaches a branch.
func checked(w io.Writer, r io.Reader) error {
	el, err := graph.ReadEdgeListText(r)
	if err != nil {
		return err
	}
	if err := graph.WriteEdgeListText(w, el); err != nil {
		return err
	}
	return nil
}

// stdlibFireAndForget is idiomatic CLI noise: non-module callees are
// out of scope even when they return errors.
func stdlibFireAndForget() {
	fmt.Fprintln(os.Stderr, "progress: 50%")
}

// noErrorResult calls a module API that has nothing to check.
func noErrorResult(seed uint64) uint64 {
	src := rng.New(seed)
	return src.Uint64()
}

// allowed documents a deliberate drop with the audited escape hatch.
func allowed(w io.Writer, el *graph.EdgeList) {
	graph.WriteEdgeListText(w, el) //nullgraph:allow errpropagate best-effort debug dump
}
