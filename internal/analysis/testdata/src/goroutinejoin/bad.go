// Deliberately-broken fixture for the goroutinejoin analyzer. Never
// compiled into the module.
package goroutinejoin

// fireAndForget launches a dynamic callee: nothing about its lifecycle
// is provable from here.
func fireAndForget(f func()) {
	go f() // want `not provably joined`
}

// leakyWorker never parks on anything the spawner controls.
func leakyWorker(counter *int) {
	go func() { // want `not provably joined`
		for {
			*counter++
		}
	}()
}

// unbufferedSend blocks forever if the receiver went away: a send to an
// unbuffered channel is not join evidence.
func unbufferedSend() chan int {
	ch := make(chan int)
	go func() { // want `not provably joined`
		ch <- 1
	}()
	return ch
}

// spin is a same-package callee with no join evidence in its body.
func spin(n int) {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	_ = total
}

func spawnSpin() {
	go spin(1000) // want `not provably joined`
}

// nestedEvidence shows that evidence inside an inner goroutine joins
// the inner one only: the outer literal itself never parks.
func nestedEvidence(done chan struct{}) {
	go func() { // want `not provably joined`
		go func() {
			<-done
		}()
	}()
}
