// Clean fixture for the goroutinejoin analyzer: one function per
// accepted join shape.
package goroutinejoin

import "sync"

// waitGroupJoin is the ForRange shape: Done in the body, Add/Wait in
// the spawner.
func waitGroupJoin(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// selectJoin is the WatchContext shape: the goroutine parks on a select
// until the spawner signals quit.
func selectJoin(signal, quit chan struct{}) {
	go func() {
		select {
		case <-signal:
		case <-quit:
		}
	}()
}

// bareReceiveJoin parks on a single receive.
func bareReceiveJoin(done chan struct{}) {
	go func() {
		<-done
	}()
}

// bufferedSendJoin is the nullgraphd shape: the whole body is one send
// into a buffered channel, so the goroutine cannot outlive it.
func bufferedSendJoin(work func() error) <-chan error {
	errc := make(chan error, 1)
	go func() { errc <- work() }()
	return errc
}

// pool is the par.Pool shape: a named same-package method whose body
// ranges over the task channel (exit on close) and Dones the group.
type pool struct {
	tasks chan int
	wg    sync.WaitGroup
}

func (p *pool) worker() {
	for range p.tasks {
		p.wg.Done()
	}
}

func newPool(width int) *pool {
	p := &pool{tasks: make(chan int, width)}
	for i := 0; i < width; i++ {
		go p.worker()
	}
	return p
}
