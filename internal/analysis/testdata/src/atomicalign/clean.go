package atomicalign

import "sync/atomic"

// counter keeps the 64-bit word first: offset 0 on every layout.
type counter struct {
	hits int64
	flag int32
}

func bump(c *counter) {
	atomic.AddInt64(&c.hits, 1)
}

// twoWords keeps both 64-bit fields 8-aligned under 32-bit rules.
type twoWords struct {
	a int64
	b int64
}

func bumpSecond(t *twoWords) {
	atomic.AddInt64(&t.b, 1)
}

// wrapped uses the atomic wrapper type, which self-aligns.
type wrapped struct {
	flag int32
	hits atomic.Int64
}

func bumpWrapped(w *wrapped) {
	w.hits.Add(1)
}

// goodCell honors the padded contract: exactly one cache line.
//
//nullgraph:padded
type goodCell struct {
	n uint64
	_ [56]byte
}

// plainLocal covers atomics on non-field operands, which the offset
// rule does not apply to (locals are allocator-aligned).
func plainLocal() int64 {
	var n int64
	atomic.AddInt64(&n, 1)
	return atomic.LoadInt64(&n)
}
