// Deliberately-broken fixture for the atomicalign analyzer. Never
// compiled into the module.
package atomicalign

import "sync/atomic"

// misaligned puts a 32-bit word before the 64-bit counter: under
// 32-bit layout hits lands at offset 4.
type misaligned struct {
	flag int32
	hits int64
}

func bumpMisaligned(c *misaligned) {
	atomic.AddInt64(&c.hits, 1) // want `32-bit offset 4`
}

func loadMisaligned(c *misaligned) int64 {
	return atomic.LoadInt64(&c.hits) // want `32-bit offset 4`
}

// nested reproduces the fault through an embedded struct.
type inner struct {
	tag  uint32
	seen uint64
}

type outer struct {
	inner
}

func bumpNested(o *outer) {
	atomic.AddUint64(&o.seen, 1) // want `32-bit offset 4`
}

// badCell claims the cache-line contract but is 8 bytes: 8 of them
// share one line and false-share.
//
//nullgraph:padded
type badCell struct { // want `not a multiple of 64`
	n uint64
}

// shortCell has a pad, just not enough of one.
//
//nullgraph:padded
type shortCell struct { // want `48 bytes, not a multiple of 64`
	n uint64
	_ [40]byte
}
