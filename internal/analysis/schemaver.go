package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strconv"
	"strings"
)

// SchemaVer locks the wire schemas of the serialized reports against a
// committed manifest. The repo's history shows why: RunReport went
// v1→v2→v3 and each bump was remembered by hand; nothing machine-checks
// that a struct edit and a version-string bump travel together.
//
// A report's root struct opts in with a //nullgraph:schema directive in
// its doc comment naming the package's version constant:
//
//	// RunReport is ...
//	//
//	//nullgraph:schema SchemaVersion
//	type RunReport struct { ... }
//
// The analyzer resolves the constant's value ("nullgraph/run-report/v3"
// = family "nullgraph/run-report", version "v3"), computes the current
// schema — every exported field of the root struct and of each
// same-module named struct reachable through its field types, with JSON
// tag and type — and diffs it against internal/analysis/schemas.lock:
//
//   - a field added, removed, retyped, or re-tagged while the version
//     string is unchanged is a finding (the silent-v1→v2 bug class);
//   - a version bump whose lock entry was not regenerated is a finding
//     pointing at `nullvet -update-schemas` (make lint-fix-schemas);
//   - a schema family missing from the lock entirely is a finding with
//     the same pointer, so new reports self-register.
//
// The lock is regenerated, never hand-edited: -update-schemas rewrites
// it from the source of truth (the structs), and the committed diff is
// the review surface.
var SchemaVer = &Analyzer{
	Name: "schemaver",
	Doc:  "structs marshaled under a //nullgraph:schema directive must bump their version string when fields change (lock: internal/analysis/schemas.lock)",
	AppliesTo: func(pkgPath string) bool {
		return pkgPath == "nullgraph/internal/obs" || pkgPath == "nullgraph/internal/statcheck"
	},
	Run: runSchemaVer,
}

// SchemaField is one exported field of a schema's reachable struct set.
type SchemaField struct {
	// Struct is the owning struct's qualified name
	// ("nullgraph/internal/obs.RunReport").
	Struct string
	// Name is the Go field name.
	Name string
	// JSON is the field's full json tag value ("stop,omitempty"; empty
	// when untagged).
	JSON string
	// Type is the field's type with full package-path qualifiers.
	Type string
}

func (f SchemaField) key() string { return f.Struct + "." + f.Name }

// SchemaManifest is one schema family's locked (or computed) state.
type SchemaManifest struct {
	// Family is the version string minus its trailing version
	// ("nullgraph/run-report").
	Family string
	// Version is the trailing version component ("v3").
	Version string
	// Fields lists the reachable exported fields, in BFS/declaration
	// order. Comparison is order-insensitive.
	Fields []SchemaField
}

// SchemaLock is the parsed schemas.lock manifest.
type SchemaLock struct {
	Schemas map[string]*SchemaManifest // keyed by Family
}

// schemaDecl ties a computed manifest to the struct declaration it was
// computed from, for diagnostic positions.
type schemaDecl struct {
	pos      token.Pos
	manifest *SchemaManifest
}

// schemaDirectiveErr is a malformed //nullgraph:schema directive.
type schemaDirectiveErr struct {
	pos token.Pos
	msg string
}

func runSchemaVer(pass *Pass) {
	decls, errs := collectSchemaDecls(pass.Fset, pass.Files, pass.Pkg, pass.Info)
	for _, e := range errs {
		pass.Reportf(e.pos, "%s", e.msg)
	}
	if len(decls) == 0 {
		return
	}
	lock, err := pass.Session.SchemaLock()
	if err != nil {
		pass.Reportf(decls[0].pos, "cannot read schemas.lock: %v", err)
		return
	}
	for _, d := range decls {
		diffSchema(pass, d, lock.Schemas[d.manifest.Family])
	}
}

// diffSchema reports the drift between a computed schema and its locked
// counterpart.
func diffSchema(pass *Pass, d schemaDecl, locked *SchemaManifest) {
	m := d.manifest
	if locked == nil {
		pass.Reportf(d.pos, "schema %s/%s has no entry in schemas.lock; run `nullvet -update-schemas` (make lint-fix-schemas) and commit the lock", m.Family, m.Version)
		return
	}
	if m.Version != locked.Version {
		if !schemaFieldsEqual(m.Fields, locked.Fields) {
			// The healthy bump path: fields changed and the version moved
			// with them — only the lock refresh remains.
			pass.Reportf(d.pos, "schema %s bumped %s -> %s: run `nullvet -update-schemas` (make lint-fix-schemas) to refresh schemas.lock", m.Family, locked.Version, m.Version)
		} else {
			pass.Reportf(d.pos, "schema %s version changed %s -> %s with identical fields: refresh schemas.lock with `nullvet -update-schemas`, or revert the gratuitous bump", m.Family, locked.Version, m.Version)
		}
		return
	}
	// Same version: any field drift is the silent-mutation bug.
	cur := map[string]SchemaField{}
	for _, f := range m.Fields {
		cur[f.key()] = f
	}
	old := map[string]SchemaField{}
	for _, f := range locked.Fields {
		old[f.key()] = f
	}
	var msgs []string
	for _, f := range m.Fields {
		o, ok := old[f.key()]
		switch {
		case !ok:
			msgs = append(msgs, fmt.Sprintf("field %s added", f.key()))
		case o.Type != f.Type:
			msgs = append(msgs, fmt.Sprintf("field %s retyped %s -> %s", f.key(), o.Type, f.Type))
		case o.JSON != f.JSON:
			msgs = append(msgs, fmt.Sprintf("field %s json tag changed %q -> %q", f.key(), o.JSON, f.JSON))
		}
	}
	for _, f := range locked.Fields {
		if _, ok := cur[f.key()]; !ok {
			msgs = append(msgs, fmt.Sprintf("field %s removed", f.key()))
		}
	}
	sort.Strings(msgs)
	for _, msg := range msgs {
		pass.Reportf(d.pos, "%s without bumping schema %s/%s: bump the version constant and regenerate schemas.lock (`nullvet -update-schemas`)", msg, m.Family, m.Version)
	}
}

func schemaFieldsEqual(a, b []SchemaField) bool {
	if len(a) != len(b) {
		return false
	}
	am := map[string]SchemaField{}
	for _, f := range a {
		am[f.key()] = f
	}
	for _, f := range b {
		if am[f.key()] != f {
			return false
		}
	}
	return true
}

// collectSchemaDecls finds every //nullgraph:schema directive in the
// package and computes its manifest. Malformed directives come back as
// positioned errors rather than aborting, so one bad annotation cannot
// mask drift in another schema.
func collectSchemaDecls(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]schemaDecl, []schemaDirectiveErr) {
	var decls []schemaDecl
	var errs []schemaDirectiveErr
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				constName, ok := directiveArgs(doc, "schema")
				if !ok {
					continue
				}
				pos := ts.Pos()
				if constName == "" {
					errs = append(errs, schemaDirectiveErr{pos, "//nullgraph:schema needs the version constant's name: //nullgraph:schema SchemaVersion"})
					continue
				}
				family, version, err := schemaVersionOf(pkg, constName)
				if err != nil {
					errs = append(errs, schemaDirectiveErr{pos, err.Error()})
					continue
				}
				obj := info.Defs[ts.Name]
				var named *types.Named
				if obj != nil {
					named = namedOf(obj.Type())
				}
				if named == nil {
					errs = append(errs, schemaDirectiveErr{pos, "//nullgraph:schema must annotate a named struct type"})
					continue
				}
				if _, ok := named.Underlying().(*types.Struct); !ok {
					errs = append(errs, schemaDirectiveErr{pos, "//nullgraph:schema must annotate a struct type"})
					continue
				}
				decls = append(decls, schemaDecl{pos: pos, manifest: &SchemaManifest{
					Family:  family,
					Version: version,
					Fields:  schemaFieldsOf(named),
				}})
			}
		}
	}
	return decls, errs
}

// schemaVersionOf resolves the named string constant and splits its
// value into (family, version) at the last '/'.
func schemaVersionOf(pkg *types.Package, constName string) (family, version string, err error) {
	obj := pkg.Scope().Lookup(constName)
	c, ok := obj.(*types.Const)
	if !ok {
		return "", "", fmt.Errorf("//nullgraph:schema %s: no such constant in package %s", constName, pkg.Path())
	}
	if c.Val().Kind() != constant.String {
		return "", "", fmt.Errorf("//nullgraph:schema %s: constant is not a string", constName)
	}
	v := constant.StringVal(c.Val())
	i := strings.LastIndexByte(v, '/')
	if i <= 0 || i == len(v)-1 {
		return "", "", fmt.Errorf("//nullgraph:schema %s: value %q is not of the form family/vN", constName, v)
	}
	return v[:i], v[i+1:], nil
}

// schemaFieldsOf walks the exported-field graph from root: the root
// struct's exported fields, plus — breadth-first — those of every named
// struct from the same module reachable through field types (behind
// pointers, slices, arrays, and map values). Standard-library types
// (time.Duration, etc.) are leaves: their layout is not this module's
// schema to lock.
func schemaFieldsOf(root *types.Named) []SchemaField {
	qual := func(p *types.Package) string { return p.Path() }
	rootSeg := modSegment(root.Obj().Pkg().Path())

	var fields []SchemaField
	seen := map[*types.Named]bool{root: true}
	queue := []*types.Named{root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		st, ok := n.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		structName := n.Obj().Pkg().Path() + "." + n.Obj().Name()
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue
			}
			fields = append(fields, SchemaField{
				Struct: structName,
				Name:   f.Name(),
				JSON:   reflect.StructTag(st.Tag(i)).Get("json"),
				Type:   types.TypeString(f.Type(), qual),
			})
			for _, next := range reachableStructs(f.Type(), rootSeg) {
				if !seen[next] {
					seen[next] = true
					queue = append(queue, next)
				}
			}
		}
	}
	return fields
}

// modSegment returns the first path segment of an import path — the
// module discriminator used to stop the reachability walk at foreign
// types.
func modSegment(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

// reachableStructs returns the named struct types from the same module
// segment reachable through t without crossing another named struct.
func reachableStructs(t types.Type, rootSeg string) []*types.Named {
	var out []*types.Named
	var walk func(t types.Type)
	walk = func(t types.Type) {
		t = types.Unalias(t)
		switch tt := t.(type) {
		case *types.Named:
			obj := tt.Obj()
			if obj.Pkg() != nil && modSegment(obj.Pkg().Path()) == rootSeg {
				if _, ok := tt.Underlying().(*types.Struct); ok {
					out = append(out, tt)
					return
				}
			}
		case *types.Pointer:
			walk(tt.Elem())
		case *types.Slice:
			walk(tt.Elem())
		case *types.Array:
			walk(tt.Elem())
		case *types.Map:
			walk(tt.Elem())
		}
	}
	walk(t)
	return out
}

// CollectSchemas computes every schema manifest declared in pkg; a
// malformed directive is an error here (the -update-schemas path must
// not write a lock that silently omits a schema).
func CollectSchemas(pkg *Package) ([]*SchemaManifest, error) {
	decls, errs := collectSchemaDecls(pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
	if len(errs) > 0 {
		e := errs[0]
		return nil, fmt.Errorf("%s: %s", pkg.Fset.Position(e.pos), e.msg)
	}
	var out []*SchemaManifest
	for _, d := range decls {
		out = append(out, d.manifest)
	}
	return out, nil
}

// schemaLockHeader introduces the generated lock file.
const schemaLockHeader = `# nullvet schema manifest: the locked wire schemas of this module's
# serialized reports. Generated by nullvet -update-schemas (make
# lint-fix-schemas); do not edit by hand. The schemaver analyzer fails
# the lint gate when a schema struct drifts from this file without a
# version-string bump.`

// FormatSchemaLock renders manifests as the committed lock file,
// deterministically (families sorted, fields in computed order).
func FormatSchemaLock(manifests []*SchemaManifest) string {
	sorted := append([]*SchemaManifest(nil), manifests...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Family < sorted[j].Family })
	var sb strings.Builder
	sb.WriteString(schemaLockHeader + "\n")
	for _, m := range sorted {
		fmt.Fprintf(&sb, "\nschema %s %s\n", m.Family, m.Version)
		for _, f := range m.Fields {
			fmt.Fprintf(&sb, "field %s.%s json=%q type=%s\n", f.Struct, f.Name, f.JSON, f.Type)
		}
	}
	return sb.String()
}

// ParseSchemaLock parses the lock-file format FormatSchemaLock emits.
func ParseSchemaLock(data string) (*SchemaLock, error) {
	lock := &SchemaLock{Schemas: map[string]*SchemaManifest{}}
	var cur *SchemaManifest
	for i, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
		case strings.HasPrefix(line, "schema "):
			parts := strings.Fields(line)
			if len(parts) != 3 {
				return nil, fmt.Errorf("schemas.lock line %d: want `schema <family> <version>`, got %q", i+1, line)
			}
			cur = &SchemaManifest{Family: parts[1], Version: parts[2]}
			lock.Schemas[cur.Family] = cur
		case strings.HasPrefix(line, "field "):
			if cur == nil {
				return nil, fmt.Errorf("schemas.lock line %d: field before any schema", i+1)
			}
			f, err := parseSchemaFieldLine(line)
			if err != nil {
				return nil, fmt.Errorf("schemas.lock line %d: %w", i+1, err)
			}
			cur.Fields = append(cur.Fields, f)
		default:
			return nil, fmt.Errorf("schemas.lock line %d: unrecognized line %q", i+1, line)
		}
	}
	return lock, nil
}

// parseSchemaFieldLine parses `field <struct>.<name> json="tag" type=T`.
func parseSchemaFieldLine(line string) (SchemaField, error) {
	rest := strings.TrimPrefix(line, "field ")
	qualified, rest, ok := strings.Cut(rest, " json=")
	if !ok {
		return SchemaField{}, fmt.Errorf("missing json= in %q", line)
	}
	tagQuoted, typ, ok := strings.Cut(rest, " type=")
	if !ok {
		return SchemaField{}, fmt.Errorf("missing type= in %q", line)
	}
	tag, err := strconv.Unquote(tagQuoted)
	if err != nil {
		return SchemaField{}, fmt.Errorf("bad json tag %s: %v", tagQuoted, err)
	}
	i := strings.LastIndexByte(qualified, '.')
	if i <= 0 {
		return SchemaField{}, fmt.Errorf("bad field name %q", qualified)
	}
	return SchemaField{Struct: qualified[:i], Name: qualified[i+1:], JSON: tag, Type: typ}, nil
}
