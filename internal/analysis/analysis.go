// Package analysis implements nullvet, the repo's custom static
// analyzer suite. It machine-checks the invariants DESIGN.md documents
// in prose and tests can only observe after the fact:
//
//   - rngshare: RNG streams are per-worker; a *rng.Source captured by a
//     goroutine closure or a par-dispatched loop body is a correlated- or
//     racy-stream bug (DESIGN.md §5, the paper's independent-stream
//     requirement).
//   - hotpathalloc: functions annotated //nullgraph:hotpath must avoid
//     constructs that heap-allocate (closure captures, interface
//     conversions, map operations, non-self append, fmt) so the
//     zero-allocation swap contract (§6) is enforced at the syntax level,
//     not just by the allocation benchmarks.
//   - stoppoll: loops annotated //nullgraph:cancelable must poll the
//     par.Stop flag (directly or by delegating to a *par.Stop-taking
//     callee), keeping the cancellation latency contract of §9 true as
//     loops are edited.
//   - atomicalign: 64-bit sync/atomic calls on struct fields must be
//     8-byte aligned under 32-bit layout rules, and structs annotated
//     //nullgraph:padded must remain cache-line multiples (the false-
//     sharing discipline of par.Cell, obs.Counters, hashtable.Writer).
//   - errpropagate: in cmd/ and internal/core, errors returned by this
//     module's own APIs must be checked, not dropped on the floor.
//
// The framework is a minimal, dependency-free reimplementation of the
// golang.org/x/tools go/analysis surface (Analyzer, Pass, want-comment
// fixtures) built on the standard library's go/parser, go/types and
// source importer: the build environment vendors no external modules,
// so x/tools itself is unavailable. The deliberate API parity keeps a
// future migration mechanical. See DESIGN.md §10.
//
// Suppression: a comment containing "//nullgraph:allow <analyzer>"
// (optionally followed by a reason) on the diagnosed line, or on the
// line directly above it, silences that analyzer for that line. Every
// allow is grep-able, so exemptions stay auditable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a resolved source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the identifier used in output and in allow comments.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// AppliesTo, when non-nil, restricts the packages the driver runs
	// this analyzer on (by import path). Fixture tests bypass it.
	AppliesTo func(pkgPath string) bool
	// Facts, when non-nil, runs over every loaded package before any
	// Run, recording cross-package facts into the session's store (see
	// FactStore). AppliesTo does not filter fact gathering: the facts a
	// scoped analyzer needs usually live outside its diagnostic scope.
	Facts func(pass *Pass)
	// Run inspects the package behind pass and reports findings.
	Run func(pass *Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Session is the cross-package state: the fact store and the schema
	// lock. Never nil under the driver or the fixture harness.
	Session *Session

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All is the full suite, in the order diagnostics are grouped.
var All = []*Analyzer{
	RngShare, HotPathAlloc, StopPoll, AtomicAlign, ErrPropagate,
	FingerprintComplete, SchemaVer, GoroutineJoin, CtxFlow,
}

// Names lists every analyzer's name, in suite order.
func Names() []string {
	names := make([]string, len(All))
	for i, a := range All {
		names[i] = a.Name
	}
	return names
}

// ByName resolves a comma-separated analyzer list ("rngshare,stoppoll").
// Unknown names error with the available set, so CLI callers can
// surface it verbatim.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q (available: %s)", name, strings.Join(Names(), ", "))
		}
	}
	return out, nil
}

// RunPackage runs analyzers over pkg under session s, honoring
// AppliesTo restrictions and //nullgraph:allow suppressions, and
// returns position-sorted diagnostics. Facts must already be gathered
// (GatherFacts) for analyzers that declare a Facts hook.
func RunPackage(s *Session, pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.AppliesTo != nil && !a.AppliesTo(pkg.ImportPath) {
			continue
		}
		runOne(s, pkg, a, &diags)
	}
	diags = filterAllowed(pkg, diags)
	sortDiagnostics(diags)
	return diags
}

// runFixture runs a single analyzer without AppliesTo filtering; the
// test harness uses it so fixtures exercise analyzers whose driver
// scope excludes the fixture's synthetic import path.
func runFixture(s *Session, pkg *Package, a *Analyzer) []Diagnostic {
	var diags []Diagnostic
	runOne(s, pkg, a, &diags)
	diags = filterAllowed(pkg, diags)
	sortDiagnostics(diags)
	return diags
}

func runOne(s *Session, pkg *Package, a *Analyzer, diags *[]Diagnostic) {
	a.Run(&Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Session:  s,
		diags:    diags,
	})
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// directivePrefix introduces every nullvet annotation comment.
const directivePrefix = "//nullgraph:"

// hasDirective reports whether the comment group carries the given
// //nullgraph:<name> directive (as a whole word: "hotpath" does not
// match "hotpath-ish").
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if directiveName(c.Text) == name {
			return true
		}
	}
	return false
}

// directiveArgs returns the trimmed text following //nullgraph:<name>
// in the comment group, and whether the directive is present at all.
func directiveArgs(doc *ast.CommentGroup, name string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		if directiveName(c.Text) != name {
			continue
		}
		rest := strings.TrimPrefix(c.Text, directivePrefix+name)
		return strings.TrimSpace(rest), true
	}
	return "", false
}

// directiveName extracts the directive word from a comment's raw text:
// "//nullgraph:hotpath reason" yields "hotpath"; non-directives yield
// "".
func directiveName(text string) string {
	if !strings.HasPrefix(text, directivePrefix) {
		return ""
	}
	rest := text[len(directivePrefix):]
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// filterAllowed drops diagnostics suppressed by a
// "//nullgraph:allow <analyzer...>" comment on the same line or the
// line directly above.
func filterAllowed(pkg *Package, diags []Diagnostic) []Diagnostic {
	// allowed[filename][line] holds analyzer names allowed on that line.
	allowed := map[string]map[int][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if directiveName(c.Text) != "allow" {
					continue
				}
				args := strings.Fields(strings.TrimPrefix(c.Text, directivePrefix+"allow"))
				pos := pkg.Fset.Position(c.Pos())
				m := allowed[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					allowed[pos.Filename] = m
				}
				// The allow covers its own line and the next one, so it
				// works both trailing the diagnosed code and on its own
				// line above it.
				m[pos.Line] = append(m[pos.Line], args...)
				m[pos.Line+1] = append(m[pos.Line+1], args...)
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		names := allowed[d.Pos.Filename][d.Pos.Line]
		suppressed := false
		for _, n := range names {
			if n == d.Analyzer {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}
