package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrPropagate bans swallowed errors from this module's own APIs in the
// binaries (cmd/...), the pipeline assembly layer (internal/core), and
// the long-running layers added since (internal/serve, internal/converge,
// internal/simplify) — the places where a dropped error silently turns
// a failed generation into a plausible-looking output file or metrics
// page. Flagged forms, for any call whose callee lives under the
// nullgraph module and returns an error:
//
//   - a call used as a bare statement (including `defer` and `go`);
//   - an error result assigned to the blank identifier.
//
// Third-party and standard-library calls are out of scope (idiomatic
// CLIs legitimately fire-and-forget fmt.Fprintf to stderr); the
// module's internal APIs return errors deliberately and every one of
// them is load-bearing. Exemptions: //nullgraph:allow errpropagate.
var ErrPropagate = &Analyzer{
	Name: "errpropagate",
	Doc:  "errors returned by nullgraph APIs must be checked in cmd/, internal/core, internal/serve, internal/converge, internal/simplify",
	AppliesTo: func(pkgPath string) bool {
		switch pkgPath {
		case "nullgraph/internal/core", "nullgraph/internal/serve",
			"nullgraph/internal/converge", "nullgraph/internal/simplify":
			return true
		}
		return strings.HasPrefix(pkgPath, "nullgraph/cmd/")
	},
	Run: runErrPropagate,
}

func runErrPropagate(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					reportDropped(pass, call, "call result ignored")
				}
			case *ast.DeferStmt:
				reportDropped(pass, n.Call, "deferred call's error ignored")
			case *ast.GoStmt:
				reportDropped(pass, n.Call, "goroutine call's error ignored")
			case *ast.AssignStmt:
				checkBlankError(pass, n)
			}
			return true
		})
	}
}

// reportDropped flags a statement-position call to a module API that
// returns an error.
func reportDropped(pass *Pass, call *ast.CallExpr, how string) {
	fn := moduleErrorCallee(pass, call)
	if fn == nil {
		return
	}
	pass.Reportf(call.Pos(), "unchecked error: %s returns an error and the %s; handle it or annotate //nullgraph:allow errpropagate", fn.FullName(), how)
}

// checkBlankError flags error results assigned to the blank identifier
// from module API calls.
func checkBlankError(pass *Pass, assign *ast.AssignStmt) {
	// Multi-result call: x, _ := f().
	if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		fn := moduleErrorCallee(pass, call)
		if fn == nil {
			return
		}
		sig := signatureOf(pass.Info, call)
		if sig == nil {
			return
		}
		for i, lhs := range assign.Lhs {
			if isBlank(lhs) && i < sig.Results().Len() && isErrorType(sig.Results().At(i).Type()) {
				pass.Reportf(lhs.Pos(), "error from %s discarded into _; handle it or annotate //nullgraph:allow errpropagate", fn.FullName())
			}
		}
		return
	}
	// Pairwise: _ = f().
	for i, lhs := range assign.Lhs {
		if !isBlank(lhs) || i >= len(assign.Rhs) {
			continue
		}
		call, ok := ast.Unparen(assign.Rhs[i]).(*ast.CallExpr)
		if !ok {
			continue
		}
		if fn := moduleErrorCallee(pass, call); fn != nil && isErrorType(pass.Info.TypeOf(call)) {
			pass.Reportf(lhs.Pos(), "error from %s discarded into _; handle it or annotate //nullgraph:allow errpropagate", fn.FullName())
		}
	}
}

// moduleErrorCallee returns the call's static callee when it is
// declared in this module and any of its results is an error.
func moduleErrorCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	path := fn.Pkg().Path()
	if path != "nullgraph" && !strings.HasPrefix(path, "nullgraph/") {
		return nil
	}
	results := fn.Type().(*types.Signature).Results()
	for i := 0; i < results.Len(); i++ {
		if isErrorType(results.At(i).Type()) {
			return fn
		}
	}
	return nil
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
