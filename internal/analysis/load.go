package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Dir        string
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader parses and type-checks packages with the standard library's
// source importer, so analyzers see full type information without any
// dependency beyond the Go toolchain. Imports (including the standard
// library) are type-checked from source once and cached for the
// loader's lifetime; construct one Loader per process and reuse it.
//
// A Loader is not safe for concurrent use.
type Loader struct {
	ctxt build.Context
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a Loader with a fresh file set and import cache.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		ctxt: build.Default,
		fset: fset,
		imp:  importer.ForCompiler(fset, "source", nil),
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load parses and type-checks the non-test Go files of one directory as
// importPath. Files excluded by build constraints for the host
// configuration (e.g. the nullgraph_noobs variants) are skipped, mirroring
// what a default build compiles.
func (l *Loader) Load(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		match, err := l.ctxt.MatchFile(dir, name)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", filepath.Join(dir, name), err)
		}
		if !match {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no buildable Go files", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", importPath, err)
	}
	return &Package{
		Dir:        dir,
		ImportPath: importPath,
		Fset:       l.fset,
		Files:      files,
		Types:      pkg,
		Info:       info,
	}, nil
}

// ModuleRoot walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func ModuleRoot(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod above %s", abs)
		}
		d = parent
	}
}

// PackageDirs returns every directory under root holding buildable
// non-test Go files, skipping hidden directories, testdata, and vendor
// trees — the same set "./..." denotes to the go tool. Paths come back
// sorted.
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// ImportPathFor maps a package directory to its import path within the
// module rooted at root with path modPath.
func ImportPathFor(root, modPath, dir string) (string, error) {
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return modPath, nil
	}
	return modPath + "/" + filepath.ToSlash(rel), nil
}
