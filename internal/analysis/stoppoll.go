package analysis

import (
	"go/ast"
	"go/types"
)

// StopPoll verifies the cooperative-cancellation contract of DESIGN.md
// §9: a loop annotated //nullgraph:cancelable (the annotation goes on
// the line directly above the `for`, or trailing on its line) must poll
// the par.Stop flag — either calling Stopped() on a *par.Stop somewhere
// in its body or condition, or delegating to a callee that takes a
// *par.Stop (and is therefore responsible for polling). A dangling
// annotation with no loop under it is also reported, so annotations
// can't silently detach from the code they guard as it is edited.
var StopPoll = &Analyzer{
	Name: "stoppoll",
	Doc:  "//nullgraph:cancelable loops must poll par.Stop (Stopped() or a *par.Stop-taking callee)",
	Run:  runStopPoll,
}

func runStopPoll(pass *Pass) {
	for _, f := range pass.Files {
		// Index every for/range statement by its starting line.
		loops := map[int]ast.Node{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loops[pass.Fset.Position(n.Pos()).Line] = n
			}
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if directiveName(c.Text) != "cancelable" {
					continue
				}
				line := pass.Fset.Position(c.Pos()).Line
				loop := loops[line+1] // annotation on its own line above the for
				if loop == nil {
					loop = loops[line] // trailing annotation on the for line
				}
				if loop == nil {
					pass.Reportf(c.Pos(), "cancelable annotation without a loop on this or the next line: move it onto the loop it guards")
					continue
				}
				if !pollsStop(pass, loop) {
					pass.Reportf(loop.Pos(), "cancelable loop never polls the stop flag: call stop.Stopped() at a coarse interval or delegate to a *par.Stop-taking callee")
				}
			}
		}
	}
}

// pollsStop reports whether the loop's subtree contains a
// (*par.Stop).Stopped() call or a call into a function accepting a
// *par.Stop parameter.
func pollsStop(pass *Pass, loop ast.Node) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pass.Info, call); fn != nil {
			sig := fn.Type().(*types.Signature)
			if fn.Name() == "Stopped" && sig.Recv() != nil && typeIs(sig.Recv().Type(), parPkgPath, "Stop") {
				found = true
				return false
			}
		}
		if sig := signatureOf(pass.Info, call); sig != nil && acceptsStop(sig) {
			found = true
			return false
		}
		return true
	})
	return found
}

// acceptsStop reports whether any parameter of sig is a *par.Stop.
func acceptsStop(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		t := params.At(i).Type()
		if _, ok := types.Unalias(t).(*types.Pointer); ok && typeIs(t, parPkgPath, "Stop") {
			return true
		}
	}
	return false
}
