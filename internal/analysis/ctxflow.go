package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow keeps cancellation continuous. The module's public contract
// is the Foo / FooContext pair (Generate/GenerateContext, and so on):
// the ctx-less name is a convenience wrapper, and everything reachable
// from a *Context entry point is supposed to stay cancelable all the
// way down to par.WatchContext. Three edits quietly break that chain,
// and each is a distinct finding:
//
//   - calling context.Background() or context.TODO() inside a function
//     that already has a context.Context parameter — the chain restarts
//     from an uncancelable root mid-flight, so the caller's deadline or
//     Ctrl-C never reaches the work below;
//   - storing a context.Context into a struct field (by assignment or
//     composite literal) — a stored ctx outlives the call it scoped and
//     resurfaces later with a stale deadline (the "do not store Contexts
//     inside a struct type" rule from the context package, enforced);
//   - inside a ctx-parameter function, calling a same-module function
//     or method Foo when a FooContext sibling exists — the wrapper is
//     for ctx-less callers; a caller holding a ctx must pass it on.
//
// The Foo-wrappers themselves (func Foo(...) { return FooContext(
// context.Background(), ...) }) have no ctx parameter, so the first
// rule leaves them alone by construction. Suppress deliberate
// exceptions with //nullgraph:allow ctxflow <reason>.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "functions holding a ctx must thread it: no Background()/TODO() restarts, no ctx stored in struct fields, no ctx-less sibling calls",
	AppliesTo: func(pkgPath string) bool {
		return modSegment(pkgPath) == "nullgraph"
	},
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxFlowFunc(pass, fd)
		}
	}
}

func checkCtxFlowFunc(pass *Pass, fd *ast.FuncDecl) {
	hasCtx := funcHasCtxParam(pass.Info, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(pass.Info, nn)
			if fn == nil {
				return true
			}
			if hasCtx {
				if full := fn.FullName(); full == "context.Background" || full == "context.TODO" {
					pass.Reportf(nn.Pos(), "%s inside a function with a ctx parameter restarts the cancellation chain: pass the ctx parameter through", full)
					return true
				}
				checkCtxSiblingCall(pass, nn, fn)
			}
		case *ast.AssignStmt:
			checkCtxFieldAssign(pass, nn)
		case *ast.CompositeLit:
			checkCtxCompositeLit(pass, nn)
		}
		return true
	})
}

// funcHasCtxParam reports whether fd declares a context.Context
// parameter.
func funcHasCtxParam(info *types.Info, fd *ast.FuncDecl) bool {
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if isCtxType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkCtxSiblingCall flags a same-module call to Foo from a ctx-holding
// function when a FooContext sibling exists and the call passes no ctx.
func checkCtxSiblingCall(pass *Pass, call *ast.CallExpr, fn *types.Func) {
	if fn.Pkg() == nil || modSegment(fn.Pkg().Path()) != modSegment(pass.Pkg.Path()) {
		return
	}
	if strings.HasSuffix(fn.Name(), "Context") {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	// Already ctx-aware: a ctx parameter anywhere in the signature means
	// the chain continues through this call.
	for i := 0; i < sig.Params().Len(); i++ {
		if isCtxType(sig.Params().At(i).Type()) {
			return
		}
	}
	sib := ctxSibling(fn, sig)
	if sib == nil {
		return
	}
	pass.Reportf(call.Pos(), "%s is called from a function holding a ctx but %s exists: call the Context variant so cancellation keeps flowing", fn.Name(), sib.Name())
}

// ctxSibling finds fn's <Name>Context counterpart — a package-scope
// function, or a method on the same receiver type — whose signature
// takes a context.Context.
func ctxSibling(fn *types.Func, sig *types.Signature) *types.Func {
	var obj types.Object
	if recv := sig.Recv(); recv != nil {
		obj, _, _ = types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), fn.Name()+"Context")
	} else {
		obj = fn.Pkg().Scope().Lookup(fn.Name() + "Context")
	}
	sib, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	ssig, ok := sib.Type().(*types.Signature)
	if !ok {
		return nil
	}
	for i := 0; i < ssig.Params().Len(); i++ {
		if isCtxType(ssig.Params().At(i).Type()) {
			return sib
		}
	}
	return nil
}

// checkCtxFieldAssign flags `x.Field = ctx` where Field is a struct
// field of type context.Context.
func checkCtxFieldAssign(pass *Pass, as *ast.AssignStmt) {
	for _, lhs := range as.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			continue
		}
		if !isCtxType(selection.Obj().Type()) {
			continue
		}
		pass.Reportf(lhs.Pos(), "context.Context stored in struct field %s: contexts are call-scoped, pass ctx as a parameter instead", selection.Obj().Name())
	}
}

// checkCtxCompositeLit flags `T{Ctx: ctx}` — a composite literal
// smuggling a Context into a struct field.
func checkCtxCompositeLit(pass *Pass, cl *ast.CompositeLit) {
	t := pass.Info.Types[cl].Type
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Struct); !ok {
		return
	}
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		vt := pass.Info.Types[kv.Value].Type
		if vt == nil || !isCtxType(vt) {
			continue
		}
		pass.Reportf(kv.Pos(), "context.Context stored in struct field via composite literal: contexts are call-scoped, pass ctx as a parameter instead")
	}
}
