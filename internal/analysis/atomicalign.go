package analysis

import (
	"go/ast"
	"go/types"
)

// AtomicAlign enforces the memory-layout discipline of the padded
// per-worker counters (par.Cell, obs.Counters, hashtable.Writer):
//
//  1. A 64-bit sync/atomic call (AddInt64, LoadUint64, CAS, ...) whose
//     operand is a struct field requires the field's offset to be a
//     multiple of 8 under 32-bit layout rules — on 32-bit platforms only
//     the first 64-bit-aligned word of an allocation is guaranteed
//     aligned, and a misaligned 64-bit atomic faults. atomic.Int64 /
//     atomic.Uint64 fields are exempt (they embed align64 and the
//     runtime guarantees them).
//  2. A struct annotated //nullgraph:padded must have a 64-bit size
//     that is a multiple of 64 bytes, so adjacent elements in a slice
//     of them never share a cache line (the false-sharing contract the
//     per-worker accumulators rely on).
var AtomicAlign = &Analyzer{
	Name: "atomicalign",
	Doc:  "64-bit atomics on struct fields must be 8-aligned under 32-bit layout; //nullgraph:padded structs must be cache-line multiples",
	Run:  runAtomicAlign,
}

// atomic64Funcs are the sync/atomic package functions operating on
// 64-bit words.
var atomic64Funcs = map[string]bool{
	"AddInt64": true, "AddUint64": true,
	"LoadInt64": true, "LoadUint64": true,
	"StoreInt64": true, "StoreUint64": true,
	"SwapInt64": true, "SwapUint64": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
}

const cacheLine = 64

func runAtomicAlign(pass *Pass) {
	sizes32 := types.SizesFor("gc", "386")
	sizes64 := types.SizesFor("gc", "amd64")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkAtomic64Call(pass, n, sizes32)
			case *ast.GenDecl:
				checkPaddedDecl(pass, n, sizes64)
			}
			return true
		})
	}
}

// checkAtomic64Call flags &struct.field operands of 64-bit atomics
// whose field offset is not 8-aligned under 32-bit layout.
func checkAtomic64Call(pass *Pass, call *ast.CallExpr, sizes32 types.Sizes) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !atomic64Funcs[fn.Name()] {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	unary, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok {
		return
	}
	sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	off, ok := fieldOffset(sizes32, selection)
	if !ok {
		return
	}
	if off%8 != 0 {
		pass.Reportf(call.Args[0].Pos(),
			"atomic.%s on field %s at 32-bit offset %d (not a multiple of 8): misaligned 64-bit atomics fault on 32-bit platforms; make it the first field, pad before it, or use atomic.%s",
			fn.Name(), sel.Sel.Name, off, alignedTypeFor(fn.Name()))
	}
}

// fieldOffset computes the selected field's byte offset within its
// outermost receiver struct under the given layout, following the
// selection's (possibly embedded) index path.
func fieldOffset(sizes types.Sizes, selection *types.Selection) (int64, bool) {
	t := selection.Recv()
	var off int64
	for _, idx := range selection.Index() {
		st, ok := deref(t).Underlying().(*types.Struct)
		if !ok {
			return 0, false
		}
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		off += sizes.Offsetsof(fields)[idx]
		t = st.Field(idx).Type()
	}
	return off, true
}

// alignedTypeFor names the sync/atomic wrapper type that fixes the
// alignment for the flagged function.
func alignedTypeFor(fn string) string {
	for _, suffix := range []string{"Uint64"} {
		if len(fn) >= len(suffix) && fn[len(fn)-len(suffix):] == suffix {
			return "Uint64"
		}
	}
	return "Int64"
}

// checkPaddedDecl verifies //nullgraph:padded struct types are
// cache-line multiples under 64-bit layout.
func checkPaddedDecl(pass *Pass, decl *ast.GenDecl, sizes64 types.Sizes) {
	for _, spec := range decl.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		doc := ts.Doc
		if doc == nil && len(decl.Specs) == 1 {
			doc = decl.Doc
		}
		if !hasDirective(doc, "padded") {
			continue
		}
		obj, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			pass.Reportf(ts.Pos(), "padded annotation on non-struct type %s", ts.Name.Name)
			continue
		}
		size := sizes64.Sizeof(st)
		if size%cacheLine != 0 {
			pass.Reportf(ts.Pos(),
				"padded struct %s is %d bytes, not a multiple of %d: adjacent elements in a slice share a cache line and false-share; grow the trailing pad by %d bytes",
				ts.Name.Name, size, cacheLine, cacheLine-size%cacheLine)
		}
	}
}
