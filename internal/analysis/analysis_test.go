package analysis

import (
	"go/token"
	"strings"
	"testing"
)

// pos builds a resolved position for diagnostic-level tests.
func pos(file string, line, col int) token.Position {
	return token.Position{Filename: file, Line: line, Column: col}
}

// TestFixtures runs every analyzer over its want-comment fixture
// package under testdata/src. Each fixture pair has a bad file whose
// diagnostics are pinned line-by-line and a clean file that must stay
// silent; both are loaded together as one package, so a silent bad
// finding or a noisy clean finding fails the same test.
func TestFixtures(t *testing.T) {
	ld := NewLoader()
	cases := []struct {
		analyzer *Analyzer
		fixture  string
	}{
		{RngShare, "rngshare"},
		{HotPathAlloc, "hotpathalloc"},
		{StopPoll, "stoppoll"},
		{AtomicAlign, "atomicalign"},
		{ErrPropagate, "errpropagate"},
		{FingerprintComplete, "fingerprintcomplete"},
		{SchemaVer, "schemaver"},
		{GoroutineJoin, "goroutinejoin"},
		{CtxFlow, "ctxflow"},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			RunFixture(t, ld, tc.analyzer, tc.fixture)
		})
	}
}

// TestByName covers the -only flag's resolver, including the
// exit-2-with-available-list contract cmd/nullvet builds on.
func TestByName(t *testing.T) {
	got, err := ByName("rngshare, stoppoll")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != RngShare || got[1] != StopPoll {
		t.Fatalf("ByName = %v, want [rngshare stoppoll]", got)
	}
	_, err = ByName("nosuch")
	if err == nil {
		t.Fatal("ByName(nosuch): expected error")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("ByName(nosuch) error %q does not list analyzer %q", err, name)
		}
	}
}

// TestNames pins the suite size: the serve/converge/space era runs nine
// analyzers.
func TestNames(t *testing.T) {
	if n := len(Names()); n < 9 {
		t.Fatalf("suite has %d analyzers, want >= 9: %v", n, Names())
	}
}

// TestParseWant pins the fixture-comment grammar, including the
// line-offset extension.
func TestParseWant(t *testing.T) {
	cases := []struct {
		text   string
		want   []string
		offset int
		ok     bool
	}{
		{"// want `a b` `c`", []string{"a b", "c"}, 0, true},
		{`// want "quoted"`, []string{"quoted"}, 0, true},
		{"// want-1 `above`", []string{"above"}, -1, true},
		{"// want+2 `below`", []string{"below"}, 2, true},
		{"// wanton `x`", nil, 0, false},
		{"// plain comment", nil, 0, false},
	}
	for _, tc := range cases {
		pats, off, ok := parseWant(tc.text)
		if ok != tc.ok || off != tc.offset || len(pats) != len(tc.want) {
			t.Errorf("parseWant(%q) = %v, %d, %v; want %v, %d, %v",
				tc.text, pats, off, ok, tc.want, tc.offset, tc.ok)
			continue
		}
		for i := range pats {
			if pats[i] != tc.want[i] {
				t.Errorf("parseWant(%q)[%d] = %q, want %q", tc.text, i, pats[i], tc.want[i])
			}
		}
	}
}

// TestBaselineRoundTrip covers the known-debt file: parse/format
// round-trip, filtering, and stale-entry detection.
func TestBaselineRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		{Pos: pos("/mod/a/x.go", 10, 2), Analyzer: "ctxflow", Message: "ctx stored"},
		{Pos: pos("/mod/b/y.go", 3, 1), Analyzer: "schemaver", Message: "field added"},
	}
	text := FormatBaseline("/mod", diags)
	b, err := ParseBaseline(text)
	if err != nil {
		t.Fatalf("ParseBaseline(FormatBaseline(...)): %v", err)
	}
	if b.Len() != 2 {
		t.Fatalf("baseline has %d entries, want 2", b.Len())
	}

	// Both findings suppressed; a new one passes through.
	extra := append(diags, Diagnostic{Pos: pos("/mod/a/x.go", 99, 1), Analyzer: "ctxflow", Message: "new finding"})
	kept, suppressed := b.Filter("/mod", extra)
	if len(kept) != 1 || kept[0].Message != "new finding" {
		t.Fatalf("Filter kept %v, want only the new finding", kept)
	}
	if len(suppressed) != 2 {
		t.Fatalf("Filter suppressed %d, want 2", len(suppressed))
	}

	// Line numbers must not matter: the same finding on a shifted line
	// still matches its entry.
	moved := []Diagnostic{{Pos: pos("/mod/a/x.go", 500, 7), Analyzer: "ctxflow", Message: "ctx stored"}}
	if kept, _ := b.Filter("/mod", moved); len(kept) != 0 {
		t.Fatalf("baseline match depends on line numbers: kept %v", kept)
	}

	// A fixed finding leaves its entry stale.
	stale := b.Unused("/mod", diags[:1])
	if len(stale) != 1 || !strings.Contains(stale[0], "schemaver") {
		t.Fatalf("Unused = %v, want the schemaver entry", stale)
	}

	// A nil baseline keeps everything.
	var nilB *Baseline
	if kept, _ := nilB.Filter("/mod", diags); len(kept) != 2 {
		t.Fatal("nil baseline must keep all diagnostics")
	}

	if _, err := ParseBaseline("not a baseline line"); err == nil {
		t.Fatal("ParseBaseline: malformed line must error")
	}
}

// TestSchemaLockRoundTrip covers the generated manifest format.
func TestSchemaLockRoundTrip(t *testing.T) {
	manifests := []*SchemaManifest{{
		Family:  "nullgraph/run-report",
		Version: "v3",
		Fields: []SchemaField{
			{Struct: "nullgraph/internal/obs.RunReport", Name: "Schema", JSON: "schema", Type: "string"},
			{Struct: "nullgraph/internal/obs.RunReport", Name: "Stop", JSON: "stop,omitempty", Type: "*nullgraph/internal/obs.StopReport"},
			{Struct: "nullgraph/internal/obs.RunReport", Name: "Untagged", JSON: "", Type: "int"},
		},
	}}
	lock, err := ParseSchemaLock(FormatSchemaLock(manifests))
	if err != nil {
		t.Fatalf("ParseSchemaLock(FormatSchemaLock(...)): %v", err)
	}
	got, ok := lock.Schemas["nullgraph/run-report"]
	if !ok {
		t.Fatal("family missing after round trip")
	}
	if got.Version != "v3" || len(got.Fields) != 3 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	for i, f := range got.Fields {
		if f != manifests[0].Fields[i] {
			t.Errorf("field %d: got %+v, want %+v", i, f, manifests[0].Fields[i])
		}
	}

	if _, err := ParseSchemaLock("field before.any.schema json=\"x\" type=int"); err == nil {
		t.Fatal("ParseSchemaLock: field before schema must error")
	}
	if _, err := ParseSchemaLock("gibberish"); err == nil {
		t.Fatal("ParseSchemaLock: unknown line must error")
	}
}

// TestFactStore covers the cross-package fact map.
func TestFactStore(t *testing.T) {
	fs := NewFactStore()
	if _, ok := fs.Get("nullgraph.Options.CollectReport", "nofingerprint"); ok {
		t.Fatal("empty store must miss")
	}
	fs.Put("nullgraph.Options.CollectReport", "nofingerprint", "diagnostics only")
	v, ok := fs.Get("nullgraph.Options.CollectReport", "nofingerprint")
	if !ok || v != "diagnostics only" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	fs.Put("nullgraph.Options.CollectReport", "nofingerprint", "")
	if v, ok := fs.Get("nullgraph.Options.CollectReport", "nofingerprint"); !ok || v != "" {
		t.Fatalf("overwrite: Get = %q, %v", v, ok)
	}
}

// TestNullvetSelfCheck runs the full suite over the repo itself and
// requires a clean bill: the annotations in the production packages are
// live contracts, not decoration. Mirrors `make lint` — including the
// two-phase driver shape (gather facts everywhere, then diagnose).
func TestNullvetSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short")
	}
	root, modPath, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := PackageDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	ld := NewLoader()
	session := NewSession(root)
	var pkgs []*Package
	for _, dir := range dirs {
		importPath, err := ImportPathFor(root, modPath, dir)
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := ld.Load(dir, importPath)
		if err != nil {
			t.Fatalf("loading %s: %v", importPath, err)
		}
		pkgs = append(pkgs, pkg)
		GatherFacts(session, pkg, All)
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		all = append(all, RunPackage(session, pkg, All)...)
	}
	if len(all) > 0 {
		t.Errorf("nullvet is not clean on its own repo (%d findings):\n%s",
			len(all), FormatDiagnostics(root, all))
	}
}
