package analysis

import (
	"testing"
)

// TestFixtures runs every analyzer over its want-comment fixture
// package under testdata/src. Each fixture pair has a bad file whose
// diagnostics are pinned line-by-line and a clean file that must stay
// silent; both are loaded together as one package, so a silent bad
// finding or a noisy clean finding fails the same test.
func TestFixtures(t *testing.T) {
	ld := NewLoader()
	cases := []struct {
		analyzer *Analyzer
		fixture  string
	}{
		{RngShare, "rngshare"},
		{HotPathAlloc, "hotpathalloc"},
		{StopPoll, "stoppoll"},
		{AtomicAlign, "atomicalign"},
		{ErrPropagate, "errpropagate"},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			RunFixture(t, ld, tc.analyzer, tc.fixture)
		})
	}
}

// TestByName covers the -only flag's resolver.
func TestByName(t *testing.T) {
	got, err := ByName("rngshare, stoppoll")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != RngShare || got[1] != StopPoll {
		t.Fatalf("ByName = %v, want [rngshare stoppoll]", got)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch): expected error")
	}
}

// TestParseWant pins the fixture-comment grammar, including the
// line-offset extension.
func TestParseWant(t *testing.T) {
	cases := []struct {
		text   string
		want   []string
		offset int
		ok     bool
	}{
		{"// want `a b` `c`", []string{"a b", "c"}, 0, true},
		{`// want "quoted"`, []string{"quoted"}, 0, true},
		{"// want-1 `above`", []string{"above"}, -1, true},
		{"// want+2 `below`", []string{"below"}, 2, true},
		{"// wanton `x`", nil, 0, false},
		{"// plain comment", nil, 0, false},
	}
	for _, tc := range cases {
		pats, off, ok := parseWant(tc.text)
		if ok != tc.ok || off != tc.offset || len(pats) != len(tc.want) {
			t.Errorf("parseWant(%q) = %v, %d, %v; want %v, %d, %v",
				tc.text, pats, off, ok, tc.want, tc.offset, tc.ok)
			continue
		}
		for i := range pats {
			if pats[i] != tc.want[i] {
				t.Errorf("parseWant(%q)[%d] = %q, want %q", tc.text, i, pats[i], tc.want[i])
			}
		}
	}
}

// TestNullvetSelfCheck runs the full suite over the repo itself and
// requires a clean bill: the annotations in the production packages are
// live contracts, not decoration. Mirrors `make lint`.
func TestNullvetSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short")
	}
	root, modPath, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := PackageDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	ld := NewLoader()
	var all []Diagnostic
	for _, dir := range dirs {
		importPath, err := ImportPathFor(root, modPath, dir)
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := ld.Load(dir, importPath)
		if err != nil {
			t.Fatalf("loading %s: %v", importPath, err)
		}
		all = append(all, RunPackage(pkg, All)...)
	}
	if len(all) > 0 {
		t.Errorf("nullvet is not clean on its own repo (%d findings):\n%s",
			len(all), FormatDiagnostics(root, all))
	}
}
