package analysis

import (
	"go/ast"
	"go/types"
)

// RngShare enforces the per-worker RNG stream discipline: an
// rng.Source (or SplitMix64) must never cross a concurrency boundary.
// A stream captured by a goroutine closure is shared mutable state (a
// data race); a stream *copied* into a goroutine duplicates the
// sequence, correlating draws the sampler assumes independent. Both
// break the reproducibility and uniformity arguments the paper's
// parallel MCMC rests on. The sanctioned patterns are rng.Streams (one
// derived source per worker, indexed by worker ID) and a stack-local
// Source reseeded inside the worker body.
//
// Boundaries checked: `go` statements, and closures or stream values
// passed in calls into the par package (For, ForRange, Pool.Run,
// Execute, SumInt64, ... — everything in par dispatches its func
// arguments onto other goroutines).
var RngShare = &Analyzer{
	Name: "rngshare",
	Doc:  "RNG streams must stay within one worker: no captures by goroutine closures, no sharing across par dispatch boundaries",
	Run:  runRngShare,
}

func runRngShare(pass *Pass) {
	// Analyzing package par itself would flag its own dispatch plumbing;
	// par holds no RNG state by design, so skip it.
	if pass.Pkg.Path() == parPkgPath {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				checkConcurrentCall(pass, n.Call, "a goroutine")
			case *ast.CallExpr:
				if fn := calleeFunc(pass.Info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == parPkgPath {
					checkConcurrentCall(pass, n, "par."+fn.Name())
				}
			}
			return true
		})
	}
}

// checkConcurrentCall flags RNG streams crossing into boundary: stream-
// typed arguments (copied or shared by pointer) and closures capturing
// a stream declared outside themselves.
func checkConcurrentCall(pass *Pass, call *ast.CallExpr, boundary string) {
	exprs := make([]ast.Expr, 0, len(call.Args)+1)
	exprs = append(exprs, call.Args...)
	if lit, ok := call.Fun.(*ast.FuncLit); ok { // go func(){...}()
		exprs = append(exprs, lit)
	}
	for _, arg := range exprs {
		if lit, ok := arg.(*ast.FuncLit); ok {
			reportStreamCaptures(pass, lit, boundary)
			continue
		}
		if t := pass.Info.TypeOf(arg); isRngStream(t) {
			pass.Reportf(arg.Pos(),
				"RNG stream passed into %s: streams are single-worker state; derive one per worker with rng.Streams or Reseed a stack-local Source inside the body", boundary)
		}
	}
}

// reportStreamCaptures flags every use inside lit of a stream variable
// declared outside it.
func reportStreamCaptures(pass *Pass, lit *ast.FuncLit, boundary string) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the closure: worker-local, fine
		}
		if isRngStream(v.Type()) {
			pass.Reportf(id.Pos(),
				"RNG stream %q captured by a closure dispatched via %s: every worker would advance the same stream (race + broken determinism); use rng.Streams or a per-worker Reseed", id.Name, boundary)
		}
		return true
	})
}
