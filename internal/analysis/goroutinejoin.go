package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// GoroutineJoin enforces the lifecycle discipline of the long-running
// packages: every `go` statement in internal/serve, internal/par, and
// cmd/nullgraphd must be provably joined or provably signal-terminated.
// A generation service restarts engines for hours; an unjoined worker
// is either a leak (parked forever after its pool is closed) or a race
// (still mutating shared state after the region "completed"). The par
// memory-model comments promise specific happens-before edges — this
// analyzer keeps the code shaped so those promises stay checkable.
//
// A goroutine counts as joined when its body (a func literal, or the
// body of a same-package function/method it names) shows one of:
//
//   - a call to (*sync.WaitGroup).Done — the spawner's Add/Wait pair
//     carries the join;
//   - a channel receive (bare `<-ch`, a select receive case, or an
//     assignment from a receive) — the goroutine parks on a signal the
//     spawner controls (ctx.Done, a quit channel);
//   - a `for range ch` over a channel — the goroutine exits when the
//     spawner closes the channel (the Pool worker shape);
//   - a body that is exactly one send into a channel created in the
//     same package with `make(chan T, n)` for constant n >= 1 — the
//     send cannot block, so the goroutine cannot outlive its one
//     statement (the `go func() { errc <- srv.ListenAndServe() }()`
//     shape).
//
// Evidence inside a nested func literal does not count: a Done call in
// a goroutine-within-the-goroutine joins the inner one, not this one.
// Anything else is a finding; restructure to one of the shapes above or
// suppress with //nullgraph:allow goroutinejoin <reason>.
var GoroutineJoin = &Analyzer{
	Name: "goroutinejoin",
	Doc:  "go statements in serve/par/nullgraphd must be provably joined (WaitGroup Done, channel receive/range, or a single buffered send)",
	AppliesTo: func(pkgPath string) bool {
		switch pkgPath {
		case "nullgraph/internal/serve", "nullgraph/internal/par", "nullgraph/cmd/nullgraphd":
			return true
		}
		return false
	},
	Run: runGoroutineJoin,
}

func runGoroutineJoin(pass *Pass) {
	decls := packageFuncDecls(pass)
	buffered := bufferedChanVars(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goStmtJoined(pass, gs, decls, buffered) {
				return true
			}
			pass.Reportf(gs.Pos(), "goroutine is not provably joined: no WaitGroup Done, channel receive/range, or single buffered send in its body; join it with a WaitGroup or park it on a stop channel")
			return true
		})
	}
}

// packageFuncDecls indexes this package's function and method bodies by
// their *types.Func, so `go pl.worker()` can be checked through the
// callee's body.
func packageFuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// bufferedChanVars collects variables bound by `ch := make(chan T, n)`
// with constant n >= 1, anywhere in the package.
func bufferedChanVars(pass *Pass) map[types.Object]bool {
	buffered := map[types.Object]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			id, ok := as.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj == nil || !isBufferedMake(pass.Info, as.Rhs[0]) {
				return true
			}
			buffered[obj] = true
			return true
		})
	}
	return buffered
}

// isBufferedMake reports whether e is `make(chan T, n)` with constant
// n >= 1.
func isBufferedMake(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 || !isBuiltin(info, call, "make") {
		return false
	}
	if t := info.Types[call.Args[0]].Type; t == nil {
		return false
	} else if _, ok := t.Underlying().(*types.Chan); !ok {
		return false
	}
	tv := info.Types[call.Args[1]]
	if tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	n, ok := constant.Int64Val(tv.Value)
	return ok && n >= 1
}

// goStmtJoined decides whether one go statement carries join evidence.
func goStmtJoined(pass *Pass, gs *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl, buffered map[types.Object]bool) bool {
	var body *ast.BlockStmt
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		fn := calleeFunc(pass.Info, gs.Call)
		if fn == nil {
			return false
		}
		fd, ok := decls[fn]
		if !ok {
			// The callee's body lives in another package; its lifecycle
			// cannot be checked here.
			return false
		}
		body = fd.Body
	}
	if bodyIsBufferedSend(pass, body, buffered) {
		return true
	}
	return bodyHasJoinEvidence(pass, body)
}

// bodyIsBufferedSend reports the single-statement-send shape: the whole
// body is one send into a known buffered channel.
func bodyIsBufferedSend(pass *Pass, body *ast.BlockStmt, buffered map[types.Object]bool) bool {
	if len(body.List) != 1 {
		return false
	}
	send, ok := body.List[0].(*ast.SendStmt)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(send.Chan).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	return obj != nil && buffered[obj]
}

// bodyHasJoinEvidence scans body — without descending into nested func
// literals — for a WaitGroup Done call, a channel receive, or a range
// over a channel.
func bodyHasJoinEvidence(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch nn := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if nn.Op == token.ARROW {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if t := pass.Info.Types[nn.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
					return false
				}
			}
		case *ast.CallExpr:
			if fn := calleeFunc(pass.Info, nn); fn != nil && fn.FullName() == "(*sync.WaitGroup).Done" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
