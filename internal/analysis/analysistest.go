package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// RunFixture loads testdata/src/<fixture> with ld, runs a single
// analyzer over it (ignoring AppliesTo, so scoped analyzers are
// testable under synthetic import paths), and matches the diagnostics
// against `// want` comments, mirroring x/tools' analysistest:
//
//	s.m[k] = v // want `map access` `second finding on this line`
//
// Each backquoted or double-quoted token is a regexp that must match
// one diagnostic on the comment's line; every diagnostic must be
// matched by exactly one token, and vice versa. A `want-N` / `want+N`
// variant anchors the expectation N lines above/below the comment —
// for findings reported at positions that cannot themselves carry a
// comment (e.g. a dangling annotation).
func RunFixture(t *testing.T, ld *Loader, a *Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := ld.Load(dir, "nullvet.fixtures/"+fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	// The fixture is its own session: facts come from the fixture
	// package itself, and a schemas.lock next to the fixture sources
	// stands in for the committed manifest.
	s := NewSession(dir)
	s.SchemaLockPath = filepath.Join(dir, "schemas.lock")
	GatherFacts(s, pkg, []*Analyzer{a})
	diags := runFixture(s, pkg, a)

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, offset, ok := parseWant(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{filepath.Base(pos.Filename), pos.Line + offset}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", k.file, pos.Line, p, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	for _, d := range diags {
		k := key{filepath.Base(d.Pos.Filename), d.Pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", fixture, d)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none", fixture, k.file, k.line, re)
		}
	}
}

// wantRe matches the head of a want comment: `// want`, `// want-1`,
// `// want+2`.
var wantRe = regexp.MustCompile(`^//\s*want([+-]\d+)?\s`)

// wantTokenRe extracts the backquoted or double-quoted patterns.
var wantTokenRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// parseWant extracts the expectation patterns and line offset from a
// comment's raw text.
func parseWant(text string) (patterns []string, offset int, ok bool) {
	m := wantRe.FindStringSubmatch(text)
	if m == nil {
		return nil, 0, false
	}
	if m[1] != "" {
		offset, _ = strconv.Atoi(m[1])
	}
	rest := text[len(m[0]):]
	for _, tok := range wantTokenRe.FindAllStringSubmatch(rest, -1) {
		if tok[1] != "" {
			patterns = append(patterns, tok[1])
		} else {
			patterns = append(patterns, tok[2])
		}
	}
	if len(patterns) == 0 {
		return nil, 0, false
	}
	return patterns, offset, true
}

// FormatDiagnostics renders diagnostics one per line, with filenames
// relative to root when possible — shared by cmd/nullvet and the
// self-check test.
func FormatDiagnostics(root string, diags []Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&sb, "%s:%d:%d: [%s] %s\n", relPath(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	return sb.String()
}

// relPath makes name root-relative when it lies under root.
func relPath(root, name string) string {
	if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}

// JSONDiagnostic is one diagnostic in `nullvet -json` output; fields
// map 1:1 onto GitHub annotation parameters.
type JSONDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// JSONDiagnostics converts diags to their machine-readable form, with
// files root-relative and slash-separated. The result is never nil, so
// an empty run serializes as [] rather than null.
func JSONDiagnostics(root string, diags []Diagnostic) []JSONDiagnostic {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, JSONDiagnostic{
			File:     filepath.ToSlash(relPath(root, d.Pos.Filename)),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return out
}
