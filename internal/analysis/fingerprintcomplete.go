package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// FingerprintComplete closes the "new option silently aliases into an
// existing pool key" hole. internal/serve pools engines by a
// fingerprint of (degree distribution, options); any sampling-relevant
// input that the fingerprint function fails to consume merges requests
// that should not share a chain — PR 8 had to remember to fold in
// Options.Space by hand, and nothing would have caught forgetting.
//
// The fingerprint function opts in with //nullgraph:fingerprint in its
// doc comment. For every parameter whose type is (a pointer to) a
// same-module named struct, each exported field must either be read
// somewhere in the function body (a selector on any value of that
// struct type) or carry an explicit //nullgraph:nofingerprint <reason>
// annotation in its doc comment at the definition site. The requirement
// is transitive: a consumed field whose own type is a same-module named
// struct (behind pointers and slices — e.g. Options.StopPolicy,
// Distribution.Classes) pulls that struct's exported fields into the
// requirement set too, so adding a knob to converge.Policy without
// hashing it is as loud as adding one to Options.
//
// The nofingerprint annotations live in other packages (the Options
// struct is in the module root; the fingerprint function in
// internal/serve), which is what the session fact store exists for: a
// Facts pass over every loaded package records the annotated fields
// before diagnostics run. An annotation without a reason is itself a
// finding — the reason is the reviewable claim that the field cannot
// change what is sampled.
//
// A package inside the analyzer's driver scope that declares no
// fingerprint function at all is reported too: deleting the annotation
// must not silently disable the check.
var FingerprintComplete = &Analyzer{
	Name: "fingerprintcomplete",
	Doc:  "//nullgraph:fingerprint functions must consume every exported field of their struct inputs (or the field carries //nullgraph:nofingerprint <reason>)",
	AppliesTo: func(pkgPath string) bool {
		return pkgPath == "nullgraph/internal/serve"
	},
	Facts: gatherNoFingerprintFacts,
	Run:   runFingerprintComplete,
}

// noFingerprintFact is the fact name recording a field's exemption
// reason (empty reason = annotation present but reasonless).
const noFingerprintFact = "nofingerprint"

// gatherNoFingerprintFacts records every struct field annotated
// //nullgraph:nofingerprint, keyed "pkgpath.Type.Field".
func gatherNoFingerprintFacts(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					continue
				}
				for _, field := range st.Fields.List {
					reason, ok := directiveArgs(field.Doc, "nofingerprint")
					if !ok {
						continue
					}
					for _, name := range field.Names {
						key := pass.Pkg.Path() + "." + ts.Name.Name + "." + name.Name
						pass.Session.Facts.Put(key, noFingerprintFact, reason)
					}
				}
			}
		}
	}
}

func runFingerprintComplete(pass *Pass) {
	found := false
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, "fingerprint") {
				continue
			}
			found = true
			checkFingerprintFunc(pass, fd)
		}
	}
	if !found && len(pass.Files) > 0 {
		// Report at the package clause of the first file: the package is
		// in scope precisely because it is supposed to own a fingerprint.
		pass.Reportf(pass.Files[0].Name.Pos(), "package %s has no //nullgraph:fingerprint function: the pool-key completeness check is disabled; annotate the fingerprint function", pass.Pkg.Path())
	}
}

// checkFingerprintFunc verifies one annotated function consumes its
// struct inputs completely.
func checkFingerprintFunc(pass *Pass, fd *ast.FuncDecl) {
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig := obj.Type().(*types.Signature)
	modSeg := modSegment(pass.Pkg.Path())

	// consumed holds every struct field the body reads, as *types.Var.
	consumed := map[*types.Var]bool{}
	for sel, selection := range pass.Info.Selections {
		if sel.Pos() < fd.Body.Pos() || sel.End() > fd.Body.End() {
			continue
		}
		if selection.Kind() != types.FieldVal {
			continue
		}
		if v, ok := selection.Obj().(*types.Var); ok {
			consumed[v] = true
		}
	}

	// The requirement set: parameter struct types, then transitively the
	// same-module struct types behind consumed struct-typed fields.
	seen := map[*types.Named]bool{}
	var queue []*types.Named
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		for _, n := range reachableStructs(params.At(i).Type(), modSeg) {
			if !seen[n] {
				seen[n] = true
				queue = append(queue, n)
			}
		}
	}

	type miss struct {
		key    string
		reason string // non-empty when annotated without a reason
	}
	var misses []miss
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		st, ok := n.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue
			}
			key := n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + f.Name()
			if reason, annotated := pass.Session.Facts.Get(key, noFingerprintFact); annotated {
				if reason == "" {
					misses = append(misses, miss{key: key, reason: "annotated //nullgraph:nofingerprint without a reason: state why the field cannot change what is sampled"})
				}
				continue
			}
			if !consumed[f] {
				misses = append(misses, miss{key: key})
				continue
			}
			// Consumed struct-typed fields extend the requirement set.
			for _, next := range reachableStructs(f.Type(), modSeg) {
				if !seen[next] {
					seen[next] = true
					queue = append(queue, next)
				}
			}
		}
	}

	sort.Slice(misses, func(i, j int) bool { return misses[i].key < misses[j].key })
	for _, m := range misses {
		if m.reason != "" {
			pass.Reportf(fd.Name.Pos(), "%s is %s", m.key, m.reason)
			continue
		}
		pass.Reportf(fd.Name.Pos(), "%s is not consumed by fingerprint function %s: hash it (and bump the fingerprint version) or annotate the field //nullgraph:nofingerprint <reason>", m.key, fd.Name.Name)
	}
}
