// Package obs is the chain-health observability layer: per-worker,
// cache-line-padded counters and fixed-bucket histograms that hot loops
// update without any synchronization, aggregated at quiescent points
// (end of a swap iteration, end of a generation phase) into a
// serializable RunReport.
//
// The paper's claims are all statistical — swap acceptance behaviour
// (§III-A, Fig. 4), per-phase cost (Fig. 6), hash-table probing cost
// (§VIII ablation) — so the engine exposes them as first-class counters:
// acceptance/rejection reasons split by cause, probe-length
// distributions, edge-skip draw counts per sample space, and the
// per-iteration ever-swapped fraction the paper uses as its empirical
// mixing signal.
//
// # Cost model
//
// Instrumentation is opt-in per run and free when disabled, on two
// levels:
//
//   - Run time: a nil *Recorder disables everything. The swap engine
//     binds instrumented loop bodies only when a recorder is attached,
//     so the plain hot path is byte-for-byte the code it was before this
//     package existed — zero branches, zero loads, zero allocations
//     added (locked by TestStepDoesNotAllocate and the CI alloc
//     budget).
//   - Compile time: building with `-tags nullgraph_noobs` sets the
//     package constant Enabled to false; every `obs.Enabled && rec !=
//     nil` guard becomes constant-false and the instrumented bodies are
//     dead-code-eliminated.
//
// When enabled, hot loops touch only their own worker's Counters cell
// (cache-line padded, no false sharing, no atomics); cross-worker
// aggregation happens once per iteration at the quiescent point, O(p)
// per counter.
package obs

// ProbeBuckets is the number of probe-length histogram buckets. Bucket
// i counts TestAndSet calls whose probe sequence visited exactly i+1
// slots; the last bucket absorbs sequences of >= ProbeBuckets slots.
// At the swap engine's <= 25% table occupancy the expected probe length
// is ~1.3 slots, so 16 buckets cover the distribution with room to make
// pathological clustering (the §VIII linear-vs-quadratic ablation's
// subject) visible in the tail.
const ProbeBuckets = 16

// Counters is one worker's private counter block. Hot loops increment
// fields directly — no atomics — because each worker owns exactly one
// cell; the trailing pad keeps neighbouring cells in a []Counters off
// each other's cache lines, same discipline as par.Cell.
//
//nullgraph:padded
type Counters struct {
	// RejectSelfLoop counts proposals rejected because an exchanged
	// edge would be a self-loop.
	RejectSelfLoop int64
	// RejectDuplicate counts proposals rejected because the first new
	// edge was already present in the edge table.
	RejectDuplicate int64
	// RejectPartnerDuplicate counts proposals whose first new edge was
	// fresh but whose partner edge was already present.
	RejectPartnerDuplicate int64
	// Probes is the probe-length histogram of this worker's TestAndSet
	// calls (see ProbeBuckets).
	Probes [ProbeBuckets]int64

	// Pad the 152 bytes of counters to 256 (a cache-line multiple) so
	// adjacent cells in a []Counters never share a line.
	_ [104]byte
}

// RecordProbe files one TestAndSet probe-sequence length (>= 1) into
// the histogram.
//
//nullgraph:hotpath
func (c *Counters) RecordProbe(probes int) {
	if probes < 1 {
		probes = 1
	}
	if probes > ProbeBuckets {
		probes = ProbeBuckets
	}
	c.Probes[probes-1]++
}

// Recorder accumulates one run's observability state: the per-worker
// cells hot loops write and the RunReport they aggregate into. A
// Recorder belongs to one run at a time and is not safe for concurrent
// method calls; hot-loop writes go through Cell(w), everything else
// happens at quiescent points (the same externally-ordered points the
// engines already synchronize on).
type Recorder struct {
	cells  []Counters
	report RunReport
}

// NewRecorder returns an empty recorder. Attach it via the Recorder
// field of swap.Options / core.Options (or nullgraph.Options.
// CollectReport) and read the result with Report.
func NewRecorder() *Recorder {
	return &Recorder{report: RunReport{Schema: SchemaVersion}}
}

// StartRun resets the swap section of the report (iterations, totals,
// probe histogram) and sizes the per-worker cells for a run of the
// given width. Generation-phase sections already recorded (edge-skip,
// phase times) are preserved, so a pipeline can record generation first
// and bind the swap engine after. Called by the swap engine when it
// (re)binds an edge list; a rebound engine therefore reports its
// latest run.
func (r *Recorder) StartRun(seed uint64, workers, edges int) {
	if cap(r.cells) < workers {
		r.cells = make([]Counters, workers)
	}
	r.cells = r.cells[:workers]
	for w := range r.cells {
		r.cells[w] = Counters{}
	}
	r.report.Seed = seed
	r.report.Workers = workers
	r.report.Edges = edges
	r.report.Iterations = r.report.Iterations[:0]
	r.report.SwapTotals = SwapTotals{}
	if r.report.ProbeHistogram == nil {
		r.report.ProbeHistogram = make([]int64, ProbeBuckets)
	}
	clear(r.report.ProbeHistogram)
}

// Cell returns worker w's private counter block. The pointer is stable
// until the next StartRun with a larger width.
func (r *Recorder) Cell(w int) *Counters { return &r.cells[w] }

// Workers returns the width the recorder is currently sized for.
func (r *Recorder) Workers() int { return len(r.cells) }

// FlushIteration aggregates every worker cell into one iteration record
// and resets the cells — the engine calls it at the iteration's
// quiescent point, so no worker is concurrently writing. Probe counts
// accumulate into the run-wide histogram; rejection counters become the
// iteration's split.
func (r *Recorder) FlushIteration(attempts, successes int64, everSwapped float64) {
	it := IterationReport{Attempts: attempts, Successes: successes, EverSwapped: everSwapped}
	for w := range r.cells {
		c := &r.cells[w]
		it.RejectSelfLoop += c.RejectSelfLoop
		it.RejectDuplicate += c.RejectDuplicate
		it.RejectPartnerDuplicate += c.RejectPartnerDuplicate
		c.RejectSelfLoop, c.RejectDuplicate, c.RejectPartnerDuplicate = 0, 0, 0
		for b := range c.Probes {
			r.report.ProbeHistogram[b] += c.Probes[b]
			c.Probes[b] = 0
		}
	}
	r.report.Iterations = append(r.report.Iterations, it)
	t := &r.report.SwapTotals
	t.Iterations++
	t.Attempts += it.Attempts
	t.Successes += it.Successes
	t.RejectSelfLoop += it.RejectSelfLoop
	t.RejectDuplicate += it.RejectDuplicate
	t.RejectPartnerDuplicate += it.RejectPartnerDuplicate
	t.FinalEverSwapped = everSwapped
}

// SetEdgeSkip installs the edge-generation section: one entry per
// class-pair sample space, with chunk contributions already merged.
// Totals are derived here so callers only aggregate.
func (r *Recorder) SetEdgeSkip(spaces []SpaceReport) {
	rep := &EdgeSkipReport{Spaces: spaces}
	for _, s := range spaces {
		rep.TotalPairs += s.Pairs
		rep.TotalDraws += s.Draws
		rep.TotalEdges += s.Edges
	}
	r.report.EdgeSkip = rep
}

// SetPhases installs the pipeline phase wall times (nanoseconds in the
// report; pass zero for phases a run did not execute).
func (r *Recorder) SetPhases(probabilities, edgeGeneration, swapping int64) {
	r.report.Phases = &PhaseReport{
		ProbabilitiesNs:  probabilities,
		EdgeGenerationNs: edgeGeneration,
		SwappingNs:       swapping,
	}
}

// SetStop installs the stopping-decision section (schema v2). The
// pointer is stored as-is; callers hand over ownership.
func (r *Recorder) SetStop(st *StopReport) {
	r.report.Stop = st
}

// SetSpace records the sampling space's canonical spelling (schema v3).
func (r *Recorder) SetSpace(space string) {
	r.report.Space = space
}

// SetSimplify installs the simplification section (schema v3). The
// pointer is stored as-is; callers hand over ownership.
func (r *Recorder) SetSimplify(s *SimplifyReport) {
	r.report.Simplify = s
}

// SetConnectivity installs the connected-sampling section (schema v4).
// The pointer is stored as-is; callers hand over ownership, and pass
// nil to clear a previous sample's section.
func (r *Recorder) SetConnectivity(c *ConnectivityReport) {
	r.report.Connectivity = c
}

// Report returns the aggregated run report. The pointer aliases the
// recorder's state: read it only after the run is finished (or between
// Steps), and treat it as invalidated by the next StartRun.
func (r *Recorder) Report() *RunReport { return &r.report }
