package obs

import (
	"encoding/json"
	"io"
	"os"

	"nullgraph/internal/atomicfile"
)

// SchemaVersion identifies the RunReport JSON schema. Consumers
// (regression dashboards, CI deltas) should reject reports whose schema
// field they do not recognize; additive changes bump the trailing
// version. The schema is documented in DESIGN.md §8.
// v2 added the stop section (adaptive stopping decisions).
// v3 added the sampling-space field and the simplification section.
// v4 added the connectivity section (connected-sampling check outcomes).
const SchemaVersion = "nullgraph/run-report/v4"

// IterationReport is one swap iteration's acceptance accounting.
// Attempts = Successes + the three rejection counters + proposals
// short-circuited before any check (none today), so the split is
// exhaustive.
type IterationReport struct {
	Attempts               int64 `json:"attempts"`
	Successes              int64 `json:"successes"`
	RejectSelfLoop         int64 `json:"reject_self_loop"`
	RejectDuplicate        int64 `json:"reject_duplicate"`
	RejectPartnerDuplicate int64 `json:"reject_partner_duplicate"`
	// EverSwapped is the fraction of edges that have been in at least
	// one successful swap so far — the paper's empirical mixing signal.
	// Zero when the engine runs without TrackSwapped.
	EverSwapped float64 `json:"ever_swapped"`
}

// SwapTotals sums the iteration records.
type SwapTotals struct {
	Iterations             int   `json:"iterations"`
	Attempts               int64 `json:"attempts"`
	Successes              int64 `json:"successes"`
	RejectSelfLoop         int64 `json:"reject_self_loop"`
	RejectDuplicate        int64 `json:"reject_duplicate"`
	RejectPartnerDuplicate int64 `json:"reject_partner_duplicate"`
	// FinalEverSwapped is the last iteration's mixing fraction.
	FinalEverSwapped float64 `json:"final_ever_swapped"`
}

// SpaceReport is one class-pair sample space of the edge-skipping
// phase (Algorithm IV.2): its index-space size, the number of geometric
// skip draws spent on it, and the edges it emitted. Spaces with zero
// probability are skipped by the generator and absent here.
type SpaceReport struct {
	// ClassI and ClassJ are the degree-class indices, ClassI <= ClassJ.
	ClassI int `json:"class_i"`
	ClassJ int `json:"class_j"`
	// Probability is the per-pair Bernoulli probability of the space.
	Probability float64 `json:"probability"`
	// Pairs is the number of candidate vertex pairs in the space.
	Pairs int64 `json:"pairs"`
	// Draws is the number of geometric skip lengths sampled (0 in the
	// degenerate probability >= 1 path, which emits without drawing).
	Draws int64 `json:"draws"`
	// Edges is the number of edges the space emitted.
	Edges int64 `json:"edges"`
}

// EdgeSkipReport is the edge-generation section of a run report.
type EdgeSkipReport struct {
	Spaces     []SpaceReport `json:"spaces"`
	TotalPairs int64         `json:"total_pairs"`
	TotalDraws int64         `json:"total_draws"`
	TotalEdges int64         `json:"total_edges"`
}

// PhaseReport records per-phase wall time in nanoseconds (Fig. 6's
// quantities). Phases a run did not execute are zero.
type PhaseReport struct {
	ProbabilitiesNs  int64 `json:"probabilities_ns"`
	EdgeGenerationNs int64 `json:"edge_generation_ns"`
	SwappingNs       int64 `json:"swapping_ns"`
}

// StopCheckpoint is one adaptive-stopping diagnostic evaluation; see
// internal/converge for the semantics of each field.
type StopCheckpoint struct {
	// Iteration is the number of completed swap iterations at
	// evaluation time.
	Iteration int `json:"iteration"`
	// Stat is the checkpoint trace value (the monitored statistic, or
	// the windowed mean success rate on the success-rate trace).
	Stat float64 `json:"stat"`
	// SuccessRate is the mean success rate since the last checkpoint.
	SuccessRate float64 `json:"success_rate"`
	// EverSwapped is the ever-swapped fraction at this iteration (0
	// when untracked).
	EverSwapped float64 `json:"ever_swapped"`
	// Z is the Geweke equality-of-means statistic over the checkpoint
	// trace so far (0 until enough samples exist).
	Z float64 `json:"z"`
	// Tau is the integrated autocorrelation time of the checkpoint
	// trace so far (1 when too short to estimate).
	Tau float64 `json:"tau"`
	// Converged reports whether every enabled criterion held here.
	Converged bool `json:"converged"`
}

// StopReport records why and when the swap phase stopped — the v2
// schema addition. Fixed-scan runs carry policy "fixed" and no
// checkpoints; adaptive runs (Options.StopPolicy) carry the full
// diagnostic trail.
type StopReport struct {
	// Policy is "adaptive" for monitor-driven runs, "fixed" otherwise.
	Policy string `json:"policy"`
	// Statistic names the checkpoint trace of adaptive runs.
	Statistic string `json:"statistic,omitempty"`
	// Reason is "converged" (diagnostic fired), "budget" (adaptive cap
	// ran out), "scans" (fixed budget completed), or "mixed" (the
	// ever-swapped heuristic ended a MixUntilSwapped run).
	Reason string `json:"reason"`
	// Iterations is the number of completed swap iterations.
	Iterations int `json:"iterations"`
	// Floor and Budget echo the effective adaptive policy bounds.
	Floor  int `json:"floor,omitempty"`
	Budget int `json:"budget,omitempty"`
	// Checkpoints is the diagnostic trail of adaptive runs.
	Checkpoints []StopCheckpoint `json:"checkpoints,omitempty"`
}

// SimplifyReport records one targeted-simplification pass (schema v3;
// internal/simplify): the defect counts before and after, and the swap
// budget spent. Swaps <= InitialDefects always holds — each reducing
// swap removes at least one defect — so the section doubles as an
// auditable witness of the termination bound.
type SimplifyReport struct {
	// InitialDefects is self-loop instances plus multi-edge excess
	// instances before the pass.
	InitialDefects int `json:"initial_defects"`
	// ResidualDefects is the same count after the pass; nonzero only
	// when the realized degree sequence admits no simple graph.
	ResidualDefects int `json:"residual_defects"`
	// Swaps is the number of defect-reducing targeted swaps applied.
	Swaps int `json:"swaps"`
	// Neutral is the number of defect-neutral unsticking swaps applied.
	Neutral int `json:"neutral"`
	// Simple reports whether the edge list was simple after the pass.
	Simple bool `json:"simple"`
}

// ConnectivityReport records the connectivity-check outcome counters of
// a connected-sampling run (schema v4; internal/connected): how many
// proposals each tier of the Viger–Latapy check hierarchy resolved, and
// how many proposals were rejected for disconnecting the graph.
// FastPathHits / Proposals is the witness cache's hit rate.
type ConnectivityReport struct {
	// Proposals is the number of swaps submitted to the checker.
	Proposals int64 `json:"proposals"`
	// FastPathHits counts proposals accepted with no traversal (the
	// cached spanning-tree witness was untouched).
	FastPathHits int64 `json:"fast_path_hits"`
	// BoundedChecks counts bounded bidirectional searches;
	// BoundedConclusive those that resolved within budget.
	BoundedChecks     int64 `json:"bounded_checks"`
	BoundedConclusive int64 `json:"bounded_conclusive"`
	// FullChecks counts full-BFS fallbacks.
	FullChecks int64 `json:"full_checks"`
	// WitnessRebuilds counts spanning-tree reconstructions after
	// accepted tree-touching swaps.
	WitnessRebuilds int64 `json:"witness_rebuilds"`
	// RejectedDisconnecting counts proposals rejected because they
	// would have disconnected the graph.
	RejectedDisconnecting int64 `json:"rejected_disconnecting"`
	// FullRechecks counts periodic belt-and-braces verifications.
	FullRechecks int64 `json:"full_rechecks"`
}

// RunReport is the serializable aggregate of one run's chain-health
// observability: per-iteration acceptance splits, the run-wide
// hash-table probe-length histogram, the edge-skip space accounting,
// and the pipeline phase times. With Workers == 1 and a fixed seed
// every counter is bit-reproducible; timings (Phases) are the only
// nondeterministic fields.
//
// The schemaver analyzer locks this struct (and everything reachable
// from it) against internal/analysis/schemas.lock: changing any field
// here or in a nested report type requires bumping SchemaVersion and
// regenerating the lock (`make lint-fix-schemas`).
//
//nullgraph:schema SchemaVersion
type RunReport struct {
	// Schema is SchemaVersion.
	Schema string `json:"schema"`
	// Seed is the swap phase's seed stream; Workers its parallel width;
	// Edges the edge count of the (last) bound edge list.
	Seed    uint64 `json:"seed"`
	Workers int    `json:"workers"`
	Edges   int    `json:"edges"`
	// Iterations has one record per swap iteration, in order.
	Iterations []IterationReport `json:"iterations"`
	SwapTotals SwapTotals        `json:"swap_totals"`
	// ProbeHistogram bucket i counts TestAndSet calls (edge
	// registration and proposal checks alike) whose probe sequence
	// visited i+1 slots; the final bucket is overflow.
	ProbeHistogram []int64 `json:"probe_length_histogram"`
	// EdgeSkip is present only for runs that executed the
	// edge-generation phase.
	EdgeSkip *EdgeSkipReport `json:"edge_skip,omitempty"`
	// Phases is present when the core pipeline drove the run.
	Phases *PhaseReport `json:"phases,omitempty"`
	// Stop records the stopping decision (schema v2); present when the
	// core pipeline drove the swap phase.
	Stop *StopReport `json:"stop,omitempty"`
	// Space is the sampling space's canonical spelling (schema v3);
	// empty reports predate the space matrix and mean "simple".
	Space string `json:"space,omitempty"`
	// Simplify records the targeted-simplification pass (schema v3);
	// present only when the pipeline ran one.
	Simplify *SimplifyReport `json:"simplify,omitempty"`
	// Connectivity records the connected-sampling check outcomes
	// (schema v4); present only for Connected runs.
	Connectivity *ConnectivityReport `json:"connectivity,omitempty"`
}

// WriteJSON writes the report as indented JSON with a trailing newline.
func (r *RunReport) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteReportFile writes the report to path ("-" = stdout). File
// outputs are atomic (temp + fsync + rename), so a killed run never
// leaves a truncated report.
func WriteReportFile(path string, r *RunReport) error {
	if path == "-" {
		return r.WriteJSON(os.Stdout)
	}
	return atomicfile.Write(path, func(w io.Writer) error { return r.WriteJSON(w) })
}
