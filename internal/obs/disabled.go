//go:build nullgraph_noobs

package obs

// Enabled is false under the nullgraph_noobs build tag: recorders are
// never attached and the compiler eliminates the instrumented paths.
const Enabled = false
