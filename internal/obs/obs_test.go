package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"unsafe"
)

func TestCountersPadding(t *testing.T) {
	if sz := unsafe.Sizeof(Counters{}); sz%64 != 0 {
		t.Errorf("Counters size %d is not a multiple of the 64-byte cache line", sz)
	}
}

func TestRecordProbeBuckets(t *testing.T) {
	var c Counters
	c.RecordProbe(1)
	c.RecordProbe(1)
	c.RecordProbe(3)
	c.RecordProbe(ProbeBuckets)      // exactly the overflow bucket
	c.RecordProbe(ProbeBuckets + 50) // clamped into it
	c.RecordProbe(0)                 // defensive clamp to 1
	want := [ProbeBuckets]int64{}
	want[0] = 3
	want[2] = 1
	want[ProbeBuckets-1] = 2
	if c.Probes != want {
		t.Errorf("probe histogram %v, want %v", c.Probes, want)
	}
}

func TestFlushIterationAggregatesAndResets(t *testing.T) {
	r := NewRecorder()
	r.StartRun(7, 2, 100)
	r.Cell(0).RejectSelfLoop = 3
	r.Cell(0).RecordProbe(1)
	r.Cell(1).RejectDuplicate = 2
	r.Cell(1).RejectPartnerDuplicate = 1
	r.Cell(1).RecordProbe(2)
	r.FlushIteration(50, 44, 0.5)

	rep := r.Report()
	if len(rep.Iterations) != 1 {
		t.Fatalf("got %d iterations, want 1", len(rep.Iterations))
	}
	it := rep.Iterations[0]
	want := IterationReport{Attempts: 50, Successes: 44, RejectSelfLoop: 3,
		RejectDuplicate: 2, RejectPartnerDuplicate: 1, EverSwapped: 0.5}
	if it != want {
		t.Errorf("iteration record %+v, want %+v", it, want)
	}
	if rep.ProbeHistogram[0] != 1 || rep.ProbeHistogram[1] != 1 {
		t.Errorf("probe histogram %v, want one count in buckets 0 and 1", rep.ProbeHistogram)
	}
	// Cells must be reset for the next iteration.
	for w := 0; w < 2; w++ {
		if c := r.Cell(w); *c != (Counters{}) {
			t.Errorf("worker %d cell not reset after flush: %+v", w, c)
		}
	}
	// A second flush accumulates totals.
	r.Cell(0).RejectSelfLoop = 1
	r.FlushIteration(50, 49, 1.0)
	tot := r.Report().SwapTotals
	if tot.Iterations != 2 || tot.Attempts != 100 || tot.Successes != 93 ||
		tot.RejectSelfLoop != 4 || tot.FinalEverSwapped != 1.0 {
		t.Errorf("totals %+v", tot)
	}
}

func TestStartRunPreservesGenerationSections(t *testing.T) {
	r := NewRecorder()
	r.SetEdgeSkip([]SpaceReport{{ClassI: 0, ClassJ: 1, Probability: 0.5, Pairs: 10, Draws: 6, Edges: 5}})
	r.SetPhases(100, 200, 0)
	r.StartRun(1, 1, 5)
	rep := r.Report()
	if rep.EdgeSkip == nil || rep.EdgeSkip.TotalEdges != 5 || rep.EdgeSkip.TotalDraws != 6 {
		t.Errorf("StartRun dropped the edge-skip section: %+v", rep.EdgeSkip)
	}
	if rep.Phases == nil || rep.Phases.EdgeGenerationNs != 200 {
		t.Errorf("StartRun dropped the phase section: %+v", rep.Phases)
	}
	// ...while resetting the swap section.
	if len(rep.Iterations) != 0 || rep.SwapTotals.Iterations != 0 {
		t.Errorf("StartRun kept stale swap state: %+v", rep.SwapTotals)
	}
}

func TestStartRunResizesCells(t *testing.T) {
	r := NewRecorder()
	r.StartRun(1, 4, 10)
	if r.Workers() != 4 {
		t.Fatalf("workers = %d, want 4", r.Workers())
	}
	r.Cell(3).RejectSelfLoop = 9
	r.StartRun(1, 2, 10)
	if r.Workers() != 2 {
		t.Fatalf("workers = %d, want 2", r.Workers())
	}
	r.StartRun(1, 4, 10)
	if c := r.Cell(3); *c != (Counters{}) {
		t.Errorf("regrown cell carries stale counts: %+v", c)
	}
}

func TestWriteReportFileRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.StartRun(42, 1, 8)
	r.Cell(0).RecordProbe(1)
	r.FlushIteration(4, 3, 0.25)
	path := filepath.Join(t.TempDir(), "report.json")
	if err := WriteReportFile(path, r.Report()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if back.Schema != SchemaVersion {
		t.Errorf("schema %q, want %q", back.Schema, SchemaVersion)
	}
	if back.Seed != 42 || back.SwapTotals.Successes != 3 {
		t.Errorf("round-trip mangled the report: %+v", back)
	}
	var buf bytes.Buffer
	if err := r.Report().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Error("WriteJSON and WriteReportFile disagree")
	}
}

func TestServePprof(t *testing.T) {
	addr, err := ServePprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status %d, want 200", resp.StatusCode)
	}
}

func TestStartCPUProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	stop, err := StartCPUProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Error("CPU profile file is empty")
	}
}
