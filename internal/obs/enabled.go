//go:build !nullgraph_noobs

package obs

// Enabled reports whether the observability layer is compiled in. The
// default build includes it (a nil Recorder still costs nothing at run
// time); `-tags nullgraph_noobs` flips this to false, turning every
// `obs.Enabled && rec != nil` guard into constant-false so the
// instrumented code paths are eliminated entirely.
const Enabled = true
