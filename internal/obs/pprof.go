package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	runtimepprof "runtime/pprof"
)

// ServePprof exposes the standard /debug/pprof/ endpoints on addr
// (e.g. "localhost:6060"; an empty port picks a free one) from a
// background goroutine and returns the bound address. The handlers go
// on a private mux, not http.DefaultServeMux, so importing this package
// never changes a host program's HTTP surface. The listener lives until
// process exit — profiling hooks for CLIs, not a managed server.
func ServePprof(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// StartCPUProfile begins a CPU profile into path and returns the stop
// function that ends the profile and closes the file. Only one CPU
// profile can run per process (a runtime/pprof constraint).
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := runtimepprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() error {
		runtimepprof.StopCPUProfile()
		return f.Close()
	}, nil
}
