// Package degseq represents and manipulates degree distributions — the
// {D, N} = {(d_1, n_1), ..., (d_max, n_max)} input of the paper's
// Algorithm IV.1 — and degree sequences (one degree per vertex).
//
// Conventions:
//   - A Distribution lists unique degrees in strictly increasing order
//     with positive counts. Degree 0 entries are allowed (isolated
//     vertices) and are carried through generation untouched.
//   - Vertex identifiers produced by the generators are ordered by
//     degree class: vertices [I(k), I(k)+n_k) all have target degree
//     D(k), where I is the exclusive prefix sum of N. This matches the
//     paper's "global identifiers can be retrieved based on prefix sums
//     of N if we order vertex identifiers by degree".
package degseq

import (
	"fmt"
	"sort"

	"nullgraph/internal/par"
)

// Class is one (degree, count) pair of a distribution.
type Class struct {
	Degree int64
	Count  int64
}

// Distribution is a degree distribution: unique degrees ascending, all
// counts positive.
type Distribution struct {
	Classes []Class
}

// Validate checks the ordering/positivity invariants.
func (d *Distribution) Validate() error {
	for i, c := range d.Classes {
		if c.Degree < 0 {
			return fmt.Errorf("degseq: class %d has negative degree %d", i, c.Degree)
		}
		if c.Count <= 0 {
			return fmt.Errorf("degseq: class %d (degree %d) has non-positive count %d", i, c.Degree, c.Count)
		}
		if i > 0 && d.Classes[i-1].Degree >= c.Degree {
			return fmt.Errorf("degseq: degrees not strictly increasing at class %d", i)
		}
	}
	return nil
}

// NumClasses returns |D|.
func (d *Distribution) NumClasses() int { return len(d.Classes) }

// NumVertices returns n = Σ n_i.
func (d *Distribution) NumVertices() int64 {
	var n int64
	for _, c := range d.Classes {
		n += c.Count
	}
	return n
}

// NumStubs returns 2m = Σ d_i·n_i.
func (d *Distribution) NumStubs() int64 {
	var s int64
	for _, c := range d.Classes {
		s += c.Degree * c.Count
	}
	return s
}

// NumEdges returns m (stubs/2, rounding down).
func (d *Distribution) NumEdges() int64 { return d.NumStubs() / 2 }

// MaxDegree returns d_max (0 for an empty distribution).
func (d *Distribution) MaxDegree() int64 {
	if len(d.Classes) == 0 {
		return 0
	}
	return d.Classes[len(d.Classes)-1].Degree
}

// Clone deep-copies the distribution.
func (d *Distribution) Clone() *Distribution {
	cl := make([]Class, len(d.Classes))
	copy(cl, d.Classes)
	return &Distribution{Classes: cl}
}

// FromDegrees builds the distribution of a degree array.
func FromDegrees(deg []int64) *Distribution {
	counts := map[int64]int64{}
	for _, d := range deg {
		counts[d]++
	}
	classes := make([]Class, 0, len(counts))
	for d, n := range counts {
		classes = append(classes, Class{Degree: d, Count: n})
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i].Degree < classes[j].Degree })
	return &Distribution{Classes: classes}
}

// FromCounts builds a distribution from a degree → count map, dropping
// zero-count entries.
func FromCounts(counts map[int64]int64) (*Distribution, error) {
	classes := make([]Class, 0, len(counts))
	for d, n := range counts {
		if n == 0 {
			continue
		}
		classes = append(classes, Class{Degree: d, Count: n})
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i].Degree < classes[j].Degree })
	dist := &Distribution{Classes: classes}
	if err := dist.Validate(); err != nil {
		return nil, err
	}
	return dist, nil
}

// ToDegrees expands the distribution into a degree sequence ordered by
// class (ascending degree), matching the generator's vertex-ID layout.
func (d *Distribution) ToDegrees() []int64 {
	out := make([]int64, 0, d.NumVertices())
	for _, c := range d.Classes {
		for i := int64(0); i < c.Count; i++ {
			out = append(out, c.Degree)
		}
	}
	return out
}

// VertexOffsets returns the exclusive prefix sums I of the class counts:
// vertices of class k occupy IDs [I[k], I[k+1]). len = |D|+1.
func (d *Distribution) VertexOffsets(p int) []int64 {
	counts := make([]int64, len(d.Classes))
	for i, c := range d.Classes {
		counts[i] = c.Count
	}
	return par.PrefixSums(counts, p)
}

// ClassOfVertex returns the class index of a vertex ID laid out per
// VertexOffsets, by binary search.
func ClassOfVertex(offsets []int64, v int64) int {
	// Find largest k with offsets[k] <= v.
	k := sort.Search(len(offsets), func(i int) bool { return offsets[i] > v })
	return k - 1
}

// DegreeOfVertex returns a vertex's target degree under the class layout.
func (d *Distribution) DegreeOfVertex(offsets []int64, v int64) int64 {
	return d.Classes[ClassOfVertex(offsets, v)].Degree
}

// IsGraphical reports whether the distribution is realizable as a simple
// graph, by the Erdős–Gallai theorem. Runs in O(n) over the expanded
// sequence size using class arithmetic (no expansion): for each k,
//
//	Σ_{i<=k} d_i <= k(k-1) + Σ_{i>k} min(d_i, k)
//
// evaluated only at the class boundaries, which is sufficient because
// the inequality between boundaries is linear in k and tightest at
// boundaries of the sorted sequence.
func (d *Distribution) IsGraphical() bool {
	if d.NumStubs()%2 != 0 {
		return false
	}
	// Expand classes descending by degree as (degree, count) runs.
	classes := make([]Class, len(d.Classes))
	copy(classes, d.Classes)
	sort.Slice(classes, func(i, j int) bool { return classes[i].Degree > classes[j].Degree })

	n := d.NumVertices()
	// Check Erdős–Gallai at every prefix length k that ends a run, plus
	// interior points where min(d_i, k) switches; checking every k at
	// run boundaries and at k = d_i crossings is sufficient (standard
	// result for the compressed test; we keep it simple and check each
	// run boundary and each k equal to a distinct degree value, a set
	// of O(|D|) points).
	checkpoints := map[int64]struct{}{}
	var prefix int64
	for _, c := range classes {
		prefix += c.Count
		checkpoints[prefix] = struct{}{}
		if c.Degree >= 1 && c.Degree <= n {
			checkpoints[c.Degree] = struct{}{}
		}
	}
	ks := make([]int64, 0, len(checkpoints))
	for k := range checkpoints {
		if k >= 1 && k <= n {
			ks = append(ks, k)
		}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })

	for _, k := range ks {
		var left int64  // sum of k largest degrees
		var right int64 // k(k-1) + Σ_{i>k} min(d_i, k)
		right = k * (k - 1)
		var taken int64
		for _, c := range classes {
			if taken >= k {
				// Remaining vertices are on the right side.
				m := c.Degree
				if m > k {
					m = k
				}
				right += m * c.Count
				continue
			}
			take := c.Count
			if taken+take > k {
				take = k - taken
			}
			left += c.Degree * take
			taken += take
			rest := c.Count - take
			if rest > 0 {
				m := c.Degree
				if m > k {
					m = k
				}
				right += m * rest
			}
		}
		if left > right {
			return false
		}
	}
	return true
}
