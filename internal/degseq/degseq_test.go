package degseq

import (
	"sort"
	"testing"
	"testing/quick"
)

func mustDist(t *testing.T, counts map[int64]int64) *Distribution {
	t.Helper()
	d, err := FromCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestValidate(t *testing.T) {
	good := &Distribution{Classes: []Class{{1, 3}, {2, 1}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid distribution rejected: %v", err)
	}
	bad := []*Distribution{
		{Classes: []Class{{-1, 2}}},
		{Classes: []Class{{1, 0}}},
		{Classes: []Class{{2, 1}, {1, 1}}},
		{Classes: []Class{{1, 1}, {1, 1}}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("bad distribution %d accepted", i)
		}
	}
}

func TestCountsAndAggregates(t *testing.T) {
	d := mustDist(t, map[int64]int64{1: 4, 3: 2, 5: 1})
	if got := d.NumClasses(); got != 3 {
		t.Errorf("NumClasses = %d", got)
	}
	if got := d.NumVertices(); got != 7 {
		t.Errorf("NumVertices = %d", got)
	}
	if got := d.NumStubs(); got != 4+6+5 {
		t.Errorf("NumStubs = %d", got)
	}
	if got := d.NumEdges(); got != 7 {
		t.Errorf("NumEdges = %d", got)
	}
	if got := d.MaxDegree(); got != 5 {
		t.Errorf("MaxDegree = %d", got)
	}
	empty := &Distribution{}
	if empty.MaxDegree() != 0 || empty.NumVertices() != 0 {
		t.Error("empty distribution aggregates nonzero")
	}
}

func TestFromDegreesRoundTrip(t *testing.T) {
	deg := []int64{3, 1, 1, 4, 3, 1}
	d := FromDegrees(deg)
	back := d.ToDegrees()
	sort.Slice(deg, func(i, j int) bool { return deg[i] < deg[j] })
	if len(back) != len(deg) {
		t.Fatalf("ToDegrees length %d, want %d", len(back), len(deg))
	}
	for i := range deg {
		if back[i] != deg[i] {
			t.Errorf("degree %d: %d vs %d", i, back[i], deg[i])
		}
	}
}

func TestFromDegreesProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		deg := make([]int64, len(raw))
		for i, v := range raw {
			deg[i] = int64(v % 16)
		}
		d := FromDegrees(deg)
		if d.Validate() != nil {
			return false
		}
		return d.NumVertices() == int64(len(deg))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVertexOffsetsAndClassLookup(t *testing.T) {
	d := mustDist(t, map[int64]int64{1: 4, 3: 2, 5: 1})
	off := d.VertexOffsets(2)
	want := []int64{0, 4, 6, 7}
	for i := range want {
		if off[i] != want[i] {
			t.Fatalf("offsets = %v, want %v", off, want)
		}
	}
	wantClass := []int{0, 0, 0, 0, 1, 1, 2}
	for v, wc := range wantClass {
		if got := ClassOfVertex(off, int64(v)); got != wc {
			t.Errorf("ClassOfVertex(%d) = %d, want %d", v, got, wc)
		}
		wd := d.Classes[wc].Degree
		if got := d.DegreeOfVertex(off, int64(v)); got != wd {
			t.Errorf("DegreeOfVertex(%d) = %d, want %d", v, got, wd)
		}
	}
}

// bruteForceGraphical checks Erdős–Gallai on the expanded sequence.
func bruteForceGraphical(deg []int64) bool {
	var sum int64
	for _, d := range deg {
		sum += d
	}
	if sum%2 != 0 {
		return false
	}
	s := make([]int64, len(deg))
	copy(s, deg)
	sort.Slice(s, func(i, j int) bool { return s[i] > s[j] })
	n := int64(len(s))
	for k := int64(1); k <= n; k++ {
		var left int64
		for i := int64(0); i < k; i++ {
			left += s[i]
		}
		right := k * (k - 1)
		for i := k; i < n; i++ {
			m := s[i]
			if m > k {
				m = k
			}
			right += m
		}
		if left > right {
			return false
		}
	}
	return true
}

func TestIsGraphicalKnownCases(t *testing.T) {
	cases := []struct {
		deg  []int64
		want bool
	}{
		{[]int64{1, 1}, true},                // single edge
		{[]int64{1, 1, 1}, false},            // odd stub count
		{[]int64{2, 2, 2}, true},             // triangle
		{[]int64{3, 3, 3, 3}, true},          // K4
		{[]int64{4, 4, 4, 4}, false},         // d_max >= n
		{[]int64{3, 1, 1, 1}, true},          // star
		{[]int64{3, 3, 1, 1}, false},         // fails E-G at k=2: 6 > 4
		{[]int64{4, 1, 1, 1, 1}, true},       // star K1,4
		{[]int64{5, 5, 4, 3, 2, 1}, false},   // classic non-graphical
		{[]int64{0, 0, 0}, true},             // empty graph
		{[]int64{2, 2, 2, 2, 2, 2, 2}, true}, // cycle
	}
	for _, c := range cases {
		d := FromDegrees(c.deg)
		if got := d.IsGraphical(); got != c.want {
			t.Errorf("IsGraphical(%v) = %v, want %v", c.deg, got, c.want)
		}
		if got := bruteForceGraphical(c.deg); got != c.want {
			t.Errorf("brute force disagrees on %v (test case wrong?)", c.deg)
		}
	}
}

func TestIsGraphicalMatchesBruteForce(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		deg := make([]int64, len(raw))
		for i, v := range raw {
			deg[i] = int64(v % uint8(len(raw)+1)) // keep degrees < n+1
			if deg[i] >= int64(len(raw)) {
				deg[i] = int64(len(raw)) - 1
			}
		}
		d := FromDegrees(deg)
		return d.IsGraphical() == bruteForceGraphical(deg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependent(t *testing.T) {
	d := mustDist(t, map[int64]int64{1: 2, 2: 2})
	c := d.Clone()
	c.Classes[0].Count = 99
	if d.Classes[0].Count == 99 {
		t.Error("Clone shares storage")
	}
}
