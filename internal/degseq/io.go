package degseq

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Write emits the distribution as "degree count" lines, ascending.
func Write(w io.Writer, d *Distribution) error {
	bw := bufio.NewWriter(w)
	for _, c := range d.Classes {
		if _, err := fmt.Fprintf(bw, "%d %d\n", c.Degree, c.Count); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses "degree count" lines. Blank lines and '#' comments are
// skipped; classes may appear in any order but degrees must be unique.
func Read(r io.Reader) (*Distribution, error) {
	sc := bufio.NewScanner(r)
	counts := map[int64]int64{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("degseq: line %d: want \"degree count\", got %q", line, text)
		}
		d, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("degseq: line %d: bad degree %q", line, fields[0])
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("degseq: line %d: bad count %q", line, fields[1])
		}
		if _, dup := counts[d]; dup {
			return nil, fmt.Errorf("degseq: line %d: duplicate degree %d", line, d)
		}
		counts[d] = n
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("degseq: reading distribution: %w", err)
	}
	return FromCounts(counts)
}
