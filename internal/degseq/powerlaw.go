package degseq

import (
	"fmt"
	"math"

	"nullgraph/internal/rng"
)

// PowerLawConfig describes a discrete truncated power-law degree
// distribution: P(d) ∝ d^(-Gamma) for d in [MinDegree, MaxDegree].
// This is the synthetic stand-in for the paper's SNAP-derived
// distributions (see DESIGN.md §4): every experiment consumes only the
// degree distribution, and skew/density are controlled by Gamma,
// MinDegree and MaxDegree.
type PowerLawConfig struct {
	NumVertices int64
	MinDegree   int64
	MaxDegree   int64
	Gamma       float64
	Seed        uint64
}

// Validate checks the configuration for internal consistency.
func (c PowerLawConfig) Validate() error {
	switch {
	case c.NumVertices <= 0:
		return fmt.Errorf("degseq: NumVertices = %d, want > 0", c.NumVertices)
	case c.MinDegree < 1:
		return fmt.Errorf("degseq: MinDegree = %d, want >= 1", c.MinDegree)
	case c.MaxDegree < c.MinDegree:
		return fmt.Errorf("degseq: MaxDegree = %d < MinDegree = %d", c.MaxDegree, c.MinDegree)
	case c.MaxDegree >= c.NumVertices:
		return fmt.Errorf("degseq: MaxDegree = %d must be < NumVertices = %d for a simple graph", c.MaxDegree, c.NumVertices)
	case c.Gamma <= 0:
		return fmt.Errorf("degseq: Gamma = %v, want > 0", c.Gamma)
	}
	return nil
}

// SamplePowerLaw draws a degree sequence of NumVertices degrees i.i.d.
// from the truncated power law, then repairs it to an even stub count
// (incrementing one vertex's degree by 1 if needed, as configuration-
// model codes conventionally do) and finally nudges it to graphicality.
// The result is returned as a Distribution.
func SamplePowerLaw(cfg PowerLawConfig) (*Distribution, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)
	// Build the class weights once; the support is small (d_max values).
	support := cfg.MaxDegree - cfg.MinDegree + 1
	weights := make([]float64, support)
	for i := range weights {
		d := float64(cfg.MinDegree + int64(i))
		weights[i] = math.Pow(d, -cfg.Gamma)
	}
	sampler := rng.NewAliasSampler(weights)
	counts := make([]int64, support)
	for v := int64(0); v < cfg.NumVertices; v++ {
		counts[sampler.Sample(r)]++
	}
	// Ensure the maximum degree actually appears, so the synthetic
	// dataset hits its advertised d_max (it drives the skew phenomena
	// the paper studies). Move one vertex from the most populous class.
	if counts[support-1] == 0 {
		biggest := 0
		for i := range counts {
			if counts[i] > counts[biggest] {
				biggest = i
			}
		}
		counts[biggest]--
		counts[support-1]++
	}
	dist := distFromSupport(cfg.MinDegree, counts)
	repairParity(dist)
	if err := nudgeGraphical(dist); err != nil {
		return nil, err
	}
	return dist, nil
}

func distFromSupport(minDegree int64, counts []int64) *Distribution {
	classes := make([]Class, 0, len(counts))
	for i, n := range counts {
		if n > 0 {
			classes = append(classes, Class{Degree: minDegree + int64(i), Count: n})
		}
	}
	return &Distribution{Classes: classes}
}

// repairParity makes the stub count even by shifting one vertex between
// adjacent degree classes.
func repairParity(d *Distribution) {
	if d.NumStubs()%2 == 0 {
		return
	}
	// Find an odd-degree class and move one vertex up by one degree.
	for i := range d.Classes {
		if d.Classes[i].Degree%2 == 1 {
			moveOne(d, i, d.Classes[i].Degree+1)
			return
		}
	}
	// All degrees even yet odd stub total is impossible; nothing to do.
}

// moveOne moves a single vertex from class index i to degree newDeg,
// restoring distribution invariants.
func moveOne(d *Distribution, i int, newDeg int64) {
	counts := map[int64]int64{}
	for _, c := range d.Classes {
		counts[c.Degree] = c.Count
	}
	old := d.Classes[i].Degree
	counts[old]--
	if counts[old] == 0 {
		delete(counts, old)
	}
	counts[newDeg]++
	nd, err := FromCounts(counts)
	if err != nil {
		// Cannot happen: counts are positive by construction.
		panic(err)
	}
	d.Classes = nd.Classes
}

// nudgeGraphical decreases the maximum degree until the sequence passes
// Erdős–Gallai. Power-law draws with d_max < n are almost always
// graphical already; the loop exists for adversarial parameter choices.
func nudgeGraphical(d *Distribution) error {
	for iter := 0; iter < 1024; iter++ {
		if d.IsGraphical() {
			return nil
		}
		top := len(d.Classes) - 1
		if top < 0 || d.Classes[top].Degree <= 1 {
			return fmt.Errorf("degseq: could not repair sequence to graphical")
		}
		// Move one max-degree vertex down by one; parity is preserved by
		// also moving one min-degree vertex up by one.
		moveOne(d, len(d.Classes)-1, d.Classes[len(d.Classes)-1].Degree-1)
		moveOne(d, 0, d.Classes[0].Degree+1)
	}
	return fmt.Errorf("degseq: graphicality repair did not converge")
}
