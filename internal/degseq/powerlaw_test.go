package degseq

import (
	"math"
	"strings"
	"testing"
)

func TestPowerLawConfigValidate(t *testing.T) {
	good := PowerLawConfig{NumVertices: 100, MinDegree: 1, MaxDegree: 20, Gamma: 2.5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []PowerLawConfig{
		{NumVertices: 0, MinDegree: 1, MaxDegree: 5, Gamma: 2},
		{NumVertices: 10, MinDegree: 0, MaxDegree: 5, Gamma: 2},
		{NumVertices: 10, MinDegree: 6, MaxDegree: 5, Gamma: 2},
		{NumVertices: 10, MinDegree: 1, MaxDegree: 10, Gamma: 2},
		{NumVertices: 10, MinDegree: 1, MaxDegree: 5, Gamma: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestSamplePowerLawBasicInvariants(t *testing.T) {
	cfg := PowerLawConfig{NumVertices: 5000, MinDegree: 2, MaxDegree: 200, Gamma: 2.3, Seed: 42}
	d, err := SamplePowerLaw(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := d.NumVertices(); got != cfg.NumVertices {
		t.Errorf("NumVertices = %d, want %d", got, cfg.NumVertices)
	}
	if d.NumStubs()%2 != 0 {
		t.Error("odd stub count")
	}
	if !d.IsGraphical() {
		t.Error("sampled distribution not graphical")
	}
	if d.MaxDegree() > cfg.MaxDegree+1 {
		t.Errorf("MaxDegree = %d exceeds configured %d (+1 parity slack)", d.MaxDegree(), cfg.MaxDegree)
	}
	if d.Classes[0].Degree < cfg.MinDegree {
		t.Errorf("min degree %d below configured %d", d.Classes[0].Degree, cfg.MinDegree)
	}
}

func TestSamplePowerLawDeterministic(t *testing.T) {
	cfg := PowerLawConfig{NumVertices: 2000, MinDegree: 1, MaxDegree: 100, Gamma: 2.0, Seed: 7}
	a, err := SamplePowerLaw(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SamplePowerLaw(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Classes) != len(b.Classes) {
		t.Fatal("same seed, different class counts")
	}
	for i := range a.Classes {
		if a.Classes[i] != b.Classes[i] {
			t.Fatalf("same seed diverged at class %d", i)
		}
	}
	cfg2 := cfg
	cfg2.Seed = 8
	c, err := SamplePowerLaw(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Classes) == len(c.Classes)
	if same {
		for i := range a.Classes {
			if a.Classes[i] != c.Classes[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical distributions")
	}
}

func TestSamplePowerLawSkew(t *testing.T) {
	// Larger gamma → lighter tail → smaller mean degree.
	heavy, err := SamplePowerLaw(PowerLawConfig{NumVertices: 20000, MinDegree: 1, MaxDegree: 500, Gamma: 1.8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	light, err := SamplePowerLaw(PowerLawConfig{NumVertices: 20000, MinDegree: 1, MaxDegree: 500, Gamma: 3.0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	meanHeavy := float64(heavy.NumStubs()) / float64(heavy.NumVertices())
	meanLight := float64(light.NumStubs()) / float64(light.NumVertices())
	if meanHeavy <= meanLight {
		t.Errorf("gamma=1.8 mean %v should exceed gamma=3.0 mean %v", meanHeavy, meanLight)
	}
	// Tail frequencies should roughly follow the exponent: check that
	// P(d=2)/P(d=4) is near 2^gamma for the light case.
	counts := map[int64]int64{}
	for _, c := range light.Classes {
		counts[c.Degree] = c.Count
	}
	if counts[2] > 0 && counts[4] > 0 {
		ratio := float64(counts[2]) / float64(counts[4])
		want := math.Pow(2, 3.0)
		if ratio < want/2 || ratio > want*2 {
			t.Errorf("count ratio P(2)/P(4) = %v, want within 2x of %v", ratio, want)
		}
	}
}

func TestSamplePowerLawMaxDegreePresent(t *testing.T) {
	d, err := SamplePowerLaw(PowerLawConfig{NumVertices: 500, MinDegree: 1, MaxDegree: 400, Gamma: 3.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// With gamma 3.5 a natural draw almost surely misses d=400; the
	// generator forces the advertised max degree (±1 for parity repair).
	if d.MaxDegree() < 399 {
		t.Errorf("MaxDegree = %d, want ~400", d.MaxDegree())
	}
	if !d.IsGraphical() {
		t.Error("not graphical after forcing max degree")
	}
}

func TestDistributionIO(t *testing.T) {
	d := mustDist(t, map[int64]int64{1: 10, 7: 3, 2: 5})
	var sb strings.Builder
	if err := Write(&sb, d); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Classes) != len(d.Classes) {
		t.Fatalf("round trip class count %d, want %d", len(got.Classes), len(d.Classes))
	}
	for i := range d.Classes {
		if got.Classes[i] != d.Classes[i] {
			t.Errorf("class %d: %+v vs %+v", i, got.Classes[i], d.Classes[i])
		}
	}
}

func TestReadSkipsComments(t *testing.T) {
	in := "# header\n\n3 2\n1 5\n"
	d, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumClasses() != 2 || d.Classes[0].Degree != 1 {
		t.Errorf("parsed %+v", d)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"1\n",
		"x 2\n",
		"1 x\n",
		"-1 2\n",
		"1 0\n",
		"1 2\n1 3\n", // duplicate degree
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}
