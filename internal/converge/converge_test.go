package converge

import (
	"math"
	"testing"

	"nullgraph/internal/rng"
)

// drive feeds the monitor a synthetic chain: eval values come from the
// monitor's own eval closure, cheap signals from sr/es. Returns the
// iteration (1-based) at which the monitor fired, or 0 if it ran out of
// maxIter.
func drive(m *Monitor, maxIter int, sr func(it int) float64, es func(it int) float64) int {
	for it := 1; it <= maxIter; it++ {
		if m.Observe(sr(it), es(it)) {
			return it
		}
	}
	return 0
}

func constf(v float64) func(int) float64 { return func(int) float64 { return v } }

func TestNeverFiresBeforeFloor(t *testing.T) {
	for _, floor := range []int{5, 17, 30} {
		m := NewMonitor(Policy{Floor: floor, Budget: 10 * floor, Growth: 1.05, Hysteresis: 1}, func() float64 { return 1.0 })
		fired := drive(m, 10*floor, constf(0.5), constf(1))
		if fired == 0 {
			t.Fatalf("floor %d: monitor never fired on a constant trace", floor)
		}
		if fired <= floor {
			t.Fatalf("floor %d: fired at iteration %d, inside the floor", floor, fired)
		}
		out := m.Outcome()
		if out.Reason != "converged" {
			t.Fatalf("floor %d: reason %q, want converged", floor, out.Reason)
		}
		if out.Iterations != fired {
			t.Fatalf("floor %d: outcome iterations %d != fired %d", floor, out.Iterations, fired)
		}
	}
}

func TestStopLagsDecidingCheckpoint(t *testing.T) {
	// The fire iteration must be strictly after the checkpoint that
	// established convergence: the returned state postdates everything
	// the diagnostic saw.
	m := NewMonitor(Policy{Floor: 10, Budget: 500, Growth: 1.05, Hysteresis: 2}, func() float64 { return 3.14 })
	fired := drive(m, 500, constf(0.4), constf(1))
	if fired == 0 {
		t.Fatal("monitor never fired")
	}
	cps := m.Outcome().Checkpoints
	last := cps[len(cps)-1]
	if !last.Converged {
		t.Fatal("last checkpoint not converged")
	}
	if fired <= last.Iteration {
		t.Fatalf("fired at %d, not after deciding checkpoint at %d", fired, last.Iteration)
	}
}

func TestBudgetCapsDivergentTrace(t *testing.T) {
	// A trace that keeps trending never passes the Geweke test; the
	// budget must end the run with reason "budget".
	k := 0
	m := NewMonitor(Policy{Floor: 4, Budget: 64, Hysteresis: 2}, func() float64 { k++; return float64(k * k) })
	fired := drive(m, 1000, func(it int) float64 { return 1 / float64(it) }, constf(0))
	if fired != 64 {
		t.Fatalf("fired at %d, want budget 64", fired)
	}
	out := m.Outcome()
	if out.Reason != "budget" {
		t.Fatalf("reason %q, want budget", out.Reason)
	}
}

func TestHysteresisFiltersOneOffConvergence(t *testing.T) {
	// Trace alternates: stretches of constant values (converged
	// checkpoints) interrupted by jumps that reset the streak. With a
	// high hysteresis the monitor must wait for a long enough stretch.
	mk := func(hyst int) int {
		k := 0
		eval := func() float64 {
			k++
			if k%3 == 0 { // every third checkpoint jumps
				return float64(100 * k)
			}
			return 1.0
		}
		m := NewMonitor(Policy{Floor: 4, Budget: 2000, Growth: 1.02, Hysteresis: hyst, Z: 1.5}, eval)
		return drive(m, 2000, constf(0.5), constf(1))
	}
	lo, hi := mk(1), mk(3)
	if lo == 0 {
		t.Fatal("hysteresis 1 never fired")
	}
	if hi != 0 && hi <= lo {
		t.Fatalf("hysteresis 3 fired at %d, not later than hysteresis 1 at %d", hi, lo)
	}
}

func TestMinEverSwappedGuard(t *testing.T) {
	// Identical constant traces; the ever-swapped guard alone separates
	// the two runs.
	run := func(minES float64, es float64) int {
		m := NewMonitor(Policy{Floor: 4, Budget: 300, Growth: 1.05, Hysteresis: 1, MinEverSwapped: minES}, constFloat(1))
		return drive(m, 300, constf(0.5), constf(es))
	}
	without := run(0, 0.2)
	blocked := run(0.9, 0.2)
	passed := run(0.9, 0.95)
	if without == 0 || passed == 0 {
		t.Fatal("unguarded or satisfied run never fired")
	}
	if blocked != 300 {
		t.Fatalf("guarded run fired at %d, want budget 300", blocked)
	}
	if m := run(0.9, 0.95); m == 0 {
		t.Fatal("guard satisfied but never fired")
	}
}

func constFloat(v float64) func() float64 { return func() float64 { return v } }

func TestNilEvalForcesSuccessRateTrace(t *testing.T) {
	m := NewMonitor(Policy{Floor: 4, Budget: 200, Growth: 1.1, Hysteresis: 1}, nil)
	if m.Policy().Statistic != SuccessRate {
		t.Fatalf("statistic %v, want SuccessRate", m.Policy().Statistic)
	}
	// Plateaued success rate converges.
	fired := drive(m, 200, constf(0.31), constf(0))
	if fired == 0 {
		t.Fatal("success-rate monitor never fired on plateaued rate")
	}
	out := m.Outcome()
	if out.Statistic != "success-rate" {
		t.Fatalf("outcome statistic %q", out.Statistic)
	}
}

func TestResetReproduces(t *testing.T) {
	k := 0
	eval := func() float64 {
		k++
		return math.Sin(float64(k) / 3)
	}
	m := NewMonitor(Policy{Floor: 6, Budget: 400, Growth: 1.2}, eval)
	first := drive(m, 400, constf(0.5), constf(1))
	out1 := m.Outcome()
	k = 0
	m.Reset()
	second := drive(m, 400, constf(0.5), constf(1))
	out2 := m.Outcome()
	if first != second {
		t.Fatalf("reset run fired at %d, first at %d", second, first)
	}
	if len(out1.Checkpoints) != len(out2.Checkpoints) {
		t.Fatalf("checkpoint counts differ: %d vs %d", len(out1.Checkpoints), len(out2.Checkpoints))
	}
	for i := range out1.Checkpoints {
		if out1.Checkpoints[i] != out2.Checkpoints[i] {
			t.Fatalf("checkpoint %d differs after reset", i)
		}
	}
}

func TestGewekeZProperties(t *testing.T) {
	if !math.IsNaN(gewekeZ([]float64{1, 2, 3})) {
		t.Fatal("short trace should yield NaN")
	}
	if z := gewekeZ([]float64{5, 5, 5, 5, 5, 5, 5, 5}); z != 0 {
		t.Fatalf("constant trace z = %v, want 0", z)
	}
	// A strong trend must produce a large |z|.
	trend := make([]float64, 40)
	for i := range trend {
		trend[i] = float64(i)
	}
	if z := gewekeZ(trend); math.Abs(z) < 3 {
		t.Fatalf("trending trace z = %v, want |z| >= 3", z)
	}
	// Stationary noise should usually give a modest |z|.
	src := rng.New(77)
	noise := make([]float64, 64)
	for i := range noise {
		noise[i] = src.Float64()
	}
	if z := gewekeZ(noise); math.Abs(z) > 4 {
		t.Fatalf("stationary noise z = %v, unexpectedly extreme", z)
	}
}

func TestCheckpointScheduleIsGeometricAndMonotonic(t *testing.T) {
	m := NewMonitor(Policy{Floor: 4, Budget: 100000, Growth: 1.5, Hysteresis: 1000000}, constFloat(1))
	drive(m, 5000, constf(0.5), constf(1))
	cps := m.Outcome().Checkpoints
	if len(cps) < 8 {
		t.Fatalf("only %d checkpoints over 5000 iterations", len(cps))
	}
	for i := 1; i < len(cps); i++ {
		if cps[i].Iteration <= cps[i-1].Iteration {
			t.Fatalf("checkpoint iterations not increasing: %d then %d", cps[i-1].Iteration, cps[i].Iteration)
		}
	}
	// Geometric spacing: the number of checkpoints is logarithmic, not
	// linear, in the iteration count.
	if len(cps) > 40 {
		t.Fatalf("%d checkpoints over 5000 iterations: schedule is not geometric", len(cps))
	}
}
