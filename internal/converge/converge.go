// Package converge implements an online convergence monitor for the
// double-edge swap chain — the adaptive alternative to a fixed scan
// count. The paper's discussion section leaves "how many iterations is
// enough" as an empirical question, and the survey literature (Greenhill
// 2022; Dutta–Fosdick–Clauset 2021) treats convergence diagnostics as
// the practical gate on swap-chain samplers. This package packages one
// such diagnostic as a cheap, allocation-light policy the engine can
// consult after every iteration.
//
// # Design
//
// A Monitor tracks two kinds of signals:
//
//   - Cheap per-iteration signals that the swap engine computes anyway:
//     the success rate (committed / attempted swaps, the paper's Fig. 6
//     signal) and the ever-swapped fraction (its empirical mixing
//     heuristic).
//   - A scalar graph statistic (degree assortativity or triangle count,
//     via a caller-supplied closure) evaluated only at geometrically
//     spaced checkpoint iterations, so the O(m) statistic never
//     dominates the O(m) iterations it is judging.
//
// At each checkpoint past Policy.Floor the Monitor applies a
// Geweke-style equality-of-means test between the first and second half
// of the retained checkpoint trace (burn-in discarded), plus a plateau
// test on the success rate. Hysteresis requires several consecutive
// converged checkpoints before the monitor declares convergence, which
// filters one-off coincidences of the z statistic.
//
// # Unbiasedness of the returned sample
//
// A subtlety of adaptive stopping: if the run ends at the exact
// iteration the diagnostic examined, the returned graph is conditioned
// on the diagnostic's verdict, which in principle biases the sample.
// The Monitor therefore never stops at the deciding checkpoint: once
// convergence (with hysteresis) is established at iteration t, the stop
// fires after iteration t+1 — one full sweep of ⌊m/2⌋ fresh proposals
// past the last state any test statistic saw. The statcheck
// uniformity gates (exact enumeration over small spaces) run with
// adaptive policies to keep this honest empirically.
//
// The monitor never fires before Policy.Floor iterations, structurally:
// enumerable-space uniformity floors stay intact no matter what the
// traces do.
package converge

import (
	"fmt"
	"math"

	"nullgraph/internal/mixing"
	"nullgraph/internal/obs"
)

// Statistic selects the checkpoint trace the Geweke test runs on.
type Statistic int

const (
	// Assortativity tracks the degree correlation coefficient (default).
	// It is O(m) per checkpoint and sensitive to residual structure in
	// degree-degree space, where swap chains start far from the null.
	Assortativity Statistic = iota
	// Triangles tracks the global triangle count — more expensive per
	// checkpoint but directly the motif statistic null models calibrate.
	Triangles
	// SuccessRate uses the per-iteration swap success rate as the
	// checkpoint trace, costing nothing beyond the engine's own
	// counters. This is the only choice on the directed path, where no
	// cheap undirected statistic applies.
	SuccessRate
)

// String names the statistic.
func (s Statistic) String() string {
	switch s {
	case Assortativity:
		return "assortativity"
	case Triangles:
		return "triangles"
	case SuccessRate:
		return "success-rate"
	default:
		return fmt.Sprintf("Statistic(%d)", int(s))
	}
}

// Policy configures adaptive stopping. The zero value gets sane
// defaults from withDefaults; only Floor and Budget usually need
// setting. All fields are plain data so a Policy can cross API layers
// by value.
type Policy struct {
	// Statistic selects the checkpoint trace (default Assortativity).
	Statistic Statistic
	// Floor is the minimum number of completed iterations before any
	// adaptive stop may fire — the enumerable-space uniformity floor.
	// <= 0 defaults to DefaultFloor.
	Floor int
	// Budget is the hard iteration cap; the run stops there regardless
	// of convergence, with reason "budget". <= 0 defaults to
	// DefaultBudget.
	Budget int
	// Growth is the geometric checkpoint spacing factor (> 1). The k-th
	// checkpoint falls near FirstCheckpoint·Growth^k. <= 1.01 defaults
	// to 1.4.
	Growth float64
	// Z is the |z| threshold of the Geweke equality-of-means test on
	// the checkpoint trace; smaller is stricter (stops later). <= 0
	// defaults to 1.5.
	Z float64
	// Hysteresis is the number of consecutive converged checkpoints
	// required before the monitor declares convergence. <= 0 defaults
	// to 2.
	Hysteresis int
	// SuccessRateTol is the absolute tolerance on the change of the
	// mean success rate between consecutive checkpoint windows; the
	// plateau test passes when |Δ| <= SuccessRateTol. <= 0 defaults to
	// 0.05.
	SuccessRateTol float64
	// MinEverSwapped, when > 0, additionally requires the ever-swapped
	// fraction to reach this level before stopping (the paper's own
	// heuristic as a guard). Requires the engine to track swaps; 0
	// disables the guard.
	MinEverSwapped float64
}

// Defaults used by withDefaults.
const (
	DefaultFloor  = 8
	DefaultBudget = 256

	// firstCheckpoint is where the checkpoint schedule starts; earlier
	// iterations only accumulate cheap signals.
	firstCheckpoint = 4
	// minCheckpoints is the fewest checkpoint samples the Geweke test
	// will run on (below it the halves are too short to mean anything).
	minCheckpoints = 6
)

func (p Policy) withDefaults() Policy {
	if p.Floor <= 0 {
		p.Floor = DefaultFloor
	}
	if p.Budget <= 0 {
		p.Budget = DefaultBudget
	}
	if p.Budget < p.Floor {
		p.Budget = p.Floor
	}
	if p.Growth <= 1.01 {
		p.Growth = 1.4
	}
	if p.Z <= 0 {
		p.Z = 1.5
	}
	if p.Hysteresis <= 0 {
		p.Hysteresis = 2
	}
	if p.SuccessRateTol <= 0 {
		p.SuccessRateTol = 0.05
	}
	return p
}

// Checkpoint records one diagnostic evaluation. It is the RunReport's
// stop-checkpoint type (obs.StopCheckpoint) so outcomes serialize into
// reports without conversion; see that type for field docs.
type Checkpoint = obs.StopCheckpoint

// Outcome summarizes why and when a run stopped. It is the RunReport's
// stop section (obs.StopReport); see that type for field docs.
type Outcome = obs.StopReport

// Monitor is the online stopper. Construct with NewMonitor, feed it
// Observe once per completed iteration, and read Outcome afterwards.
// A Monitor is single-goroutine, like the engine loop it rides.
type Monitor struct {
	pol  Policy
	eval func() float64

	iter      int // completed iterations observed
	nextCheck int // iteration count that triggers the next checkpoint
	gap       float64

	// Per-window success-rate accumulation (since last checkpoint).
	srSum   float64
	srCount int
	lastSR  float64 // previous checkpoint's windowed success rate
	haveSR  bool

	trace       []float64 // checkpoint trace values
	checkpoints []Checkpoint
	streak      int
	pending     bool // converged; fire at the next Observe
	fired       bool
	reason      string
}

// NewMonitor builds a monitor for one run. eval returns the scalar
// graph statistic of the current graph; it is called only at checkpoint
// iterations. A nil eval forces Statistic == SuccessRate (the directed
// path), where the checkpoint trace is the windowed success rate and no
// graph evaluation ever happens.
func NewMonitor(pol Policy, eval func() float64) *Monitor {
	pol = pol.withDefaults()
	if eval == nil {
		pol.Statistic = SuccessRate
	}
	m := &Monitor{pol: pol, eval: eval}
	m.Reset()
	return m
}

// Policy returns the effective (defaulted) policy.
func (m *Monitor) Policy() Policy { return m.pol }

// Reset rearms the monitor for a fresh chain, keeping the policy and
// trace capacity. Sessions reuse one monitor across samples.
func (m *Monitor) Reset() {
	m.iter = 0
	m.nextCheck = firstCheckpoint
	m.gap = firstCheckpoint
	m.srSum, m.srCount = 0, 0
	m.lastSR, m.haveSR = 0, false
	m.trace = m.trace[:0]
	m.checkpoints = m.checkpoints[:0]
	m.streak = 0
	m.pending = false
	m.fired = false
	m.reason = ""
}

// Observe ingests one completed iteration's cheap signals and returns
// true when the run should stop. successRate is committed/attempted
// swaps of this iteration (0 when no attempts); everSwapped is the
// engine's ever-swapped fraction (0 when untracked).
func (m *Monitor) Observe(successRate, everSwapped float64) bool {
	m.iter++
	m.srSum += successRate
	m.srCount++

	// A convergence verdict from the previous checkpoint stops the run
	// now — one iteration after the last state the diagnostic examined,
	// so the returned graph was never conditioned on (see package doc).
	if m.pending {
		m.fired = true
		m.reason = "converged"
		return true
	}
	if m.iter >= m.pol.Budget {
		m.fired = true
		m.reason = "budget"
		return true
	}
	if m.iter >= m.nextCheck {
		m.checkpoint(everSwapped)
		m.advanceSchedule()
	}
	return false
}

// advanceSchedule moves the next checkpoint geometrically, always by at
// least one iteration.
func (m *Monitor) advanceSchedule() {
	m.gap *= m.pol.Growth
	next := int(m.gap)
	if next <= m.nextCheck {
		next = m.nextCheck + 1
	}
	m.nextCheck = next
}

// checkpoint evaluates the statistic, runs the tests, and updates the
// hysteresis streak.
func (m *Monitor) checkpoint(everSwapped float64) {
	sr := 0.0
	if m.srCount > 0 {
		sr = m.srSum / float64(m.srCount)
	}
	m.srSum, m.srCount = 0, 0

	stat := sr
	if m.eval != nil {
		stat = m.eval()
	}
	m.trace = append(m.trace, stat)

	z := gewekeZ(m.trace)
	tau := 1.0
	if len(m.trace) >= minCheckpoints {
		tau = mixing.IntegratedTime(m.trace)
	}

	converged := m.iter >= m.pol.Floor &&
		!math.IsNaN(z) && math.Abs(z) <= m.pol.Z &&
		(!m.haveSR || math.Abs(sr-m.lastSR) <= m.pol.SuccessRateTol) &&
		(m.pol.MinEverSwapped <= 0 || everSwapped >= m.pol.MinEverSwapped)
	m.lastSR, m.haveSR = sr, true

	if converged {
		m.streak++
	} else {
		m.streak = 0
	}
	if m.streak >= m.pol.Hysteresis {
		m.pending = true
	}

	zRec := z
	if math.IsNaN(zRec) {
		zRec = 0
	}
	m.checkpoints = append(m.checkpoints, Checkpoint{
		Iteration:   m.iter,
		Stat:        stat,
		SuccessRate: sr,
		EverSwapped: everSwapped,
		Z:           zRec,
		Tau:         tau,
		Converged:   converged,
	})
}

// Outcome summarizes the run so far. Call after the engine loop ends;
// if the monitor never fired, the caller ran out of budget (or was
// canceled) and the reason reflects that.
func (m *Monitor) Outcome() Outcome {
	reason := m.reason
	if reason == "" {
		reason = "budget"
	}
	cps := make([]Checkpoint, len(m.checkpoints))
	copy(cps, m.checkpoints)
	return Outcome{
		Policy:      "adaptive",
		Statistic:   m.pol.Statistic.String(),
		Reason:      reason,
		Iterations:  m.iter,
		Floor:       m.pol.Floor,
		Budget:      m.pol.Budget,
		Checkpoints: cps,
	}
}

// gewekeZ computes the equality-of-means z statistic between the first
// and second half of the trace after discarding the first quarter as
// burn-in. It returns NaN when fewer than minCheckpoints samples exist.
// A zero-variance (constant) trace compares equal: z = 0.
func gewekeZ(trace []float64) float64 {
	if len(trace) < minCheckpoints {
		return math.NaN()
	}
	rest := trace[len(trace)/4:]
	half := len(rest) / 2
	a, b := rest[:half], rest[len(rest)-half:]
	ma, va := meanVar(a)
	mb, vb := meanVar(b)
	se := math.Sqrt(va/float64(len(a)) + vb/float64(len(b)))
	if se == 0 {
		if ma == mb {
			return 0
		}
		return math.Inf(1)
	}
	return (ma - mb) / se
}

func meanVar(s []float64) (mean, variance float64) {
	n := float64(len(s))
	for _, v := range s {
		mean += v
	}
	mean /= n
	for _, v := range s {
		variance += (v - mean) * (v - mean)
	}
	variance /= n
	return mean, variance
}
