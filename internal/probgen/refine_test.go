package probgen

import (
	"math"
	"testing"

	"nullgraph/internal/degseq"
)

func sumAbs(vals []float64) float64 {
	var s float64
	for _, v := range vals {
		s += math.Abs(v)
	}
	return s
}

func TestRefineReducesResiduals(t *testing.T) {
	d, err := degseq.SamplePowerLaw(degseq.PowerLawConfig{
		NumVertices: 6500, MinDegree: 1, MaxDegree: 1500, Gamma: 2.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	base := Generate(d, 2)
	refined := Refine(d, base, 12)
	before := sumAbs(RowResiduals(d, base))
	after := sumAbs(RowResiduals(d, refined))
	if after >= before {
		t.Errorf("Refine did not reduce residuals: %v -> %v", before, after)
	}
	// Validity preserved.
	for i := 0; i < refined.Dim(); i++ {
		for j := 0; j < refined.Dim(); j++ {
			if v := refined.At(i, j); v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("P(%d,%d) = %v", i, j, v)
			}
		}
	}
	// Expected edges closer to target too.
	target := float64(d.NumEdges())
	if math.Abs(ExpectedEdges(d, refined)-target) > math.Abs(ExpectedEdges(d, base)-target)+1e-9 {
		t.Error("Refine moved expected edge count away from target")
	}
}

func TestRefineFixedPointOnExactMatrix(t *testing.T) {
	// An already-exact matrix is (nearly) a fixed point.
	d := mustDist(t, map[int64]int64{10: 1000})
	base := Generate(d, 1) // exact for regular inputs
	refined := Refine(d, base, 5)
	if diff := L1Distance(base, refined); diff > 1e-9 {
		t.Errorf("exact matrix moved by %v", diff)
	}
}

func TestRefineDoesNotMutateInput(t *testing.T) {
	d := mustDist(t, map[int64]int64{1: 100, 30: 5})
	base := Generate(d, 1)
	snapshot := base.Clone()
	Refine(d, base, 6)
	if L1Distance(base, snapshot) != 0 {
		t.Error("Refine mutated its input matrix")
	}
}

func TestRefineImprovesChungLu(t *testing.T) {
	// Refinement should rescue even the naive Chung-Lu matrix
	// substantially on a skewed instance.
	d, err := degseq.SamplePowerLaw(degseq.PowerLawConfig{
		NumVertices: 2000, MinDegree: 1, MaxDegree: 300, Gamma: 2.0, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	cl := ChungLu(d)
	refined := Refine(d, cl, 16)
	before := sumAbs(RowResiduals(d, cl))
	after := sumAbs(RowResiduals(d, refined))
	if after > before/2 {
		t.Errorf("refined Chung-Lu residual %v, want < half of %v", after, before)
	}
}

func TestRefineZeroAndEmpty(t *testing.T) {
	empty := &degseq.Distribution{}
	out := Refine(empty, NewMatrix(0), 3)
	if out.Dim() != 0 {
		t.Error("empty refine mis-sized")
	}
	zero := mustDist(t, map[int64]int64{0: 5})
	m := Generate(zero, 1)
	refined := Refine(zero, m, 3)
	if refined.At(0, 0) != 0 {
		t.Error("zero-degree class gained probability")
	}
}

func TestRefineDefaultPasses(t *testing.T) {
	d := mustDist(t, map[int64]int64{1: 50, 5: 10})
	m := Generate(d, 1)
	// passes <= 0 must still work (defaults internally).
	refined := Refine(d, m, 0)
	if refined == nil || refined.Dim() != m.Dim() {
		t.Fatal("default-pass refine broken")
	}
}
