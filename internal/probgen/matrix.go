// Package probgen computes pairwise degree-class attachment
// probabilities for edge-skipping generation (Section IV-A of the
// paper): a heuristic O(|D|²)-work method based on preferential
// inter-class free-stub pairing whose output, fed to a Bernoulli
// edge-skipping generator, matches the target degree distribution in
// expectation. The naive Chung-Lu probabilities are also provided as
// the baseline the paper compares against.
package probgen

import "fmt"

// Matrix is a symmetric |D|×|D| matrix of pairwise class probabilities,
// stored dense. P(i,j) is the probability that a *specific* vertex of
// class i and a *specific* vertex of class j are connected.
type Matrix struct {
	k    int
	vals []float64
}

// NewMatrix allocates a zero k×k matrix.
func NewMatrix(k int) *Matrix {
	return &Matrix{k: k, vals: make([]float64, k*k)}
}

// Dim returns |D|.
func (m *Matrix) Dim() int { return m.k }

// At returns P(i,j).
func (m *Matrix) At(i, j int) float64 { return m.vals[i*m.k+j] }

// Set assigns P(i,j) and P(j,i) simultaneously, preserving symmetry.
func (m *Matrix) Set(i, j int, v float64) {
	m.vals[i*m.k+j] = v
	m.vals[j*m.k+i] = v
}

// Add accumulates into P(i,j) only (used while the two asymmetric
// halves p_ij and p_ji are being built; call Symmetrize after).
func (m *Matrix) add(i, j int, v float64) { m.vals[i*m.k+j] += v }

// Symmetrize replaces P with P_ij = p_ij + p_ji, the paper's final
// combination of the two per-ordering contributions.
func (m *Matrix) symmetrize() {
	for i := 0; i < m.k; i++ {
		for j := i + 1; j < m.k; j++ {
			s := m.vals[i*m.k+j] + m.vals[j*m.k+i]
			m.vals[i*m.k+j] = s
			m.vals[j*m.k+i] = s
		}
	}
}

// Clamp bounds every entry to [0, 1].
func (m *Matrix) Clamp() {
	for i, v := range m.vals {
		if v < 0 {
			m.vals[i] = 0
		} else if v > 1 {
			m.vals[i] = 1
		}
	}
}

// L1Distance returns Σ|a_ij − b_ij| over all entries. It panics on
// dimension mismatch. This is the error measure of the paper's Figure 4.
func L1Distance(a, b *Matrix) float64 {
	if a.k != b.k {
		panic(fmt.Sprintf("probgen: L1Distance dims %d vs %d", a.k, b.k))
	}
	var sum float64
	for i := range a.vals {
		d := a.vals[i] - b.vals[i]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum
}

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.k)
	copy(c.vals, m.vals)
	return c
}

// WeightedL1Distance returns Σ pairs(i,j)·|a_ij − b_ij| over unordered
// class pairs, where pairs(i,j) is the number of vertex pairs the cell
// governs (n_i·n_j off-diagonal, C(n_i,2) diagonal): the distance
// between the *expected edge placements* of two probability matrices,
// in edges. Compared to the raw entry-wise L1 it weights cells by how
// much graph they control, which suppresses the sampling noise of
// near-empty singleton-class cells when the matrices are empirical.
func WeightedL1Distance(counts []int64, a, b *Matrix) float64 {
	if a.k != b.k || len(counts) != a.k {
		panic("probgen: WeightedL1Distance dimension mismatch")
	}
	var sum float64
	for i := 0; i < a.k; i++ {
		ni := float64(counts[i])
		for j := i; j < a.k; j++ {
			var pairs float64
			if i == j {
				pairs = ni * (ni - 1) / 2
			} else {
				pairs = ni * float64(counts[j])
			}
			d := a.At(i, j) - b.At(i, j)
			if d < 0 {
				d = -d
			}
			sum += pairs * d
		}
	}
	return sum
}
