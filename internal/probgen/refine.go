package probgen

import (
	"math"

	"nullgraph/internal/degseq"
	"nullgraph/internal/par"
)

// Refine improves a probability matrix with symmetric iterative
// proportional fitting: each pass computes every class's expected
// degree under the current matrix and rescales P_ij by the geometric
// mean of the two classes' correction ratios,
//
//	P_ij ← min(1, P_ij · √(r_i·r_j)),  r_i = d_i / E_i,
//
// clamping at 1 (mass that cannot be placed on a saturated pair flows
// to other pairs on later passes via their ratios). This is the cheap
// cousin of the fixed-point corrections of Winlaw et al. the paper
// discusses: it cannot fix distributions for which no valid weight
// assignment exists (the paper's point), but it drives the residuals of
// *feasible* rows down fast and costs only O(passes·|D|²).
//
// The input matrix is not modified; the refined clone is returned.
// Passes below 1 default to 8; iteration stops early once the worst
// relative residual falls under 1e-4.
func Refine(dist *degseq.Distribution, m *Matrix, passes int) *Matrix {
	out, _ := RefineStop(dist, m, passes, nil)
	return out
}

// RefineStop is Refine with a cooperative stop flag, polled once per
// matrix row. When the flag trips it reports stopped=true and the
// returned matrix must be discarded. Untripped runs are bit-identical
// to Refine.
func RefineStop(dist *degseq.Distribution, m *Matrix, passes int, stop *par.Stop) (*Matrix, bool) {
	if passes < 1 {
		passes = 8
	}
	k := dist.NumClasses()
	out := m.Clone()
	if k == 0 {
		return out, false
	}
	ratio := make([]float64, k)
	for pass := 0; pass < passes; pass++ {
		resid := RowResiduals(dist, out)
		worst := 0.0
		for i := 0; i < k; i++ {
			target := float64(dist.Classes[i].Degree)
			expected := target + resid[i]
			switch {
			case target == 0:
				// Zero-degree classes keep zero rows.
				ratio[i] = 0
			case expected <= 0:
				// Nothing placed yet: pull hard toward the target.
				ratio[i] = 2
			default:
				ratio[i] = target / expected
			}
			if target > 0 {
				rel := math.Abs(resid[i]) / target
				if rel > worst {
					worst = rel
				}
			}
		}
		if worst < 1e-4 {
			break
		}
		for i := 0; i < k; i++ {
			if stop.Stopped() {
				return out, true
			}
			for j := i; j < k; j++ {
				v := out.At(i, j)
				if v == 0 {
					continue
				}
				scale := math.Sqrt(ratio[i] * ratio[j])
				v *= scale
				if v > 1 {
					v = 1
				}
				out.Set(i, j, v)
			}
		}
	}
	return out, false
}
