package probgen

import (
	"math"
	"testing"
)

func TestWeightedL1Distance(t *testing.T) {
	// Two classes: n = [3, 2]. Pairs: C(3,2)=3 diagonal-0, C(2,2)=1
	// diagonal-1, 3·2=6 cross.
	counts := []int64{3, 2}
	a, b := NewMatrix(2), NewMatrix(2)
	a.Set(0, 0, 0.5)
	a.Set(0, 1, 0.25)
	b.Set(1, 1, 1.0)
	// |Δ| per cell: (0,0): 0.5 over 3 pairs; (0,1): 0.25 over 6; (1,1): 1 over 1.
	want := 3*0.5 + 6*0.25 + 1*1.0
	if got := WeightedL1Distance(counts, a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("WeightedL1Distance = %v, want %v", got, want)
	}
	// Symmetry of the metric.
	if got := WeightedL1Distance(counts, b, a); math.Abs(got-want) > 1e-12 {
		t.Errorf("not symmetric: %v", got)
	}
	// Identity.
	if got := WeightedL1Distance(counts, a, a); got != 0 {
		t.Errorf("self distance = %v", got)
	}
}

func TestWeightedL1DistancePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch did not panic")
		}
	}()
	WeightedL1Distance([]int64{1}, NewMatrix(2), NewMatrix(2))
}

func TestMatrixSymmetrizeViaGenerate(t *testing.T) {
	// symmetrize is internal; assert its effect through Generate on an
	// asymmetric-flow case (two classes where only the high class
	// donates): the off-diagonal must end up equal in both orientations.
	d := mustDist(t, map[int64]int64{1: 100, 10: 5})
	m := Generate(d, 1)
	if m.At(0, 1) != m.At(1, 0) {
		t.Errorf("P(0,1) = %v != P(1,0) = %v", m.At(0, 1), m.At(1, 0))
	}
	if m.At(0, 1) <= 0 {
		t.Error("cross-class probability is zero")
	}
}
