package probgen

import (
	"math"
	"testing"
	"testing/quick"

	"nullgraph/internal/degseq"
)

func mustDist(t *testing.T, counts map[int64]int64) *degseq.Distribution {
	t.Helper()
	d, err := degseq.FromCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3)
	if m.Dim() != 3 {
		t.Fatalf("Dim = %d", m.Dim())
	}
	m.Set(0, 2, 0.5)
	if m.At(0, 2) != 0.5 || m.At(2, 0) != 0.5 {
		t.Error("Set is not symmetric")
	}
	c := m.Clone()
	c.Set(0, 2, 0.9)
	if m.At(0, 2) != 0.5 {
		t.Error("Clone shares storage")
	}
}

func TestMatrixClamp(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 0, -0.5)
	m.Set(0, 1, 1.5)
	m.Set(1, 1, 0.3)
	m.Clamp()
	if m.At(0, 0) != 0 || m.At(0, 1) != 1 || m.At(1, 1) != 0.3 {
		t.Errorf("Clamp wrong: %v %v %v", m.At(0, 0), m.At(0, 1), m.At(1, 1))
	}
}

func TestL1Distance(t *testing.T) {
	a, b := NewMatrix(2), NewMatrix(2)
	a.Set(0, 1, 0.5)
	b.Set(0, 1, 0.25)
	b.Set(1, 1, 0.1)
	// |0.5-0.25| appears twice (symmetric storage) plus |0-0.1| once.
	want := 2*0.25 + 0.1
	if got := L1Distance(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("L1Distance = %v, want %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch did not panic")
		}
	}()
	L1Distance(a, NewMatrix(3))
}

func TestGenerateRegular(t *testing.T) {
	// A d-regular distribution must be solved exactly.
	d := mustDist(t, map[int64]int64{10: 1000})
	m := Generate(d, 2)
	resid := RowResiduals(d, m)
	if math.Abs(resid[0]) > 1e-6 {
		t.Errorf("regular residual = %v, want 0", resid[0])
	}
	exp := ExpectedEdges(d, m)
	if math.Abs(exp-5000) > 1e-6 {
		t.Errorf("ExpectedEdges = %v, want 5000", exp)
	}
}

func TestGenerateTwoClassExact(t *testing.T) {
	d := mustDist(t, map[int64]int64{3: 300, 50: 18})
	m := Generate(d, 1)
	for j, r := range RowResiduals(d, m) {
		if math.Abs(r) > 1e-6 {
			t.Errorf("class %d residual = %v", j, r)
		}
	}
}

func TestGenerateProperties(t *testing.T) {
	d, err := degseq.SamplePowerLaw(degseq.PowerLawConfig{
		NumVertices: 5000, MinDegree: 1, MaxDegree: 300, Gamma: 2.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m := Generate(d, 4)
	k := d.NumClasses()
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			v := m.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("P(%d,%d) = %v out of [0,1]", i, j, v)
			}
			if m.At(j, i) != v {
				t.Fatalf("P not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestGenerateExpectedEdgesCloseToTarget(t *testing.T) {
	cases := []struct {
		name string
		cfg  degseq.PowerLawConfig
		tol  float64 // relative tolerance on expected edge count
	}{
		{"skewed-small", degseq.PowerLawConfig{NumVertices: 2000, MinDegree: 1, MaxDegree: 400, Gamma: 1.9, Seed: 1}, 0.06},
		{"as20-like", degseq.PowerLawConfig{NumVertices: 6500, MinDegree: 1, MaxDegree: 1500, Gamma: 2.1, Seed: 2}, 0.04},
		{"medium", degseq.PowerLawConfig{NumVertices: 50000, MinDegree: 2, MaxDegree: 2000, Gamma: 2.3, Seed: 3}, 0.01},
	}
	for _, c := range cases {
		d, err := degseq.SamplePowerLaw(c.cfg)
		if err != nil {
			t.Fatal(err)
		}
		m := Generate(d, 4)
		exp := ExpectedEdges(d, m)
		target := float64(d.NumEdges())
		if rel := math.Abs(exp-target) / target; rel > c.tol {
			t.Errorf("%s: expected edges %v vs target %v (rel %v > %v)", c.name, exp, target, rel, c.tol)
		}
	}
}

func TestGenerateBeatsChungLuOnResiduals(t *testing.T) {
	// The point of the heuristic: its residuals must be much smaller
	// than naive Chung-Lu's on a skewed distribution.
	d, err := degseq.SamplePowerLaw(degseq.PowerLawConfig{
		NumVertices: 6500, MinDegree: 1, MaxDegree: 1500, Gamma: 2.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ours := Generate(d, 4)
	cl := ChungLu(d)
	sumAbs := func(rs []float64) float64 {
		var s float64
		for _, r := range rs {
			s += math.Abs(r)
		}
		return s
	}
	oursErr := sumAbs(RowResiduals(d, ours))
	clErr := sumAbs(RowResiduals(d, cl))
	if oursErr >= clErr/2 {
		t.Errorf("heuristic residual %v not clearly better than Chung-Lu %v", oursErr, clErr)
	}
}

func TestGenerateEmptyAndDegenerate(t *testing.T) {
	empty := &degseq.Distribution{}
	m := Generate(empty, 2)
	if m.Dim() != 0 {
		t.Errorf("empty Dim = %d", m.Dim())
	}
	// All-zero-degree distribution: nothing to attach.
	zero := mustDist(t, map[int64]int64{0: 10})
	m = Generate(zero, 2)
	if m.At(0, 0) != 0 {
		t.Errorf("zero-degree class got probability %v", m.At(0, 0))
	}
	// Single vertex with positive degree: infeasible, but must not hang
	// or produce out-of-range values.
	lonely := mustDist(t, map[int64]int64{2: 1})
	m = Generate(lonely, 1)
	if v := m.At(0, 0); v < 0 || v > 1 {
		t.Errorf("lonely P = %v", v)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d := mustDist(t, map[int64]int64{1: 50, 2: 30, 7: 5, 20: 1})
	a, b := Generate(d, 1), Generate(d, 4)
	if L1Distance(a, b) != 0 {
		t.Error("worker count changed the probability matrix")
	}
}

func TestChungLuKnownValues(t *testing.T) {
	// degrees: 2x d=1, 1x d=2 → 2m = 4.
	d := mustDist(t, map[int64]int64{1: 2, 2: 1})
	m := ChungLu(d)
	if got := m.At(0, 0); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("P(1,1) = %v, want 0.25", got)
	}
	if got := m.At(0, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P(1,2) = %v, want 0.5", got)
	}
	if got := m.At(1, 1); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("P(2,2) = %v, want 1", got)
	}
}

func TestChungLuClamps(t *testing.T) {
	// w_i*w_j > 2m ⇒ clamp to 1, the failure the paper's Figure 1 shows.
	d := mustDist(t, map[int64]int64{1: 10, 100: 2})
	m := ChungLu(d)
	k := d.NumClasses()
	if got := m.At(k-1, k-1); got != 1 {
		t.Errorf("P(100,100) = %v, want clamped 1", got)
	}
}

func TestRowResidualsChungLuRegular(t *testing.T) {
	// For a d-regular graph Chung-Lu is exact up to the self-pair term.
	d := mustDist(t, map[int64]int64{4: 100}) // P = 16/400 = 0.04
	m := ChungLu(d)
	r := RowResiduals(d, m)[0]
	// Expected degree = 100*0.04 - 0.04 = 3.96 → residual -0.04.
	if math.Abs(r+0.04) > 1e-9 {
		t.Errorf("residual = %v, want -0.04", r)
	}
}

func TestGenerateQuickProperty(t *testing.T) {
	f := func(seed uint16) bool {
		d, err := degseq.SamplePowerLaw(degseq.PowerLawConfig{
			NumVertices: 500, MinDegree: 1, MaxDegree: 50, Gamma: 2.0, Seed: uint64(seed)})
		if err != nil {
			return false
		}
		m := Generate(d, 2)
		for i := 0; i < m.Dim(); i++ {
			for j := 0; j < m.Dim(); j++ {
				if v := m.At(i, j); v < 0 || v > 1 || math.IsNaN(v) {
					return false
				}
			}
		}
		exp := ExpectedEdges(d, m)
		target := float64(d.NumEdges())
		return exp > 0.8*target && exp < 1.2*target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGenerate(b *testing.B) {
	d, err := degseq.SamplePowerLaw(degseq.PowerLawConfig{
		NumVertices: 200000, MinDegree: 1, MaxDegree: 10000, Gamma: 2.2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Generate(d, 0)
	}
}
