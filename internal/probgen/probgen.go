package probgen

import (
	"sort"

	"nullgraph/internal/degseq"
	"nullgraph/internal/par"
)

// Generate runs the paper's heuristic free-stub attachment (Section
// IV-A) and returns the symmetric pairwise class probability matrix,
// indexed by class position in dist (ascending degree).
//
// The method:
//
//   - assign every class a doubled free-stub budget FE(k) = 2·d_k·n_k
//     (doubled because each unordered class pair contributes two halves,
//     p_ij and p_ji, each carrying a factor 1/2),
//
//   - visit classes in descending expected degree ("preferential
//     inter-class attachment"); at class i's step, estimate the edges it
//     sends to every class j from the current free-stub state,
//
//     e_ij = min( FE(i)·FE(j) / (ΣFE − FE(i)),  2·cap(i,j),  FE(j) ),
//
//     where cap is the simple-graph pair count (n_i·n_j off-diagonal,
//     C(n_i,2) on the diagonal, whose naive estimate carries an extra
//     factor 1/2: e_ii = FE(i)²/(2·(ΣFE − FE(i)))),
//
//   - convert to the step's half-credit p_ij = e_ij/(2·cap(i,j)),
//
//   - subtract the consumed stubs (e_ij from each side; 2·e_ii from a
//     self-attachment) and continue,
//
//   - finally P_ij = p_ij + p_ji (the diagonal keeps its single visit's
//     credit), clamped to [0,1].
//
// After the main sweep a small number of refinement sweeps redistribute
// the stubs left over where caps or early exhaustion bound the
// estimates; each sweep reuses the same attachment rule on the residual
// FE array. This recovers the edge mass the single-pass heuristic loses
// on small, heavily skewed distributions.
//
// Work is O(|D|²) per sweep; the inner j loop of each step is
// parallelized with p workers (the carried FE dependency serializes the
// outer loop, as the paper's complexity discussion notes).
func Generate(dist *degseq.Distribution, p int) *Matrix {
	m, _ := GenerateStop(dist, p, nil)
	return m
}

// GenerateStop is Generate with a cooperative stop flag, polled once per
// attachment row (the O(|D|) granule of the O(|D|²) sweep). When the
// flag trips it reports stopped=true and the returned matrix must be
// discarded. A nil stop never trips; untripped runs are bit-identical
// to Generate.
func GenerateStop(dist *degseq.Distribution, p int, stop *par.Stop) (*Matrix, bool) {
	k := dist.NumClasses()
	m := NewMatrix(k)
	if k == 0 {
		return m, false
	}
	fe := make([]float64, k)
	var total float64
	for c, cl := range dist.Classes {
		fe[c] = 2 * float64(cl.Degree) * float64(cl.Count)
		total += fe[c]
	}
	initialTotal := total
	// Descending expected degree order.
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return dist.Classes[order[a]].Degree > dist.Classes[order[b]].Degree
	})

	const maxSweeps = 5
	for sweep := 0; sweep < maxSweeps && total > 1e-9*initialTotal+1e-9; sweep++ {
		before := total
		var stopped bool
		total, stopped = attachSweep(dist, m, fe, order, total, p, stop)
		if stopped {
			return m, true
		}
		if total >= before-1e-9 {
			break // no progress: remaining stubs are unplaceable
		}
	}
	m.symmetrize()
	m.Clamp()
	return m, false
}

// attachSweep performs one pass of preferential inter-class attachment
// over all classes, accumulating half-credits into m and consuming from
// fe. It returns the updated stub total, and whether the stop flag
// interrupted the sweep.
func attachSweep(dist *degseq.Distribution, m *Matrix, fe []float64, order []int, total float64, p int, stop *par.Stop) (float64, bool) {
	k := dist.NumClasses()

	// Unit bookkeeping: fe values live in *doubled-stub* units (the
	// paper's doubled FE array). An off-diagonal estimate e_ij in these
	// units intends e_ij/2 true edges, delivered as two half-credits
	// p_ij + p_ji. The diagonal is visited only once, so its credit is
	// not halved twice: e_ii = FE²/(2·denom) with P_ii = e_ii/(2·C(n_i,2))
	// intends e_ii/2 true edges in a single visit. Simplicity caps are
	// expressed in the same doubled units (2× the true pair counts); the
	// final [0,1] clamp is what actually guarantees Bernoulli validity.
	eRow := make([]float64, k)
	for _, i := range order {
		if stop.Stopped() {
			return total, true
		}
		if fe[i] <= 0 {
			continue
		}
		denom := total - fe[i]
		if denom <= 0 {
			// Only this class has stubs left; it can only self-attach.
			denom = fe[i]
		}
		ni := float64(dist.Classes[i].Count)
		fei := fe[i]
		par.For(k, p, func(j int) {
			eRow[j] = 0
			if fe[j] <= 0 {
				return
			}
			nj := float64(dist.Classes[j].Count)
			var naive, capacity, pairs float64
			if i == j {
				pairs = ni * (ni - 1) / 2
				naive = fei * fei / (2 * denom)
				// Remaining headroom before P_ii reaches 1: allocated
				// mass so far is m(i,i) = Σ e/(2·pairs).
				capacity = 2 * pairs * (1 - m.At(i, i))
			} else {
				pairs = ni * nj
				naive = fei * fe[j] / denom
				// Cumulative constraint e_ij + e_ji <= 2·pairs, i.e.
				// final P_ij = (e_ij+e_ji)/(2·pairs) <= 1. Both halves
				// are stored asymmetrically until symmetrize.
				capacity = 2 * pairs * (1 - m.At(i, j) - m.At(j, i))
			}
			if pairs <= 0 || capacity <= 0 {
				return
			}
			e := naive
			if capacity < e {
				e = capacity
			}
			if fe[j] < e {
				e = fe[j]
			}
			if e <= 0 {
				return
			}
			eRow[j] = e
		})
		// The class cannot spend more stubs than it owns: with the
		// diagonal term included, Σ_j≠i e_ij + 2·e_ii can exceed FE(i)
		// (the paper's naive estimates sum to exactly FE(i) only without
		// the self term). Scale the whole row down proportionally so the
		// budget holds; this is what keeps expected degrees on target
		// for top-heavy distributions.
		var rowSpend float64
		for j := 0; j < k; j++ {
			if j == i {
				rowSpend += 2 * eRow[j]
			} else {
				rowSpend += eRow[j]
			}
		}
		scale := 1.0
		if rowSpend > fei && rowSpend > 0 {
			scale = fei / rowSpend
		}
		// Credit probabilities and consume stubs with the scaled
		// estimates: an inter-class estimate removes e from each side, a
		// self estimate removes 2e from class i.
		var consumedByI float64
		for j := 0; j < k; j++ {
			e := eRow[j] * scale
			if e == 0 {
				continue
			}
			var pairs float64
			if i == j {
				pairs = ni * (ni - 1) / 2
				consumedByI += 2 * e
			} else {
				pairs = ni * float64(dist.Classes[j].Count)
				fe[j] -= e
				if fe[j] < 0 {
					fe[j] = 0
				}
				consumedByI += e
			}
			m.add(i, j, e/(2*pairs)) // half-credit: e intends e/2 true edges
		}
		fe[i] -= consumedByI
		if fe[i] < 0 {
			fe[i] = 0
		}
		total = 0
		for _, v := range fe {
			total += v
		}
	}
	return total, false
}

// RowResiduals returns, per class j, the expected degree error of the
// probability matrix under Bernoulli generation:
//
//	resid[j] = (Σ_i n_i·P(j,i) − P(j,j)) − d_j
//
// A perfect solution of the paper's system has all-zero residuals.
func RowResiduals(dist *degseq.Distribution, m *Matrix) []float64 {
	k := dist.NumClasses()
	resid := make([]float64, k)
	for j := 0; j < k; j++ {
		var sum float64
		for i := 0; i < k; i++ {
			sum += float64(dist.Classes[i].Count) * m.At(j, i)
		}
		sum -= m.At(j, j)
		resid[j] = sum - float64(dist.Classes[j].Degree)
	}
	return resid
}

// ExpectedEdges returns the expected number of edges a Bernoulli
// generator draws from the matrix: Σ_{i<j} n_i·n_j·P(i,j) +
// Σ_i C(n_i,2)·P(i,i).
func ExpectedEdges(dist *degseq.Distribution, m *Matrix) float64 {
	k := dist.NumClasses()
	var sum float64
	for i := 0; i < k; i++ {
		ni := float64(dist.Classes[i].Count)
		sum += ni * (ni - 1) / 2 * m.At(i, i)
		for j := i + 1; j < k; j++ {
			nj := float64(dist.Classes[j].Count)
			sum += ni * nj * m.At(i, j)
		}
	}
	return sum
}

// ChungLu returns the naive Chung-Lu class probabilities
// P_ij = min(1, d_i·d_j / 2m) — the baseline whose failure on skewed
// distributions (Figures 1–2) motivates the paper.
func ChungLu(dist *degseq.Distribution) *Matrix {
	k := dist.NumClasses()
	m := NewMatrix(k)
	twoM := float64(dist.NumStubs())
	if twoM == 0 {
		return m
	}
	for i := 0; i < k; i++ {
		di := float64(dist.Classes[i].Degree)
		for j := i; j < k; j++ {
			p := di * float64(dist.Classes[j].Degree) / twoM
			if p > 1 {
				p = 1
			}
			m.Set(i, j, p)
		}
	}
	return m
}
