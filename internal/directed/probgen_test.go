package directed

import (
	"math"
	"testing"
)

// TestRowResidualsNearZero is the row-sum property of the directed
// probability construction: under Bernoulli arc generation from the
// matrix, every class's expected out- and in-degree must equal its
// target degree (residuals ≈ 0).
func TestRowResidualsNearZero(t *testing.T) {
	cases := []struct {
		name string
		d    *JointDistribution
	}{
		{"regular", jointOf(t, JointClass{Out: 2, In: 2, Count: 8})},
		{"two-class", jointOf(t, JointClass{Out: 1, In: 2, Count: 6}, JointClass{Out: 3, In: 1, Count: 3})},
		{"sources-and-sinks", jointOf(t, JointClass{Out: 0, In: 2, Count: 4}, JointClass{Out: 2, In: 0, Count: 4})},
	}
	for _, c := range cases {
		m := GenerateProbabilities(c.d, 1)
		outR, inR := RowResiduals(c.d, m)
		for i := range outR {
			if math.Abs(outR[i]) > 1e-9 || math.Abs(inR[i]) > 1e-9 {
				t.Errorf("%s class %d: residuals out=%g in=%g, want ~0", c.name, i, outR[i], inR[i])
			}
		}
		// The residual identity implies the expected arc total matches.
		if got, want := ExpectedArcs(c.d, m), float64(c.d.NumArcs()); math.Abs(got-want) > 1e-6 {
			t.Errorf("%s: expected arcs %g, want %g", c.name, got, want)
		}
	}
}

// TestRowResidualsBoundedOnSkewedJoint: the attachment heuristic is
// approximate on skewed sequences (bounded refinement sweeps), but its
// degree error must stay within a few percent — far tighter than the
// Chung-Lu baseline it replaces.
func TestRowResidualsBoundedOnSkewedJoint(t *testing.T) {
	d := jointOf(t,
		JointClass{Out: 1, In: 1, Count: 20},
		JointClass{Out: 2, In: 3, Count: 6},
		JointClass{Out: 9, In: 6, Count: 2})
	m := GenerateProbabilities(d, 1)
	outR, inR := RowResiduals(d, m)
	for i, cls := range d.Classes {
		// Per-vertex relative error against the class's own degrees.
		if cls.Out > 0 {
			if rel := math.Abs(outR[i]) / (float64(cls.Out) * float64(cls.Count)); rel > 0.05 {
				t.Errorf("class %d: out residual %g is %.1f%% of target", i, outR[i], 100*rel)
			}
		}
		if cls.In > 0 {
			if rel := math.Abs(inR[i]) / (float64(cls.In) * float64(cls.Count)); rel > 0.05 {
				t.Errorf("class %d: in residual %g is %.1f%% of target", i, inR[i], 100*rel)
			}
		}
	}
	if got, want := ExpectedArcs(d, m), float64(d.NumArcs()); math.Abs(got-want)/want > 0.02 {
		t.Errorf("expected arcs %g, want within 2%% of %g", got, want)
	}
}

// TestRowResidualsDetectMismatch: the residuals must flag a matrix that
// does NOT reproduce the target degrees (the ablation direction).
func TestRowResidualsDetectMismatch(t *testing.T) {
	d := jointOf(t, JointClass{Out: 1, In: 2, Count: 6}, JointClass{Out: 3, In: 1, Count: 3})
	m := ChungLuProbabilities(d)
	outR, inR := RowResiduals(d, m)
	var worst float64
	for i := range outR {
		worst = math.Max(worst, math.Max(math.Abs(outR[i]), math.Abs(inR[i])))
	}
	if worst < 1e-3 {
		t.Errorf("Chung-Lu residuals all ~0 (worst %g); expected visible degree error on a skewed joint", worst)
	}
}

// TestGenerateProbabilitiesWorkerInvariance: the matrix must be
// identical for any worker count.
func TestGenerateProbabilitiesWorkerInvariance(t *testing.T) {
	d := jointOf(t,
		JointClass{Out: 1, In: 1, Count: 12},
		JointClass{Out: 4, In: 2, Count: 4},
		JointClass{Out: 2, In: 5, Count: 3})
	a := GenerateProbabilities(d, 1)
	b := GenerateProbabilities(d, 4)
	k := d.NumClasses()
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if a.At(i, j) != b.At(i, j) {
				t.Fatalf("P[%d][%d] differs across worker counts: %v vs %v", i, j, a.At(i, j), b.At(i, j))
			}
		}
	}
}

func TestProbMatrixClamp(t *testing.T) {
	m := NewProbMatrix(2)
	m.Set(0, 0, -0.5)
	m.Set(0, 1, 1.7)
	m.Set(1, 0, 0.3)
	m.Set(1, 1, 1.0)
	m.Clamp()
	if m.At(0, 0) != 0 || m.At(0, 1) != 1 || m.At(1, 0) != 0.3 || m.At(1, 1) != 1 {
		t.Errorf("clamp wrong: %v %v %v %v", m.At(0, 0), m.At(0, 1), m.At(1, 0), m.At(1, 1))
	}
}
