package directed

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"nullgraph/internal/par"
	"nullgraph/internal/rng"
)

// SkipOptions configures directed edge-skipping generation.
type SkipOptions struct {
	Workers   int
	Seed      uint64
	ChunkSpan int64
}

const defaultChunkSpan = 1 << 22

type diChunk struct {
	ci, cj     int
	begin, end int64
	prob       float64
}

// GenerateArcs draws a simple digraph whose class-pair arc probabilities
// are given by m over the vertex layout of d — the directed Algorithm
// IV.2. Every ordered class pair (i, j) is one sample space of
// n_i·n_j indices (n_i·(n_i−1) on the diagonal, with the self-pairs
// excised from the indexing so loops are unrepresentable). Geometric
// skip lengths compress the Bernoulli scan to O(arcs) expected work;
// large spaces are split into chunks for intra-space parallelism, and
// every chunk draws from a deterministic stream keyed by its index so
// output is identical for any worker count.
func GenerateArcs(d *JointDistribution, m *ProbMatrix, opt SkipOptions) (*ArcList, error) {
	k := d.NumClasses()
	if m.Dim() != k {
		return nil, fmt.Errorf("directed: matrix dim %d != |D| %d", m.Dim(), k)
	}
	n := d.NumVertices()
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("directed: %d vertices exceed int32 IDs", n)
	}
	span := opt.ChunkSpan
	if span <= 0 {
		span = defaultChunkSpan
	}
	offsets := d.VertexOffsets(opt.Workers)

	var chunks []diChunk
	for i := 0; i < k; i++ {
		ni := d.Classes[i].Count
		for j := 0; j < k; j++ {
			prob := m.At(i, j)
			if prob <= 0 {
				continue
			}
			var end int64
			if i == j {
				end = ni * (ni - 1)
			} else {
				end = ni * d.Classes[j].Count
			}
			for b := int64(0); b < end; b += span {
				e := b + span
				if e > end {
					e = end
				}
				chunks = append(chunks, diChunk{ci: i, cj: j, begin: b, end: e, prob: prob})
			}
		}
	}

	buffers := make([][]Arc, len(chunks))
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := par.Workers(opt.Workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= len(chunks) {
					return
				}
				buffers[c] = runDiChunk(d, offsets, chunks[c],
					rng.New(rng.Mix64(opt.Seed)^rng.Mix64(uint64(c)+0x7654321)))
			}
		}()
	}
	wg.Wait()

	var total int
	for _, b := range buffers {
		total += len(b)
	}
	arcs := make([]Arc, 0, total)
	for _, b := range buffers {
		arcs = append(arcs, b...)
	}
	return NewArcList(arcs, int(n)), nil
}

func runDiChunk(d *JointDistribution, offsets []int64, c diChunk, src *rng.Source) []Arc {
	expected := float64(c.end-c.begin) * c.prob
	out := make([]Arc, 0, int(expected*1.15)+8)
	baseI := offsets[c.ci]
	baseJ := offsets[c.cj]
	nj := d.Classes[c.cj].Count
	diagonal := c.ci == c.cj
	emit := func(x int64) {
		var from, to int64
		if diagonal {
			// Index space of ordered pairs without the diagonal: row u
			// has nj−1 columns; column r maps to v = r, skipping v == u.
			u := x / (nj - 1)
			r := x % (nj - 1)
			v := r
			if v >= u {
				v++
			}
			from, to = baseI+u, baseI+v
		} else {
			from, to = baseI+x/nj, baseJ+x%nj
		}
		out = append(out, Arc{From: int32(from), To: int32(to)})
	}
	if c.prob >= 1 {
		for x := c.begin; x < c.end; x++ {
			emit(x)
		}
		return out
	}
	x := c.begin + src.Geometric(c.prob)
	for x < c.end {
		emit(x)
		x += 1 + src.Geometric(c.prob)
	}
	return out
}
