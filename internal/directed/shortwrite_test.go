package directed

import (
	"bytes"
	"errors"
	"testing"
)

var errDiskFull = errors.New("short write: disk full")

// failAfter accepts exactly n bytes then fails, emulating a full disk
// mid-save; see the internal/graph mirror for the rationale.
type failAfter struct {
	n     int
	wrote int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.wrote+len(p) <= f.n {
		f.wrote += len(p)
		return len(p), nil
	}
	k := f.n - f.wrote
	if k < 0 {
		k = 0
	}
	f.wrote += k
	return k, errDiskFull
}

// TestWriteArcListTextShortWrites asserts the directed writer
// propagates a failure at every possible byte offset — a digraph save
// that reports success must have written every arc.
func TestWriteArcListTextShortWrites(t *testing.T) {
	al := &ArcList{Arcs: []Arc{{From: 0, To: 1}, {From: 12, To: 3456}, {From: 2, To: 0}}, NumVertices: 3457}
	var full bytes.Buffer
	if err := WriteArcListText(&full, al); err != nil {
		t.Fatal(err)
	}
	total := full.Len()
	for cut := 0; cut < total; cut++ {
		if err := WriteArcListText(&failAfter{n: cut}, al); err == nil {
			t.Fatalf("arc write succeeding with only %d of %d bytes accepted: dropped error", cut, total)
		}
	}
	if err := WriteArcListText(&failAfter{n: total}, al); err != nil {
		t.Fatalf("arc write failing with full capacity: %v", err)
	}
}

// TestWriteJointShortWrites covers the joint-distribution writer the
// same way.
func TestWriteJointShortWrites(t *testing.T) {
	d := &JointDistribution{Classes: []JointClass{{Out: 1, In: 2, Count: 3}, {Out: 4, In: 0, Count: 7}}}
	var full bytes.Buffer
	if err := WriteJoint(&full, d); err != nil {
		t.Fatal(err)
	}
	total := full.Len()
	for cut := 0; cut < total; cut++ {
		if err := WriteJoint(&failAfter{n: cut}, d); err == nil {
			t.Fatalf("joint write succeeding with only %d of %d bytes accepted: dropped error", cut, total)
		}
	}
	if err := WriteJoint(&failAfter{n: total}, d); err != nil {
		t.Fatalf("joint write failing with full capacity: %v", err)
	}
}
