package directed

import (
	"container/heap"
	"fmt"
	"sort"
)

// inNode tracks a vertex in the realization heap. The Kleitman-Wang
// target order is lexicographic on (remaining in-degree, remaining
// out-degree) descending; outRem is the remaining out-degree at push
// time and is lazily refreshed on pop (a vertex's out budget drops to
// zero exactly once, when it is processed as a source).
type inNode struct {
	id     int32
	remain int64
	outRem int64
}

type inHeap []inNode

func (h inHeap) Len() int { return len(h) }
func (h inHeap) Less(i, j int) bool {
	if h[i].remain != h[j].remain {
		return h[i].remain > h[j].remain
	}
	if h[i].outRem != h[j].outRem {
		return h[i].outRem > h[j].outRem
	}
	return h[i].id < h[j].id
}
func (h inHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *inHeap) Push(x interface{}) { *h = append(*h, x.(inNode)) }
func (h *inHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// KleitmanWang deterministically realizes a joint degree distribution
// as a simple digraph (the directed Havel-Hakimi of Erdős, Miklós and
// Toroczkai [15] / Kleitman-Wang): vertices are processed in descending
// out-degree order, each connecting to the lexicographically largest
// (remaining-in, remaining-out) vertices, never itself. The secondary
// out-degree tie-break is load-bearing: among targets with equal
// remaining in-degree, the ones that still have out-stubs to spend must
// absorb arcs first, or their later source steps can strand stubs
// (e.g. the 3-cycle {1,1,1}/{1,1,1} fails without it). An error reports
// a non-realizable sequence.
func KleitmanWang(d *JointDistribution) (*ArcList, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.OutStubs() != d.InStubs() {
		return nil, fmt.Errorf("directed: out stubs %d != in stubs %d", d.OutStubs(), d.InStubs())
	}
	out, in := d.ToJointDegrees()
	n := len(out)

	// Vertices by out-degree descending; out-degrees never change, so a
	// static order is exactly "always pick the max remaining out".
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sortByOutDesc(order, out, in)

	outRem := make([]int64, n)
	copy(outRem, out)

	h := make(inHeap, 0, n)
	for v := 0; v < n; v++ {
		if in[v] > 0 {
			h = append(h, inNode{id: int32(v), remain: in[v], outRem: outRem[v]})
		}
	}
	heap.Init(&h)

	arcs := make([]Arc, 0, d.NumArcs())
	scratch := make([]inNode, 0, 64)
	var self *inNode
	for _, v := range order {
		need := out[v]
		if need == 0 {
			continue
		}
		scratch = scratch[:0]
		self = nil
		for k := int64(0); k < need; k++ {
			for {
				if h.Len() == 0 {
					return nil, fmt.Errorf("directed: sequence not realizable (ran out of in-stubs at vertex %d)", v)
				}
				u := heap.Pop(&h).(inNode)
				if u.outRem != outRem[u.id] {
					// Stale secondary key (u was processed as a source
					// since this entry was pushed): re-key and retry.
					u.outRem = outRem[u.id]
					heap.Push(&h, u)
					continue
				}
				if u.id == v {
					// Can't self-connect; set aside and retry.
					uu := u
					self = &uu
					continue
				}
				if u.remain <= 0 {
					return nil, fmt.Errorf("directed: internal inconsistency (zero in-degree in heap)")
				}
				arcs = append(arcs, Arc{From: v, To: u.id})
				u.remain--
				scratch = append(scratch, u)
				break
			}
		}
		outRem[v] = 0
		for _, u := range scratch {
			if u.remain > 0 {
				u.outRem = outRem[u.id]
				heap.Push(&h, u)
			}
		}
		if self != nil {
			s := *self
			s.outRem = outRem[s.id]
			heap.Push(&h, s)
		}
	}
	return NewArcList(arcs, n), nil
}

func sortByOutDesc(order []int32, out, in []int64) {
	sort.Slice(order, func(x, y int) bool {
		a, b := order[x], order[y]
		if out[a] != out[b] {
			return out[a] > out[b]
		}
		if in[a] != in[b] {
			return in[a] > in[b]
		}
		return a < b
	})
}
