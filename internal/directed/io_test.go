package directed

import (
	"bytes"
	"strings"
	"testing"
)

func TestArcListTextRoundTrip(t *testing.T) {
	al := NewArcList([]Arc{{0, 1}, {5, 2}, {3, 3}, {2, 5}}, 6)
	var buf bytes.Buffer
	if err := WriteArcListText(&buf, al); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArcListText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Arcs) != len(al.Arcs) {
		t.Fatalf("arcs = %d, want %d", len(got.Arcs), len(al.Arcs))
	}
	for i := range al.Arcs {
		if got.Arcs[i] != al.Arcs[i] {
			t.Errorf("arc %d: %v vs %v", i, got.Arcs[i], al.Arcs[i])
		}
	}
}

func TestReadArcListSkipsComments(t *testing.T) {
	in := "# directed\n\n% also comment\n0 1\n1 0\n"
	al, err := ReadArcListText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if al.NumArcs() != 2 || al.NumVertices != 2 {
		t.Errorf("parsed %+v", al)
	}
}

func TestReadArcListErrors(t *testing.T) {
	for _, in := range []string{"0\n", "a b\n", "-1 2\n", "0 99999999999\n"} {
		if _, err := ReadArcListText(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestJointIORoundTrip(t *testing.T) {
	d := FromJointDegrees([]int64{2, 1, 1, 0}, []int64{0, 1, 1, 2})
	var buf bytes.Buffer
	if err := WriteJoint(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Classes) != len(d.Classes) {
		t.Fatalf("classes = %d, want %d", len(got.Classes), len(d.Classes))
	}
	for i := range d.Classes {
		if got.Classes[i] != d.Classes[i] {
			t.Errorf("class %d: %+v vs %+v", i, got.Classes[i], d.Classes[i])
		}
	}
}

func TestReadJointSkipsCommentsAndValidates(t *testing.T) {
	in := "# joint\n\n1 1 5\n2 0 3\n"
	d, err := ReadJoint(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumClasses() != 2 || d.NumVertices() != 8 {
		t.Errorf("parsed %+v", d)
	}
	bad := []string{
		"1 1\n",
		"x 1 1\n",
		"1 -1 2\n",
		"1 1 0\n",
		"1 1 2\n1 1 3\n",
	}
	for _, in := range bad {
		if _, err := ReadJoint(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}
