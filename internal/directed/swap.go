package directed

import (
	"nullgraph/internal/hashtable"
	"nullgraph/internal/par"
	"nullgraph/internal/permute"
	"nullgraph/internal/rng"
)

// SwapOptions configures a directed swap run; fields mirror the
// undirected swap.Options.
type SwapOptions struct {
	Iterations   int
	Workers      int
	Seed         uint64
	Probing      hashtable.Probing
	TrackSwapped bool
	OnIteration  func(iteration int, stats SwapIterStats)
}

// SwapIterStats reports one directed swap iteration.
type SwapIterStats struct {
	Attempts    int64
	Successes   int64
	EverSwapped float64
}

// SwapResult summarizes a run.
type SwapResult struct {
	PerIteration   []SwapIterStats
	TotalSuccesses int64
}

// SwapEngine is the directed analog of Algorithm III.1, with the two
// "certain considerations" the paper defers to [14], [15]:
//
//   - a pair of arcs (u→v), (x→y) has exactly ONE legal exchange,
//     (u→y), (x→v) — the undirected algorithm's second pairing would
//     turn arc heads into tails and change in/out degrees — so there is
//     no coin flip, and the hash table stores ordered pairs;
//   - pair exchanges alone do NOT connect the simple-digraph space (the
//     two orientations of a directed 3-cycle have no legal pair move
//     between them), so each iteration also sweeps disjoint arc
//     *triples* and reverses any that form a directed triangle
//     (u→v→w→u ⇒ u←v←w←u), the classic second move type of directed
//     switch chains (Rao et al.; Erdős–Miklós–Toroczkai).
type SwapEngine struct {
	al        *ArcList
	opt       SwapOptions
	p         int
	table     *hashtable.EdgeSet
	swapped   []uint8
	iteration int
}

// NewSwapEngine prepares an engine that mutates al in place.
func NewSwapEngine(al *ArcList, opt SwapOptions) *SwapEngine {
	p := par.Workers(opt.Workers)
	m := len(al.Arcs)
	eng := &SwapEngine{al: al, opt: opt, p: p}
	if m >= 2 {
		// Worst case insertions per iteration: m registrations + 2 per
		// pair proposal + 3 per triple proposal = 3m.
		eng.table = hashtable.New(3*m, opt.Probing)
	}
	if opt.TrackSwapped {
		eng.swapped = make([]uint8, m)
	}
	return eng
}

// EverSwappedFraction reports the mixing tracker.
func (eng *SwapEngine) EverSwappedFraction() float64 {
	if len(eng.swapped) == 0 {
		return 0
	}
	count := par.SumInt64(len(eng.swapped), eng.p, func(i int) int64 { return int64(eng.swapped[i]) })
	return float64(count) / float64(len(eng.swapped))
}

// Step runs one full iteration: register all arcs, permute, propose the
// single legal exchange per adjacent pair, clear.
func (eng *SwapEngine) Step() SwapIterStats {
	arcs := eng.al.Arcs
	m := len(arcs)
	it := eng.iteration
	eng.iteration++
	if m < 2 {
		return SwapIterStats{}
	}
	p := eng.p
	table := eng.table

	par.ForRange(m, p, func(_ int, r par.Range) {
		for i := r.Begin; i < r.End; i++ {
			table.TestAndSet(arcs[i].Key())
		}
	})

	permSeed := rng.Mix64(eng.opt.Seed) + 0x9e3779b97f4a7c15*uint64(it+1)
	h := permute.Targets(permSeed, m, p)
	permute.Apply(arcs, h, p)
	if eng.swapped != nil {
		permute.Apply(eng.swapped, h, p)
	}

	pairs := m / 2
	stats := SwapIterStats{Attempts: int64(pairs)}
	successes := make([]int64, p)
	par.ForRange(pairs, p, func(w int, r par.Range) {
		var local int64
		for k := r.Begin; k < r.End; k++ {
			i, j := 2*k, 2*k+1
			a, b := arcs[i], arcs[j]
			g := Arc{From: a.From, To: b.To}
			hh := Arc{From: b.From, To: a.To}
			if g.IsLoop() || hh.IsLoop() {
				continue
			}
			if table.TestAndSet(g.Key()) {
				continue
			}
			if table.TestAndSet(hh.Key()) {
				continue
			}
			arcs[i], arcs[j] = g, hh
			if eng.swapped != nil {
				eng.swapped[i], eng.swapped[j] = 1, 1
			}
			local++
		}
		successes[w] = local
	})
	for _, s := range successes {
		stats.Successes += s
	}

	// Triple sweep: reverse disjoint directed triangles. The pair sweep
	// above already updated `arcs`; reversal proposals test against the
	// same table, which still holds every arc that existed this
	// iteration plus the pair-swap insertions — a conservative filter
	// that can only reject, never corrupt.
	triples := m / 3
	tripleSuccesses := make([]int64, p)
	par.ForRange(triples, p, func(w int, r par.Range) {
		var local int64
		for k := r.Begin; k < r.End; k++ {
			i, j, l := 3*k, 3*k+1, 3*k+2
			a, b, c := arcs[i], arcs[j], arcs[l]
			if a.To != b.From || b.To != c.From || c.To != a.From {
				continue // not a directed triangle in this order
			}
			if a.From == b.From || b.From == c.From || a.From == c.From {
				continue // degenerate (repeated vertex)
			}
			ra := Arc{From: a.To, To: a.From}
			rb := Arc{From: b.To, To: b.From}
			rc := Arc{From: c.To, To: c.From}
			if table.TestAndSet(ra.Key()) {
				continue
			}
			if table.TestAndSet(rb.Key()) {
				continue
			}
			if table.TestAndSet(rc.Key()) {
				continue
			}
			arcs[i], arcs[j], arcs[l] = ra, rb, rc
			if eng.swapped != nil {
				eng.swapped[i], eng.swapped[j], eng.swapped[l] = 1, 1, 1
			}
			local++
		}
		tripleSuccesses[w] = local
	})
	for _, s := range tripleSuccesses {
		stats.Successes += s
	}
	stats.Attempts += int64(triples)

	if eng.swapped != nil {
		stats.EverSwapped = eng.EverSwappedFraction()
	}
	table.Clear(p)
	return stats
}

// SwapArcs performs opt.Iterations directed double-arc swap iterations
// on al in place.
func SwapArcs(al *ArcList, opt SwapOptions) SwapResult {
	eng := NewSwapEngine(al, opt)
	result := SwapResult{PerIteration: make([]SwapIterStats, 0, opt.Iterations)}
	for it := 0; it < opt.Iterations; it++ {
		stats := eng.Step()
		result.PerIteration = append(result.PerIteration, stats)
		result.TotalSuccesses += stats.Successes
		if opt.OnIteration != nil {
			opt.OnIteration(it, stats)
		}
	}
	return result
}

// SwapArcsUntilMixed swaps until every arc has swapped at least once or
// maxIterations is reached.
func SwapArcsUntilMixed(al *ArcList, opt SwapOptions, maxIterations int) (SwapResult, bool) {
	opt.TrackSwapped = true
	eng := NewSwapEngine(al, opt)
	var result SwapResult
	for it := 0; it < maxIterations; it++ {
		stats := eng.Step()
		result.PerIteration = append(result.PerIteration, stats)
		result.TotalSuccesses += stats.Successes
		if opt.OnIteration != nil {
			opt.OnIteration(it, stats)
		}
		if stats.EverSwapped >= 1.0 {
			return result, true
		}
	}
	return result, false
}
