package directed

import (
	"nullgraph/internal/hashtable"
	"nullgraph/internal/par"
	"nullgraph/internal/permute"
	"nullgraph/internal/rng"
)

// SwapOptions configures a directed swap run; fields mirror the
// undirected swap.Options.
type SwapOptions struct {
	Iterations   int
	Workers      int
	Seed         uint64
	Probing      hashtable.Probing
	TrackSwapped bool
	OnIteration  func(iteration int, stats SwapIterStats)
	// Stop, when non-nil, is checked between iterations; a tripped flag
	// ends the run early with SwapResult.Stopped set, leaving the arc
	// list valid (joint degrees preserved) but under-mixed.
	// Cancellation latency is bounded by one iteration.
	Stop *par.Stop
}

// SwapIterStats reports one directed swap iteration.
type SwapIterStats struct {
	Attempts    int64
	Successes   int64
	EverSwapped float64
}

// SwapResult summarizes a run.
type SwapResult struct {
	PerIteration   []SwapIterStats
	TotalSuccesses int64
	// Stopped reports that SwapOptions.Stop ended the run before its
	// iteration budget.
	Stopped bool
}

// SwapEngine is the directed analog of Algorithm III.1, with the two
// "certain considerations" the paper defers to [14], [15]:
//
//   - a pair of arcs (u→v), (x→y) has exactly ONE legal exchange,
//     (u→y), (x→v) — the undirected algorithm's second pairing would
//     turn arc heads into tails and change in/out degrees — so the
//     pairing coin is replaced by a *lazy* coin: each paired exchange
//     is proposed with probability 1/2. Without it the sweep applies
//     every legal exchange of a pairing in lockstep, and on small arc
//     sets (where the random pairing covers all arcs) the chain can
//     only make composite moves: on the 4-vertex out=in=1 space the
//     state space then decomposes into four communicating classes
//     (each 4-cycle can only reach its inverse), a bias the
//     statistical verification suite (internal/statcheck) catches.
//     The lazy coin makes every single-pair exchange reachable, which
//     restores the classic chain's connectivity, and laziness never
//     hurts reversibility. The hash table stores ordered pairs;
//   - pair exchanges alone do NOT connect the simple-digraph space (the
//     two orientations of a directed 3-cycle have no legal pair move
//     between them), so each iteration also sweeps disjoint arc
//     *triples* and reverses any that form a directed triangle
//     (u→v→w→u ⇒ u←v←w←u), the classic second move type of directed
//     switch chains (Rao et al.; Erdős–Miklós–Toroczkai).
//
// Like the undirected engine, a SwapEngine owns its iteration buffers
// (hash-table writer counters, permutation targets and scratch, padded
// per-worker accumulators), so steady-state Steps do not allocate. It
// dispatches parallel regions with per-call goroutines rather than a
// persistent pool — the directed chain is an extension, not the
// benchmarked hot path — so there is nothing to Close.
type SwapEngine struct {
	al  *ArcList
	opt SwapOptions
	p   int

	table   *hashtable.EdgeSet
	writers []*hashtable.Writer

	swapped      []uint8
	swappedCount int64

	h       []int32
	sc      *permute.Scratch
	apArcs  *permute.Applier[Arc]
	apFlags *permute.Applier[uint8]

	successes []par.Cell
	newly     []par.Cell

	// coins holds one lazy-coin stream per worker, reseeded each
	// iteration so steady-state Steps do not allocate.
	coins []*rng.Source

	iteration int
}

// NewSwapEngine prepares an engine that mutates al in place.
func NewSwapEngine(al *ArcList, opt SwapOptions) *SwapEngine {
	p := par.Workers(opt.Workers)
	m := len(al.Arcs)
	eng := &SwapEngine{al: al, opt: opt, p: p}
	if m >= 2 {
		// Worst case insertions per iteration: m registrations + 2 per
		// pair proposal + 3 per triple proposal = 3m. Counting-only
		// writers: occupancy always lands above the journal/sweep
		// crossover (see the hashtable package doc), so ClearWriters
		// sweeps.
		eng.table = hashtable.New(3*m, opt.Probing)
		eng.writers = eng.table.NewCountingWriters(p)
		eng.h = make([]int32, m)
	}
	eng.sc = permute.NewScratch()
	eng.apArcs = permute.NewApplier[Arc](eng.sc)
	eng.apFlags = permute.NewApplier[uint8](eng.sc)
	eng.successes = make([]par.Cell, p)
	eng.newly = make([]par.Cell, p)
	eng.coins = make([]*rng.Source, p)
	for w := range eng.coins {
		eng.coins[w] = rng.New(0)
	}
	if opt.TrackSwapped {
		eng.swapped = make([]uint8, m)
	}
	return eng
}

// EverSwappedFraction reports the mixing tracker — O(1), accumulated
// from each sweep's newly set flags.
func (eng *SwapEngine) EverSwappedFraction() float64 {
	if len(eng.swapped) == 0 {
		return 0
	}
	return float64(eng.swappedCount) / float64(len(eng.swapped))
}

// markSwapped sets flag i, counting first-time transitions.
func (eng *SwapEngine) markSwapped(i int, newly *int64) {
	if eng.swapped[i] == 0 {
		eng.swapped[i] = 1
		*newly++
	}
}

// Step runs one full iteration: register all arcs, permute, propose the
// single legal exchange per adjacent pair, reverse disjoint directed
// triangles, clear the table.
func (eng *SwapEngine) Step() SwapIterStats {
	arcs := eng.al.Arcs
	m := len(arcs)
	it := eng.iteration
	eng.iteration++
	if m < 2 {
		return SwapIterStats{}
	}
	p := eng.p

	par.ForRange(m, p, func(w int, r par.Range) {
		wtr := eng.writers[w]
		for i := r.Begin; i < r.End; i++ {
			wtr.TestAndSet(arcs[i].Key())
		}
	})

	permSeed := rng.Mix64(eng.opt.Seed) + 0x9e3779b97f4a7c15*uint64(it+1)
	h := eng.h[:m]
	permute.TargetsInto(permSeed, p, h)
	eng.apArcs.Apply(arcs, h, p, nil)
	if eng.swapped != nil {
		eng.apFlags.Apply(eng.swapped, h, p, nil)
	}

	sweepSeed := rng.Mix64(eng.opt.Seed) ^ rng.Mix64(uint64(it)+0xabcd0123)
	pairs := m / 2
	stats := SwapIterStats{Attempts: int64(pairs)}
	for w := range eng.successes {
		eng.successes[w].V = 0
		eng.newly[w].V = 0
	}
	par.ForRange(pairs, p, func(w int, r par.Range) {
		wtr := eng.writers[w]
		coin := eng.coins[w]
		coin.Reseed(rng.Mix64(sweepSeed) ^ rng.Mix64(uint64(w)+0x5134))
		var local, newly int64
		for k := r.Begin; k < r.End; k++ {
			// Lazy coin: draw first so every pair consumes exactly one
			// bit and the stream stays aligned across rejections.
			lazy := coin.Bool()
			i, j := 2*k, 2*k+1
			a, b := arcs[i], arcs[j]
			g := Arc{From: a.From, To: b.To}
			hh := Arc{From: b.From, To: a.To}
			if lazy || g.IsLoop() || hh.IsLoop() {
				continue
			}
			if wtr.TestAndSet(g.Key()) {
				continue
			}
			if wtr.TestAndSet(hh.Key()) {
				continue
			}
			arcs[i], arcs[j] = g, hh
			if eng.swapped != nil {
				eng.markSwapped(i, &newly)
				eng.markSwapped(j, &newly)
			}
			local++
		}
		eng.successes[w].V = local
		eng.newly[w].V = newly
	})
	for w := range eng.successes {
		stats.Successes += eng.successes[w].V
		eng.swappedCount += eng.newly[w].V
	}

	// Triple sweep: reverse disjoint directed triangles. The pair sweep
	// above already updated `arcs`; reversal proposals test against the
	// same table, which still holds every arc that existed this
	// iteration plus the pair-swap insertions — a conservative filter
	// that can only reject, never corrupt.
	triples := m / 3
	for w := range eng.successes {
		eng.successes[w].V = 0
		eng.newly[w].V = 0
	}
	par.ForRange(triples, p, func(w int, r par.Range) {
		wtr := eng.writers[w]
		var local, newly int64
		for k := r.Begin; k < r.End; k++ {
			i, j, l := 3*k, 3*k+1, 3*k+2
			a, b, c := arcs[i], arcs[j], arcs[l]
			if a.To != b.From || b.To != c.From || c.To != a.From {
				continue // not a directed triangle in this order
			}
			if a.From == b.From || b.From == c.From || a.From == c.From {
				continue // degenerate (repeated vertex)
			}
			ra := Arc{From: a.To, To: a.From}
			rb := Arc{From: b.To, To: b.From}
			rc := Arc{From: c.To, To: c.From}
			if wtr.TestAndSet(ra.Key()) {
				continue
			}
			if wtr.TestAndSet(rb.Key()) {
				continue
			}
			if wtr.TestAndSet(rc.Key()) {
				continue
			}
			arcs[i], arcs[j], arcs[l] = ra, rb, rc
			if eng.swapped != nil {
				eng.markSwapped(i, &newly)
				eng.markSwapped(j, &newly)
				eng.markSwapped(l, &newly)
			}
			local++
		}
		eng.successes[w].V = local
		eng.newly[w].V = newly
	})
	for w := range eng.successes {
		stats.Successes += eng.successes[w].V
		eng.swappedCount += eng.newly[w].V
	}
	stats.Attempts += int64(triples)

	if eng.swapped != nil {
		stats.EverSwapped = eng.EverSwappedFraction()
	}
	eng.table.ClearWriters(eng.writers, p)
	return stats
}

// SwapArcs performs opt.Iterations directed double-arc swap iterations
// on al in place.
func SwapArcs(al *ArcList, opt SwapOptions) SwapResult {
	eng := NewSwapEngine(al, opt)
	result := SwapResult{PerIteration: make([]SwapIterStats, 0, opt.Iterations)}
	for it := 0; it < opt.Iterations; it++ {
		if opt.Stop.Stopped() {
			result.Stopped = true
			return result
		}
		stats := eng.Step()
		result.PerIteration = append(result.PerIteration, stats)
		result.TotalSuccesses += stats.Successes
		if opt.OnIteration != nil {
			opt.OnIteration(it, stats)
		}
	}
	return result
}

// Stopper receives each iteration's statistics and reports whether the
// run should stop after that iteration — the directed analog of the
// undirected swap.Stopper. Implementations must not retain stats.
type Stopper interface {
	Observe(iteration int, stats SwapIterStats) bool
}

// SwapArcsStopper swaps until st requests a stop or maxIterations is
// reached, reporting whether the stopper fired. A nil stopper degrades
// to a fixed maxIterations run.
func SwapArcsStopper(al *ArcList, opt SwapOptions, maxIterations int, st Stopper) (SwapResult, bool) {
	eng := NewSwapEngine(al, opt)
	var result SwapResult
	for it := 0; it < maxIterations; it++ {
		if opt.Stop.Stopped() {
			result.Stopped = true
			return result, false
		}
		stats := eng.Step()
		result.PerIteration = append(result.PerIteration, stats)
		result.TotalSuccesses += stats.Successes
		if opt.OnIteration != nil {
			opt.OnIteration(it, stats)
		}
		if st != nil && st.Observe(it, stats) {
			return result, true
		}
	}
	return result, false
}

// SwapArcsUntilMixed swaps until every arc has swapped at least once or
// maxIterations is reached.
func SwapArcsUntilMixed(al *ArcList, opt SwapOptions, maxIterations int) (SwapResult, bool) {
	opt.TrackSwapped = true
	eng := NewSwapEngine(al, opt)
	var result SwapResult
	for it := 0; it < maxIterations; it++ {
		if opt.Stop.Stopped() {
			result.Stopped = true
			return result, false
		}
		stats := eng.Step()
		result.PerIteration = append(result.PerIteration, stats)
		result.TotalSuccesses += stats.Successes
		if opt.OnIteration != nil {
			opt.OnIteration(it, stats)
		}
		if stats.EverSwapped >= 1.0 {
			return result, true
		}
	}
	return result, false
}
