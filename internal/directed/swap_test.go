package directed

import (
	"fmt"
	"sort"
	"testing"
)

func arcSignature(al *ArcList) string {
	keys := make([]uint64, len(al.Arcs))
	for i, a := range al.Arcs {
		keys[i] = a.Key()
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return fmt.Sprint(keys)
}

// TestSwapArcsSimplicityAcrossSeedsAndWorkers: every seeded run, at any
// worker count, must leave the arc list simple (no loops, no duplicate
// arcs) with the joint degrees intact.
func TestSwapArcsSimplicityAcrossSeedsAndWorkers(t *testing.T) {
	d := jointOf(t,
		JointClass{Out: 2, In: 1, Count: 6},
		JointClass{Out: 1, In: 2, Count: 6},
	)
	start, err := KleitmanWang(d)
	if err != nil {
		t.Fatal(err)
	}
	wantOut, wantIn := start.Degrees(1)
	for _, workers := range []int{1, 2, 4} {
		for seed := uint64(0); seed < 8; seed++ {
			al := start.Clone()
			SwapArcs(al, SwapOptions{Iterations: 12, Workers: workers, Seed: seed})
			if rep := al.CheckSimplicity(); !rep.IsSimple() {
				t.Fatalf("workers=%d seed=%d: not simple: %+v", workers, seed, rep)
			}
			out, in := al.Degrees(1)
			for v := range out {
				if out[v] != wantOut[v] || in[v] != wantIn[v] {
					t.Fatalf("workers=%d seed=%d: joint degrees changed at vertex %d", workers, seed, v)
				}
			}
		}
	}
}

// TestSwapArcsErgodicOnDerangements is the regression for the lazy
// pair coin. The 4-vertex out=in=1 space has 9 states (derangements of
// 4). Without the per-pair lazy coin the sweep applies every legal
// exchange of a pairing in lockstep, composite moves only, and the
// space decomposes into four communicating classes ({start, inverse}
// for each 4-cycle, involutions among themselves) — short seeded runs
// then visit at most a fraction of the states. With the coin the chain
// is ergodic and a modest sweep of seeds must reach all 9.
func TestSwapArcsErgodicOnDerangements(t *testing.T) {
	d := jointOf(t, JointClass{Out: 1, In: 1, Count: 4})
	start, err := KleitmanWang(d)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for seed := uint64(0); seed < 40; seed++ {
		al := start.Clone()
		SwapArcs(al, SwapOptions{Iterations: 30, Workers: 1, Seed: seed})
		if rep := al.CheckSimplicity(); !rep.IsSimple() {
			t.Fatalf("seed %d: not simple: %+v", seed, rep)
		}
		seen[arcSignature(al)] = true
	}
	if len(seen) != 9 {
		t.Fatalf("reached %d of 9 derangement states from 40 seeds; chain is not mixing across communicating classes", len(seen))
	}
}

// TestSwapArcsLazyCoinStreamsIndependent: runs with different seeds
// must not all land on the same state (the coin streams and pairing
// permutations must actually depend on the seed).
func TestSwapArcsLazyCoinStreamsIndependent(t *testing.T) {
	d := jointOf(t, JointClass{Out: 1, In: 1, Count: 4})
	start, err := KleitmanWang(d)
	if err != nil {
		t.Fatal(err)
	}
	states := map[string]int{}
	for seed := uint64(100); seed < 110; seed++ {
		al := start.Clone()
		SwapArcs(al, SwapOptions{Iterations: 10, Workers: 1, Seed: seed})
		states[arcSignature(al)]++
	}
	if len(states) < 2 {
		t.Fatalf("10 distinct seeds produced %d distinct states", len(states))
	}
}
