// Package directed extends the library to directed graphs, the
// extrapolation the paper points to via Durak et al. [14] and the
// directed Havel-Hakimi of Erdős, Miklós and Toroczkai [15]:
//
//   - ArcList — the directed edge substrate (no self-loops / duplicate
//     arcs in the simple digraph space);
//   - JointDistribution — the {(out, in), count} analog of {D, N};
//   - Kleitman-Wang realization of a joint degree sequence;
//   - parallel double-arc swaps preserving every vertex's in- AND
//     out-degree;
//   - directed Chung-Lu baselines and the directed version of the
//     probability heuristic + edge-skipping pipeline.
//
// The "certain considerations": swap proposals have a single legal
// pairing ((u→v),(x→y) ⇒ (u→y),(x→v) — the other exchange would move
// degree between in and out sides), the hash-table key is the ordered
// pair, and the diagonal class spaces exclude exactly the self-pairs.
package directed

import (
	"fmt"
	"sort"

	"nullgraph/internal/par"
)

// Arc is a directed edge From → To.
type Arc struct {
	From, To int32
}

// IsLoop reports a self-arc.
func (a Arc) IsLoop() bool { return a.From == a.To }

// Key packs the ordered pair into a uint64. Unlike the undirected edge
// key there is no canonicalization: (u,v) and (v,u) are distinct arcs.
func (a Arc) Key() uint64 {
	return uint64(uint32(a.From))<<32 | uint64(uint32(a.To))
}

// ArcFromKey unpacks a Key.
func ArcFromKey(k uint64) Arc {
	return Arc{From: int32(uint32(k >> 32)), To: int32(uint32(k))}
}

// String renders the arc.
func (a Arc) String() string { return fmt.Sprintf("(%d->%d)", a.From, a.To) }

// ArcList is a mutable directed graph as an arc slice.
type ArcList struct {
	Arcs        []Arc
	NumVertices int
}

// NewArcList validates endpoints and wraps the slice.
func NewArcList(arcs []Arc, numVertices int) *ArcList {
	for _, a := range arcs {
		if a.From < 0 || a.To < 0 || int(a.From) >= numVertices || int(a.To) >= numVertices {
			panic("directed: arc endpoint out of range")
		}
	}
	return &ArcList{Arcs: arcs, NumVertices: numVertices}
}

// NumArcs returns the arc count.
func (al *ArcList) NumArcs() int { return len(al.Arcs) }

// Clone deep-copies the list.
func (al *ArcList) Clone() *ArcList {
	arcs := make([]Arc, len(al.Arcs))
	copy(arcs, al.Arcs)
	return &ArcList{Arcs: arcs, NumVertices: al.NumVertices}
}

// Degrees computes out- and in-degree arrays in parallel.
func (al *ArcList) Degrees(p int) (out, in []int64) {
	p = par.Workers(p)
	out = make([]int64, al.NumVertices)
	in = make([]int64, al.NumVertices)
	ranges := par.Split(len(al.Arcs), p)
	if len(ranges) <= 1 {
		for _, a := range al.Arcs {
			out[a.From]++
			in[a.To]++
		}
		return out, in
	}
	outs := make([][]int64, len(ranges))
	ins := make([][]int64, len(ranges))
	par.ForRange(len(al.Arcs), p, func(w int, r par.Range) {
		lo := make([]int64, al.NumVertices)
		li := make([]int64, al.NumVertices)
		for i := r.Begin; i < r.End; i++ {
			lo[al.Arcs[i].From]++
			li[al.Arcs[i].To]++
		}
		outs[w], ins[w] = lo, li
	})
	par.For(al.NumVertices, p, func(v int) {
		var so, si int64
		for w := range outs {
			so += outs[w][v]
			si += ins[w][v]
		}
		out[v], in[v] = so, si
	})
	return out, in
}

// Simplicity reports loops and duplicate arcs.
type Simplicity struct {
	SelfLoops     int
	DuplicateArcs int
}

// IsSimple reports a simple digraph.
func (s Simplicity) IsSimple() bool { return s.SelfLoops == 0 && s.DuplicateArcs == 0 }

// CheckSimplicity counts self-arcs and repeated ordered pairs.
func (al *ArcList) CheckSimplicity() Simplicity {
	var s Simplicity
	keys := make([]uint64, 0, len(al.Arcs))
	for _, a := range al.Arcs {
		if a.IsLoop() {
			s.SelfLoops++
			continue
		}
		keys = append(keys, a.Key())
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i := 1; i < len(keys); i++ {
		if keys[i] == keys[i-1] {
			s.DuplicateArcs++
		}
	}
	return s
}

// Simplify returns a copy with loops and duplicate arcs removed plus
// the input's simplicity report.
func (al *ArcList) Simplify() (*ArcList, Simplicity) {
	rep := al.CheckSimplicity()
	seen := make(map[uint64]struct{}, len(al.Arcs))
	out := make([]Arc, 0, len(al.Arcs))
	for _, a := range al.Arcs {
		if a.IsLoop() {
			continue
		}
		k := a.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, a)
	}
	return &ArcList{Arcs: out, NumVertices: al.NumVertices}, rep
}

// EqualAsSets compares arc multisets.
func (al *ArcList) EqualAsSets(other *ArcList) bool {
	if len(al.Arcs) != len(other.Arcs) {
		return false
	}
	a := make([]uint64, len(al.Arcs))
	b := make([]uint64, len(other.Arcs))
	for i := range al.Arcs {
		a[i] = al.Arcs[i].Key()
		b[i] = other.Arcs[i].Key()
	}
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Reciprocity returns the fraction of arcs whose reverse arc is also
// present — a standard digraph null-model statistic [14].
func (al *ArcList) Reciprocity() float64 {
	if len(al.Arcs) == 0 {
		return 0
	}
	present := make(map[uint64]struct{}, len(al.Arcs))
	for _, a := range al.Arcs {
		present[a.Key()] = struct{}{}
	}
	var recip int
	for _, a := range al.Arcs {
		if a.IsLoop() {
			continue
		}
		if _, ok := present[(Arc{From: a.To, To: a.From}).Key()]; ok {
			recip++
		}
	}
	return float64(recip) / float64(len(al.Arcs))
}
