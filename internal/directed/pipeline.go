package directed

import (
	"fmt"
	"time"

	"nullgraph/internal/rng"
)

// Options configures the directed end-to-end pipeline.
type Options struct {
	Workers           int
	Seed              uint64
	SwapIterations    int
	MixUntilSwapped   bool
	MaxSwapIterations int
}

func (o Options) maxSwapIterations() int {
	if o.MaxSwapIterations <= 0 {
		return 128
	}
	return o.MaxSwapIterations
}

// PhaseTimes records the directed pipeline's per-phase wall time.
type PhaseTimes struct {
	Probabilities time.Duration
	ArcGeneration time.Duration
	Swapping      time.Duration
}

// Total returns the end-to-end time.
func (p PhaseTimes) Total() time.Duration {
	return p.Probabilities + p.ArcGeneration + p.Swapping
}

// Result is the directed pipeline output.
type Result struct {
	Graph         *ArcList
	Probabilities *ProbMatrix
	Phases        PhaseTimes
	Swaps         SwapResult
	Mixed         bool
}

// Generate draws a uniformly random simple digraph matching the joint
// (out, in) degree distribution in expectation: probabilities →
// directed edge-skipping → directed double-arc swaps.
func Generate(d *JointDistribution, opt Options) (*Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.OutStubs() != d.InStubs() {
		return nil, fmt.Errorf("directed: out stubs %d != in stubs %d (not a digraph sequence)",
			d.OutStubs(), d.InStubs())
	}
	res := &Result{}
	start := time.Now()
	res.Probabilities = GenerateProbabilities(d, opt.Workers)
	res.Phases.Probabilities = time.Since(start)

	start = time.Now()
	al, err := GenerateArcs(d, res.Probabilities, SkipOptions{Workers: opt.Workers, Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	res.Phases.ArcGeneration = time.Since(start)
	res.Graph = al

	start = time.Now()
	sopt := SwapOptions{Workers: opt.Workers, Seed: rng.Mix64(opt.Seed) + 0xd15eed}
	if opt.MixUntilSwapped {
		res.Swaps, res.Mixed = SwapArcsUntilMixed(al, sopt, opt.maxSwapIterations())
	} else {
		sopt.Iterations = opt.SwapIterations
		res.Swaps = SwapArcs(al, sopt)
	}
	res.Phases.Swapping = time.Since(start)
	return res, nil
}

// Shuffle mixes an existing digraph in place with double-arc swaps.
func Shuffle(al *ArcList, opt Options) *Result {
	res := &Result{Graph: al}
	start := time.Now()
	sopt := SwapOptions{Workers: opt.Workers, Seed: rng.Mix64(opt.Seed) + 0xd15eed}
	if opt.MixUntilSwapped {
		res.Swaps, res.Mixed = SwapArcsUntilMixed(al, sopt, opt.maxSwapIterations())
	} else {
		sopt.Iterations = opt.SwapIterations
		res.Swaps = SwapArcs(al, sopt)
	}
	res.Phases.Swapping = time.Since(start)
	return res
}
