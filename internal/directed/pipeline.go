package directed

import (
	"fmt"
	"time"

	"nullgraph/internal/par"
	"nullgraph/internal/rng"
)

// Options configures the directed end-to-end pipeline.
type Options struct {
	Workers           int
	Seed              uint64
	SwapIterations    int
	MixUntilSwapped   bool
	MaxSwapIterations int
	// Stop, when non-nil, cancels cooperatively: between pipeline phases
	// and between swap iterations. A tripped flag makes Generate and
	// Shuffle return par.ErrStopped; Shuffle's arc list stays valid
	// (joint degrees preserved) but under-mixed.
	Stop *par.Stop
}

func (o Options) maxSwapIterations() int {
	if o.MaxSwapIterations <= 0 {
		return 128
	}
	return o.MaxSwapIterations
}

// PhaseTimes records the directed pipeline's per-phase wall time.
type PhaseTimes struct {
	Probabilities time.Duration
	ArcGeneration time.Duration
	Swapping      time.Duration
}

// Total returns the end-to-end time.
func (p PhaseTimes) Total() time.Duration {
	return p.Probabilities + p.ArcGeneration + p.Swapping
}

// Result is the directed pipeline output.
type Result struct {
	Graph         *ArcList
	Probabilities *ProbMatrix
	Phases        PhaseTimes
	Swaps         SwapResult
	Mixed         bool
}

// Generate draws a uniformly random simple digraph matching the joint
// (out, in) degree distribution in expectation: probabilities →
// directed edge-skipping → directed double-arc swaps.
func Generate(d *JointDistribution, opt Options) (*Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.OutStubs() != d.InStubs() {
		return nil, fmt.Errorf("directed: out stubs %d != in stubs %d (not a digraph sequence)",
			d.OutStubs(), d.InStubs())
	}
	if opt.Stop.Stopped() {
		return nil, par.ErrStopped
	}
	res := &Result{}
	start := time.Now()
	res.Probabilities = GenerateProbabilities(d, opt.Workers)
	res.Phases.Probabilities = time.Since(start)
	if opt.Stop.Stopped() {
		return nil, par.ErrStopped
	}

	start = time.Now()
	al, err := GenerateArcs(d, res.Probabilities, SkipOptions{Workers: opt.Workers, Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	res.Phases.ArcGeneration = time.Since(start)
	res.Graph = al
	if opt.Stop.Stopped() {
		return nil, par.ErrStopped
	}

	start = time.Now()
	if stopped := res.runSwaps(al, opt); stopped {
		return nil, par.ErrStopped
	}
	res.Phases.Swapping = time.Since(start)
	return res, nil
}

// runSwaps drives the mixing phase shared by Generate and Shuffle,
// reporting whether the stop flag interrupted it.
func (res *Result) runSwaps(al *ArcList, opt Options) bool {
	sopt := SwapOptions{Workers: opt.Workers, Seed: rng.Mix64(opt.Seed) + 0xd15eed, Stop: opt.Stop}
	if opt.MixUntilSwapped {
		res.Swaps, res.Mixed = SwapArcsUntilMixed(al, sopt, opt.maxSwapIterations())
	} else {
		sopt.Iterations = opt.SwapIterations
		res.Swaps = SwapArcs(al, sopt)
	}
	return res.Swaps.Stopped
}

// validateArcList is the input gate for the arc-list entry point,
// mirroring the undirected pipeline's validateEdgeList: the list must
// be non-nil and every endpoint must name a vertex in
// [0, NumVertices). Empty and single-arc lists are valid (the swap
// phase is then a no-op).
func validateArcList(al *ArcList) error {
	if al == nil {
		return fmt.Errorf("directed: nil arc list")
	}
	n := int32(al.NumVertices)
	for i, a := range al.Arcs {
		if a.From < 0 || a.To < 0 || a.From >= n || a.To >= n {
			return fmt.Errorf("directed: arc %d (%d->%d) out of range for %d vertices", i, a.From, a.To, al.NumVertices)
		}
	}
	return nil
}

// Shuffle mixes an existing digraph in place with double-arc swaps,
// validating the input like the undirected edge-list entry point. When
// opt.Stop trips mid-run it returns par.ErrStopped and al is left
// valid (in- and out-degrees preserved) but under-mixed.
func Shuffle(al *ArcList, opt Options) (*Result, error) {
	if err := validateArcList(al); err != nil {
		return nil, err
	}
	res := &Result{Graph: al}
	start := time.Now()
	if stopped := res.runSwaps(al, opt); stopped {
		return nil, par.ErrStopped
	}
	res.Phases.Swapping = time.Since(start)
	return res, nil
}
