package directed

import (
	"fmt"
	"time"

	"nullgraph/internal/converge"
	"nullgraph/internal/obs"
	"nullgraph/internal/par"
	"nullgraph/internal/rng"
)

// Options configures the directed end-to-end pipeline.
type Options struct {
	Workers           int
	Seed              uint64
	SwapIterations    int
	MixUntilSwapped   bool
	MaxSwapIterations int
	// StopPolicy, when non-nil, replaces the fixed swap budget with the
	// adaptive convergence monitor. The directed chain has no wired
	// graph-statistic evaluator, so the monitored trace is always the
	// swap success rate regardless of StopPolicy.Statistic; Floor,
	// Budget, and the stationarity knobs apply as in the undirected
	// pipeline. Takes precedence over MixUntilSwapped and
	// SwapIterations; the outcome lands in Result.Stop.
	StopPolicy *converge.Policy
	// Stop, when non-nil, cancels cooperatively: between pipeline phases
	// and between swap iterations. A tripped flag makes Generate and
	// Shuffle return par.ErrStopped; Shuffle's arc list stays valid
	// (joint degrees preserved) but under-mixed.
	Stop *par.Stop
}

func (o Options) maxSwapIterations() int {
	if o.MaxSwapIterations <= 0 {
		return 128
	}
	return o.MaxSwapIterations
}

// PhaseTimes records the directed pipeline's per-phase wall time.
type PhaseTimes struct {
	Probabilities time.Duration
	ArcGeneration time.Duration
	Swapping      time.Duration
}

// Total returns the end-to-end time.
func (p PhaseTimes) Total() time.Duration {
	return p.Probabilities + p.ArcGeneration + p.Swapping
}

// Result is the directed pipeline output.
type Result struct {
	Graph         *ArcList
	Probabilities *ProbMatrix
	Phases        PhaseTimes
	Swaps         SwapResult
	Mixed         bool
	// Stop records how the swap phase ended — fixed-budget reason or
	// the adaptive monitor's outcome with its checkpoint trail.
	Stop *obs.StopReport
}

// Generate draws a uniformly random simple digraph matching the joint
// (out, in) degree distribution in expectation: probabilities →
// directed edge-skipping → directed double-arc swaps.
func Generate(d *JointDistribution, opt Options) (*Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.OutStubs() != d.InStubs() {
		return nil, fmt.Errorf("directed: out stubs %d != in stubs %d (not a digraph sequence)",
			d.OutStubs(), d.InStubs())
	}
	if opt.Stop.Stopped() {
		return nil, par.ErrStopped
	}
	res := &Result{}
	start := time.Now()
	res.Probabilities = GenerateProbabilities(d, opt.Workers)
	res.Phases.Probabilities = time.Since(start)
	if opt.Stop.Stopped() {
		return nil, par.ErrStopped
	}

	start = time.Now()
	al, err := GenerateArcs(d, res.Probabilities, SkipOptions{Workers: opt.Workers, Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	res.Phases.ArcGeneration = time.Since(start)
	res.Graph = al
	if opt.Stop.Stopped() {
		return nil, par.ErrStopped
	}

	start = time.Now()
	if stopped := res.runSwaps(al, opt); stopped {
		return nil, par.ErrStopped
	}
	res.Phases.Swapping = time.Since(start)
	return res, nil
}

// monitorStopper adapts the converge monitor to the directed Stopper
// interface, mirroring the undirected session's adapter.
type monitorStopper struct {
	mon *converge.Monitor
}

func (s monitorStopper) Observe(_ int, stats SwapIterStats) bool {
	sr := 0.0
	if stats.Attempts > 0 {
		sr = float64(stats.Successes) / float64(stats.Attempts)
	}
	return s.mon.Observe(sr, stats.EverSwapped)
}

// fixedStop summarizes a fixed-budget (or mixed-heuristic) directed run.
func fixedStop(opt Options, res SwapResult, mixed bool) *obs.StopReport {
	reason := "scans"
	if opt.MixUntilSwapped {
		reason = "budget"
		if mixed {
			reason = "mixed"
		}
	}
	return &obs.StopReport{
		Policy:     "fixed",
		Reason:     reason,
		Iterations: len(res.PerIteration),
	}
}

// runSwaps drives the mixing phase shared by Generate and Shuffle,
// reporting whether the stop flag interrupted it.
func (res *Result) runSwaps(al *ArcList, opt Options) bool {
	sopt := SwapOptions{Workers: opt.Workers, Seed: rng.Mix64(opt.Seed) + 0xd15eed, Stop: opt.Stop}
	switch {
	case opt.StopPolicy != nil:
		// nil eval forces the monitor onto the success-rate trace; the
		// monitor also wants the ever-swapped signal, so tracking is on.
		mon := converge.NewMonitor(*opt.StopPolicy, nil)
		sopt.TrackSwapped = true
		res.Swaps, _ = SwapArcsStopper(al, sopt, mon.Policy().Budget, monitorStopper{mon})
		out := mon.Outcome()
		res.Stop = &out
	case opt.MixUntilSwapped:
		res.Swaps, res.Mixed = SwapArcsUntilMixed(al, sopt, opt.maxSwapIterations())
		res.Stop = fixedStop(opt, res.Swaps, res.Mixed)
	default:
		sopt.Iterations = opt.SwapIterations
		res.Swaps = SwapArcs(al, sopt)
		res.Stop = fixedStop(opt, res.Swaps, false)
	}
	return res.Swaps.Stopped
}

// validateArcList is the input gate for the arc-list entry point,
// mirroring the undirected pipeline's validateEdgeList: the list must
// be non-nil and every endpoint must name a vertex in
// [0, NumVertices). Empty and single-arc lists are valid (the swap
// phase is then a no-op).
func validateArcList(al *ArcList) error {
	if al == nil {
		return fmt.Errorf("directed: nil arc list")
	}
	n := int32(al.NumVertices)
	for i, a := range al.Arcs {
		if a.From < 0 || a.To < 0 || a.From >= n || a.To >= n {
			return fmt.Errorf("directed: arc %d (%d->%d) out of range for %d vertices", i, a.From, a.To, al.NumVertices)
		}
	}
	return nil
}

// Shuffle mixes an existing digraph in place with double-arc swaps,
// validating the input like the undirected edge-list entry point. When
// opt.Stop trips mid-run it returns par.ErrStopped and al is left
// valid (in- and out-degrees preserved) but under-mixed.
func Shuffle(al *ArcList, opt Options) (*Result, error) {
	if err := validateArcList(al); err != nil {
		return nil, err
	}
	res := &Result{Graph: al}
	start := time.Now()
	if stopped := res.runSwaps(al, opt); stopped {
		return nil, par.ErrStopped
	}
	res.Phases.Swapping = time.Since(start)
	return res, nil
}
