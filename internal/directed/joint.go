package directed

import (
	"fmt"
	"sort"

	"nullgraph/internal/par"
)

// JointClass is one ((out, in), count) class of a joint degree
// distribution — the directed analog of degseq.Class.
type JointClass struct {
	Out, In int64
	Count   int64
}

// JointDistribution lists unique (out, in) pairs with positive counts,
// sorted by (Out, In) ascending. Vertex IDs produced by the directed
// generators are class-ordered, exactly like the undirected layout.
type JointDistribution struct {
	Classes []JointClass
}

// Validate checks ordering and positivity.
func (d *JointDistribution) Validate() error {
	for i, c := range d.Classes {
		if c.Out < 0 || c.In < 0 {
			return fmt.Errorf("directed: class %d has negative degree (%d,%d)", i, c.Out, c.In)
		}
		if c.Count <= 0 {
			return fmt.Errorf("directed: class %d has non-positive count %d", i, c.Count)
		}
		if i > 0 {
			prev := d.Classes[i-1]
			if prev.Out > c.Out || (prev.Out == c.Out && prev.In >= c.In) {
				return fmt.Errorf("directed: classes not sorted/unique at %d", i)
			}
		}
	}
	return nil
}

// NumClasses returns the class count.
func (d *JointDistribution) NumClasses() int { return len(d.Classes) }

// NumVertices returns n.
func (d *JointDistribution) NumVertices() int64 {
	var n int64
	for _, c := range d.Classes {
		n += c.Count
	}
	return n
}

// OutStubs returns Σ out·count; InStubs the in-side total. A realizable
// digraph needs OutStubs == InStubs (= the arc count).
func (d *JointDistribution) OutStubs() int64 {
	var s int64
	for _, c := range d.Classes {
		s += c.Out * c.Count
	}
	return s
}

// InStubs returns Σ in·count.
func (d *JointDistribution) InStubs() int64 {
	var s int64
	for _, c := range d.Classes {
		s += c.In * c.Count
	}
	return s
}

// NumArcs returns the arc count of any realization (OutStubs).
func (d *JointDistribution) NumArcs() int64 { return d.OutStubs() }

// MaxOut and MaxIn return the extreme degrees.
func (d *JointDistribution) MaxOut() int64 {
	var m int64
	for _, c := range d.Classes {
		if c.Out > m {
			m = c.Out
		}
	}
	return m
}

// MaxIn returns the largest in-degree.
func (d *JointDistribution) MaxIn() int64 {
	var m int64
	for _, c := range d.Classes {
		if c.In > m {
			m = c.In
		}
	}
	return m
}

// FromJointDegrees builds the distribution of per-vertex (out, in)
// sequences. It panics if the slices differ in length.
func FromJointDegrees(out, in []int64) *JointDistribution {
	if len(out) != len(in) {
		panic("directed: out/in length mismatch")
	}
	type pair struct{ o, i int64 }
	counts := map[pair]int64{}
	for v := range out {
		counts[pair{out[v], in[v]}]++
	}
	classes := make([]JointClass, 0, len(counts))
	for p, n := range counts {
		classes = append(classes, JointClass{Out: p.o, In: p.i, Count: n})
	}
	sort.Slice(classes, func(a, b int) bool {
		if classes[a].Out != classes[b].Out {
			return classes[a].Out < classes[b].Out
		}
		return classes[a].In < classes[b].In
	})
	return &JointDistribution{Classes: classes}
}

// OfArcList extracts the joint distribution of an existing digraph.
func OfArcList(al *ArcList, p int) *JointDistribution {
	out, in := al.Degrees(p)
	return FromJointDegrees(out, in)
}

// VertexOffsets returns the class-layout prefix sums (len |D|+1).
func (d *JointDistribution) VertexOffsets(p int) []int64 {
	counts := make([]int64, len(d.Classes))
	for i, c := range d.Classes {
		counts[i] = c.Count
	}
	return par.PrefixSums(counts, p)
}

// ClassOfVertex locates a vertex's class under the layout.
func ClassOfVertex(offsets []int64, v int64) int {
	k := sort.Search(len(offsets), func(i int) bool { return offsets[i] > v })
	return k - 1
}

// ToJointDegrees expands the distribution to per-vertex sequences in
// class order.
func (d *JointDistribution) ToJointDegrees() (out, in []int64) {
	n := d.NumVertices()
	out = make([]int64, 0, n)
	in = make([]int64, 0, n)
	for _, c := range d.Classes {
		for k := int64(0); k < c.Count; k++ {
			out = append(out, c.Out)
			in = append(in, c.In)
		}
	}
	return out, in
}

// IsRealizable reports whether the joint sequence is realizable as a
// simple digraph (no loops, no duplicate arcs), by the Fulkerson
// condition: with vertices sorted by out-degree descending (ties by
// in-degree descending),
//
//	Σ_{i≤k} out_i ≤ Σ_{i≤k} min(in_i, k−1) + Σ_{i>k} min(in_i, k)
//
// for every k, plus OutStubs == InStubs.
func (d *JointDistribution) IsRealizable() bool {
	if d.OutStubs() != d.InStubs() {
		return false
	}
	out, in := d.ToJointDegrees()
	n := len(out)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if out[idx[a]] != out[idx[b]] {
			return out[idx[a]] > out[idx[b]]
		}
		return in[idx[a]] > in[idx[b]]
	})
	// O(n²) evaluation; realizability checks run on distributions far
	// smaller than the graphs they realize, and KleitmanWang re-verifies
	// constructively at scale.
	for k := 1; k <= n; k++ {
		var left, right int64
		for pos, id := range idx {
			if pos < k {
				left += out[id]
				m := in[id]
				if m > int64(k-1) {
					m = int64(k - 1)
				}
				right += m
			} else {
				m := in[id]
				if m > int64(k) {
					m = int64(k)
				}
				right += m
			}
		}
		if left > right {
			return false
		}
	}
	return true
}
