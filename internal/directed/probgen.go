package directed

import (
	"sort"

	"nullgraph/internal/par"
)

// ProbMatrix is the directed pairwise class probability matrix:
// P(i, j) is the probability of an arc from a specific class-i vertex
// to a specific class-j vertex. Unlike the undirected matrix it is NOT
// symmetric.
type ProbMatrix struct {
	k    int
	vals []float64
}

// NewProbMatrix allocates a zero k×k matrix.
func NewProbMatrix(k int) *ProbMatrix {
	return &ProbMatrix{k: k, vals: make([]float64, k*k)}
}

// Dim returns the class count.
func (m *ProbMatrix) Dim() int { return m.k }

// At returns P(i→j).
func (m *ProbMatrix) At(i, j int) float64 { return m.vals[i*m.k+j] }

// Set assigns P(i→j).
func (m *ProbMatrix) Set(i, j int, v float64) { m.vals[i*m.k+j] = v }

// Clamp bounds entries to [0,1].
func (m *ProbMatrix) Clamp() {
	for i, v := range m.vals {
		if v < 0 {
			m.vals[i] = 0
		} else if v > 1 {
			m.vals[i] = 1
		}
	}
}

// GenerateProbabilities is the directed version of the paper's Section
// IV-A heuristic. Out-stubs attach to in-stubs: visiting source classes
// in descending out-degree order, class i sends to every class j
//
//	e_ij = min( FEout(i)·FEin(j)/ΣFEin,  pairs(i,j)·headroom,  FEin(j) )
//
// arcs, where pairs(i,j) = n_i·n_j ordered pairs (n_i·(n_i−1) on the
// diagonal — self-arcs are excluded), headroom is the remaining
// probability mass before P reaches 1, and the row is scaled so class i
// never spends more than FEout(i). Refinement sweeps redistribute
// leftovers. Because each ordered class pair is visited exactly once
// (by its source class), there is no halving/doubling bookkeeping: the
// full estimate converts directly via P(i→j) += e_ij / pairs(i,j).
//
// The target system (directed analog of Section IV-A's):
//
//	out_i = Σ_j n_j·P(i,j) − P(i,i)     for every class i
//	in_i  = Σ_j n_j·P(j,i) − P(i,i)
func GenerateProbabilities(d *JointDistribution, p int) *ProbMatrix {
	k := d.NumClasses()
	m := NewProbMatrix(k)
	if k == 0 {
		return m
	}
	feOut := make([]float64, k)
	feIn := make([]float64, k)
	var totalIn float64
	for c, cl := range d.Classes {
		feOut[c] = float64(cl.Out) * float64(cl.Count)
		feIn[c] = float64(cl.In) * float64(cl.Count)
		totalIn += feIn[c]
	}
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return d.Classes[order[a]].Out > d.Classes[order[b]].Out
	})

	initialIn := totalIn
	const maxSweeps = 5
	for sweep := 0; sweep < maxSweeps && totalIn > 1e-9*initialIn+1e-9; sweep++ {
		before := totalIn
		totalIn = attachSweepDirected(d, m, feOut, feIn, order, totalIn, p)
		if totalIn >= before-1e-9 {
			break
		}
	}
	m.Clamp()
	return m
}

func attachSweepDirected(d *JointDistribution, m *ProbMatrix, feOut, feIn []float64, order []int, totalIn float64, p int) float64 {
	k := d.NumClasses()
	eRow := make([]float64, k)
	for _, i := range order {
		if feOut[i] <= 0 || totalIn <= 0 {
			continue
		}
		ni := float64(d.Classes[i].Count)
		fo := feOut[i]
		par.For(k, p, func(j int) {
			eRow[j] = 0
			if feIn[j] <= 0 {
				return
			}
			nj := float64(d.Classes[j].Count)
			var pairs float64
			if i == j {
				pairs = ni * (ni - 1)
			} else {
				pairs = ni * nj
			}
			if pairs <= 0 {
				return
			}
			naive := fo * feIn[j] / totalIn
			capacity := pairs * (1 - m.At(i, j))
			e := naive
			if capacity < e {
				e = capacity
			}
			if feIn[j] < e {
				e = feIn[j]
			}
			if e <= 0 {
				return
			}
			eRow[j] = e
		})
		var rowSpend float64
		for j := 0; j < k; j++ {
			rowSpend += eRow[j]
		}
		scale := 1.0
		if rowSpend > fo && rowSpend > 0 {
			scale = fo / rowSpend
		}
		var consumed float64
		for j := 0; j < k; j++ {
			e := eRow[j] * scale
			if e == 0 {
				continue
			}
			var pairs float64
			if i == j {
				pairs = ni * (ni - 1)
			} else {
				pairs = ni * float64(d.Classes[j].Count)
			}
			m.Set(i, j, m.At(i, j)+e/pairs)
			feIn[j] -= e
			if feIn[j] < 0 {
				feIn[j] = 0
			}
			consumed += e
		}
		feOut[i] -= consumed
		if feOut[i] < 0 {
			feOut[i] = 0
		}
		totalIn = 0
		for _, v := range feIn {
			totalIn += v
		}
	}
	return totalIn
}

// RowResiduals returns per-class (outResid, inResid): the expected
// degree errors of the matrix under Bernoulli arc generation.
func RowResiduals(d *JointDistribution, m *ProbMatrix) (outResid, inResid []float64) {
	k := d.NumClasses()
	outResid = make([]float64, k)
	inResid = make([]float64, k)
	for i := 0; i < k; i++ {
		var sumOut, sumIn float64
		for j := 0; j < k; j++ {
			sumOut += float64(d.Classes[j].Count) * m.At(i, j)
			sumIn += float64(d.Classes[j].Count) * m.At(j, i)
		}
		sumOut -= m.At(i, i)
		sumIn -= m.At(i, i)
		outResid[i] = sumOut - float64(d.Classes[i].Out)
		inResid[i] = sumIn - float64(d.Classes[i].In)
	}
	return outResid, inResid
}

// ExpectedArcs returns the Bernoulli process's expected arc count.
func ExpectedArcs(d *JointDistribution, m *ProbMatrix) float64 {
	k := d.NumClasses()
	var sum float64
	for i := 0; i < k; i++ {
		ni := float64(d.Classes[i].Count)
		for j := 0; j < k; j++ {
			var pairs float64
			if i == j {
				pairs = ni * (ni - 1)
			} else {
				pairs = ni * float64(d.Classes[j].Count)
			}
			sum += pairs * m.At(i, j)
		}
	}
	return sum
}

// ChungLuProbabilities returns the naive directed Chung-Lu matrix
// P(i→j) = min(1, out_i·in_j/m).
func ChungLuProbabilities(d *JointDistribution) *ProbMatrix {
	k := d.NumClasses()
	m := NewProbMatrix(k)
	arcs := float64(d.NumArcs())
	if arcs == 0 {
		return m
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			p := float64(d.Classes[i].Out) * float64(d.Classes[j].In) / arcs
			if p > 1 {
				p = 1
			}
			m.Set(i, j, p)
		}
	}
	return m
}
